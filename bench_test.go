// Top-level benchmarks: one per table and figure of the paper's evaluation.
//
//	go test -bench=. -benchmem
//
// Benchmarks default to 32K-tuple tables so a full -bench=. run stays
// tractable on a laptop; set SKEWJOIN_BENCH_TUPLES to scale up. CPU
// algorithms are timed wall-clock by the benchmark itself; GPU algorithms
// additionally report the simulator's modelled device time as the
// "modelled-ms/op" metric (the quantity Figures 1/4b and Table I plot).
// The full-resolution sweeps (zipf 0.0..1.0 step 0.1) are produced by
// cmd/skewbench; these benchmarks sample the same grids at the paper's
// inflection points.
package skewjoin

import (
	"fmt"
	"os"
	"strconv"
	"testing"
)

func benchTuples() int {
	if env := os.Getenv("SKEWJOIN_BENCH_TUPLES"); env != "" {
		if n, err := strconv.Atoi(env); err == nil && n > 0 {
			return n
		}
	}
	return 1 << 15
}

var benchZipfs = []float64{0.0, 0.5, 0.8, 1.0}

// sink prevents the compiler from eliding join results.
var sink uint64

func workloadPair(b *testing.B, n int, theta float64) (Relation, Relation) {
	b.Helper()
	r, s, err := GenerateZipfPair(n, theta, 42)
	if err != nil {
		b.Fatal(err)
	}
	return r, s
}

func runJoin(b *testing.B, alg Algorithm, r, s Relation, phases ...string) {
	b.Helper()
	runJoinOpts(b, alg, r, s, nil, phases...)
}

func runJoinOpts(b *testing.B, alg Algorithm, r, s Relation, opts *Options, phases ...string) {
	b.Helper()
	var res Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = Join(alg, r, s, opts)
		if err != nil {
			b.Fatal(err)
		}
		sink += res.Matches
	}
	if res.Modelled {
		b.ReportMetric(float64(res.Total.Microseconds())/1000, "modelled-ms/op")
	}
	for _, ph := range phases {
		b.ReportMetric(float64(res.Phase(ph).Microseconds())/1000, ph+"-ms/op")
	}
	b.ReportMetric(float64(res.Matches), "results/op")
}

// BenchmarkFig1CbaseBreakdown regenerates Figure 1's CPU half: Cbase's
// partition and join phases as skew grows. The partition-ms metric stays
// flat while join-ms explodes.
func BenchmarkFig1CbaseBreakdown(b *testing.B) {
	n := benchTuples()
	for _, z := range benchZipfs {
		b.Run(fmt.Sprintf("zipf=%.1f", z), func(b *testing.B) {
			r, s := workloadPair(b, n, z)
			runJoin(b, Cbase, r, s, "partition", "join")
		})
	}
}

// BenchmarkFig1GbaseBreakdown regenerates Figure 1's GPU half: Gbase's
// modelled partition and join phases as skew grows.
func BenchmarkFig1GbaseBreakdown(b *testing.B) {
	n := benchTuples()
	for _, z := range benchZipfs {
		b.Run(fmt.Sprintf("zipf=%.1f", z), func(b *testing.B) {
			r, s := workloadPair(b, n, z)
			runJoin(b, Gbase, r, s, "partition", "join")
		})
	}
}

// BenchmarkFig4aCPU regenerates Figure 4a: total time of the three CPU
// joins across the zipf sweep.
func BenchmarkFig4aCPU(b *testing.B) {
	n := benchTuples()
	for _, alg := range []Algorithm{Cbase, CbaseNPJ, CSH} {
		for _, z := range benchZipfs {
			b.Run(fmt.Sprintf("%s/zipf=%.1f", alg, z), func(b *testing.B) {
				r, s := workloadPair(b, n, z)
				runJoin(b, alg, r, s)
			})
		}
	}
}

// BenchmarkFig4bGPU regenerates Figure 4b: modelled total time of the two
// GPU joins across the zipf sweep.
func BenchmarkFig4bGPU(b *testing.B) {
	n := benchTuples()
	for _, alg := range []Algorithm{Gbase, GSH} {
		for _, z := range benchZipfs {
			b.Run(fmt.Sprintf("%s/zipf=%.1f", alg, z), func(b *testing.B) {
				r, s := workloadPair(b, n, z)
				runJoin(b, alg, r, s)
			})
		}
	}
}

// BenchmarkTable1Breakdown regenerates Table I: the per-phase breakdown of
// all four partitioned joins at medium-to-high skew. The paper's rows map
// to the reported phase metrics (CSH sample+part = sample-ms + partition-ms;
// GSH all other = modelled total minus partition-ms).
func BenchmarkTable1Breakdown(b *testing.B) {
	n := benchTuples()
	zipfs := []float64{0.5, 0.8, 1.0}
	type entry struct {
		alg    Algorithm
		phases []string
	}
	entries := []entry{
		{Cbase, []string{"partition", "join"}},
		{CSH, []string{"sample", "partition", "nmjoin"}},
		{Gbase, []string{"partition", "join"}},
		{GSH, []string{"partition", "detect", "divide", "nmjoin", "skewjoin"}},
	}
	for _, e := range entries {
		for _, z := range zipfs {
			b.Run(fmt.Sprintf("%s/zipf=%.1f", e.alg, z), func(b *testing.B) {
				r, s := workloadPair(b, n, z)
				runJoin(b, e.alg, r, s, e.phases...)
			})
		}
	}
}

// BenchmarkLargeTables regenerates the §V-B scale-up experiment: 4x the
// default table size at zipf 0.7, where the paper reports CSH 3.5x over
// Cbase and GSH 10.4x over Gbase.
func BenchmarkLargeTables(b *testing.B) {
	n := benchTuples() * 4
	for _, alg := range []Algorithm{Cbase, CSH, Gbase, GSH} {
		b.Run(string(alg), func(b *testing.B) {
			r, s := workloadPair(b, n, 0.7)
			runJoin(b, alg, r, s)
		})
	}
}

// BenchmarkSortVsHashExtension runs the sort-merge extension against the
// paper's CPU joins at the sweep's endpoints (see EXPERIMENTS.md §Sort vs
// hash).
func BenchmarkSortVsHashExtension(b *testing.B) {
	n := benchTuples()
	for _, alg := range []Algorithm{Cbase, CSH, SMJ} {
		for _, z := range []float64{0.0, 1.0} {
			b.Run(fmt.Sprintf("%s/zipf=%.1f", alg, z), func(b *testing.B) {
				r, s := workloadPair(b, n, z)
				runJoin(b, alg, r, s)
			})
		}
	}
}

// BenchmarkPartitionVariants A/Bs the partitioner-overhaul knobs on the CPU
// joins: the seed paths (direct scatter, mutex task queue) against each
// mechanism in isolation and the shipped default (auto scatter, lock-free
// queue). The partition-ms metric is the quantity under test; results/op
// must be identical across variants (the golden tests pin bit-for-bit
// output equivalence). cmd/skewbench -exp partition runs the same matrix
// with a raw-partitioner sweep and machine-readable output.
func BenchmarkPartitionVariants(b *testing.B) {
	n := benchTuples()
	variants := []struct {
		name    string
		scatter ScatterMode
		sched   SchedMode
	}{
		{"seed=direct+mutex", ScatterDirect, SchedMutex},
		{"wc+atomic", ScatterWC, SchedAtomic},
		{"default=auto+atomic", ScatterAuto, SchedAtomic},
	}
	for _, alg := range []Algorithm{Cbase, CSH} {
		for _, z := range []float64{0.0, 1.0} {
			for _, v := range variants {
				b.Run(fmt.Sprintf("%s/zipf=%.1f/%s", alg, z, v.name), func(b *testing.B) {
					r, s := workloadPair(b, n, z)
					opts := &Options{Scatter: v.scatter, Sched: v.sched}
					runJoinOpts(b, alg, r, s, opts, "partition")
				})
			}
		}
	}
}

// BenchmarkSpeedupHeadline regenerates the headline claim at the highest
// skew point: CSH vs Cbase and GSH vs Gbase at zipf 1.0 (paper: up to 8.0x
// and 13.5x across zipf 0.5-1.0).
func BenchmarkSpeedupHeadline(b *testing.B) {
	n := benchTuples()
	for _, alg := range []Algorithm{Cbase, CSH, Gbase, GSH} {
		b.Run(string(alg)+"/zipf=1.0", func(b *testing.B) {
			r, s := workloadPair(b, n, 1.0)
			runJoin(b, alg, r, s)
		})
	}
}
