package exec

import "sync"

// Group runs a set of goroutines and collects the first error — the
// errgroup shape, implemented here so the co-processing executor can
// orchestrate its CPU and GPU sides without a new dependency. Unlike
// Parallel, the tasks are heterogeneous (one per backend, not one per
// worker) and may fail independently.
//
// Group is deliberately context-free, like Parallel: cancellation is the
// tasks' business (the join sides poll their own ctx between tasks), and
// Wait must always join every goroutine regardless of errors so no side
// keeps writing into shared output state after the caller moves on.
type Group struct {
	wg sync.WaitGroup

	mu  sync.Mutex
	err error //skewlint:guarded-by mu
}

// Go runs fn on a new goroutine. The first non-nil error across all tasks
// is retained for Wait; later errors are dropped.
func (g *Group) Go(fn func() error) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		if err := fn(); err != nil {
			g.mu.Lock()
			if g.err == nil {
				g.err = err
			}
			g.mu.Unlock()
		}
	}()
}

// Wait blocks until every task started with Go has returned, then reports
// the first error (nil if all tasks succeeded).
func (g *Group) Wait() error {
	g.wg.Wait()
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.err
}
