package exec

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestSegmentCoversExactly(t *testing.T) {
	for _, tc := range []struct{ n, threads int }{
		{0, 1}, {1, 1}, {10, 3}, {7, 7}, {5, 8}, {100, 9}, {1, 16},
	} {
		covered := make([]int, tc.n)
		prevHi := 0
		for w := 0; w < tc.threads; w++ {
			lo, hi := Segment(tc.n, tc.threads, w)
			if lo != prevHi {
				t.Fatalf("n=%d threads=%d worker=%d: lo=%d, want %d", tc.n, tc.threads, w, lo, prevHi)
			}
			for i := lo; i < hi; i++ {
				covered[i]++
			}
			prevHi = hi
		}
		if prevHi != tc.n {
			t.Fatalf("n=%d threads=%d: segments end at %d", tc.n, tc.threads, prevHi)
		}
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("n=%d threads=%d: item %d covered %d times", tc.n, tc.threads, i, c)
			}
		}
	}
}

func TestSegmentBalance(t *testing.T) {
	// Segments differ by at most one item.
	n, threads := 1000, 7
	min, max := n, 0
	for w := 0; w < threads; w++ {
		lo, hi := Segment(n, threads, w)
		if hi-lo < min {
			min = hi - lo
		}
		if hi-lo > max {
			max = hi - lo
		}
	}
	if max-min > 1 {
		t.Errorf("segment sizes range %d..%d", min, max)
	}
}

func TestQuickSegment(t *testing.T) {
	f := func(nRaw uint16, thRaw uint8) bool {
		n := int(nRaw)
		threads := int(thRaw%32) + 1
		total := 0
		for w := 0; w < threads; w++ {
			lo, hi := Segment(n, threads, w)
			if lo > hi || lo < 0 || hi > n {
				return false
			}
			total += hi - lo
		}
		return total == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParallelRunsAllWorkers(t *testing.T) {
	var ran [8]atomic.Int32
	Parallel(8, func(w int) { ran[w].Add(1) })
	for w := range ran {
		if got := ran[w].Load(); got != 1 {
			t.Errorf("worker %d ran %d times", w, got)
		}
	}
}

func TestParallelSingleThreadInline(t *testing.T) {
	ran := false
	Parallel(1, func(w int) {
		if w != 0 {
			t.Errorf("worker id %d", w)
		}
		ran = true
	})
	if !ran {
		t.Error("worker did not run")
	}
}

func TestQueueDrainProcessesEveryTask(t *testing.T) {
	tasks := make([]int, 1000)
	for i := range tasks {
		tasks[i] = i
	}
	q := NewQueue(tasks)
	var seen [1000]atomic.Int32
	q.Drain(4, func(w, task int) { seen[task].Add(1) })
	for i := range seen {
		if got := seen[i].Load(); got != 1 {
			t.Fatalf("task %d processed %d times", i, got)
		}
	}
}

func TestQueueDrainWithDynamicPushes(t *testing.T) {
	// Tasks pushed while draining (Cbase's split-task pattern) must all be
	// processed before Drain returns.
	q := NewQueue([]int{0})
	var processed atomic.Int32
	const depth = 6
	q.Drain(4, func(w, task int) {
		processed.Add(1)
		if task < depth {
			q.Push(task + 1)
			q.Push(task + 1)
		}
	})
	// Full binary fan-out: 1 + 2 + 4 + ... + 2^depth tasks.
	want := int32(1<<(depth+1) - 1)
	if got := processed.Load(); got != want {
		t.Errorf("processed %d tasks, want %d", got, want)
	}
}

func TestQueueDrainPushRaceStress(t *testing.T) {
	// Hammer the Push-during-Drain race: every task pushed while draining
	// must be processed exactly once, even when pushes land just as other
	// workers conclude the queue is empty.
	for round := 0; round < 50; round++ {
		q := NewQueue([]int{0, 1, 2, 3})
		var processed atomic.Int64
		var pushes atomic.Int64
		q.Drain(8, func(w, task int) {
			processed.Add(1)
			if task < 100 && pushes.Add(1) <= 64 {
				q.Push(1000 + task)
			}
		})
		want := int64(q.Len())
		if got := processed.Load(); got != want {
			t.Fatalf("round %d: processed %d of %d tasks", round, got, want)
		}
	}
}

func TestQueueNextExhausted(t *testing.T) {
	q := NewQueue([]string{"a"})
	if v, ok := q.Next(); !ok || v != "a" {
		t.Fatalf("Next = %q, %v", v, ok)
	}
	if _, ok := q.Next(); ok {
		t.Error("Next on empty queue returned ok")
	}
	q.Push("b")
	if v, ok := q.Next(); !ok || v != "b" {
		t.Errorf("Next after Push = %q, %v", v, ok)
	}
}

func TestQueueLen(t *testing.T) {
	q := NewQueue([]int{1, 2, 3})
	q.Next()
	q.Push(4)
	if got := q.Len(); got != 4 {
		t.Errorf("Len = %d, want 4 (total ever pushed)", got)
	}
}

func TestQueueConcurrentDequeueUnique(t *testing.T) {
	n := 10000
	tasks := make([]int, n)
	for i := range tasks {
		tasks[i] = i
	}
	q := NewQueue(tasks)
	var mu sync.Mutex
	seen := make(map[int]bool, n)
	Parallel(8, func(w int) {
		for {
			v, ok := q.Next()
			if !ok {
				return
			}
			mu.Lock()
			if seen[v] {
				t.Errorf("task %d dequeued twice", v)
			}
			seen[v] = true
			mu.Unlock()
		}
	})
	if len(seen) != n {
		t.Errorf("dequeued %d tasks, want %d", len(seen), n)
	}
}

func TestPhaseTimer(t *testing.T) {
	var pt PhaseTimer
	pt.Time("a", func() { time.Sleep(time.Millisecond) })
	pt.Add("b", 5*time.Millisecond)
	pt.Add("a", 2*time.Millisecond)

	if got := pt.Phases(); len(got) != 3 {
		t.Fatalf("got %d phases", len(got))
	}
	a, ok := pt.Get("a")
	if !ok || a < 3*time.Millisecond {
		t.Errorf("phase a = %v, %v", a, ok)
	}
	if _, ok := pt.Get("missing"); ok {
		t.Error("Get returned ok for missing phase")
	}
	if total := pt.Total(); total < 8*time.Millisecond {
		t.Errorf("total = %v", total)
	}
}

func TestDefaultThreadsPositive(t *testing.T) {
	if DefaultThreads() < 1 {
		t.Errorf("DefaultThreads = %d", DefaultThreads())
	}
}
