package exec

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestSegmentCoversExactly(t *testing.T) {
	for _, tc := range []struct{ n, threads int }{
		{0, 1}, {1, 1}, {10, 3}, {7, 7}, {5, 8}, {100, 9}, {1, 16},
	} {
		covered := make([]int, tc.n)
		prevHi := 0
		for w := 0; w < tc.threads; w++ {
			lo, hi := Segment(tc.n, tc.threads, w)
			if lo != prevHi {
				t.Fatalf("n=%d threads=%d worker=%d: lo=%d, want %d", tc.n, tc.threads, w, lo, prevHi)
			}
			for i := lo; i < hi; i++ {
				covered[i]++
			}
			prevHi = hi
		}
		if prevHi != tc.n {
			t.Fatalf("n=%d threads=%d: segments end at %d", tc.n, tc.threads, prevHi)
		}
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("n=%d threads=%d: item %d covered %d times", tc.n, tc.threads, i, c)
			}
		}
	}
}

func TestSegmentBalance(t *testing.T) {
	// Segments differ by at most one item.
	n, threads := 1000, 7
	min, max := n, 0
	for w := 0; w < threads; w++ {
		lo, hi := Segment(n, threads, w)
		if hi-lo < min {
			min = hi - lo
		}
		if hi-lo > max {
			max = hi - lo
		}
	}
	if max-min > 1 {
		t.Errorf("segment sizes range %d..%d", min, max)
	}
}

func TestQuickSegment(t *testing.T) {
	f := func(nRaw uint16, thRaw uint8) bool {
		n := int(nRaw)
		threads := int(thRaw%32) + 1
		total := 0
		for w := 0; w < threads; w++ {
			lo, hi := Segment(n, threads, w)
			if lo > hi || lo < 0 || hi > n {
				return false
			}
			total += hi - lo
		}
		return total == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParallelRunsAllWorkers(t *testing.T) {
	var ran [8]atomic.Int32
	Parallel(8, func(w int) { ran[w].Add(1) })
	for w := range ran {
		if got := ran[w].Load(); got != 1 {
			t.Errorf("worker %d ran %d times", w, got)
		}
	}
}

func TestParallelSingleThreadInline(t *testing.T) {
	ran := false
	Parallel(1, func(w int) {
		if w != 0 {
			t.Errorf("worker id %d", w)
		}
		ran = true
	})
	if !ran {
		t.Error("worker did not run")
	}
}

func TestQueueDrainProcessesEveryTask(t *testing.T) {
	tasks := make([]int, 1000)
	for i := range tasks {
		tasks[i] = i
	}
	q := NewQueue(tasks)
	var seen [1000]atomic.Int32
	q.Drain(4, func(w, task int) { seen[task].Add(1) })
	for i := range seen {
		if got := seen[i].Load(); got != 1 {
			t.Fatalf("task %d processed %d times", i, got)
		}
	}
}

func TestQueueDrainWithDynamicPushes(t *testing.T) {
	// Tasks pushed while draining (Cbase's split-task pattern) must all be
	// processed before Drain returns.
	q := NewQueue([]int{0})
	var processed atomic.Int32
	const depth = 6
	q.Drain(4, func(w, task int) {
		processed.Add(1)
		if task < depth {
			q.Push(task + 1)
			q.Push(task + 1)
		}
	})
	// Full binary fan-out: 1 + 2 + 4 + ... + 2^depth tasks.
	want := int32(1<<(depth+1) - 1)
	if got := processed.Load(); got != want {
		t.Errorf("processed %d tasks, want %d", got, want)
	}
}

func TestQueueDrainPushRaceStress(t *testing.T) {
	// Hammer the Push-during-Drain race: every task pushed while draining
	// must be processed exactly once, even when pushes land just as other
	// workers conclude the queue is empty.
	for round := 0; round < 50; round++ {
		q := NewQueue([]int{0, 1, 2, 3})
		var processed atomic.Int64
		var pushes atomic.Int64
		q.Drain(8, func(w, task int) {
			processed.Add(1)
			if task < 100 && pushes.Add(1) <= 64 {
				q.Push(1000 + task)
			}
		})
		want := int64(q.Len())
		if got := processed.Load(); got != want {
			t.Fatalf("round %d: processed %d of %d tasks", round, got, want)
		}
	}
}

func TestQueueNextExhausted(t *testing.T) {
	q := NewQueue([]string{"a"})
	if v, ok := q.Next(); !ok || v != "a" {
		t.Fatalf("Next = %q, %v", v, ok)
	}
	if _, ok := q.Next(); ok {
		t.Error("Next on empty queue returned ok")
	}
	q.Push("b")
	if v, ok := q.Next(); !ok || v != "b" {
		t.Errorf("Next after Push = %q, %v", v, ok)
	}
}

func TestQueueLen(t *testing.T) {
	q := NewQueue([]int{1, 2, 3})
	q.Next()
	q.Push(4)
	if got := q.Len(); got != 4 {
		t.Errorf("Len = %d, want 4 (total ever pushed)", got)
	}
}

func TestQueueConcurrentDequeueUnique(t *testing.T) {
	n := 10000
	tasks := make([]int, n)
	for i := range tasks {
		tasks[i] = i
	}
	q := NewQueue(tasks)
	var mu sync.Mutex
	seen := make(map[int]bool, n)
	Parallel(8, func(w int) {
		for {
			v, ok := q.Next()
			if !ok {
				return
			}
			mu.Lock()
			if seen[v] {
				t.Errorf("task %d dequeued twice", v)
			}
			seen[v] = true
			mu.Unlock()
		}
	})
	if len(seen) != n {
		t.Errorf("dequeued %d tasks, want %d", len(seen), n)
	}
}

func TestMutexQueueDrainProcessesEveryTask(t *testing.T) {
	tasks := make([]int, 1000)
	for i := range tasks {
		tasks[i] = i
	}
	q := NewMutexQueue(tasks)
	var seen [1000]atomic.Int32
	q.Drain(4, func(w, task int) { seen[task].Add(1) })
	for i := range seen {
		if got := seen[i].Load(); got != 1 {
			t.Fatalf("task %d processed %d times", i, got)
		}
	}
}

func TestMutexQueueDrainWithDynamicPushes(t *testing.T) {
	q := NewMutexQueue([]int{0})
	var processed atomic.Int32
	const depth = 6
	q.Drain(4, func(w, task int) {
		processed.Add(1)
		if task < depth {
			q.Push(task + 1)
			q.Push(task + 1)
		}
	})
	want := int32(1<<(depth+1) - 1)
	if got := processed.Load(); got != want {
		t.Errorf("processed %d tasks, want %d", got, want)
	}
}

func TestQueuePushBeforeAndDuringDrain(t *testing.T) {
	// Tasks pushed before Drain starts (after NewQueue) live in the
	// overflow list; they must be drained alongside the snapshot.
	q := NewQueue([]int{0, 1})
	q.Push(2)
	q.Push(3)
	var seen [8]atomic.Int32
	q.Drain(3, func(w, task int) {
		seen[task].Add(1)
		if task == 3 {
			q.Push(4)
		}
	})
	for task := 0; task <= 4; task++ {
		if got := seen[task].Load(); got != 1 {
			t.Errorf("task %d processed %d times, want 1", task, got)
		}
	}
	if got := q.Len(); got != 5 {
		t.Errorf("Len = %d, want 5", got)
	}
}

func TestQueueNextManyCallsPastExhaustion(t *testing.T) {
	// The fetch-add cursor overshoots the snapshot on every failed Next;
	// overshoot must never corrupt later overflow dequeues.
	q := NewQueue([]int{1})
	q.Next()
	for i := 0; i < 100; i++ {
		if _, ok := q.Next(); ok {
			t.Fatal("Next returned ok on empty queue")
		}
	}
	q.Push(2)
	if v, ok := q.Next(); !ok || v != 2 {
		t.Errorf("Next after overshoot = %d, %v; want 2, true", v, ok)
	}
}

func TestQueueNilAndEmptySnapshot(t *testing.T) {
	q := NewQueue[int](nil)
	if _, ok := q.Next(); ok {
		t.Error("Next on nil-snapshot queue returned ok")
	}
	q.Push(7)
	if v, ok := q.Next(); !ok || v != 7 {
		t.Errorf("Next = %d, %v; want 7, true", v, ok)
	}
	q.Drain(2, func(w, task int) { t.Errorf("unexpected task %d", task) })
}

func TestSplitThreads(t *testing.T) {
	for _, tc := range []struct {
		threads, loadA, loadB int
		wantA, wantB          int
	}{
		{2, 1, 1, 1, 1},
		{8, 1, 1, 4, 4},
		{8, 3, 1, 6, 2},
		{8, 1, 0, 7, 1}, // one side empty still gets a worker ceiling
		{8, 0, 1, 1, 7}, // ...and the other at least one
		{8, 0, 0, 4, 4}, // degenerate loads fall back to an even split
		{3, 1000, 1, 2, 1},
	} {
		a, b := SplitThreads(tc.threads, tc.loadA, tc.loadB)
		if a != tc.wantA || b != tc.wantB {
			t.Errorf("SplitThreads(%d, %d, %d) = (%d, %d), want (%d, %d)",
				tc.threads, tc.loadA, tc.loadB, a, b, tc.wantA, tc.wantB)
		}
		if a+b != tc.threads || a < 1 || b < 1 {
			t.Errorf("SplitThreads(%d, %d, %d) = (%d, %d): invalid split",
				tc.threads, tc.loadA, tc.loadB, a, b)
		}
	}
}

func TestMutexQueueMatchesQueueSemantics(t *testing.T) {
	// Differential check: both queue variants drain the same dynamic task
	// tree to the same multiset.
	run := func(drain func(fn func(w, task int)), push func(int)) map[int]int {
		var mu sync.Mutex
		counts := make(map[int]int)
		drain(func(w, task int) {
			mu.Lock()
			counts[task]++
			mu.Unlock()
			if task < 50 {
				push(task*2 + 100)
			}
		})
		return counts
	}
	init := []int{1, 2, 3, 4, 5}
	a := NewQueue(append([]int(nil), init...))
	b := NewMutexQueue(append([]int(nil), init...))
	ca := run(func(fn func(w, task int)) { a.Drain(4, fn) }, a.Push)
	cb := run(func(fn func(w, task int)) { b.Drain(4, fn) }, b.Push)
	if len(ca) != len(cb) {
		t.Fatalf("distinct tasks: %d vs %d", len(ca), len(cb))
	}
	for task, n := range ca {
		if cb[task] != n {
			t.Errorf("task %d: %d vs %d executions", task, n, cb[task])
		}
	}
}

func TestDrainCtxCompletesWithoutCancel(t *testing.T) {
	tasks := make([]int, 500)
	for i := range tasks {
		tasks[i] = i
	}
	for name, drain := range map[string]func(context.Context, int, func(int, int)) error{
		"atomic": NewQueue(append([]int(nil), tasks...)).DrainCtx,
		"mutex":  NewMutexQueue(append([]int(nil), tasks...)).DrainCtx,
	} {
		var processed atomic.Int64
		if err := drain(context.Background(), 4, func(w, task int) { processed.Add(1) }); err != nil {
			t.Errorf("%s: DrainCtx = %v", name, err)
		}
		if got := processed.Load(); got != 500 {
			t.Errorf("%s: processed %d tasks, want 500", name, got)
		}
	}
}

func TestDrainCtxStopsEarly(t *testing.T) {
	// Cancel after a handful of tasks; the drain must stop without
	// processing the whole queue and report the context error.
	tasks := make([]int, 10000)
	q := NewQueue(tasks)
	ctx, cancel := context.WithCancel(context.Background())
	var processed atomic.Int64
	err := q.DrainCtx(ctx, 4, func(w, task int) {
		if processed.Add(1) == 8 {
			cancel()
		}
		time.Sleep(50 * time.Microsecond)
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("DrainCtx = %v, want context.Canceled", err)
	}
	if got := processed.Load(); got == int64(len(tasks)) {
		t.Error("cancelled drain processed every task")
	}
}

func TestDrainCtxAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := NewMutexQueue([]int{1, 2, 3})
	var processed atomic.Int64
	err := q.DrainCtx(ctx, 2, func(w, task int) { processed.Add(1) })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("DrainCtx = %v, want context.Canceled", err)
	}
	if got := processed.Load(); got != 0 {
		t.Errorf("processed %d tasks on a dead context", got)
	}
}

func TestDrainCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	q := NewQueue(make([]int, 1<<20))
	err := q.DrainCtx(ctx, 2, func(w, task int) { time.Sleep(20 * time.Microsecond) })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("DrainCtx = %v, want context.DeadlineExceeded", err)
	}
}

func TestParallelCtx(t *testing.T) {
	var ran atomic.Int32
	if err := ParallelCtx(context.Background(), 4, func(ctx context.Context, w int) { ran.Add(1) }); err != nil {
		t.Errorf("ParallelCtx = %v", err)
	}
	if ran.Load() != 4 {
		t.Errorf("ran %d workers, want 4", ran.Load())
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := ParallelCtx(ctx, 4, func(ctx context.Context, w int) { ran.Add(1) }); !errors.Is(err, context.Canceled) {
		t.Errorf("ParallelCtx on dead context = %v", err)
	}
	if ran.Load() != 4 {
		t.Error("workers started on a dead context")
	}
}

func TestPhaseTimer(t *testing.T) {
	var pt PhaseTimer
	pt.Time("a", func() { time.Sleep(time.Millisecond) })
	pt.Add("b", 5*time.Millisecond)
	pt.Add("a", 2*time.Millisecond)

	if got := pt.Phases(); len(got) != 3 {
		t.Fatalf("got %d phases", len(got))
	}
	a, ok := pt.Get("a")
	if !ok || a < 3*time.Millisecond {
		t.Errorf("phase a = %v, %v", a, ok)
	}
	if _, ok := pt.Get("missing"); ok {
		t.Error("Get returned ok for missing phase")
	}
	if total := pt.Total(); total < 8*time.Millisecond {
		t.Errorf("total = %v", total)
	}
}

func TestDefaultThreadsPositive(t *testing.T) {
	if DefaultThreads() < 1 {
		t.Errorf("DefaultThreads = %d", DefaultThreads())
	}
}
