//go:build linux

package exec

import (
	"syscall"
	"time"
	"unsafe"
)

// HasThreadCPUClock reports whether ThreadCPUNs reads a genuine per-thread
// CPU-time clock. On Linux it does; elsewhere it degrades to monotonic
// wall time and busy-time measurements regain their scheduler noise.
const HasThreadCPUClock = true

// clockThreadCPUTimeID is CLOCK_THREAD_CPUTIME_ID from <time.h>: the
// calling thread's consumed CPU time, which does not advance while the
// thread is descheduled.
const clockThreadCPUTimeID = 3

// ThreadCPUNs returns the calling OS thread's consumed CPU time in
// nanoseconds. Deltas of this clock measure work the thread itself did,
// excluding time slices stolen by other goroutines' threads — which is
// what the co-processing cost model needs on an oversubscribed host,
// where CPU join workers and the simulated GPU's host workers time-share
// cores. Callers taking deltas must hold the goroutine on one thread
// (runtime.LockOSThread); the exec worker pools do.
func ThreadCPUNs() int64 {
	var ts syscall.Timespec
	if _, _, errno := syscall.Syscall(syscall.SYS_CLOCK_GETTIME, clockThreadCPUTimeID, uintptr(unsafe.Pointer(&ts)), 0); errno != 0 {
		// clock_gettime on a vDSO-less or restricted host: fall back to
		// wall time rather than report zero busy-time.
		return int64(time.Since(cpuClockEpoch))
	}
	return ts.Sec*1e9 + int64(ts.Nsec)
}

// cpuClockEpoch anchors the wall-clock fallback; only deltas are
// meaningful, matching the thread-CPU clock's contract.
var cpuClockEpoch = time.Now()
