// Package exec is the CPU parallel-execution substrate used by the CPU join
// algorithms (Cbase, cbase-npj, CSH). It provides the two scheduling shapes
// the paper describes for Cbase (§II-B):
//
//   - static segment assignment: the input is cut into equal segments, one
//     per thread (used by the first partitioning pass), and
//   - dynamic task queues: partition tasks and join tasks are pushed into a
//     queue and threads repeatedly dequeue until the queue drains (used by
//     the second partitioning pass and the join phase to tolerate load
//     variance).
//
// Threads are goroutines; the thread count is configurable so experiments
// can reproduce the paper's 20-thread setting or scale to the host.
package exec

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultThreads mirrors the paper's "20 threads" configuration but is
// capped by the host's usable parallelism.
func DefaultThreads() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	return n
}

// Parallel runs fn(worker) on `threads` goroutines and waits for all of
// them. worker ranges over [0, threads).
func Parallel(threads int, fn func(worker int)) {
	if threads <= 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(threads)
	for w := 0; w < threads; w++ {
		go func(w int) {
			defer wg.Done()
			fn(w)
		}(w)
	}
	wg.Wait()
}

// Segment returns the half-open range [lo, hi) of items assigned to the
// given worker when n items are divided into `threads` equal segments.
func Segment(n, threads, worker int) (lo, hi int) {
	per := n / threads
	rem := n % threads
	lo = worker*per + min(worker, rem)
	hi = lo + per
	if worker < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Queue is a dynamic task queue: tasks are appended before the parallel
// phase starts, then workers drain it with Next. Dequeueing is a single
// atomic fetch-add, which is how dynamic load balancing stays cheap even
// with fine-grained tasks.
type Queue[T any] struct {
	mu    sync.Mutex
	tasks []T
	next  int
}

// NewQueue returns a queue pre-loaded with the given tasks.
func NewQueue[T any](tasks []T) *Queue[T] {
	return &Queue[T]{tasks: tasks}
}

// Push appends a task. It is safe to call concurrently with Next, which the
// join phase needs when a large task is split into sub-tasks on the fly
// (Cbase's skew handling).
func (q *Queue[T]) Push(t T) {
	q.mu.Lock()
	q.tasks = append(q.tasks, t)
	q.mu.Unlock()
}

// Next dequeues one task. ok is false when the queue is drained at the time
// of the call. A worker loop should retry via Drain rather than Next when
// other workers may still Push.
func (q *Queue[T]) Next() (t T, ok bool) {
	q.mu.Lock()
	if q.next < len(q.tasks) {
		t = q.tasks[q.next]
		q.next++
		ok = true
	}
	q.mu.Unlock()
	return t, ok
}

// Len returns the total number of tasks ever pushed.
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.tasks)
}

// Drain runs fn on every task using `threads` workers until the queue is
// fully drained, including tasks pushed by fn itself while draining. The
// in-flight counter makes the termination condition exact: the queue is done
// when it is empty and no worker is still executing a task that could push
// more.
func (q *Queue[T]) Drain(threads int, fn func(worker int, t T)) {
	var inflight atomic.Int64
	Parallel(threads, func(worker int) {
		for {
			t, ok := q.Next()
			if !ok {
				if inflight.Load() != 0 {
					// Someone is still working and may push sub-tasks.
					runtime.Gosched()
					continue
				}
				// Queue empty and nobody in flight. Re-poll once to close
				// the race between a Push and the in-flight decrement; a
				// task surfacing here must be processed, not dropped.
				t, ok = q.Next()
				if !ok {
					return
				}
			}
			inflight.Add(1)
			fn(worker, t)
			inflight.Add(-1)
		}
	})
}

// PhaseTimer records named phase durations for an algorithm run, which is
// how the experiment harness reproduces the paper's per-phase breakdowns
// (Figure 1, Table I).
type PhaseTimer struct {
	mu     sync.Mutex
	phases []Phase
}

// Phase is one named timed section of an algorithm.
type Phase struct {
	Name     string
	Duration time.Duration
}

// Time runs fn and records its wall-clock duration under name.
func (pt *PhaseTimer) Time(name string, fn func()) {
	start := time.Now()
	fn()
	d := time.Since(start)
	pt.mu.Lock()
	pt.phases = append(pt.phases, Phase{Name: name, Duration: d})
	pt.mu.Unlock()
}

// Add records an externally measured (or modelled) duration under name.
func (pt *PhaseTimer) Add(name string, d time.Duration) {
	pt.mu.Lock()
	pt.phases = append(pt.phases, Phase{Name: name, Duration: d})
	pt.mu.Unlock()
}

// Phases returns the recorded phases in record order.
func (pt *PhaseTimer) Phases() []Phase {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	out := make([]Phase, len(pt.phases))
	copy(out, pt.phases)
	return out
}

// Total returns the sum of all recorded phase durations.
func (pt *PhaseTimer) Total() time.Duration {
	var sum time.Duration
	for _, p := range pt.Phases() {
		sum += p.Duration
	}
	return sum
}

// Get returns the duration recorded under name (summed if recorded more
// than once) and whether it was present.
func (pt *PhaseTimer) Get(name string) (time.Duration, bool) {
	var sum time.Duration
	found := false
	for _, p := range pt.Phases() {
		if p.Name == name {
			sum += p.Duration
			found = true
		}
	}
	return sum, found
}
