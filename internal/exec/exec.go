// Package exec is the CPU parallel-execution substrate used by the CPU join
// algorithms (Cbase, cbase-npj, CSH). It provides the two scheduling shapes
// the paper describes for Cbase (§II-B):
//
//   - static segment assignment: the input is cut into equal segments, one
//     per thread (used by the first partitioning pass), and
//   - dynamic task queues: partition tasks and join tasks are pushed into a
//     queue and threads repeatedly dequeue until the queue drains (used by
//     the second partitioning pass and the join phase to tolerate load
//     variance).
//
// Threads are goroutines; the thread count is configurable so experiments
// can reproduce the paper's 20-thread setting or scale to the host.
package exec

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultThreads mirrors the paper's "20 threads" configuration but is
// capped by the host's usable parallelism.
func DefaultThreads() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	return n
}

// Parallel runs fn(worker) on `threads` goroutines and waits for all of
// them. worker ranges over [0, threads). Each worker goroutine is pinned
// to its OS thread for the duration of fn so that ThreadCPUNs deltas taken
// inside fn are stable — a migrating goroutine would difference two
// different threads' CPU clocks.
func Parallel(threads int, fn func(worker int)) {
	if threads <= 1 {
		runtime.LockOSThread()
		defer runtime.UnlockOSThread()
		fn(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(threads)
	for w := 0; w < threads; w++ {
		go func(w int) {
			defer wg.Done()
			runtime.LockOSThread()
			defer runtime.UnlockOSThread()
			fn(w)
		}(w)
	}
	wg.Wait()
}

// Segment returns the half-open range [lo, hi) of items assigned to the
// given worker when n items are divided into `threads` equal segments.
func Segment(n, threads, worker int) (lo, hi int) {
	per := n / threads
	rem := n % threads
	lo = worker*per + min(worker, rem)
	hi = lo + per
	if worker < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ParallelCtx runs fn(ctx, worker) on `threads` goroutines and waits for
// all of them, returning ctx.Err() if ctx was done by the time the workers
// finished. Cancellation is cooperative: a worker running a long loop
// should poll ctx.Done() at a coarse granularity (e.g. per segment chunk);
// ParallelCtx itself only refuses to start workers when ctx is already
// dead.
func ParallelCtx(ctx context.Context, threads int, fn func(ctx context.Context, worker int)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	Parallel(threads, func(w int) { fn(ctx, w) })
	return ctx.Err()
}

// SplitThreads divides `threads` workers between two concurrent tasks in
// proportion to their loads (e.g. tuple counts), guaranteeing each side at
// least one worker. The partition phase uses it to overlap the independent
// R and S partitioning passes instead of running them back-to-back.
func SplitThreads(threads int, loadA, loadB int) (a, b int) {
	if threads < 2 {
		return 1, 1 // caller must run the sides sequentially
	}
	if loadA <= 0 && loadB <= 0 {
		loadA, loadB = 1, 1
	}
	a = int(float64(threads)*float64(loadA)/float64(loadA+loadB) + 0.5)
	if a < 1 {
		a = 1
	}
	if a > threads-1 {
		a = threads - 1
	}
	return a, threads - a
}

// Queue is a dynamic task queue: tasks are appended before the parallel
// phase starts, then workers drain it with Next. Dequeueing from the
// initial task set is a single atomic fetch-add on an immutable snapshot —
// how dynamic load balancing stays cheap even with fine-grained tasks.
// Tasks pushed while draining (Cbase's split-task pattern) land in a small
// mutex-guarded overflow list, so the locked slow path is taken only once
// the snapshot is exhausted and concurrent Push is still possible.
type Queue[T any] struct {
	base []T          // immutable after NewQueue; the fetch-add fast path
	next atomic.Int64 // claim cursor into base; may overshoot len(base)

	mu       sync.Mutex
	over     []T //skewlint:guarded-by mu
	overNext int //skewlint:guarded-by mu
}

// NewQueue returns a queue pre-loaded with the given tasks. The slice is
// retained as the queue's immutable fast-path snapshot and must not be
// modified by the caller afterwards.
func NewQueue[T any](tasks []T) *Queue[T] {
	return &Queue[T]{base: tasks}
}

// Push appends a task. It is safe to call concurrently with Next, which the
// join phase needs when a large task is split into sub-tasks on the fly
// (Cbase's skew handling). Pushed tasks go to the overflow list; they never
// invalidate the lock-free snapshot other workers are draining.
func (q *Queue[T]) Push(t T) {
	q.mu.Lock()
	q.over = append(q.over, t)
	q.mu.Unlock()
}

// Next dequeues one task. ok is false when the queue is drained at the time
// of the call. A worker loop should retry via Drain rather than Next when
// other workers may still Push.
func (q *Queue[T]) Next() (t T, ok bool) {
	// Fast path: claim a slot in the immutable snapshot with one atomic
	// fetch-add. No lock, and no contention beyond the cursor cache line.
	if i := q.next.Add(1) - 1; i < int64(len(q.base)) {
		return q.base[i], true
	}
	// Slow path: the snapshot is exhausted; fall back to the overflow list,
	// which a concurrent Push may still be growing.
	q.mu.Lock()
	if q.overNext < len(q.over) {
		t = q.over[q.overNext]
		q.overNext++
		ok = true
	}
	q.mu.Unlock()
	return t, ok
}

// Len returns the total number of tasks ever pushed.
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.base) + len(q.over)
}

// Drain runs fn on every task using `threads` workers until the queue is
// fully drained, including tasks pushed by fn itself while draining.
func (q *Queue[T]) Drain(threads int, fn func(worker int, t T)) {
	if drainQueue[T](q, nil, threads, fn) != nil {
		panic("exec: drain with no done channel cannot be cancelled")
	}
}

// DrainCtx is Drain with cancellation: workers stop claiming tasks as soon
// as ctx is done, abandoning any tasks still queued. It returns ctx.Err()
// when the drain was cut short, nil when the queue drained fully. A task
// already being executed when ctx fires runs to completion — cancellation
// is between-task, so a cancelled drain never leaves a task half-applied.
func (q *Queue[T]) DrainCtx(ctx context.Context, threads int, fn func(worker int, t T)) error {
	if drainQueue[T](q, ctx.Done(), threads, fn) != nil {
		return ctx.Err()
	}
	return nil
}

// nexter is the dequeue interface drainQueue needs; Queue and MutexQueue
// both provide it.
type nexter[T any] interface {
	Next() (T, bool)
}

// drainQueue implements Drain/DrainCtx for both queue variants. The
// in-flight counter makes the termination condition exact: the queue is
// done when it is empty and no worker is still executing a task that could
// push more. done (may be nil = never) stops workers between tasks; the
// return value is non-nil iff the drain was cut short.
func drainQueue[T any](q nexter[T], done <-chan struct{}, threads int, fn func(worker int, t T)) error {
	var inflight atomic.Int64
	var stopped atomic.Bool
	Parallel(threads, func(worker int) {
		idle := 0
		for {
			if done != nil {
				select {
				case <-done:
					stopped.Store(true)
					return
				default:
				}
			}
			t, ok := q.Next()
			if !ok {
				if inflight.Load() != 0 {
					// Someone is still working and may push sub-tasks. Back
					// off instead of hammering the queue: the first rounds
					// yield, then sleeps grow exponentially so a long final
					// task doesn't burn the other workers' cores.
					idle++
					backoff(idle)
					continue
				}
				// Queue empty and nobody in flight. Re-poll once to close
				// the race between a Push and the in-flight decrement; a
				// task surfacing here must be processed, not dropped.
				t, ok = q.Next()
				if !ok {
					return
				}
			}
			idle = 0
			inflight.Add(1)
			fn(worker, t)
			inflight.Add(-1)
		}
	})
	if stopped.Load() {
		return context.Canceled
	}
	return nil
}

// backoff sleeps an idle drain worker: a few yields first (sub-tasks are
// usually pushed within microseconds), then exponentially growing sleeps
// capped at ~64us so wakeup latency stays far below any real task.
func backoff(idle int) {
	const yields = 4
	if idle <= yields {
		runtime.Gosched()
		return
	}
	shift := idle - yields - 1
	if shift > 6 {
		shift = 6
	}
	time.Sleep(time.Microsecond << shift)
}

// MutexQueue is the seed implementation of the dynamic task queue: one
// mutex guards both the task list and the dequeue cursor. It is retained
// solely as the baseline the lock-free Queue is benchmarked against (see
// internal/bench's partition report and BenchmarkQueueDrain); the join
// algorithms select it via radix.SchedMutex.
type MutexQueue[T any] struct {
	mu    sync.Mutex
	tasks []T //skewlint:guarded-by mu
	next  int //skewlint:guarded-by mu
}

// NewMutexQueue returns a mutex-guarded queue pre-loaded with tasks.
func NewMutexQueue[T any](tasks []T) *MutexQueue[T] {
	return &MutexQueue[T]{tasks: tasks}
}

// Push appends a task; safe concurrently with Next.
func (q *MutexQueue[T]) Push(t T) {
	q.mu.Lock()
	q.tasks = append(q.tasks, t)
	q.mu.Unlock()
}

// Next dequeues one task under the queue mutex.
func (q *MutexQueue[T]) Next() (t T, ok bool) {
	q.mu.Lock()
	if q.next < len(q.tasks) {
		t = q.tasks[q.next]
		q.next++
		ok = true
	}
	q.mu.Unlock()
	return t, ok
}

// Len returns the total number of tasks ever pushed.
func (q *MutexQueue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.tasks)
}

// Drain runs fn on every task using `threads` workers until the queue is
// fully drained, including tasks pushed by fn itself while draining.
func (q *MutexQueue[T]) Drain(threads int, fn func(worker int, t T)) {
	if drainQueue[T](q, nil, threads, fn) != nil {
		panic("exec: drain with no done channel cannot be cancelled")
	}
}

// DrainCtx is Drain with between-task cancellation; see Queue.DrainCtx.
func (q *MutexQueue[T]) DrainCtx(ctx context.Context, threads int, fn func(worker int, t T)) error {
	if drainQueue[T](q, ctx.Done(), threads, fn) != nil {
		return ctx.Err()
	}
	return nil
}

// PhaseTimer records named phase durations for an algorithm run, which is
// how the experiment harness reproduces the paper's per-phase breakdowns
// (Figure 1, Table I).
type PhaseTimer struct {
	mu     sync.Mutex
	phases []Phase //skewlint:guarded-by mu
}

// Phase is one named timed section of an algorithm.
type Phase struct {
	Name     string
	Duration time.Duration
}

// Time runs fn and records its wall-clock duration under name.
func (pt *PhaseTimer) Time(name string, fn func()) {
	start := time.Now()
	fn()
	d := time.Since(start)
	pt.mu.Lock()
	pt.phases = append(pt.phases, Phase{Name: name, Duration: d})
	pt.mu.Unlock()
}

// Add records an externally measured (or modelled) duration under name.
func (pt *PhaseTimer) Add(name string, d time.Duration) {
	pt.mu.Lock()
	pt.phases = append(pt.phases, Phase{Name: name, Duration: d})
	pt.mu.Unlock()
}

// Phases returns the recorded phases in record order.
func (pt *PhaseTimer) Phases() []Phase {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	out := make([]Phase, len(pt.phases))
	copy(out, pt.phases)
	return out
}

// Total returns the sum of all recorded phase durations.
func (pt *PhaseTimer) Total() time.Duration {
	var sum time.Duration
	for _, p := range pt.Phases() {
		sum += p.Duration
	}
	return sum
}

// Get returns the duration recorded under name (summed if recorded more
// than once) and whether it was present.
func (pt *PhaseTimer) Get(name string) (time.Duration, bool) {
	var sum time.Duration
	found := false
	for _, p := range pt.Phases() {
		if p.Name == name {
			sum += p.Duration
			found = true
		}
	}
	return sum, found
}
