//go:build !linux

package exec

import "time"

// HasThreadCPUClock reports whether ThreadCPUNs reads a genuine per-thread
// CPU-time clock. Without one, busy-time measurements fall back to
// monotonic wall time and absorb time slices other threads consumed.
const HasThreadCPUClock = false

// ThreadCPUNs falls back to monotonic wall time on platforms without a
// portable thread CPU clock. Only deltas are meaningful.
func ThreadCPUNs() int64 { return int64(time.Since(cpuClockEpoch)) }

// cpuClockEpoch anchors the fallback clock.
var cpuClockEpoch = time.Now()
