package exec

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestGroupWaitsForAll(t *testing.T) {
	var g Group
	var ran atomic.Int64
	for i := 0; i < 32; i++ {
		g.Go(func() error {
			ran.Add(1)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatalf("Wait = %v", err)
	}
	if ran.Load() != 32 {
		t.Fatalf("ran %d of 32 goroutines", ran.Load())
	}
}

func TestGroupKeepsFirstError(t *testing.T) {
	errA := errors.New("a")
	var g Group
	g.Go(func() error { return errA })
	if err := g.Wait(); err != errA {
		t.Fatalf("Wait = %v, want %v", err, errA)
	}
}

func TestGroupErrorDoesNotAbortOthers(t *testing.T) {
	// Unlike a cancelling errgroup, every started function must run to
	// completion before Wait returns — the co-processing executor relies
	// on this so a failed backend never leaves the other mid-flush.
	var g Group
	var ran atomic.Int64
	g.Go(func() error { return errors.New("boom") })
	for i := 0; i < 8; i++ {
		g.Go(func() error {
			ran.Add(1)
			return nil
		})
	}
	if err := g.Wait(); err == nil {
		t.Fatal("Wait = nil, want error")
	}
	if ran.Load() != 8 {
		t.Fatalf("ran %d of 8 goroutines after error", ran.Load())
	}
}

func TestGroupZeroValueWait(t *testing.T) {
	var g Group
	if err := g.Wait(); err != nil {
		t.Fatalf("empty Wait = %v", err)
	}
}
