// Package asciiplot renders experiment series as log-scale line charts in
// plain text, so the shapes of the paper's figures — flat partition lines,
// exploding join curves, crossovers — are visible directly in a terminal.
package asciiplot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named line.
type Series struct {
	Name string
	Ys   []float64 // one value per x position; <= 0 values are skipped
}

// markers distinguish series; the legend maps them back to names.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Render draws the series over the given x positions on a log-scale y
// axis, `height` rows tall (minimum 4; 0 = default 14).
func Render(w io.Writer, title string, xs []float64, series []Series, height int) {
	if height <= 0 {
		height = 14
	}
	if height < 4 {
		height = 4
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, y := range s.Ys {
			if y <= 0 {
				continue
			}
			lo = math.Min(lo, y)
			hi = math.Max(hi, y)
		}
	}
	if math.IsInf(lo, 1) {
		fmt.Fprintf(w, "%s\n  (no positive data)\n", title)
		return
	}
	if hi <= lo {
		hi = lo * 10
	}
	logLo, logHi := math.Log10(lo), math.Log10(hi)

	const colWidth = 6
	width := len(xs) * colWidth
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	row := func(y float64) int {
		frac := (math.Log10(y) - logLo) / (logHi - logLo)
		r := int(math.Round(float64(height-1) * frac))
		return height - 1 - r // row 0 is the top
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for xi, y := range s.Ys {
			if y <= 0 || xi >= len(xs) {
				continue
			}
			grid[row(y)][xi*colWidth+colWidth/2] = m
		}
	}

	fmt.Fprintln(w, title)
	for r := 0; r < height; r++ {
		label := "          "
		switch r {
		case 0:
			label = fmt.Sprintf("%9.3g ", hi)
		case height - 1:
			label = fmt.Sprintf("%9.3g ", lo)
		case (height - 1) / 2:
			label = fmt.Sprintf("%9.3g ", math.Pow(10, (logLo+logHi)/2))
		}
		fmt.Fprintf(w, "%s|%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(w, "%s+%s\n", strings.Repeat(" ", 10), strings.Repeat("-", width))
	var xl strings.Builder
	xl.WriteString(strings.Repeat(" ", 11))
	for _, x := range xs {
		xl.WriteString(fmt.Sprintf("%-*s", colWidth, fmt.Sprintf("%.1f", x)))
	}
	fmt.Fprintln(w, xl.String())
	for si, s := range series {
		fmt.Fprintf(w, "    %c %s\n", markers[si%len(markers)], s.Name)
	}
	fmt.Fprintln(w)
}
