package asciiplot

import (
	"strings"
	"testing"
)

func TestRenderBasics(t *testing.T) {
	var sb strings.Builder
	Render(&sb, "test chart", []float64{0, 0.5, 1.0}, []Series{
		{Name: "flat", Ys: []float64{10, 10, 10}},
		{Name: "rising", Ys: []float64{1, 100, 10000}},
	}, 10)
	out := sb.String()
	for _, want := range []string{"test chart", "flat", "rising", "*", "o", "0.0", "1.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 14 {
		t.Errorf("only %d lines rendered", len(lines))
	}
}

func TestRenderShapePlacement(t *testing.T) {
	// A rising series must place its last marker above (earlier row than)
	// its first.
	var sb strings.Builder
	Render(&sb, "t", []float64{0, 1}, []Series{
		{Name: "up", Ys: []float64{1, 1000}},
	}, 12)
	lines := strings.Split(sb.String(), "\n")
	// Markers sit at label(10) + '|' + column*6 + 3: x=0 → 14, x=1 → 20.
	highValueRow, lowValueRow := -1, -1
	for i, l := range lines {
		if !strings.Contains(l, "|") {
			continue
		}
		if idx := strings.IndexByte(l, '*'); idx >= 18 {
			highValueRow = i // second x column: the large value
		} else if idx >= 0 {
			lowValueRow = i // first x column: the small value
		}
	}
	if highValueRow == -1 || lowValueRow == -1 {
		t.Fatalf("markers not found:\n%s", sb.String())
	}
	if highValueRow >= lowValueRow {
		t.Errorf("rising series: high value at row %d should be above low value at row %d:\n%s",
			highValueRow, lowValueRow, sb.String())
	}
}

func TestRenderNoPositiveData(t *testing.T) {
	var sb strings.Builder
	Render(&sb, "empty", []float64{0}, []Series{{Name: "x", Ys: []float64{0}}}, 8)
	if !strings.Contains(sb.String(), "no positive data") {
		t.Errorf("expected placeholder, got:\n%s", sb.String())
	}
}

func TestRenderSingleValue(t *testing.T) {
	var sb strings.Builder
	Render(&sb, "one", []float64{0.5}, []Series{{Name: "p", Ys: []float64{42}}}, 0)
	if !strings.Contains(sb.String(), "*") {
		t.Errorf("marker missing:\n%s", sb.String())
	}
}
