package outbuf

import "skewjoin/internal/relation"

// Writer is the result-emission interface shared by the overwriting ring
// Buffer and the staging Tape. GPU kernels write through it so that the
// simulator can swap the block's output destination: in serial execution a
// block writes straight into its SM's shared Buffer; in host-parallel
// execution it writes into a private Tape that is later replayed into the
// shared Buffer in block-index order.
type Writer interface {
	Push(k relation.Key, pr, ps relation.Payload)
	PushRun(k relation.Key, rps []relation.Payload, ps relation.Payload)
	PushRunS(k relation.Key, pr relation.Payload, sps []relation.Payload)
	PushBatch(rs []Result)
	Count() uint64
}

var (
	_ Writer = (*Buffer)(nil)
	_ Writer = (*Tape)(nil)
)

// Tape op kinds. Consecutive single results coalesce into one opSingles
// entry so a probe loop's per-match Pushes cost one op record, not one per
// result.
const (
	opSingles = iota // singles[Lo:Hi] pushed one by one
	opRunR           // PushRun(Key, Run, PS)
	opRunS           // PushRunS(Key, PR, Run)
)

type tapeOp struct {
	kind   uint8
	lo, hi int // singles range (opSingles only)
	key    relation.Key
	pr, ps relation.Payload
	run    []relation.Payload // retained caller slice (opRunR/opRunS)
}

// Tape records a sequence of emit operations so they can be replayed into
// a Buffer later, reproducing exactly the ring writes, count, checksum and
// flush batches the same operations would have produced if applied
// directly. One Tape is owned by one simulated thread block during a
// host-parallel kernel launch; the simulator replays the tapes in
// block-index order to make parallel execution bit-identical to serial.
//
// Run operations (PushRun/PushRunS) retain the payload slice instead of
// copying it — the skew fast paths stay O(1) per call — so callers must
// not mutate those slices before Replay. Individually pushed results are
// buffered on the tape, which makes its memory proportional to the
// block's individually emitted output (runs stay cheap); that is the cost
// of deferring the shared ring writes until the deterministic merge.
//
// When no flush consumer is installed on the destination buffers the
// record stream is unobservable — the ring overwrites, Flush is a no-op,
// and only the count and linear checksum survive — so SummaryOnly puts
// the tape in a mode that folds each operation into those two scalars
// and retains nothing. A skewed launch's output then stages in O(1)
// memory per block instead of materialising the whole result set.
type Tape struct {
	ops      []tapeOp
	singles  []Result
	count    uint64
	checksum uint64
	sumOnly  bool
}

// SummaryOnly switches the tape to summary-only staging: operations
// accumulate the same count and order-independent checksum a Buffer
// would, but no records are retained and Replay transfers just the two
// scalars. Only valid when the destination buffer has no flush consumer
// (the simulator checks HasFlush before choosing this mode); it must be
// called before the first push.
func (t *Tape) SummaryOnly() { t.sumOnly = true }

// Push records one result.
func (t *Tape) Push(k relation.Key, pr, ps relation.Payload) {
	if t.sumOnly {
		t.count++
		t.checksum += coefKey*uint64(k) + coefPayloadR*uint64(pr) + coefPayloadS*uint64(ps)
		return
	}
	t.singles = append(t.singles, Result{Key: k, PayloadR: pr, PayloadS: ps})
	t.extendSingles(1)
}

// PushBatch records a staged batch of heterogeneous results. The batch
// slice is the caller's scratch: its contents are copied.
func (t *Tape) PushBatch(rs []Result) {
	if len(rs) == 0 {
		return
	}
	if t.sumOnly {
		var sum uint64
		for _, r := range rs {
			sum += coefKey*uint64(r.Key) + coefPayloadR*uint64(r.PayloadR) + coefPayloadS*uint64(r.PayloadS)
		}
		t.count += uint64(len(rs))
		t.checksum += sum
		return
	}
	t.singles = append(t.singles, rs...)
	t.extendSingles(len(rs))
}

// extendSingles grows the trailing opSingles entry by n results, creating
// it if the last op is not a singles run ending at the buffer tail.
func (t *Tape) extendSingles(n int) {
	t.count += uint64(n)
	end := len(t.singles)
	if k := len(t.ops); k > 0 && t.ops[k-1].kind == opSingles && t.ops[k-1].hi == end-n {
		t.ops[k-1].hi = end
		return
	}
	t.ops = append(t.ops, tapeOp{kind: opSingles, lo: end - n, hi: end})
}

// PushRun records a run of results matching one S tuple (see
// Buffer.PushRun). rps is retained, not copied.
func (t *Tape) PushRun(k relation.Key, rps []relation.Payload, ps relation.Payload) {
	if len(rps) == 0 {
		return
	}
	t.count += uint64(len(rps))
	if t.sumOnly {
		var prSum uint64
		for _, pr := range rps {
			prSum += uint64(pr)
		}
		n := uint64(len(rps))
		t.checksum += coefPayloadR*prSum + n*(coefKey*uint64(k)+coefPayloadS*uint64(ps))
		return
	}
	t.ops = append(t.ops, tapeOp{kind: opRunR, key: k, ps: ps, run: rps})
}

// PushRunS records a run of results matching one R tuple (see
// Buffer.PushRunS). sps is retained, not copied.
func (t *Tape) PushRunS(k relation.Key, pr relation.Payload, sps []relation.Payload) {
	if len(sps) == 0 {
		return
	}
	t.count += uint64(len(sps))
	if t.sumOnly {
		var psSum uint64
		for _, ps := range sps {
			psSum += uint64(ps)
		}
		n := uint64(len(sps))
		t.checksum += coefPayloadS*psSum + n*(coefKey*uint64(k)+coefPayloadR*uint64(pr))
		return
	}
	t.ops = append(t.ops, tapeOp{kind: opRunS, key: k, pr: pr, run: sps})
}

// Count returns the number of results recorded so far.
func (t *Tape) Count() uint64 { return t.count }

// Replay applies the recorded operations to dst in record order. The
// resulting ring contents, cursor, count, checksum and flush callbacks are
// bit-identical to issuing the original calls against dst directly:
// a singles run replays through PushBatch, which performs the same
// per-result ring writes and wrap-time flushes as individual Pushes.
func (t *Tape) Replay(dst *Buffer) {
	if t.sumOnly {
		// Summary-only staging: the destination has no flush consumer, so
		// the only observable effects of the original pushes are the two
		// linear scalars. Transfer them directly.
		dst.count += t.count
		dst.checksum += t.checksum
		return
	}
	for i := range t.ops {
		op := &t.ops[i]
		switch op.kind {
		case opSingles:
			dst.PushBatch(t.singles[op.lo:op.hi])
		case opRunR:
			dst.PushRun(op.key, op.run, op.ps)
		case opRunS:
			dst.PushRunS(op.key, op.pr, op.run)
		}
	}
}

// Reset clears the tape for reuse, keeping its capacity and mode.
func (t *Tape) Reset() {
	t.ops = t.ops[:0]
	t.singles = t.singles[:0]
	t.count = 0
	t.checksum = 0
}
