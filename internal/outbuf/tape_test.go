package outbuf

import (
	"math/rand"
	"testing"

	"skewjoin/internal/relation"
)

// applyOps drives the same random operation sequence against any Writer.
func applyOps(w Writer, rng *rand.Rand, nOps int) {
	for i := 0; i < nOps; i++ {
		switch rng.Intn(4) {
		case 0:
			w.Push(relation.Key(rng.Uint32()), relation.Payload(rng.Uint32()), relation.Payload(rng.Uint32()))
		case 1:
			run := make([]relation.Payload, rng.Intn(9))
			for j := range run {
				run[j] = relation.Payload(rng.Uint32())
			}
			w.PushRun(relation.Key(rng.Uint32()), run, relation.Payload(rng.Uint32()))
		case 2:
			run := make([]relation.Payload, rng.Intn(9))
			for j := range run {
				run[j] = relation.Payload(rng.Uint32())
			}
			w.PushRunS(relation.Key(rng.Uint32()), relation.Payload(rng.Uint32()), run)
		default:
			batch := make([]Result, rng.Intn(7))
			for j := range batch {
				batch[j] = Result{
					Key:      relation.Key(rng.Uint32()),
					PayloadR: relation.Payload(rng.Uint32()),
					PayloadS: relation.Payload(rng.Uint32()),
				}
			}
			w.PushBatch(batch)
		}
	}
}

// TestTapeReplayMatchesDirect drives an identical random operation stream
// into a Buffer directly and into a Tape replayed into a second Buffer:
// ring contents, count, checksum and the flush batch sequence must all be
// bit-identical. This is the invariant that makes host-parallel GPU
// simulation reproducible: a block's tape replay is indistinguishable
// from the block having written to the shared buffer itself.
func TestTapeReplayMatchesDirect(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		var directBatches, replayBatches [][]Result
		record := func(dst *[][]Result) FlushFunc {
			return func(batch []Result) {
				cp := make([]Result, len(batch))
				copy(cp, batch)
				*dst = append(*dst, cp)
			}
		}

		direct := New(64)
		direct.SetFlush(record(&directBatches))
		applyOps(direct, rand.New(rand.NewSource(seed)), 200)
		direct.Flush()

		var tape Tape
		applyOps(&tape, rand.New(rand.NewSource(seed)), 200)
		replayed := New(64)
		replayed.SetFlush(record(&replayBatches))
		tape.Replay(replayed)
		replayed.Flush()

		if tape.Count() != direct.Count() {
			t.Fatalf("seed %d: tape count %d, direct count %d", seed, tape.Count(), direct.Count())
		}
		ds, rs := Summarize([]*Buffer{direct}), Summarize([]*Buffer{replayed})
		if ds != rs {
			t.Fatalf("seed %d: direct summary %+v, replay summary %+v", seed, ds, rs)
		}
		if len(directBatches) != len(replayBatches) {
			t.Fatalf("seed %d: %d direct flush batches, %d replayed", seed, len(directBatches), len(replayBatches))
		}
		for i := range directBatches {
			if len(directBatches[i]) != len(replayBatches[i]) {
				t.Fatalf("seed %d: batch %d length %d vs %d", seed, i, len(directBatches[i]), len(replayBatches[i]))
			}
			for j := range directBatches[i] {
				if directBatches[i][j] != replayBatches[i][j] {
					t.Fatalf("seed %d: batch %d result %d: %+v vs %+v",
						seed, i, j, directBatches[i][j], replayBatches[i][j])
				}
			}
		}
	}
}

// TestTapeCoalescesSingles checks the op-journal compression: consecutive
// Push/PushBatch calls extend one opSingles record instead of growing the
// journal per result.
func TestTapeCoalescesSingles(t *testing.T) {
	var tape Tape
	for i := 0; i < 100; i++ {
		tape.Push(relation.Key(i), 1, 2)
	}
	tape.PushBatch([]Result{{Key: 7}, {Key: 8}})
	if len(tape.ops) != 1 {
		t.Fatalf("got %d ops for a pure singles stream, want 1", len(tape.ops))
	}
	tape.PushRun(9, []relation.Payload{1}, 2)
	tape.Push(10, 1, 2)
	if len(tape.ops) != 3 {
		t.Fatalf("got %d ops after run + single, want 3", len(tape.ops))
	}
	if tape.Count() != 104 {
		t.Fatalf("count %d, want 104", tape.Count())
	}
}

// TestTapeReset reuses a tape after Reset and checks the replay reflects
// only the second recording.
func TestTapeReset(t *testing.T) {
	var tape Tape
	tape.Push(1, 2, 3)
	tape.PushRun(4, []relation.Payload{5, 6}, 7)
	tape.Reset()
	if tape.Count() != 0 || len(tape.ops) != 0 {
		t.Fatalf("after Reset: count %d, %d ops", tape.Count(), len(tape.ops))
	}
	tape.Push(8, 9, 10)

	want := New(16)
	want.Push(8, 9, 10)
	got := New(16)
	tape.Replay(got)
	if gs, ws := Summarize([]*Buffer{got}), Summarize([]*Buffer{want}); gs != ws {
		t.Fatalf("replay after reset: %+v, want %+v", gs, ws)
	}
}

// TestTapeEmptyRunsSkipped mirrors Buffer behaviour: zero-length runs are
// no-ops and must not leave journal entries behind.
func TestTapeEmptyRunsSkipped(t *testing.T) {
	var tape Tape
	tape.PushRun(1, nil, 2)
	tape.PushRunS(3, 4, nil)
	tape.PushBatch(nil)
	if tape.Count() != 0 || len(tape.ops) != 0 {
		t.Fatalf("empty ops recorded: count %d, %d ops", tape.Count(), len(tape.ops))
	}
}

// TestTapeSummaryOnlyMatchesFull drives an identical random operation
// stream into a full tape and a summary-only tape: after replaying both
// into fresh consumer-less buffers, count and checksum must agree — and
// the summary-only tape must have retained no records.
func TestTapeSummaryOnlyMatchesFull(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		var full, sum Tape
		sum.SummaryOnly()
		applyOps(&full, rand.New(rand.NewSource(seed)), 200)
		applyOps(&sum, rand.New(rand.NewSource(seed)), 200)
		if full.Count() != sum.Count() {
			t.Fatalf("seed %d: counts diverge: %d vs %d", seed, full.Count(), sum.Count())
		}
		a, b := New(8), New(8)
		full.Replay(a)
		sum.Replay(b)
		if a.Count() != b.Count() || a.Checksum() != b.Checksum() {
			t.Fatalf("seed %d: summary-only replay (%d, %d) != full replay (%d, %d)",
				seed, b.Count(), b.Checksum(), a.Count(), a.Checksum())
		}
		if len(sum.ops) != 0 || len(sum.singles) != 0 {
			t.Fatalf("seed %d: summary-only tape retained records: %d ops, %d singles",
				seed, len(sum.ops), len(sum.singles))
		}
	}
}

// TestTapeSummaryOnlyReset: Reset keeps the mode and clears the scalars.
func TestTapeSummaryOnlyReset(t *testing.T) {
	var tape Tape
	tape.SummaryOnly()
	tape.Push(1, 2, 3)
	tape.Reset()
	if tape.Count() != 0 || tape.checksum != 0 {
		t.Fatalf("reset left count %d checksum %d", tape.Count(), tape.checksum)
	}
	tape.Push(1, 2, 3)
	if len(tape.singles) != 0 {
		t.Fatal("summary-only mode lost across Reset")
	}
}
