// Package outbuf implements the paper's join-output consumption model.
//
// In volcano-style query processing the join output is consumed by an upper
// operator, so the paper allocates one output buffer per CPU thread (or GPU
// thread block) and overwrites it when it is full (§III). Buffer reproduces
// that: every result tuple is written into a fixed-capacity ring, and when
// the ring wraps, old results are overwritten. The write work is therefore
// proportional to the output cardinality — the quantity that explodes under
// skew — without requiring O(output) memory.
//
// Because outputs are overwritten, algorithms are verified through two
// order-independent summaries maintained alongside the ring:
//
//   - Count: the exact number of result tuples emitted, and
//   - Checksum: a linear combination Σ (A·key + B·payloadR + C·payloadS)
//     over all emitted results (mod 2^64).
//
// The linear form makes the expected checksum computable in O(N) by the
// oracle package even when the output itself has billions of tuples.
package outbuf

import (
	"skewjoin/internal/hashfn"
	"skewjoin/internal/relation"
	"skewjoin/internal/sanitize"
)

// Checksum coefficients. Odd constants so multiplication is invertible
// mod 2^64; any miscounted or altered result almost surely changes the sum.
const (
	coefKey      = 0x9e3779b97f4a7c15
	coefPayloadR = 0xc2b2ae3d27d4eb4f
	coefPayloadS = 0x165667b19e3779f9
)

// Result is one join output tuple: the join key plus both payloads.
type Result struct {
	Key      relation.Key
	PayloadR relation.Payload
	PayloadS relation.Payload
}

// Buffer is a fixed-capacity overwriting output ring owned by one worker
// (CPU thread or GPU thread block). It is not safe for concurrent use; each
// worker owns its buffer, as in the paper.
type Buffer struct {
	ring     []Result // power-of-two length
	mask     int
	pos      int // monotonically increasing; ring index is pos & mask
	count    uint64
	checksum uint64
	onFlush  FlushFunc
}

// FlushFunc consumes one full batch of results — the "upper level query
// operator" of the paper's volcano model. The slice is the buffer's ring
// and is overwritten after the call returns; consumers must not retain it.
type FlushFunc func(batch []Result)

// DefaultCapacity is the per-worker ring size used when callers pass 0.
// Small enough that the buffer stays cache-resident, large enough that the
// wrap bookkeeping is negligible.
const DefaultCapacity = 4096

// New returns a buffer with the given ring capacity, rounded up to a power
// of two (0 = DefaultCapacity). The power-of-two length lets the hot emit
// loops replace the wrap branch with a mask and drop bounds checks.
func New(capacity int) *Buffer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	capacity = hashfn.NextPow2(capacity)
	if sanitize.Enabled && capacity&(capacity-1) != 0 {
		sanitize.Failf("outbuf: ring capacity %d is not a power of two; pos&mask indexing would skip slots", capacity)
	}
	return &Buffer{ring: make([]Result, capacity), mask: capacity - 1}
}

// SetFlush installs a consumer that is handed every full ring batch (and
// the final partial batch via Flush). A nil consumer restores the plain
// overwrite-when-full behaviour.
func (b *Buffer) SetFlush(fn FlushFunc) { b.onFlush = fn }

// HasFlush reports whether a consumer is installed. Without one the
// record stream is unobservable (the ring overwrites and Flush is a
// no-op), which is what licenses Tape.SummaryOnly staging.
func (b *Buffer) HasFlush() bool { return b.onFlush != nil }

// Flush hands the not-yet-consumed tail of the ring to the consumer, if
// one is installed. Call it once after the producing phase finishes.
func (b *Buffer) Flush() {
	if b.onFlush == nil {
		return
	}
	if tail := b.pos & b.mask; tail > 0 {
		b.onFlush(b.ring[:tail])
	}
}

// Push emits one join result.
//
//skewlint:hotpath
func (b *Buffer) Push(k relation.Key, pr, ps relation.Payload) {
	if sanitize.Enabled {
		b.checkRing()
	}
	b.ring[b.pos&b.mask] = Result{Key: k, PayloadR: pr, PayloadS: ps}
	b.pos++
	b.count++
	b.checksum += coefKey*uint64(k) + coefPayloadR*uint64(pr) + coefPayloadS*uint64(ps)
	if b.pos&b.mask == 0 && b.onFlush != nil {
		b.onFlush(b.ring)
	}
}

// PushRun emits one result per R payload in rps, all matching the same
// S tuple (k, ps). This is the skew fast path of CSH and GSH: a skewed
// S tuple joined against the whole skewed R array with sequential reads and
// no per-result key comparison.
//
//skewlint:hotpath
func (b *Buffer) PushRun(k relation.Key, rps []relation.Payload, ps relation.Payload) {
	// The checksum is linear, so the whole run contributes
	// n·(A·k + C·ps) + B·Σrp — one multiply per run instead of three per
	// result. This is what makes the skew fast path genuinely cheap: the
	// inner loop is a sequential read, a buffer write and an add, with no
	// key comparison (§IV-A: CSH "avoids the cost of verifying if the R
	// and S keys match before generating every join result tuple").
	if sanitize.Enabled {
		b.checkRing()
	}
	ring := b.ring
	mask := b.mask
	pos := b.pos
	var prSum uint64
	if b.onFlush == nil {
		for _, pr := range rps {
			ring[pos&mask] = Result{Key: k, PayloadR: pr, PayloadS: ps}
			pos++
			prSum += uint64(pr)
		}
	} else {
		for _, pr := range rps {
			ring[pos&mask] = Result{Key: k, PayloadR: pr, PayloadS: ps}
			pos++
			prSum += uint64(pr)
			if pos&mask == 0 {
				b.onFlush(ring)
			}
		}
	}
	b.pos = pos
	n := uint64(len(rps))
	b.count += n
	b.checksum += coefPayloadR*prSum + n*(coefKey*uint64(k)+coefPayloadS*uint64(ps))
}

// PushBatch emits a staged batch of heterogeneous results in one call. The
// grouped probe path stages up to one probe group's worth of matches and
// hands them over together: one call, locals-cached ring cursor, and a
// single count/checksum update per batch instead of per result. The batch
// slice is the caller's scratch and is not retained.
//
//skewlint:hotpath
func (b *Buffer) PushBatch(rs []Result) {
	if sanitize.Enabled {
		b.checkRing()
	}
	ring := b.ring
	mask := b.mask
	pos := b.pos
	var sum uint64
	if b.onFlush == nil {
		for _, r := range rs {
			ring[pos&mask] = r
			pos++
			sum += coefKey*uint64(r.Key) + coefPayloadR*uint64(r.PayloadR) + coefPayloadS*uint64(r.PayloadS)
		}
	} else {
		for _, r := range rs {
			ring[pos&mask] = r
			pos++
			sum += coefKey*uint64(r.Key) + coefPayloadR*uint64(r.PayloadR) + coefPayloadS*uint64(r.PayloadS)
			if pos&mask == 0 {
				b.onFlush(ring)
			}
		}
	}
	b.pos = pos
	b.count += uint64(len(rs))
	b.checksum += sum
}

// PushRunS emits one result per S payload in sps, all matching the same
// R tuple (k, pr). This is GSH's skew-join fast path: one thread block per
// skewed R tuple streaming the skewed S array with coalesced accesses.
//
//skewlint:hotpath
func (b *Buffer) PushRunS(k relation.Key, pr relation.Payload, sps []relation.Payload) {
	if sanitize.Enabled {
		b.checkRing()
	}
	ring := b.ring
	mask := b.mask
	pos := b.pos
	var psSum uint64
	if b.onFlush == nil {
		for _, ps := range sps {
			ring[pos&mask] = Result{Key: k, PayloadR: pr, PayloadS: ps}
			pos++
			psSum += uint64(ps)
		}
	} else {
		for _, ps := range sps {
			ring[pos&mask] = Result{Key: k, PayloadR: pr, PayloadS: ps}
			pos++
			psSum += uint64(ps)
			if pos&mask == 0 {
				b.onFlush(ring)
			}
		}
	}
	b.pos = pos
	n := uint64(len(sps))
	b.count += n
	b.checksum += coefPayloadS*psSum + n*(coefKey*uint64(k)+coefPayloadR*uint64(pr))
}

// checkRing validates the ring geometry the masked-index emit loops rely
// on: a power-of-two ring with mask == len-1 and a non-negative cursor. A
// Buffer constructed by hand (not via New) with a non-power-of-two ring
// would silently overwrite a subset of slots and corrupt Last's output.
func (b *Buffer) checkRing() {
	if len(b.ring) == 0 || len(b.ring)&(len(b.ring)-1) != 0 || b.mask != len(b.ring)-1 {
		sanitize.Failf("outbuf: ring of %d slots with mask %#x violates the power-of-two ring geometry", len(b.ring), b.mask)
	}
	if b.pos < 0 {
		sanitize.Failf("outbuf: negative ring cursor %d", b.pos)
	}
}

// Count returns the number of results emitted so far.
func (b *Buffer) Count() uint64 { return b.count }

// Checksum returns the order-independent linear checksum of all results
// emitted so far.
func (b *Buffer) Checksum() uint64 { return b.checksum }

// Last returns up to n of the most recently emitted results, oldest first.
// Examples use it to show concrete output; n is capped by both the ring
// capacity and the emitted count.
func (b *Buffer) Last(n int) []Result {
	if uint64(n) > b.count {
		n = int(b.count)
	}
	if n > len(b.ring) {
		n = len(b.ring)
	}
	out := make([]Result, 0, n)
	for i := b.pos - n; i < b.pos; i++ {
		out = append(out, b.ring[i&b.mask])
	}
	return out
}

// Merge folds another buffer's summaries into b (ring contents are not
// merged; they are scratch). Used to combine per-worker buffers into one
// run-level summary.
func (b *Buffer) Merge(o *Buffer) {
	b.count += o.count
	b.checksum += o.checksum
}

// Summary is the verifiable outcome of a join run.
type Summary struct {
	Count    uint64
	Checksum uint64
}

// Summarize combines any number of per-worker buffers into a Summary.
func Summarize(bufs []*Buffer) Summary {
	var s Summary
	for _, b := range bufs {
		s.Count += b.count
		s.Checksum += b.checksum
	}
	return s
}

// ChecksumTerm returns the checksum contribution of a single result, so the
// oracle can compute expected checksums analytically.
func ChecksumTerm(k relation.Key, pr, ps relation.Payload) uint64 {
	return coefKey*uint64(k) + coefPayloadR*uint64(pr) + coefPayloadS*uint64(ps)
}

// ChecksumCoefficients exposes (A, B, C) for the oracle's closed-form
// expected-checksum computation.
func ChecksumCoefficients() (key, payloadR, payloadS uint64) {
	return coefKey, coefPayloadR, coefPayloadS
}
