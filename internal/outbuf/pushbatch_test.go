package outbuf

import (
	"testing"

	"skewjoin/internal/relation"
)

func batchOf(n int) []Result {
	rs := make([]Result, n)
	for i := range rs {
		rs[i] = Result{
			Key:      relation.Key(i * 13),
			PayloadR: relation.Payload(i * 7),
			PayloadS: relation.Payload(i * 3),
		}
	}
	return rs
}

func TestPushBatchEquivalentToPushes(t *testing.T) {
	rs := batchOf(37)
	a := New(16)
	for _, r := range rs {
		a.Push(r.Key, r.PayloadR, r.PayloadS)
	}
	b := New(16)
	b.PushBatch(rs)
	if a.Count() != b.Count() || a.Checksum() != b.Checksum() {
		t.Errorf("PushBatch diverges: (%d,%d) vs (%d,%d)", a.Count(), a.Checksum(), b.Count(), b.Checksum())
	}
	// The ring tails must agree too: PushBatch writes the same slots.
	al, bl := a.Last(16), b.Last(16)
	for i := range al {
		if al[i] != bl[i] {
			t.Fatalf("ring tail differs at %d: %+v vs %+v", i, al[i], bl[i])
		}
	}
}

func TestPushBatchEmpty(t *testing.T) {
	b := New(4)
	b.PushBatch(nil)
	b.PushBatch([]Result{})
	if b.Count() != 0 || b.Checksum() != 0 {
		t.Errorf("empty batches changed state: %d, %d", b.Count(), b.Checksum())
	}
}

func TestPushBatchFlushDeliversEveryResult(t *testing.T) {
	// Batches larger and smaller than the ring, spanning multiple wraps:
	// the flush consumer must see every result exactly once, in emit order.
	b := New(8)
	var seen []Result
	b.SetFlush(func(batch []Result) { seen = append(seen, batch...) })
	rs := batchOf(53)
	b.PushBatch(rs[:20]) // 2.5 rings
	b.PushBatch(rs[20:23])
	b.PushBatch(rs[23:])
	b.Flush()
	if len(seen) != len(rs) {
		t.Fatalf("consumer saw %d results, want %d", len(seen), len(rs))
	}
	for i := range seen {
		if seen[i] != rs[i] {
			t.Fatalf("result %d: %+v, want %+v", i, seen[i], rs[i])
		}
	}
	if b.Count() != uint64(len(rs)) {
		t.Errorf("count = %d", b.Count())
	}
}

func TestPushBatchInterleavesWithPush(t *testing.T) {
	rs := batchOf(12)
	a, b := New(8), New(8)
	for _, r := range rs {
		a.Push(r.Key, r.PayloadR, r.PayloadS)
	}
	b.Push(rs[0].Key, rs[0].PayloadR, rs[0].PayloadS)
	b.PushBatch(rs[1:7])
	b.Push(rs[7].Key, rs[7].PayloadR, rs[7].PayloadS)
	b.PushBatch(rs[8:])
	if a.Count() != b.Count() || a.Checksum() != b.Checksum() {
		t.Errorf("interleaved PushBatch diverges: (%d,%d) vs (%d,%d)",
			a.Count(), a.Checksum(), b.Count(), b.Checksum())
	}
}
