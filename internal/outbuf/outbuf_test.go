package outbuf

import (
	"testing"
	"testing/quick"

	"skewjoin/internal/relation"
)

func TestPushCountsAndChecksum(t *testing.T) {
	b := New(8)
	var want uint64
	for i := 0; i < 100; i++ {
		k := relation.Key(i * 7)
		pr := relation.Payload(i)
		ps := relation.Payload(i * 3)
		b.Push(k, pr, ps)
		want += ChecksumTerm(k, pr, ps)
	}
	if b.Count() != 100 {
		t.Errorf("count = %d", b.Count())
	}
	if b.Checksum() != want {
		t.Errorf("checksum = %d, want %d", b.Checksum(), want)
	}
}

func TestRingOverwritesWhenFull(t *testing.T) {
	b := New(4)
	for i := 0; i < 10; i++ {
		b.Push(relation.Key(i), 0, 0)
	}
	if b.Count() != 10 {
		t.Errorf("count = %d, want 10 despite overwrites", b.Count())
	}
	last := b.Last(4)
	if len(last) != 4 {
		t.Fatalf("Last returned %d results", len(last))
	}
	for i, r := range last {
		if want := relation.Key(6 + i); r.Key != want {
			t.Errorf("last[%d].Key = %d, want %d", i, r.Key, want)
		}
	}
}

func TestLastFewerThanRequested(t *testing.T) {
	b := New(16)
	b.Push(1, 2, 3)
	b.Push(4, 5, 6)
	last := b.Last(10)
	if len(last) != 2 {
		t.Fatalf("Last(10) returned %d results", len(last))
	}
	if last[0].Key != 1 || last[1].Key != 4 {
		t.Errorf("Last order wrong: %+v", last)
	}
}

func TestPushRunEquivalentToPushes(t *testing.T) {
	rps := []relation.Payload{10, 20, 30, 40, 50}
	a := New(16)
	for _, pr := range rps {
		a.Push(99, pr, 7)
	}
	b := New(16)
	b.PushRun(99, rps, 7)
	if a.Count() != b.Count() || a.Checksum() != b.Checksum() {
		t.Errorf("PushRun diverges: (%d,%d) vs (%d,%d)", a.Count(), a.Checksum(), b.Count(), b.Checksum())
	}
}

func TestPushRunSEquivalentToPushes(t *testing.T) {
	sps := []relation.Payload{1, 2, 3, 4}
	a := New(16)
	for _, ps := range sps {
		a.Push(5, 77, ps)
	}
	b := New(16)
	b.PushRunS(5, 77, sps)
	if a.Count() != b.Count() || a.Checksum() != b.Checksum() {
		t.Errorf("PushRunS diverges: (%d,%d) vs (%d,%d)", a.Count(), a.Checksum(), b.Count(), b.Checksum())
	}
}

func TestPushRunEmpty(t *testing.T) {
	b := New(4)
	b.PushRun(1, nil, 2)
	b.PushRunS(1, 2, nil)
	if b.Count() != 0 || b.Checksum() != 0 {
		t.Errorf("empty runs changed state: %d, %d", b.Count(), b.Checksum())
	}
}

func TestMergeAndSummarize(t *testing.T) {
	a, b := New(4), New(4)
	a.Push(1, 2, 3)
	b.Push(4, 5, 6)
	b.Push(7, 8, 9)
	sum := Summarize([]*Buffer{a, b})
	if sum.Count != 3 {
		t.Errorf("count = %d", sum.Count)
	}
	want := ChecksumTerm(1, 2, 3) + ChecksumTerm(4, 5, 6) + ChecksumTerm(7, 8, 9)
	if sum.Checksum != want {
		t.Errorf("checksum = %d, want %d", sum.Checksum, want)
	}
	a.Merge(b)
	if a.Count() != 3 || a.Checksum() != want {
		t.Errorf("Merge: count %d checksum %d", a.Count(), a.Checksum())
	}
}

func TestChecksumOrderIndependent(t *testing.T) {
	a, b := New(8), New(8)
	a.Push(1, 2, 3)
	a.Push(4, 5, 6)
	b.Push(4, 5, 6)
	b.Push(1, 2, 3)
	if a.Checksum() != b.Checksum() {
		t.Error("checksum depends on order")
	}
}

func TestDefaultCapacity(t *testing.T) {
	b := New(0)
	for i := 0; i < DefaultCapacity+10; i++ {
		b.Push(relation.Key(i), 0, 0)
	}
	if b.Count() != DefaultCapacity+10 {
		t.Errorf("count = %d", b.Count())
	}
}

func TestFlushDeliversEveryResultExactlyOnce(t *testing.T) {
	b := New(8)
	var delivered []Result
	b.SetFlush(func(batch []Result) {
		delivered = append(delivered, batch...)
	})
	for i := 0; i < 19; i++ {
		b.Push(relation.Key(i), relation.Payload(i), 0)
	}
	b.PushRun(99, []relation.Payload{1, 2, 3, 4, 5}, 7)
	b.PushRunS(98, 6, []relation.Payload{8, 9})
	b.Flush()
	want := int(b.Count())
	if len(delivered) != want {
		t.Fatalf("delivered %d results, want %d", len(delivered), want)
	}
	// Order within the stream is the emission order.
	for i := 0; i < 19; i++ {
		if delivered[i].Key != relation.Key(i) {
			t.Fatalf("delivered[%d].Key = %d", i, delivered[i].Key)
		}
	}
	if delivered[19].Key != 99 || delivered[24].Key != 98 {
		t.Errorf("run results out of order: %+v", delivered[19:])
	}
}

func TestFlushNoConsumerIsOverwrite(t *testing.T) {
	b := New(4)
	for i := 0; i < 9; i++ {
		b.Push(relation.Key(i), 0, 0)
	}
	b.Flush() // no-op without a consumer
	if b.Count() != 9 {
		t.Errorf("count = %d", b.Count())
	}
}

func TestFlushEmptyTail(t *testing.T) {
	b := New(4)
	calls := 0
	b.SetFlush(func(batch []Result) { calls++ })
	for i := 0; i < 8; i++ { // exactly two full rings
		b.Push(1, 2, 3)
	}
	b.Flush()
	if calls != 2 {
		t.Errorf("flush called %d times, want 2 (no empty tail delivery)", calls)
	}
}

func TestQuickRunEquivalence(t *testing.T) {
	// Property: bulk emission is indistinguishable from repeated Push for
	// any key/payload values.
	f := func(k uint32, common uint32, payloads []uint32) bool {
		a, b, c := New(8), New(8), New(8)
		ps := make([]relation.Payload, len(payloads))
		for i, p := range payloads {
			ps[i] = relation.Payload(p)
			a.Push(relation.Key(k), relation.Payload(p), relation.Payload(common))
		}
		b.PushRun(relation.Key(k), ps, relation.Payload(common))
		if a.Count() != b.Count() || a.Checksum() != b.Checksum() {
			return false
		}
		a2 := New(8)
		for _, p := range ps {
			a2.Push(relation.Key(k), relation.Payload(common), p)
		}
		c.PushRunS(relation.Key(k), relation.Payload(common), ps)
		return a2.Count() == c.Count() && a2.Checksum() == c.Checksum()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
