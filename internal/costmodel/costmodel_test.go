package costmodel

import (
	"math"
	"testing"

	"skewjoin/internal/gpupart"
	"skewjoin/internal/gpusim"
	"skewjoin/internal/radix"
	"skewjoin/internal/relation"
	"skewjoin/internal/zipf"
)

func zipfPair(t *testing.T, n int, theta float64) (relation.Relation, relation.Relation) {
	t.Helper()
	g, err := zipf.New(zipf.Config{Theta: theta, Universe: n, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return g.Pair(n)
}

func TestCalibrateProducesValidConstants(t *testing.T) {
	r, s := zipfPair(t, 1<<15, 0.8)
	cal := Calibrate(r, s, 2)
	if !cal.Valid() {
		t.Fatalf("Calibrate = %+v, not valid", cal)
	}
	// The clamp bounds are the sanity range; a real micro-run should land
	// strictly inside it.
	if cal.BuildNsPerTuple <= 0.1 || cal.BuildNsPerTuple >= 1000 {
		t.Errorf("BuildNsPerTuple %g outside plausible range", cal.BuildNsPerTuple)
	}
	if cal.ProbeNsPerUnit <= 0.1 || cal.ProbeNsPerUnit >= 1000 {
		t.Errorf("ProbeNsPerUnit %g outside plausible range", cal.ProbeNsPerUnit)
	}
}

func TestCalibrateTinyInputFallsBack(t *testing.T) {
	r := relation.Relation{Tuples: make([]relation.Tuple, 8)}
	if cal := Calibrate(r, r, 1); cal != DefaultCalibration() {
		t.Fatalf("tiny-input calibration = %+v, want defaults", cal)
	}
}

func TestCostsCoverNonEmptyPartitions(t *testing.T) {
	r, s := zipfPair(t, 1<<14, 1.0)
	rcfg := radix.Config{Threads: 2, Bits1: 4, Bits2: 0}
	pr := radix.Partition(r.Tuples, rcfg, nil)
	ps := radix.Partition(s.Tuples, rcfg, nil)
	costs := Costs(pr, ps, Config{})
	seen := make(map[int]bool)
	var nR, nS int
	for _, pc := range costs {
		if seen[pc.Part] {
			t.Fatalf("partition %d costed twice", pc.Part)
		}
		seen[pc.Part] = true
		if pc.CPUNs <= 0 || pc.GPUCycles <= 0 || len(pc.GPUBlockCycles) == 0 {
			t.Fatalf("partition %d has degenerate cost: %+v", pc.Part, pc)
		}
		nR += pc.NR
		nS += pc.NS
	}
	for p := 0; p < pr.Fanout(); p++ {
		if pr.Size(p) > 0 && ps.Size(p) > 0 && !seen[p] {
			t.Fatalf("non-empty partition %d missing from costs", p)
		}
	}
	// Zipf pairs share a universe, so no partition pair can be one-sided
	// empty here: the costed totals must cover the inputs.
	if nR != r.Len() || nS != s.Len() {
		t.Fatalf("costed %d/%d tuples, inputs %d/%d", nR, nS, r.Len(), s.Len())
	}
}

func TestEstimateTracksSkewedOutput(t *testing.T) {
	// One hot key holding half of each side: true output is dominated by
	// the hot key's cross product. The sampled estimate must get within a
	// small factor — this is what separates the hot partition from the
	// tail for the planner.
	n := 1 << 12
	rPart := make([]relation.Tuple, n)
	sPart := make([]relation.Tuple, n)
	for i := range rPart {
		k := relation.Key(i)
		if i%2 == 0 {
			k = 7
		}
		rPart[i] = relation.Tuple{Key: k, Payload: relation.Payload(i)}
		sPart[i] = relation.Tuple{Key: k, Payload: relation.Payload(i)}
	}
	estOut, topR := estimatePartition(rPart, sPart, 64)
	trueOut := float64(n/2) * float64(n/2)
	if estOut < trueOut/4 || estOut > trueOut*4 {
		t.Fatalf("estOut = %g, true %g (off by more than 4x)", estOut, trueOut)
	}
	if topR < float64(n/2)/4 {
		t.Fatalf("topR = %g, true hot frequency %d", topR, n/2)
	}
}

func TestBlockCyclesTracksSimulator(t *testing.T) {
	// The analytic block model must agree with what gpusim actually
	// charges for ProbeJoinBlock within a loose factor — it mirrors the
	// same recipe but estimates visits/matches from samples.
	r, s := zipfPair(t, 1<<13, 1.0)
	rcfg := radix.Config{Threads: 1, Bits1: 3, Bits2: 0}
	pr := radix.Partition(r.Tuples, rcfg, nil)
	ps := radix.Partition(s.Tuples, rcfg, nil)
	dev := gpusim.NewDevice(gpusim.Coupled())
	capacity := dev.PartitionCapacityTuples()

	for p := 0; p < pr.Fanout(); p++ {
		nR, nS := pr.Size(p), ps.Size(p)
		if nR == 0 || nS == 0 || nR > capacity {
			continue
		}
		costs := Costs(pr, ps, Config{Device: dev.Config()})
		var pc *PartCost
		for i := range costs {
			if costs[i].Part == p {
				pc = &costs[i]
			}
		}
		if pc == nil {
			t.Fatalf("partition %d not costed", p)
		}
		rPart, sPart := pr.Part(p), ps.Part(p)
		var actual float64
		dev.Launch("join", "test", 1, func(b *gpusim.Block) {
			gpupart.ProbeJoinBlock(b, rPart, sPart)
			actual = b.Cycles()
		})
		predicted := pc.GPUCycles
		if ratio := predicted / actual; ratio < 0.25 || ratio > 4 {
			t.Errorf("partition %d: predicted %g cycles, simulator charged %g (ratio %.2f)",
				p, predicted, actual, ratio)
		}
	}
}

// skewedCosts builds a cost set with one dominant partition and a tail,
// at scales large enough to clear the default win thresholds.
func skewedCosts(t *testing.T, n int) ([]PartCost, Config, int) {
	t.Helper()
	g, err := zipf.New(zipf.Config{Theta: 1.1, Universe: n, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	r, s := g.Pair(n)
	rcfg := radix.Config{Threads: 1, Bits1: 6, Bits2: 0}
	pr := radix.Partition(r.Tuples, rcfg, nil)
	ps := radix.Partition(s.Tuples, rcfg, nil)
	cfg := Config{Device: gpusim.Coupled(), Calib: DefaultCalibration(), Threads: 1}
	costs := Costs(pr, ps, cfg)
	hot, hotNs := -1, 0.0
	for _, pc := range costs {
		if pc.CPUNs > hotNs {
			hot, hotNs = pc.Part, pc.CPUNs
		}
	}
	return costs, cfg, hot
}

func TestBuildPlanSplitsSkewedWorkload(t *testing.T) {
	costs, cfg, hot := skewedCosts(t, 1<<18)
	plan := BuildPlan(costs, cfg)
	if !plan.Split {
		t.Fatalf("skewed workload should split: %+v", plan)
	}
	if len(plan.CPUParts) == 0 || len(plan.GPUParts) == 0 {
		t.Fatalf("split plan must use both backends: %+v", plan)
	}
	if len(plan.CPUParts)+len(plan.GPUParts) != len(costs) {
		t.Fatalf("plan covers %d+%d of %d partitions",
			len(plan.CPUParts), len(plan.GPUParts), len(costs))
	}
	// The makespan must beat both single-backend controls by the
	// configured margin.
	better := math.Min(plan.CPUOnlyNs, plan.GPUOnlyNs)
	if plan.MakespanNs >= better {
		t.Fatalf("split makespan %g not better than controls cpu=%g gpu=%g",
			plan.MakespanNs, plan.CPUOnlyNs, plan.GPUOnlyNs)
	}
	// The hot partition and the tail must land on different backends:
	// the greedy places the dominant partition first and isolates it on
	// the minority side while the tail fills the other. (On the coupled
	// device the hot partition lands on the CPU — the Gbase-style kernel
	// decomposes an oversized R partition into sub-lists that each reread
	// the full S side, so GPU cost explodes exactly where the skew is.)
	hotSide, otherSide := plan.CPUParts, plan.GPUParts
	if !contains(plan.CPUParts, hot) {
		hotSide, otherSide = plan.GPUParts, plan.CPUParts
	}
	if len(hotSide) >= len(otherSide) {
		t.Errorf("hot partition %d not isolated: its backend holds %d partitions vs %d",
			hot, len(hotSide), len(otherSide))
	}
}

func contains(parts []int, p int) bool {
	for _, q := range parts {
		if q == p {
			return true
		}
	}
	return false
}

func TestBuildPlanDegeneratesOnTinyInput(t *testing.T) {
	costs, cfg, _ := skewedCosts(t, 1<<10)
	plan := BuildPlan(costs, cfg)
	if plan.Split {
		t.Fatalf("tiny input should degenerate, got split: %+v", plan)
	}
	if len(plan.CPUParts) != 0 && len(plan.GPUParts) != 0 {
		t.Fatalf("degenerate plan uses both backends: %+v", plan)
	}
	if plan.MakespanNs != math.Min(plan.CPUOnlyNs, plan.GPUOnlyNs) {
		t.Fatalf("degenerate makespan %g != better control (cpu=%g gpu=%g)",
			plan.MakespanNs, plan.CPUOnlyNs, plan.GPUOnlyNs)
	}
}

func TestBuildPlanDegeneratesToGPUOnA100(t *testing.T) {
	// On a uniform workload an A100 is orders of magnitude faster than
	// one host core and the output is too small for PCIe to matter;
	// splitting cannot win and the plan must degenerate to the GPU.
	// (Under heavy skew even an A100 plan may legitimately split — the
	// giant output makes D2H transfer the bottleneck, and keeping some
	// output-heavy partitions on the CPU avoids it.)
	g, err := zipf.New(zipf.Config{Theta: 0, Universe: 1 << 18, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	r, s := g.Pair(1 << 18)
	rcfg := radix.Config{Threads: 1, Bits1: 6, Bits2: 0}
	pr := radix.Partition(r.Tuples, rcfg, nil)
	ps := radix.Partition(s.Tuples, rcfg, nil)
	cfg := Config{Calib: DefaultCalibration(), Threads: 1} // zero Device = A100
	plan := BuildPlan(Costs(pr, ps, cfg), cfg)
	if plan.Split || plan.Degenerate != GPU {
		t.Fatalf("A100 plan should degenerate to GPU: %+v", plan)
	}
}

func TestForcePlanPinsBackend(t *testing.T) {
	costs, cfg, _ := skewedCosts(t, 1<<14)
	cpuPlan := ForcePlan(costs, cfg, CPU)
	if cpuPlan.Split || cpuPlan.Degenerate != CPU || len(cpuPlan.GPUParts) != 0 ||
		len(cpuPlan.CPUParts) != len(costs) {
		t.Fatalf("ForcePlan(CPU) = %+v", cpuPlan)
	}
	gpuPlan := ForcePlan(costs, cfg, GPU)
	if gpuPlan.Split || gpuPlan.Degenerate != GPU || len(gpuPlan.CPUParts) != 0 ||
		len(gpuPlan.GPUParts) != len(costs) {
		t.Fatalf("ForcePlan(GPU) = %+v", gpuPlan)
	}
	if gpuPlan.TransferNs <= 0 {
		t.Errorf("GPU-pinned plan has no transfer time: %+v", gpuPlan)
	}
}

func TestStaticPlanAlternates(t *testing.T) {
	costs, cfg, _ := skewedCosts(t, 1<<14)
	if len(costs) < 2 {
		t.Fatalf("need >= 2 partitions, got %d", len(costs))
	}
	plan := StaticPlan(costs, cfg)
	if !plan.Split {
		t.Fatalf("static plan with %d partitions should split: %+v", len(costs), plan)
	}
	if got := len(plan.CPUParts) + len(plan.GPUParts); got != len(costs) {
		t.Fatalf("static plan covers %d of %d partitions", got, len(costs))
	}
	if d := len(plan.CPUParts) - len(plan.GPUParts); d < 0 || d > 1 {
		t.Fatalf("round-robin imbalance: %d cpu vs %d gpu", len(plan.CPUParts), len(plan.GPUParts))
	}
}
