package costmodel

import (
	"math"
	"sort"
	"testing"

	"skewjoin/internal/gpupart"
	"skewjoin/internal/gpusim"
	"skewjoin/internal/radix"
	"skewjoin/internal/relation"
	"skewjoin/internal/zipf"
)

func zipfPair(t *testing.T, n int, theta float64) (relation.Relation, relation.Relation) {
	t.Helper()
	g, err := zipf.New(zipf.Config{Theta: theta, Universe: n, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return g.Pair(n)
}

func TestCalibrateProducesValidConstants(t *testing.T) {
	r, s := zipfPair(t, 1<<15, 0.8)
	cal := Calibrate(r, s, 2)
	if !cal.Valid() {
		t.Fatalf("Calibrate = %+v, not valid", cal)
	}
	// The clamp bounds are the sanity range; a real micro-run should land
	// strictly inside it.
	if cal.BuildNsPerTuple <= 0.1 || cal.BuildNsPerTuple >= 1000 {
		t.Errorf("BuildNsPerTuple %g outside plausible range", cal.BuildNsPerTuple)
	}
	if cal.ProbeNsPerUnit <= 0.1 || cal.ProbeNsPerUnit >= 1000 {
		t.Errorf("ProbeNsPerUnit %g outside plausible range", cal.ProbeNsPerUnit)
	}
}

func TestCalibrateTinyInputFallsBack(t *testing.T) {
	r := relation.Relation{Tuples: make([]relation.Tuple, 8)}
	if cal := Calibrate(r, r, 1); cal != DefaultCalibration() {
		t.Fatalf("tiny-input calibration = %+v, want defaults", cal)
	}
}

func TestCostsCoverNonEmptyPartitions(t *testing.T) {
	r, s := zipfPair(t, 1<<14, 1.0)
	rcfg := radix.Config{Threads: 2, Bits1: 4, Bits2: 0}
	pr := radix.Partition(r.Tuples, rcfg, nil)
	ps := radix.Partition(s.Tuples, rcfg, nil)
	costs := Costs(pr, ps, Config{})
	seen := make(map[int]bool)
	var nR, nS int
	for _, pc := range costs {
		if seen[pc.Part] {
			t.Fatalf("partition %d costed twice", pc.Part)
		}
		seen[pc.Part] = true
		if pc.CPUNs <= 0 || pc.GPUCycles <= 0 || len(pc.GPUBlockCycles) == 0 {
			t.Fatalf("partition %d has degenerate cost: %+v", pc.Part, pc)
		}
		nR += pc.NR
		nS += pc.NS
	}
	for p := 0; p < pr.Fanout(); p++ {
		if pr.Size(p) > 0 && ps.Size(p) > 0 && !seen[p] {
			t.Fatalf("non-empty partition %d missing from costs", p)
		}
	}
	// Zipf pairs share a universe, so no partition pair can be one-sided
	// empty here: the costed totals must cover the inputs.
	if nR != r.Len() || nS != s.Len() {
		t.Fatalf("costed %d/%d tuples, inputs %d/%d", nR, nS, r.Len(), s.Len())
	}
}

func TestEstimateTracksSkewedOutput(t *testing.T) {
	// One hot key holding half of each side: true output is dominated by
	// the hot key's cross product. The sampled estimate must get within a
	// small factor — this is what separates the hot partition from the
	// tail for the planner.
	n := 1 << 12
	rPart := make([]relation.Tuple, n)
	sPart := make([]relation.Tuple, n)
	for i := range rPart {
		k := relation.Key(i)
		if i%2 == 0 {
			k = 7
		}
		rPart[i] = relation.Tuple{Key: k, Payload: relation.Payload(i)}
		sPart[i] = relation.Tuple{Key: k, Payload: relation.Payload(i)}
	}
	estOut, topR := estimatePartition(rPart, sPart, 64)
	trueOut := float64(n/2) * float64(n/2)
	if estOut < trueOut/4 || estOut > trueOut*4 {
		t.Fatalf("estOut = %g, true %g (off by more than 4x)", estOut, trueOut)
	}
	if topR < float64(n/2)/4 {
		t.Fatalf("topR = %g, true hot frequency %d", topR, n/2)
	}
}

func TestBlockCyclesTracksSimulator(t *testing.T) {
	// The analytic block model must agree with what gpusim actually
	// charges for ProbeJoinBlock within a loose factor — it mirrors the
	// same recipe but estimates visits/matches from samples.
	r, s := zipfPair(t, 1<<13, 1.0)
	rcfg := radix.Config{Threads: 1, Bits1: 3, Bits2: 0}
	pr := radix.Partition(r.Tuples, rcfg, nil)
	ps := radix.Partition(s.Tuples, rcfg, nil)
	dev := gpusim.NewDevice(gpusim.Coupled())
	capacity := dev.PartitionCapacityTuples()

	for p := 0; p < pr.Fanout(); p++ {
		nR, nS := pr.Size(p), ps.Size(p)
		if nR == 0 || nS == 0 || nR > capacity {
			continue
		}
		costs := Costs(pr, ps, Config{Device: dev.Config()})
		var pc *PartCost
		for i := range costs {
			if costs[i].Part == p {
				pc = &costs[i]
			}
		}
		if pc == nil {
			t.Fatalf("partition %d not costed", p)
		}
		rPart, sPart := pr.Part(p), ps.Part(p)
		var actual float64
		dev.Launch("join", "test", 1, func(b *gpusim.Block) {
			gpupart.ProbeJoinBlock(b, rPart, sPart)
			actual = b.Cycles()
		})
		predicted := pc.GPUCycles
		if ratio := predicted / actual; ratio < 0.25 || ratio > 4 {
			t.Errorf("partition %d: predicted %g cycles, simulator charged %g (ratio %.2f)",
				p, predicted, actual, ratio)
		}
	}
}

// skewedCosts builds a cost set with one dominant partition and a tail,
// at scales large enough to clear the default win thresholds.
func skewedCosts(t *testing.T, n int) ([]PartCost, Config, int) {
	t.Helper()
	g, err := zipf.New(zipf.Config{Theta: 1.1, Universe: n, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	r, s := g.Pair(n)
	rcfg := radix.Config{Threads: 1, Bits1: 6, Bits2: 0}
	pr := radix.Partition(r.Tuples, rcfg, nil)
	ps := radix.Partition(s.Tuples, rcfg, nil)
	cfg := Config{Device: gpusim.Coupled(), Calib: DefaultCalibration(), Threads: 1}
	costs := Costs(pr, ps, cfg)
	hot, hotNs := -1, 0.0
	for _, pc := range costs {
		if pc.CPUNs > hotNs {
			hot, hotNs = pc.Part, pc.CPUNs
		}
	}
	return costs, cfg, hot
}

func TestBuildPlanSplitsSkewedWorkload(t *testing.T) {
	costs, cfg, hot := skewedCosts(t, 1<<18)
	plan := BuildPlan(costs, cfg)
	if !plan.Split {
		t.Fatalf("skewed workload should split: %+v", plan)
	}
	if len(plan.CPUParts) == 0 || len(plan.GPUParts) == 0 {
		t.Fatalf("split plan must use both backends: %+v", plan)
	}
	placed := len(plan.CPUParts) + len(plan.GPUParts)
	if plan.Fragmented() {
		placed++ // the fragmented partition appears in neither list
	}
	if placed != len(costs) {
		t.Fatalf("plan covers %d of %d partitions (frag=%v)",
			placed, len(costs), plan.Fragmented())
	}
	// The makespan must beat both single-backend controls by the
	// configured margin.
	better := math.Min(plan.CPUOnlyNs, plan.GPUOnlyNs)
	if plan.MakespanNs >= better {
		t.Fatalf("split makespan %g not better than controls cpu=%g gpu=%g",
			plan.MakespanNs, plan.CPUOnlyNs, plan.GPUOnlyNs)
	}
	// The hot partition must be handled specially: either fragmented
	// across both backends (FragPart names it, with fragments on both
	// sides covering its S range exactly once), or isolated whole on the
	// minority side while the tail fills the other.
	if plan.Fragmented() {
		if plan.FragPart != hot {
			t.Errorf("fragmented partition %d, want hot partition %d", plan.FragPart, hot)
		}
		assertFragmentsCover(t, plan, costs)
		return
	}
	hotSide, otherSide := plan.CPUParts, plan.GPUParts
	if !contains(plan.CPUParts, hot) {
		hotSide, otherSide = plan.GPUParts, plan.CPUParts
	}
	if len(hotSide) >= len(otherSide) {
		t.Errorf("hot partition %d not isolated: its backend holds %d partitions vs %d",
			hot, len(hotSide), len(otherSide))
	}
}

// assertFragmentsCover checks the plan's fragments tile the fragmented
// partition's probe side exactly once with both backends represented.
func assertFragmentsCover(t *testing.T, plan Plan, costs []PartCost) {
	t.Helper()
	var hot *PartCost
	for i := range costs {
		if costs[i].Part == plan.FragPart {
			hot = &costs[i]
		}
	}
	if hot == nil {
		t.Fatalf("fragmented partition %d not among costed partitions", plan.FragPart)
	}
	if contains(plan.CPUParts, plan.FragPart) || contains(plan.GPUParts, plan.FragPart) {
		t.Errorf("fragmented partition %d also placed whole", plan.FragPart)
	}
	frags := append([]Fragment(nil), plan.Fragments...)
	sort.Slice(frags, func(a, b int) bool { return frags[a].Lo < frags[b].Lo })
	next, cpuN, gpuN := 0, 0, 0
	for _, f := range frags {
		if f.Part != plan.FragPart {
			t.Fatalf("fragment of partition %d, want %d", f.Part, plan.FragPart)
		}
		if f.Lo != next || f.Hi <= f.Lo {
			t.Fatalf("fragments do not tile S: got [%d,%d) at offset %d", f.Lo, f.Hi, next)
		}
		next = f.Hi
		if f.Backend == CPU {
			cpuN++
		} else {
			gpuN++
		}
	}
	if next != hot.NS {
		t.Errorf("fragments cover S[0:%d), partition has %d probe tuples", next, hot.NS)
	}
	if cpuN == 0 || gpuN == 0 {
		t.Errorf("fragments must use both backends: cpu=%d gpu=%d", cpuN, gpuN)
	}
}

// fragmentTrigger recomputes the fragmentation predicate BuildPlan uses:
// the hot partition's cheaper-backend solo time exceeds the
// balanced-makespan bound by FragmentFactor.
func fragmentTrigger(costs []PartCost, cfg Config) bool {
	cfg = cfg.Defaults()
	_, hotNs := hotAtomic(costs, cfg)
	return hotNs > cfg.FragmentFactor*BalancedBound(costs, cfg)
}

// TestFragmentPlanGoldenDeepSkew pins the zipf 1.2–1.4 regime: the hot
// partition dominates any atomic placement, so the plan must fragment it
// across both backends and beat both single-backend controls — the regime
// the whole-partition planner provably cannot win.
func TestFragmentPlanGoldenDeepSkew(t *testing.T) {
	for _, theta := range []float64{1.2, 1.3, 1.4} {
		r, s := zipfPair(t, 1<<18, theta)
		rcfg := radix.Config{Threads: 1, Bits1: 6, Bits2: 0}
		pr := radix.Partition(r.Tuples, rcfg, nil)
		ps := radix.Partition(s.Tuples, rcfg, nil)
		cfg := Config{Device: gpusim.Coupled(), Calib: DefaultCalibration(), Threads: 1}
		costs := Costs(pr, ps, cfg)
		if !fragmentTrigger(costs, cfg) {
			t.Fatalf("zipf %.1f: hot partition does not exceed the balanced bound", theta)
		}
		plan := BuildPlan(costs, cfg)
		if !plan.Split || !plan.Fragmented() {
			t.Fatalf("zipf %.1f: want fragmented split, got split=%v frag=%v reason=%q",
				theta, plan.Split, plan.Fragmented(), plan.DegenerateReason)
		}
		assertFragmentsCover(t, plan, costs)
		better := math.Min(plan.CPUOnlyNs, plan.GPUOnlyNs)
		if plan.MakespanNs >= better {
			t.Errorf("zipf %.1f: fragmented makespan %g not better than controls cpu=%g gpu=%g",
				theta, plan.MakespanNs, plan.CPUOnlyNs, plan.GPUOnlyNs)
		}
		if plan.MakespanNs < plan.BalancedNs {
			t.Errorf("zipf %.1f: makespan %g below the balanced lower bound %g",
				theta, plan.MakespanNs, plan.BalancedNs)
		}
	}
}

// TestFragmentChosenIffTriggered sweeps skew and checks both directions
// of the gate: a fragmented plan implies the hot partition exceeded the
// balanced bound, and a quiet trigger implies no fragmentation.
func TestFragmentChosenIffTriggered(t *testing.T) {
	for _, theta := range []float64{0.0, 0.5, 0.8, 1.0, 1.1, 1.2, 1.4} {
		r, s := zipfPair(t, 1<<17, theta)
		rcfg := radix.Config{Threads: 1, Bits1: 6, Bits2: 0}
		pr := radix.Partition(r.Tuples, rcfg, nil)
		ps := radix.Partition(s.Tuples, rcfg, nil)
		cfg := Config{Device: gpusim.Coupled(), Calib: DefaultCalibration(), Threads: 1}
		costs := Costs(pr, ps, cfg)
		plan := BuildPlan(costs, cfg)
		if plan.Fragmented() && !fragmentTrigger(costs, cfg) {
			t.Errorf("zipf %.1f: fragmented without the hot partition exceeding the bound", theta)
		}
		if !fragmentTrigger(costs, cfg) && plan.Fragmented() {
			t.Errorf("zipf %.1f: fragment plan chosen below the trigger", theta)
		}
	}
}

// TestUniformNeverFragments is the A/A control: without skew no partition
// can exceed the balanced bound by the fragment factor, so the plan must
// never pay replication.
func TestUniformNeverFragments(t *testing.T) {
	for _, n := range []int{1 << 12, 1 << 16, 1 << 18} {
		r, s := zipfPair(t, n, 0)
		rcfg := radix.Config{Threads: 1, Bits1: 6, Bits2: 0}
		pr := radix.Partition(r.Tuples, rcfg, nil)
		ps := radix.Partition(s.Tuples, rcfg, nil)
		cfg := Config{Device: gpusim.Coupled(), Calib: DefaultCalibration(), Threads: 1}
		costs := Costs(pr, ps, cfg)
		plan := BuildPlan(costs, cfg)
		if plan.Fragmented() {
			t.Errorf("n=%d uniform input fragmented: %+v", n, plan.Fragments)
		}
	}
}

// TestFragmentsDisabled pins the off switch at a size where the win
// thresholds bite: with Fragments < 0 the partition stays the atomic
// unit, deep skew degenerates, and the reason names the hot partition as
// the blocker — while the same costs with fragmentation enabled yield a
// winning fragmented split.
func TestFragmentsDisabled(t *testing.T) {
	r, s := zipfPair(t, 1<<14, 1.4)
	rcfg := radix.Config{Threads: 1, Bits1: 6, Bits2: 0}
	pr := radix.Partition(r.Tuples, rcfg, nil)
	ps := radix.Partition(s.Tuples, rcfg, nil)
	cfg := Config{Device: gpusim.Coupled(), Calib: DefaultCalibration(), Threads: 1, Fragments: -1}
	costs := Costs(pr, ps, cfg)
	plan := BuildPlan(costs, cfg)
	if plan.Fragmented() {
		t.Fatalf("Fragments=-1 still fragmented: %+v", plan.Fragments)
	}
	if plan.Split {
		t.Fatalf("deep skew without fragmentation should degenerate here: %+v", plan)
	}
	if plan.DegenerateReason != ReasonHotPartitionDominates {
		t.Errorf("degenerate reason %q, want %q", plan.DegenerateReason, ReasonHotPartitionDominates)
	}

	cfg.Fragments = 0 // default granularity
	frag := BuildPlan(costs, cfg)
	if !frag.Split || !frag.Fragmented() {
		t.Fatalf("fragmentation should rescue this regime: split=%v frag=%v reason=%q",
			frag.Split, frag.Fragmented(), frag.DegenerateReason)
	}
	if frag.MakespanNs >= plan.MakespanNs {
		t.Errorf("fragmented makespan %g not better than degenerate %g",
			frag.MakespanNs, plan.MakespanNs)
	}
}

// TestDegenerateReasonMinWin pins the other reason: a uniform tiny input
// degenerates because the win is under the floor, not because any
// partition dominates.
func TestDegenerateReasonMinWin(t *testing.T) {
	r, s := zipfPair(t, 1<<12, 0)
	rcfg := radix.Config{Threads: 1, Bits1: 6, Bits2: 0}
	pr := radix.Partition(r.Tuples, rcfg, nil)
	ps := radix.Partition(s.Tuples, rcfg, nil)
	cfg := Config{Device: gpusim.Coupled(), Calib: DefaultCalibration(), Threads: 1}
	costs := Costs(pr, ps, cfg)
	plan := BuildPlan(costs, cfg)
	if plan.Split {
		t.Fatalf("tiny uniform input should degenerate: %+v", plan)
	}
	if plan.DegenerateReason != ReasonMinWinThreshold {
		t.Errorf("degenerate reason %q, want %q", plan.DegenerateReason, ReasonMinWinThreshold)
	}
}

func contains(parts []int, p int) bool {
	for _, q := range parts {
		if q == p {
			return true
		}
	}
	return false
}

func TestBuildPlanDegeneratesOnTinyInput(t *testing.T) {
	costs, cfg, _ := skewedCosts(t, 1<<10)
	plan := BuildPlan(costs, cfg)
	if plan.Split {
		t.Fatalf("tiny input should degenerate, got split: %+v", plan)
	}
	if len(plan.CPUParts) != 0 && len(plan.GPUParts) != 0 {
		t.Fatalf("degenerate plan uses both backends: %+v", plan)
	}
	if plan.MakespanNs != math.Min(plan.CPUOnlyNs, plan.GPUOnlyNs) {
		t.Fatalf("degenerate makespan %g != better control (cpu=%g gpu=%g)",
			plan.MakespanNs, plan.CPUOnlyNs, plan.GPUOnlyNs)
	}
}

func TestBuildPlanDegeneratesToGPUOnA100(t *testing.T) {
	// On a uniform workload an A100 is orders of magnitude faster than
	// one host core and the output is too small for PCIe to matter;
	// splitting cannot win and the plan must degenerate to the GPU.
	// (Under heavy skew even an A100 plan may legitimately split — the
	// giant output makes D2H transfer the bottleneck, and keeping some
	// output-heavy partitions on the CPU avoids it.)
	g, err := zipf.New(zipf.Config{Theta: 0, Universe: 1 << 18, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	r, s := g.Pair(1 << 18)
	rcfg := radix.Config{Threads: 1, Bits1: 6, Bits2: 0}
	pr := radix.Partition(r.Tuples, rcfg, nil)
	ps := radix.Partition(s.Tuples, rcfg, nil)
	cfg := Config{Calib: DefaultCalibration(), Threads: 1} // zero Device = A100
	plan := BuildPlan(Costs(pr, ps, cfg), cfg)
	if plan.Split || plan.Degenerate != GPU {
		t.Fatalf("A100 plan should degenerate to GPU: %+v", plan)
	}
}

func TestForcePlanPinsBackend(t *testing.T) {
	costs, cfg, _ := skewedCosts(t, 1<<14)
	cpuPlan := ForcePlan(costs, cfg, CPU)
	if cpuPlan.Split || cpuPlan.Degenerate != CPU || len(cpuPlan.GPUParts) != 0 ||
		len(cpuPlan.CPUParts) != len(costs) {
		t.Fatalf("ForcePlan(CPU) = %+v", cpuPlan)
	}
	gpuPlan := ForcePlan(costs, cfg, GPU)
	if gpuPlan.Split || gpuPlan.Degenerate != GPU || len(gpuPlan.CPUParts) != 0 ||
		len(gpuPlan.GPUParts) != len(costs) {
		t.Fatalf("ForcePlan(GPU) = %+v", gpuPlan)
	}
	if gpuPlan.TransferNs <= 0 {
		t.Errorf("GPU-pinned plan has no transfer time: %+v", gpuPlan)
	}
}

func TestStaticPlanAlternates(t *testing.T) {
	costs, cfg, _ := skewedCosts(t, 1<<14)
	if len(costs) < 2 {
		t.Fatalf("need >= 2 partitions, got %d", len(costs))
	}
	plan := StaticPlan(costs, cfg)
	if !plan.Split {
		t.Fatalf("static plan with %d partitions should split: %+v", len(costs), plan)
	}
	if got := len(plan.CPUParts) + len(plan.GPUParts); got != len(costs) {
		t.Fatalf("static plan covers %d of %d partitions", got, len(costs))
	}
	if d := len(plan.CPUParts) - len(plan.GPUParts); d < 0 || d > 1 {
		t.Fatalf("round-robin imbalance: %d cpu vs %d gpu", len(plan.CPUParts), len(plan.GPUParts))
	}
}
