// Package costmodel predicts per-partition join costs on both backends
// and turns them into a CPU/GPU placement plan — the cost model behind
// the co-processing executor (DESIGN.md §5).
//
// The CPU side is a calibrated linear model over the join phase's two
// timed sections (internal/joinphase's BuildNs/ProbeNs split): building
// costs BuildNsPerTuple per R tuple, probing costs ProbeNsPerUnit per
// probe unit (one S tuple hashed plus one bucket entry visited). The two
// constants are host properties, fitted once by Calibrate's micro-run and
// reusable across requests.
//
// The GPU side needs no calibration: gpusim charges deterministic
// modelled cycles, so the model simply mirrors the kernel's charge recipe
// (gpupart.ProbeJoinBlock, including the sub-list decomposition of
// oversized R partitions and the H2D/D2H staging transfers) analytically
// from the partition sizes and sampled output estimates.
//
// Plan assigns every non-empty partition to one backend to minimize the
// predicted makespan: partitions are sorted heaviest-first and each is
// placed greedily on whichever backend finishes the combined schedule
// earlier (LPT over two unrelated machines — the CPU bin is work divided
// over its worker pool, the GPU bin replays gpusim's earliest-free-SM
// block schedule plus the serial transfers). When the predicted win over
// the better single backend is below a threshold, the plan degenerates to
// that single backend so uniform (or tiny) inputs pay no split overhead.
package costmodel

import (
	"math"
	"sort"

	"skewjoin/internal/cbase"
	"skewjoin/internal/freqtable"
	"skewjoin/internal/gpusim"
	"skewjoin/internal/hashfn"
	"skewjoin/internal/radix"
	"skewjoin/internal/relation"
)

// Backend identifies which processor a partition is placed on.
type Backend uint8

// The two processors of the coupled engine.
const (
	CPU Backend = iota
	GPU
)

// String implements fmt.Stringer.
func (b Backend) String() string {
	if b == GPU {
		return "gpu"
	}
	return "cpu"
}

// Calibration holds the two fitted scale constants of the CPU cost model.
// They are properties of the host (cache behaviour, branch costs), not of
// a workload, so one calibration serves every subsequent join.
type Calibration struct {
	// BuildNsPerTuple is the wall ns to insert one R tuple into a
	// chained hash table (joinphase's BuildNs over tuples built).
	BuildNsPerTuple float64
	// ProbeNsPerUnit is the wall ns per probe unit: one S tuple hashed
	// plus one bucket entry visited (joinphase's ProbeNs over
	// |S| + ProbeVisits).
	ProbeNsPerUnit float64
}

// Valid reports whether both constants are positive and finite.
func (c Calibration) Valid() bool {
	return c.BuildNsPerTuple > 0 && c.ProbeNsPerUnit > 0 &&
		!math.IsInf(c.BuildNsPerTuple, 1) && !math.IsInf(c.ProbeNsPerUnit, 1)
}

// DefaultCalibration returns typical modern-x86 constants, used when no
// micro-run has been performed.
func DefaultCalibration() Calibration {
	return Calibration{BuildNsPerTuple: 10, ProbeNsPerUnit: 2.5}
}

// calibration micro-run bounds: enough tuples that per-task overheads
// amortise, few enough that calibration stays in the low milliseconds.
const (
	calibrateTuples = 1 << 14
	calibrateRounds = 2
)

// Calibrate fits the CPU constants with a micro-run: a stride-sampled
// slice of each input (so the sample keeps the workload's skew shape) is
// joined by cbase, and the constants are read off the join phase's timed
// build/probe split. The cheapest of a few rounds is kept, since wall
// timers can only be inflated by scheduler noise, never deflated. Results
// are clamped into a sane range and fall back to DefaultCalibration when
// the inputs are too small to measure.
func Calibrate(r, s relation.Relation, threads int) Calibration {
	rs, ss := strideSample(r.Tuples, calibrateTuples), strideSample(s.Tuples, calibrateTuples)
	if len(rs) < 256 || len(ss) < 256 {
		return DefaultCalibration()
	}
	best := Calibration{math.Inf(1), math.Inf(1)}
	for round := 0; round < calibrateRounds; round++ {
		res := cbase.Join(
			relation.Relation{Tuples: rs}, relation.Relation{Tuples: ss},
			cbase.Config{Threads: threads, Bits1: 4, Bits2: 3},
		)
		st := res.Stats.Join
		units := float64(len(ss)) + float64(st.ProbeVisits)
		if st.BuildNs > 0 {
			if b := float64(st.BuildNs) / float64(len(rs)); b < best.BuildNsPerTuple {
				best.BuildNsPerTuple = b
			}
		}
		if st.ProbeNs > 0 && units > 0 {
			if p := float64(st.ProbeNs) / units; p < best.ProbeNsPerUnit {
				best.ProbeNsPerUnit = p
			}
		}
	}
	if !best.Valid() {
		return DefaultCalibration()
	}
	return best.clamp()
}

// clamp bounds both constants into [0.1ns, 1000ns] so a degenerate
// micro-run cannot produce a plan-warping calibration.
func (c Calibration) clamp() Calibration {
	bound := func(v float64) float64 {
		if v < 0.1 {
			return 0.1
		}
		if v > 1000 {
			return 1000
		}
		return v
	}
	return Calibration{BuildNsPerTuple: bound(c.BuildNsPerTuple), ProbeNsPerUnit: bound(c.ProbeNsPerUnit)}
}

// strideSample returns every n/cap-th tuple of src, at most cap tuples.
// Stride sampling keeps heavy keys at their true relative frequency,
// which is what makes the micro-run representative of the full join.
func strideSample(src []relation.Tuple, capTuples int) []relation.Tuple {
	if len(src) <= capTuples {
		return src
	}
	stride := (len(src) + capTuples - 1) / capTuples
	out := make([]relation.Tuple, 0, len(src)/stride+1)
	for i := 0; i < len(src); i += stride {
		out = append(out, src[i])
	}
	return out
}

// Config parameterises cost prediction and planning.
type Config struct {
	// Device is the simulated GPU the plan targets (zero fields = A100).
	Device gpusim.Config
	// Calib holds the CPU constants (zero value = DefaultCalibration).
	Calib Calibration
	// Threads is the CPU-side worker count the plan divides CPU work over.
	Threads int
	// SampleTarget is the per-partition, per-side sample size used to
	// estimate output cardinality and top-key frequency (default 64).
	SampleTarget int
	// MinWinNs is the absolute predicted-win floor: a split predicted to
	// save less than this over the better single backend degenerates
	// (default 25ms — below that, orchestration overhead eats the win).
	MinWinNs float64
	// WinFraction is the relative predicted-win floor (default 0.10).
	WinFraction float64
}

// Defaults fills zero fields.
func (c Config) Defaults() Config {
	c.Device = c.Device.Defaults()
	if !c.Calib.Valid() {
		c.Calib = DefaultCalibration()
	}
	if c.Threads <= 0 {
		c.Threads = 1
	}
	if c.SampleTarget <= 0 {
		c.SampleTarget = 64
	}
	if c.MinWinNs <= 0 {
		c.MinWinNs = 25e6
	}
	if c.WinFraction <= 0 {
		c.WinFraction = 0.10
	}
	return c
}

// PartCost is one non-empty radix partition with its predicted cost on
// each backend.
type PartCost struct {
	Part   int // partition index
	NR, NS int
	// EstOut is the sampled cross-estimate of the partition's output.
	EstOut float64
	// EstVisits is the estimated bucket entries visited probing it.
	EstVisits float64
	// CPUNs is the predicted single-worker CPU time.
	CPUNs float64
	// GPUBlockCycles holds the predicted cycles of each thread block the
	// partition becomes on the GPU (sub-list decomposition included).
	GPUBlockCycles []float64
	// GPUCycles is the sum over GPUBlockCycles.
	GPUCycles float64
	// Bytes is the partition's H2D input traffic if GPU-placed.
	Bytes int
}

// divergenceFactor inflates the predicted warp-loop iterations over the
// ideal visits/WarpSize: within a warp the slowest lane sets the pace, so
// chain-length variance costs extra iterations. Under heavy skew lanes
// walk the same giant chain and the factor approaches 1; the constant is
// a middle ground and the residual shows up in the recorded
// predicted-vs-actual error, not in correctness.
const divergenceFactor = 1.2

// Costs predicts both backends' cost for every non-empty partition pair.
func Costs(pr, ps *radix.Partitioned, cfg Config) []PartCost {
	cfg = cfg.Defaults()
	fanout := pr.Fanout()
	out := make([]PartCost, 0, fanout)
	for p := 0; p < fanout; p++ {
		nR, nS := pr.Size(p), ps.Size(p)
		if nR == 0 || nS == 0 {
			continue
		}
		pc := PartCost{Part: p, NR: nR, NS: nS, Bytes: (nR + nS) * relation.TupleSize}
		estOut, topR := estimatePartition(pr.Part(p), ps.Part(p), cfg.SampleTarget)
		pc.EstOut = estOut
		pc.EstVisits = estVisits(nR, nS, estOut)
		pc.CPUNs = cfg.Calib.BuildNsPerTuple*float64(nR) +
			cfg.Calib.ProbeNsPerUnit*(float64(nS)+pc.EstVisits)
		pc.GPUBlockCycles = gpuBlocks(cfg.Device, nR, nS, pc.EstVisits, estOut, topR)
		for _, c := range pc.GPUBlockCycles {
			pc.GPUCycles += c
		}
		out = append(out, pc)
	}
	return out
}

// estimatePartition stride-samples both sides of one partition and
// returns the cross-sample output estimate plus the extrapolated top-key
// frequency on the R side (the partition's longest expected chain).
func estimatePartition(rPart, sPart []relation.Tuple, target int) (estOut, topR float64) {
	strideR, strideS := sampleStride(len(rPart), target), sampleStride(len(sPart), target)
	cr := freqtable.New(target)
	var top uint32
	for i := 0; i < len(rPart); i += strideR {
		if c := cr.Add(rPart[i].Key); c > top {
			top = c
		}
	}
	cs := freqtable.New(target)
	for i := 0; i < len(sPart); i += strideS {
		cs.Add(sPart[i].Key)
	}
	var cross uint64
	cr.Each(func(k relation.Key, fr uint32) {
		if fs := cs.Count(k); fs > 0 {
			cross += uint64(fr) * uint64(fs)
		}
	})
	return float64(cross) * float64(strideR) * float64(strideS), float64(top) * float64(strideR)
}

// sampleStride is the stride that yields about `target` samples from n
// items.
func sampleStride(n, target int) int {
	if n <= target {
		return 1
	}
	return (n + target - 1) / target
}

// estVisits estimates the bucket entries visited while probing an
// nR-tuple chained table (NextPow2(nR) buckets, load factor <= 1) with nS
// tuples: every probe walks its whole bucket, so the expected visits are
// nS times the average chain length, plus the matches the cross-estimate
// found beyond what uniform chains explain.
func estVisits(nR, nS int, estOut float64) float64 {
	buckets := hashfn.NextPow2(nR)
	uniform := float64(nS) * float64(nR) / float64(buckets)
	v := uniform + estOut
	if v < float64(nS) {
		v = float64(nS)
	}
	return v
}

// gpuBlocks predicts the per-block cycles a partition costs on the GPU,
// mirroring gpupart.ProbeJoinBlock's charge recipe. An R side larger than
// the shared-memory capacity is decomposed into ceil(nR/capacity)
// sub-lists, each probed by the full S partition — Gbase's skew weakness,
// reproduced faithfully so the planner sees its cost.
func gpuBlocks(dev gpusim.Config, nR, nS int, visits, estOut, topChain float64) []float64 {
	capacity := dev.SharedMemBytes / 16
	if capacity < 1 {
		capacity = 1
	}
	subs := (nR + capacity - 1) / capacity
	if subs < 1 {
		subs = 1
	}
	blocks := make([]float64, subs)
	f := float64(subs)
	for i := range blocks {
		// Chains (and hence visits, matches and barrier depth) split
		// roughly evenly across sub-lists; every sub-list rereads the
		// full S side.
		blocks[i] = blockCycles(dev, float64(nR)/f, float64(nS), visits/f, estOut/f, topChain/f)
	}
	return blocks
}

// blockCycles mirrors gpupart.ProbeJoinBlock's cost accounting for one
// thread block joining an nR-tuple R sub-list against an nS-tuple S side.
func blockCycles(dev gpusim.Config, nR, nS, visits, matches, topChain float64) float64 {
	bpc := dev.GlobalBandwidth / dev.ClockHz / float64(dev.NumSMs)
	warps := float64(dev.CoresPerSM) / float64(dev.WarpSize)
	if warps < 1 {
		warps = 1
	}
	ws := float64(dev.WarpSize)

	var cycles float64
	// Build: coalesced R read, per-tuple hash/insert work, bucket-head
	// atomics.
	cycles += nR * relation.TupleSize / bpc
	cycles += math.Ceil(nR/ws) * 4 / warps
	cycles += nR * dev.AtomicCost
	// Probe: coalesced S read, then the chain walk. Each chain step costs
	// a shared access, a compare and the write-bitmap procedure; warps
	// serialise on their slowest lane (divergenceFactor).
	cycles += nS * relation.TupleSize / bpc
	stepCost := dev.SharedAccessCost + dev.ComputeCost + dev.AtomicCost + 3*dev.ComputeCost
	cycles += visits / ws * divergenceFactor * stepCost / warps
	// Barriers: one per chain step per batch of ThreadsPerBlock S tuples;
	// the longest chain in a typical batch is at least a couple of steps
	// and approaches the partition's top-key chain under skew.
	chain := topChain
	if chain < 2 {
		chain = 2
	}
	cycles += nS / float64(dev.ThreadsPerBlock) * chain * dev.BarrierCost
	// Output: post-bitmap offsets plus the coalesced result write.
	cycles += math.Ceil(matches/ws) / warps
	cycles += matches * 12 / bpc
	return cycles
}

// Plan is a per-partition placement with its predicted consequences. All
// times are nanoseconds of the respective backend's clock: CPU times are
// wall-style busy time per worker, GPU times are modelled device time —
// the same units the executor reports, so predicted and actual makespans
// are directly comparable.
type Plan struct {
	// CPUParts and GPUParts list the assigned partition indices, each in
	// ascending order. Every non-empty partition appears in exactly one.
	CPUParts, GPUParts []int
	// CPUNs is the predicted CPU-side time: assigned work over Threads.
	CPUNs float64
	// GPUNs is the predicted GPU-side modelled time: H2D transfer, the
	// block schedule's makespan, launch overhead and D2H transfer.
	GPUNs float64
	// TransferNs is the transfer share of GPUNs.
	TransferNs float64
	// MakespanNs is max(CPUNs, GPUNs) — the predicted join-phase time
	// with both backends running concurrently.
	MakespanNs float64
	// CPUOnlyNs / GPUOnlyNs are the predicted single-backend controls.
	CPUOnlyNs, GPUOnlyNs float64
	// Split reports whether the plan actually uses both backends. When
	// false, Degenerate names the single backend everything runs on.
	Split      bool
	Degenerate Backend
}

// BuildPlan assigns every costed partition to a backend. Heaviest partitions
// (by their cheaper-backend cost) are placed first, each on the backend
// that minimizes the resulting predicted makespan; afterwards the plan
// degenerates to the better single backend if the predicted win is below
// the configured thresholds.
func BuildPlan(costs []PartCost, cfg Config) Plan {
	cfg = cfg.Defaults()
	order := make([]int, len(costs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ca, cb := &costs[order[a]], &costs[order[b]]
		return math.Max(ca.CPUNs, gpuNsOf(cfg.Device, ca)) > math.Max(cb.CPUNs, gpuNsOf(cfg.Device, cb))
	})

	cpu := &cpuBin{threads: float64(cfg.Threads)}
	gpu := newGPUBin(cfg.Device)
	var onCPU, onGPU []int
	for _, i := range order {
		pc := &costs[i]
		withCPU := math.Max(cpu.timeWith(pc), gpu.time())
		withGPU := math.Max(cpu.time(), gpu.timeWith(pc))
		if withCPU <= withGPU {
			cpu.add(pc)
			onCPU = append(onCPU, pc.Part)
		} else {
			gpu.add(pc)
			onGPU = append(onGPU, pc.Part)
		}
	}
	sort.Ints(onCPU)
	sort.Ints(onGPU)

	plan := Plan{
		CPUParts: onCPU, GPUParts: onGPU,
		CPUNs: cpu.time(), GPUNs: gpu.time(), TransferNs: gpu.transferNs(),
	}
	plan.MakespanNs = math.Max(plan.CPUNs, plan.GPUNs)
	plan.CPUOnlyNs, plan.GPUOnlyNs = SinglePredictions(costs, cfg)

	better := math.Min(plan.CPUOnlyNs, plan.GPUOnlyNs)
	win := better - plan.MakespanNs
	threshold := math.Max(cfg.MinWinNs, cfg.WinFraction*better)
	if len(onCPU) == 0 || len(onGPU) == 0 || win < threshold {
		return degenerate(costs, cfg, plan)
	}
	plan.Split = true
	return plan
}

// SinglePredictions returns the predicted times of running every costed
// partition on one backend — the CPU-only and GPU-only controls.
func SinglePredictions(costs []PartCost, cfg Config) (cpuNs, gpuNs float64) {
	cfg = cfg.Defaults()
	cpu := &cpuBin{threads: float64(cfg.Threads)}
	gpu := newGPUBin(cfg.Device)
	for i := range costs {
		cpu.add(&costs[i])
		gpu.add(&costs[i])
	}
	return cpu.time(), gpu.time()
}

// degenerate rewrites plan to place everything on the cheaper single
// backend.
func degenerate(costs []PartCost, cfg Config, plan Plan) Plan {
	b := CPU
	if plan.GPUOnlyNs < plan.CPUOnlyNs {
		b = GPU
	}
	return singleBackend(costs, cfg, plan, b)
}

// StaticPlan alternates the costed partitions round-robin between the
// two backends, ignoring the cost model — the naive co-processing
// control the model-driven plan is benchmarked against (and the simplest
// way for tests to force a genuine two-backend split on inputs too small
// to clear BuildPlan's win thresholds).
func StaticPlan(costs []PartCost, cfg Config) Plan {
	cfg = cfg.Defaults()
	cpu := &cpuBin{threads: float64(cfg.Threads)}
	gpu := newGPUBin(cfg.Device)
	var onCPU, onGPU []int
	for i := range costs {
		pc := &costs[i]
		if i%2 == 0 {
			cpu.add(pc)
			onCPU = append(onCPU, pc.Part)
		} else {
			gpu.add(pc)
			onGPU = append(onGPU, pc.Part)
		}
	}
	plan := Plan{
		CPUParts: onCPU, GPUParts: onGPU,
		CPUNs: cpu.time(), GPUNs: gpu.time(), TransferNs: gpu.transferNs(),
	}
	plan.MakespanNs = math.Max(plan.CPUNs, plan.GPUNs)
	plan.CPUOnlyNs, plan.GPUOnlyNs = SinglePredictions(costs, cfg)
	plan.Split = len(onCPU) > 0 && len(onGPU) > 0
	if !plan.Split && len(onGPU) > 0 {
		plan.Degenerate = GPU
	}
	return plan
}

// ForcePlan places every costed partition on backend b unconditionally —
// the pinned CPU-only and GPU-only control policies of the coproc
// benchmark, sharing the predicted-time machinery with BuildPlan.
func ForcePlan(costs []PartCost, cfg Config, b Backend) Plan {
	cfg = cfg.Defaults()
	var plan Plan
	plan.CPUOnlyNs, plan.GPUOnlyNs = SinglePredictions(costs, cfg)
	return singleBackend(costs, cfg, plan, b)
}

// singleBackend rewrites plan so every partition runs on b.
func singleBackend(costs []PartCost, cfg Config, plan Plan, b Backend) Plan {
	all := make([]int, len(costs))
	for i := range costs {
		all[i] = costs[i].Part
	}
	sort.Ints(all)
	plan.Split = false
	plan.Degenerate = b
	if b == GPU {
		plan.CPUParts, plan.GPUParts = nil, all
		plan.CPUNs, plan.GPUNs = 0, plan.GPUOnlyNs
		gpu := newGPUBin(cfg.Device)
		for i := range costs {
			gpu.add(&costs[i])
		}
		plan.TransferNs = gpu.transferNs()
		plan.MakespanNs = plan.GPUOnlyNs
	} else {
		plan.CPUParts, plan.GPUParts = all, nil
		plan.CPUNs, plan.GPUNs, plan.TransferNs = plan.CPUOnlyNs, 0, 0
		plan.MakespanNs = plan.CPUOnlyNs
	}
	return plan
}

// gpuNsOf is the partition's GPU time ignoring schedule interactions,
// used only for the heaviest-first ordering.
func gpuNsOf(dev gpusim.Config, pc *PartCost) float64 {
	max := 0.0
	for _, c := range pc.GPUBlockCycles {
		if c > max {
			max = c
		}
	}
	return cyclesToNs(dev, max) + transferNs(dev, pc.Bytes, pc.EstOut)
}

// cpuBin accumulates CPU-assigned work; its time is work divided over the
// worker pool (the dynamic task queue balances well below makespan
// granularity).
type cpuBin struct {
	workNs  float64
	threads float64
}

func (b *cpuBin) add(pc *PartCost)              { b.workNs += pc.CPUNs }
func (b *cpuBin) time() float64                 { return b.workNs / b.threads }
func (b *cpuBin) timeWith(pc *PartCost) float64 { return (b.workNs + pc.CPUNs) / b.threads }

// gpuBin accumulates GPU-assigned blocks and transfers; its time replays
// gpusim's earliest-free-SM schedule over the accumulated block costs
// plus the serial H2D/D2H transfers and one launch overhead.
type gpuBin struct {
	dev     gpusim.Config
	sm      []float64 // min-heap on finish time, as gpusim.scheduleInto
	bytes   float64   // H2D input traffic
	outRows float64   // estimated output rows (D2H at 12 bytes each)
	blocks  int
}

func newGPUBin(dev gpusim.Config) *gpuBin {
	return &gpuBin{dev: dev, sm: make([]float64, dev.NumSMs)}
}

// add schedules the partition's blocks onto the bin's SM heap.
func (b *gpuBin) add(pc *PartCost) {
	for _, c := range pc.GPUBlockCycles {
		b.sm[0] += c
		siftDown(b.sm)
		b.blocks++
	}
	b.bytes += float64(pc.Bytes)
	b.outRows += pc.EstOut
}

// time is the bin's predicted modelled time: schedule makespan plus
// launch overhead (when any block exists) plus transfers.
func (b *gpuBin) time() float64 {
	makespan := 0.0
	for _, t := range b.sm {
		if t > makespan {
			makespan = t
		}
	}
	cycles := makespan
	if b.blocks > 0 {
		cycles += b.dev.KernelLaunchCycles
	}
	return cyclesToNs(b.dev, cycles) + b.transferNs()
}

// timeWith is time() if pc were added, without mutating the bin.
func (b *gpuBin) timeWith(pc *PartCost) float64 {
	saved := make([]float64, len(b.sm))
	copy(saved, b.sm)
	savedBytes, savedRows, savedBlocks := b.bytes, b.outRows, b.blocks
	b.add(pc)
	t := b.time()
	copy(b.sm, saved)
	b.bytes, b.outRows, b.blocks = savedBytes, savedRows, savedBlocks
	return t
}

func (b *gpuBin) transferNs() float64 {
	return transferNs(b.dev, int(b.bytes), b.outRows)
}

// transferNs is the modelled H2D+D2H staging time for the given input
// bytes and estimated output rows (12 bytes per result row).
func transferNs(dev gpusim.Config, inBytes int, outRows float64) float64 {
	return (float64(inBytes) + outRows*12) / dev.PCIeBandwidth * 1e9
}

func cyclesToNs(dev gpusim.Config, cycles float64) float64 {
	return cycles / dev.ClockHz * 1e9
}

// siftDown restores the min-heap property after the root grew — the same
// earliest-free-SM schedule gpusim uses.
func siftDown(sm []float64) {
	i := 0
	for {
		l := 2*i + 1
		small := i
		if l < len(sm) && sm[l] < sm[small] {
			small = l
		}
		if r := l + 1; r < len(sm) && sm[r] < sm[small] {
			small = r
		}
		if small == i {
			return
		}
		sm[i], sm[small] = sm[small], sm[i]
		i = small
	}
}
