// Package costmodel predicts per-partition join costs on both backends
// and turns them into a CPU/GPU placement plan — the cost model behind
// the co-processing executor (DESIGN.md §5).
//
// The CPU side is a calibrated linear model over the join phase's two
// timed sections (internal/joinphase's BuildNs/ProbeNs split): building
// costs BuildNsPerTuple per R tuple, probing costs ProbeNsPerUnit per
// probe unit (one S tuple hashed plus one bucket entry visited). The two
// constants are host properties, fitted once by Calibrate's micro-run and
// reusable across requests.
//
// The GPU side needs no calibration: gpusim charges deterministic
// modelled cycles, so the model simply mirrors the kernel's charge recipe
// (gpupart.ProbeJoinBlock, including the sub-list decomposition of
// oversized R partitions and the H2D/D2H staging transfers) analytically
// from the partition sizes and sampled output estimates.
//
// Plan assigns every non-empty partition to one backend to minimize the
// predicted makespan: partitions are sorted heaviest-first and each is
// placed greedily on whichever backend finishes the combined schedule
// earlier (LPT over two unrelated machines — the CPU bin is work divided
// over its worker pool, the GPU bin replays gpusim's earliest-free-SM
// block schedule plus the serial transfers). When the predicted win over
// the better single backend is below a threshold, the plan degenerates to
// that single backend so uniform (or tiny) inputs pay no split overhead.
package costmodel

import (
	"math"
	"sort"

	"skewjoin/internal/cbase"
	"skewjoin/internal/freqtable"
	"skewjoin/internal/gpusim"
	"skewjoin/internal/hashfn"
	"skewjoin/internal/radix"
	"skewjoin/internal/relation"
)

// Backend identifies which processor a partition is placed on.
type Backend uint8

// The two processors of the coupled engine.
const (
	CPU Backend = iota
	GPU
)

// String implements fmt.Stringer.
func (b Backend) String() string {
	if b == GPU {
		return "gpu"
	}
	return "cpu"
}

// Calibration holds the two fitted scale constants of the CPU cost model.
// They are properties of the host (cache behaviour, branch costs), not of
// a workload, so one calibration serves every subsequent join.
type Calibration struct {
	// BuildNsPerTuple is the wall ns to insert one R tuple into a
	// chained hash table (joinphase's BuildNs over tuples built).
	BuildNsPerTuple float64
	// ProbeNsPerUnit is the wall ns per probe unit: one S tuple hashed
	// plus one bucket entry visited (joinphase's ProbeNs over
	// |S| + ProbeVisits).
	ProbeNsPerUnit float64
}

// Valid reports whether both constants are positive and finite.
func (c Calibration) Valid() bool {
	return c.BuildNsPerTuple > 0 && c.ProbeNsPerUnit > 0 &&
		!math.IsInf(c.BuildNsPerTuple, 1) && !math.IsInf(c.ProbeNsPerUnit, 1)
}

// DefaultCalibration returns typical modern-x86 constants, used when no
// micro-run has been performed.
func DefaultCalibration() Calibration {
	return Calibration{BuildNsPerTuple: 10, ProbeNsPerUnit: 2.5}
}

// calibration micro-run bounds: enough tuples that per-task overheads
// amortise, few enough that calibration stays in the low milliseconds.
const (
	calibrateTuples = 1 << 14
	calibrateRounds = 2
)

// Calibrate fits the CPU constants with a micro-run: a stride-sampled
// slice of each input (so the sample keeps the workload's skew shape) is
// joined by cbase, and the constants are read off the join phase's timed
// build/probe split. The cheapest of a few rounds is kept, since wall
// timers can only be inflated by scheduler noise, never deflated. Results
// are clamped into a sane range and fall back to DefaultCalibration when
// the inputs are too small to measure.
func Calibrate(r, s relation.Relation, threads int) Calibration {
	rs, ss := strideSample(r.Tuples, calibrateTuples), strideSample(s.Tuples, calibrateTuples)
	if len(rs) < 256 || len(ss) < 256 {
		return DefaultCalibration()
	}
	best := Calibration{math.Inf(1), math.Inf(1)}
	for round := 0; round < calibrateRounds; round++ {
		res := cbase.Join(
			relation.Relation{Tuples: rs}, relation.Relation{Tuples: ss},
			cbase.Config{Threads: threads, Bits1: 4, Bits2: 3},
		)
		st := res.Stats.Join
		units := float64(len(ss)) + float64(st.ProbeVisits)
		if st.BuildNs > 0 {
			if b := float64(st.BuildNs) / float64(len(rs)); b < best.BuildNsPerTuple {
				best.BuildNsPerTuple = b
			}
		}
		if st.ProbeNs > 0 && units > 0 {
			if p := float64(st.ProbeNs) / units; p < best.ProbeNsPerUnit {
				best.ProbeNsPerUnit = p
			}
		}
	}
	if !best.Valid() {
		return DefaultCalibration()
	}
	return best.clamp()
}

// clamp bounds both constants into [0.1ns, 1000ns] so a degenerate
// micro-run cannot produce a plan-warping calibration.
func (c Calibration) clamp() Calibration {
	bound := func(v float64) float64 {
		if v < 0.1 {
			return 0.1
		}
		if v > 1000 {
			return 1000
		}
		return v
	}
	return Calibration{BuildNsPerTuple: bound(c.BuildNsPerTuple), ProbeNsPerUnit: bound(c.ProbeNsPerUnit)}
}

// strideSample returns every n/cap-th tuple of src, at most cap tuples.
// Stride sampling keeps heavy keys at their true relative frequency,
// which is what makes the micro-run representative of the full join.
func strideSample(src []relation.Tuple, capTuples int) []relation.Tuple {
	if len(src) <= capTuples {
		return src
	}
	stride := (len(src) + capTuples - 1) / capTuples
	out := make([]relation.Tuple, 0, len(src)/stride+1)
	for i := 0; i < len(src); i += stride {
		out = append(out, src[i])
	}
	return out
}

// Config parameterises cost prediction and planning.
type Config struct {
	// Device is the simulated GPU the plan targets (zero fields = A100).
	Device gpusim.Config
	// Calib holds the CPU constants (zero value = DefaultCalibration).
	Calib Calibration
	// Threads is the CPU-side worker count the plan divides CPU work over.
	Threads int
	// SampleTarget is the per-partition, per-side sample size used to
	// estimate output cardinality and top-key frequency (default 64).
	SampleTarget int
	// MinWinNs is the absolute predicted-win floor: a split predicted to
	// save less than this over the better single backend degenerates
	// (default 25ms — below that, orchestration overhead eats the win).
	MinWinNs float64
	// WinFraction is the relative predicted-win floor (default 0.10).
	WinFraction float64
	// Fragments is the granularity the hot partition's probe side is cut
	// into when the plan fragments it across both backends (default 8,
	// minimum effective value 2). Negative disables fragmentation, making
	// the radix partition the atomic placement unit again.
	Fragments int
	// FragmentFactor triggers fragmentation: the hot partition is
	// fragmented only when its cheaper-backend solo time exceeds
	// FragmentFactor times the balanced-makespan lower bound (default
	// 1.2) — below that, whole-partition placement can still balance.
	FragmentFactor float64
}

// Defaults fills zero fields.
func (c Config) Defaults() Config {
	c.Device = c.Device.Defaults()
	if !c.Calib.Valid() {
		c.Calib = DefaultCalibration()
	}
	if c.Threads <= 0 {
		c.Threads = 1
	}
	if c.SampleTarget <= 0 {
		c.SampleTarget = 64
	}
	if c.MinWinNs <= 0 {
		c.MinWinNs = 25e6
	}
	if c.WinFraction <= 0 {
		c.WinFraction = 0.10
	}
	if c.Fragments == 0 {
		c.Fragments = 8
	} else if c.Fragments > 0 && c.Fragments < 2 {
		c.Fragments = 2
	}
	if c.FragmentFactor <= 0 {
		c.FragmentFactor = 1.2
	}
	return c
}

// PartCost is one non-empty radix partition with its predicted cost on
// each backend.
type PartCost struct {
	Part   int // partition index
	NR, NS int
	// EstOut is the sampled cross-estimate of the partition's output.
	EstOut float64
	// EstVisits is the estimated bucket entries visited probing it.
	EstVisits float64
	// TopChain is the extrapolated top-key frequency on the R side — the
	// partition's longest expected chain, reused when pricing fragments.
	TopChain float64
	// CPUNs is the predicted single-worker CPU time.
	CPUNs float64
	// GPUBlockCycles holds the predicted cycles of each thread block the
	// partition becomes on the GPU (sub-list decomposition included).
	GPUBlockCycles []float64
	// GPUCycles is the sum over GPUBlockCycles.
	GPUCycles float64
	// Bytes is the partition's H2D input traffic if GPU-placed.
	Bytes int
}

// divergenceFactor inflates the predicted warp-loop iterations over the
// ideal visits/WarpSize: within a warp the slowest lane sets the pace, so
// chain-length variance costs extra iterations. Under heavy skew lanes
// walk the same giant chain and the factor approaches 1; the constant is
// a middle ground and the residual shows up in the recorded
// predicted-vs-actual error, not in correctness.
const divergenceFactor = 1.2

// Costs predicts both backends' cost for every non-empty partition pair.
func Costs(pr, ps *radix.Partitioned, cfg Config) []PartCost {
	cfg = cfg.Defaults()
	fanout := pr.Fanout()
	out := make([]PartCost, 0, fanout)
	for p := 0; p < fanout; p++ {
		nR, nS := pr.Size(p), ps.Size(p)
		if nR == 0 || nS == 0 {
			continue
		}
		pc := PartCost{Part: p, NR: nR, NS: nS, Bytes: (nR + nS) * relation.TupleSize}
		estOut, topR := estimatePartition(pr.Part(p), ps.Part(p), cfg.SampleTarget)
		pc.EstOut = estOut
		pc.EstVisits = estVisits(nR, nS, estOut)
		pc.TopChain = topR
		pc.CPUNs = cfg.Calib.BuildNsPerTuple*float64(nR) +
			cfg.Calib.ProbeNsPerUnit*(float64(nS)+pc.EstVisits)
		pc.GPUBlockCycles = gpuBlocks(cfg.Device, nR, nS, pc.EstVisits, estOut, topR)
		for _, c := range pc.GPUBlockCycles {
			pc.GPUCycles += c
		}
		out = append(out, pc)
	}
	return out
}

// estimatePartition stride-samples both sides of one partition and
// returns the cross-sample output estimate plus the extrapolated top-key
// frequency on the R side (the partition's longest expected chain).
func estimatePartition(rPart, sPart []relation.Tuple, target int) (estOut, topR float64) {
	strideR, strideS := sampleStride(len(rPart), target), sampleStride(len(sPart), target)
	cr := freqtable.New(target)
	var top uint32
	for i := 0; i < len(rPart); i += strideR {
		if c := cr.Add(rPart[i].Key); c > top {
			top = c
		}
	}
	cs := freqtable.New(target)
	for i := 0; i < len(sPart); i += strideS {
		cs.Add(sPart[i].Key)
	}
	var cross uint64
	cr.Each(func(k relation.Key, fr uint32) {
		if fs := cs.Count(k); fs > 0 {
			cross += uint64(fr) * uint64(fs)
		}
	})
	return float64(cross) * float64(strideR) * float64(strideS), float64(top) * float64(strideR)
}

// sampleStride is the stride that yields about `target` samples from n
// items.
func sampleStride(n, target int) int {
	if n <= target {
		return 1
	}
	return (n + target - 1) / target
}

// estVisits estimates the bucket entries visited while probing an
// nR-tuple chained table (NextPow2(nR) buckets, load factor <= 1) with nS
// tuples: every probe walks its whole bucket, so the expected visits are
// nS times the average chain length, plus the matches the cross-estimate
// found beyond what uniform chains explain.
func estVisits(nR, nS int, estOut float64) float64 {
	buckets := hashfn.NextPow2(nR)
	uniform := float64(nS) * float64(nR) / float64(buckets)
	v := uniform + estOut
	if v < float64(nS) {
		v = float64(nS)
	}
	return v
}

// gpuBlocks predicts the per-block cycles a partition costs on the GPU,
// mirroring gpupart.ProbeJoinBlock's charge recipe. An R side larger than
// the shared-memory capacity is decomposed into ceil(nR/capacity)
// sub-lists, each probed by the full S partition — Gbase's skew weakness,
// reproduced faithfully so the planner sees its cost.
func gpuBlocks(dev gpusim.Config, nR, nS int, visits, estOut, topChain float64) []float64 {
	capacity := dev.SharedMemBytes / 16
	if capacity < 1 {
		capacity = 1
	}
	subs := (nR + capacity - 1) / capacity
	if subs < 1 {
		subs = 1
	}
	blocks := make([]float64, subs)
	f := float64(subs)
	for i := range blocks {
		// Chains (and hence visits, matches and barrier depth) split
		// roughly evenly across sub-lists; every sub-list rereads the
		// full S side.
		blocks[i] = blockCycles(dev, float64(nR)/f, float64(nS), visits/f, estOut/f, topChain/f)
	}
	return blocks
}

// blockCycles mirrors gpupart.ProbeJoinBlock's cost accounting for one
// thread block joining an nR-tuple R sub-list against an nS-tuple S side.
func blockCycles(dev gpusim.Config, nR, nS, visits, matches, topChain float64) float64 {
	bpc := dev.GlobalBandwidth / dev.ClockHz / float64(dev.NumSMs)
	warps := float64(dev.CoresPerSM) / float64(dev.WarpSize)
	if warps < 1 {
		warps = 1
	}
	ws := float64(dev.WarpSize)

	var cycles float64
	// Build: coalesced R read, per-tuple hash/insert work, bucket-head
	// atomics.
	cycles += nR * relation.TupleSize / bpc
	cycles += math.Ceil(nR/ws) * 4 / warps
	cycles += nR * dev.AtomicCost
	// Probe: coalesced S read, then the chain walk. Each chain step costs
	// a shared access, a compare and the write-bitmap procedure; warps
	// serialise on their slowest lane (divergenceFactor).
	cycles += nS * relation.TupleSize / bpc
	stepCost := dev.SharedAccessCost + dev.ComputeCost + dev.AtomicCost + 3*dev.ComputeCost
	cycles += visits / ws * divergenceFactor * stepCost / warps
	// Barriers: one per chain step per batch of ThreadsPerBlock S tuples;
	// the longest chain in a typical batch is at least a couple of steps
	// and approaches the partition's top-key chain under skew.
	chain := topChain
	if chain < 2 {
		chain = 2
	}
	cycles += nS / float64(dev.ThreadsPerBlock) * chain * dev.BarrierCost
	// Output: post-bitmap offsets plus the coalesced result write.
	cycles += math.Ceil(matches/ws) / warps
	cycles += matches * 12 / bpc
	return cycles
}

// Degeneration reasons, reported by Plan.DegenerateReason when a plan
// falls back to a single backend.
const (
	// ReasonHotPartitionDominates: the hot partition's cheaper-backend
	// solo time is within the win threshold of the better single-backend
	// time, so no whole-partition placement (and no fragmentation the
	// model could price) can beat single-backend execution.
	ReasonHotPartitionDominates = "hot-partition-dominates"
	// ReasonMinWinThreshold: a balanced split exists on paper but its
	// predicted win is below max(MinWinNs, WinFraction·better) — the
	// orchestration overhead would eat it.
	ReasonMinWinThreshold = "min-win-threshold"
	// ReasonPolicyPinned: the policy (static round-robin with one
	// partition, or a forced single backend), not the model, placed
	// everything on one backend.
	ReasonPolicyPinned = "policy-pinned"
)

// Fragment is one probe-side sub-range of a fragmented partition. The
// partition's build side is replicated to both backends; each fragment
// probes S[Lo:Hi) of the partition against the full replicated table, so
// disjoint fragments emit disjoint slices of the partition's output.
type Fragment struct {
	Part    int // the fragmented partition's index
	Lo, Hi  int // probe-side sub-range [Lo, Hi) within the partition
	Backend Backend
}

// Plan is a per-partition placement with its predicted consequences. All
// times are nanoseconds of the respective backend's clock: CPU times are
// wall-style busy time per worker, GPU times are modelled device time —
// the same units the executor reports, so predicted and actual makespans
// are directly comparable.
type Plan struct {
	// CPUParts and GPUParts list the assigned partition indices, each in
	// ascending order. Every non-empty partition appears in exactly one,
	// except a fragmented partition (FragPart), which appears in neither:
	// its placement is the per-range Fragments list instead.
	CPUParts, GPUParts []int
	// Fragments holds the probe-side sub-ranges of the fragmented
	// partition, covering it exactly once. Empty when no partition was
	// fragmented.
	Fragments []Fragment
	// FragPart is the fragmented partition's index, -1 when none.
	FragPart int
	// CPUNs is the predicted CPU-side time: assigned work over Threads.
	CPUNs float64
	// GPUNs is the predicted GPU-side modelled time: H2D transfer, the
	// block schedule's makespan, launch overhead and D2H transfer.
	GPUNs float64
	// TransferNs is the transfer share of GPUNs.
	TransferNs float64
	// MakespanNs is max(CPUNs, GPUNs) — the predicted join-phase time
	// with both backends running concurrently.
	MakespanNs float64
	// CPUOnlyNs / GPUOnlyNs are the predicted single-backend controls.
	CPUOnlyNs, GPUOnlyNs float64
	// BalancedNs is the balanced-makespan lower bound (BalancedBound) —
	// what a perfect fractional placement of all partitions would cost.
	BalancedNs float64
	// Split reports whether the plan actually uses both backends. When
	// false, Degenerate names the single backend everything runs on and
	// DegenerateReason classifies why (Reason* constants).
	Split            bool
	Degenerate       Backend
	DegenerateReason string
}

// Fragmented reports whether the plan splits one partition across both
// backends.
func (p *Plan) Fragmented() bool { return len(p.Fragments) > 0 }

// BuildPlan assigns every costed partition to a backend. Heaviest partitions
// (by their cheaper-backend cost) are placed first, each on the backend
// that minimizes the resulting predicted makespan. When the hot partition
// alone exceeds the balanced-makespan bound by FragmentFactor, a
// fragmented plan — the hot partition's build side replicated to both
// backends, its probe side split cost-proportionally — is priced too and
// adopted if it predicts a strictly lower makespan. Afterwards the plan
// degenerates to the better single backend if the predicted win is below
// the configured thresholds, recording why.
func BuildPlan(costs []PartCost, cfg Config) Plan {
	cfg = cfg.Defaults()
	cpu := &cpuBin{threads: float64(cfg.Threads)}
	gpu := newGPUBin(cfg.Device)
	onCPU, onGPU := placeParts(costs, cfg, -1, cpu, gpu)

	plan := Plan{
		CPUParts: onCPU, GPUParts: onGPU, FragPart: -1,
		CPUNs: cpu.time(), GPUNs: gpu.time(), TransferNs: gpu.transferNs(),
	}
	plan.MakespanNs = math.Max(plan.CPUNs, plan.GPUNs)
	plan.CPUOnlyNs, plan.GPUOnlyNs = SinglePredictions(costs, cfg)
	plan.BalancedNs = BalancedBound(costs, cfg)

	if frag, ok := fragmentPlan(costs, cfg, plan.BalancedNs); ok && frag.MakespanNs < plan.MakespanNs {
		frag.CPUOnlyNs, frag.GPUOnlyNs = plan.CPUOnlyNs, plan.GPUOnlyNs
		frag.BalancedNs = plan.BalancedNs
		plan = frag
	}

	usesCPU := len(plan.CPUParts) > 0
	usesGPU := len(plan.GPUParts) > 0
	for _, f := range plan.Fragments {
		if f.Backend == CPU {
			usesCPU = true
		} else {
			usesGPU = true
		}
	}
	better := math.Min(plan.CPUOnlyNs, plan.GPUOnlyNs)
	win := better - plan.MakespanNs
	threshold := math.Max(cfg.MinWinNs, cfg.WinFraction*better)
	if !usesCPU || !usesGPU || win < threshold {
		// Classify the fallback. The hot partition is the structural
		// blocker when the plan could not fragment it (disabled, too
		// small to cut, or fragmentation lost to the atomic plan), it
		// exceeds the fragmentation trigger, and its solo floor leaves
		// less than the required win over the better single backend.
		// Otherwise the win merely fell under the floor.
		reason := ReasonMinWinThreshold
		_, hotNs := hotAtomic(costs, cfg)
		if !plan.Fragmented() && hotNs > cfg.FragmentFactor*plan.BalancedNs &&
			hotNs >= better-threshold {
			reason = ReasonHotPartitionDominates
		}
		p := degenerate(costs, cfg, plan)
		p.DegenerateReason = reason
		return p
	}
	plan.Split = true
	return plan
}

// placeParts greedily places every costed partition except skip (an index
// into costs, -1 for none) heaviest-first onto whichever bin yields the
// lower combined makespan, mutating the bins and returning the sorted
// placement lists. Bins may arrive pre-seeded (fragmentPlan seeds them
// with the hot partition's fragments before placing the tail).
func placeParts(costs []PartCost, cfg Config, skip int, cpu *cpuBin, gpu *gpuBin) (onCPU, onGPU []int) {
	order := make([]int, 0, len(costs))
	for i := range costs {
		if i != skip {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		ca, cb := &costs[order[a]], &costs[order[b]]
		return math.Max(ca.CPUNs, gpuNsOf(cfg.Device, ca)) > math.Max(cb.CPUNs, gpuNsOf(cfg.Device, cb))
	})
	for _, i := range order {
		pc := &costs[i]
		withCPU := math.Max(cpu.timeWith(pc), gpu.time())
		withGPU := math.Max(cpu.time(), gpu.timeWith(pc))
		if withCPU <= withGPU {
			cpu.add(pc)
			onCPU = append(onCPU, pc.Part)
		} else {
			gpu.add(pc)
			onGPU = append(onGPU, pc.Part)
		}
	}
	sort.Ints(onCPU)
	sort.Ints(onGPU)
	return onCPU, onGPU
}

// BalancedBound returns the fractional balanced-makespan lower bound: the
// smallest deadline T for which a fractional placement of every partition
// (each arbitrarily divisible between the backends) finishes both sides
// by T. Whole-partition placement can never beat it, so a hot partition
// whose solo time exceeds this bound by FragmentFactor provably dominates
// any atomic plan's makespan — the fragmentation trigger. Computed by
// binary search on T with a greedy fractional feasibility check (CPU
// budget spent on the partitions with the highest GPU-relief per CPU-ns
// first — the fractional-knapsack optimum).
func BalancedBound(costs []PartCost, cfg Config) float64 {
	cfg = cfg.Defaults()
	if len(costs) == 0 {
		return 0
	}
	c := make([]float64, len(costs))
	g := make([]float64, len(costs))
	var sumC, sumG float64
	for i := range costs {
		c[i] = costs[i].CPUNs / float64(cfg.Threads)
		// Idealized perfectly-parallel GPU time: cycles spread over all
		// SMs plus the partition's transfer share. A lower bound on the
		// real block schedule, as a bound must be.
		g[i] = cyclesToNs(cfg.Device, costs[i].GPUCycles/float64(cfg.Device.NumSMs)) +
			transferNs(cfg.Device, costs[i].Bytes, costs[i].EstOut)
		sumC += c[i]
		sumG += g[i]
	}
	order := make([]int, len(costs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return g[order[a]]*c[order[b]] > g[order[b]]*c[order[a]]
	})
	feasible := func(T float64) bool {
		cpuLeft, gpuLoad := T, 0.0
		for _, i := range order {
			switch {
			case cpuLeft <= 0:
				gpuLoad += g[i]
			case c[i] <= cpuLeft:
				cpuLeft -= c[i]
			default:
				gpuLoad += g[i] * (1 - cpuLeft/c[i])
				cpuLeft = 0
			}
		}
		return gpuLoad <= T
	}
	lo, hi := 0.0, math.Min(sumC, sumG)
	for i := 0; i < 48; i++ {
		mid := (lo + hi) / 2
		if feasible(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// hotAtomic returns the index (into costs) and cheaper-backend solo time
// of the partition that is most expensive even on its better backend —
// the floor any atomic placement's makespan inherits from it.
func hotAtomic(costs []PartCost, cfg Config) (idx int, ns float64) {
	idx = -1
	for i := range costs {
		solo := math.Min(costs[i].CPUNs/float64(cfg.Threads), soloGPUNs(cfg.Device, &costs[i]))
		if solo > ns {
			idx, ns = i, solo
		}
	}
	return idx, ns
}

// soloGPUNs is the partition's predicted modelled time running alone on
// the GPU (block schedule, launch overhead and transfers included).
func soloGPUNs(dev gpusim.Config, pc *PartCost) float64 {
	b := newGPUBin(dev)
	b.add(pc)
	return b.time()
}

// fragmentPlan prices a plan that fragments the hot partition across both
// backends: its build side replicated to both, its probe side cut into
// cfg.Fragments equal ranges of which the first k go to the CPU and the
// contiguous rest to the GPU. Every k is tried with the tail partitions
// re-placed greedily around the seeded fragments, and the best balance is
// returned. ok is false when fragmentation is disabled, the hot partition
// does not exceed the balanced bound by FragmentFactor, or no cut exists.
func fragmentPlan(costs []PartCost, cfg Config, balanced float64) (Plan, bool) {
	if cfg.Fragments < 2 || len(costs) == 0 {
		return Plan{}, false
	}
	hotIdx, hotNs := hotAtomic(costs, cfg)
	if hotIdx < 0 || hotNs <= cfg.FragmentFactor*balanced {
		return Plan{}, false
	}
	hot := &costs[hotIdx]
	f := cfg.Fragments
	if f > hot.NS {
		f = hot.NS
	}
	if f < 2 {
		return Plan{}, false
	}

	best := Plan{FragPart: -1, MakespanNs: math.Inf(1)}
	found := false
	for k := 1; k < f; k++ {
		cut := hot.NS * k / f
		if cut == 0 || cut == hot.NS {
			continue
		}
		cpu := &cpuBin{threads: float64(cfg.Threads)}
		gpu := newGPUBin(cfg.Device)
		// Seed the bins with the hot partition's two sides — the heaviest
		// placement decision — then place the tail greedily around them.
		// Each side pays the full build replication: the CPU fragment's
		// CPUNs charges BuildNsPerTuple for every R tuple, and the GPU
		// fragment decomposes the full R side into sub-lists that each
		// reread only its probe share.
		cpu.add(fragCost(hot, cfg, 0, cut))
		gpu.add(fragCost(hot, cfg, cut, hot.NS))
		onCPU, onGPU := placeParts(costs, cfg, hotIdx, cpu, gpu)
		plan := Plan{
			CPUParts: onCPU, GPUParts: onGPU, FragPart: hot.Part,
			CPUNs: cpu.time(), GPUNs: gpu.time(), TransferNs: gpu.transferNs(),
		}
		plan.MakespanNs = math.Max(plan.CPUNs, plan.GPUNs)
		if plan.MakespanNs < best.MakespanNs {
			for i := 0; i < k; i++ {
				if lo, hi := hot.NS*i/f, hot.NS*(i+1)/f; lo < hi {
					plan.Fragments = append(plan.Fragments,
						Fragment{Part: hot.Part, Lo: lo, Hi: hi, Backend: CPU})
				}
			}
			for i := k; i < f; i++ {
				if lo, hi := hot.NS*i/f, hot.NS*(i+1)/f; lo < hi {
					plan.Fragments = append(plan.Fragments,
						Fragment{Part: hot.Part, Lo: lo, Hi: hi, Backend: GPU})
				}
			}
			best = plan
			found = true
		}
	}
	return best, found
}

// fragCost prices one probe-side fragment S[lo:hi) of the hot partition
// as a synthetic PartCost: the full R side (the build-replication
// penalty), the probe quantities scaled by the fragment's share of S, and
// the partition's top chain kept whole — the hot key's chain is fully
// present in the replicated table no matter how S is cut.
func fragCost(hot *PartCost, cfg Config, lo, hi int) *PartCost {
	ns := hi - lo
	frac := float64(ns) / float64(hot.NS)
	visits := hot.EstVisits * frac
	if visits < float64(ns) {
		visits = float64(ns)
	}
	estOut := hot.EstOut * frac
	pc := &PartCost{
		Part: hot.Part, NR: hot.NR, NS: ns,
		EstOut: estOut, EstVisits: visits, TopChain: hot.TopChain,
		Bytes: (hot.NR + ns) * relation.TupleSize,
	}
	pc.CPUNs = cfg.Calib.BuildNsPerTuple*float64(hot.NR) +
		cfg.Calib.ProbeNsPerUnit*(float64(ns)+visits)
	pc.GPUBlockCycles = gpuBlocks(cfg.Device, hot.NR, ns, visits, estOut, hot.TopChain)
	for _, c := range pc.GPUBlockCycles {
		pc.GPUCycles += c
	}
	return pc
}

// SinglePredictions returns the predicted times of running every costed
// partition on one backend — the CPU-only and GPU-only controls.
func SinglePredictions(costs []PartCost, cfg Config) (cpuNs, gpuNs float64) {
	cfg = cfg.Defaults()
	cpu := &cpuBin{threads: float64(cfg.Threads)}
	gpu := newGPUBin(cfg.Device)
	for i := range costs {
		cpu.add(&costs[i])
		gpu.add(&costs[i])
	}
	return cpu.time(), gpu.time()
}

// degenerate rewrites plan to place everything on the cheaper single
// backend.
func degenerate(costs []PartCost, cfg Config, plan Plan) Plan {
	b := CPU
	if plan.GPUOnlyNs < plan.CPUOnlyNs {
		b = GPU
	}
	return singleBackend(costs, cfg, plan, b)
}

// StaticPlan alternates the costed partitions round-robin between the
// two backends, ignoring the cost model — the naive co-processing
// control the model-driven plan is benchmarked against (and the simplest
// way for tests to force a genuine two-backend split on inputs too small
// to clear BuildPlan's win thresholds).
func StaticPlan(costs []PartCost, cfg Config) Plan {
	cfg = cfg.Defaults()
	cpu := &cpuBin{threads: float64(cfg.Threads)}
	gpu := newGPUBin(cfg.Device)
	var onCPU, onGPU []int
	for i := range costs {
		pc := &costs[i]
		if i%2 == 0 {
			cpu.add(pc)
			onCPU = append(onCPU, pc.Part)
		} else {
			gpu.add(pc)
			onGPU = append(onGPU, pc.Part)
		}
	}
	plan := Plan{
		CPUParts: onCPU, GPUParts: onGPU, FragPart: -1,
		CPUNs: cpu.time(), GPUNs: gpu.time(), TransferNs: gpu.transferNs(),
	}
	plan.MakespanNs = math.Max(plan.CPUNs, plan.GPUNs)
	plan.CPUOnlyNs, plan.GPUOnlyNs = SinglePredictions(costs, cfg)
	plan.Split = len(onCPU) > 0 && len(onGPU) > 0
	if !plan.Split {
		plan.DegenerateReason = ReasonPolicyPinned
		if len(onGPU) > 0 {
			plan.Degenerate = GPU
		}
	}
	return plan
}

// ForcePlan places every costed partition on backend b unconditionally —
// the pinned CPU-only and GPU-only control policies of the coproc
// benchmark, sharing the predicted-time machinery with BuildPlan.
func ForcePlan(costs []PartCost, cfg Config, b Backend) Plan {
	cfg = cfg.Defaults()
	var plan Plan
	plan.CPUOnlyNs, plan.GPUOnlyNs = SinglePredictions(costs, cfg)
	plan = singleBackend(costs, cfg, plan, b)
	plan.DegenerateReason = ReasonPolicyPinned
	return plan
}

// singleBackend rewrites plan so every partition runs on b.
func singleBackend(costs []PartCost, cfg Config, plan Plan, b Backend) Plan {
	all := make([]int, len(costs))
	for i := range costs {
		all[i] = costs[i].Part
	}
	sort.Ints(all)
	plan.Split = false
	plan.Degenerate = b
	plan.Fragments, plan.FragPart = nil, -1
	if b == GPU {
		plan.CPUParts, plan.GPUParts = nil, all
		plan.CPUNs, plan.GPUNs = 0, plan.GPUOnlyNs
		gpu := newGPUBin(cfg.Device)
		for i := range costs {
			gpu.add(&costs[i])
		}
		plan.TransferNs = gpu.transferNs()
		plan.MakespanNs = plan.GPUOnlyNs
	} else {
		plan.CPUParts, plan.GPUParts = all, nil
		plan.CPUNs, plan.GPUNs, plan.TransferNs = plan.CPUOnlyNs, 0, 0
		plan.MakespanNs = plan.CPUOnlyNs
	}
	return plan
}

// gpuNsOf is the partition's GPU time ignoring schedule interactions,
// used only for the heaviest-first ordering.
func gpuNsOf(dev gpusim.Config, pc *PartCost) float64 {
	max := 0.0
	for _, c := range pc.GPUBlockCycles {
		if c > max {
			max = c
		}
	}
	return cyclesToNs(dev, max) + transferNs(dev, pc.Bytes, pc.EstOut)
}

// cpuBin accumulates CPU-assigned work; its time is work divided over the
// worker pool (the dynamic task queue balances well below makespan
// granularity).
type cpuBin struct {
	workNs  float64
	threads float64
}

func (b *cpuBin) add(pc *PartCost)              { b.workNs += pc.CPUNs }
func (b *cpuBin) time() float64                 { return b.workNs / b.threads }
func (b *cpuBin) timeWith(pc *PartCost) float64 { return (b.workNs + pc.CPUNs) / b.threads }

// gpuBin accumulates GPU-assigned blocks and transfers; its time replays
// gpusim's earliest-free-SM schedule over the accumulated block costs
// plus the serial H2D/D2H transfers and one launch overhead.
type gpuBin struct {
	dev     gpusim.Config
	sm      []float64 // min-heap on finish time, as gpusim.scheduleInto
	bytes   float64   // H2D input traffic
	outRows float64   // estimated output rows (D2H at 12 bytes each)
	blocks  int
}

func newGPUBin(dev gpusim.Config) *gpuBin {
	return &gpuBin{dev: dev, sm: make([]float64, dev.NumSMs)}
}

// add schedules the partition's blocks onto the bin's SM heap.
func (b *gpuBin) add(pc *PartCost) {
	for _, c := range pc.GPUBlockCycles {
		b.sm[0] += c
		siftDown(b.sm)
		b.blocks++
	}
	b.bytes += float64(pc.Bytes)
	b.outRows += pc.EstOut
}

// time is the bin's predicted modelled time: schedule makespan plus
// launch overhead (when any block exists) plus transfers.
func (b *gpuBin) time() float64 {
	makespan := 0.0
	for _, t := range b.sm {
		if t > makespan {
			makespan = t
		}
	}
	cycles := makespan
	if b.blocks > 0 {
		cycles += b.dev.KernelLaunchCycles
	}
	return cyclesToNs(b.dev, cycles) + b.transferNs()
}

// timeWith is time() if pc were added, without mutating the bin.
func (b *gpuBin) timeWith(pc *PartCost) float64 {
	saved := make([]float64, len(b.sm))
	copy(saved, b.sm)
	savedBytes, savedRows, savedBlocks := b.bytes, b.outRows, b.blocks
	b.add(pc)
	t := b.time()
	copy(b.sm, saved)
	b.bytes, b.outRows, b.blocks = savedBytes, savedRows, savedBlocks
	return t
}

func (b *gpuBin) transferNs() float64 {
	return transferNs(b.dev, int(b.bytes), b.outRows)
}

// transferNs is the modelled H2D+D2H staging time for the given input
// bytes and estimated output rows (12 bytes per result row).
func transferNs(dev gpusim.Config, inBytes int, outRows float64) float64 {
	return (float64(inBytes) + outRows*12) / dev.PCIeBandwidth * 1e9
}

func cyclesToNs(dev gpusim.Config, cycles float64) float64 {
	return cycles / dev.ClockHz * 1e9
}

// siftDown restores the min-heap property after the root grew — the same
// earliest-free-SM schedule gpusim uses.
func siftDown(sm []float64) {
	i := 0
	for {
		l := 2*i + 1
		small := i
		if l < len(sm) && sm[l] < sm[small] {
			small = l
		}
		if r := l + 1; r < len(sm) && sm[r] < sm[small] {
			small = r
		}
		if small == i {
			return
		}
		sm[i], sm[small] = sm[small], sm[i]
		i = small
	}
}
