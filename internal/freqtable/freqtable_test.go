package freqtable

import (
	"math/rand"
	"testing"
	"testing/quick"

	"skewjoin/internal/relation"
)

func TestAddAndCount(t *testing.T) {
	c := New(4)
	for i := 0; i < 5; i++ {
		if got := c.Add(42); got != uint32(i+1) {
			t.Errorf("Add #%d returned %d", i+1, got)
		}
	}
	c.Add(7)
	if got := c.Count(42); got != 5 {
		t.Errorf("Count(42) = %d", got)
	}
	if got := c.Count(7); got != 1 {
		t.Errorf("Count(7) = %d", got)
	}
	if got := c.Count(100); got != 0 {
		t.Errorf("Count(absent) = %d", got)
	}
	if got := c.Distinct(); got != 2 {
		t.Errorf("Distinct = %d", got)
	}
}

func TestGrowthPreservesCounts(t *testing.T) {
	c := New(2) // force many grows
	rng := rand.New(rand.NewSource(1))
	want := make(map[relation.Key]uint32)
	for i := 0; i < 5000; i++ {
		k := relation.Key(rng.Intn(700))
		c.Add(k)
		want[k]++
	}
	if c.Distinct() != len(want) {
		t.Fatalf("Distinct = %d, want %d", c.Distinct(), len(want))
	}
	for k, w := range want {
		if got := c.Count(k); got != w {
			t.Errorf("Count(%d) = %d, want %d", k, got, w)
		}
	}
}

func TestEachVisitsAll(t *testing.T) {
	c := New(8)
	for k := 0; k < 50; k++ {
		for i := 0; i <= k%3; i++ {
			c.Add(relation.Key(k))
		}
	}
	seen := make(map[relation.Key]uint32)
	c.Each(func(k relation.Key, cnt uint32) { seen[k] = cnt })
	if len(seen) != 50 {
		t.Fatalf("Each visited %d keys", len(seen))
	}
	for k, cnt := range seen {
		if want := uint32(k)%3 + 1; cnt != want {
			t.Errorf("key %d count %d, want %d", k, cnt, want)
		}
	}
}

func TestAtLeastThreshold(t *testing.T) {
	c := New(8)
	add := func(k relation.Key, n int) {
		for i := 0; i < n; i++ {
			c.Add(k)
		}
	}
	add(1, 5)
	add(2, 2)
	add(3, 1)
	add(4, 2)
	got := c.AtLeast(2)
	if len(got) != 3 {
		t.Fatalf("AtLeast(2) returned %d keys", len(got))
	}
	if got[0].Key != 1 || got[0].Count != 5 {
		t.Errorf("most frequent first: got %+v", got[0])
	}
	// Deterministic tie-break: key 2 before key 4.
	if got[1].Key != 2 || got[2].Key != 4 {
		t.Errorf("tie-break wrong: %+v", got[1:])
	}
}

func TestTopK(t *testing.T) {
	c := New(8)
	for k := 1; k <= 10; k++ {
		for i := 0; i < k; i++ {
			c.Add(relation.Key(k))
		}
	}
	top := c.TopK(3)
	if len(top) != 3 {
		t.Fatalf("TopK(3) returned %d", len(top))
	}
	for i, want := range []relation.Key{10, 9, 8} {
		if top[i].Key != want {
			t.Errorf("top[%d] = %d, want %d", i, top[i].Key, want)
		}
	}
	if all := c.TopK(100); len(all) != 10 {
		t.Errorf("TopK(100) returned %d keys", len(all))
	}
}

func TestTopKEmpty(t *testing.T) {
	c := New(4)
	if got := c.TopK(3); len(got) != 0 {
		t.Errorf("TopK on empty counter returned %d entries", len(got))
	}
	if got := c.AtLeast(1); len(got) != 0 {
		t.Errorf("AtLeast on empty counter returned %d entries", len(got))
	}
}

func TestZeroKey(t *testing.T) {
	// Key 0 must be countable (the table tracks occupancy separately).
	c := New(4)
	c.Add(0)
	c.Add(0)
	if got := c.Count(0); got != 2 {
		t.Errorf("Count(0) = %d", got)
	}
}

func TestQuickMatchesMap(t *testing.T) {
	f := func(keys []uint16) bool {
		c := New(1)
		want := make(map[relation.Key]uint32)
		for _, k := range keys {
			key := relation.Key(k % 300)
			c.Add(key)
			want[key]++
		}
		if c.Distinct() != len(want) {
			return false
		}
		for k, w := range want {
			if c.Count(k) != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
