// Package freqtable provides the linear-probing frequency-counting hash
// table that skew detection uses. CSH counts sampled R keys in it before
// the partition phase (§IV-A step 1); GSH counts sampled tuples of each
// large partition in it after the partition phase (§IV-B step 2: "GSH uses
// a linear probing based hash table to compute the frequencies of sampled
// keys").
package freqtable

import (
	"sort"

	"skewjoin/internal/hashfn"
	"skewjoin/internal/relation"
)

// Counter counts key occurrences with open addressing / linear probing.
// The zero value is not usable; use New.
type Counter struct {
	mask     uint32
	keys     []relation.Key
	counts   []uint32
	occupied []bool
	size     int
}

// New returns a counter sized for about n distinct keys.
func New(n int) *Counter {
	cap := hashfn.NextPow2(n * 2)
	if cap < 8 {
		cap = 8
	}
	return &Counter{
		mask:     uint32(cap - 1),
		keys:     make([]relation.Key, cap),
		counts:   make([]uint32, cap),
		occupied: make([]bool, cap),
	}
}

// Add increments the count of k and returns the new count.
func (c *Counter) Add(k relation.Key) uint32 {
	if c.size*4 >= len(c.keys)*3 {
		c.grow()
	}
	i := hashfn.Mix32(uint32(k)) & c.mask
	for {
		if !c.occupied[i] {
			c.occupied[i] = true
			c.keys[i] = k
			c.counts[i] = 1
			c.size++
			return 1
		}
		if c.keys[i] == k {
			c.counts[i]++
			return c.counts[i]
		}
		i = (i + 1) & c.mask
	}
}

// Count returns the count of k (0 if absent).
func (c *Counter) Count(k relation.Key) uint32 {
	i := hashfn.Mix32(uint32(k)) & c.mask
	for c.occupied[i] {
		if c.keys[i] == k {
			return c.counts[i]
		}
		i = (i + 1) & c.mask
	}
	return 0
}

// Distinct returns the number of distinct keys counted.
func (c *Counter) Distinct() int { return c.size }

func (c *Counter) grow() {
	old := *c
	cap := len(old.keys) * 2
	c.mask = uint32(cap - 1)
	c.keys = make([]relation.Key, cap)
	c.counts = make([]uint32, cap)
	c.occupied = make([]bool, cap)
	c.size = 0
	for i, occ := range old.occupied {
		if !occ {
			continue
		}
		// Re-insert with the saved count.
		j := hashfn.Mix32(uint32(old.keys[i])) & c.mask
		for c.occupied[j] {
			j = (j + 1) & c.mask
		}
		c.occupied[j] = true
		c.keys[j] = old.keys[i]
		c.counts[j] = old.counts[i]
		c.size++
	}
}

// Each invokes fn for every (key, count) pair in unspecified order.
func (c *Counter) Each(fn func(k relation.Key, cnt uint32)) {
	for i, occ := range c.occupied {
		if occ {
			fn(c.keys[i], c.counts[i])
		}
	}
}

// KeyCount is a (key, count) pair.
type KeyCount struct {
	Key   relation.Key
	Count uint32
}

// AtLeast returns all keys with count >= threshold, most frequent first
// (ties broken by key for determinism). CSH's skew rule.
func (c *Counter) AtLeast(threshold uint32) []KeyCount {
	var out []KeyCount
	c.Each(func(k relation.Key, cnt uint32) {
		if cnt >= threshold {
			out = append(out, KeyCount{Key: k, Count: cnt})
		}
	})
	sortDesc(out)
	return out
}

// TopK returns the k most frequent keys (fewer if fewer exist), most
// frequent first with deterministic tie-breaking. GSH's skew rule.
func (c *Counter) TopK(k int) []KeyCount {
	all := make([]KeyCount, 0, c.size)
	c.Each(func(key relation.Key, cnt uint32) {
		all = append(all, KeyCount{Key: key, Count: cnt})
	})
	sortDesc(all)
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func sortDesc(kcs []KeyCount) {
	sort.Slice(kcs, func(i, j int) bool {
		if kcs[i].Count != kcs[j].Count {
			return kcs[i].Count > kcs[j].Count
		}
		return kcs[i].Key < kcs[j].Key
	})
}
