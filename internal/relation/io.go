package relation

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Binary relation file format: a 16-byte header (magic, version, tuple
// count) followed by count little-endian (key, payload) pairs. The format
// is deliberately trivial — datasets written by cmd/datagen are consumed by
// cmd/skewjoin and the examples.
const (
	fileMagic   = "SKJR"
	fileVersion = 1
	headerSize  = 16
)

// WriteTo streams the relation in binary format.
func (r Relation) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	var hdr [headerSize]byte
	copy(hdr[:4], fileMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], fileVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(r.Len()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return 0, err
	}
	var buf [TupleSize]byte
	n := int64(headerSize)
	for _, t := range r.Tuples {
		binary.LittleEndian.PutUint32(buf[0:4], uint32(t.Key))
		binary.LittleEndian.PutUint32(buf[4:8], uint32(t.Payload))
		if _, err := bw.Write(buf[:]); err != nil {
			return n, err
		}
		n += TupleSize
	}
	return n, bw.Flush()
}

// ReadFrom parses a relation in binary format, replacing r's tuples.
func (r *Relation) ReadFrom(rd io.Reader) (int64, error) {
	br := bufio.NewReaderSize(rd, 1<<16)
	var hdr [headerSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, fmt.Errorf("relation: reading header: %w", err)
	}
	if string(hdr[:4]) != fileMagic {
		return 0, fmt.Errorf("relation: bad magic %q", hdr[:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != fileVersion {
		return 0, fmt.Errorf("relation: unsupported version %d", v)
	}
	count := binary.LittleEndian.Uint64(hdr[8:16])
	const maxTuples = 1 << 31
	if count > maxTuples {
		return 0, fmt.Errorf("relation: implausible tuple count %d", count)
	}
	r.Tuples = make([]Tuple, count)
	n := int64(headerSize)
	var buf [TupleSize]byte
	for i := range r.Tuples {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return n, fmt.Errorf("relation: reading tuple %d: %w", i, err)
		}
		r.Tuples[i] = Tuple{
			Key:     Key(binary.LittleEndian.Uint32(buf[0:4])),
			Payload: Payload(binary.LittleEndian.Uint32(buf[4:8])),
		}
		n += TupleSize
	}
	return n, nil
}

// SaveFile writes the relation to path in binary format.
func (r Relation) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := r.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a relation from a file written by SaveFile.
func LoadFile(path string) (Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return Relation{}, err
	}
	defer f.Close()
	var r Relation
	if _, err := r.ReadFrom(f); err != nil {
		return Relation{}, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}
