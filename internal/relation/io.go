package relation

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
)

// Binary relation file format: a 16-byte header (magic, version, tuple
// count) followed by count little-endian (key, payload) pairs. The format
// is deliberately trivial — datasets written by cmd/datagen are consumed by
// cmd/skewjoin and the examples.
const (
	fileMagic   = "SKJR"
	fileVersion = 1
	headerSize  = 16
)

// WriteTo streams the relation in binary format.
func (r Relation) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	var hdr [headerSize]byte
	copy(hdr[:4], fileMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], fileVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(r.Len()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return 0, err
	}
	var buf [TupleSize]byte
	n := int64(headerSize)
	for _, t := range r.Tuples {
		binary.LittleEndian.PutUint32(buf[0:4], uint32(t.Key))
		binary.LittleEndian.PutUint32(buf[4:8], uint32(t.Payload))
		if _, err := bw.Write(buf[:]); err != nil {
			return n, err
		}
		n += TupleSize
	}
	return n, bw.Flush()
}

// maxTuples bounds the tuple count a header may claim (2^31 tuples = 16
// GiB of data); anything larger is treated as corruption.
const maxTuples = 1 << 31

// ReadFrom parses a relation in binary format, replacing r's tuples. The
// header is fully validated before any tuple memory is allocated, and
// allocation grows with the data actually read — a corrupt header claiming
// billions of tuples fails with a descriptive error instead of exhausting
// memory. On error r is left unmodified.
func (r *Relation) ReadFrom(rd io.Reader) (int64, error) {
	return r.readFrom(rd, -1)
}

// readFrom implements ReadFrom. size >= 0 is the total input length when
// the caller knows it (a regular file): the header's tuple count is then
// cross-checked against it before a single byte of tuple data is read, so
// truncated and padded files are rejected up front and the output slice is
// allocated exactly once.
func (r *Relation) readFrom(rd io.Reader, size int64) (int64, error) {
	br := bufio.NewReaderSize(rd, 1<<16)
	var hdr [headerSize]byte
	if n, err := io.ReadFull(br, hdr[:]); err != nil {
		return int64(n), fmt.Errorf("relation: truncated header (%d of %d bytes): %w", n, headerSize, err)
	}
	if string(hdr[:4]) != fileMagic {
		return headerSize, fmt.Errorf("relation: bad magic %q (not a relation file?)", hdr[:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != fileVersion {
		return headerSize, fmt.Errorf("relation: unsupported format version %d (want %d)", v, fileVersion)
	}
	count := binary.LittleEndian.Uint64(hdr[8:16])
	if count > maxTuples {
		return headerSize, fmt.Errorf("relation: implausible tuple count %d in header (max %d)", count, uint64(maxTuples))
	}
	if size >= 0 {
		if want := int64(headerSize) + int64(count)*TupleSize; size != want {
			return headerSize, fmt.Errorf("relation: header claims %d tuples (%d bytes) but file is %d bytes", count, want, size)
		}
	}

	// Read in bounded chunks so memory is proportional to data actually
	// present, not to the header's claim.
	const chunkTuples = 1 << 16
	var tuples []Tuple
	if size >= 0 {
		tuples = make([]Tuple, 0, count)
	}
	raw := make([]byte, int(min64(count, chunkTuples))*TupleSize)
	n := int64(headerSize)
	for remaining := count; remaining > 0; {
		c := int(min64(remaining, chunkTuples))
		m, err := io.ReadFull(br, raw[:c*TupleSize])
		n += int64(m)
		if err != nil {
			return n, fmt.Errorf("relation: truncated body: header claims %d tuples, input ends after %d: %w",
				count, uint64(len(tuples))+uint64(m/TupleSize), err)
		}
		for i := 0; i < c; i++ {
			off := i * TupleSize
			tuples = append(tuples, Tuple{
				Key:     Key(binary.LittleEndian.Uint32(raw[off : off+4])),
				Payload: Payload(binary.LittleEndian.Uint32(raw[off+4 : off+8])),
			})
		}
		remaining -= uint64(c)
	}
	r.Tuples = tuples
	return n, nil
}

func min64(a uint64, b int64) uint64 {
	if a < uint64(b) {
		return a
	}
	return uint64(b)
}

// SaveFile writes the relation to path in binary format.
func (r Relation) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := r.WriteTo(f); err != nil {
		return errors.Join(err, f.Close())
	}
	return f.Close()
}

// LoadFile reads a relation from a file written by SaveFile. The file's
// size is checked against the header's tuple count before any tuple memory
// is allocated, so truncated, padded, or corrupt files are rejected with a
// descriptive error rather than a panic or a huge speculative allocation.
func LoadFile(path string) (Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return Relation{}, err
	}
	defer f.Close()
	size := int64(-1) // unknown; readFrom then validates incrementally
	if fi, err := f.Stat(); err == nil && fi.Mode().IsRegular() {
		size = fi.Size()
	}
	var r Relation
	if _, err := r.readFrom(f, size); err != nil {
		return Relation{}, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}
