package relation

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	r := FromPairs([]Key{1, 2, 3, 1 << 30}, []Payload{9, 8, 7, 6})
	var buf bytes.Buffer
	n, err := r.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(headerSize + 4*TupleSize); n != want {
		t.Errorf("wrote %d bytes, want %d", n, want)
	}
	var got Relation
	if _, err := got.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if got.Len() != r.Len() {
		t.Fatalf("len %d, want %d", got.Len(), r.Len())
	}
	for i := range r.Tuples {
		if got.Tuples[i] != r.Tuples[i] {
			t.Fatalf("tuple %d differs: %+v vs %+v", i, got.Tuples[i], r.Tuples[i])
		}
	}
}

func TestRoundTripEmpty(t *testing.T) {
	var r, got Relation
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := got.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Errorf("len = %d", got.Len())
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	var got Relation
	if _, err := got.ReadFrom(strings.NewReader("NOPE************")); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestReadRejectsBadVersion(t *testing.T) {
	r := FromPairs([]Key{1}, []Payload{1})
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[4] = 99
	var got Relation
	if _, err := got.ReadFrom(bytes.NewReader(b)); err == nil {
		t.Error("bad version accepted")
	}
}

func TestReadRejectsTruncated(t *testing.T) {
	r := FromPairs([]Key{1, 2, 3}, []Payload{1, 2, 3})
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()[:buf.Len()-5]
	var got Relation
	if _, err := got.ReadFrom(bytes.NewReader(b)); err == nil {
		t.Error("truncated file accepted")
	}
}

func TestReadRejectsImplausibleCount(t *testing.T) {
	var buf bytes.Buffer
	r := FromPairs(nil, nil)
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// Patch the count to something absurd.
	for i := 8; i < 16; i++ {
		b[i] = 0xFF
	}
	var got Relation
	if _, err := got.ReadFrom(bytes.NewReader(b)); err == nil {
		t.Error("absurd count accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.skjr")
	r := FromPairs([]Key{5, 6}, []Payload{50, 60})
	if err := r.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || got.Tuples[0] != r.Tuples[0] || got.Tuples[1] != r.Tuples[1] {
		t.Errorf("loaded %+v", got.Tuples)
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.skjr")); err == nil {
		t.Error("missing file loaded")
	}
}

// write builds a binary relation image for corruption tests.
func encode(t *testing.T, r Relation) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestReadRejectsTruncatedHeader(t *testing.T) {
	for _, n := range []int{0, 1, 4, 15} {
		b := encode(t, FromPairs([]Key{1}, []Payload{1}))[:n]
		var got Relation
		if _, err := got.ReadFrom(bytes.NewReader(b)); err == nil {
			t.Errorf("%d-byte header accepted", n)
		} else if !strings.Contains(err.Error(), "header") {
			t.Errorf("%d-byte header: error %q does not mention the header", n, err)
		}
	}
}

func TestReadHugeCountDoesNotAllocate(t *testing.T) {
	// A corrupt header claiming maxTuples tuples over an empty body must
	// fail fast with a truncation error, not allocate 16 GiB up front.
	b := encode(t, Relation{})
	binaryPutCount(b, maxTuples)
	var got Relation
	_, err := got.ReadFrom(bytes.NewReader(b))
	if err == nil {
		t.Fatal("huge-count header accepted")
	}
	if !strings.Contains(err.Error(), "truncated body") {
		t.Errorf("error %q does not mention truncation", err)
	}
	if got.Len() != 0 {
		t.Errorf("failed read left %d tuples behind", got.Len())
	}
}

func TestReadErrorLeavesRelationUnmodified(t *testing.T) {
	r := FromPairs([]Key{7}, []Payload{70})
	b := encode(t, FromPairs([]Key{1, 2, 3}, []Payload{1, 2, 3}))[:headerSize+TupleSize+3]
	if _, err := r.ReadFrom(bytes.NewReader(b)); err == nil {
		t.Fatal("truncated body accepted")
	}
	if r.Len() != 1 || r.Tuples[0] != (Tuple{Key: 7, Payload: 70}) {
		t.Errorf("failed read clobbered the receiver: %+v", r.Tuples)
	}
}

func TestLoadFileRejectsTruncated(t *testing.T) {
	full := encode(t, FromPairs([]Key{1, 2, 3, 4}, []Payload{1, 2, 3, 4}))
	for _, n := range []int{3, headerSize, headerSize + 2*TupleSize, len(full) - 1} {
		path := filepath.Join(t.TempDir(), "trunc.skjr")
		if err := os.WriteFile(path, full[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadFile(path); err == nil {
			t.Errorf("truncated file (%d of %d bytes) loaded", n, len(full))
		}
	}
}

func TestLoadFileRejectsTrailingGarbage(t *testing.T) {
	b := encode(t, FromPairs([]Key{1}, []Payload{1}))
	path := filepath.Join(t.TempDir(), "padded.skjr")
	if err := os.WriteFile(path, append(b, 0xAB, 0xCD), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadFile(path)
	if err == nil {
		t.Fatal("padded file loaded")
	}
	if !strings.Contains(err.Error(), "bytes") {
		t.Errorf("error %q does not describe the size mismatch", err)
	}
}

func TestLoadFileRejectsGarbage(t *testing.T) {
	garbage := make([]byte, 300)
	for i := range garbage {
		garbage[i] = byte(i*37 + 11)
	}
	path := filepath.Join(t.TempDir(), "garbage.skjr")
	if err := os.WriteFile(path, garbage, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err == nil {
		t.Error("garbage file loaded")
	}
}

func TestLoadFileHugeCountSmallFile(t *testing.T) {
	// Header claims 2^30 tuples; the file holds one. LoadFile must reject
	// it from the size check alone, before allocating anything.
	b := encode(t, FromPairs([]Key{1}, []Payload{1}))
	binaryPutCount(b, 1<<30)
	path := filepath.Join(t.TempDir(), "liar.skjr")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadFile(path)
	if err == nil {
		t.Fatal("lying header loaded")
	}
	if !strings.Contains(err.Error(), "claims") {
		t.Errorf("error %q does not describe the header/size mismatch", err)
	}
}

func TestReadChunkedLargeRelation(t *testing.T) {
	// Cross the chunked-read boundary (chunkTuples = 1<<16) to cover the
	// multi-chunk path.
	n := 1<<16 + 100
	keys := make([]Key, n)
	pays := make([]Payload, n)
	for i := range keys {
		keys[i] = Key(i * 3)
		pays[i] = Payload(i)
	}
	r := FromPairs(keys, pays)
	var got Relation
	if _, err := got.ReadFrom(bytes.NewReader(encode(t, r))); err != nil {
		t.Fatal(err)
	}
	if got.Len() != n {
		t.Fatalf("len %d, want %d", got.Len(), n)
	}
	for i := 0; i < n; i += 7777 {
		if got.Tuples[i] != r.Tuples[i] {
			t.Fatalf("tuple %d differs", i)
		}
	}
}

// binaryPutCount patches the tuple count field of an encoded relation.
func binaryPutCount(b []byte, count uint64) {
	for i := 0; i < 8; i++ {
		b[8+i] = byte(count >> (8 * i))
	}
}

var _ io.WriterTo = Relation{}
var _ io.ReaderFrom = &Relation{}
