package relation

import (
	"bytes"
	"io"
	"path/filepath"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	r := FromPairs([]Key{1, 2, 3, 1 << 30}, []Payload{9, 8, 7, 6})
	var buf bytes.Buffer
	n, err := r.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(headerSize + 4*TupleSize); n != want {
		t.Errorf("wrote %d bytes, want %d", n, want)
	}
	var got Relation
	if _, err := got.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if got.Len() != r.Len() {
		t.Fatalf("len %d, want %d", got.Len(), r.Len())
	}
	for i := range r.Tuples {
		if got.Tuples[i] != r.Tuples[i] {
			t.Fatalf("tuple %d differs: %+v vs %+v", i, got.Tuples[i], r.Tuples[i])
		}
	}
}

func TestRoundTripEmpty(t *testing.T) {
	var r, got Relation
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := got.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Errorf("len = %d", got.Len())
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	var got Relation
	if _, err := got.ReadFrom(strings.NewReader("NOPE************")); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestReadRejectsBadVersion(t *testing.T) {
	r := FromPairs([]Key{1}, []Payload{1})
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[4] = 99
	var got Relation
	if _, err := got.ReadFrom(bytes.NewReader(b)); err == nil {
		t.Error("bad version accepted")
	}
}

func TestReadRejectsTruncated(t *testing.T) {
	r := FromPairs([]Key{1, 2, 3}, []Payload{1, 2, 3})
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()[:buf.Len()-5]
	var got Relation
	if _, err := got.ReadFrom(bytes.NewReader(b)); err == nil {
		t.Error("truncated file accepted")
	}
}

func TestReadRejectsImplausibleCount(t *testing.T) {
	var buf bytes.Buffer
	r := FromPairs(nil, nil)
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// Patch the count to something absurd.
	for i := 8; i < 16; i++ {
		b[i] = 0xFF
	}
	var got Relation
	if _, err := got.ReadFrom(bytes.NewReader(b)); err == nil {
		t.Error("absurd count accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.skjr")
	r := FromPairs([]Key{5, 6}, []Payload{50, 60})
	if err := r.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || got.Tuples[0] != r.Tuples[0] || got.Tuples[1] != r.Tuples[1] {
		t.Errorf("loaded %+v", got.Tuples)
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.skjr")); err == nil {
		t.Error("missing file loaded")
	}
}

var _ io.WriterTo = Relation{}
var _ io.ReaderFrom = &Relation{}
