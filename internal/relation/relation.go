// Package relation defines the tuple and relation model shared by every
// join algorithm in this repository.
//
// Following the paper's workload (§III, §V-A), a tuple is a pair of a 4-byte
// join key and a 4-byte payload, so a Tuple occupies exactly 8 bytes and a
// relation is a flat slice of tuples. All algorithms treat relations as
// read-only inputs; partitioning phases copy tuples into scratch space owned
// by the algorithm.
package relation

import (
	"fmt"
	"math/rand"
)

// Key is a 4-byte join key.
type Key uint32

// Payload is a 4-byte record identifier / payload column.
type Payload uint32

// Tuple is an 8-byte (key, payload) pair, matching the paper's workload.
type Tuple struct {
	Key     Key
	Payload Payload
}

// TupleSize is the in-memory size of one tuple in bytes. The GPU cost model
// uses it to convert tuple counts into memory traffic.
const TupleSize = 8

// Relation is an in-memory table of tuples.
type Relation struct {
	Tuples []Tuple
}

// Len returns the number of tuples in the relation.
func (r Relation) Len() int { return len(r.Tuples) }

// Bytes returns the total in-memory size of the relation's tuples.
func (r Relation) Bytes() int { return len(r.Tuples) * TupleSize }

// New returns a relation backed by a freshly allocated slice of n tuples.
func New(n int) Relation {
	return Relation{Tuples: make([]Tuple, n)}
}

// FromPairs builds a relation from parallel key/payload slices.
// It panics if the slices have different lengths.
func FromPairs(keys []Key, payloads []Payload) Relation {
	if len(keys) != len(payloads) {
		panic(fmt.Sprintf("relation: %d keys but %d payloads", len(keys), len(payloads)))
	}
	r := New(len(keys))
	for i := range keys {
		r.Tuples[i] = Tuple{Key: keys[i], Payload: payloads[i]}
	}
	return r
}

// Clone returns a deep copy of the relation.
func (r Relation) Clone() Relation {
	c := New(r.Len())
	copy(c.Tuples, r.Tuples)
	return c
}

// Keys returns a copy of the key column.
func (r Relation) Keys() []Key {
	ks := make([]Key, r.Len())
	for i, t := range r.Tuples {
		ks[i] = t.Key
	}
	return ks
}

// SequentialPayloads overwrites the payload column with 0..n-1. Benchmarks
// use it so payload sums are deterministic regardless of the key generator.
func (r Relation) SequentialPayloads() {
	for i := range r.Tuples {
		r.Tuples[i].Payload = Payload(i)
	}
}

// Shuffle permutes the tuples of the relation using rng. Partitioned joins
// must produce identical results on any permutation of their inputs; tests
// rely on this helper to check that invariant.
func (r Relation) Shuffle(rng *rand.Rand) {
	rng.Shuffle(r.Len(), func(i, j int) {
		r.Tuples[i], r.Tuples[j] = r.Tuples[j], r.Tuples[i]
	})
}

// Stats summarises the key distribution of a relation. It is what the
// paper's skew discussion (§III) talks about: how many tuples share the most
// popular key, and how many distinct keys exist.
type Stats struct {
	Tuples       int
	DistinctKeys int
	MaxKeyFreq   int    // number of tuples sharing the most popular key
	MaxKey       Key    // the most popular key
	PayloadSum   uint64 // sum of payload column, for cheap integrity checks
	// TopKeys are the heaviest keys (up to MaxTopKeys), by descending
	// frequency with ascending-key tie-break. The cluster router's
	// fragment-and-replicate rule is driven by this list: a key that
	// would overload its hash-owner shard is spotted from the cached
	// catalog statistics without rescanning the relation.
	TopKeys []KeyFreq
}

// KeyFreq is one heavy-hitter entry of Stats.TopKeys.
type KeyFreq struct {
	Key  Key
	Freq int
}

// MaxTopKeys bounds Stats.TopKeys. Fragment-and-replicate only ever pays
// off for a handful of dominating keys, so the cache stays tiny.
const MaxTopKeys = 16

// ComputeStats scans the relation once and returns its key distribution
// statistics.
func ComputeStats(r Relation) Stats {
	freq := make(map[Key]int, r.Len())
	var s Stats
	s.Tuples = r.Len()
	for _, t := range r.Tuples {
		freq[t.Key]++
		s.PayloadSum += uint64(t.Payload)
	}
	s.DistinctKeys = len(freq)
	for k, f := range freq {
		if f > s.MaxKeyFreq || (f == s.MaxKeyFreq && k < s.MaxKey) {
			s.MaxKeyFreq = f
			s.MaxKey = k
		}
	}
	s.TopKeys = topKeys(freq, MaxTopKeys)
	return s
}

// topKeys selects the k heaviest entries of freq, heaviest first, ties
// broken towards the smaller key so the list is deterministic.
func topKeys(freq map[Key]int, k int) []KeyFreq {
	if len(freq) == 0 {
		return nil
	}
	heavier := func(a, b KeyFreq) bool {
		if a.Freq != b.Freq {
			return a.Freq > b.Freq
		}
		return a.Key < b.Key
	}
	// Bounded insertion into a k-sized list: the map can be huge but k is
	// a small constant, so this stays O(n·k) with no full sort.
	top := make([]KeyFreq, 0, k)
	for key, f := range freq {
		e := KeyFreq{Key: key, Freq: f}
		if len(top) == k && !heavier(e, top[k-1]) {
			continue
		}
		i := len(top)
		if i < k {
			top = append(top, e)
		} else {
			i = k - 1
			top[i] = e
		}
		for ; i > 0 && heavier(top[i], top[i-1]); i-- {
			top[i], top[i-1] = top[i-1], top[i]
		}
	}
	return top
}

// KeyFrequencies returns the exact frequency of every key in the relation.
// The skew-detection ablations compare sampled estimates against it.
func KeyFrequencies(r Relation) map[Key]int {
	freq := make(map[Key]int, r.Len())
	for _, t := range r.Tuples {
		freq[t.Key]++
	}
	return freq
}
