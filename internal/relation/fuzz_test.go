package relation

import (
	"bytes"
	"testing"
)

// FuzzReadFrom drives the binary-format parser with arbitrary bytes. The
// seeds cover the interesting regions of the format: valid images, every
// header corruption the unit tests pin down individually (magic, version,
// implausible count), truncations on both sides of the header boundary,
// and trailing garbage. Properties checked on every input:
//
//   - no panic, no runaway allocation (the t.Fatalf paths below are the
//     only failure modes);
//   - a failed parse leaves the receiver untouched;
//   - a successful parse consumed exactly header+tuples bytes and
//     re-encodes to those same bytes (byte-level round trip).
func FuzzReadFrom(f *testing.F) {
	encode := func(r Relation) []byte {
		var buf bytes.Buffer
		if _, err := r.WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	small := FromPairs([]Key{1, 2, 3, 1 << 30}, []Payload{9, 8, 7, 6})

	f.Add(encode(Relation{}))
	f.Add(encode(small))
	f.Add([]byte("NOPE************"))
	badVersion := encode(small)
	badVersion[4] = 99
	f.Add(badVersion)
	hugeCount := encode(Relation{})
	for i := 8; i < 16; i++ {
		hugeCount[i] = 0xFF
	}
	f.Add(hugeCount)
	lyingCount := encode(small)
	lyingCount[8] = 200 // claims 200 tuples, body holds 4
	f.Add(lyingCount)
	f.Add(encode(small)[:3])                       // truncated header
	f.Add(encode(small)[:headerSize])              // header only, body missing
	f.Add(encode(small)[:headerSize+TupleSize+3])  // truncated mid-tuple
	f.Add(append(encode(small), 0xAB, 0xCD, 0xEF)) // trailing garbage

	f.Fuzz(func(t *testing.T, data []byte) {
		sentinel := Tuple{Key: 42, Payload: 4242}
		r := Relation{Tuples: []Tuple{sentinel}}
		n, err := r.ReadFrom(bytes.NewReader(data))
		if err != nil {
			if r.Len() != 1 || r.Tuples[0] != sentinel {
				t.Fatalf("failed read modified the receiver: %+v", r.Tuples)
			}
			return
		}
		want := int64(headerSize) + int64(r.Len())*TupleSize
		if n != want {
			t.Fatalf("parsed %d tuples but consumed %d bytes (want %d)", r.Len(), n, want)
		}
		if n > int64(len(data)) {
			t.Fatalf("claims to have consumed %d of %d input bytes", n, len(data))
		}
		reenc := encode(r)
		if !bytes.Equal(reenc, data[:n]) {
			t.Fatalf("round trip diverged: parsed %d tuples from %d bytes, re-encoded to %d different bytes",
				r.Len(), n, len(reenc))
		}
	})
}
