package relation

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestFromPairsAndAccessors(t *testing.T) {
	r := FromPairs([]Key{3, 1, 2}, []Payload{30, 10, 20})
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	if r.Bytes() != 3*TupleSize {
		t.Errorf("Bytes = %d", r.Bytes())
	}
	ks := r.Keys()
	if ks[0] != 3 || ks[1] != 1 || ks[2] != 2 {
		t.Errorf("Keys = %v", ks)
	}
}

func TestFromPairsMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on mismatched lengths")
		}
	}()
	FromPairs([]Key{1}, []Payload{1, 2})
}

func TestCloneIsDeep(t *testing.T) {
	r := FromPairs([]Key{1, 2}, []Payload{10, 20})
	c := r.Clone()
	c.Tuples[0].Key = 99
	if r.Tuples[0].Key != 1 {
		t.Error("Clone shares backing storage")
	}
}

func TestSequentialPayloads(t *testing.T) {
	r := New(5)
	r.SequentialPayloads()
	for i, tp := range r.Tuples {
		if tp.Payload != Payload(i) {
			t.Errorf("payload[%d] = %d", i, tp.Payload)
		}
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := FromPairs([]Key{1, 2, 3, 4, 5}, []Payload{1, 2, 3, 4, 5})
	before := ComputeStats(r)
	r.Shuffle(rand.New(rand.NewSource(1)))
	after := ComputeStats(r)
	if !reflect.DeepEqual(before, after) {
		t.Errorf("stats changed: %+v -> %+v", before, after)
	}
}

func TestComputeStats(t *testing.T) {
	r := FromPairs(
		[]Key{7, 7, 7, 3, 3, 9},
		[]Payload{1, 2, 3, 4, 5, 6},
	)
	st := ComputeStats(r)
	if st.Tuples != 6 || st.DistinctKeys != 3 {
		t.Errorf("stats = %+v", st)
	}
	if st.MaxKey != 7 || st.MaxKeyFreq != 3 {
		t.Errorf("top key = %d (freq %d)", st.MaxKey, st.MaxKeyFreq)
	}
	if st.PayloadSum != 21 {
		t.Errorf("payload sum = %d", st.PayloadSum)
	}
}

func TestComputeStatsTieBreak(t *testing.T) {
	r := FromPairs([]Key{5, 5, 2, 2}, []Payload{0, 0, 0, 0})
	st := ComputeStats(r)
	if st.MaxKey != 2 {
		t.Errorf("tie should pick the smaller key, got %d", st.MaxKey)
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	var r Relation
	st := ComputeStats(r)
	if st.Tuples != 0 || st.DistinctKeys != 0 || st.MaxKeyFreq != 0 {
		t.Errorf("empty stats = %+v", st)
	}
}

func TestKeyFrequencies(t *testing.T) {
	r := FromPairs([]Key{1, 1, 2}, []Payload{0, 0, 0})
	f := KeyFrequencies(r)
	if f[1] != 2 || f[2] != 1 || len(f) != 2 {
		t.Errorf("frequencies = %v", f)
	}
}

func TestQuickStatsConsistent(t *testing.T) {
	f := func(keys []uint16) bool {
		r := New(len(keys))
		for i, k := range keys {
			r.Tuples[i] = Tuple{Key: Key(k), Payload: Payload(i)}
		}
		st := ComputeStats(r)
		freq := KeyFrequencies(r)
		if st.DistinctKeys != len(freq) {
			return false
		}
		total := 0
		maxf := 0
		for _, f := range freq {
			total += f
			if f > maxf {
				maxf = f
			}
		}
		return total == st.Tuples && maxf == st.MaxKeyFreq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestComputeStatsTopKeys(t *testing.T) {
	// 20 distinct keys with frequency = key value: top-16 must be keys
	// 20..5 in descending frequency order.
	var r Relation
	for k := 1; k <= 20; k++ {
		for i := 0; i < k; i++ {
			r.Tuples = append(r.Tuples, Tuple{Key: Key(k), Payload: 0})
		}
	}
	st := ComputeStats(r)
	if len(st.TopKeys) != MaxTopKeys {
		t.Fatalf("TopKeys length = %d, want %d", len(st.TopKeys), MaxTopKeys)
	}
	for i, kf := range st.TopKeys {
		want := Key(20 - i)
		if kf.Key != want || kf.Freq != int(want) {
			t.Errorf("TopKeys[%d] = %+v, want key %d freq %d", i, kf, want, want)
		}
	}
	if st.TopKeys[0].Key != st.MaxKey || st.TopKeys[0].Freq != st.MaxKeyFreq {
		t.Errorf("TopKeys[0] %+v disagrees with MaxKey %d / MaxKeyFreq %d", st.TopKeys[0], st.MaxKey, st.MaxKeyFreq)
	}
}

func TestComputeStatsTopKeysTieBreak(t *testing.T) {
	r := FromPairs([]Key{9, 3, 7, 3, 9, 7}, make([]Payload, 6))
	st := ComputeStats(r)
	want := []KeyFreq{{3, 2}, {7, 2}, {9, 2}}
	if len(st.TopKeys) != len(want) {
		t.Fatalf("TopKeys = %+v, want %+v", st.TopKeys, want)
	}
	for i := range want {
		if st.TopKeys[i] != want[i] {
			t.Errorf("TopKeys[%d] = %+v, want %+v", i, st.TopKeys[i], want[i])
		}
	}
}
