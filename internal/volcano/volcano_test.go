package volcano

import (
	"testing"

	"skewjoin/internal/cbase"
	"skewjoin/internal/csh"
	"skewjoin/internal/gbase"
	"skewjoin/internal/gsh"
	"skewjoin/internal/npj"
	"skewjoin/internal/outbuf"
	"skewjoin/internal/relation"
	"skewjoin/internal/smj"
	"skewjoin/internal/zipf"
)

func workload(t *testing.T, n int, theta float64) (relation.Relation, relation.Relation) {
	t.Helper()
	g, err := zipf.New(zipf.Config{Theta: theta, Universe: n, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	r, s := g.Pair(n)
	return r, s
}

// expectedPayloadSum computes SUM(payloadR + payloadS) over the join output
// in closed form from per-key aggregates.
func expectedPayloadSum(r, s relation.Relation) (sum, rows uint64) {
	type agg struct {
		cnt  uint64
		psum uint64
	}
	ra := map[relation.Key]agg{}
	for _, t := range r.Tuples {
		a := ra[t.Key]
		a.cnt++
		a.psum += uint64(t.Payload)
		ra[t.Key] = a
	}
	sa := map[relation.Key]agg{}
	for _, t := range s.Tuples {
		a := sa[t.Key]
		a.cnt++
		a.psum += uint64(t.Payload)
		sa[t.Key] = a
	}
	for k, rv := range ra {
		sv, ok := sa[k]
		if !ok {
			continue
		}
		rows += rv.cnt * sv.cnt
		sum += rv.psum*sv.cnt + sv.psum*rv.cnt
	}
	return sum, rows
}

func sumExpr(res outbuf.Result) uint64 {
	return uint64(res.PayloadR) + uint64(res.PayloadS)
}

func TestScanFilterMap(t *testing.T) {
	r := relation.FromPairs(
		[]relation.Key{1, 2, 3, 4, 5, 6},
		[]relation.Payload{10, 20, 30, 40, 50, 60},
	)
	out := NewScan(r).
		Filter(func(t relation.Tuple) bool { return t.Key%2 == 0 }).
		Map(func(t relation.Tuple) relation.Tuple {
			t.Payload *= 2
			return t
		}).
		Materialize()
	if out.Len() != 3 {
		t.Fatalf("filtered to %d tuples, want 3", out.Len())
	}
	for _, tp := range out.Tuples {
		if tp.Key%2 != 0 {
			t.Errorf("key %d passed the filter", tp.Key)
		}
		if uint32(tp.Payload) != uint32(tp.Key)*20 {
			t.Errorf("payload %d for key %d: map not applied", tp.Payload, tp.Key)
		}
	}
}

func TestScanNoOps(t *testing.T) {
	r := relation.FromPairs([]relation.Key{7}, []relation.Payload{8})
	out := NewScan(r).Materialize()
	if out.Len() != 1 || out.Tuples[0] != r.Tuples[0] {
		t.Errorf("identity scan changed data: %+v", out.Tuples)
	}
}

func TestSumAggregateThroughCSH(t *testing.T) {
	r, s := workload(t, 30000, 0.95)
	wantSum, wantRows := expectedPayloadSum(r, s)

	root := NewSum(sumExpr)
	factory, collect := Sink(root, func() Consumer { return NewSum(sumExpr) })
	res := csh.Join(r, s, csh.Config{Threads: 3, Flush: factory, OutBufCap: 512})
	collect()

	if root.Rows != wantRows || root.Rows != res.Summary.Count {
		t.Errorf("rows = %d, want %d (join reported %d)", root.Rows, wantRows, res.Summary.Count)
	}
	if root.Sum != wantSum {
		t.Errorf("sum = %d, want %d", root.Sum, wantSum)
	}
}

func TestSumAggregateThroughCbase(t *testing.T) {
	r, s := workload(t, 20000, 0.5)
	wantSum, wantRows := expectedPayloadSum(r, s)
	root := NewSum(sumExpr)
	factory, collect := Sink(root, func() Consumer { return NewSum(sumExpr) })
	cbase.Join(r, s, cbase.Config{Threads: 2, Flush: factory})
	collect()
	if root.Rows != wantRows || root.Sum != wantSum {
		t.Errorf("got (%d, %d), want (%d, %d)", root.Rows, root.Sum, wantRows, wantSum)
	}
}

func TestSumAggregateThroughGSH(t *testing.T) {
	r, s := workload(t, 25000, 1.0)
	wantSum, wantRows := expectedPayloadSum(r, s)
	root := NewSum(sumExpr)
	factory, collect := Sink(root, func() Consumer { return NewSum(sumExpr) })
	gsh.Join(r, s, gsh.Config{Flush: factory})
	collect()
	if root.Rows != wantRows || root.Sum != wantSum {
		t.Errorf("got (%d, %d), want (%d, %d)", root.Rows, root.Sum, wantRows, wantSum)
	}
}

func TestSumAggregateThroughNPJ(t *testing.T) {
	r, s := workload(t, 12000, 0.7)
	wantSum, wantRows := expectedPayloadSum(r, s)
	root := NewSum(sumExpr)
	factory, collect := Sink(root, func() Consumer { return NewSum(sumExpr) })
	npj.Join(r, s, npj.Config{Threads: 4, Flush: factory})
	collect()
	if root.Rows != wantRows || root.Sum != wantSum {
		t.Errorf("got (%d, %d), want (%d, %d)", root.Rows, root.Sum, wantRows, wantSum)
	}
}

func TestSumAggregateThroughSMJ(t *testing.T) {
	r, s := workload(t, 12000, 1.0)
	wantSum, wantRows := expectedPayloadSum(r, s)
	root := NewSum(sumExpr)
	factory, collect := Sink(root, func() Consumer { return NewSum(sumExpr) })
	smj.Join(r, s, smj.Config{Threads: 3, Flush: factory})
	collect()
	if root.Rows != wantRows || root.Sum != wantSum {
		t.Errorf("got (%d, %d), want (%d, %d)", root.Rows, root.Sum, wantRows, wantSum)
	}
}

func TestSumAggregateThroughGbase(t *testing.T) {
	r, s := workload(t, 12000, 0.9)
	wantSum, wantRows := expectedPayloadSum(r, s)
	root := NewSum(sumExpr)
	factory, collect := Sink(root, func() Consumer { return NewSum(sumExpr) })
	gbase.Join(r, s, gbase.Config{Flush: factory})
	collect()
	if root.Rows != wantRows || root.Sum != wantSum {
		t.Errorf("got (%d, %d), want (%d, %d)", root.Rows, root.Sum, wantRows, wantSum)
	}
}

func TestCountMatchesMatches(t *testing.T) {
	// The streaming row counter must agree with the join's own match count
	// across both skew paths of CSH.
	r, s := workload(t, 1<<13, 0.9)
	root := NewCount()
	factory, collect := Sink(root, func() Consumer { return NewCount() })
	res := csh.Join(r, s, csh.Config{Threads: 4, Flush: factory})
	collect()
	if root.Rows != res.Summary.Count {
		t.Errorf("Count.Rows = %d, join matches = %d", root.Rows, res.Summary.Count)
	}
}

func TestGroupSumMatchesClosedForm(t *testing.T) {
	r, s := workload(t, 15000, 0.9)
	root := NewGroupSum(func(res outbuf.Result) uint64 { return 1 }) // COUNT per key
	factory, collect := Sink(root, func() Consumer {
		return NewGroupSum(func(res outbuf.Result) uint64 { return 1 })
	})
	res := csh.Join(r, s, csh.Config{Threads: 3, Flush: factory})
	collect()

	// Per-key output counts must equal cntR(k)*cntS(k).
	fr := relation.KeyFrequencies(r)
	fs := relation.KeyFrequencies(s)
	var total uint64
	for k, want := range fr {
		exp := uint64(want) * uint64(fs[k])
		if exp == 0 {
			continue
		}
		if got := root.Groups[k]; got != exp {
			t.Fatalf("key %d: group count %d, want %d", k, got, exp)
		}
		total += exp
	}
	if total != res.Summary.Count {
		t.Errorf("group totals %d != output count %d", total, res.Summary.Count)
	}
}

func TestTopKeysFindsHeavyHitter(t *testing.T) {
	r, s := workload(t, 40000, 1.0)
	top := relation.ComputeStats(r).MaxKey

	root := NewTopKeys(3)
	factory, collect := Sink(root, func() Consumer { return NewTopKeys(3) })
	csh.Join(r, s, csh.Config{Threads: 2, Flush: factory})
	collect()

	heavy := root.Heaviest()
	if len(heavy) == 0 {
		t.Fatal("no heavy hitters found")
	}
	if heavy[0].Key != top {
		t.Errorf("heaviest output key = %d, want R's top key %d", heavy[0].Key, top)
	}
	for i := 1; i < len(heavy); i++ {
		if heavy[i].Weight > heavy[i-1].Weight {
			t.Errorf("heaviest not sorted: %+v", heavy)
		}
	}
}

func TestTopKeysMisraGriesBounded(t *testing.T) {
	tk := NewTopKeys(2)
	batch := make([]outbuf.Result, 0, 1000)
	for i := 0; i < 1000; i++ {
		batch = append(batch, outbuf.Result{Key: relation.Key(i)})
	}
	tk.Consume(batch)
	if len(tk.counters) > 16 {
		t.Errorf("counter set grew to %d (cap 16)", len(tk.counters))
	}
}

func TestSinkReusesPerWorkerConsumers(t *testing.T) {
	root := NewSum(sumExpr)
	factory, collect := Sink(root, func() Consumer { return NewSum(sumExpr) })
	a := factory(0)
	b := factory(0)
	a([]outbuf.Result{{PayloadR: 1}})
	b([]outbuf.Result{{PayloadR: 2}})
	factory(2)([]outbuf.Result{{PayloadS: 4}})
	collect()
	if root.Sum != 7 || root.Rows != 3 {
		t.Errorf("sum=%d rows=%d, want 7, 3", root.Sum, root.Rows)
	}
}

func TestSelectTopExactAndDeterministic(t *testing.T) {
	counts := map[relation.Key]uint64{
		10: 5, 20: 9, 30: 9, 40: 1, 50: 7, 60: 9,
	}
	got := SelectTop(counts, 4)
	want := []KeyWeight{{20, 9}, {30, 9}, {60, 9}, {50, 7}}
	if len(got) != len(want) {
		t.Fatalf("SelectTop = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("SelectTop[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	if few := SelectTop(counts, 100); len(few) != len(counts) {
		t.Errorf("SelectTop(k>len) returned %d entries, want %d", len(few), len(counts))
	}
	if none := SelectTop(nil, 3); len(none) != 0 {
		t.Errorf("SelectTop(nil) = %+v", none)
	}
}
