// Package volcano provides a small push-based query-operator layer on top
// of the join algorithms, making the paper's output-consumption model
// concrete: "in the volcano-style query processing, the join output is
// often consumed by an upper level query operator" (§III).
//
// Pre-join operators (Scan, Filter, Map) are tuple-level and produce the
// relations a join consumes. Post-join operators are batch consumers: the
// join algorithms hand them every full output ring (outbuf.FlushFunc), so
// consumption is amortised over ring-sized batches exactly as the paper's
// overwrite-when-full buffers imply. Each worker gets its own consumer
// instance; Merge combines them after the join.
package volcano

import (
	"skewjoin/internal/outbuf"
	"skewjoin/internal/relation"
)

// Scan is the leaf operator: a relation source with optional row-level
// transformations applied lazily when the pipeline is materialised.
type Scan struct {
	src     relation.Relation
	filters []func(relation.Tuple) bool
	maps    []func(relation.Tuple) relation.Tuple
}

// NewScan returns a scan over r. r is not copied until Materialize.
func NewScan(r relation.Relation) *Scan {
	return &Scan{src: r}
}

// Filter appends a predicate; tuples failing it are dropped.
func (s *Scan) Filter(pred func(relation.Tuple) bool) *Scan {
	s.filters = append(s.filters, pred)
	return s
}

// Map appends a per-tuple transformation (e.g. key extraction or payload
// projection), applied after the filters registered so far.
func (s *Scan) Map(fn func(relation.Tuple) relation.Tuple) *Scan {
	s.maps = append(s.maps, fn)
	return s
}

// Materialize evaluates the pipeline into a relation ready for a join.
func (s *Scan) Materialize() relation.Relation {
	out := relation.Relation{Tuples: make([]relation.Tuple, 0, s.src.Len())}
next:
	for _, t := range s.src.Tuples {
		for _, f := range s.filters {
			if !f(t) {
				continue next
			}
		}
		for _, m := range s.maps {
			t = m(t)
		}
		out.Tuples = append(out.Tuples, t)
	}
	return out
}

// Consumer is an upper operator fed with join-output batches. One instance
// per worker; Merge folds another worker's instance into this one.
type Consumer interface {
	Consume(batch []outbuf.Result)
	Merge(other Consumer)
}

// Sink adapts a Consumer to the per-worker outbuf.FlushFunc factory the
// join algorithms take, allocating one consumer per worker via fresh. The
// returned collect function merges all per-worker consumers into the
// provided root consumer; call it after the join returns.
func Sink(root Consumer, fresh func() Consumer) (factory func(worker int) outbuf.FlushFunc, collect func()) {
	var workers []Consumer
	factory = func(worker int) outbuf.FlushFunc {
		for len(workers) <= worker {
			workers = append(workers, fresh())
		}
		c := workers[worker]
		return c.Consume
	}
	collect = func() {
		for _, c := range workers {
			root.Merge(c)
		}
	}
	return factory, collect
}

// Count is the cheapest upper operator: it counts result rows as they
// stream past, touching no tuple fields. The join service uses it for
// streamed match counting — the batch length is known without inspecting
// the ring-backed batch, so consumption cost is O(1) per flush.
type Count struct {
	Rows uint64
}

// NewCount returns a streaming row counter.
func NewCount() *Count { return &Count{} }

// Consume implements Consumer.
func (c *Count) Consume(batch []outbuf.Result) { c.Rows += uint64(len(batch)) }

// Merge implements Consumer.
func (c *Count) Merge(other Consumer) { c.Rows += other.(*Count).Rows }

// SumAggregate computes SUM over an expression of each result tuple.
type SumAggregate struct {
	Expr func(outbuf.Result) uint64
	Sum  uint64
	Rows uint64
}

// NewSum returns a SUM aggregate over expr.
func NewSum(expr func(outbuf.Result) uint64) *SumAggregate {
	return &SumAggregate{Expr: expr}
}

// Consume implements Consumer.
func (a *SumAggregate) Consume(batch []outbuf.Result) {
	var s uint64
	for _, r := range batch {
		s += a.Expr(r)
	}
	a.Sum += s
	a.Rows += uint64(len(batch))
}

// Merge implements Consumer.
func (a *SumAggregate) Merge(other Consumer) {
	o := other.(*SumAggregate)
	a.Sum += o.Sum
	a.Rows += o.Rows
}

// GroupSum computes SUM(expr) GROUP BY join key over the output stream.
// Memory is O(distinct output keys); under skew the output concentrates on
// few keys, under uniform data it is bounded by the key universe.
type GroupSum struct {
	Expr   func(outbuf.Result) uint64
	Groups map[relation.Key]uint64
}

// NewGroupSum returns a grouped SUM aggregate over expr.
func NewGroupSum(expr func(outbuf.Result) uint64) *GroupSum {
	return &GroupSum{Expr: expr, Groups: make(map[relation.Key]uint64)}
}

// Consume implements Consumer.
func (g *GroupSum) Consume(batch []outbuf.Result) {
	for _, r := range batch {
		g.Groups[r.Key] += g.Expr(r)
	}
}

// Merge implements Consumer.
func (g *GroupSum) Merge(other Consumer) {
	for k, v := range other.(*GroupSum).Groups {
		g.Groups[k] += v
	}
}

// TopKeys tracks the heaviest join keys in the output (count per key over
// a bounded set of counters) — a cheap HeavyHitters upper operator using
// the Misra-Gries summary, which is exact for the heavy keys skewed joins
// produce.
type TopKeys struct {
	k        int
	counters map[relation.Key]uint64
}

// NewTopKeys returns a heavy-hitter tracker with capacity k (counters for
// up to 8k keys are kept between decrements).
func NewTopKeys(k int) *TopKeys {
	if k < 1 {
		k = 1
	}
	return &TopKeys{k: k, counters: make(map[relation.Key]uint64, 8*k)}
}

// Consume implements Consumer (Misra-Gries update per result).
func (t *TopKeys) Consume(batch []outbuf.Result) {
	limit := 8 * t.k
	for _, r := range batch {
		if _, ok := t.counters[r.Key]; ok || len(t.counters) < limit {
			t.counters[r.Key]++
			continue
		}
		for key := range t.counters {
			t.counters[key]--
			if t.counters[key] == 0 {
				delete(t.counters, key)
			}
		}
	}
}

// Merge implements Consumer.
func (t *TopKeys) Merge(other Consumer) {
	for key, c := range other.(*TopKeys).counters {
		t.counters[key] += c
	}
}

// Heaviest returns up to k (key, weight) pairs with the largest retained
// weights, heaviest first. Weights are Misra-Gries lower bounds, exact for
// keys dominating the output.
func (t *TopKeys) Heaviest() []KeyWeight {
	return SelectTop(t.counters, t.k)
}

// SelectTop returns up to k (key, weight) pairs with the largest weights
// in counts, heaviest first, ties broken towards the smaller key. It is
// the deterministic top-k selection shared by TopKeys.Heaviest and the
// cluster router's k-way heavy-hitter merge: applied to exact per-key
// counts (e.g. merged GroupSum maps) the result is the exact top-k of the
// join output, independent of how the output was partitioned.
func SelectTop(counts map[relation.Key]uint64, k int) []KeyWeight {
	if k < 1 {
		k = 1
	}
	// Bounded insertion into a k-sized list: counts may hold every distinct
	// output key (exact group counts), so selection must stay O(n·k), not
	// sort the whole map.
	out := make([]KeyWeight, 0, k)
	for key, c := range counts {
		e := KeyWeight{Key: key, Weight: c}
		if len(out) == k && !less(out[k-1], e) {
			continue
		}
		i := len(out)
		if i < k {
			out = append(out, e)
		} else {
			i = k - 1
			out[i] = e
		}
		for ; i > 0 && less(out[i-1], out[i]); i-- {
			out[i], out[i-1] = out[i-1], out[i]
		}
	}
	return out
}

func less(a, b KeyWeight) bool {
	if a.Weight != b.Weight {
		return a.Weight < b.Weight
	}
	return a.Key > b.Key
}

// KeyWeight is a heavy-hitter entry.
type KeyWeight struct {
	Key    relation.Key
	Weight uint64
}
