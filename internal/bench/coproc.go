// Co-processing benchmark: the machine-readable artifact for the
// cost-model-driven CPU/GPU split executor. cmd/skewbench -exp coproc
// runs it and can write the result as BENCH_coproc.json.
//
// Each cell runs backend=split on one zipf workload under one placement
// policy and one HostParallelism setting, against the coupled device
// profile (the regime where co-processing can win; on the discrete A100
// profile the planner correctly degenerates). The pinned "cpu" and "gpu"
// policies are the single-backend control rows — they run through the
// same split executor, so the partition/plan prefix cancels out of every
// comparison — and "static" is the naive round-robin placement the cost
// model has to beat. Every cell records the model's predicted makespan
// next to the measured one; the residual is the model's honesty metric,
// reported rather than hidden.
//
// The harness asserts, per (zipf, hostpar) group, that the model policy's
// join-side makespan is at most maxRegression times the better control
// plus a small epsilon — i.e. the planner never loses to the backends it
// chooses between. Violations land in Errors and fail the run.
package bench

import (
	"fmt"
	"io"
	"math"
	"time"

	"skewjoin"
	"skewjoin/internal/exec"
)

// CoprocCell is one measured (zipf, policy, hostpar) combination. The
// join-side times follow the executor's hybrid clock: CPUJoinNS is host
// busy time per worker, GPUJoinNS/GPUTransferNS are modelled device time,
// and MakespanNS is the max of the two sides — the overlapped join-phase
// time. MakespanNS is the minimum across the repeat runs.
type CoprocCell struct {
	Zipf            float64 `json:"zipf"`
	Policy          string  `json:"policy"`
	HostParallelism int     `json:"host_parallelism"`
	// Split reports whether the executed plan used both backends;
	// Degenerate names the single backend otherwise.
	Split      bool   `json:"split"`
	Degenerate string `json:"degenerate,omitempty"`
	CPUParts   int    `json:"cpu_parts"`
	GPUParts   int    `json:"gpu_parts"`
	// Times (minimum over repeats, except the deterministic GPU side
	// which must not vary).
	CPUJoinNS     int64 `json:"cpu_join_ns"`
	GPUJoinNS     int64 `json:"gpu_join_ns"`
	GPUTransferNS int64 `json:"gpu_transfer_ns"`
	MakespanNS    int64 `json:"makespan_ns"`
	// PredictedMakespanNS is the cost model's forecast of MakespanNS;
	// PredErrPct = |predicted-actual|/actual * 100.
	PredictedMakespanNS int64   `json:"predicted_makespan_ns"`
	PredErrPct          float64 `json:"pred_err_pct"`
	// Imbalance is max(side)/min(side) when both backends ran.
	Imbalance float64 `json:"imbalance,omitempty"`
	// Fragmented reports the plan cut the hottest partition itself across
	// both backends (build replicated, probe split into CPUFragments +
	// GPUFragments sub-ranges). At zipf >= fragmentGateZipf the model
	// policy is required to fragment and to beat the better single-backend
	// control — the whole point of intra-partition fragment-and-replicate.
	Fragmented   bool `json:"fragmented,omitempty"`
	CPUFragments int  `json:"cpu_fragments,omitempty"`
	GPUFragments int  `json:"gpu_fragments,omitempty"`
}

// CoprocReport is the full co-processing benchmark: the committed
// BENCH_coproc.json is exactly this structure.
type CoprocReport struct {
	Tuples      int                  `json:"tuples"`
	Seed        int64                `json:"seed"`
	Threads     int                  `json:"threads"`
	Repeats     int                  `json:"repeats"`
	Device      string               `json:"device"`
	Calibration skewjoin.Calibration `json:"calibration"`
	Zipfs       []float64            `json:"zipfs"`
	Hostpars    []int                `json:"hostpars"`
	Policies    []string             `json:"policies"`
	Cells       []CoprocCell         `json:"cells"`
	Errors      []string             `json:"errors,omitempty"`
}

// coprocZipfs is the default skew sweep: uniform (where the plan must
// degenerate), the paper's full-skew point, and the deep-skew tail. Past
// zipf ~1.1 a single hot radix partition — formerly the planner's atomic
// placement unit — exceeds the balanced makespan on either backend by
// itself; the 1.2 and 1.4 points exist to exercise intra-partition
// fragment-and-replicate, where the planner replicates the hot
// partition's build side to both backends and splits its probe side, and
// are gated strictly: the model policy must fragment AND beat the better
// single-backend control there.
var coprocZipfs = []float64{0.0, 1.0, 1.1, 1.2, 1.4}

// fragmentGateZipf is the skew depth from which the strict fragment gate
// applies to the model policy's cells.
const fragmentGateZipf = 1.2

// coprocHostpars: serial simulation and a small host pool.
var coprocHostpars = []int{0, 4}

// coprocPolicies: the model under test, the naive placement, and the two
// pinned single-backend controls.
var coprocPolicies = []skewjoin.SplitPolicy{
	skewjoin.SplitPolicyModel,
	skewjoin.SplitPolicyStatic,
	skewjoin.SplitPolicyCPU,
	skewjoin.SplitPolicyGPU,
}

// maxRegression and regressionEpsilonNs bound how much worse than the
// better single-backend control the model policy may measure before the
// run fails: 5% relative plus 5ms absolute (sub-millisecond joins are all
// harness noise).
const (
	maxRegression       = 1.05
	regressionEpsilonNs = 5e6
)

// CoprocBench measures the split executor across zipf, placement policy
// and host parallelism on the coupled device profile.
func CoprocBench(cfg Config) (*CoprocReport, error) {
	zipfs := coprocZipfs
	if len(cfg.Zipfs) > 0 && len(cfg.Zipfs) != 11 {
		zipfs = cfg.Zipfs
	}
	cfg = cfg.Defaults()
	threads := cfg.Threads
	if threads <= 0 {
		threads = exec.DefaultThreads()
	}
	// The coupled profile, at the -shm capacity the caller picked. The
	// committed baseline uses 8 KiB — the paper's skew-to-capacity ratio
	// at reduced table sizes (see README) — so the hot partition's
	// sub-list decomposition costs what it would at full scale.
	device := skewjoin.CoupledDevice()
	if cfg.Device.SharedMemBytes > 0 {
		device.SharedMemBytes = cfg.Device.SharedMemBytes
	}
	rep := &CoprocReport{
		Tuples:   cfg.Tuples,
		Seed:     cfg.Seed,
		Threads:  threads,
		Repeats:  cfg.Repeats,
		Device:   fmt.Sprintf("coupled/shm=%dKiB", device.SharedMemBytes>>10),
		Zipfs:    zipfs,
		Hostpars: coprocHostpars,
	}
	for _, p := range coprocPolicies {
		rep.Policies = append(rep.Policies, string(p))
	}

	// One calibration serves the whole report (the constants are host
	// properties); fitting it on the first workload keeps every cell's
	// plan comparable.
	w0, err := MakeWorkload(cfg.Tuples, zipfs[0], cfg.Seed)
	if err != nil {
		return nil, err
	}
	cal := skewjoin.Calibrate(w0.R, w0.S, threads)
	rep.Calibration = cal

	for _, z := range zipfs {
		w, err := MakeWorkload(cfg.Tuples, z, cfg.Seed)
		if err != nil {
			return nil, err
		}
		for _, hostpar := range coprocHostpars {
			group := make([]CoprocCell, 0, len(coprocPolicies))
			for _, policy := range coprocPolicies {
				cell := CoprocCell{Zipf: z, Policy: string(policy), HostParallelism: hostpar}
				for it := 0; it < cfg.Repeats; it++ {
					res, err := skewjoin.Join(skewjoin.Split, w.R, w.S, &skewjoin.Options{
						Threads: threads, Device: device,
						HostParallelism: hostpar,
						SplitPolicy:     policy, Calibration: &cal,
						SplitMinWinNs: cfg.SplitMinWinNs,
					})
					if err != nil {
						return nil, err
					}
					got := res.Summary()
					if got.Matches != w.Expected.Count || got.Checksum != w.Expected.Checksum {
						rep.Errors = append(rep.Errors, fmt.Sprintf(
							"%s hostpar=%d @ zipf %.2f: output mismatch", policy, hostpar, z))
						continue
					}
					foldCoproc(&cell, res.Split, rep)
				}
				if cell.MakespanNS > 0 {
					cell.PredErrPct = 100 * math.Abs(float64(cell.PredictedMakespanNS)-float64(cell.MakespanNS)) /
						float64(cell.MakespanNS)
				}
				group = append(group, cell)
			}
			checkCoprocGroup(group, rep)
			rep.Cells = append(rep.Cells, group...)
		}
	}
	return rep, nil
}

// foldCoproc folds one run into its cell: minimum join-side makespan (and
// the CPU busy time that produced it); the plan and the GPU side are
// deterministic and pinned by the first run.
func foldCoproc(c *CoprocCell, st *skewjoin.SplitStats, rep *CoprocReport) {
	if st == nil || st.Plan == nil {
		rep.Errors = append(rep.Errors, fmt.Sprintf(
			"%s hostpar=%d @ zipf %.2f: split run missing stats", c.Policy, c.HostParallelism, c.Zipf))
		return
	}
	if c.MakespanNS == 0 {
		c.Split = st.Plan.Split
		if !st.Plan.Split {
			c.Degenerate = string(st.Plan.Degenerate)
		}
		c.CPUParts = len(st.Plan.CPUParts)
		c.GPUParts = len(st.Plan.GPUParts)
		c.Fragmented = st.Fragmented()
		c.CPUFragments = st.CPUFragments
		c.GPUFragments = st.GPUFragments
		c.GPUJoinNS = st.GPUJoinNs
		c.GPUTransferNS = st.GPUTransferNs
		c.PredictedMakespanNS = st.Plan.PredictedMakespanNs
		c.CPUJoinNS = st.CPUJoinNs
		c.MakespanNS = st.JoinSideNs()
		c.Imbalance = st.Imbalance
		return
	}
	if gpu := st.GPUJoinNs + st.GPUTransferNs; gpu != c.GPUJoinNS+c.GPUTransferNS {
		rep.Errors = append(rep.Errors, fmt.Sprintf(
			"%s hostpar=%d @ zipf %.2f: modelled GPU time changed across repeats (%d ns vs %d ns)",
			c.Policy, c.HostParallelism, c.Zipf, gpu, c.GPUJoinNS+c.GPUTransferNS))
	}
	if m := st.JoinSideNs(); m < c.MakespanNS {
		c.MakespanNS = m
		c.CPUJoinNS = st.CPUJoinNs
		c.Imbalance = st.Imbalance
	}
}

// checkCoprocGroup asserts the model policy never measurably loses to the
// better pinned single-backend control of its (zipf, hostpar) group, and
// — strictly, at deep skew — that the model fragments the hot partition
// and measurably beats that control: at zipf >= fragmentGateZipf an
// atomic (whole-partition) placement cannot win, so a model cell that
// didn't fragment or didn't come out ahead is a regression, not noise.
func checkCoprocGroup(group []CoprocCell, rep *CoprocReport) {
	var model *CoprocCell
	better := int64(math.MaxInt64)
	for i := range group {
		c := &group[i]
		switch c.Policy {
		case string(skewjoin.SplitPolicyModel):
			model = c
		case string(skewjoin.SplitPolicyCPU), string(skewjoin.SplitPolicyGPU):
			if c.MakespanNS > 0 && c.MakespanNS < better {
				better = c.MakespanNS
			}
		}
	}
	if model == nil || model.MakespanNS == 0 || better == math.MaxInt64 {
		return
	}
	limit := int64(maxRegression*float64(better)) + regressionEpsilonNs
	if model.MakespanNS > limit {
		rep.Errors = append(rep.Errors, fmt.Sprintf(
			"model policy hostpar=%d @ zipf %.2f: makespan %s exceeds %.0f%%+eps of better control %s",
			model.HostParallelism, model.Zipf,
			FormatDuration(time.Duration(model.MakespanNS)),
			(maxRegression-1)*100,
			FormatDuration(time.Duration(better))))
	}
	if model.Zipf >= fragmentGateZipf {
		if !model.Fragmented {
			rep.Errors = append(rep.Errors, fmt.Sprintf(
				"model policy hostpar=%d @ zipf %.2f: deep-skew cell did not fragment the hot partition",
				model.HostParallelism, model.Zipf))
		}
		if model.MakespanNS >= better {
			rep.Errors = append(rep.Errors, fmt.Sprintf(
				"model policy hostpar=%d @ zipf %.2f: fragmented makespan %s does not beat better control %s",
				model.HostParallelism, model.Zipf,
				FormatDuration(time.Duration(model.MakespanNS)),
				FormatDuration(time.Duration(better))))
		}
	}
}

// Fprint renders the report: one block per (zipf, hostpar) group, one
// line per policy with the join-side makespan, the model's prediction
// error, and the placement shape.
func (rep *CoprocReport) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== co-processing benchmark (n=%d, threads=%d, device=%s, best of %d) ==\n",
		rep.Tuples, rep.Threads, rep.Device, rep.Repeats)
	fmt.Fprintf(w, "calibration: build %.2f ns/tuple, probe %.2f ns/unit\n",
		rep.Calibration.BuildNsPerTuple, rep.Calibration.ProbeNsPerUnit)
	fmt.Fprintf(w, "makespan = max(CPU busy time, modelled GPU time) of the join phase\n")
	for _, z := range rep.Zipfs {
		for _, hp := range rep.Hostpars {
			fmt.Fprintf(w, "-- zipf %.2f, hostpar %d --\n", z, hp)
			for _, c := range rep.Cells {
				if c.Zipf != z || c.HostParallelism != hp {
					continue
				}
				shape := fmt.Sprintf("split %d/%d", c.CPUParts, c.GPUParts)
				if c.Fragmented {
					shape += fmt.Sprintf("+f%d/%d", c.CPUFragments, c.GPUFragments)
				}
				if !c.Split {
					shape = "all-" + c.Degenerate
				}
				fmt.Fprintf(w, "%-7s %-12s  makespan %10s  cpu %10s  gpu %10s  pred-err %5.1f%%\n",
					c.Policy, shape,
					FormatDuration(time.Duration(c.MakespanNS)),
					FormatDuration(time.Duration(c.CPUJoinNS)),
					FormatDuration(time.Duration(c.GPUJoinNS+c.GPUTransferNS)),
					c.PredErrPct)
			}
		}
	}
	for _, e := range rep.Errors {
		fmt.Fprintf(w, "VERIFICATION FAILED: %s\n", e)
	}
	fmt.Fprintln(w)
}
