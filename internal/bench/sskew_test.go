package bench

import (
	"strings"
	"testing"
)

func TestSSkewRunsAndVerifies(t *testing.T) {
	cfg := tiny()
	cfg.Tuples = 3000
	rep, err := SSkew(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Errors) > 0 {
		t.Fatalf("verification errors: %v", rep.Errors)
	}
	if len(rep.Series) != 5 {
		t.Fatalf("series = %d", len(rep.Series))
	}
	for _, s := range rep.Series {
		if len(s.Cells) != len(cfg.Zipfs) {
			t.Errorf("series %s has %d cells, want %d", s.Name, len(s.Cells), len(cfg.Zipfs))
		}
	}
	var sb strings.Builder
	rep.Fprint(&sb)
	for _, want := range []string{"S-side", "GSH (paper skew-join)", "GSH (S-tiled)"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestSpeedupFprint(t *testing.T) {
	rep, err := Speedup(tiny())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	rep.Fprint(&sb)
	for _, want := range []string{"CSH vs Cbase", "GSH vs Gbase", "max CSH speedup"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestLargeFprint(t *testing.T) {
	cfg := tiny()
	cfg.Tuples = 1000
	rep, err := Large(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	rep.Fprint(&sb)
	if !strings.Contains(sb.String(), "Scale-up experiment") {
		t.Error("output missing title")
	}
}
