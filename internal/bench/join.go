// Join-phase A/B benchmark: the machine-readable perf baseline for the
// join hot-path overhaul (grouped probing, arena-reused build tables, the
// compact bucket-array layout). cmd/skewbench -exp join runs it and can
// write the result as BENCH_join.json, the artifact future PRs compare
// against.
package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"skewjoin/internal/cbase"
	"skewjoin/internal/chainedtable"
	"skewjoin/internal/csh"
	"skewjoin/internal/exec"
	"skewjoin/internal/joinphase"
	"skewjoin/internal/outbuf"
	"skewjoin/internal/radix"
)

// JoinVariant is one measured combination of join-phase knobs.
type JoinVariant struct {
	Name   string                 `json:"name"`
	Probe  chainedtable.ProbeMode `json:"-"`
	Layout chainedtable.Layout    `json:"-"`
}

// probeLayoutVariants is the full probe x layout matrix, plus a control row
// re-measuring the seed configuration under a second name: the seed/control
// spread is an A/A measurement of the harness noise floor, the yardstick
// against which the other deltas must be read.
var probeLayoutVariants = []JoinVariant{
	{Name: "seed(scalar+chained)", Probe: chainedtable.ProbeScalar, Layout: chainedtable.LayoutChained},
	{Name: "grouped+chained", Probe: chainedtable.ProbeGrouped, Layout: chainedtable.LayoutChained},
	{Name: "scalar+compact", Probe: chainedtable.ProbeScalar, Layout: chainedtable.LayoutCompact},
	{Name: "grouped+compact", Probe: chainedtable.ProbeGrouped, Layout: chainedtable.LayoutCompact},
	{Name: "control(scalar+chained)", Probe: chainedtable.ProbeScalar, Layout: chainedtable.LayoutChained},
}

// JoinCell is one measured configuration for an algorithm/zipf/variant
// triple. Phases holds each phase's minimum across the repeat runs (for the
// join rows that includes the build/probe CPU-time split, summed across
// workers) and TotalNS the minimum single-run total; as in the partition
// report, per-phase minima need not sum to TotalNS.
type JoinCell struct {
	Algo    string           `json:"algo"`
	Zipf    float64          `json:"zipf"`
	Variant string           `json:"variant"`
	Phases  map[string]int64 `json:"phases_ns"`
	TotalNS int64            `json:"total_ns"`
	// Tasks and ProbeVisits are work counters of the join phase; identical
	// across variants of one (algo, zipf) cell by construction.
	Tasks       int    `json:"tasks,omitempty"`
	ProbeVisits uint64 `json:"probe_visits,omitempty"`
	// AllocsPerTask is the minimum heap allocations per join task across
	// runs (raw joinphase rows only) — the arena-reuse acceptance metric:
	// per-worker scratch growth amortised over tasks, well below one.
	AllocsPerTask float64 `json:"allocs_per_task,omitempty"`
}

// JoinReport is the full join benchmark: the committed BENCH_join.json is
// exactly this structure.
type JoinReport struct {
	Tuples   int               `json:"tuples"`
	Threads  int               `json:"threads"`
	Seed     int64             `json:"seed"`
	Repeats  int               `json:"repeats"`
	Zipfs    []float64         `json:"zipfs"`
	Defaults map[string]string `json:"defaults"`
	Cells    []JoinCell        `json:"cells"`
	Errors   []string          `json:"errors,omitempty"`
}

// joinZipfs is the default skew sweep: a uniform anchor plus the paper's
// medium-to-high skew points.
var joinZipfs = []float64{0.0, 0.5, 0.8, 1.0}

// JoinBench measures the join-phase variants. Zipf factors come from
// cfg.Zipfs when the caller overrode them (len != the full default sweep),
// otherwise the default join sweep is used.
func JoinBench(cfg Config) (*JoinReport, error) {
	zipfs := joinZipfs
	if len(cfg.Zipfs) > 0 && len(cfg.Zipfs) != 11 {
		// An explicit -zipf list (the full 11-point default means "unset").
		zipfs = cfg.Zipfs
	}
	cfg = cfg.Defaults()
	threads := cfg.Threads
	if threads <= 0 {
		threads = exec.DefaultThreads()
	}
	rep := &JoinReport{
		Tuples:  cfg.Tuples,
		Threads: threads,
		Seed:    cfg.Seed,
		Repeats: cfg.Repeats,
		Zipfs:   zipfs,
		Defaults: map[string]string{
			"probe":  chainedtable.ProbeScalar.String(),
			"layout": chainedtable.LayoutChained.String(),
		},
	}

	for _, z := range zipfs {
		w, err := MakeWorkload(cfg.Tuples, z, cfg.Seed)
		if err != nil {
			return nil, err
		}

		// Raw join phase: partition once with Cbase's default bit split,
		// then drive joinphase.Run directly per variant so the numbers
		// isolate build+probe from partitioning. One untimed warm-up, then
		// the variants interleaved across repeat rounds (rotating the start
		// position) so heap growth and host noise spread evenly instead of
		// penalising whichever variant runs last.
		rcfg := radix.Config{Threads: threads, Bits1: 6, Bits2: 5}
		pr := radix.Partition(w.R.Tuples, rcfg, nil)
		ps := radix.Partition(w.S.Tuples, rcfg, nil)
		runRaw := func(v JoinVariant) (joinphase.Stats, outbuf.Summary, time.Duration, uint64) {
			bufs := make([]*outbuf.Buffer, threads)
			for i := range bufs {
				bufs[i] = outbuf.New(0)
			}
			jcfg := joinphase.Config{
				Threads: threads, SkewFactor: 4,
				Probe: v.Probe, Layout: v.Layout,
			}
			runtime.GC()
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			start := time.Now()
			st := joinphase.Run(pr, ps, jcfg, bufs)
			wall := time.Since(start)
			runtime.ReadMemStats(&m1)
			return st, outbuf.Summarize(bufs), wall, m1.Mallocs - m0.Mallocs
		}
		cells := make([]JoinCell, len(probeLayoutVariants))
		for vi, v := range probeLayoutVariants {
			cells[vi] = JoinCell{Algo: "joinphase", Zipf: z, Variant: v.Name}
		}
		runRaw(probeLayoutVariants[0]) // warm-up, discarded
		for it := 0; it < cfg.Repeats; it++ {
			for k := range probeLayoutVariants {
				vi := (it + k) % len(probeLayoutVariants)
				st, sum, wall, allocs := runRaw(probeLayoutVariants[vi])
				if sum != w.Expected {
					rep.Errors = append(rep.Errors, fmt.Sprintf(
						"joinphase %s @ zipf %.1f: output mismatch", probeLayoutVariants[vi].Name, z))
					continue
				}
				c := &cells[vi]
				c.Tasks = st.Tasks
				c.ProbeVisits = st.ProbeVisits
				apt := float64(allocs) / float64(st.Tasks)
				if c.Phases == nil || apt < c.AllocsPerTask {
					c.AllocsPerTask = apt
				}
				takeMinJoin(c, map[string]int64{
					"join":       wall.Nanoseconds(),
					"join.build": st.BuildNs,
					"join.probe": st.ProbeNs,
				}, wall.Nanoseconds())
			}
		}
		rep.Cells = append(rep.Cells, cells...)

		// End-to-end joins: the knobs through the full Cbase and CSH
		// pipelines, per-phase breakdown of the fastest of Repeats runs,
		// verified against the oracle every run.
		runJoin := func(algo string, v JoinVariant) ([]exec.Phase, joinphase.Stats, bool) {
			switch algo {
			case "cbase":
				res := cbase.Join(w.R, w.S, cbase.Config{
					Threads: cfg.Threads, Probe: v.Probe, Layout: v.Layout,
				})
				return res.Phases, res.Stats.Join, res.Summary == w.Expected
			default:
				res := csh.Join(w.R, w.S, csh.Config{
					Threads: cfg.Threads, Probe: v.Probe, Layout: v.Layout,
				})
				return res.Phases, res.Stats.NM, res.Summary == w.Expected
			}
		}
		for _, algo := range []string{"cbase", "csh"} {
			cells := make([]JoinCell, len(probeLayoutVariants))
			for vi, v := range probeLayoutVariants {
				cells[vi] = JoinCell{Algo: algo, Zipf: z, Variant: v.Name}
			}
			runJoin(algo, probeLayoutVariants[0]) // warm-up, discarded
			for it := 0; it < cfg.Repeats; it++ {
				for k := range probeLayoutVariants {
					vi := (it + k) % len(probeLayoutVariants)
					v := probeLayoutVariants[vi]
					runtime.GC()
					phases, st, ok := runJoin(algo, v)
					if !ok {
						rep.Errors = append(rep.Errors, fmt.Sprintf(
							"%s %s @ zipf %.1f: output mismatch", algo, v.Name, z))
						continue
					}
					var total int64
					m := make(map[string]int64, len(phases)+2)
					for _, p := range phases {
						m[p.Name] += p.Duration.Nanoseconds()
						total += p.Duration.Nanoseconds()
					}
					m["join.build"] = st.BuildNs
					m["join.probe"] = st.ProbeNs
					c := &cells[vi]
					c.Tasks = st.Tasks
					c.ProbeVisits = st.ProbeVisits
					takeMinJoin(c, m, total)
				}
			}
			rep.Cells = append(rep.Cells, cells...)
		}
	}
	return rep, nil
}

// takeMinJoin folds one run's phase map into the cell, keeping each phase's
// minimum across runs and the minimum single-run total (same robustness
// rationale as the partition report's takeMin).
func takeMinJoin(cell *JoinCell, phases map[string]int64, total int64) {
	if cell.Phases == nil {
		cell.Phases = phases
		cell.TotalNS = total
		return
	}
	for name, ns := range phases {
		if prev, ok := cell.Phases[name]; !ok || ns < prev {
			cell.Phases[name] = ns
		}
	}
	if total < cell.TotalNS {
		cell.TotalNS = total
	}
}

// Fprint renders the report as aligned text: one block per zipf factor, one
// line per algo/variant with the build/probe split and work counters.
func (rep *JoinReport) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== Join-path A/B benchmark (n=%d, threads=%d, best of %d) ==\n",
		rep.Tuples, rep.Threads, rep.Repeats)
	fmt.Fprintf(w, "defaults: probe=%s layout=%s\n", rep.Defaults["probe"], rep.Defaults["layout"])
	for _, z := range rep.Zipfs {
		fmt.Fprintf(w, "-- zipf %.1f --\n", z)
		for _, c := range rep.Cells {
			if c.Zipf != z {
				continue
			}
			fmt.Fprintf(w, "%-10s %-26s", c.Algo, c.Variant)
			if b, ok := c.Phases["join.build"]; ok {
				fmt.Fprintf(w, "  build %10s", FormatDuration(time.Duration(b)))
			}
			if p, ok := c.Phases["join.probe"]; ok {
				fmt.Fprintf(w, "  probe %10s", FormatDuration(time.Duration(p)))
			}
			fmt.Fprintf(w, "  total %10s", FormatDuration(time.Duration(c.TotalNS)))
			if c.Algo == "joinphase" {
				fmt.Fprintf(w, "  visits %11d  allocs/task %6.3f", c.ProbeVisits, c.AllocsPerTask)
			}
			fmt.Fprintln(w)
		}
	}
	for _, e := range rep.Errors {
		fmt.Fprintf(w, "VERIFICATION FAILED: %s\n", e)
	}
	fmt.Fprintln(w)
}
