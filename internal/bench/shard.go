// Sharded-tier benchmark: the machine-readable artifact for the cluster
// router's skew-aware routing. cmd/skewbench -exp shard runs it and can
// write the result as BENCH_shard.json.
//
// The harness is fully in-process: it stands up N skewjoind shards as
// httptest servers plus a router in front of them, registers the paper's
// zipf workload through the router, and joins it under each routing
// policy. Three policies run per zipf: "hash" (pure consistent-hash
// placement), "frag" (fragment-and-replicate for the hot keys), and
// "hash2" — a second, identical hash run that serves as the A/A control:
// the hash-vs-hash2 spread is the harness noise floor, committed next to
// the hash-vs-frag gap so the frag win is legible as signal.
//
// The shards time-share the benchmark host's core(s), so the router runs
// in its serialized measurement mode (Config.SerialJoins): shard calls
// execute one at a time, each shard's reported execution time measures
// its share of the join's work undisturbed, and the makespan — the
// fleet's wall clock with a core per shard — is the slowest shard's sum.
// The per-shard NM-join busy time (build+probe, thread-CPU clock) rides
// along as a secondary column.
//
// The harness gates two properties. At the sweep's deepest skew point
// (the largest zipf >= 1.0) frag's makespan must beat BOTH hash runs —
// the win must clear the A/A spread. At every other zipf frag must stay
// within a small factor of the worse hash run: below the knee it resolves
// to hash placement and must not drift, and at the knee itself the win
// is real only at scale (at the committed n=65536 frag beats hash from
// zipf 1.0 on; at smoke sizes the extra per-call overhead of six shard
// calls can eat the margin, which is a fixed cost, not a regression).
// Every run is verified against the join oracle. Violations land in
// Errors and fail the run.
package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"time"

	"skewjoin"
	"skewjoin/internal/cluster"
	"skewjoin/internal/oracle"
	"skewjoin/internal/service"
)

// ShardCell is one measured (zipf, policy) combination on the fixed shard
// fleet, under the serialized fan-out (see the package comment).
type ShardCell struct {
	Zipf   float64 `json:"zipf"`
	Policy string  `json:"policy"`
	// Resolved is the routing the router actually executed ("hash" or
	// "frag"); HotKeys is how many keys frag carved out.
	Resolved string `json:"resolved"`
	HotKeys  int    `json:"hot_keys"`
	// Calls is the number of shard /join calls the plan issued (shards
	// for hash; up to 2x shards for frag).
	Calls int `json:"calls"`
	// MakespanNS is the slowest shard's summed execution time under the
	// serialized fan-out — the join's wall clock on a fleet with a core
	// per shard. Minimum across repeats; the breakdown below belongs to
	// that fastest run.
	MakespanNS int64 `json:"makespan_ns"`
	// TotalNS sums all shards; frag pays replication here.
	TotalNS    int64   `json:"total_ns"`
	PerShardNS []int64 `json:"per_shard_ns"`
	// Imbalance is max/min per-shard execution time (0 when a shard was
	// idle).
	Imbalance float64 `json:"imbalance,omitempty"`
	// NMBusyNS is the fleet-wide build+probe thread-CPU time of the
	// NM-join phases, for context (csh does its heavy-hitter work in the
	// partition phase, which this column deliberately excludes).
	NMBusyNS int64 `json:"nm_busy_ns"`
}

// ShardReport is the full sharded-tier benchmark: the committed
// BENCH_shard.json is exactly this structure.
type ShardReport struct {
	Tuples   int         `json:"tuples"`
	Seed     int64       `json:"seed"`
	Shards   int         `json:"shards"`
	Repeats  int         `json:"repeats"`
	Zipfs    []float64   `json:"zipfs"`
	Policies []string    `json:"policies"`
	Cells    []ShardCell `json:"cells"`
	Errors   []string    `json:"errors,omitempty"`
}

// shardZipfs: uniform and moderate skew (where hash placement is already
// balanced and frag must not regress), the paper's full-skew point and
// slightly beyond (where the hot key's quadratic output swamps its owner
// shard and frag has to win).
var shardZipfs = []float64{0.0, 0.75, 1.0, 1.1}

// shardPolicies maps the benchmark's policy labels to the routing the
// request carries; hash2 is the A/A control.
var shardPolicies = []struct{ label, routing string }{
	{"hash", "hash"},
	{"frag", "frag"},
	{"hash2", "hash"},
}

const shardCount = 3

// ShardBench measures the cluster router across zipf and routing policy
// on an in-process 3-shard fleet.
func ShardBench(cfg Config) (*ShardReport, error) {
	zipfs := shardZipfs
	if len(cfg.Zipfs) > 0 && len(cfg.Zipfs) != 11 {
		zipfs = cfg.Zipfs
	}
	cfg = cfg.Defaults()
	// The anchor point — where frag's win is gated strictly — is the
	// sweep's deepest skew at or beyond the knee.
	anchorZipf := 0.0
	for _, z := range zipfs {
		if z >= 1.0 && z > anchorZipf {
			anchorZipf = z
		}
	}

	var shardTS []*httptest.Server
	defer func() {
		for _, ts := range shardTS {
			ts.Close()
		}
	}()
	urls := make([]string, shardCount)
	for i := range urls {
		ts := httptest.NewServer(service.New(service.Config{ThreadBudget: 2, MaxQueue: 32}))
		shardTS = append(shardTS, ts)
		urls[i] = ts.URL
	}
	rt, err := cluster.NewRouter(cluster.Config{
		ShardURLs:    urls,
		ShardTimeout: 5 * time.Minute,
		SerialJoins:  true,
	})
	if err != nil {
		return nil, err
	}
	router := httptest.NewServer(rt)
	defer router.Close()

	rep := &ShardReport{
		Tuples:  cfg.Tuples,
		Seed:    cfg.Seed,
		Shards:  shardCount,
		Repeats: cfg.Repeats,
		Zipfs:   zipfs,
	}
	for _, p := range shardPolicies {
		rep.Policies = append(rep.Policies, p.label)
	}

	for _, z := range zipfs {
		// The same streams the shards generate, regenerated locally for
		// the ground truth.
		rRel, err := skewjoin.GenerateZipf(cfg.Tuples, z, cfg.Seed, 1)
		if err != nil {
			return nil, err
		}
		sRel, err := skewjoin.GenerateZipf(cfg.Tuples, z, cfg.Seed, 2)
		if err != nil {
			return nil, err
		}
		want := oracle.Expected(rRel, sRel)

		rName := fmt.Sprintf("bench_r_%03d", int(z*100))
		sName := fmt.Sprintf("bench_s_%03d", int(z*100))
		for name, stream := range map[string]int64{rName: 1, sName: 2} {
			if err := shardCall(router.URL, "POST", "/relations", service.RegisterRequest{
				Name:     name,
				Generate: &service.GenerateSpec{N: cfg.Tuples, Zipf: z, Seed: cfg.Seed, Stream: stream},
			}, nil, http.StatusCreated); err != nil {
				return nil, err
			}
		}

		// One untimed warmup per routing: the first join against a fresh
		// relation pays one-off costs (page faults, fragment shipping)
		// that belong to neither policy's steady state.
		for _, routing := range []string{"hash", "frag"} {
			if err := shardCall(router.URL, "POST", "/join", service.JoinRequest{
				R: rName, S: sName, Routing: routing,
			}, &cluster.JoinResponse{}, http.StatusOK); err != nil {
				return nil, err
			}
		}

		group := make([]ShardCell, 0, len(shardPolicies))
		for _, p := range shardPolicies {
			cell := ShardCell{Zipf: z, Policy: p.label}
			for it := 0; it < cfg.Repeats; it++ {
				var resp cluster.JoinResponse
				if err := shardCall(router.URL, "POST", "/join", service.JoinRequest{
					R: rName, S: sName, Routing: p.routing,
				}, &resp, http.StatusOK); err != nil {
					return nil, err
				}
				if resp.Matches != want.Count || resp.Checksum != want.Checksum {
					rep.Errors = append(rep.Errors, fmt.Sprintf(
						"%s @ zipf %.2f: output (%d, %#x) != oracle (%d, %#x)",
						p.label, z, resp.Matches, resp.Checksum, want.Count, want.Checksum))
					continue
				}
				foldShard(&cell, &resp, rep)
			}
			group = append(group, cell)
		}
		checkShardGroup(group, z == anchorZipf && z >= 1.0, rep)
		rep.Cells = append(rep.Cells, group...)

		for _, name := range []string{rName, sName} {
			if err := shardCall(router.URL, "DELETE", "/relations/"+name, nil, nil, http.StatusNoContent); err != nil {
				return nil, err
			}
		}
	}
	return rep, nil
}

// foldShard folds one verified run into its cell, keeping the run with
// the smallest makespan.
func foldShard(c *ShardCell, resp *cluster.JoinResponse, rep *ShardReport) {
	if resp.Cluster == nil {
		rep.Errors = append(rep.Errors, fmt.Sprintf(
			"%s @ zipf %.2f: response missing cluster breakdown", c.Policy, c.Zipf))
		return
	}
	cl := resp.Cluster
	work := make([]int64, len(cl.Shards))
	var makespan, total, busy int64
	calls := 0
	for i, sh := range cl.Shards {
		work[i] = int64(sh.JoinMS * 1e6)
		total += work[i]
		if work[i] > makespan {
			makespan = work[i]
		}
		busy += int64(sh.BusyMS * 1e6)
		calls += sh.Calls
	}
	if c.MakespanNS != 0 && makespan >= c.MakespanNS {
		return
	}
	c.Resolved = cl.Policy
	c.HotKeys = len(cl.HotKeys)
	c.Calls = calls
	c.MakespanNS = makespan
	c.TotalNS = total
	c.PerShardNS = work
	c.NMBusyNS = busy
	min := makespan
	for _, b := range work {
		if b < min {
			min = b
		}
	}
	if min > 0 {
		c.Imbalance = float64(makespan) / float64(min)
	} else {
		c.Imbalance = 0
	}
}

// shardMaxRegression bounds frag at the non-anchor zipf points: it must
// not exceed shardMaxRegression times the worse hash run.
const shardMaxRegression = 1.15

// checkShardGroup gates one zipf group. anchor marks the sweep's deepest
// skew point, where frag must beat both hash runs (the win must clear the
// A/A spread); elsewhere frag must stay within shardMaxRegression of the
// worse hash run. Everywhere the router's auto threshold must have
// resolved frag to the expected shape — no hot keys below the paper's
// skew knee, some at or above it.
func checkShardGroup(group []ShardCell, anchor bool, rep *ShardReport) {
	var frag *ShardCell
	worstHash, bestHash := int64(0), int64(0)
	for i := range group {
		c := &group[i]
		switch c.Policy {
		case "frag":
			frag = c
		default:
			if c.MakespanNS > worstHash {
				worstHash = c.MakespanNS
			}
			if bestHash == 0 || c.MakespanNS < bestHash {
				bestHash = c.MakespanNS
			}
		}
	}
	if frag == nil || frag.MakespanNS == 0 || bestHash == 0 {
		return
	}
	if frag.Zipf >= 1.0 && frag.HotKeys == 0 {
		rep.Errors = append(rep.Errors, fmt.Sprintf(
			"frag @ zipf %.2f: carved out no hot keys at full skew", frag.Zipf))
	}
	if frag.Zipf < 1.0 && frag.HotKeys != 0 {
		rep.Errors = append(rep.Errors, fmt.Sprintf(
			"frag @ zipf %.2f: carved out %d hot keys below the skew knee", frag.Zipf, frag.HotKeys))
	}
	if anchor {
		if frag.MakespanNS >= bestHash {
			rep.Errors = append(rep.Errors, fmt.Sprintf(
				"frag @ zipf %.2f: makespan %s does not beat the better hash run %s (A/A spread %s..%s)",
				frag.Zipf,
				FormatDuration(time.Duration(frag.MakespanNS)),
				FormatDuration(time.Duration(bestHash)),
				FormatDuration(time.Duration(bestHash)),
				FormatDuration(time.Duration(worstHash))))
		}
	} else if float64(frag.MakespanNS) > shardMaxRegression*float64(worstHash) {
		rep.Errors = append(rep.Errors, fmt.Sprintf(
			"frag @ zipf %.2f: makespan %s exceeds %.0f%% of the worse hash run %s",
			frag.Zipf,
			FormatDuration(time.Duration(frag.MakespanNS)),
			shardMaxRegression*100,
			FormatDuration(time.Duration(worstHash))))
	}
}

// shardCall is the harness's tiny HTTP client: JSON in, JSON out, one
// expected status.
func shardCall(base, method, path string, reqBody, out any, wantStatus int) error {
	var body io.Reader
	if reqBody != nil {
		raw, err := json.Marshal(reqBody)
		if err != nil {
			return err
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, base+path, body)
	if err != nil {
		return err
	}
	if reqBody != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != wantStatus {
		return fmt.Errorf("%s %s: status %d: %s", method, path, resp.StatusCode, bytes.TrimSpace(raw))
	}
	if out != nil {
		return json.Unmarshal(raw, out)
	}
	return nil
}

// Fprint renders the report: one block per zipf, one line per policy with
// the busy-time makespan, the per-shard spread, and the plan shape.
func (rep *ShardReport) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== sharded-tier benchmark (n=%d, %d shards, best of %d) ==\n",
		rep.Tuples, rep.Shards, rep.Repeats)
	fmt.Fprintf(w, "makespan = slowest shard's execution time under serialized fan-out; hash2 is the A/A control\n")
	for _, z := range rep.Zipfs {
		fmt.Fprintf(w, "-- zipf %.2f --\n", z)
		for _, c := range rep.Cells {
			if c.Zipf != z {
				continue
			}
			fmt.Fprintf(w, "%-6s %-5s hot=%-3d calls=%-2d  makespan %10s  total %10s  imbalance %5.2f\n",
				c.Policy, c.Resolved, c.HotKeys, c.Calls,
				FormatDuration(time.Duration(c.MakespanNS)),
				FormatDuration(time.Duration(c.TotalNS)),
				c.Imbalance)
		}
	}
	for _, e := range rep.Errors {
		fmt.Fprintf(w, "VERIFICATION FAILED: %s\n", e)
	}
	fmt.Fprintln(w)
}
