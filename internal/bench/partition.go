// Partition-phase A/B benchmark: the machine-readable perf baseline for
// the CPU hot-path overhaul (write-combining scatter, lock-free dequeue,
// overlapped R/S passes). cmd/skewbench -exp partition runs it and can
// write the result as BENCH_partition.json, the perf-trajectory artifact
// future PRs compare against.
package bench

import (
	"fmt"
	"io"
	"runtime"
	"sync/atomic"
	"time"

	"skewjoin/internal/cbase"
	"skewjoin/internal/csh"
	"skewjoin/internal/exec"
	"skewjoin/internal/radix"
)

// PartitionVariant is one measured combination of partitioner knobs.
type PartitionVariant struct {
	Name    string            `json:"name"`
	Scatter radix.ScatterMode `json:"-"`
	Sched   radix.SchedMode   `json:"-"`
}

// joinVariants are the combinations measured for the end-to-end joins:
// the seed paths, each change in isolation, and the shipped default. The
// control row re-measures the seed configuration under a second name: the
// seed/control spread is an A/A measurement of the harness noise floor,
// the yardstick against which the other deltas must be read.
var joinVariants = []PartitionVariant{
	{Name: "seed(direct+mutex)", Scatter: radix.ScatterDirect, Sched: radix.SchedMutex},
	{Name: "direct+atomic", Scatter: radix.ScatterDirect, Sched: radix.SchedAtomic},
	{Name: "wc+atomic", Scatter: radix.ScatterWC, Sched: radix.SchedAtomic},
	{Name: "default(auto+atomic)", Scatter: radix.ScatterAuto, Sched: radix.SchedAtomic},
	{Name: "control(direct+mutex)", Scatter: radix.ScatterDirect, Sched: radix.SchedMutex},
}

// radixVariants is the full scatter x sched matrix measured on the raw
// partitioner, isolating the two mechanisms from the join phase.
var radixVariants = []PartitionVariant{
	{Name: "direct+mutex", Scatter: radix.ScatterDirect, Sched: radix.SchedMutex},
	{Name: "direct+atomic", Scatter: radix.ScatterDirect, Sched: radix.SchedAtomic},
	{Name: "wc+mutex", Scatter: radix.ScatterWC, Sched: radix.SchedMutex},
	{Name: "wc+atomic", Scatter: radix.ScatterWC, Sched: radix.SchedAtomic},
}

// radixBitConfigs are the raw-partitioner bit splits measured: the join
// default (low per-pass fanout) and a high-fanout single pass, the regime
// software write-combining targets.
var radixBitConfigs = []struct{ Bits1, Bits2 uint32 }{
	{6, 5},
	{11, 0},
	{7, 7},
}

// PartitionCell is one measured configuration for an algorithm/zipf/
// variant triple. Phases holds each phase's minimum across the repeat
// runs and TotalNS the minimum single-run total; the per-phase minima do
// not come from one run, which makes them robust A/B statistics on noisy
// hosts but means they need not sum to TotalNS.
type PartitionCell struct {
	Algo    string           `json:"algo"`
	Zipf    float64          `json:"zipf"`
	Variant string           `json:"variant"`
	Phases  map[string]int64 `json:"phases_ns"`
	TotalNS int64            `json:"total_ns"`
}

// PartitionReport is the full partition benchmark: the committed
// BENCH_partition.json is exactly this structure.
type PartitionReport struct {
	Tuples   int               `json:"tuples"`
	Threads  int               `json:"threads"`
	Seed     int64             `json:"seed"`
	Repeats  int               `json:"repeats"`
	Zipfs    []float64         `json:"zipfs"`
	Defaults map[string]string `json:"defaults"`
	Cells    []PartitionCell   `json:"cells"`
	Errors   []string          `json:"errors,omitempty"`
}

// partitionZipfs is the default skew sweep: a uniform anchor plus the
// paper's medium-to-high skew points.
var partitionZipfs = []float64{0.0, 0.5, 0.8, 1.0}

// PartitionBench measures the partitioner variants. Zipf factors come from
// cfg.Zipfs when the caller overrode them (len != the full default sweep),
// otherwise the default partition sweep is used.
func PartitionBench(cfg Config) (*PartitionReport, error) {
	zipfs := partitionZipfs
	if len(cfg.Zipfs) > 0 && len(cfg.Zipfs) != 11 {
		// An explicit -zipf list (the full 11-point default means "unset").
		zipfs = cfg.Zipfs
	}
	cfg = cfg.Defaults()
	threads := cfg.Threads
	if threads <= 0 {
		threads = exec.DefaultThreads()
	}
	rep := &PartitionReport{
		Tuples:  cfg.Tuples,
		Threads: threads,
		Seed:    cfg.Seed,
		Repeats: cfg.Repeats,
		Zipfs:   zipfs,
		Defaults: map[string]string{
			"scatter": radix.ScatterAuto.String(),
			"sched":   radix.SchedAtomic.String(),
		},
	}

	for _, z := range zipfs {
		w, err := MakeWorkload(cfg.Tuples, z, cfg.Seed)
		if err != nil {
			return nil, err
		}

		// Raw partitioner: both relations, full scatter x sched matrix,
		// several bit splits. Pure partition time, no join phase. One
		// untimed warm-up per bit split, then the variants interleaved
		// across repeat rounds so heap growth and host noise spread evenly
		// instead of penalising whichever variant runs last.
		for _, bits := range radixBitConfigs {
			warm := radix.Config{Threads: threads, Bits1: bits.Bits1, Bits2: bits.Bits2}
			radix.Partition(w.R.Tuples, warm, nil)
			best := make([]time.Duration, len(radixVariants))
			for vi := range best {
				best[vi] = -1
			}
			for it := 0; it < cfg.Repeats; it++ {
				// Rotate the starting variant each round: host noise with a
				// time structure (VM steal, thermal) otherwise lands on the
				// same positions every round and best-of cannot cancel it.
				for k := range radixVariants {
					vi := (it + k) % len(radixVariants)
					v := radixVariants[vi]
					rcfg := radix.Config{
						Threads: threads, Bits1: bits.Bits1, Bits2: bits.Bits2,
						Scatter: v.Scatter, Sched: v.Sched,
					}
					runtime.GC()
					start := time.Now()
					radix.Partition(w.R.Tuples, rcfg, nil)
					radix.Partition(w.S.Tuples, rcfg, nil)
					if d := time.Since(start); best[vi] < 0 || d < best[vi] {
						best[vi] = d
					}
				}
			}
			for vi, v := range radixVariants {
				rep.Cells = append(rep.Cells, PartitionCell{
					Algo:    fmt.Sprintf("radix/bits=%d+%d", bits.Bits1, bits.Bits2),
					Zipf:    z,
					Variant: v.Name,
					Phases:  map[string]int64{"partition": best[vi].Nanoseconds()},
					TotalNS: best[vi].Nanoseconds(),
				})
			}
		}

		// End-to-end joins: per-phase breakdown of the fastest of Repeats
		// runs, verified against the oracle every run. Same discipline as
		// above: one untimed warm-up per algorithm, variants interleaved
		// across rounds, fastest run kept per variant.
		runJoin := func(algo string, v PartitionVariant) ([]exec.Phase, bool) {
			switch algo {
			case "cbase":
				res := cbase.Join(w.R, w.S, cbase.Config{
					Threads: cfg.Threads, Scatter: v.Scatter, Sched: v.Sched,
				})
				return res.Phases, res.Summary == w.Expected
			default:
				res := csh.Join(w.R, w.S, csh.Config{
					Threads: cfg.Threads, Scatter: v.Scatter, Sched: v.Sched,
				})
				return res.Phases, res.Summary == w.Expected
			}
		}
		for _, algo := range []string{"cbase", "csh"} {
			cells := make([]PartitionCell, len(joinVariants))
			for vi, v := range joinVariants {
				cells[vi] = PartitionCell{Algo: algo, Zipf: z, Variant: v.Name}
			}
			runJoin(algo, joinVariants[0]) // warm-up, discarded
			for it := 0; it < cfg.Repeats; it++ {
				for k := range joinVariants {
					vi := (it + k) % len(joinVariants)
					v := joinVariants[vi]
					runtime.GC()
					phases, ok := runJoin(algo, v)
					if !ok {
						rep.Errors = append(rep.Errors, fmt.Sprintf(
							"%s %s @ zipf %.1f: output mismatch", algo, v.Name, z))
						continue
					}
					takeMin(&cells[vi], phases)
				}
			}
			rep.Cells = append(rep.Cells, cells...)
		}

		// Queue microbenchmark: drain the real pass-2 task shape (one task
		// per pass-1 partition of R) through both queue implementations,
		// with the per-task work replaced by a fixed-cost touch so the
		// numbers isolate dequeue overhead.
		for _, sched := range []radix.SchedMode{radix.SchedMutex, radix.SchedAtomic} {
			d := queueDrainTime(threads, 1<<11, cfg.Repeats, sched)
			rep.Cells = append(rep.Cells, PartitionCell{
				Algo:    "queue/tasks=2048",
				Zipf:    z,
				Variant: sched.String(),
				Phases:  map[string]int64{"drain": d.Nanoseconds()},
				TotalNS: d.Nanoseconds(),
			})
		}
	}
	return rep, nil
}

// takeMin folds one run's phases into the cell, keeping each phase's
// minimum across runs and the minimum single-run total. Per-phase minima
// beat "phases of the fastest run": on a noisy host the fastest total is
// picked by whichever phase dominates, dragging unrepresentative samples
// of the other phases along with it.
func takeMin(cell *PartitionCell, phases []exec.Phase) {
	var total int64
	m := make(map[string]int64, len(phases))
	for _, p := range phases {
		m[p.Name] += p.Duration.Nanoseconds()
		total += p.Duration.Nanoseconds()
	}
	if cell.Phases == nil {
		cell.Phases = m
		cell.TotalNS = total
		return
	}
	for name, ns := range m {
		if prev, ok := cell.Phases[name]; !ok || ns < prev {
			cell.Phases[name] = ns
		}
	}
	if total < cell.TotalNS {
		cell.TotalNS = total
	}
}

// queueDrainTime measures draining `tasks` trivial tasks with `threads`
// workers through the selected queue implementation, best of repeats.
func queueDrainTime(threads, tasks, repeats int, sched radix.SchedMode) time.Duration {
	items := make([]int, tasks)
	for i := range items {
		items[i] = i
	}
	var sink atomic.Int64
	work := func(_ int, t int) { sink.Add(int64(t)) }
	best := time.Duration(-1)
	for r := 0; r < repeats; r++ {
		start := time.Now()
		if sched == radix.SchedMutex {
			exec.NewMutexQueue(items).Drain(threads, work)
		} else {
			exec.NewQueue(items).Drain(threads, work)
		}
		if d := time.Since(start); best < 0 || d < best {
			best = d
		}
	}
	return best
}

// Fprint renders the report as aligned text: one block per zipf factor,
// one line per algo/variant with its partition-relevant phases.
func (rep *PartitionReport) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== Partition-path A/B benchmark (n=%d, threads=%d, best of %d) ==\n",
		rep.Tuples, rep.Threads, rep.Repeats)
	fmt.Fprintf(w, "defaults: scatter=%s sched=%s\n", rep.Defaults["scatter"], rep.Defaults["sched"])
	for _, z := range rep.Zipfs {
		fmt.Fprintf(w, "-- zipf %.1f --\n", z)
		for _, c := range rep.Cells {
			if c.Zipf != z {
				continue
			}
			fmt.Fprintf(w, "%-18s %-22s", c.Algo, c.Variant)
			if part, ok := c.Phases["partition"]; ok {
				fmt.Fprintf(w, "  partition %10s", FormatDuration(time.Duration(part)))
			}
			if drain, ok := c.Phases["drain"]; ok {
				fmt.Fprintf(w, "  drain %10s", FormatDuration(time.Duration(drain)))
			}
			fmt.Fprintf(w, "  total %10s\n", FormatDuration(time.Duration(c.TotalNS)))
		}
	}
	for _, e := range rep.Errors {
		fmt.Fprintf(w, "VERIFICATION FAILED: %s\n", e)
	}
	fmt.Fprintln(w)
}
