package bench

import (
	"fmt"
	"io"
	"runtime"

	"skewjoin/internal/cbase"
	"skewjoin/internal/csh"
	"skewjoin/internal/gbase"
	"skewjoin/internal/gsh"
	"skewjoin/internal/npj"
	"skewjoin/internal/outbuf"
	"skewjoin/internal/smj"
)

// MemoryReport records the heap bytes each algorithm allocates for one
// join, per zipf factor. The paper's algorithms differ in working-set
// shape — Cbase ping-pongs two partition copies, CSH adds per-key skewed
// arrays, Gbase materialises bucket lists, GSH divides large partitions,
// SMJ keeps two sorted copies — and the report makes those costs visible
// relative to the input size.
type MemoryReport struct {
	Zipfs      []float64
	InputBytes int
	Series     []MemSeries
	Errors     []string
}

// MemSeries is one algorithm's allocation per zipf factor.
type MemSeries struct {
	Name  string
	Bytes []uint64
}

// Memory measures per-join allocations across the sweep.
func Memory(cfg Config) (*MemoryReport, error) {
	cfg = cfg.Defaults()
	rep := &MemoryReport{Zipfs: cfg.Zipfs, InputBytes: 2 * cfg.Tuples * 8}
	algs := []struct {
		name string
		run  func(w Workload) outbuf.Summary
	}{
		{"cbase", func(w Workload) outbuf.Summary {
			return cbase.Join(w.R, w.S, cbase.Config{Threads: cfg.Threads}).Summary
		}},
		{"cbase-npj", func(w Workload) outbuf.Summary {
			return npj.Join(w.R, w.S, npj.Config{Threads: cfg.Threads}).Summary
		}},
		{"csh", func(w Workload) outbuf.Summary {
			return csh.Join(w.R, w.S, csh.Config{Threads: cfg.Threads}).Summary
		}},
		{"gbase", func(w Workload) outbuf.Summary {
			return gbase.Join(w.R, w.S, gbase.Config{Device: cfg.Device}).Summary
		}},
		{"gsh", func(w Workload) outbuf.Summary {
			return gsh.Join(w.R, w.S, gsh.Config{Device: cfg.Device}).Summary
		}},
		{"smj", func(w Workload) outbuf.Summary {
			return smj.Join(w.R, w.S, smj.Config{Threads: cfg.Threads}).Summary
		}},
	}
	rep.Series = make([]MemSeries, len(algs))
	for i, a := range algs {
		rep.Series[i].Name = a.name
	}
	for _, z := range cfg.Zipfs {
		w, err := MakeWorkload(cfg.Tuples, z, cfg.Seed)
		if err != nil {
			return nil, err
		}
		for i, a := range algs {
			var before, after runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)
			got := a.run(w)
			runtime.ReadMemStats(&after)
			if got != w.Expected {
				rep.Errors = append(rep.Errors,
					fmt.Sprintf("%s @ zipf %.1f: output %+v, expected %+v", a.name, z, got, w.Expected))
			}
			rep.Series[i].Bytes = append(rep.Series[i].Bytes, after.TotalAlloc-before.TotalAlloc)
		}
	}
	return rep, nil
}

// Fprint renders allocations as multiples of the input size.
func (rep *MemoryReport) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== Per-join heap allocations (x input size, input = %d MiB) ==\n",
		rep.InputBytes>>20)
	fmt.Fprintf(w, "%-12s", "zipf")
	for _, z := range rep.Zipfs {
		fmt.Fprintf(w, "%9.1f", z)
	}
	fmt.Fprintln(w)
	for _, s := range rep.Series {
		fmt.Fprintf(w, "%-12s", s.Name)
		for _, b := range s.Bytes {
			fmt.Fprintf(w, "%8.2fx", float64(b)/float64(rep.InputBytes))
		}
		fmt.Fprintln(w)
	}
	for _, e := range rep.Errors {
		fmt.Fprintf(w, "VERIFICATION FAILED: %s\n", e)
	}
	fmt.Fprintln(w)
}
