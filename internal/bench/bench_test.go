package bench

import (
	"strings"
	"testing"
	"time"
)

// tiny returns a configuration small enough for unit testing the harness.
func tiny() Config {
	return Config{
		Tuples:     4000,
		Threads:    2,
		Seed:       7,
		Zipfs:      []float64{0, 0.5, 1.0},
		TableZipfs: []float64{0.5, 1.0},
	}
}

func TestFig1RunsAndVerifies(t *testing.T) {
	rep, err := Fig1(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Errors) > 0 {
		t.Fatalf("verification errors: %v", rep.Errors)
	}
	if len(rep.Series) != 4 {
		t.Fatalf("series = %d", len(rep.Series))
	}
	for _, s := range rep.Series {
		if len(s.Cells) != 3 {
			t.Errorf("series %s has %d cells", s.Name, len(s.Cells))
		}
	}
}

func TestFig4aRunsAndVerifies(t *testing.T) {
	rep, err := Fig4a(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Errors) > 0 {
		t.Fatalf("verification errors: %v", rep.Errors)
	}
	names := []string{"Cbase", "cbase-npj", "CSH"}
	for i, s := range rep.Series {
		if s.Name != names[i] {
			t.Errorf("series %d = %s, want %s", i, s.Name, names[i])
		}
	}
}

func TestFig4bRunsAndVerifies(t *testing.T) {
	rep, err := Fig4b(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Errors) > 0 {
		t.Fatalf("verification errors: %v", rep.Errors)
	}
	for _, s := range rep.Series {
		for _, c := range s.Cells {
			if !c.Modelled {
				t.Errorf("GPU cell not marked modelled in %s", s.Name)
			}
		}
	}
}

func TestTable1HasPaperRows(t *testing.T) {
	rep, err := Table1(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Errors) > 0 {
		t.Fatalf("verification errors: %v", rep.Errors)
	}
	want := []string{
		"Cbase partition", "Cbase join",
		"CSH sample+part", "CSH NM-join",
		"Gbase partition", "Gbase join",
		"GSH partition", "GSH all other",
	}
	if len(rep.Series) != len(want) {
		t.Fatalf("rows = %d", len(rep.Series))
	}
	for i, s := range rep.Series {
		if s.Name != want[i] {
			t.Errorf("row %d = %q, want %q", i, s.Name, want[i])
		}
	}
}

func TestSpeedupRuns(t *testing.T) {
	rep, err := Speedup(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Errors) > 0 {
		t.Fatalf("verification errors: %v", rep.Errors)
	}
	if len(rep.CSHSpeedup) != 2 || len(rep.GSHSpeedup) != 2 {
		t.Fatalf("speedups = %v / %v", rep.CSHSpeedup, rep.GSHSpeedup)
	}
	for _, v := range append(append([]float64{}, rep.CSHSpeedup...), rep.GSHSpeedup...) {
		if v <= 0 {
			t.Errorf("non-positive speedup %g", v)
		}
	}
}

func TestLargeRuns(t *testing.T) {
	cfg := tiny()
	cfg.Tuples = 2000 // Large() multiplies by 8
	rep, err := Large(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Errors) > 0 {
		t.Fatalf("verification errors: %v", rep.Errors)
	}
	if rep.Tuples != 16000 {
		t.Errorf("tuples = %d", rep.Tuples)
	}
}

func TestReportFprint(t *testing.T) {
	rep, err := Fig4b(tiny())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	rep.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"Figure 4b", "Gbase", "GSH", "0.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "*") {
		t.Error("modelled marker '*' missing")
	}
}

func TestMemoryRunsAndVerifies(t *testing.T) {
	rep, err := Memory(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Errors) > 0 {
		t.Fatalf("verification errors: %v", rep.Errors)
	}
	if len(rep.Series) != 6 {
		t.Fatalf("series = %d", len(rep.Series))
	}
	for _, s := range rep.Series {
		for i, b := range s.Bytes {
			if b == 0 {
				t.Errorf("%s cell %d recorded zero allocations", s.Name, i)
			}
		}
	}
	var sb strings.Builder
	rep.Fprint(&sb)
	if !strings.Contains(sb.String(), "heap allocations") {
		t.Error("output missing title")
	}
}

func TestSortVsHashRunsAndVerifies(t *testing.T) {
	rep, err := SortVsHash(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Errors) > 0 {
		t.Fatalf("verification errors: %v", rep.Errors)
	}
	if len(rep.Series) != 6 {
		t.Fatalf("series = %d", len(rep.Series))
	}
}

func TestAnalysisTracksSkew(t *testing.T) {
	rep, err := Analysis(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	low, high := rep.Rows[0], rep.Rows[2] // zipf 0 and 1.0
	if high.TopKeyFreq <= low.TopKeyFreq {
		t.Errorf("top-key frequency should grow with skew: %d vs %d", low.TopKeyFreq, high.TopKeyFreq)
	}
	if high.MaxChain <= low.MaxChain {
		t.Errorf("max chain should grow with skew: %d vs %d", low.MaxChain, high.MaxChain)
	}
	if high.MaxTaskShare <= low.MaxTaskShare {
		t.Errorf("max task share should grow with skew: %g vs %g", low.MaxTaskShare, high.MaxTaskShare)
	}
	var sb strings.Builder
	rep.Fprint(&sb)
	if !strings.Contains(sb.String(), "max-chain") {
		t.Error("Fprint output missing header")
	}
}

func TestFormatDuration(t *testing.T) {
	cases := map[string]string{
		"1.5s":   "1.50s",
		"2ms":    "2.00ms",
		"3.5us":  "3.5us",
		"800ns":  "800ns",
		"1234ms": "1.23s",
	}
	for in, want := range cases {
		d, err := time.ParseDuration(in)
		if err != nil {
			t.Fatal(err)
		}
		if got := FormatDuration(d); got != want {
			t.Errorf("FormatDuration(%s) = %q, want %q", in, got, want)
		}
	}
}
