package bench

import (
	"skewjoin/internal/cbase"
	"skewjoin/internal/csh"
	"skewjoin/internal/gbase"
	"skewjoin/internal/gsh"
	"skewjoin/internal/gsmj"
	"skewjoin/internal/smj"
)

// SortVsHash is the extension experiment revisiting the sort-vs-hash
// question ([13], [17] in the paper) under skew: the parallel sort-merge
// join against the baseline radix join and the skew-conscious CSH.
//
// The expected shape: SMJ pays its sort at every skew level (losing to
// hash joins on uniform data) but its merge phase generates equal-key
// cross products with the same sequential access pattern CSH uses for its
// skew fast path — so at high skew SMJ overtakes Cbase while CSH, which
// only pays the sequential treatment for the keys that need it, stays
// ahead of both.
func SortVsHash(cfg Config) (*Report, error) {
	cfg = cfg.Defaults()
	rep := &Report{Title: "Sort vs hash under skew (extension experiment)", Zipfs: cfg.Zipfs}
	rows := make([]Series, 6)
	rows[0].Name = "Cbase (radix hash)"
	rows[1].Name = "CSH (skew-conscious)"
	rows[2].Name = "SMJ (sort-merge)"
	rows[3].Name = "Gbase (GPU hash)"
	rows[4].Name = "GSH (GPU skew-consc.)"
	rows[5].Name = "GSMJ (GPU sort-merge)"
	for _, z := range cfg.Zipfs {
		w, err := MakeWorkload(cfg.Tuples, z, cfg.Seed)
		if err != nil {
			return nil, err
		}
		cb := cbase.Join(w.R, w.S, cbase.Config{Threads: cfg.Threads})
		rep.verify("cbase", z, cb.Summary, w.Expected)
		rows[0].Cells = append(rows[0].Cells, Cell{Duration: cb.Total()})

		cs := csh.Join(w.R, w.S, csh.Config{Threads: cfg.Threads})
		rep.verify("csh", z, cs.Summary, w.Expected)
		rows[1].Cells = append(rows[1].Cells, Cell{Duration: cs.Total()})

		sm := smj.Join(w.R, w.S, smj.Config{Threads: cfg.Threads})
		rep.verify("smj", z, sm.Summary, w.Expected)
		rows[2].Cells = append(rows[2].Cells, Cell{Duration: sm.Total()})

		gb := gbase.Join(w.R, w.S, gbase.Config{Device: cfg.Device})
		rep.verify("gbase", z, gb.Summary, w.Expected)
		rows[3].Cells = append(rows[3].Cells, Cell{Duration: gb.Total(), Modelled: true})

		gs := gsh.Join(w.R, w.S, gsh.Config{Device: cfg.Device})
		rep.verify("gsh", z, gs.Summary, w.Expected)
		rows[4].Cells = append(rows[4].Cells, Cell{Duration: gs.Total(), Modelled: true})

		gm := gsmj.Join(w.R, w.S, gsmj.Config{Device: cfg.Device})
		rep.verify("gsmj", z, gm.Summary, w.Expected)
		rows[5].Cells = append(rows[5].Cells, Cell{Duration: gm.Total(), Modelled: true})
	}
	rep.Series = rows
	return rep, nil
}
