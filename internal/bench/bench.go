// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (§III Figure 1, §V Figure 4 and Table I,
// and the §V-B scale-up experiment) against this repository's
// implementations, and verifies every run against the oracle.
//
// Experiment scale is configurable; the paper's 32M-tuple tables are far
// beyond this reproduction's single-core host (see DESIGN.md §1), so the
// default is 256K tuples, overridable via Config.Tuples or the
// SKEWJOIN_TUPLES environment variable.
package bench

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"time"

	"skewjoin/internal/asciiplot"
	"skewjoin/internal/cbase"
	"skewjoin/internal/csh"
	"skewjoin/internal/exec"
	"skewjoin/internal/gbase"
	"skewjoin/internal/gpusim"
	"skewjoin/internal/gsh"
	"skewjoin/internal/npj"
	"skewjoin/internal/oracle"
	"skewjoin/internal/outbuf"
	"skewjoin/internal/relation"
	"skewjoin/internal/zipf"
)

// DefaultTuples is the default table cardinality (per table).
const DefaultTuples = 1 << 18

// Config parameterises the experiments.
type Config struct {
	// Tuples per input table (0 = SKEWJOIN_TUPLES env or DefaultTuples).
	Tuples int
	// Threads for the CPU algorithms (0 = all available).
	Threads int
	// Seed for workload generation.
	Seed int64
	// Zipfs are the zipf factors swept by the figure experiments
	// (default 0.0 .. 1.0 step 0.1).
	Zipfs []float64
	// TableZipfs are the factors of the Table I breakdown
	// (default 0.5 .. 1.0 step 0.1).
	TableZipfs []float64
	// Device configures the simulated GPU for the GPU runs (zero fields =
	// A100). Shrinking SharedMemBytes reproduces the paper's ratio of
	// skewed-key frequency to partition capacity at scaled-down table
	// sizes (see EXPERIMENTS.md).
	Device gpusim.Config
	// Repeats is the number of times Speedup and Large run each algorithm,
	// keeping the fastest time (default 3). Wall-clock noise on shared
	// hosts otherwise dominates the CPU ratios.
	Repeats int
	// SplitMinWinNs lowers the split planner's absolute win floor for the
	// co-processing benchmark (0 = the engine default, 25ms). Smoke runs
	// at reduced table sizes set it to ~1ms so the planner still faces a
	// real decision instead of degenerating on the floor alone.
	SplitMinWinNs int64
}

// Defaults fills zero fields.
func (c Config) Defaults() Config {
	if c.Tuples <= 0 {
		c.Tuples = DefaultTuples
		if env := os.Getenv("SKEWJOIN_TUPLES"); env != "" {
			if n, err := strconv.Atoi(env); err == nil && n > 0 {
				c.Tuples = n
			}
		}
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if len(c.Zipfs) == 0 {
		for z := 0.0; z < 1.05; z += 0.1 {
			c.Zipfs = append(c.Zipfs, round1(z))
		}
	}
	if len(c.TableZipfs) == 0 {
		c.TableZipfs = []float64{0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	}
	if c.Repeats <= 0 {
		c.Repeats = 3
	}
	return c
}

func round1(z float64) float64 { return float64(int(z*10+0.5)) / 10 }

// Workload is one generated (R, S, expected-result) triple.
type Workload struct {
	Theta    float64
	R, S     relation.Relation
	Expected outbuf.Summary
}

// MakeWorkload generates the paper's workload for one zipf factor and
// computes its ground truth.
func MakeWorkload(n int, theta float64, seed int64) (Workload, error) {
	g, err := zipf.New(zipf.Config{Theta: theta, Universe: n, Seed: seed})
	if err != nil {
		return Workload{}, err
	}
	r, s := g.Pair(n)
	w := Workload{Theta: theta, R: r, S: s, Expected: oracle.ExpectedParallel(r, s, exec.DefaultThreads())}
	// The oracle's frequency maps are garbage by now; collect them before
	// timing starts so CPU phase times are not polluted by GC pauses.
	runtime.GC()
	return w, nil
}

// Cell is one measured value: a duration plus whether it was modelled
// (GPU) or measured (CPU wall-clock).
type Cell struct {
	Duration time.Duration
	Modelled bool
}

// Series is one named line of a figure: a value per swept zipf factor.
type Series struct {
	Name  string
	Cells []Cell
}

// Report is the result of one experiment: a grid of series over the swept
// zipf factors, plus any verification errors.
type Report struct {
	Title  string
	Zipfs  []float64
	Series []Series
	Errors []string
}

// verify appends an error if a run's summary deviates from the oracle.
func (rep *Report) verify(alg string, theta float64, got, want outbuf.Summary) {
	if got != want {
		rep.Errors = append(rep.Errors,
			fmt.Sprintf("%s @ zipf %.1f: output %+v, expected %+v", alg, theta, got, want))
	}
}

// Fprint renders the report as an aligned text table, durations in
// engineering units, modelled values marked with '*'.
func (rep *Report) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", rep.Title)
	fmt.Fprintf(w, "%-22s", "zipf")
	for _, z := range rep.Zipfs {
		fmt.Fprintf(w, "%12.1f", z)
	}
	fmt.Fprintln(w)
	for _, s := range rep.Series {
		fmt.Fprintf(w, "%-22s", s.Name)
		for _, c := range s.Cells {
			fmt.Fprintf(w, "%12s", FormatCell(c))
		}
		fmt.Fprintln(w)
	}
	for _, e := range rep.Errors {
		fmt.Fprintf(w, "VERIFICATION FAILED: %s\n", e)
	}
	fmt.Fprintln(w)
}

// Plot renders the report's series as a log-scale ASCII chart, making the
// figure shapes (flat partition lines, exploding join curves, crossovers)
// visible in a terminal.
func (rep *Report) Plot(w io.Writer) {
	series := make([]asciiplot.Series, len(rep.Series))
	for i, s := range rep.Series {
		ys := make([]float64, len(s.Cells))
		for j, c := range s.Cells {
			ys[j] = c.Duration.Seconds()
		}
		series[i] = asciiplot.Series{Name: s.Name, Ys: ys}
	}
	asciiplot.Render(w, rep.Title+" (log-scale seconds; GPU series are modelled)", rep.Zipfs, series, 0)
}

// FormatCell renders a cell like "12.3ms" or "4.56s*" (modelled).
func FormatCell(c Cell) string {
	s := FormatDuration(c.Duration)
	if c.Modelled {
		s += "*"
	}
	return s
}

// FormatDuration renders a duration with three significant figures in the
// most natural unit.
func FormatDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.1fus", float64(d)/float64(time.Microsecond))
	default:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	}
}

// Fig1 reproduces Figure 1: the execution times of the two baselines,
// broken into partition and join phases, as the zipf factor grows. It
// demonstrates the paper's motivating observation — partition time is flat
// while join time rockets.
func Fig1(cfg Config) (*Report, error) {
	cfg = cfg.Defaults()
	rep := &Report{Title: "Figure 1: performance impact of skewed join keys (baselines)", Zipfs: cfg.Zipfs}
	var cpart, cjoin, gpart, gjoin Series
	cpart.Name, cjoin.Name = "Cbase partition", "Cbase join"
	gpart.Name, gjoin.Name = "Gbase partition", "Gbase join"
	for _, z := range cfg.Zipfs {
		w, err := MakeWorkload(cfg.Tuples, z, cfg.Seed)
		if err != nil {
			return nil, err
		}
		cb := cbase.Join(w.R, w.S, cbase.Config{Threads: cfg.Threads})
		rep.verify("cbase", z, cb.Summary, w.Expected)
		cpart.Cells = append(cpart.Cells, Cell{Duration: phase(cb.Phases, "partition")})
		cjoin.Cells = append(cjoin.Cells, Cell{Duration: phase(cb.Phases, "join")})

		gb := gbase.Join(w.R, w.S, gbase.Config{Device: cfg.Device})
		rep.verify("gbase", z, gb.Summary, w.Expected)
		gpart.Cells = append(gpart.Cells, Cell{Duration: phase(gb.Phases, "partition"), Modelled: true})
		gjoin.Cells = append(gjoin.Cells, Cell{Duration: phase(gb.Phases, "join"), Modelled: true})
	}
	rep.Series = []Series{cpart, cjoin, gpart, gjoin}
	return rep, nil
}

// Fig4a reproduces Figure 4a: total CPU join time (Cbase, cbase-npj, CSH)
// varying the zipf factor.
func Fig4a(cfg Config) (*Report, error) {
	cfg = cfg.Defaults()
	rep := &Report{Title: "Figure 4a: CPU hash join performance varying the zipf factor", Zipfs: cfg.Zipfs}
	var sc, sn, ss Series
	sc.Name, sn.Name, ss.Name = "Cbase", "cbase-npj", "CSH"
	for _, z := range cfg.Zipfs {
		w, err := MakeWorkload(cfg.Tuples, z, cfg.Seed)
		if err != nil {
			return nil, err
		}
		cb := cbase.Join(w.R, w.S, cbase.Config{Threads: cfg.Threads})
		rep.verify("cbase", z, cb.Summary, w.Expected)
		sc.Cells = append(sc.Cells, Cell{Duration: cb.Total()})

		np := npj.Join(w.R, w.S, npj.Config{Threads: cfg.Threads})
		rep.verify("cbase-npj", z, np.Summary, w.Expected)
		sn.Cells = append(sn.Cells, Cell{Duration: np.Total()})

		cs := csh.Join(w.R, w.S, csh.Config{Threads: cfg.Threads})
		rep.verify("csh", z, cs.Summary, w.Expected)
		ss.Cells = append(ss.Cells, Cell{Duration: cs.Total()})
	}
	rep.Series = []Series{sc, sn, ss}
	return rep, nil
}

// Fig4b reproduces Figure 4b: total (modelled) GPU join time (Gbase, GSH)
// varying the zipf factor.
func Fig4b(cfg Config) (*Report, error) {
	cfg = cfg.Defaults()
	rep := &Report{Title: "Figure 4b: GPU hash join performance varying the zipf factor", Zipfs: cfg.Zipfs}
	var sg, ss Series
	sg.Name, ss.Name = "Gbase", "GSH"
	for _, z := range cfg.Zipfs {
		w, err := MakeWorkload(cfg.Tuples, z, cfg.Seed)
		if err != nil {
			return nil, err
		}
		gb := gbase.Join(w.R, w.S, gbase.Config{Device: cfg.Device})
		rep.verify("gbase", z, gb.Summary, w.Expected)
		sg.Cells = append(sg.Cells, Cell{Duration: gb.Total(), Modelled: true})

		gs := gsh.Join(w.R, w.S, gsh.Config{Device: cfg.Device})
		rep.verify("gsh", z, gs.Summary, w.Expected)
		ss.Cells = append(ss.Cells, Cell{Duration: gs.Total(), Modelled: true})
	}
	rep.Series = []Series{sg, ss}
	return rep, nil
}

// Table1 reproduces Table I: the execution-time breakdown of all four
// partitioned joins for zipf factors 0.5–1.0, with the paper's exact rows.
func Table1(cfg Config) (*Report, error) {
	cfg = cfg.Defaults()
	rep := &Report{Title: "Table I: execution time breakdown", Zipfs: cfg.TableZipfs}
	rows := make([]Series, 8)
	names := []string{
		"Cbase partition", "Cbase join",
		"CSH sample+part", "CSH NM-join",
		"Gbase partition", "Gbase join",
		"GSH partition", "GSH all other",
	}
	for i := range rows {
		rows[i].Name = names[i]
	}
	for _, z := range cfg.TableZipfs {
		w, err := MakeWorkload(cfg.Tuples, z, cfg.Seed)
		if err != nil {
			return nil, err
		}
		cb := cbase.Join(w.R, w.S, cbase.Config{Threads: cfg.Threads})
		rep.verify("cbase", z, cb.Summary, w.Expected)
		rows[0].Cells = append(rows[0].Cells, Cell{Duration: phase(cb.Phases, "partition")})
		rows[1].Cells = append(rows[1].Cells, Cell{Duration: phase(cb.Phases, "join")})

		cs := csh.Join(w.R, w.S, csh.Config{Threads: cfg.Threads})
		rep.verify("csh", z, cs.Summary, w.Expected)
		rows[2].Cells = append(rows[2].Cells, Cell{Duration: cs.SamplePlusPartition()})
		rows[3].Cells = append(rows[3].Cells, Cell{Duration: phase(cs.Phases, "nmjoin")})

		gb := gbase.Join(w.R, w.S, gbase.Config{Device: cfg.Device})
		rep.verify("gbase", z, gb.Summary, w.Expected)
		rows[4].Cells = append(rows[4].Cells, Cell{Duration: phase(gb.Phases, "partition"), Modelled: true})
		rows[5].Cells = append(rows[5].Cells, Cell{Duration: phase(gb.Phases, "join"), Modelled: true})

		gs := gsh.Join(w.R, w.S, gsh.Config{Device: cfg.Device})
		rep.verify("gsh", z, gs.Summary, w.Expected)
		rows[6].Cells = append(rows[6].Cells, Cell{Duration: phase(gs.Phases, "partition"), Modelled: true})
		rows[7].Cells = append(rows[7].Cells, Cell{Duration: gs.AllOther(), Modelled: true})
	}
	rep.Series = rows
	return rep, nil
}

// SpeedupReport summarises the paper's headline claims: the maximum
// improvement of CSH over Cbase and of GSH over Gbase across the
// medium-to-high skew range (paper: up to 8.0x and 13.5x for zipf 0.5–1.0).
type SpeedupReport struct {
	Zipfs      []float64
	CSHSpeedup []float64 // Cbase total / CSH total per zipf
	GSHSpeedup []float64 // Gbase total / GSH total per zipf
	MaxCSH     float64
	MaxGSH     float64
	Errors     []string
}

// Fprint renders the speedup report.
func (sr *SpeedupReport) Fprint(w io.Writer) {
	fmt.Fprintln(w, "== Speedups over the baselines (paper: up to 8.0x CPU, 13.5x GPU) ==")
	fmt.Fprintf(w, "%-14s", "zipf")
	for _, z := range sr.Zipfs {
		fmt.Fprintf(w, "%9.1f", z)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-14s", "CSH vs Cbase")
	for _, v := range sr.CSHSpeedup {
		fmt.Fprintf(w, "%8.2fx", v)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-14s", "GSH vs Gbase")
	for _, v := range sr.GSHSpeedup {
		fmt.Fprintf(w, "%8.2fx", v)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "max CSH speedup: %.2fx, max GSH speedup: %.2fx\n", sr.MaxCSH, sr.MaxGSH)
	for _, e := range sr.Errors {
		fmt.Fprintf(w, "VERIFICATION FAILED: %s\n", e)
	}
	fmt.Fprintln(w)
}

// Speedup computes the speedup sweep over the medium-to-high skew range.
func Speedup(cfg Config) (*SpeedupReport, error) {
	cfg = cfg.Defaults()
	sr := &SpeedupReport{Zipfs: cfg.TableZipfs}
	for _, z := range cfg.TableZipfs {
		w, err := MakeWorkload(cfg.Tuples, z, cfg.Seed)
		if err != nil {
			return nil, err
		}
		cbT, cbS := bestOf(cfg.Repeats, func() (time.Duration, outbuf.Summary) {
			res := cbase.Join(w.R, w.S, cbase.Config{Threads: cfg.Threads})
			return res.Total(), res.Summary
		})
		csT, csS := bestOf(cfg.Repeats, func() (time.Duration, outbuf.Summary) {
			res := csh.Join(w.R, w.S, csh.Config{Threads: cfg.Threads})
			return res.Total(), res.Summary
		})
		gbT, gbS := bestOf(1, func() (time.Duration, outbuf.Summary) { // modelled: deterministic
			res := gbase.Join(w.R, w.S, gbase.Config{Device: cfg.Device})
			return res.Total(), res.Summary
		})
		gsT, gsS := bestOf(1, func() (time.Duration, outbuf.Summary) {
			res := gsh.Join(w.R, w.S, gsh.Config{Device: cfg.Device})
			return res.Total(), res.Summary
		})
		for _, chk := range []struct {
			name string
			got  outbuf.Summary
		}{{"cbase", cbS}, {"csh", csS}, {"gbase", gbS}, {"gsh", gsS}} {
			if chk.got != w.Expected {
				sr.Errors = append(sr.Errors,
					fmt.Sprintf("%s @ zipf %.1f: output %+v, expected %+v", chk.name, z, chk.got, w.Expected))
			}
		}
		cshUp := ratio(cbT, csT)
		gshUp := ratio(gbT, gsT)
		sr.CSHSpeedup = append(sr.CSHSpeedup, cshUp)
		sr.GSHSpeedup = append(sr.GSHSpeedup, gshUp)
		if cshUp > sr.MaxCSH {
			sr.MaxCSH = cshUp
		}
		if gshUp > sr.MaxGSH {
			sr.MaxGSH = gshUp
		}
	}
	return sr, nil
}

// LargeReport is the §V-B scale-up experiment: bigger tables at zipf 0.7.
type LargeReport struct {
	Tuples                 int
	CbaseTotal, CSHTotal   time.Duration
	GbaseTotal, GSHTotal   time.Duration
	CSHSpeedup, GSHSpeedup float64
	Errors                 []string
}

// Fprint renders the scale-up report.
func (lr *LargeReport) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== Scale-up experiment (zipf 0.7, %d tuples/table; paper: CSH 3.5x, GSH 10.4x) ==\n", lr.Tuples)
	fmt.Fprintf(w, "Cbase %s   CSH %s   -> %.2fx\n",
		FormatDuration(lr.CbaseTotal), FormatDuration(lr.CSHTotal), lr.CSHSpeedup)
	fmt.Fprintf(w, "Gbase %s*  GSH %s*  -> %.2fx\n",
		FormatDuration(lr.GbaseTotal), FormatDuration(lr.GSHTotal), lr.GSHSpeedup)
	for _, e := range lr.Errors {
		fmt.Fprintf(w, "VERIFICATION FAILED: %s\n", e)
	}
	fmt.Fprintln(w)
}

// Large runs the scale-up experiment. The paper scales 32M-tuple tables to
// 560M (17.5x); this reproduction scales the configured size by 8x, which
// preserves the regime (see DESIGN.md §1).
func Large(cfg Config) (*LargeReport, error) {
	cfg = cfg.Defaults()
	n := cfg.Tuples * 8
	w, err := MakeWorkload(n, 0.7, cfg.Seed)
	if err != nil {
		return nil, err
	}
	lr := &LargeReport{Tuples: n}
	cbT, cbS := bestOf(cfg.Repeats, func() (time.Duration, outbuf.Summary) {
		res := cbase.Join(w.R, w.S, cbase.Config{Threads: cfg.Threads})
		return res.Total(), res.Summary
	})
	csT, csS := bestOf(cfg.Repeats, func() (time.Duration, outbuf.Summary) {
		res := csh.Join(w.R, w.S, csh.Config{Threads: cfg.Threads})
		return res.Total(), res.Summary
	})
	gbT, gbS := bestOf(1, func() (time.Duration, outbuf.Summary) {
		res := gbase.Join(w.R, w.S, gbase.Config{Device: cfg.Device})
		return res.Total(), res.Summary
	})
	gsT, gsS := bestOf(1, func() (time.Duration, outbuf.Summary) {
		res := gsh.Join(w.R, w.S, gsh.Config{Device: cfg.Device})
		return res.Total(), res.Summary
	})
	for _, chk := range []struct {
		name string
		got  outbuf.Summary
	}{{"cbase", cbS}, {"csh", csS}, {"gbase", gbS}, {"gsh", gsS}} {
		if chk.got != w.Expected {
			lr.Errors = append(lr.Errors,
				fmt.Sprintf("%s: output %+v, expected %+v", chk.name, chk.got, w.Expected))
		}
	}
	lr.CbaseTotal, lr.CSHTotal = cbT, csT
	lr.GbaseTotal, lr.GSHTotal = gbT, gsT
	lr.CSHSpeedup = ratio(cbT, csT)
	lr.GSHSpeedup = ratio(gbT, gsT)
	return lr, nil
}

// bestOf runs fn `repeats` times and returns the fastest time with its
// summary.
func bestOf(repeats int, fn func() (time.Duration, outbuf.Summary)) (time.Duration, outbuf.Summary) {
	bestT, bestS := fn()
	for i := 1; i < repeats; i++ {
		if t, s := fn(); t < bestT {
			bestT, bestS = t, s
		}
	}
	return bestT, bestS
}

func ratio(base, mine time.Duration) float64 {
	if mine <= 0 {
		return 0
	}
	return float64(base) / float64(mine)
}

func phase(ps []exec.Phase, name string) time.Duration {
	var sum time.Duration
	for _, p := range ps {
		if p.Name == name {
			sum += p.Duration
		}
	}
	return sum
}
