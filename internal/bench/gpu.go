// GPU-simulation A/B benchmark: the machine-readable perf baseline for
// the host-parallel gpusim overhaul. cmd/skewbench -exp gpu runs it and
// can write the result as BENCH_gpu.json, the artifact future PRs compare
// against.
//
// Each cell runs one GPU algorithm on one zipf workload under one
// HostParallelism setting and records both clocks: the *modelled* device
// time (which must be bit-identical across every variant — parallel host
// execution may never change simulated results) and the *wall-clock* time
// the host spent producing it (which is what HostParallelism improves).
// The seed/control pair re-measures the serial path twice — an A/A
// estimate of the harness noise floor against which the parallel speedups
// must be read.
package bench

import (
	"fmt"
	"io"
	"time"

	"skewjoin/internal/exec"
	"skewjoin/internal/gbase"
	"skewjoin/internal/gpusim"
	"skewjoin/internal/gsh"
	"skewjoin/internal/gsmj"
	"skewjoin/internal/outbuf"
)

// GPUVariant is one measured HostParallelism setting.
type GPUVariant struct {
	Name            string `json:"name"`
	HostParallelism int    `json:"host_parallelism"`
}

// gpuVariants returns the sweep: the serial seed path, an A/A control row
// re-measuring it, a single-worker pool (isolates pool overhead from
// parallel speedup), and one worker per host core.
func gpuVariants() []GPUVariant {
	n := exec.DefaultThreads()
	v := []GPUVariant{
		{Name: "seed(serial)", HostParallelism: 0},
		{Name: "control(serial)", HostParallelism: 0},
		{Name: "par1", HostParallelism: 1},
	}
	if n > 1 {
		v = append(v, GPUVariant{Name: fmt.Sprintf("par%d", n), HostParallelism: n})
	}
	return v
}

// GPUCell is one measured algorithm/zipf/variant combination. WallNS is
// the minimum wall-clock time across the repeat runs; ModelledNS and
// Phases are the simulated device time, identical for every run and every
// variant of one (algo, zipf) pair by construction — any deviation is
// reported as an error, not averaged away.
type GPUCell struct {
	Algo            string           `json:"algo"`
	Zipf            float64          `json:"zipf"`
	Variant         string           `json:"variant"`
	HostParallelism int              `json:"host_parallelism"`
	WallNS          int64            `json:"wall_ns"`
	ModelledNS      int64            `json:"modelled_ns"`
	Phases          map[string]int64 `json:"phases_ns"`
}

// GPUReport is the full GPU-simulation benchmark: the committed
// BENCH_gpu.json is exactly this structure.
type GPUReport struct {
	Tuples   int          `json:"tuples"`
	Seed     int64        `json:"seed"`
	Repeats  int          `json:"repeats"`
	HostCPUs int          `json:"host_cpus"`
	Zipfs    []float64    `json:"zipfs"`
	Variants []GPUVariant `json:"variants"`
	Cells    []GPUCell    `json:"cells"`
	Errors   []string     `json:"errors,omitempty"`
}

// gpuZipfs is the default skew sweep: uniform, the paper's medium point,
// and full skew (where one launch's blocks are most unbalanced and
// dynamic host scheduling matters most).
var gpuZipfs = []float64{0.0, 0.5, 1.0}

// gpuRun is the outcome of one simulated join: the two clocks, the
// modelled phase breakdown, and the verifiable output summary.
type gpuRun struct {
	wall    time.Duration
	summary outbuf.Summary
	trace   []gpusim.LaunchRecord
}

// GPUBench measures the GPU algorithms under the HostParallelism sweep.
// Zipf factors come from cfg.Zipfs when the caller overrode them,
// otherwise the default three-point sweep is used.
func GPUBench(cfg Config) (*GPUReport, error) {
	zipfs := gpuZipfs
	if len(cfg.Zipfs) > 0 && len(cfg.Zipfs) != 11 {
		// An explicit -zipf list (the full 11-point default means "unset").
		zipfs = cfg.Zipfs
	}
	cfg = cfg.Defaults()
	variants := gpuVariants()
	rep := &GPUReport{
		Tuples:   cfg.Tuples,
		Seed:     cfg.Seed,
		Repeats:  cfg.Repeats,
		HostCPUs: exec.DefaultThreads(),
		Zipfs:    zipfs,
		Variants: variants,
	}

	algos := []string{"gbase", "gsh", "gsmj"}
	for _, z := range zipfs {
		w, err := MakeWorkload(cfg.Tuples, z, cfg.Seed)
		if err != nil {
			return nil, err
		}
		for _, algo := range algos {
			cells := make([]GPUCell, len(variants))
			for vi, v := range variants {
				cells[vi] = GPUCell{
					Algo: algo, Zipf: z,
					Variant: v.Name, HostParallelism: v.HostParallelism,
				}
			}
			runGPU(algo, w, cfg.Device, variants[0].HostParallelism) // warm-up, discarded
			for it := 0; it < cfg.Repeats; it++ {
				for k := range variants {
					// Interleave the variants across repeat rounds, rotating
					// the start position, so host noise spreads evenly.
					vi := (it + k) % len(variants)
					r := runGPU(algo, w, cfg.Device, variants[vi].HostParallelism)
					if r.summary != w.Expected {
						rep.Errors = append(rep.Errors, fmt.Sprintf(
							"%s %s @ zipf %.1f: output mismatch", algo, variants[vi].Name, z))
						continue
					}
					foldGPU(&cells[vi], r, rep)
				}
			}
			// Modelled time must agree across every variant of the cell:
			// host parallelism may change only the wall clock.
			for vi := 1; vi < len(cells); vi++ {
				if cells[vi].ModelledNS != cells[0].ModelledNS {
					rep.Errors = append(rep.Errors, fmt.Sprintf(
						"%s %s @ zipf %.1f: modelled time %d ns differs from serial %d ns",
						algo, cells[vi].Variant, z, cells[vi].ModelledNS, cells[0].ModelledNS))
				}
			}
			rep.Cells = append(rep.Cells, cells...)
		}
	}
	return rep, nil
}

// runGPU executes one simulated join through the internal package so the
// launch records are available for the phase breakdown.
func runGPU(algo string, w Workload, dev gpusim.Config, hostPar int) gpuRun {
	dev.HostParallelism = hostPar
	start := time.Now()
	switch algo {
	case "gbase":
		res := gbase.Join(w.R, w.S, gbase.Config{Device: dev})
		return gpuRun{wall: time.Since(start), summary: res.Summary, trace: res.Trace}
	case "gsh":
		res := gsh.Join(w.R, w.S, gsh.Config{Device: dev})
		return gpuRun{wall: time.Since(start), summary: res.Summary, trace: res.Trace}
	default:
		res := gsmj.Join(w.R, w.S, gsmj.Config{Device: dev})
		return gpuRun{wall: time.Since(start), summary: res.Summary, trace: res.Trace}
	}
}

// foldGPU folds one run into the cell: minimum wall clock across runs,
// and the modelled breakdown — pinned by the first run, checked (not
// re-minimised) by every later one, since simulation is deterministic.
func foldGPU(c *GPUCell, r gpuRun, rep *GPUReport) {
	wall := r.wall.Nanoseconds()
	phases := make(map[string]int64)
	var modelled int64
	for _, rec := range r.trace {
		phases[rec.PhaseLabel] += rec.Duration.Nanoseconds()
		modelled += rec.Duration.Nanoseconds()
	}
	if c.Phases == nil {
		c.WallNS = wall
		c.ModelledNS = modelled
		c.Phases = phases
		return
	}
	if wall < c.WallNS {
		c.WallNS = wall
	}
	if modelled != c.ModelledNS {
		rep.Errors = append(rep.Errors, fmt.Sprintf(
			"%s %s @ zipf %.1f: modelled time changed across repeats (%d ns vs %d ns)",
			c.Algo, c.Variant, c.Zipf, modelled, c.ModelledNS))
	}
}

// Fprint renders the report as aligned text: one block per zipf factor,
// one line per algo/variant with both clocks and the speedup of each
// variant over the seed row of its (algo, zipf) pair.
func (rep *GPUReport) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== GPU-simulation A/B benchmark (n=%d, host cpus=%d, best of %d) ==\n",
		rep.Tuples, rep.HostCPUs, rep.Repeats)
	fmt.Fprintf(w, "wall = host time simulating; modelled = simulated device time (identical across variants)\n")
	for _, z := range rep.Zipfs {
		fmt.Fprintf(w, "-- zipf %.1f --\n", z)
		seedWall := map[string]int64{}
		for _, c := range rep.Cells {
			if c.Zipf == z && c.Variant == "seed(serial)" {
				seedWall[c.Algo] = c.WallNS
			}
		}
		for _, c := range rep.Cells {
			if c.Zipf != z {
				continue
			}
			speedup := ""
			if base := seedWall[c.Algo]; base > 0 && c.WallNS > 0 {
				speedup = fmt.Sprintf("  %5.2fx", float64(base)/float64(c.WallNS))
			}
			fmt.Fprintf(w, "%-6s %-16s  wall %10s%s  modelled %10s\n",
				c.Algo, c.Variant,
				FormatDuration(time.Duration(c.WallNS)), speedup,
				FormatDuration(time.Duration(c.ModelledNS)))
		}
	}
	for _, e := range rep.Errors {
		fmt.Fprintf(w, "VERIFICATION FAILED: %s\n", e)
	}
	fmt.Fprintln(w)
}
