package bench

import (
	"fmt"
	"io"

	"skewjoin/internal/cbase"
	"skewjoin/internal/gbase"
	"skewjoin/internal/gsh"
	"skewjoin/internal/relation"
)

// AnalysisReport quantifies the paper's §III diagnosis of *why* the
// baselines degrade under skew, per zipf factor: the frequency of the most
// popular key, the longest hash chain a Cbase build table sees, the output
// share of Cbase's single largest join task (its load-balancing failure),
// Gbase's S-side re-probing caused by sub-lists, the SIMT lane-slots Gbase
// wastes to divergence, and the skewed tuples GSH detects and diverts.
type AnalysisReport struct {
	Zipfs []float64
	Rows  []AnalysisRow
}

// AnalysisRow is the diagnosis at one zipf factor.
type AnalysisRow struct {
	Zipf             float64
	TopKeyFreq       int     // tuples sharing the most popular key in R
	MaxChain         int     // longest chain across Cbase build tables
	MaxTaskShare     float64 // fraction of all output produced by Cbase's largest task
	GbaseSubLists    int     // sub-list blocks Gbase spawned
	GbaseSReprobes   uint64  // extra S probes those sub-lists cost
	GbaseDivergence  uint64  // lane-slots wasted to divergence in Gbase
	GSHSkewedKeys    int     // keys GSH detected as skewed
	GSHSkewedTuplesR int     // R tuples GSH diverted
}

// Analysis runs the three diagnostic algorithms across the sweep.
func Analysis(cfg Config) (*AnalysisReport, error) {
	cfg = cfg.Defaults()
	rep := &AnalysisReport{Zipfs: cfg.Zipfs}
	for _, z := range cfg.Zipfs {
		w, err := MakeWorkload(cfg.Tuples, z, cfg.Seed)
		if err != nil {
			return nil, err
		}
		row := AnalysisRow{Zipf: z}
		row.TopKeyFreq = relation.ComputeStats(w.R).MaxKeyFreq

		// Task splitting is disabled so MaxTaskOutput measures the output
		// share of the largest *partition pair* — the unit skew handling
		// cannot break up (§III: same-key tuples always co-locate).
		cb := cbase.Join(w.R, w.S, cbase.Config{Threads: cfg.Threads, SkewFactor: -1})
		row.MaxChain = cb.Stats.Join.MaxChain
		if cb.Summary.Count > 0 {
			row.MaxTaskShare = float64(cb.Stats.Join.MaxTaskOutput) / float64(cb.Summary.Count)
		}

		gb := gbase.Join(w.R, w.S, gbase.Config{Device: cfg.Device})
		row.GbaseSubLists = gb.Stats.SubListBlocks
		row.GbaseSReprobes = gb.Stats.SReprobes
		row.GbaseDivergence = gb.Stats.Sim.DivergenceWasted

		gs := gsh.Join(w.R, w.S, gsh.Config{Device: cfg.Device})
		row.GSHSkewedKeys = gs.Stats.SkewedKeys
		row.GSHSkewedTuplesR = gs.Stats.SkewedTuplesR

		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// Fprint renders the analysis table.
func (ar *AnalysisReport) Fprint(w io.Writer) {
	fmt.Fprintln(w, "== Skew analysis (the paper's §III diagnosis, quantified) ==")
	fmt.Fprintf(w, "%-6s %10s %10s %12s %10s %12s %12s %9s %12s\n",
		"zipf", "top-key", "max-chain", "max-task", "sub-lists", "S-reprobes",
		"divergence", "GSH-keys", "GSH-tuples")
	for _, r := range ar.Rows {
		fmt.Fprintf(w, "%-6.1f %10d %10d %11.1f%% %10d %12d %12d %9d %12d\n",
			r.Zipf, r.TopKeyFreq, r.MaxChain, 100*r.MaxTaskShare,
			r.GbaseSubLists, r.GbaseSReprobes, r.GbaseDivergence,
			r.GSHSkewedKeys, r.GSHSkewedTuplesR)
	}
	fmt.Fprintln(w)
}
