// Streaming-join benchmark: the machine-readable artifact for the
// streaming symmetric hash join and its early-termination path.
// cmd/skewbench -exp stream runs it and can write BENCH_stream.json.
//
// Each cell runs one operator (the streaming symmetric join, the blocking
// Cbase control, or a second streaming run as the A/A noise yardstick) on
// one zipf workload under one limit, through the public skewjoin.Join API
// — the same path the service takes — and records the milestone clocks:
// time to first staged result, time to the limit, and total wall time.
// Limits are absolute row counts (the interactive regime the operator
// exists for: "show me the first N rows"), each cell also recording the
// fraction of the full output that limit amounts to; limit 0 is the
// no-limit parity run.
//
// The harness gates the tentpole claim: at small limits (≤1% of the
// output) the streaming operator must reach the limit at least
// streamGateRatio times sooner than the blocking control, which cannot
// emit anything until its build side is complete. Cells where the
// blocking control itself finishes under the noise floor are exempt —
// sub-millisecond ratios on a shared host are harness noise, and the A/A
// rows exist precisely to show how large that noise is. The no-limit
// rows check the other direction: on the skewed workloads a full
// streaming scan must stay within streamParityRatio of blocking (it is
// in fact faster there — no partition pass, and the blocking join's hot
// chains hurt it just as much). The uniform full scan is reported but
// not gated: with no skew to amortise, the blocking join's radix
// partition buys cache locality the symmetric join's growing tables
// cannot match, and streaming measures ~1.4x — that is the structural
// price of incremental delivery, not a regression to hide.
package bench

import (
	"fmt"
	"io"
	"time"

	"skewjoin"
	"skewjoin/internal/exec"
)

// StreamCell is one measured (zipf, limit, operator) combination, best of
// the repeat runs by the clock that matters for its regime (time-to-limit
// for limited cells, total time for full runs).
type StreamCell struct {
	Zipf     float64 `json:"zipf"`
	Operator string  `json:"operator"`
	// Limit is the absolute early-termination bound (0 = full join);
	// Fraction is the share of the workload's full output it amounts to.
	Limit    int     `json:"limit"`
	Fraction float64 `json:"fraction"`
	// Milestone clocks, nanoseconds. TimeToLimitNS is 0 for full runs.
	TimeToFirstNS int64 `json:"time_to_first_ns"`
	TimeToLimitNS int64 `json:"time_to_limit_ns,omitempty"`
	TotalNS       int64 `json:"total_ns"`
	// Staged is the number of results delivered; LimitHit reports early
	// termination.
	Staged   uint64 `json:"staged"`
	LimitHit bool   `json:"limit_hit,omitempty"`
}

// StreamReport is the full streaming benchmark: the committed
// BENCH_stream.json is exactly this structure.
type StreamReport struct {
	Tuples  int          `json:"tuples"`
	Seed    int64        `json:"seed"`
	Threads int          `json:"threads"`
	Repeats int          `json:"repeats"`
	Zipfs   []float64    `json:"zipfs"`
	Limits  []int        `json:"limits"`
	Cells   []StreamCell `json:"cells"`
	Errors  []string     `json:"errors,omitempty"`
}

// streamZipfs is the default skew sweep: uniform, the paper's high-skew
// point, and past it — the regime where the blocking control's build side
// is dominated by one chain and the streaming head start is largest.
var streamZipfs = []float64{0.0, 0.9, 1.1}

// streamLimits are the absolute early-termination bounds: three
// interactive sizes spanning two orders of magnitude, plus the no-limit
// parity run. Cells whose limit is ≤1% of the workload's output are the
// gated regime; at larger shares both operators are bounded by emission
// throughput and the build-phase head start washes out.
var streamLimits = []int{100, 1000, 10000, 0}

// streamOperators: the streaming operator under test, the blocking
// control, and an independent second streaming run (A/A) whose ratio to
// the first is the run-to-run noise any gated ratio must be read against.
var streamOperators = []struct {
	name string
	alg  skewjoin.Algorithm
}{
	{"ssj", skewjoin.SSJ},
	{"cbase", skewjoin.Cbase},
	{"ssj-aa", skewjoin.SSJ},
}

const (
	// streamGateRatio: at gated fractions the streaming operator must
	// reach the limit this many times sooner than the blocking control.
	streamGateRatio = 4.0
	// streamGateFraction bounds the gated regime (limit ≤ 1% of output).
	streamGateFraction = 0.01
	// streamGateFloorNs exempts cells whose blocking control reaches the
	// limit under 2ms: at that scale the ratio measures scheduler noise,
	// not operator structure (the smoke configuration lands here).
	streamGateFloorNs = 2e6
	// streamParityRatio bounds the no-limit regression: a full streaming
	// scan may cost at most this multiple of the blocking control (plus
	// the same noise floor on the control's total).
	streamParityRatio = 1.10
	// streamParityMinZipf scopes the parity gate to the skewed cells. The
	// uniform full scan is reported but not gated (see the package
	// comment: the ~1.4x there is the structural cost of skipping the
	// partition pass, constant across commits, not a regression signal).
	streamParityMinZipf = 0.5
)

// StreamBench measures time-to-first-result and time-to-limit across
// zipf, limit fraction and operator.
func StreamBench(cfg Config) (*StreamReport, error) {
	zipfs := streamZipfs
	if len(cfg.Zipfs) > 0 && len(cfg.Zipfs) != 11 {
		zipfs = cfg.Zipfs
	}
	cfg = cfg.Defaults()
	threads := cfg.Threads
	if threads <= 0 {
		threads = exec.DefaultThreads()
	}
	rep := &StreamReport{
		Tuples:  cfg.Tuples,
		Seed:    cfg.Seed,
		Threads: threads,
		Repeats: cfg.Repeats,
		Zipfs:   zipfs,
		Limits:  streamLimits,
	}
	for _, z := range zipfs {
		w, err := MakeWorkload(cfg.Tuples, z, cfg.Seed)
		if err != nil {
			return nil, err
		}
		for _, limit := range streamLimits {
			if limit > 0 && uint64(limit) >= w.Expected.Count {
				// The limit would never be hit; nothing to measure.
				continue
			}
			frac := 0.0
			if limit > 0 {
				frac = float64(limit) / float64(w.Expected.Count)
			}
			group := make([]StreamCell, 0, len(streamOperators))
			for _, op := range streamOperators {
				cell, err := streamCell(w, op.name, op.alg, limit, frac, threads, cfg.Repeats, rep)
				if err != nil {
					return nil, err
				}
				group = append(group, cell)
			}
			checkStreamGroup(group, rep)
			rep.Cells = append(rep.Cells, group...)
		}
	}
	return rep, nil
}

// streamCell measures one (workload, operator, limit) cell, keeping the
// repeat with the best regime clock, and verifies every run: full runs
// against the oracle digest, limited runs for a hit at or above the
// limit.
func streamCell(w Workload, name string, alg skewjoin.Algorithm, limit int, frac float64,
	threads, repeats int, rep *StreamReport) (StreamCell, error) {
	cell := StreamCell{Zipf: w.Theta, Operator: name, Limit: limit, Fraction: frac}
	for it := 0; it < repeats; it++ {
		start := time.Now()
		res, err := skewjoin.Join(alg, w.R, w.S, &skewjoin.Options{Threads: threads, Limit: limit})
		if err != nil {
			return cell, fmt.Errorf("%s limit=%d @ zipf %.2f: %v", name, limit, w.Theta, err)
		}
		total := time.Since(start)
		if limit == 0 {
			if got := res.Summary(); got.Matches != w.Expected.Count || got.Checksum != w.Expected.Checksum {
				rep.Errors = append(rep.Errors, fmt.Sprintf(
					"%s full @ zipf %.2f: output %+v, expected %+v", name, w.Theta, got, w.Expected))
				continue
			}
		} else {
			st := res.Stream
			if st == nil || !st.LimitHit || st.Staged < uint64(limit) || st.Staged > w.Expected.Count {
				rep.Errors = append(rep.Errors, fmt.Sprintf(
					"%s limit=%d @ zipf %.2f: bad termination (stream=%+v, output %d)",
					name, limit, w.Theta, st, w.Expected.Count))
				continue
			}
		}
		better := cell.TotalNS == 0 || int64(total) < cell.TotalNS
		if limit > 0 {
			better = cell.TimeToLimitNS == 0 || res.Stream.LimitNs < cell.TimeToLimitNS
		}
		if better {
			cell.TotalNS = int64(total)
			cell.Staged = res.Matches
			if st := res.Stream; st != nil {
				cell.TimeToFirstNS = st.FirstResultNs
				cell.TimeToLimitNS = st.LimitNs
				cell.LimitHit = st.LimitHit
				cell.Staged = st.Staged
			}
		}
	}
	return cell, nil
}

// checkStreamGroup gates one (zipf, fraction) group: small-limit
// time-to-limit superiority and no-limit parity, both subject to the
// noise floor on the blocking control.
func checkStreamGroup(group []StreamCell, rep *StreamReport) {
	var ssj, cbase *StreamCell
	for i := range group {
		switch group[i].Operator {
		case "ssj":
			ssj = &group[i]
		case "cbase":
			cbase = &group[i]
		}
	}
	if ssj == nil || cbase == nil {
		return
	}
	if ssj.Limit > 0 && ssj.Fraction <= streamGateFraction {
		if cbase.TimeToLimitNS >= streamGateFloorNs && ssj.TimeToLimitNS > 0 &&
			float64(cbase.TimeToLimitNS) < streamGateRatio*float64(ssj.TimeToLimitNS) {
			rep.Errors = append(rep.Errors, fmt.Sprintf(
				"limit=%d @ zipf %.2f: streaming time-to-limit %s is not %.0fx ahead of blocking %s",
				ssj.Limit, ssj.Zipf,
				FormatDuration(time.Duration(ssj.TimeToLimitNS)), streamGateRatio,
				FormatDuration(time.Duration(cbase.TimeToLimitNS))))
		}
	}
	if ssj.Limit == 0 && ssj.Zipf >= streamParityMinZipf && cbase.TotalNS >= streamGateFloorNs &&
		float64(ssj.TotalNS) > streamParityRatio*float64(cbase.TotalNS)+streamGateFloorNs {
		rep.Errors = append(rep.Errors, fmt.Sprintf(
			"full scan @ zipf %.2f: streaming total %s exceeds %.0f%% of blocking %s",
			ssj.Zipf,
			FormatDuration(time.Duration(ssj.TotalNS)), streamParityRatio*100,
			FormatDuration(time.Duration(cbase.TotalNS))))
	}
}

// Fprint renders the report: one block per (zipf, fraction) group, one
// line per operator with the milestone clocks.
func (rep *StreamReport) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== streaming symmetric join benchmark (n=%d, threads=%d, best of %d) ==\n",
		rep.Tuples, rep.Threads, rep.Repeats)
	fmt.Fprintf(w, "gate: at limits <=%.0f%% of output, streaming time-to-limit must lead blocking by %.0fx\n",
		streamGateFraction*100, streamGateRatio)
	for _, z := range rep.Zipfs {
		for _, limit := range rep.Limits {
			header := false
			for _, c := range rep.Cells {
				if c.Zipf != z || c.Limit != limit {
					continue
				}
				if !header {
					if limit == 0 {
						fmt.Fprintf(w, "-- zipf %.2f, full join --\n", z)
					} else {
						fmt.Fprintf(w, "-- zipf %.2f, limit %d (%.3f%% of output) --\n", z, limit, c.Fraction*100)
					}
					header = true
				}
				line := fmt.Sprintf("%-7s first %10s  total %10s  staged %d",
					c.Operator, FormatDuration(time.Duration(c.TimeToFirstNS)),
					FormatDuration(time.Duration(c.TotalNS)), c.Staged)
				if c.Limit > 0 {
					line = fmt.Sprintf("%-7s first %10s  to-limit %10s  total %10s  staged %d",
						c.Operator, FormatDuration(time.Duration(c.TimeToFirstNS)),
						FormatDuration(time.Duration(c.TimeToLimitNS)),
						FormatDuration(time.Duration(c.TotalNS)), c.Staged)
				}
				fmt.Fprintln(w, line)
			}
		}
	}
	for _, e := range rep.Errors {
		fmt.Fprintf(w, "VERIFICATION FAILED: %s\n", e)
	}
	fmt.Fprintln(w)
}
