package bench

import (
	"fmt"
	"io"

	"skewjoin/internal/asciiplot"
	"skewjoin/internal/cbase"
	"skewjoin/internal/csh"
	"skewjoin/internal/gbase"
	"skewjoin/internal/gsh"
	"skewjoin/internal/oracle"
	"skewjoin/internal/outbuf"
	"skewjoin/internal/zipf"
)

// SSkewReport is the extension experiment isolating S-side skew: a
// foreign-key workload where R holds every key exactly once (no R skew at
// all) and S's foreign keys are zipf-distributed.
//
// The paper notes Gbase's sub-list technique "does not handle the data
// skew in table S" (§II-B) — but in its evaluation S skew always comes
// with R skew (shared interval arrays). This experiment separates them,
// and the result is a negative finding that sharpens the paper's: with
// unique R keys the join output is exactly |S|, probe chains have length
// one, and one-sided S skew is benign — the baselines barely degrade, and
// skew detection cannot pay for itself (CSH samples R, finds nothing, and
// rightly degenerates to Cbase). S-side skew only hurts *through* R-side
// multiplicity; the paper's dual-skew workload is the genuinely hard case.
// The experiment also exercises the degenerate corner of the paper's
// skew-join scheme (one block per skewed R tuple — a single block when a
// skewed key has one R tuple) and the S-tiling extension that fixes it.
type SSkewReport struct {
	Zipfs  []float64
	Series []Series
	Errors []string
}

// SSkew runs the foreign-key one-sided-skew sweep.
func SSkew(cfg Config) (*SSkewReport, error) {
	cfg = cfg.Defaults()
	rep := &SSkewReport{Zipfs: cfg.Zipfs}
	rows := make([]Series, 5)
	rows[0].Name = "Cbase"
	rows[1].Name = "CSH"
	rows[2].Name = "Gbase"
	rows[3].Name = "GSH (paper skew-join)"
	rows[4].Name = "GSH (S-tiled)"

	for _, z := range cfg.Zipfs {
		g, err := zipf.New(zipf.Config{Theta: z, Universe: cfg.Tuples / 4, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		r, s := g.FKPair(cfg.Tuples)
		want := oracle.Expected(r, s)
		verify := func(name string, got outbuf.Summary) {
			if got != want {
				rep.Errors = append(rep.Errors,
					fmt.Sprintf("%s @ zipf %.1f: output %+v, expected %+v", name, z, got, want))
			}
		}

		cb := cbase.Join(r, s, cbase.Config{Threads: cfg.Threads})
		verify("cbase", cb.Summary)
		rows[0].Cells = append(rows[0].Cells, Cell{Duration: cb.Total()})

		cs := csh.Join(r, s, csh.Config{Threads: cfg.Threads})
		verify("csh", cs.Summary)
		rows[1].Cells = append(rows[1].Cells, Cell{Duration: cs.Total()})

		gb := gbase.Join(r, s, gbase.Config{Device: cfg.Device})
		verify("gbase", gb.Summary)
		rows[2].Cells = append(rows[2].Cells, Cell{Duration: gb.Total(), Modelled: true})

		gp := gsh.Join(r, s, gsh.Config{Device: cfg.Device, STileTuples: -1})
		verify("gsh-paper", gp.Summary)
		rows[3].Cells = append(rows[3].Cells, Cell{Duration: gp.Total(), Modelled: true})

		gt := gsh.Join(r, s, gsh.Config{Device: cfg.Device})
		verify("gsh-tiled", gt.Summary)
		rows[4].Cells = append(rows[4].Cells, Cell{Duration: gt.Total(), Modelled: true})
	}
	rep.Series = rows
	return rep, nil
}

// Plot renders the report as a log-scale ASCII chart.
func (rep *SSkewReport) Plot(w io.Writer) {
	series := make([]asciiplot.Series, len(rep.Series))
	for i, s := range rep.Series {
		ys := make([]float64, len(s.Cells))
		for j, c := range s.Cells {
			ys[j] = c.Duration.Seconds()
		}
		series[i] = asciiplot.Series{Name: s.Name, Ys: ys}
	}
	asciiplot.Render(w, "S-side-only skew (log-scale seconds; GPU series are modelled)", rep.Zipfs, series, 0)
}

// Fprint renders the report.
func (rep *SSkewReport) Fprint(w io.Writer) {
	fmt.Fprintln(w, "== S-side-only skew: foreign-key workload (extension experiment) ==")
	fmt.Fprintf(w, "%-22s", "zipf")
	for _, z := range rep.Zipfs {
		fmt.Fprintf(w, "%12.1f", z)
	}
	fmt.Fprintln(w)
	for _, s := range rep.Series {
		fmt.Fprintf(w, "%-22s", s.Name)
		for _, c := range s.Cells {
			fmt.Fprintf(w, "%12s", FormatCell(c))
		}
		fmt.Fprintln(w)
	}
	for _, e := range rep.Errors {
		fmt.Fprintf(w, "VERIFICATION FAILED: %s\n", e)
	}
	fmt.Fprintln(w)
}
