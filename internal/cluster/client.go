package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"skewjoin/internal/service"
)

// maxShardBody bounds how much of a shard response the router will read;
// sized for inline relation payloads (extract responses), far above any
// join response.
const maxShardBody = 64 << 20

// shardClient issues JSON calls against one shard with a per-attempt
// timeout and bounded retries on the transient ShardError class, honouring
// the shard's Retry-After when it names one.
type shardClient struct {
	shard   int
	base    string
	hc      *http.Client
	timeout time.Duration
	retries int
	backoff time.Duration
}

// do runs one JSON request against the shard, retrying transient failures
// up to the configured bound. Non-nil errors are always *ShardError.
// Registration retries can land after a lost success and surface as 409;
// that is not retryable by design — the router treats a duplicate fragment
// as already-shipped where it knows the payload is deterministic.
func (c *shardClient) do(ctx context.Context, method, path string, body, out any) error {
	for attempt := 0; ; attempt++ {
		serr := c.once(ctx, method, path, body, out)
		if serr == nil {
			return nil
		}
		if attempt >= c.retries || !serr.Retryable() || ctx.Err() != nil {
			return serr
		}
		// Linear back-off, overridden upward by the shard's own ask.
		wait := c.backoff * time.Duration(attempt+1)
		if ra := time.Duration(serr.RetryAfter) * time.Second; ra > wait {
			wait = ra
		}
		select {
		case <-ctx.Done():
			return serr
		case <-time.After(wait):
		}
	}
}

func (c *shardClient) once(ctx context.Context, method, path string, body, out any) *ShardError {
	fail := func(status int, err error) *ShardError {
		return &ShardError{Shard: c.shard, URL: c.base, Status: status, Err: err}
	}
	cctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return fail(0, err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(cctx, method, c.base+path, rd)
	if err != nil {
		return fail(0, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fail(0, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxShardBody))
	if err != nil {
		return fail(resp.StatusCode, fmt.Errorf("read response: %w", err))
	}
	if resp.StatusCode/100 != 2 {
		se := fail(resp.StatusCode, nil)
		if ra, err := strconv.Atoi(strings.TrimSpace(resp.Header.Get("Retry-After"))); err == nil && ra > 0 {
			se.RetryAfter = ra
		}
		var er service.ErrorResponse
		if json.Unmarshal(raw, &er) == nil && er.Error != "" {
			se.Err = errors.New(er.Error)
		} else {
			se.Err = fmt.Errorf("%s", strings.TrimSpace(string(raw)))
		}
		return se
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			return fail(resp.StatusCode, fmt.Errorf("decode response: %w", err))
		}
	}
	return nil
}
