package cluster

import (
	"sort"

	"skewjoin/internal/relation"
	"skewjoin/internal/service"
	"skewjoin/internal/volcano"
)

// Partial is the merge-relevant slice of one shard call's join response.
// A fleet join produces one Partial per (shard, fragment-pair) call; Merge
// folds them into the single-node-equivalent totals.
type Partial struct {
	Matches  uint64
	Checksum uint64
	Rows     *uint64
	Groups   []service.KeyWeight
}

// PartialOf extracts the mergeable fields from a shard join response.
func PartialOf(r service.JoinResponse) Partial {
	return Partial{Matches: r.Matches, Checksum: r.Checksum, Rows: r.Rows, Groups: r.Groups}
}

// Merge combines the partials of one fleet join. The fragment pairs
// partition the match set — every (r-tuple, s-tuple) match has equal keys,
// so it appears in exactly one cold hash-fragment join or exactly one
// replicated×split hot call — which makes matches, the order-independent
// checksum, and streamed row counts plain sums (the checksum wraps mod
// 2^64 exactly as the single-node accumulation does). Group counts merge
// by key; the result keeps the ascending-key order the service emits.
func Merge(parts []Partial) Partial {
	var out Partial
	var rows uint64
	haveRows := false
	groups := make(map[uint32]uint64)
	for _, p := range parts {
		out.Matches += p.Matches
		out.Checksum += p.Checksum
		if p.Rows != nil {
			haveRows = true
			rows += *p.Rows
		}
		for _, g := range p.Groups {
			groups[g.Key] += g.Weight
		}
	}
	if haveRows {
		out.Rows = &rows
	}
	if len(groups) > 0 {
		out.Groups = sortedGroups(groups)
	}
	return out
}

// TopK selects the k heaviest keys of merged group counts, heaviest first
// with ascending-key ties. Fleet top-k is computed this way — shards
// return exact per-key counts and the router selects over the merged map —
// so the result is exact and deterministic, unlike a single node's
// Misra-Gries sketch whose counters depend on how workers interleave.
func TopK(groups []service.KeyWeight, k int) []service.KeyWeight {
	counts := make(map[relation.Key]uint64, len(groups))
	for _, g := range groups {
		counts[relation.Key(g.Key)] += g.Weight
	}
	top := volcano.SelectTop(counts, k)
	out := make([]service.KeyWeight, 0, len(top))
	for _, kw := range top {
		out = append(out, service.KeyWeight{Key: uint32(kw.Key), Weight: kw.Weight})
	}
	return out
}

func sortedGroups(m map[uint32]uint64) []service.KeyWeight {
	keys := make([]uint32, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]service.KeyWeight, 0, len(keys))
	for _, k := range keys {
		out = append(out, service.KeyWeight{Key: k, Weight: m[k]})
	}
	return out
}
