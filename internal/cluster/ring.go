package cluster

import (
	"sort"

	"skewjoin/internal/hashfn"
	"skewjoin/internal/relation"
)

// Ring is a consistent-hash ring mapping keys to shards. Each shard owns
// `vnodes` points on the ring; a key belongs to the shard owning the first
// point at or after Mix32(key). The layout is a pure function of (shards,
// vnodes), so a restarted router reconstructs the same ownership the
// fleet's catalog was partitioned under.
type Ring struct {
	points []ringPoint
	shards int
}

type ringPoint struct {
	hash  uint32
	shard int
}

// DefaultVNodes is the per-shard virtual-node count. 64 points per shard
// keeps the expected ownership imbalance within a few percent for small
// fleets without making Owner's binary search noticeable.
const DefaultVNodes = 64

// NewRing builds the ring for `shards` shards with `vnodes` points each
// (values < 1 fall back to 1 shard / DefaultVNodes).
func NewRing(shards, vnodes int) *Ring {
	if shards < 1 {
		shards = 1
	}
	if vnodes < 1 {
		vnodes = DefaultVNodes
	}
	pts := make([]ringPoint, 0, shards*vnodes)
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			// Mix32 is bijective, so distinct (shard, vnode) packings get
			// distinct ring positions — no tie-breaking needed.
			pts = append(pts, ringPoint{hash: hashfn.Mix32(uint32(s)<<16 | uint32(v)), shard: s})
		}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].hash < pts[j].hash })
	return &Ring{points: pts, shards: shards}
}

// Shards returns the number of shards on the ring.
func (r *Ring) Shards() int { return r.shards }

// Owner returns the shard owning key k.
func (r *Ring) Owner(k uint32) int {
	h := hashfn.Mix32(k)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// Partition splits rel into one fragment per shard by key ownership,
// preserving relative tuple order within each fragment. Every tuple of a
// key lands on the key's one owner shard — the invariant the router's
// hot-key extraction relies on.
func (r *Ring) Partition(rel relation.Relation) []relation.Relation {
	out := make([]relation.Relation, r.shards)
	for _, t := range rel.Tuples {
		o := r.Owner(uint32(t.Key))
		out[o].Tuples = append(out[o].Tuples, t)
	}
	return out
}
