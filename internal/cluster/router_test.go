package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"skewjoin"
	"skewjoin/internal/oracle"
	"skewjoin/internal/service"
)

// testCluster is a full in-process fleet: N shard servers plus the router,
// all over httptest.
type testCluster struct {
	router   *Router
	routerTS *httptest.Server
	shardTS  []*httptest.Server
}

func newTestCluster(t *testing.T, nShards int, mutate func(*Config)) *testCluster {
	t.Helper()
	tc := &testCluster{}
	urls := make([]string, nShards)
	for i := 0; i < nShards; i++ {
		ts := httptest.NewServer(service.New(service.Config{ThreadBudget: 2, MaxQueue: 8}))
		tc.shardTS = append(tc.shardTS, ts)
		urls[i] = ts.URL
	}
	cfg := Config{ShardURLs: urls, ShardTimeout: 30 * time.Second}
	if mutate != nil {
		mutate(&cfg)
	}
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tc.router = rt
	tc.routerTS = httptest.NewServer(rt)
	t.Cleanup(func() {
		tc.routerTS.Close()
		for _, ts := range tc.shardTS {
			ts.Close()
		}
	})
	return tc
}

func doJSON(t *testing.T, method, url string, body any) (int, http.Header, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, raw
}

func registerZipf(t *testing.T, base, name string, n int, theta float64, seed, stream int64) {
	t.Helper()
	status, _, raw := doJSON(t, "POST", base+"/relations", service.RegisterRequest{
		Name:     name,
		Generate: &service.GenerateSpec{N: n, Zipf: theta, Seed: seed, Stream: stream},
	})
	if status != http.StatusCreated {
		t.Fatalf("register %q: status %d: %s", name, status, raw)
	}
}

func clusterJoin(t *testing.T, base string, req service.JoinRequest) JoinResponse {
	t.Helper()
	status, _, raw := doJSON(t, "POST", base+"/join", req)
	if status != http.StatusOK {
		t.Fatalf("join %+v: status %d: %s", req, status, raw)
	}
	var jr JoinResponse
	if err := json.Unmarshal(raw, &jr); err != nil {
		t.Fatalf("decode join response: %v", err)
	}
	return jr
}

// TestClusterMatchesSingleNodeAndOracle is the tentpole acceptance check:
// for uniform, moderate and heavy skew, a router over 3 shards must return
// summaries, counts, groups and top-k identical to a single-node server
// and to the closed-form oracle — under both routing policies — and auto
// must resolve to frag exactly when the workload is skewed enough to pay.
func TestClusterMatchesSingleNodeAndOracle(t *testing.T) {
	const n = 1 << 14
	tc := newTestCluster(t, 3, nil)
	single := httptest.NewServer(service.New(service.Config{ThreadBudget: 2, MaxQueue: 8}))
	defer single.Close()

	for _, theta := range []float64{0, 0.75, 1.1} {
		seed := int64(40 + int(theta*100))
		rName, sName := "r", "s"
		registerZipf(t, tc.routerTS.URL, rName, n, theta, seed, 1)
		registerZipf(t, tc.routerTS.URL, sName, n, theta, seed, 2)
		registerZipf(t, single.URL, rName, n, theta, seed, 1)
		registerZipf(t, single.URL, sName, n, theta, seed, 2)

		rRel, err := skewjoin.GenerateZipf(n, theta, seed, 1)
		if err != nil {
			t.Fatal(err)
		}
		sRel, err := skewjoin.GenerateZipf(n, theta, seed, 2)
		if err != nil {
			t.Fatal(err)
		}
		want := oracle.Expected(rRel, sRel)

		for _, routing := range []string{"auto", "hash", "frag"} {
			// Summary: matches + checksum against the oracle.
			jr := clusterJoin(t, tc.routerTS.URL, service.JoinRequest{R: rName, S: sName, Routing: routing})
			if jr.Matches != want.Count || jr.Checksum != want.Checksum {
				t.Errorf("theta=%g routing=%s: summary (%d, %#x) != oracle (%d, %#x)",
					theta, routing, jr.Matches, jr.Checksum, want.Count, want.Checksum)
			}
			if jr.Cluster == nil || len(jr.Cluster.Shards) != 3 {
				t.Fatalf("theta=%g routing=%s: missing cluster breakdown: %+v", theta, routing, jr.Cluster)
			}

			// Count consumer.
			jr = clusterJoin(t, tc.routerTS.URL, service.JoinRequest{R: rName, S: sName, Routing: routing, Consumer: "count"})
			if jr.Rows == nil || *jr.Rows != want.Count {
				t.Errorf("theta=%g routing=%s: rows %v != %d", theta, routing, jr.Rows, want.Count)
			}
		}

		// Auto must pick frag exactly when the skew pays for replication.
		jr := clusterJoin(t, tc.routerTS.URL, service.JoinRequest{R: rName, S: sName, Routing: "auto"})
		wantPolicy := "hash"
		if theta >= 1.0 {
			wantPolicy = "frag"
		}
		if jr.Cluster.Policy != wantPolicy {
			t.Errorf("theta=%g: auto resolved to %q, want %q (hot keys %v)",
				theta, jr.Cluster.Policy, wantPolicy, jr.Cluster.HotKeys)
		}

		// Groups: exact per-key counts must be identical to the
		// single-node groups consumer, entry for entry.
		var singleGroups service.JoinResponse
		status, _, raw := doJSON(t, "POST", single.URL+"/join", service.JoinRequest{R: rName, S: sName, Consumer: "groups"})
		if status != http.StatusOK {
			t.Fatalf("single-node groups join: %d: %s", status, raw)
		}
		if err := json.Unmarshal(raw, &singleGroups); err != nil {
			t.Fatal(err)
		}
		for _, routing := range []string{"hash", "frag"} {
			jr := clusterJoin(t, tc.routerTS.URL, service.JoinRequest{R: rName, S: sName, Routing: routing, Consumer: "groups"})
			if len(jr.Groups) != len(singleGroups.Groups) {
				t.Fatalf("theta=%g routing=%s: %d groups, single-node has %d",
					theta, routing, len(jr.Groups), len(singleGroups.Groups))
			}
			for i := range jr.Groups {
				if jr.Groups[i] != singleGroups.Groups[i] {
					t.Fatalf("theta=%g routing=%s: group[%d] = %+v, single-node %+v",
						theta, routing, i, jr.Groups[i], singleGroups.Groups[i])
				}
			}
		}

		// Top-k: the cluster's exact selection must equal selecting over
		// the single-node exact groups.
		wantTop := TopK(singleGroups.Groups, 5)
		jr = clusterJoin(t, tc.routerTS.URL, service.JoinRequest{R: rName, S: sName, Routing: "auto", Consumer: "topk", K: 5})
		if len(jr.TopKeys) != len(wantTop) {
			t.Fatalf("theta=%g: topk returned %d keys, want %d", theta, len(jr.TopKeys), len(wantTop))
		}
		for i := range wantTop {
			if jr.TopKeys[i] != wantTop[i] {
				t.Errorf("theta=%g: topk[%d] = %+v, want %+v", theta, i, jr.TopKeys[i], wantTop[i])
			}
		}

		// Reset the catalogs for the next theta.
		for _, name := range []string{rName, sName} {
			if status, _, raw := doJSON(t, "DELETE", tc.routerTS.URL+"/relations/"+name, nil); status != http.StatusNoContent {
				t.Fatalf("drop %q: %d: %s", name, status, raw)
			}
			if status, _, _ := doJSON(t, "DELETE", single.URL+"/relations/"+name, nil); status != http.StatusNoContent {
				t.Fatalf("single-node drop %q failed", name)
			}
		}
	}
}

// TestClusterRelationLifecycle covers the catalog mirror: list/get carry
// the cached stats (TopKeys included — the hot-key rule's input), and
// drops cascade to shard fragments.
func TestClusterRelationLifecycle(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	registerZipf(t, tc.routerTS.URL, "r", 1<<13, 1.1, 5, 1)
	registerZipf(t, tc.routerTS.URL, "s", 1<<13, 1.1, 5, 2)

	status, _, raw := doJSON(t, "GET", tc.routerTS.URL+"/relations/r", nil)
	if status != http.StatusOK {
		t.Fatalf("get relation: %d: %s", status, raw)
	}
	var info service.RelationInfo
	if err := json.Unmarshal(raw, &info); err != nil {
		t.Fatal(err)
	}
	if info.Tuples != 1<<13 || len(info.TopKeys) == 0 {
		t.Fatalf("router relation info lacks stats: %+v", info)
	}
	// Duplicate registration must 409 without disturbing the catalog.
	status, _, _ = doJSON(t, "POST", tc.routerTS.URL+"/relations", service.RegisterRequest{
		Name: "r", Generate: &service.GenerateSpec{N: 16, Zipf: 0, Seed: 1},
	})
	if status != http.StatusConflict {
		t.Fatalf("duplicate register: status %d, want 409", status)
	}

	// A frag join ships fragments; dropping the relations must remove
	// every shard-side registration, fragments included.
	clusterJoin(t, tc.routerTS.URL, service.JoinRequest{R: "r", S: "s", Routing: "frag"})
	for _, name := range []string{"r", "s"} {
		if status, _, _ := doJSON(t, "DELETE", tc.routerTS.URL+"/relations/"+name, nil); status != http.StatusNoContent {
			t.Fatalf("drop %q: %d", name, status)
		}
	}
	for i, ts := range tc.shardTS {
		status, _, raw := doJSON(t, "GET", ts.URL+"/relations", nil)
		if status != http.StatusOK {
			t.Fatal("shard list failed")
		}
		var infos []service.RelationInfo
		if err := json.Unmarshal(raw, &infos); err != nil {
			t.Fatal(err)
		}
		if len(infos) != 0 {
			t.Errorf("shard %d still holds %d relations after drop: %+v", i, len(infos), infos)
		}
	}
}

// TestClusterShardDown maps an unreachable shard to 502 for joins and
// rolls a partially-shipped registration back.
func TestClusterShardDown(t *testing.T) {
	tc := newTestCluster(t, 3, func(c *Config) {
		c.Retries = -1 // no retries: the shard is gone, fail fast
		c.ShardTimeout = 2 * time.Second
	})
	registerZipf(t, tc.routerTS.URL, "r", 1<<12, 0.9, 8, 1)
	registerZipf(t, tc.routerTS.URL, "s", 1<<12, 0.9, 8, 2)

	tc.shardTS[1].Close()

	status, _, raw := doJSON(t, "POST", tc.routerTS.URL+"/join", service.JoinRequest{R: "r", S: "s"})
	if status != http.StatusBadGateway {
		t.Fatalf("join with shard down: status %d, want 502: %s", status, raw)
	}
	var er service.ErrorResponse
	if err := json.Unmarshal(raw, &er); err != nil || er.Error == "" {
		t.Fatalf("502 body lacks the error: %s", raw)
	}

	// Registration with a dead shard fails and must leave no trace on the
	// survivors.
	status, _, _ = doJSON(t, "POST", tc.routerTS.URL+"/relations", service.RegisterRequest{
		Name: "t", Generate: &service.GenerateSpec{N: 1 << 10, Zipf: 0.5, Seed: 3},
	})
	if status != http.StatusBadGateway {
		t.Fatalf("register with shard down: status %d, want 502", status)
	}
	for _, i := range []int{0, 2} {
		_, _, raw := doJSON(t, "GET", tc.shardTS[i].URL+"/relations/t", nil)
		var infos service.RelationInfo
		if json.Unmarshal(raw, &infos) == nil && infos.Name == "t" {
			t.Errorf("shard %d kept rolled-back relation %q", i, "t")
		}
	}
	if status, _, _ := doJSON(t, "GET", tc.routerTS.URL+"/relations/t", nil); status != http.StatusNotFound {
		t.Errorf("router kept rolled-back relation: status %d", status)
	}
}

// TestClusterRetryRecovers exercises the bounded-retry path: a shard that
// sheds the first join attempt with 503 and serves the second must not
// surface an error to the client.
func TestClusterRetryRecovers(t *testing.T) {
	const n = 1 << 12
	failures := 2
	var inner http.Handler
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/join" && failures > 0 {
			failures--
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"transient"}`, http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer flaky.Close()
	inner = service.New(service.Config{ThreadBudget: 2, MaxQueue: 8})

	healthy := httptest.NewServer(service.New(service.Config{ThreadBudget: 2, MaxQueue: 8}))
	defer healthy.Close()

	rt, err := NewRouter(Config{
		ShardURLs:    []string{flaky.URL, healthy.URL},
		Retries:      2,
		RetryBackoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt)
	defer ts.Close()

	registerZipf(t, ts.URL, "r", n, 0.9, 4, 1)
	registerZipf(t, ts.URL, "s", n, 0.9, 4, 2)
	rRel, _ := skewjoin.GenerateZipf(n, 0.9, 4, 1)
	sRel, _ := skewjoin.GenerateZipf(n, 0.9, 4, 2)
	want := oracle.Expected(rRel, sRel)

	jr := clusterJoin(t, ts.URL, service.JoinRequest{R: "r", S: "s"})
	if jr.Matches != want.Count || jr.Checksum != want.Checksum {
		t.Errorf("retried join summary (%d, %#x) != oracle (%d, %#x)", jr.Matches, jr.Checksum, want.Count, want.Checksum)
	}
	if failures != 0 {
		t.Errorf("flaky shard was never retried (remaining failures %d)", failures)
	}
}

// TestClusterShedsWith429 pins router-level admission: with shard 0's
// budget held and no queue, a join is shed with 429 and a Retry-After.
func TestClusterShedsWith429(t *testing.T) {
	tc := newTestCluster(t, 2, func(c *Config) {
		c.ShardBudget = 1
		c.ShardQueue = -1
	})
	registerZipf(t, tc.routerTS.URL, "r", 1<<10, 0.5, 6, 1)
	registerZipf(t, tc.routerTS.URL, "s", 1<<10, 0.5, 6, 2)

	release, err := tc.router.shards[0].adm.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	status, hdr, raw := doJSON(t, "POST", tc.routerTS.URL+"/join", service.JoinRequest{R: "r", S: "s"})
	if status != http.StatusTooManyRequests {
		t.Fatalf("join with budget held: status %d, want 429: %s", status, raw)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 response carries no Retry-After")
	}
	var er service.ErrorResponse
	if err := json.Unmarshal(raw, &er); err != nil || er.Error == "" {
		t.Errorf("429 body lacks the error: %s", raw)
	}

	st := statsOf(t, tc.routerTS.URL)
	if st.Shed == 0 {
		t.Error("/cluster/stats shed counter did not move")
	}
}

// TestClusterTimeoutMaps504 bounds a wedged shard: when a shard sits on
// /join past the request deadline, the client gets 504.
func TestClusterTimeoutMaps504(t *testing.T) {
	var inner http.Handler
	stuck := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/join" {
			select {
			case <-stuck:
			case <-r.Context().Done():
			}
			http.Error(w, `{"error":"too late"}`, http.StatusInternalServerError)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer slow.Close()
	// Unblock the handler before slow.Close() (defers run LIFO) so the
	// server shutdown does not wait out its connection-drain timeout.
	defer close(stuck)
	inner = service.New(service.Config{ThreadBudget: 2, MaxQueue: 8})

	rt, err := NewRouter(Config{
		ShardURLs: []string{slow.URL},
		Retries:   -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt)
	defer ts.Close()

	registerZipf(t, ts.URL, "r", 1<<10, 0.5, 2, 1)
	registerZipf(t, ts.URL, "s", 1<<10, 0.5, 2, 2)

	status, _, raw := doJSON(t, "POST", ts.URL+"/join", service.JoinRequest{R: "r", S: "s", TimeoutMS: 100})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("join against stuck shard: status %d, want 504: %s", status, raw)
	}
}

func statsOf(t *testing.T, base string) StatsResponse {
	t.Helper()
	status, _, raw := doJSON(t, "GET", base+"/cluster/stats", nil)
	if status != http.StatusOK {
		t.Fatalf("GET /cluster/stats: %d: %s", status, raw)
	}
	var st StatsResponse
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestClusterStatsAggregates checks the fleet stats view: every shard
// appears healthy with its own snapshot, and the fleet join counter moves.
func TestClusterStatsAggregates(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	registerZipf(t, tc.routerTS.URL, "r", 1<<12, 1.1, 9, 1)
	registerZipf(t, tc.routerTS.URL, "s", 1<<12, 1.1, 9, 2)
	clusterJoin(t, tc.routerTS.URL, service.JoinRequest{R: "r", S: "s", Routing: "frag"})

	st := statsOf(t, tc.routerTS.URL)
	if len(st.Shards) != 3 {
		t.Fatalf("stats cover %d shards, want 3", len(st.Shards))
	}
	for _, sh := range st.Shards {
		if !sh.Healthy || sh.Stats == nil {
			t.Errorf("shard %d unhealthy in stats: %+v", sh.Shard, sh.Error)
			continue
		}
		if sh.Stats.Admission.Completed == 0 {
			t.Errorf("shard %d reports no completed joins", sh.Shard)
		}
	}
	if st.Joins == 0 {
		t.Error("fleet join counter did not move")
	}
	if len(st.Relations) != 2 {
		t.Errorf("stats list %d relations, want 2", len(st.Relations))
	}

	// The relation catalog only lives on the router + shards; confirm the
	// single-node tier rejects routed requests outright (fail-loudly
	// contract the router relies on).
	status, _, raw := doJSON(t, "POST", tc.shardTS[0].URL+"/join",
		service.JoinRequest{R: "r", S: "s", Routing: "frag"})
	if status != http.StatusBadRequest {
		t.Errorf("shard accepted a routed request: status %d: %s", status, raw)
	}
}
