package cluster

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"skewjoin"
	"skewjoin/internal/relation"
	"skewjoin/internal/service"
)

// Config tunes the router. Zero values get sensible defaults; only
// ShardURLs is required.
type Config struct {
	// ShardURLs are the shards' base URLs in ring order. The ring layout
	// is a pure function of the shard count, so a restarted router with
	// the same list reconstructs the same catalog ownership.
	ShardURLs []string
	// VNodes is the consistent-hash points per shard (default
	// DefaultVNodes).
	VNodes int
	// HotFactor scales the fragment-and-replicate threshold: a key is hot
	// when its estimated output reaches HotFactor times the fair per-shard
	// share (default 1.5).
	HotFactor float64
	// MaxHotKeys caps the carved-out key set per join (default 16, the
	// catalog's TopKeys depth).
	MaxHotKeys int
	// ShardTimeout bounds each shard call attempt (default 30s).
	ShardTimeout time.Duration
	// Retries is the per-call retry bound on transient shard failures
	// (default 2; negative disables retries).
	Retries int
	// RetryBackoff is the base back-off between retries, grown linearly
	// and overridden upward by a shard's Retry-After (default 100ms).
	RetryBackoff time.Duration
	// ShardBudget and ShardQueue configure the router-side per-shard
	// admission: at most ShardBudget fleet joins run against a shard at
	// once, ShardQueue more may wait, and the rest are shed with 429
	// (defaults 4 and 8; ShardQueue < 0 means no queue).
	ShardBudget int
	ShardQueue  int
	// DefaultTimeout bounds a whole fleet join when the request sets no
	// timeout_ms (default 60s).
	DefaultTimeout time.Duration
	// HTTPClient overrides the transport (tests inject httptest clients).
	HTTPClient *http.Client
	// SerialJoins runs the join fan-out one shard at a time instead of
	// concurrently. This is a measurement mode for time-shared hosts
	// (skewbench -exp shard): when every shard pins the same core,
	// concurrent calls' wall-clock measures the scheduler's interleaving,
	// while serialized calls make each shard's reported execution time an
	// honest measure of its share of the work — the makespan a fleet with
	// a core per shard would see is then the slowest shard's time. Not for
	// production use: it forfeits fleet parallelism.
	SerialJoins bool
}

func (c Config) defaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.HotFactor <= 0 {
		c.HotFactor = 1.5
	}
	if c.MaxHotKeys <= 0 {
		c.MaxHotKeys = 16
	}
	if c.ShardTimeout <= 0 {
		c.ShardTimeout = 30 * time.Second
	}
	if c.Retries == 0 {
		c.Retries = 2
	}
	if c.Retries < 0 {
		c.Retries = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 100 * time.Millisecond
	}
	if c.ShardBudget <= 0 {
		c.ShardBudget = 4
	}
	if c.ShardQueue == 0 {
		c.ShardQueue = 8
	}
	if c.ShardQueue < 0 {
		c.ShardQueue = 0
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.HTTPClient == nil {
		c.HTTPClient = http.DefaultClient
	}
	return c
}

// shard is the router's handle on one backend: its client, the router-side
// admission gate, and the latency average behind Retry-After estimates.
type shard struct {
	idx    int
	url    string
	client *shardClient
	adm    *service.Admission

	mu     sync.Mutex
	ewmaMS float64 //skewlint:guarded-by mu
}

func (sh *shard) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	sh.mu.Lock()
	if sh.ewmaMS == 0 {
		sh.ewmaMS = ms
	} else {
		sh.ewmaMS = 0.8*sh.ewmaMS + 0.2*ms
	}
	sh.mu.Unlock()
}

func (sh *shard) ewma() float64 {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.ewmaMS
}

// relEntry is the router's catalog record: the relation's wire info (with
// the cached TopKeys the hot-key rule reads) plus its per-shard placement.
type relEntry struct {
	info     service.RelationInfo
	perShard []int // tuples per shard
}

// fragSet records one shipped fragment generation for a join pair: the
// replicated build fragment's name (registered on every shard) and the
// per-shard split probe fragment names ("" where the split was empty and
// the shard runs no hot call).
type fragSet struct {
	r, s string
	tag  string
	rep  string
	spl  []string
}

func fragKey(r, s, tag string) string { return r + "\x00" + s + "\x00" + tag }

// Router is the cluster front door: an http.Handler speaking the
// single-node service API (plus /cluster/stats), backed by N shards.
type Router struct {
	cfg     Config
	ring    *Ring
	shards  []*shard
	mux     *http.ServeMux
	started time.Time

	mu    sync.Mutex
	rels  map[string]*relEntry //skewlint:guarded-by mu
	frags map[string]*fragSet  //skewlint:guarded-by mu

	joins atomic.Uint64
	shed  atomic.Uint64
}

// NewRouter builds a router over the configured shards.
func NewRouter(cfg Config) (*Router, error) {
	cfg = cfg.defaults()
	if len(cfg.ShardURLs) == 0 {
		return nil, errors.New("cluster: no shard URLs configured")
	}
	rt := &Router{
		cfg:     cfg,
		ring:    NewRing(len(cfg.ShardURLs), cfg.VNodes),
		mux:     http.NewServeMux(),
		started: time.Now(),
		rels:    make(map[string]*relEntry),
		frags:   make(map[string]*fragSet),
	}
	for i, u := range cfg.ShardURLs {
		rt.shards = append(rt.shards, &shard{
			idx: i,
			url: u,
			client: &shardClient{
				shard:   i,
				base:    u,
				hc:      cfg.HTTPClient,
				timeout: cfg.ShardTimeout,
				retries: cfg.Retries,
				backoff: cfg.RetryBackoff,
			},
			adm: service.NewAdmission(cfg.ShardBudget, cfg.ShardQueue),
		})
	}
	rt.mux.HandleFunc("POST /relations", rt.handleRegister)
	rt.mux.HandleFunc("GET /relations", rt.handleListRelations)
	rt.mux.HandleFunc("GET /relations/{name}", rt.handleGetRelation)
	rt.mux.HandleFunc("DELETE /relations/{name}", rt.handleDropRelation)
	rt.mux.HandleFunc("POST /join", rt.handleJoin)
	rt.mux.HandleFunc("GET /cluster/stats", rt.handleClusterStats)
	rt.mux.HandleFunc("GET /stats", rt.handleClusterStats)
	rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
	return rt, nil
}

// ServeHTTP implements http.Handler.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rt.mux.ServeHTTP(w, r)
}

const maxRouterBody = 64 << 20 // inline data registration carries relations

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //skewlint:ignore err-drop -- write failure means the client went away; there is no channel left to report on
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, service.ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRouterBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// fanOut runs f once per shard on its own goroutine and returns the first
// (lowest-shard) error. It always waits for every shard, so callers may
// touch their per-shard slots as soon as it returns.
func fanOut(ctx context.Context, shards []*shard, f func(ctx context.Context, sh *shard) error) error {
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for _, sh := range shards {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			errs[sh.idx] = f(ctx, sh)
		}(sh)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// fanOutSeq is fanOut without the concurrency: shards run one at a time
// in ring order, stopping at the first error (Config.SerialJoins).
func fanOutSeq(ctx context.Context, shards []*shard, f func(ctx context.Context, sh *shard) error) error {
	for _, sh := range shards {
		if err := f(ctx, sh); err != nil {
			return err
		}
	}
	return nil
}

// shardFailure maps a failed fan-out to the client-facing status: shard
// 4xx responses pass through (the request itself was bad), everything else
// is a gateway failure — 504 when the fleet deadline expired, 502 for a
// shard that stayed broken through the retry budget.
func shardFailure(w http.ResponseWriter, ctx context.Context, err error) {
	var se *ShardError
	if errors.As(err, &se) {
		switch se.Status {
		case http.StatusBadRequest, http.StatusNotFound, http.StatusConflict:
			writeError(w, se.Status, "%v", err)
			return
		}
	}
	if ctx.Err() != nil {
		writeError(w, http.StatusGatewayTimeout, "cluster call timed out: %v", err)
		return
	}
	writeError(w, http.StatusBadGateway, "%v", err)
}

func encodeRelation(rel relation.Relation) (string, error) {
	var buf bytes.Buffer
	if _, err := rel.WriteTo(&buf); err != nil {
		return "", err
	}
	return base64.StdEncoding.EncodeToString(buf.Bytes()), nil
}

func decodeRelation(data string) (relation.Relation, error) {
	raw, err := base64.StdEncoding.DecodeString(data)
	if err != nil {
		return relation.Relation{}, err
	}
	var rel relation.Relation
	if _, err := rel.ReadFrom(bytes.NewReader(raw)); err != nil {
		return relation.Relation{}, err
	}
	return rel, nil
}

func (rt *Router) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req service.RegisterRequest
	if !decodeBody(w, r, &req) {
		return
	}
	// The router materialises the relation locally — exactly what a single
	// node would serve — then carves it across the ring, so the fleet's
	// catalog is byte-equivalent to a single node's.
	var (
		rel    relation.Relation
		source string
	)
	switch {
	case req.Generate != nil && req.Path == "" && req.Data == "":
		generated, err := skewjoin.GenerateZipf(req.Generate.N, req.Generate.Zipf, req.Generate.Seed, req.Generate.Stream)
		if err != nil {
			writeError(w, http.StatusBadRequest, "generate: %v", err)
			return
		}
		rel = generated
		source = fmt.Sprintf("zipf(n=%d,theta=%g,seed=%d,stream=%d)",
			req.Generate.N, req.Generate.Zipf, req.Generate.Seed, req.Generate.Stream)
	case req.Data != "" && req.Path == "" && req.Generate == nil:
		decoded, err := decodeRelation(req.Data)
		if err != nil {
			writeError(w, http.StatusBadRequest, "data: %v", err)
			return
		}
		rel = decoded
		source = "data"
	default:
		writeError(w, http.StatusBadRequest, "set exactly one of generate and data (the router does not load shard-local paths)")
		return
	}

	stats := relation.ComputeStats(rel)
	parts := rt.ring.Partition(rel)
	entry := &relEntry{
		info:     infoOf(req.Name, source, rel, stats),
		perShard: make([]int, len(parts)),
	}
	for i, p := range parts {
		entry.perShard[i] = p.Len()
	}

	// Reserve the name before shipping so concurrent registrations of the
	// same name fail fast instead of colliding shard-side.
	rt.mu.Lock()
	if _, dup := rt.rels[req.Name]; dup {
		rt.mu.Unlock()
		writeError(w, http.StatusConflict, "relation %q already registered", req.Name)
		return
	}
	rt.rels[req.Name] = entry
	rt.mu.Unlock()

	datas := make([]string, len(parts))
	for i, p := range parts {
		d, err := encodeRelation(p)
		if err != nil {
			rt.forget(req.Name)
			writeError(w, http.StatusInternalServerError, "encode fragment: %v", err)
			return
		}
		datas[i] = d
	}
	err := fanOut(r.Context(), rt.shards, func(ctx context.Context, sh *shard) error {
		return sh.client.do(ctx, "POST", "/relations",
			service.RegisterRequest{Name: req.Name, Data: datas[sh.idx]}, nil)
	})
	if err != nil {
		// Roll back the shards that did accept so a retry starts clean.
		rt.forget(req.Name)
		rt.deleteEverywhere(req.Name)
		shardFailure(w, r.Context(), err)
		return
	}
	writeJSON(w, http.StatusCreated, entry.info)
}

func (rt *Router) forget(name string) {
	rt.mu.Lock()
	delete(rt.rels, name)
	rt.mu.Unlock()
}

// deleteEverywhere best-effort drops name on every shard (404s and
// transport errors are ignored: the shard either never had it or is gone).
func (rt *Router) deleteEverywhere(name string) {
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.ShardTimeout)
	defer cancel()
	fanOut(ctx, rt.shards, func(ctx context.Context, sh *shard) error { //skewlint:ignore err-drop -- best-effort rollback; the closure always returns nil
		sh.client.do(ctx, "DELETE", "/relations/"+name, nil, nil) //skewlint:ignore err-drop -- the shard either never had the relation or is gone; both are fine
		return nil
	})
}

func infoOf(name, source string, rel relation.Relation, st relation.Stats) service.RelationInfo {
	info := service.RelationInfo{
		Name:         name,
		Source:       source,
		Tuples:       st.Tuples,
		Bytes:        rel.Bytes(),
		DistinctKeys: st.DistinctKeys,
		MaxKey:       uint32(st.MaxKey),
		MaxKeyFreq:   st.MaxKeyFreq,
		RegisteredAt: time.Now().UTC().Format(time.RFC3339),
	}
	for _, kf := range st.TopKeys {
		info.TopKeys = append(info.TopKeys, service.KeyFreqInfo{Key: uint32(kf.Key), Freq: kf.Freq})
	}
	return info
}

func (rt *Router) handleListRelations(w http.ResponseWriter, r *http.Request) {
	rt.mu.Lock()
	infos := make([]service.RelationInfo, 0, len(rt.rels))
	for _, e := range rt.rels {
		infos = append(infos, e.info)
	}
	rt.mu.Unlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	writeJSON(w, http.StatusOK, infos)
}

func (rt *Router) handleGetRelation(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	rt.mu.Lock()
	e, ok := rt.rels[name]
	rt.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "relation %q not registered", name)
		return
	}
	writeJSON(w, http.StatusOK, e.info)
}

func (rt *Router) handleDropRelation(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	rt.mu.Lock()
	_, ok := rt.rels[name]
	if ok {
		delete(rt.rels, name)
	}
	// Collect and forget the fragment generations shipped for this
	// relation; their shard-side registrations are dropped below.
	var stale []*fragSet
	for key, fs := range rt.frags {
		if fs.r == name || fs.s == name {
			stale = append(stale, fs)
			delete(rt.frags, key)
		}
	}
	rt.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "relation %q not registered", name)
		return
	}
	rt.deleteEverywhere(name)
	for _, fs := range stale {
		rt.deleteEverywhere(fs.rep)
		for _, spl := range fs.spl {
			if spl != "" {
				rt.deleteEverywhere(spl)
			}
		}
	}
	w.WriteHeader(http.StatusNoContent)
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// Ready only when every shard is: the smoke scripts and rolling
	// restarts key off this.
	err := fanOut(r.Context(), rt.shards, func(ctx context.Context, sh *shard) error {
		return sh.client.do(ctx, "GET", "/healthz", nil, nil)
	})
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err != nil {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "degraded: %v\n", err)
		return
	}
	fmt.Fprintf(w, "ok (%d shards)\n", len(rt.shards))
}

// admitAll takes one slot on every shard's router-side admission gate, in
// ring order (a fixed order means concurrent fleet joins queue FIFO
// instead of deadlocking on partial grants). The returned release frees
// all of them.
//
//skewlint:acquire-order ring -- gates are acquired by ranging rt.shards, which is in ring order
func (rt *Router) admitAll(ctx context.Context) (func(), error) {
	releases := make([]func(), 0, len(rt.shards))
	releaseAll := func() {
		for _, rel := range releases {
			rel()
		}
	}
	for _, sh := range rt.shards {
		rel, err := sh.adm.Acquire(ctx, 1)
		if err != nil {
			releaseAll()
			return nil, err
		}
		releases = append(releases, rel)
	}
	return releaseAll, nil
}

// retryAfterSeconds estimates when shed load should come back: the worst
// shard's queue depth plus one, times its average join latency, divided by
// its concurrency budget — i.e. roughly when the backlog will have
// drained — clamped to [1, 60].
func (rt *Router) retryAfterSeconds() int {
	worst := 1
	for _, sh := range rt.shards {
		st := sh.adm.Snapshot()
		ewma := sh.ewma()
		if ewma <= 0 {
			ewma = 100 // no sample yet: assume a fast join
		}
		secs := int(math.Ceil(float64(st.Queued+1) * ewma / 1000 / float64(rt.cfg.ShardBudget)))
		if secs > worst {
			worst = secs
		}
	}
	if worst > 60 {
		worst = 60
	}
	return worst
}

func (rt *Router) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req service.JoinRequest
	if !decodeBody(w, r, &req) {
		return
	}
	switch req.Routing {
	case "", "auto", "hash", "frag":
	default:
		writeError(w, http.StatusBadRequest, "unknown routing %q (want auto, hash or frag)", req.Routing)
		return
	}
	switch req.Consumer {
	case "", "summary", "count", "topk", "groups":
	default:
		writeError(w, http.StatusBadRequest, "unknown consumer %q (want summary, count, topk, or groups)", req.Consumer)
		return
	}
	rt.mu.Lock()
	re, okR := rt.rels[req.R]
	se, okS := rt.rels[req.S]
	rt.mu.Unlock()
	if !okR {
		writeError(w, http.StatusNotFound, "relation %q not registered", req.R)
		return
	}
	if !okS {
		writeError(w, http.StatusNotFound, "relation %q not registered", req.S)
		return
	}

	var hot hotSet
	if req.Routing != "hash" {
		hot = hotKeys(re.info, se.info, len(rt.shards), rt.cfg.HotFactor, rt.cfg.MaxHotKeys)
	}
	policy := "hash"
	if !hot.empty() {
		policy = "frag"
	}

	timeout := rt.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	queuedAt := time.Now()
	release, err := rt.admitAll(ctx)
	if err != nil {
		if errors.Is(err, service.ErrOverloaded) {
			rt.shed.Add(1)
			w.Header().Set("Retry-After", fmt.Sprintf("%d", rt.retryAfterSeconds()))
			writeError(w, http.StatusTooManyRequests, "cluster overloaded: %v", err)
			return
		}
		writeError(w, http.StatusGatewayTimeout, "timed out after %v waiting for cluster admission", timeout)
		return
	}
	defer release()
	wait := time.Since(queuedAt)

	var fs *fragSet
	if policy == "frag" {
		fs, err = rt.ensureFragments(ctx, req.R, req.S, hot)
		if err != nil {
			shardFailure(w, ctx, err)
			return
		}
	}

	// topk is answered from exact merged group counts, so shards run the
	// "groups" consumer on its behalf.
	shardConsumer := req.Consumer
	if req.Consumer == "topk" || req.Consumer == "summary" {
		shardConsumer = ""
	}
	if req.Consumer == "topk" {
		shardConsumer = "groups"
	}

	type shardOut struct {
		partials []Partial
		info     ShardJoinInfo
		alg      string
		auto     bool
		modelled bool
	}
	outs := make([]shardOut, len(rt.shards))
	spawn := fanOut
	if rt.cfg.SerialJoins {
		spawn = fanOutSeq
	}
	err = spawn(ctx, rt.shards, func(ctx context.Context, sh *shard) error {
		out := &outs[sh.idx]
		out.info.Shard = sh.idx
		for _, call := range rt.callsFor(sh, req, shardConsumer, hot, fs) {
			var jr service.JoinResponse
			start := time.Now()
			if err := sh.client.do(ctx, "POST", "/join", call, &jr); err != nil {
				return err
			}
			sh.observe(time.Since(start))
			out.partials = append(out.partials, PartialOf(jr))
			out.info.Calls++
			out.info.Matches += jr.Matches
			out.info.JoinMS += jr.JoinMS
			if jp := jr.JoinPhase; jp != nil {
				out.info.BusyMS += jp.BuildMS + jp.ProbeMS
			}
			if out.alg == "" {
				out.alg = jr.Algorithm
				out.auto = jr.Auto
			}
			out.modelled = out.modelled || jr.Modelled
		}
		return nil
	})
	if err != nil {
		shardFailure(w, ctx, err)
		return
	}

	var parts []Partial
	infos := make([]ShardJoinInfo, 0, len(outs))
	alg, modelled, auto := "", false, false
	makespanMS := 0.0
	for i, out := range outs {
		parts = append(parts, out.partials...)
		infos = append(infos, out.info)
		if i == 0 {
			alg, auto = out.alg, out.auto
		} else if out.alg != alg {
			alg = "mixed"
		}
		modelled = modelled || out.modelled
		if out.info.JoinMS > makespanMS {
			makespanMS = out.info.JoinMS
		}
	}
	merged := Merge(parts)

	resp := JoinResponse{
		JoinResponse: service.JoinResponse{
			Algorithm: alg,
			Auto:      auto,
			Matches:   merged.Matches,
			Checksum:  merged.Checksum,
			Modelled:  modelled,
			WaitMS:    float64(wait) / float64(time.Millisecond),
			JoinMS:    makespanMS,
		},
		Cluster: &JoinInfo{Policy: policy, HotKeys: hot.keys, Shards: infos},
	}
	switch req.Consumer {
	case "count":
		resp.Rows = merged.Rows
	case "groups":
		resp.Groups = merged.Groups
	case "topk":
		k := req.K
		if k <= 0 {
			k = 5
		}
		resp.TopKeys = TopK(merged.Groups, k)
	}
	rt.joins.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

// callsFor builds the shard's per-join request list: the cold hash-
// fragment join (hot keys excluded under frag), plus the replicated-build
// × split-probe hot call where the shard's split fragment is non-empty.
func (rt *Router) callsFor(sh *shard, req service.JoinRequest, shardConsumer string, hot hotSet, fs *fragSet) []service.JoinRequest {
	base := service.JoinRequest{
		Algorithm:       req.Algorithm,
		Backend:         req.Backend,
		Device:          req.Device,
		Threads:         req.Threads,
		HostParallelism: req.HostParallelism,
		Consumer:        shardConsumer,
	}
	cold := base
	cold.R, cold.S = req.R, req.S
	cold.ExcludeKeys = hot.keys
	calls := []service.JoinRequest{cold}
	if fs != nil && fs.spl[sh.idx] != "" {
		hotCall := base
		hotCall.R, hotCall.S = fs.rep, fs.spl[sh.idx]
		calls = append(calls, hotCall)
	}
	return calls
}

// ensureFragments ships the hot-key fragment generation for (rName, sName,
// hot.tag) if this router has not shipped it yet: the build side's hot
// tuples are pulled off their owner shards and broadcast everywhere under
// one replicated name; the probe side's hot tuples are split round-robin
// so every shard gets an even slice of the heavy key's probe work.
func (rt *Router) ensureFragments(ctx context.Context, rName, sName string, hot hotSet) (*fragSet, error) {
	key := fragKey(rName, sName, hot.tag)
	rt.mu.Lock()
	if fs, ok := rt.frags[key]; ok {
		rt.mu.Unlock()
		return fs, nil
	}
	rt.mu.Unlock()

	relR, err := rt.extractHot(ctx, rName, hot)
	if err != nil {
		return nil, err
	}
	relS, err := rt.extractHot(ctx, sName, hot)
	if err != nil {
		return nil, err
	}

	n := len(rt.shards)
	fs := &fragSet{
		r:   rName,
		s:   sName,
		tag: hot.tag,
		rep: rName + "@rep." + hot.tag,
		spl: make([]string, n),
	}
	splits := make([]relation.Relation, n)
	for i, t := range relS.Tuples {
		splits[i%n].Tuples = append(splits[i%n].Tuples, t)
	}
	repData, err := encodeRelation(relR)
	if err != nil {
		return nil, err
	}
	splData := make([]string, n)
	for i := range splits {
		if splits[i].Len() == 0 {
			continue // shard i runs no hot call for this generation
		}
		fs.spl[i] = sName + "@spl." + hot.tag
		if splData[i], err = encodeRelation(splits[i]); err != nil {
			return nil, err
		}
	}

	err = fanOut(ctx, rt.shards, func(ctx context.Context, sh *shard) error {
		if err := rt.registerFragment(ctx, sh, fs.rep, repData); err != nil {
			return err
		}
		if fs.spl[sh.idx] == "" {
			return nil
		}
		return rt.registerFragment(ctx, sh, fs.spl[sh.idx], splData[sh.idx])
	})
	if err != nil {
		return nil, err
	}

	rt.mu.Lock()
	if prev, ok := rt.frags[key]; ok {
		// A concurrent join shipped the same generation; both shipped
		// identical bytes (the tag pins the content), so either record is
		// right.
		fs = prev
	} else {
		rt.frags[key] = fs
	}
	rt.mu.Unlock()
	return fs, nil
}

// registerFragment registers one fragment, treating 409 as success: a
// fragment name embeds the hot-set tag, so a duplicate holds exactly the
// bytes this shipment would have written (e.g. a concurrent join or a
// previous partially-failed shipment got there first).
func (rt *Router) registerFragment(ctx context.Context, sh *shard, name, data string) error {
	err := sh.client.do(ctx, "POST", "/relations", service.RegisterRequest{Name: name, Data: data}, nil)
	var se *ShardError
	if errors.As(err, &se) && se.Status == http.StatusConflict {
		return nil
	}
	return err
}

// extractHot pulls the hot keys' tuples for one relation off their owner
// shards and concatenates them in shard order — deterministic because each
// key's tuples live wholly on its one owner.
func (rt *Router) extractHot(ctx context.Context, name string, hot hotSet) (relation.Relation, error) {
	n := len(rt.shards)
	byOwner := make([][]uint32, n)
	for _, k := range hot.keys {
		o := rt.ring.Owner(k)
		byOwner[o] = append(byOwner[o], k)
	}
	frags := make([]relation.Relation, n)
	err := fanOut(ctx, rt.shards, func(ctx context.Context, sh *shard) error {
		keys := byOwner[sh.idx]
		if len(keys) == 0 {
			return nil
		}
		var er service.ExtractResponse
		if err := sh.client.do(ctx, "POST", "/relations/"+name+"/extract",
			service.ExtractRequest{Keys: keys}, &er); err != nil {
			return err
		}
		rel, err := decodeRelation(er.Data)
		if err != nil {
			return &ShardError{Shard: sh.idx, URL: sh.url, Err: fmt.Errorf("extract %q: %w", name, err)}
		}
		frags[sh.idx] = rel
		return nil
	})
	if err != nil {
		return relation.Relation{}, err
	}
	var out relation.Relation
	for _, f := range frags {
		out.Tuples = append(out.Tuples, f.Tuples...)
	}
	return out, nil
}

func (rt *Router) handleClusterStats(w http.ResponseWriter, r *http.Request) {
	stats := make([]ShardStats, len(rt.shards))
	fanOut(r.Context(), rt.shards, func(ctx context.Context, sh *shard) error { //skewlint:ignore err-drop -- per-shard failures land in ShardStats.Error; the closure always returns nil
		st := ShardStats{
			Shard:      sh.idx,
			URL:        sh.url,
			EwmaJoinMS: sh.ewma(),
			Admission:  sh.adm.Snapshot(),
		}
		var shardView service.StatsResponse
		if err := sh.client.do(ctx, "GET", "/stats", nil, &shardView); err != nil {
			st.Error = err.Error()
		} else {
			st.Healthy = true
			st.Stats = &shardView
		}
		stats[sh.idx] = st
		return nil
	})
	rt.mu.Lock()
	infos := make([]service.RelationInfo, 0, len(rt.rels))
	for _, e := range rt.rels {
		infos = append(infos, e.info)
	}
	rt.mu.Unlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	writeJSON(w, http.StatusOK, StatsResponse{
		Shards:    stats,
		Relations: infos,
		Joins:     rt.joins.Load(),
		Shed:      rt.shed.Load(),
		UptimeMS:  float64(time.Since(rt.started)) / float64(time.Millisecond),
	})
}
