// Package cluster implements the sharded deployment tier: a thin router
// (cmd/skewrouter) in front of N skewjoind shards, all speaking the
// single-node service API. The router consistent-hashes the relation
// catalog across the shards at registration time, plans joins from the
// catalog's cached statistics, fans the work out, and merges the partial
// results into a response indistinguishable from a single node.
//
// Skew handling follows the paper's fragment-and-replicate rule lifted to
// fleet scale. Under plain hash routing a heavy hitter's entire output —
// quadratic in the key's frequency — lands on the key's one owner shard,
// so a skewed join is as slow as its hottest shard. When the cached
// statistics predict that a key's output exceeds its fair per-shard share,
// the router carves the hot keys out: the build side's hot tuples are
// broadcast to every shard, the probe side's hot tuples are split evenly
// across shards, and every shard joins its hash fragments with those keys
// excluded plus the replicated-build × split-probe fragment pair. Equal
// keys on both sides are required for a match, so the excluded-vs-kept
// cross terms are empty and the partials merge additively — the fleet
// result is exact, only the placement of the hot keys' work changes.
package cluster

import (
	"fmt"
	"net/http"

	"skewjoin/internal/service"
)

// ShardError describes a failed call against one shard: which shard, the
// HTTP status if the shard answered (0 for transport failures), and the
// parsed Retry-After when the shard asked to be called back later. It is
// the error class the router's bounded retry dispatches on.
type ShardError struct {
	Shard      int
	URL        string
	Status     int // HTTP status; 0 when the request never got a response
	RetryAfter int // seconds from the Retry-After header, 0 if absent
	Err        error
}

func (e *ShardError) Error() string {
	if e.Status != 0 {
		return fmt.Sprintf("shard %d (%s): status %d: %v", e.Shard, e.URL, e.Status, e.Err)
	}
	return fmt.Sprintf("shard %d (%s): %v", e.Shard, e.URL, e.Err)
}

func (e *ShardError) Unwrap() error { return e.Err }

// Retryable reports whether the failure is transient: transport errors
// (the connection died, possibly mid-restart) and the shard's own
// back-off statuses. 4xx responses other than 429 are the router's or
// client's bug and retrying would only repeat them.
func (e *ShardError) Retryable() bool {
	switch e.Status {
	case 0:
		return true
	case http.StatusTooManyRequests,
		http.StatusBadGateway,
		http.StatusServiceUnavailable,
		http.StatusGatewayTimeout:
		return true
	}
	return false
}

// JoinResponse is the router's join reply: the single-node response fields
// (so single-node clients and diff-based tests work unchanged) plus the
// per-shard breakdown.
type JoinResponse struct {
	service.JoinResponse
	Cluster *JoinInfo `json:"cluster,omitempty"`
}

// JoinInfo reports how the fleet executed one join.
type JoinInfo struct {
	// Policy is the routing the join actually ran with: "hash" or "frag"
	// (an "auto" request resolves to one of the two).
	Policy string `json:"policy"`
	// HotKeys are the keys the frag policy carved out (empty under hash).
	HotKeys []uint32        `json:"hot_keys,omitempty"`
	Shards  []ShardJoinInfo `json:"shards"`
}

// ShardJoinInfo is one shard's share of a fleet join.
type ShardJoinInfo struct {
	Shard   int    `json:"shard"`
	Calls   int    `json:"calls"`
	Matches uint64 `json:"matches"`
	// JoinMS sums the shard's per-call wall-clock execution times; BusyMS
	// sums the build+probe CPU time its workers reported (thread-CPU
	// clock), which stays meaningful when shards time-share host cores.
	JoinMS float64 `json:"join_ms"`
	BusyMS float64 `json:"busy_ms"`
}

// StatsResponse is the body of GET /cluster/stats: fleet-level counters
// plus every shard's own /stats snapshot and the router's view of it.
type StatsResponse struct {
	Shards    []ShardStats           `json:"shards"`
	Relations []service.RelationInfo `json:"relations"`
	Joins     uint64                 `json:"joins"`
	Shed      uint64                 `json:"shed"`
	UptimeMS  float64                `json:"uptime_ms"`
}

// ShardStats is one shard's entry in the cluster stats aggregation.
type ShardStats struct {
	Shard   int    `json:"shard"`
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	Error   string `json:"error,omitempty"`
	// EwmaJoinMS is the router's moving average of the shard's join-call
	// latency (the Retry-After estimate is derived from it).
	EwmaJoinMS float64 `json:"ewma_join_ms"`
	// Admission is the router-side per-shard admission view; Stats is the
	// shard's own snapshot (nil when the shard was unreachable).
	Admission service.AdmissionStats `json:"admission"`
	Stats     *service.StatsResponse `json:"stats,omitempty"`
}
