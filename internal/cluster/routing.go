package cluster

import (
	"fmt"
	"sort"

	"skewjoin/internal/hashfn"
	"skewjoin/internal/service"
)

// hotSet is one join's fragment-and-replicate decision: the keys carved
// out of hash routing, and the tag naming the fragment generation derived
// from them (fragments are cached per (relation, tag), so two joins over
// the same relations with the same hot set reuse the shipped fragments).
type hotSet struct {
	keys []uint32 // ascending
	tag  string   // 8-hex digest of the sorted key set
}

func (h hotSet) empty() bool { return len(h.keys) == 0 }

// hotKeys applies the fragment-and-replicate rule at fleet scale. Hash
// routing sends a key's entire output — freqR(k)·freqS(k) matches — to its
// one owner shard, while the fleet's fair share per shard is the total
// output over the shard count. A key is hot when its output reaches
// `factor` times that fair share:
//
//	freqR(k) · freqS(k) ≥ factor · totalEst / shards
//
// Frequencies come from the catalog's cached TopKeys; a key missing from
// one side's heavy hitters is assumed to have that side's mean frequency.
// totalEst sums the known heavy pairs plus a uniform estimate for the
// tails. At factor 1.5 a uniform workload (every pair ≈ total/distinct)
// flags nothing, while a zipf(≥1.0) top key — whose output alone is a
// large fraction of the join — always clears the bar.
func hotKeys(r, s service.RelationInfo, shards int, factor float64, maxHot int) hotSet {
	if shards < 2 || maxHot < 1 || r.Tuples == 0 || s.Tuples == 0 {
		return hotSet{}
	}
	fr := freqMap(r)
	fs := freqMap(s)
	avgR := float64(r.Tuples) / float64(maxInt(r.DistinctKeys, 1))
	avgS := float64(s.Tuples) / float64(maxInt(s.DistinctKeys, 1))
	pair := func(k uint32) float64 {
		fv, ok := fr[k]
		if !ok {
			fv = avgR
		}
		gv, ok := fs[k]
		if !ok {
			gv = avgS
		}
		return fv * gv
	}
	union := make(map[uint32]struct{}, len(fr)+len(fs))
	var headR, headS float64
	for k, f := range fr {
		union[k] = struct{}{}
		headR += f
	}
	for k, f := range fs {
		union[k] = struct{}{}
		headS += f
	}
	var headEst float64
	for k := range union {
		headEst += pair(k)
	}
	// The tails — tuples below both top-key cutoffs — are modelled as
	// uniform over the larger distinct count.
	tailPairs := (float64(r.Tuples) - headR) * (float64(s.Tuples) - headS) /
		float64(maxInt(maxInt(r.DistinctKeys, s.DistinctKeys), 1))
	total := headEst + tailPairs
	if total <= 0 {
		return hotSet{}
	}
	threshold := factor * total / float64(shards)

	hot := make([]uint32, 0, maxHot)
	for k := range union {
		if pair(k) >= threshold {
			hot = append(hot, k)
		}
	}
	if len(hot) == 0 {
		return hotSet{}
	}
	// Keep the heaviest maxHot, then fix the set's order (ascending key)
	// so the tag — and with it the fragment cache — is deterministic.
	sort.Slice(hot, func(i, j int) bool {
		pi, pj := pair(hot[i]), pair(hot[j])
		if pi != pj {
			return pi > pj
		}
		return hot[i] < hot[j]
	})
	if len(hot) > maxHot {
		hot = hot[:maxHot]
	}
	sort.Slice(hot, func(i, j int) bool { return hot[i] < hot[j] })
	return hotSet{keys: hot, tag: hotTag(hot)}
}

// hotTag digests a sorted key set into the 8-hex fragment-generation tag.
func hotTag(keys []uint32) string {
	acc := uint64(len(keys))
	for _, k := range keys {
		acc = hashfn.Mix64(acc ^ uint64(k))
	}
	return fmt.Sprintf("%08x", uint32(acc^acc>>32))
}

func freqMap(info service.RelationInfo) map[uint32]float64 {
	m := make(map[uint32]float64, len(info.TopKeys))
	for _, kf := range info.TopKeys {
		m[kf.Key] = float64(kf.Freq)
	}
	return m
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
