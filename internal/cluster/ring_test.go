package cluster

import (
	"testing"

	"skewjoin/internal/relation"
	"skewjoin/internal/zipf"
)

func TestRingOwnerStableAndBalanced(t *testing.T) {
	a := NewRing(5, 64)
	b := NewRing(5, 64)
	counts := make([]int, 5)
	for k := uint32(0); k < 20000; k++ {
		o := a.Owner(k)
		if o < 0 || o >= 5 {
			t.Fatalf("Owner(%d) = %d, out of range", k, o)
		}
		if bo := b.Owner(k); bo != o {
			t.Fatalf("Owner(%d) differs between identical rings: %d vs %d", k, o, bo)
		}
		counts[o]++
	}
	// 64 vnodes keep the expected share within a loose factor-of-two band;
	// anything wilder means the ring construction is broken.
	for s, c := range counts {
		if c < 2000 || c > 8000 {
			t.Errorf("shard %d owns %d of 20000 keys — ring badly imbalanced: %v", s, c, counts)
		}
	}
}

func TestRingPartitionPreservesTuplesAndOwnership(t *testing.T) {
	g, err := zipf.New(zipf.Config{Theta: 0.9, Universe: 1 << 12, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	r, _ := g.Pair(1 << 12)
	ring := NewRing(3, 32)
	parts := ring.Partition(r)
	total := 0
	seen := make(map[relation.Key]int)
	for i, p := range parts {
		total += p.Len()
		for _, tp := range p.Tuples {
			if ring.Owner(uint32(tp.Key)) != i {
				t.Fatalf("tuple with key %d landed on shard %d, owner is %d", tp.Key, i, ring.Owner(uint32(tp.Key)))
			}
			if prev, ok := seen[tp.Key]; ok && prev != i {
				t.Fatalf("key %d split across shards %d and %d", tp.Key, prev, i)
			}
			seen[tp.Key] = i
		}
	}
	if total != r.Len() {
		t.Errorf("partitions hold %d tuples, input had %d", total, r.Len())
	}
}
