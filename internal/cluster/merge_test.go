package cluster

import (
	"testing"

	"skewjoin/internal/csh"
	"skewjoin/internal/oracle"
	"skewjoin/internal/outbuf"
	"skewjoin/internal/relation"
	"skewjoin/internal/service"
	"skewjoin/internal/volcano"
	"skewjoin/internal/zipf"
)

// joinPartial runs one fragment-pair join the way a shard would — groups
// consumer through the volcano sink — and returns its mergeable partial.
func joinPartial(t *testing.T, r, s relation.Relation) Partial {
	t.Helper()
	one := func(outbuf.Result) uint64 { return 1 }
	root := volcano.NewGroupSum(one)
	factory, collect := volcano.Sink(root, func() volcano.Consumer { return volcano.NewGroupSum(one) })
	res := csh.Join(r, s, csh.Config{Threads: 2, Flush: factory})
	collect()
	rows := res.Summary.Count
	groups := make(map[uint32]uint64, len(root.Groups))
	for k, c := range root.Groups {
		groups[uint32(k)] = c
	}
	return Partial{
		Matches:  res.Summary.Count,
		Checksum: res.Summary.Checksum,
		Rows:     &rows,
		Groups:   sortedGroups(groups),
	}
}

func exclude(rel relation.Relation, hot map[relation.Key]struct{}) relation.Relation {
	var out relation.Relation
	for _, tp := range rel.Tuples {
		if _, cut := hot[tp.Key]; !cut {
			out.Tuples = append(out.Tuples, tp)
		}
	}
	return out
}

func only(rel relation.Relation, hot map[relation.Key]struct{}) relation.Relation {
	var out relation.Relation
	for _, tp := range rel.Tuples {
		if _, keep := hot[tp.Key]; keep {
			out.Tuples = append(out.Tuples, tp)
		}
	}
	return out
}

// TestMergeEqualsSingleNodeForAnyPartitioning is the property behind the
// router's correctness: partition a join the cluster's way — hash
// fragments with the hot keys carved out, a replicated build fragment
// joined against round-robin probe splits — under varying shard counts and
// hot-set sizes, and the merged partials must reproduce the single-node
// summary, row count, exact groups, and top-k.
func TestMergeEqualsSingleNodeForAnyPartitioning(t *testing.T) {
	const n = 20000
	g, err := zipf.New(zipf.Config{Theta: 1.0, Universe: n, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	r, s := g.Pair(n)

	want := oracle.Expected(r, s)
	wantGroups := exactGroups(r, s)
	wantTop := TopK(wantGroups, 5)

	stats := relation.ComputeStats(r)
	for _, tc := range []struct {
		name   string
		shards int
		nHot   int
	}{
		{"2shards-nohot", 2, 0},
		{"3shards-1hot", 3, 1},
		{"3shards-4hot", 3, 4},
		{"5shards-16hot", 5, 16},
	} {
		t.Run(tc.name, func(t *testing.T) {
			hot := make(map[relation.Key]struct{}, tc.nHot)
			for _, kf := range stats.TopKeys[:tc.nHot] {
				hot[kf.Key] = struct{}{}
			}
			ring := NewRing(tc.shards, 32)
			rParts := ring.Partition(r)
			sParts := ring.Partition(s)
			hotR := only(r, hot)
			hotS := only(s, hot)

			var parts []Partial
			// Cold calls: each shard joins its hash fragments minus the
			// hot keys.
			for i := 0; i < tc.shards; i++ {
				parts = append(parts, joinPartial(t, exclude(rParts[i], hot), exclude(sParts[i], hot)))
			}
			// Hot calls: the replicated build side against each shard's
			// round-robin probe split.
			if len(hot) > 0 {
				for i := 0; i < tc.shards; i++ {
					var split relation.Relation
					for j := i; j < hotS.Len(); j += tc.shards {
						split.Tuples = append(split.Tuples, hotS.Tuples[j])
					}
					if split.Len() == 0 {
						continue
					}
					parts = append(parts, joinPartial(t, hotR, split))
				}
			}

			merged := Merge(parts)
			if merged.Matches != want.Count || merged.Checksum != want.Checksum {
				t.Fatalf("merged summary (%d, %#x) != single-node (%d, %#x)",
					merged.Matches, merged.Checksum, want.Count, want.Checksum)
			}
			if merged.Rows == nil || *merged.Rows != want.Count {
				t.Fatalf("merged rows %v != %d", merged.Rows, want.Count)
			}
			if len(merged.Groups) != len(wantGroups) {
				t.Fatalf("merged %d groups, single-node has %d", len(merged.Groups), len(wantGroups))
			}
			for i := range wantGroups {
				if merged.Groups[i] != wantGroups[i] {
					t.Fatalf("group[%d] = %+v, want %+v", i, merged.Groups[i], wantGroups[i])
				}
			}
			gotTop := TopK(merged.Groups, 5)
			for i := range wantTop {
				if gotTop[i] != wantTop[i] {
					t.Fatalf("topk[%d] = %+v, want %+v", i, gotTop[i], wantTop[i])
				}
			}
		})
	}
}

// exactGroups computes per-key output counts in closed form.
func exactGroups(r, s relation.Relation) []service.KeyWeight {
	fr := relation.KeyFrequencies(r)
	fs := relation.KeyFrequencies(s)
	m := make(map[uint32]uint64)
	for k, a := range fr {
		if b, ok := fs[k]; ok {
			m[uint32(k)] = uint64(a) * uint64(b)
		}
	}
	return sortedGroups(m)
}

func TestMergeEmptyAndRowless(t *testing.T) {
	out := Merge(nil)
	if out.Matches != 0 || out.Rows != nil || out.Groups != nil {
		t.Errorf("Merge(nil) = %+v, want zero value", out)
	}
	out = Merge([]Partial{{Matches: 3, Checksum: 5}, {Matches: 4, Checksum: 7}})
	if out.Matches != 7 || out.Checksum != 12 || out.Rows != nil {
		t.Errorf("summary-only merge = %+v", out)
	}
}
