package cbase

import (
	"testing"

	"skewjoin/internal/oracle"
	"skewjoin/internal/relation"
	"skewjoin/internal/zipf"
)

func workload(t *testing.T, n int, theta float64, seed int64) (relation.Relation, relation.Relation) {
	t.Helper()
	g, err := zipf.New(zipf.Config{Theta: theta, Universe: n, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	r, s := g.Pair(n)
	return r, s
}

func TestJoinMatchesOracleAcrossSkew(t *testing.T) {
	for _, theta := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		r, s := workload(t, 20000, theta, 42)
		want := oracle.Expected(r, s)
		got := Join(r, s, Config{Threads: 4})
		if got.Summary != want {
			t.Errorf("theta=%.2f: got %+v, want %+v", theta, got.Summary, want)
		}
	}
}

func TestJoinEmptyInputs(t *testing.T) {
	var empty relation.Relation
	r, s := workload(t, 1000, 0.8, 7)
	if res := Join(empty, s, Config{Threads: 2}); res.Summary.Count != 0 {
		t.Errorf("empty R: %d results", res.Summary.Count)
	}
	if res := Join(r, empty, Config{Threads: 2}); res.Summary.Count != 0 {
		t.Errorf("empty S: %d results", res.Summary.Count)
	}
}

func TestThreadCountInvariance(t *testing.T) {
	r, s := workload(t, 15000, 0.9, 9)
	want := oracle.Expected(r, s)
	for _, threads := range []int{1, 2, 7, 16} {
		if got := Join(r, s, Config{Threads: threads}).Summary; got != want {
			t.Errorf("threads=%d: got %+v, want %+v", threads, got, want)
		}
	}
}

func TestRadixBitsInvariance(t *testing.T) {
	r, s := workload(t, 10000, 0.7, 11)
	want := oracle.Expected(r, s)
	for _, bits := range [][2]uint32{{2, 0}, {3, 3}, {8, 0}, {6, 5}, {1, 1}} {
		cfg := Config{Threads: 2, Bits1: bits[0], Bits2: bits[1]}
		if got := Join(r, s, cfg).Summary; got != want {
			t.Errorf("bits=%v: got %+v, want %+v", bits, got, want)
		}
	}
}

func TestExtremeBitsClampedNotFatal(t *testing.T) {
	// Misconfigured radix bits must clamp to a sane fanout instead of
	// attempting a 2^60-partition allocation.
	r, s := workload(t, 2000, 0.5, 19)
	want := oracle.Expected(r, s)
	res := Join(r, s, Config{Threads: 2, Bits1: 30, Bits2: 30})
	if res.Summary != want {
		t.Errorf("got %+v, want %+v", res.Summary, want)
	}
	if res.Stats.Fanout > 1<<20 {
		t.Errorf("fanout %d not clamped", res.Stats.Fanout)
	}
}

func TestSkewHandlingSplitsLargeTasks(t *testing.T) {
	r, s := workload(t, 100000, 1.0, 3)
	res := Join(r, s, Config{Threads: 4})
	if res.Stats.Join.SplitTasks == 0 {
		t.Error("zipf 1.0 should trigger task splitting")
	}
	if res.Stats.Join.MaxChain < 1000 {
		t.Errorf("zipf 1.0 max chain = %d, expected a long chain", res.Stats.Join.MaxChain)
	}

	r, s = workload(t, 100000, 0, 3)
	res = Join(r, s, Config{Threads: 4})
	if res.Stats.Join.MaxChain > 64 {
		t.Errorf("uniform data max chain = %d", res.Stats.Join.MaxChain)
	}
}

func TestSplittingDisabled(t *testing.T) {
	r, s := workload(t, 20000, 0.95, 5)
	want := oracle.Expected(r, s)
	res := Join(r, s, Config{Threads: 2, SkewFactor: -1})
	if res.Stats.Join.SplitTasks != 0 {
		t.Errorf("SkewFactor<0 still split %d tasks", res.Stats.Join.SplitTasks)
	}
	if res.Summary != want {
		t.Errorf("got %+v, want %+v", res.Summary, want)
	}
}

func TestPhasesRecorded(t *testing.T) {
	r, s := workload(t, 5000, 0.5, 13)
	res := Join(r, s, Config{Threads: 2})
	names := map[string]bool{}
	for _, p := range res.Phases {
		names[p.Name] = true
	}
	if !names["partition"] || !names["join"] {
		t.Errorf("phases = %+v", res.Phases)
	}
	if res.Total() <= 0 {
		t.Errorf("total = %v", res.Total())
	}
}

func TestStatsPlausible(t *testing.T) {
	r, s := workload(t, 30000, 0.8, 17)
	res := Join(r, s, Config{Threads: 2})
	if res.Stats.Fanout != 1<<11 {
		t.Errorf("default fanout = %d", res.Stats.Fanout)
	}
	if res.Stats.MaxPartitionR <= 0 || res.Stats.MaxPartitionR > r.Len() {
		t.Errorf("MaxPartitionR = %d", res.Stats.MaxPartitionR)
	}
	if res.Stats.Join.ProbeVisits < res.Summary.Count {
		t.Errorf("probe visits %d < matches %d", res.Stats.Join.ProbeVisits, res.Summary.Count)
	}
}

func TestDuplicateHeavyInput(t *testing.T) {
	// Everything is one key: output is the full cross product.
	n := 500
	keys := make([]relation.Key, n)
	pays := make([]relation.Payload, n)
	for i := range keys {
		keys[i] = 42
		pays[i] = relation.Payload(i)
	}
	r := relation.FromPairs(keys, pays)
	s := relation.FromPairs(keys, pays)
	res := Join(r, s, Config{Threads: 3})
	if res.Summary.Count != uint64(n)*uint64(n) {
		t.Errorf("count = %d, want %d", res.Summary.Count, n*n)
	}
	if res.Summary != oracle.Expected(r, s) {
		t.Error("checksum mismatch on single-key input")
	}
}
