// Package cbase implements the baseline CPU hash join of the paper: the
// parallel radix join of Balkesen et al. (ICDE 2013), which the paper
// denotes Cbase (§II-B).
//
// Cbase consists of a partition phase and a join phase. The partition phase
// is the two-pass parallel radix partitioner from internal/radix (segment
// assignment plus count-then-copy scans in pass 1, a partition-task queue
// in pass 2). In the join phase every pair of R and S partitions is a join
// task in a dynamic task queue (internal/joinphase).
//
// Skew handling (the two techniques the paper attributes to Cbase):
//
//  1. if a partition is much larger than the average, the join task is
//     broken up into smaller probe sub-tasks, and
//  2. the dynamic task queue tolerates load variance across tasks.
//
// Both techniques fail under heavy skew for the reason the paper gives:
// tuples sharing one join key cannot be split across partitions, so the
// chain for a popular key — and therefore the probe work per S tuple —
// grows without bound, and the O(cntR·cntS) pair enumeration for that key
// dominates the join phase regardless of how the probes are distributed.
package cbase

import (
	"context"
	"sync"
	"time"

	"skewjoin/internal/chainedtable"
	"skewjoin/internal/exec"
	"skewjoin/internal/joinphase"
	"skewjoin/internal/outbuf"
	"skewjoin/internal/radix"
	"skewjoin/internal/relation"
)

// Config tunes Cbase.
type Config struct {
	// Threads is the number of worker threads (paper: 20).
	Threads int
	// Bits1/Bits2 are the radix bits of the two partition passes. The
	// defaults give a fanout of 2^11, close to the cache-sized partitions
	// radix joins target at our default table sizes.
	Bits1, Bits2 uint32
	// SkewFactor: a join task whose S partition exceeds SkewFactor times
	// the average partition size is split into probe sub-tasks (the
	// paper's "breaks up the partition into smaller partitions").
	SkewFactor float64
	// OutBufCap is the per-thread output ring capacity (0 = default).
	OutBufCap int
	// Flush optionally installs a per-worker batch consumer on the output
	// buffers (the volcano model's upper operator); the final partial
	// batch is delivered before Join returns.
	Flush func(worker int) outbuf.FlushFunc
	// Scatter selects the partitioner's scatter strategy (default
	// radix.ScatterAuto); both strategies are output-equivalent.
	Scatter radix.ScatterMode
	// Sched selects the dynamic task queue used by partition pass 2 and
	// the join phase (default radix.SchedAtomic).
	Sched radix.SchedMode
	// Probe selects the join phase's probe strategy (default
	// chainedtable.ProbeScalar; ProbeGrouped advances GroupSize chain walks
	// in lock-step). Output-equivalent.
	Probe chainedtable.ProbeMode
	// Layout selects the join phase's build-table layout (default
	// chainedtable.LayoutChained; LayoutCompact stores buckets
	// contiguously). Output-equivalent.
	Layout chainedtable.Layout
	// Ctx optionally cancels the run (nil = never). Cancellation is
	// checked at phase boundaries and between join tasks; a cancelled run
	// reports Result.Canceled and its summary must be discarded.
	Ctx context.Context
}

// Defaults fills zero fields with defaults.
func (c Config) Defaults() Config {
	if c.Threads <= 0 {
		c.Threads = exec.DefaultThreads()
	}
	if c.Bits1 == 0 && c.Bits2 == 0 {
		c.Bits1, c.Bits2 = 6, 5
	}
	c.Bits1, c.Bits2 = radix.ClampBits(c.Bits1, c.Bits2)
	if c.SkewFactor == 0 {
		c.SkewFactor = 4
	}
	return c
}

// Stats reports what happened inside a run, beyond the result summary.
type Stats struct {
	Fanout        int
	MaxPartitionR int // size of the largest R partition
	MaxPartitionS int
	Join          joinphase.Stats
}

// Result is the outcome of one Cbase run.
type Result struct {
	Summary outbuf.Summary
	Phases  []exec.Phase // "partition", "join"
	Stats   Stats
	// Canceled reports that Config.Ctx fired before the run completed; the
	// summary covers only the work done up to that point.
	Canceled bool
}

// Total returns the end-to-end time of the run.
func (r Result) Total() time.Duration {
	var d time.Duration
	for _, p := range r.Phases {
		d += p.Duration
	}
	return d
}

// Join runs Cbase over r and s and returns the verified output summary and
// per-phase breakdown.
func Join(r, s relation.Relation, cfg Config) Result {
	cfg = cfg.Defaults()
	var res Result
	var timer exec.PhaseTimer
	rcfg := radix.Config{
		Threads: cfg.Threads, Bits1: cfg.Bits1, Bits2: cfg.Bits2,
		Scatter: cfg.Scatter, Sched: cfg.Sched, Ctx: cfg.Ctx,
	}

	// The R and S partitioning passes are independent, so they run
	// overlapped with the worker pool split between them in proportion to
	// the table sizes (partition contents are thread-count-invariant, so
	// the overlap is output-equivalent to the sequential passes).
	var pr, ps *radix.Partitioned
	timer.Time("partition", func() {
		if cfg.Threads > 1 {
			rc, sc := rcfg, rcfg
			rc.Threads, sc.Threads = exec.SplitThreads(cfg.Threads, r.Len(), s.Len())
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				pr = radix.Partition(r.Tuples, rc, nil)
			}()
			ps = radix.Partition(s.Tuples, sc, nil)
			wg.Wait()
		} else {
			pr = radix.Partition(r.Tuples, rcfg, nil)
			ps = radix.Partition(s.Tuples, rcfg, nil)
		}
	})
	res.Stats.Fanout = rcfg.Fanout()
	_, res.Stats.MaxPartitionR = pr.MaxPartition()
	_, res.Stats.MaxPartitionS = ps.MaxPartition()
	if cfg.Ctx != nil && cfg.Ctx.Err() != nil {
		res.Canceled = true
		res.Phases = timer.Phases()
		return res
	}

	bufs := make([]*outbuf.Buffer, cfg.Threads)
	for w := range bufs {
		bufs[w] = outbuf.New(cfg.OutBufCap)
		if cfg.Flush != nil {
			bufs[w].SetFlush(cfg.Flush(w))
		}
	}
	timer.Time("join", func() {
		res.Stats.Join = joinphase.Run(pr, ps, joinphase.Config{
			Threads:    cfg.Threads,
			SkewFactor: cfg.SkewFactor,
			Sched:      cfg.Sched,
			Probe:      cfg.Probe,
			Layout:     cfg.Layout,
			Ctx:        cfg.Ctx,
		}, bufs)
		for _, b := range bufs {
			b.Flush()
		}
	})
	res.Canceled = res.Stats.Join.Canceled
	res.Summary = outbuf.Summarize(bufs)
	res.Phases = timer.Phases()
	return res
}
