package cbase

import (
	"fmt"
	"testing"

	"skewjoin/internal/chainedtable"
	"skewjoin/internal/oracle"
)

// TestProbeLayoutKnobsOutputInvariant sweeps the join-phase A/B knobs end
// to end: every (Probe × Layout) combination must reproduce the oracle
// summary on uniform and fully skewed inputs.
func TestProbeLayoutKnobsOutputInvariant(t *testing.T) {
	for _, theta := range []float64{0, 1.0} {
		r, s := workload(t, 15000, theta, 21)
		want := oracle.Expected(r, s)
		for _, probe := range []chainedtable.ProbeMode{chainedtable.ProbeScalar, chainedtable.ProbeGrouped} {
			for _, layout := range []chainedtable.Layout{chainedtable.LayoutChained, chainedtable.LayoutCompact} {
				cfg := Config{Threads: 4, Probe: probe, Layout: layout}
				res := Join(r, s, cfg)
				name := fmt.Sprintf("theta=%g/%s/%s", theta, probe, layout)
				if res.Summary != want {
					t.Errorf("%s: got %+v, want %+v", name, res.Summary, want)
				}
				if res.Stats.Join.ProbeVisits == 0 {
					t.Errorf("%s: zero probe visits", name)
				}
			}
		}
	}
}

// TestJoinTimingSplit checks the BuildNs/ProbeNs plumbing from the join
// phase into Stats: both positive, and their sum bounded by the thread
// count times the recorded join-phase wall clock.
func TestJoinTimingSplit(t *testing.T) {
	const threads = 3
	r, s := workload(t, 30000, 0.8, 23)
	res := Join(r, s, Config{Threads: threads})
	st := res.Stats.Join
	if st.BuildNs <= 0 || st.ProbeNs <= 0 {
		t.Fatalf("BuildNs=%d ProbeNs=%d, want both positive", st.BuildNs, st.ProbeNs)
	}
	var joinWall int64
	for _, p := range res.Phases {
		if p.Name == "join" {
			joinWall = p.Duration.Nanoseconds()
		}
	}
	if joinWall == 0 {
		t.Fatal("no join phase recorded")
	}
	if budget := threads*joinWall + int64(1e6); st.BuildNs+st.ProbeNs > budget {
		t.Errorf("BuildNs+ProbeNs = %d exceeds %d (threads × join wall + grain)",
			st.BuildNs+st.ProbeNs, budget)
	}
}
