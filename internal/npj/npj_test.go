package npj

import (
	"testing"

	"skewjoin/internal/chainedtable"
	"skewjoin/internal/oracle"
	"skewjoin/internal/relation"
	"skewjoin/internal/zipf"
)

func workload(t *testing.T, n int, theta float64, seed int64) (relation.Relation, relation.Relation) {
	t.Helper()
	g, err := zipf.New(zipf.Config{Theta: theta, Universe: n, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	r, s := g.Pair(n)
	return r, s
}

func TestJoinMatchesOracleAcrossSkew(t *testing.T) {
	for _, theta := range []float64{0, 0.5, 1.0} {
		r, s := workload(t, 20000, theta, 42)
		want := oracle.Expected(r, s)
		got := Join(r, s, Config{Threads: 4})
		if got.Summary != want {
			t.Errorf("theta=%.2f: got %+v, want %+v", theta, got.Summary, want)
		}
	}
}

func TestThreadCountInvariance(t *testing.T) {
	r, s := workload(t, 15000, 0.9, 9)
	want := oracle.Expected(r, s)
	for _, threads := range []int{1, 2, 8} {
		if got := Join(r, s, Config{Threads: threads}).Summary; got != want {
			t.Errorf("threads=%d: got %+v, want %+v", threads, got, want)
		}
	}
}

func TestJoinEmptyInputs(t *testing.T) {
	var empty relation.Relation
	r, _ := workload(t, 100, 0.5, 3)
	if res := Join(empty, r, Config{Threads: 2}); res.Summary.Count != 0 {
		t.Errorf("empty R: %d results", res.Summary.Count)
	}
	if res := Join(r, empty, Config{Threads: 2}); res.Summary.Count != 0 {
		t.Errorf("empty S: %d results", res.Summary.Count)
	}
}

func TestPhasesRecorded(t *testing.T) {
	r, s := workload(t, 5000, 0.5, 13)
	res := Join(r, s, Config{Threads: 2})
	if len(res.Phases) != 2 || res.Phases[0].Name != "build" || res.Phases[1].Name != "probe" {
		t.Errorf("phases = %+v", res.Phases)
	}
	if res.Stats.ProbeVisits < res.Summary.Count {
		t.Errorf("probe visits %d < matches %d", res.Stats.ProbeVisits, res.Summary.Count)
	}
}

func TestGroupedProbeEquivalent(t *testing.T) {
	// Grouped probing over the shared table must match the scalar walk in
	// summary AND visit count at every skew level (the chains here are the
	// longest of any CPU join — no partitioning shortens them).
	for _, theta := range []float64{0, 0.8, 1.0} {
		r, s := workload(t, 20000, theta, 17)
		want := oracle.Expected(r, s)
		scalar := Join(r, s, Config{Threads: 4, Probe: chainedtable.ProbeScalar})
		grouped := Join(r, s, Config{Threads: 4, Probe: chainedtable.ProbeGrouped})
		if scalar.Summary != want || grouped.Summary != want {
			t.Errorf("theta=%g: scalar %+v, grouped %+v, want %+v",
				theta, scalar.Summary, grouped.Summary, want)
		}
		if scalar.Stats.ProbeVisits != grouped.Stats.ProbeVisits {
			t.Errorf("theta=%g: scalar visited %d, grouped %d",
				theta, scalar.Stats.ProbeVisits, grouped.Stats.ProbeVisits)
		}
	}
}
