// Package npj implements cbase-npj, the no-partition hash join from the
// same code repository as Cbase that the paper also compares against
// (§V-A). It skips partitioning entirely: all threads build one shared
// chained hash table over R (latch-free CAS insertion), then all threads
// probe it with disjoint segments of S.
//
// Under skew it inherits every chained-hashing pathology — the popular
// key's chain spans millions of entries and each probe of that key walks
// the whole chain — plus it gets no cache locality from partitioning, which
// is why the paper reports it as the worst CPU solution at every skew
// level.
package npj

import (
	"context"
	"time"

	"skewjoin/internal/chainedtable"
	"skewjoin/internal/exec"
	"skewjoin/internal/outbuf"
	"skewjoin/internal/relation"
)

// Config tunes cbase-npj.
type Config struct {
	// Threads is the number of worker threads.
	Threads int
	// Probe selects the probe strategy over the shared table (default
	// chainedtable.ProbeScalar; ProbeGrouped advances GroupSize chain walks
	// in lock-step per worker segment). Output-equivalent.
	Probe chainedtable.ProbeMode
	// OutBufCap is the per-thread output ring capacity (0 = default).
	OutBufCap int
	// Flush optionally installs a per-worker batch consumer on the output
	// buffers (the volcano model's upper operator).
	Flush func(worker int) outbuf.FlushFunc
	// Ctx optionally cancels the run (nil = never). Cancellation is
	// checked at phase boundaries: a cancelled run stops before the next
	// phase and returns with Result.Canceled set.
	Ctx context.Context
}

// Defaults fills zero fields.
func (c Config) Defaults() Config {
	if c.Threads <= 0 {
		c.Threads = exec.DefaultThreads()
	}
	return c
}

// Stats reports internals of a run.
type Stats struct {
	ProbeVisits uint64 // total chain nodes visited during probes
}

// Result is the outcome of one cbase-npj run.
type Result struct {
	Summary outbuf.Summary
	Phases  []exec.Phase // "build", "probe"
	Stats   Stats
	// Canceled reports that Config.Ctx fired before the run completed;
	// the partial Summary and Stats must be discarded.
	Canceled bool
}

// Total returns the end-to-end time of the run.
func (r Result) Total() time.Duration {
	var d time.Duration
	for _, p := range r.Phases {
		d += p.Duration
	}
	return d
}

// Join runs the no-partition join over r and s.
func Join(r, s relation.Relation, cfg Config) Result {
	cfg = cfg.Defaults()
	var res Result
	var timer exec.PhaseTimer
	if cfg.Ctx != nil && cfg.Ctx.Err() != nil {
		res.Canceled = true
		return res
	}

	table := chainedtable.NewConcurrent(r.Tuples)
	timer.Time("build", func() {
		exec.Parallel(cfg.Threads, func(w int) {
			lo, hi := exec.Segment(r.Len(), cfg.Threads, w)
			for i := lo; i < hi; i++ {
				table.Insert(i)
			}
		})
	})

	if cfg.Ctx != nil && cfg.Ctx.Err() != nil {
		res.Canceled = true
		res.Phases = timer.Phases()
		return res
	}

	// Buffers are created (and consumers installed) before the parallel
	// section: Flush factories need not be safe for concurrent calls.
	bufs := make([]*outbuf.Buffer, cfg.Threads)
	for w := range bufs {
		bufs[w] = outbuf.New(cfg.OutBufCap)
		if cfg.Flush != nil {
			bufs[w].SetFlush(cfg.Flush(w))
		}
	}
	visits := make([]uint64, cfg.Threads)
	timer.Time("probe", func() {
		exec.Parallel(cfg.Threads, func(w int) {
			buf := bufs[w]
			lo, hi := exec.Segment(s.Len(), cfg.Threads, w)
			seg := s.Tuples[lo:hi]
			var v uint64
			if cfg.Probe == chainedtable.ProbeGrouped {
				// Grouped probing over the worker's whole S segment: the
				// shared table's chains are the longest in any CPU join here
				// (no partitioning), so overlapping their dependent loads
				// pays off most.
				emit := func(i int, p relation.Payload) { buf.Push(seg[i].Key, p, seg[i].Payload) }
				v = uint64(table.ProbeGroup(seg, emit))
			} else {
				var curKey relation.Key
				var curPS relation.Payload
				emit := func(p relation.Payload) { buf.Push(curKey, p, curPS) }
				for _, ts := range seg {
					curKey, curPS = ts.Key, ts.Payload
					v += uint64(table.Probe(ts.Key, emit))
				}
			}
			visits[w] = v
			buf.Flush()
		})
	})
	for _, v := range visits {
		res.Stats.ProbeVisits += v
	}
	res.Summary = outbuf.Summarize(bufs)
	res.Phases = timer.Phases()
	return res
}
