package smj

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"skewjoin/internal/oracle"
	"skewjoin/internal/relation"
	"skewjoin/internal/zipf"
)

func workload(t *testing.T, n int, theta float64, seed int64) (relation.Relation, relation.Relation) {
	t.Helper()
	g, err := zipf.New(zipf.Config{Theta: theta, Universe: n, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	r, s := g.Pair(n)
	return r, s
}

func TestSortByKey(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tuples := make([]relation.Tuple, 10000)
	for i := range tuples {
		tuples[i] = relation.Tuple{Key: relation.Key(rng.Uint32()), Payload: relation.Payload(i)}
	}
	for _, threads := range []int{1, 4} {
		got := SortByKey(tuples, threads)
		if len(got) != len(tuples) {
			t.Fatalf("threads=%d: length %d", threads, len(got))
		}
		if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i].Key < got[j].Key }) {
			t.Fatalf("threads=%d: not sorted", threads)
		}
		// Multiset preserved: payload sums and counts match.
		var sumIn, sumOut uint64
		for i := range tuples {
			sumIn += uint64(tuples[i].Payload)
			sumOut += uint64(got[i].Payload)
		}
		if sumIn != sumOut {
			t.Fatalf("threads=%d: payloads lost", threads)
		}
	}
}

func TestSortStableForEqualKeys(t *testing.T) {
	tuples := make([]relation.Tuple, 100)
	for i := range tuples {
		tuples[i] = relation.Tuple{Key: relation.Key(i % 3), Payload: relation.Payload(i)}
	}
	got := SortByKey(tuples, 2)
	// Within each key, payloads must appear in input order (LSD stability).
	last := map[relation.Key]relation.Payload{}
	for _, tp := range got {
		if prev, ok := last[tp.Key]; ok && tp.Payload < prev {
			t.Fatalf("key %d: payload %d after %d — not stable", tp.Key, tp.Payload, prev)
		}
		last[tp.Key] = tp.Payload
	}
}

func TestJoinMatchesOracleAcrossSkew(t *testing.T) {
	for _, theta := range []float64{0, 0.5, 1.0} {
		r, s := workload(t, 20000, theta, 42)
		want := oracle.Expected(r, s)
		got := Join(r, s, Config{Threads: 4})
		if got.Summary != want {
			t.Errorf("theta=%.2f: got %+v, want %+v", theta, got.Summary, want)
		}
	}
}

func TestThreadCountInvariance(t *testing.T) {
	r, s := workload(t, 15000, 0.95, 9)
	want := oracle.Expected(r, s)
	for _, threads := range []int{1, 2, 7, 16} {
		if got := Join(r, s, Config{Threads: threads}).Summary; got != want {
			t.Errorf("threads=%d: got %+v, want %+v", threads, got, want)
		}
	}
}

func TestJoinEmptyInputs(t *testing.T) {
	var empty relation.Relation
	r, s := workload(t, 1000, 0.8, 7)
	if res := Join(empty, s, Config{Threads: 2}); res.Summary.Count != 0 {
		t.Errorf("empty R: %d results", res.Summary.Count)
	}
	if res := Join(r, empty, Config{Threads: 2}); res.Summary.Count != 0 {
		t.Errorf("empty S: %d results", res.Summary.Count)
	}
}

func TestSingleHotKeyAcrossWorkers(t *testing.T) {
	// Every tuple shares one key: the run must not be split by the worker
	// cuts, and the cross product must be exact.
	n := 400
	keys := make([]relation.Key, n)
	pays := make([]relation.Payload, n)
	for i := range keys {
		keys[i] = 7
		pays[i] = relation.Payload(i)
	}
	r := relation.FromPairs(keys, pays)
	s := relation.FromPairs(keys, pays)
	res := Join(r, s, Config{Threads: 8})
	if res.Summary.Count != uint64(n)*uint64(n) {
		t.Errorf("count = %d, want %d", res.Summary.Count, n*n)
	}
	if res.Summary != oracle.Expected(r, s) {
		t.Error("checksum mismatch")
	}
	if res.Stats.Runs != 1 {
		t.Errorf("runs = %d, want 1", res.Stats.Runs)
	}
	if res.Stats.MaxRunPair != n*n {
		t.Errorf("MaxRunPair = %d, want %d", res.Stats.MaxRunPair, n*n)
	}
}

func TestPhasesRecorded(t *testing.T) {
	r, s := workload(t, 5000, 0.5, 13)
	res := Join(r, s, Config{Threads: 2})
	if len(res.Phases) != 2 || res.Phases[0].Name != "sort" || res.Phases[1].Name != "merge" {
		t.Errorf("phases = %+v", res.Phases)
	}
}

func TestQuickJoinMatchesOracle(t *testing.T) {
	f := func(rKeys, sKeys []uint8, threadsRaw uint8) bool {
		r := relation.New(len(rKeys))
		for i, k := range rKeys {
			r.Tuples[i] = relation.Tuple{Key: relation.Key(k % 32), Payload: relation.Payload(i)}
		}
		s := relation.New(len(sKeys))
		for i, k := range sKeys {
			s.Tuples[i] = relation.Tuple{Key: relation.Key(k % 32), Payload: relation.Payload(i + 500)}
		}
		threads := int(threadsRaw%8) + 1
		return Join(r, s, Config{Threads: threads}).Summary == oracle.Expected(r, s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
