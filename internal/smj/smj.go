// Package smj implements a parallel sort-merge join — an extension beyond
// the paper's evaluated set, included as the classic alternative in the
// sort-vs-hash debate the paper cites (Kim et al. [13], Balkesen et
// al. [17]).
//
// SMJ is an interesting reference point for skew: its sort phase is
// O(n log n)-ish and completely skew-independent (LSD radix sort passes),
// and its merge phase emits the cross product of each equal-key run with
// purely sequential memory accesses — structurally the same access pattern
// as CSH's skew fast path, but for *every* key. The price is paying the
// full sort even when the data is uniform and a hash join would be
// cheaper.
package smj

import (
	"context"
	"sort"
	"time"

	"skewjoin/internal/exec"
	"skewjoin/internal/outbuf"
	"skewjoin/internal/relation"
)

// Config tunes the sort-merge join.
type Config struct {
	// Threads is the number of worker threads.
	Threads int
	// OutBufCap is the per-thread output ring capacity (0 = default).
	OutBufCap int
	// Flush optionally installs a per-worker batch consumer on the output
	// buffers.
	Flush func(worker int) outbuf.FlushFunc
	// Ctx optionally cancels the run (nil = never). Cancellation is
	// checked at phase boundaries: a cancelled run stops before the next
	// phase and returns with Result.Canceled set.
	Ctx context.Context
}

// Defaults fills zero fields.
func (c Config) Defaults() Config {
	if c.Threads <= 0 {
		c.Threads = exec.DefaultThreads()
	}
	return c
}

// Stats reports the internals of a run.
type Stats struct {
	Runs       int // distinct matching key runs merged
	MaxRunPair int // largest cross product emitted for one key
}

// Result is the outcome of one sort-merge join run.
type Result struct {
	Summary outbuf.Summary
	Phases  []exec.Phase // "sort", "merge"
	Stats   Stats
	// Canceled reports that Config.Ctx fired before the run completed;
	// the partial Summary and Stats must be discarded.
	Canceled bool
}

// Total returns the end-to-end time of the run.
func (r Result) Total() time.Duration {
	var d time.Duration
	for _, p := range r.Phases {
		d += p.Duration
	}
	return d
}

// Join runs the sort-merge join over r and s.
func Join(r, s relation.Relation, cfg Config) Result {
	cfg = cfg.Defaults()
	var res Result
	var timer exec.PhaseTimer
	if cfg.Ctx != nil && cfg.Ctx.Err() != nil {
		res.Canceled = true
		return res
	}

	var sr, ss []relation.Tuple
	timer.Time("sort", func() {
		sr = SortByKey(r.Tuples, cfg.Threads)
		ss = SortByKey(s.Tuples, cfg.Threads)
	})
	if cfg.Ctx != nil && cfg.Ctx.Err() != nil {
		res.Canceled = true
		res.Phases = timer.Phases()
		return res
	}

	bufs := make([]*outbuf.Buffer, cfg.Threads)
	for w := range bufs {
		bufs[w] = outbuf.New(cfg.OutBufCap)
		if cfg.Flush != nil {
			bufs[w].SetFlush(cfg.Flush(w))
		}
	}
	stats := make([]Stats, cfg.Threads)
	timer.Time("merge", func() {
		// Split the key space into one contiguous range per worker: cut
		// points are key boundaries so no equal-key run spans workers.
		cuts := keyCuts(sr, cfg.Threads)
		exec.Parallel(cfg.Threads, func(w int) {
			loKey, hiKey, ok := cuts.rangeOf(w)
			if !ok {
				return
			}
			stats[w] = mergeRange(sr, ss, loKey, hiKey, bufs[w])
			bufs[w].Flush()
		})
	})
	for _, st := range stats {
		res.Stats.Runs += st.Runs
		if st.MaxRunPair > res.Stats.MaxRunPair {
			res.Stats.MaxRunPair = st.MaxRunPair
		}
	}
	res.Summary = outbuf.Summarize(bufs)
	res.Phases = timer.Phases()
	return res
}

// cuts holds the per-worker key ranges: worker w processes keys in
// [bounds[w], bounds[w+1]).
type cuts struct {
	bounds []uint64 // len workers+1; uint64 so the top bound can be 2^32
}

func (c cuts) rangeOf(w int) (lo, hi uint64, ok bool) {
	if w+1 >= len(c.bounds) {
		return 0, 0, false
	}
	lo, hi = c.bounds[w], c.bounds[w+1]
	return lo, hi, lo < hi
}

// keyCuts picks worker boundaries from the sorted R tuples, snapping each
// cut forward to the next key boundary so runs stay whole.
func keyCuts(sr []relation.Tuple, workers int) cuts {
	bounds := make([]uint64, workers+1)
	bounds[workers] = 1 << 32
	for w := 1; w < workers; w++ {
		idx := len(sr) * w / workers
		if idx >= len(sr) {
			bounds[w] = 1 << 32
			continue
		}
		// The range starts at this tuple's key; the previous range ends
		// just before it. Equal keys stay on the right side of the cut.
		bounds[w] = uint64(sr[idx].Key)
	}
	// Bounds must be non-decreasing (duplicate heavy keys can make several
	// cut points land inside one run; empty ranges are fine).
	for w := 1; w <= workers; w++ {
		if bounds[w] < bounds[w-1] {
			bounds[w] = bounds[w-1]
		}
	}
	return cuts{bounds: bounds}
}

// mergeRange merges the sorted runs whose keys fall in [loKey, hiKey).
func mergeRange(sr, ss []relation.Tuple, loKey, hiKey uint64, buf *outbuf.Buffer) Stats {
	var st Stats
	ri := sort.Search(len(sr), func(i int) bool { return uint64(sr[i].Key) >= loKey })
	si := sort.Search(len(ss), func(i int) bool { return uint64(ss[i].Key) >= loKey })
	var rps []relation.Payload // reused run scratch
	for ri < len(sr) && si < len(ss) {
		rk, sk := uint64(sr[ri].Key), uint64(ss[si].Key)
		if rk >= hiKey && sk >= hiKey {
			break
		}
		switch {
		case rk < sk:
			ri++
		case sk < rk:
			si++
		default:
			if rk >= hiKey {
				return st
			}
			key := sr[ri].Key
			rEnd := ri
			for rEnd < len(sr) && sr[rEnd].Key == key {
				rEnd++
			}
			sEnd := si
			for sEnd < len(ss) && ss[sEnd].Key == key {
				sEnd++
			}
			rps = rps[:0]
			for _, t := range sr[ri:rEnd] {
				rps = append(rps, t.Payload)
			}
			for _, t := range ss[si:sEnd] {
				buf.PushRun(key, rps, t.Payload)
			}
			st.Runs++
			if pairs := (rEnd - ri) * (sEnd - si); pairs > st.MaxRunPair {
				st.MaxRunPair = pairs
			}
			ri, si = rEnd, sEnd
		}
	}
	return st
}
