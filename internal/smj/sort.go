package smj

import (
	"skewjoin/internal/exec"
	"skewjoin/internal/relation"
)

// SortByKey sorts tuples by raw key with a parallel LSD radix sort:
// four passes over one byte of the key each, every pass a segment-parallel
// count-then-scatter identical in structure to the radix partitioner
// (per-thread histograms, prefix sums, contention-free writes). LSD passes
// are stable, so ties keep their input order and the sort is O(n) per
// pass, skew-independent — exactly why the sort phase of a sort-merge join
// stays flat as skew grows.
func SortByKey(tuples []relation.Tuple, threads int) []relation.Tuple {
	if threads <= 0 {
		threads = 1
	}
	n := len(tuples)
	src := make([]relation.Tuple, n)
	copy(src, tuples)
	dst := make([]relation.Tuple, n)

	for pass := 0; pass < 4; pass++ {
		shift := uint32(8 * pass)
		radixSortPass(src, dst, shift, threads)
		src, dst = dst, src
	}
	return src
}

// radixSortPass scatters src into dst ordered by byte (key >> shift).
func radixSortPass(src, dst []relation.Tuple, shift uint32, threads int) {
	const buckets = 256
	hist := make([][]int, threads)
	exec.Parallel(threads, func(w int) {
		h := make([]int, buckets)
		lo, hi := exec.Segment(len(src), threads, w)
		for _, t := range src[lo:hi] {
			h[(uint32(t.Key)>>shift)&0xFF]++
		}
		hist[w] = h
	})

	// Bucket-major, thread-minor prefix sums give every thread a private
	// window per bucket.
	cursor := make([][]int, threads)
	for w := range cursor {
		cursor[w] = make([]int, buckets)
	}
	pos := 0
	for b := 0; b < buckets; b++ {
		for w := 0; w < threads; w++ {
			cursor[w][b] = pos
			pos += hist[w][b]
		}
	}

	exec.Parallel(threads, func(w int) {
		cur := cursor[w]
		lo, hi := exec.Segment(len(src), threads, w)
		for _, t := range src[lo:hi] {
			b := (uint32(t.Key) >> shift) & 0xFF
			dst[cur[b]] = t
			cur[b]++
		}
	})
}
