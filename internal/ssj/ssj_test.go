package ssj

import (
	"context"
	"sync"
	"testing"

	"skewjoin/internal/oracle"
	"skewjoin/internal/outbuf"
	"skewjoin/internal/relation"
	"skewjoin/internal/zipf"
)

func genPair(t testing.TB, n int, theta float64, seed int64) (relation.Relation, relation.Relation) {
	t.Helper()
	g, err := zipf.New(zipf.Config{Theta: theta, Universe: n, Seed: seed})
	if err != nil {
		t.Fatalf("zipf.New: %v", err)
	}
	r, s := g.Pair(n)
	return r, s
}

// TestJoinMatchesOracle verifies the streaming join's complete output
// digest equals the oracle's across skew levels, thread counts and chunk
// sizes — the exactly-once argument for probe-then-insert under lane
// locks.
func TestJoinMatchesOracle(t *testing.T) {
	for _, theta := range []float64{0, 0.5, 0.9, 1.1} {
		for _, threads := range []int{1, 2, 4} {
			for _, chunk := range []int{0, 64, 1000} {
				r, s := genPair(t, 20000, theta, 42)
				want := oracle.Expected(r, s)
				res := Join(r, s, Config{Threads: threads, ChunkSize: chunk})
				if res.Canceled {
					t.Fatalf("theta=%v threads=%d chunk=%d: spuriously canceled", theta, threads, chunk)
				}
				if res.Summary != want {
					t.Fatalf("theta=%v threads=%d chunk=%d: summary %+v, want %+v", theta, threads, chunk, res.Summary, want)
				}
				if res.Stats.Staged != want.Count {
					t.Fatalf("theta=%v: staged %d, want %d", theta, res.Stats.Staged, want.Count)
				}
				if want.Count > 0 && res.Stats.FirstResultNs == 0 {
					t.Fatalf("theta=%v: no first-result timestamp despite %d results", theta, want.Count)
				}
				if res.Stats.LimitHit || res.Stats.LimitNs != 0 {
					t.Fatalf("theta=%v: limit milestones set on a no-limit run: %+v", theta, res.Stats)
				}
			}
		}
	}
}

// TestJoinUnevenSides checks the interleaved chunk schedule handles
// inputs of very different sizes (one side's tail runs unpaired).
func TestJoinUnevenSides(t *testing.T) {
	g, err := zipf.New(zipf.Config{Theta: 0.8, Universe: 4096, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	r := g.NewRelation(10000, 1)
	s := g.NewRelation(300, 2)
	want := oracle.Expected(r, s)
	for _, swap := range []bool{false, true} {
		a, b := r, s
		if swap {
			a, b = s, r
		}
		wantAB := want
		if swap {
			// Key and count symmetric but payload coefficients differ;
			// recompute for the swapped orientation.
			wantAB = oracle.Expected(a, b)
		}
		res := Join(a, b, Config{Threads: 2, ChunkSize: 128})
		if res.Summary != wantAB {
			t.Fatalf("swap=%v: summary %+v, want %+v", swap, res.Summary, wantAB)
		}
	}
}

// TestJoinEmpty pins the empty-input edge: no results, no milestones.
func TestJoinEmpty(t *testing.T) {
	var empty relation.Relation
	r, s := genPair(t, 1000, 0.5, 3)
	for _, tc := range []struct {
		name string
		a, b relation.Relation
	}{{"emptyR", empty, s}, {"emptyS", r, empty}, {"both", empty, empty}} {
		res := Join(tc.a, tc.b, Config{Threads: 2})
		if res.Summary.Count != 0 || res.Summary.Checksum != 0 {
			t.Fatalf("%s: summary %+v, want zero", tc.name, res.Summary)
		}
		if res.Stats.FirstResultNs != 0 {
			t.Fatalf("%s: first-result timestamp on an empty join", tc.name)
		}
	}
}

// TestJoinConsumerSeesEverything attaches a counting consumer and checks
// flushed batches account for every staged result exactly once.
func TestJoinConsumerSeesEverything(t *testing.T) {
	r, s := genPair(t, 10000, 0.9, 11)
	want := oracle.Expected(r, s)
	var mu sync.Mutex
	var seen uint64
	var check uint64
	flush := func(worker int) outbuf.FlushFunc {
		return func(batch []outbuf.Result) {
			mu.Lock()
			for _, res := range batch {
				seen++
				check += outbuf.ChecksumTerm(res.Key, res.PayloadR, res.PayloadS)
			}
			mu.Unlock()
		}
	}
	res := Join(r, s, Config{Threads: 3, ChunkSize: 512, Flush: flush})
	if res.Summary != want {
		t.Fatalf("summary %+v, want %+v", res.Summary, want)
	}
	if seen != want.Count || check != want.Checksum {
		t.Fatalf("consumer saw %d results (checksum %#x), want %d (%#x)", seen, check, want.Count, want.Checksum)
	}
}

// TestJoinLimit checks early termination: the run stops once the limit
// is staged, overshoot is bounded by one chunk per worker, the partial
// digest is internally consistent, and the milestones are recorded.
func TestJoinLimit(t *testing.T) {
	r, s := genPair(t, 30000, 1.0, 42)
	full := oracle.Expected(r, s)
	for _, limit := range []uint64{1, 100, 5000} {
		for _, threads := range []int{1, 4} {
			chunk := 512
			res := Join(r, s, Config{Threads: threads, ChunkSize: chunk, Limit: limit})
			if res.Canceled {
				t.Fatalf("limit=%d: limit-hit run reported Canceled", limit)
			}
			if !res.Stats.LimitHit {
				t.Fatalf("limit=%d (<< output %d): LimitHit not set", limit, full.Count)
			}
			if res.Stats.Staged < limit {
				t.Fatalf("limit=%d: staged only %d", limit, res.Stats.Staged)
			}
			// Overshoot bound: each worker stages at most one more chunk's
			// worth of lane batches after the crossing, and a single hot
			// lane batch can carry up to chunk × max-chain matches. Use
			// the loose but sufficient bound of one full chunk's cross
			// product per worker.
			maxOver := uint64(threads) * uint64(chunk) * uint64(chunk)
			if res.Stats.Staged > limit+maxOver {
				t.Fatalf("limit=%d threads=%d: staged %d, overshoot beyond bound %d", limit, threads, res.Stats.Staged, limit+maxOver)
			}
			if res.Summary.Count != res.Stats.Staged {
				t.Fatalf("limit=%d: summary count %d != staged %d", limit, res.Summary.Count, res.Stats.Staged)
			}
			if res.Stats.LimitNs == 0 || res.Stats.FirstResultNs == 0 {
				t.Fatalf("limit=%d: milestones missing: %+v", limit, res.Stats)
			}
			if res.Stats.LimitNs < res.Stats.FirstResultNs {
				t.Fatalf("limit=%d: limit before first result: %+v", limit, res.Stats)
			}
		}
	}
}

// TestJoinLimitAboveOutput checks a limit larger than the join output
// runs to completion with the full digest and no limit milestone.
func TestJoinLimitAboveOutput(t *testing.T) {
	r, s := genPair(t, 5000, 0.5, 9)
	want := oracle.Expected(r, s)
	res := Join(r, s, Config{Threads: 2, Limit: want.Count * 10})
	if res.Stats.LimitHit || res.Stats.LimitNs != 0 {
		t.Fatalf("limit above output: limit milestones set: %+v", res.Stats)
	}
	if res.Summary != want {
		t.Fatalf("summary %+v, want %+v", res.Summary, want)
	}
}

// TestJoinPreCancelled checks a dead ctx refuses the run outright.
func TestJoinPreCancelled(t *testing.T) {
	r, s := genPair(t, 1000, 0.5, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := Join(r, s, Config{Threads: 2, Ctx: ctx})
	if !res.Canceled {
		t.Fatal("pre-cancelled ctx did not set Canceled")
	}
	if res.Summary.Count != 0 {
		t.Fatalf("pre-cancelled run staged %d results", res.Summary.Count)
	}
}

// TestJoinMidStreamCancel cancels during the stream via a consumer hook
// and checks the run reports Canceled (user cancel, not limit).
func TestJoinMidStreamCancel(t *testing.T) {
	r, s := genPair(t, 30000, 0.9, 21)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	flush := func(worker int) outbuf.FlushFunc {
		return func(batch []outbuf.Result) {
			once.Do(cancel)
		}
	}
	res := Join(r, s, Config{Threads: 2, ChunkSize: 256, OutBufCap: 64, Flush: flush, Ctx: ctx})
	if !res.Canceled {
		t.Fatal("mid-stream user cancel did not set Canceled")
	}
	if res.Stats.LimitHit {
		t.Fatal("user cancel misreported as limit hit")
	}
}

// TestStatsSkewSymptom checks MaxChain tracks the hot key under skew.
func TestStatsSkewSymptom(t *testing.T) {
	r, s := genPair(t, 20000, 1.1, 42)
	res := Join(r, s, Config{Threads: 2})
	if res.Stats.MaxChain < 100 {
		t.Fatalf("MaxChain = %d under zipf 1.1, expected a long hot-key chain", res.Stats.MaxChain)
	}
	uR, uS := genPair(t, 20000, 0, 42)
	uni := Join(uR, uS, Config{Threads: 2})
	if uni.Stats.MaxChain >= res.Stats.MaxChain {
		t.Fatalf("uniform MaxChain %d >= skewed %d", uni.Stats.MaxChain, res.Stats.MaxChain)
	}
}

// TestInterleave pins the chunk schedule shape.
func TestInterleave(t *testing.T) {
	tasks := interleave(10, 25, 10)
	// R: [0,10). S: [0,10), [10,20), [20,25) — interleaved R,S,S,S.
	if len(tasks) != 4 {
		t.Fatalf("got %d tasks: %+v", len(tasks), tasks)
	}
	if tasks[0].side != 0 || tasks[1].side != 1 || tasks[2].side != 1 || tasks[3].side != 1 {
		t.Fatalf("bad side order: %+v", tasks)
	}
	if tasks[3].lo != 20 || tasks[3].hi != 25 {
		t.Fatalf("bad S tail: %+v", tasks[3])
	}
	if got := interleave(0, 0, 10); len(got) != 0 {
		t.Fatalf("empty inputs produced tasks: %+v", got)
	}
}
