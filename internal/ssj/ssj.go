// Package ssj implements the streaming symmetric hash join — the repo's
// first non-blocking operator. Every existing join is build-then-probe:
// nothing is emitted until the build side is complete, so a consumer that
// only wants the first N results (a dashboard top-k, a LIMIT query) still
// pays the full makespan. The symmetric join keeps one growable hash
// table per input and pipelines both: tuples arrive in chunks off exec's
// fetch-add queue, and each tuple first probes the opposite side's table
// (emitting every match found so far) and then inserts into its own. A
// result pair is emitted exactly once — by whichever of its two tuples is
// processed later — so the complete run's output digest is identical to
// the blocking operators', while the first results exist after the first
// chunk instead of after the last.
//
// Skew shows up differently here than in the blocking joins: a popular
// key floods both symmetric tables mid-stream, so its chains grow while
// probes are already traversing them, and the per-key output explodes
// early (the hot key's matches are quadratic in how much of each input
// has arrived). That early explosion is precisely what makes the
// operator strong under LIMIT: on skewed data the first chunks alone
// satisfy small limits.
//
// Tuple space is split across `Lanes` independent lane shards, each a
// mutex plus an R-table and an S-table. A worker routes its chunk by the
// low bits of the key hash (the tables bucket by the high bits, so lane
// routing does not collapse their chains), then processes each lane's
// group under that lane's lock. Lane serialization is what makes
// probe-then-insert exactly-once without any global ordering.
//
// Early termination is built in: when Config.Limit results have been
// staged, the run cancels its own drain and returns the partial summary
// as a successful limit-hit result (Stats.LimitHit), distinct from a
// caller cancellation (Result.Canceled). Time-to-first-result and
// time-to-limit are measured on the worker that crosses each threshold.
package ssj

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"skewjoin/internal/chainedtable"
	"skewjoin/internal/exec"
	"skewjoin/internal/hashfn"
	"skewjoin/internal/outbuf"
	"skewjoin/internal/relation"
)

// Config tunes the streaming symmetric join.
type Config struct {
	// Threads is the number of worker threads.
	Threads int
	// ChunkSize is the number of tuples per input chunk — the unit of
	// streaming arrival and of cancellation latency (default 4096). A
	// cancelled run stops within one chunk per worker.
	ChunkSize int
	// Lanes is the number of lane shards (rounded up to a power of two;
	// default 4×Threads, minimum 8). Each lane holds one R-table and one
	// S-table behind one mutex; more lanes mean less lock contention.
	Lanes int
	// Limit stops the run once at least this many results have been
	// staged (0 = run to completion). The crossing is detected at
	// lane-batch granularity, so up to one chunk per worker may be staged
	// beyond the limit.
	Limit uint64
	// OutBufCap is the per-thread output ring capacity (0 = default).
	OutBufCap int
	// Flush optionally installs a per-worker batch consumer on the output
	// buffers (the volcano model's upper operator).
	Flush func(worker int) outbuf.FlushFunc
	// Ctx optionally cancels the run (nil = never). Cancellation is
	// observed between lane batches and between chunks; a cancelled run
	// returns with Result.Canceled set and its partial output must be
	// discarded.
	Ctx context.Context
}

// DefaultChunkSize is the streaming chunk size used when Config.ChunkSize
// is zero. It matches outbuf.DefaultCapacity so one hot chunk cannot wrap
// a default ring more than a handful of times between flushes.
const DefaultChunkSize = 4096

// Defaults fills zero fields.
func (c Config) Defaults() Config {
	if c.Threads <= 0 {
		c.Threads = exec.DefaultThreads()
	}
	if c.ChunkSize <= 0 {
		c.ChunkSize = DefaultChunkSize
	}
	if c.Lanes <= 0 {
		c.Lanes = 4 * c.Threads
	}
	if c.Lanes < 8 {
		c.Lanes = 8
	}
	c.Lanes = hashfn.NextPow2(c.Lanes)
	return c
}

// Stats reports internals of a streaming run, including the two
// latency milestones that motivate the operator.
type Stats struct {
	// Chunks is the number of input chunks processed (both sides).
	Chunks int
	// ProbeVisits is the total chain nodes visited during probes.
	ProbeVisits uint64
	// MaxChain is the longest hash chain across both tables of every
	// lane at the end of the run — the skew symptom.
	MaxChain int
	// Staged is the number of results staged into output rings. It can
	// exceed Limit by up to one chunk per worker (bounded overshoot) and
	// equals Summary.Count.
	Staged uint64
	// FirstResultNs is the time from run start to the first staged
	// result batch, in nanoseconds (0 when the join is empty).
	FirstResultNs int64
	// LimitNs is the time from run start until Staged crossed
	// Config.Limit (0 when no limit was set or it was never reached).
	LimitNs int64
	// LimitHit reports that Config.Limit was reached; the Summary is a
	// valid partial prefix digest, not the full join.
	LimitHit bool
}

// Result is the outcome of one streaming symmetric join run.
type Result struct {
	Summary outbuf.Summary
	Phases  []exec.Phase // "stream"
	Stats   Stats
	// Canceled reports that Config.Ctx fired before the run completed or
	// hit its limit; the partial Summary and Stats must be discarded.
	Canceled bool
}

// Total returns the end-to-end time of the run.
func (r Result) Total() time.Duration {
	var d time.Duration
	for _, p := range r.Phases {
		d += p.Duration
	}
	return d
}

// task is one chunk of one input: side 0 streams R tuples, side 1
// streams S tuples. Chunks of the two sides are interleaved in the queue
// so both tables grow together — the symmetric shape that keeps
// per-chunk probe work balanced.
type task struct {
	side   int32
	lo, hi int32
}

// lane is one shard of the symmetric state: the R and S tables for the
// keys routed to it, serialized by its mutex. Probe-then-insert under
// the lane lock is the exactly-once argument: for any (r, s) match pair,
// whichever tuple the lane processes second finds the other already
// inserted — and only that one emits the pair.
type lane struct {
	mu sync.Mutex
	r  *chainedtable.Incremental //skewlint:guarded-by mu
	s  *chainedtable.Incremental //skewlint:guarded-by mu
}

// worker is one thread's private streaming state.
type worker struct {
	buf     *outbuf.Buffer
	scratch [][]relation.Tuple // per-lane chunk routing groups
	visits  uint64
	chunks  int
	// staged is buf.Count() as of the last lane batch; the delta feeds
	// the shared progress counter.
	staged uint64
}

// progress is the run-wide output accounting shared by all workers: the
// staged-result counter and the two latency milestones, plus the cancel
// hook fired when the limit is crossed.
type progress struct {
	staged  atomic.Uint64
	firstNs atomic.Int64
	limitNs atomic.Int64
	limit   uint64
	start   time.Time
	cancel  context.CancelFunc
}

// observe folds one worker's newly staged results into the shared
// counter, records the first-result and limit milestones on the worker
// that crosses them, and cancels the drain once the limit is reached.
func (p *progress) observe(delta uint64) {
	if delta == 0 {
		return
	}
	total := p.staged.Add(delta)
	if total == delta {
		// This worker staged the run's first results.
		p.firstNs.CompareAndSwap(0, sinceNs(p.start))
	}
	if p.limit > 0 && total >= p.limit {
		if p.limitNs.CompareAndSwap(0, sinceNs(p.start)) {
			p.cancel()
		}
	}
}

// sinceNs returns the nanoseconds elapsed since start, at least 1 so a
// recorded milestone is distinguishable from the zero "never happened".
func sinceNs(start time.Time) int64 {
	ns := int64(time.Since(start))
	if ns < 1 {
		ns = 1
	}
	return ns
}

// Join runs the streaming symmetric hash join over r and s.
func Join(r, s relation.Relation, cfg Config) Result {
	cfg = cfg.Defaults()
	var res Result
	if cfg.Ctx != nil && cfg.Ctx.Err() != nil {
		res.Canceled = true
		return res
	}

	lanes := make([]lane, cfg.Lanes)
	laneMask := uint32(cfg.Lanes - 1)
	// Size each lane's tables for an even key spread; a skewed lane just
	// doubles a few extra times. Locked for the lock-discipline invariant
	// even though no worker is running yet.
	for i := range lanes {
		ln := &lanes[i]
		ln.mu.Lock()
		ln.r = chainedtable.NewIncremental(r.Len() / cfg.Lanes)
		ln.s = chainedtable.NewIncremental(s.Len() / cfg.Lanes)
		ln.mu.Unlock()
	}

	tasks := interleave(r.Len(), s.Len(), cfg.ChunkSize)
	queue := exec.NewQueue(tasks)

	// Buffers are created (and consumers installed) before the parallel
	// section: Flush factories need not be safe for concurrent calls.
	workers := make([]*worker, cfg.Threads)
	for w := range workers {
		wk := &worker{buf: outbuf.New(cfg.OutBufCap), scratch: make([][]relation.Tuple, cfg.Lanes)}
		if cfg.Flush != nil {
			wk.buf.SetFlush(cfg.Flush(w))
		}
		workers[w] = wk
	}

	parent := cfg.Ctx
	if parent == nil {
		parent = context.Background()
	}
	joinCtx, cancel := context.WithCancel(parent)
	defer cancel()

	prog := &progress{limit: cfg.Limit, cancel: cancel}

	var timer exec.PhaseTimer
	timer.Time("stream", func() {
		prog.start = time.Now()
		// The drain error is the join ctx firing — either the limit hook
		// or the caller's ctx. Both are classified below from prog and
		// cfg.Ctx, so the error value itself carries no extra signal.
		//skewlint:ignore err-drop -- the drain error only says "ctx fired"; whether that was the limit (success) or the caller (Canceled) is decided from prog and cfg.Ctx below
		_ = drainChunks(joinCtx, queue, cfg.Threads, func(w int, t task) {
			wk := workers[w]
			tuples := r.Tuples
			if t.side == 1 {
				tuples = s.Tuples
			}
			wk.stream(joinCtx, lanes, laneMask, t.side, tuples[t.lo:t.hi], prog)
		})
		// Final partial batches: on a completed or limit-hit run these
		// carry the tail results to the consumer. The deltas they stage
		// are already counted (observe runs on Push, not Flush).
		for _, wk := range workers {
			wk.buf.Flush()
		}
	})

	limitHit := cfg.Limit > 0 && prog.staged.Load() >= cfg.Limit
	res.Canceled = cfg.Ctx != nil && cfg.Ctx.Err() != nil && !limitHit

	bufs := make([]*outbuf.Buffer, len(workers))
	for w, wk := range workers {
		bufs[w] = wk.buf
		res.Stats.Chunks += wk.chunks
		res.Stats.ProbeVisits += wk.visits
	}
	for i := range lanes {
		ln := &lanes[i]
		ln.mu.Lock()
		if mc := ln.r.MaxChain(); mc > res.Stats.MaxChain {
			res.Stats.MaxChain = mc
		}
		if mc := ln.s.MaxChain(); mc > res.Stats.MaxChain {
			res.Stats.MaxChain = mc
		}
		ln.mu.Unlock()
	}
	res.Stats.Staged = prog.staged.Load()
	res.Stats.FirstResultNs = prog.firstNs.Load()
	res.Stats.LimitNs = prog.limitNs.Load()
	res.Stats.LimitHit = limitHit
	res.Summary = outbuf.Summarize(bufs)
	res.Phases = timer.Phases()
	return res
}

// interleave cuts both inputs into ChunkSize tasks and alternates them
// R, S, R, S, … so the two tables fill at matching rates regardless of
// which side is larger (the longer side's tail runs unpaired).
func interleave(nr, ns, chunk int) []task {
	tasks := make([]task, 0, (nr+ns)/chunk+2)
	var lr, ls int
	for lr < nr || ls < ns {
		if lr < nr {
			hi := min(lr+chunk, nr)
			tasks = append(tasks, task{side: 0, lo: int32(lr), hi: int32(hi)})
			lr = hi
		}
		if ls < ns {
			hi := min(ls+chunk, ns)
			tasks = append(tasks, task{side: 1, lo: int32(ls), hi: int32(hi)})
			ls = hi
		}
	}
	return tasks
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// stream processes one chunk: route its tuples to lanes, then for each
// non-empty lane — under the lane lock — probe the opposite table and
// insert into the own-side table, tuple by tuple. Cancellation is polled
// between lanes, so a cancelled worker stops within one lane group.
func (wk *worker) stream(ctx context.Context, lanes []lane, laneMask uint32, side int32, chunk []relation.Tuple, prog *progress) {
	wk.chunks++
	// Route by the LOW hash bits: the Incremental tables bucket by the
	// high bits, so lane membership and bucket index stay independent
	// (high-bit routing would funnel each lane's keys into one bucket).
	scratch := wk.scratch
	for i := range scratch {
		scratch[i] = scratch[i][:0]
	}
	for _, tp := range chunk {
		l := hashfn.Mix32(uint32(tp.Key)) & laneMask
		scratch[l] = append(scratch[l], tp)
	}

	buf := wk.buf
	var curP relation.Payload
	// Two emit orientations: a probing R tuple supplies PayloadR and the
	// probed S match supplies PayloadS, and vice versa.
	var curKey relation.Key
	emitR := func(ps relation.Payload) { buf.Push(curKey, curP, ps) } // side 0: probing S table
	emitS := func(pr relation.Payload) { buf.Push(curKey, pr, curP) } // side 1: probing R table

	done := ctx.Done()
	for l := range scratch {
		group := scratch[l]
		if len(group) == 0 {
			continue
		}
		select {
		case <-done:
			return
		default:
		}
		ln := &lanes[l]
		ln.mu.Lock()
		if side == 0 {
			for _, tp := range group {
				curKey, curP = tp.Key, tp.Payload
				wk.visits += uint64(ln.s.Probe(tp.Key, emitR))
				ln.r.Insert(tp)
			}
		} else {
			for _, tp := range group {
				curKey, curP = tp.Key, tp.Payload
				wk.visits += uint64(ln.r.Probe(tp.Key, emitS))
				ln.s.Insert(tp)
			}
		}
		ln.mu.Unlock()
		if c := buf.Count(); c != wk.staged {
			prog.observe(c - wk.staged)
			wk.staged = c
		}
	}
}

// drainChunks is the streaming operator's worker fan-out: it drains the
// chunk queue on `threads` workers with between-task cancellation. It
// exists as a named spawn point so skewlint's ctx-propagation analyzer
// covers every caller (see internal/lint.DefaultConfig).
func drainChunks(ctx context.Context, q *exec.Queue[task], threads int, fn func(worker int, t task)) error {
	return q.DrainCtx(ctx, threads, fn)
}
