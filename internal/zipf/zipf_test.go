package zipf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"skewjoin/internal/relation"
)

func TestNewValidation(t *testing.T) {
	cases := []Config{
		{Theta: 0.5, Universe: 0},
		{Theta: 0.5, Universe: -3},
		{Theta: -0.1, Universe: 10},
		{Theta: 0.5, Universe: 100, KeyDomain: 50},
	}
	for _, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) should fail", cfg)
		}
	}
	if _, err := New(Config{Theta: 0, Universe: 1}); err != nil {
		t.Errorf("minimal config failed: %v", err)
	}
}

func TestCumulativeIsMonotoneAndNormalised(t *testing.T) {
	for _, theta := range []float64{0, 0.3, 0.7, 1.0, 1.5} {
		g := MustNew(Config{Theta: theta, Universe: 1000, Seed: 1})
		prev := 0.0
		for i := 0; i < g.Universe(); i++ {
			p := g.Prob(i)
			if p <= 0 {
				t.Fatalf("theta=%g rank=%d: probability %g not positive", theta, i, p)
			}
			prev += p
		}
		if math.Abs(prev-1) > 1e-9 {
			t.Errorf("theta=%g: probabilities sum to %g", theta, prev)
		}
	}
}

func TestProbabilitiesDecreaseWithRank(t *testing.T) {
	g := MustNew(Config{Theta: 0.9, Universe: 500, Seed: 2})
	for i := 1; i < g.Universe(); i++ {
		if g.Prob(i) > g.Prob(i-1)+1e-12 {
			t.Fatalf("rank %d more probable than rank %d", i, i-1)
		}
	}
}

func TestUniformThetaGivesEqualIntervals(t *testing.T) {
	g := MustNew(Config{Theta: 0, Universe: 100, Seed: 3})
	want := 1.0 / 100
	for i := 0; i < 100; i++ {
		if math.Abs(g.Prob(i)-want) > 1e-12 {
			t.Errorf("rank %d: prob %g, want %g", i, g.Prob(i), want)
		}
	}
}

func TestUniqueKeys(t *testing.T) {
	g := MustNew(Config{Theta: 0.5, Universe: 5000, Seed: 4})
	seen := make(map[relation.Key]bool, 5000)
	for i := 0; i < g.Universe(); i++ {
		k := g.KeyForRank(i)
		if seen[k] {
			t.Fatalf("duplicate key %d at rank %d", k, i)
		}
		seen[k] = true
	}
}

func TestDenseKeySampling(t *testing.T) {
	// Universe close to the domain forces the Fisher-Yates path.
	g := MustNew(Config{Theta: 0.5, Universe: 1000, Seed: 5, KeyDomain: 1100})
	seen := make(map[relation.Key]bool, 1000)
	for i := 0; i < g.Universe(); i++ {
		k := g.KeyForRank(i)
		if uint32(k) >= 1100 {
			t.Fatalf("key %d outside domain", k)
		}
		if seen[k] {
			t.Fatalf("duplicate key %d", k)
		}
		seen[k] = true
	}
}

func TestFillDeterministicPerStream(t *testing.T) {
	g := MustNew(Config{Theta: 0.8, Universe: 1000, Seed: 6})
	a := g.NewRelation(500, 1)
	b := g.NewRelation(500, 1)
	for i := range a.Tuples {
		if a.Tuples[i] != b.Tuples[i] {
			t.Fatalf("same stream differs at %d", i)
		}
	}
	c := g.NewRelation(500, 2)
	same := true
	for i := range a.Tuples {
		if a.Tuples[i].Key != c.Tuples[i].Key {
			same = false
			break
		}
	}
	if same {
		t.Error("different streams produced identical key sequences")
	}
}

func TestPairSharesKeyUniverse(t *testing.T) {
	// The paper's high-skew model: R and S share interval and key arrays,
	// so the most frequent key of R must also be frequent in S.
	g := MustNew(Config{Theta: 1.0, Universe: 20000, Seed: 7})
	r, s := g.Pair(20000)
	rs := relation.ComputeStats(r)
	sf := relation.KeyFrequencies(s)
	if got := sf[rs.MaxKey]; got < rs.MaxKeyFreq/2 {
		t.Errorf("R's top key (freq %d) appears only %d times in S", rs.MaxKeyFreq, got)
	}
}

func TestTopFrequencyMatchesExpectation(t *testing.T) {
	// Empirical top-key frequency should track n*p(0) (the paper quotes
	// 1.79M of 32M at zipf 1.0, i.e. p(0) = 1/H(32M)).
	g := MustNew(Config{Theta: 1.0, Universe: 50000, Seed: 8})
	r := g.NewRelation(50000, 1)
	st := relation.ComputeStats(r)
	want := g.ExpectedTopFrequency(50000)
	if math.Abs(float64(st.MaxKeyFreq)-want) > 0.25*want {
		t.Errorf("top frequency %d, expected about %.0f", st.MaxKeyFreq, want)
	}
}

func TestSkewGrowsWithTheta(t *testing.T) {
	prev := 0
	for _, theta := range []float64{0, 0.5, 1.0} {
		g := MustNew(Config{Theta: theta, Universe: 30000, Seed: 9})
		r := g.NewRelation(30000, 1)
		st := relation.ComputeStats(r)
		if st.MaxKeyFreq < prev {
			t.Errorf("theta=%g: top frequency %d decreased from %d", theta, st.MaxKeyFreq, prev)
		}
		prev = st.MaxKeyFreq
	}
	if prev < 100 {
		t.Errorf("zipf 1.0 top frequency %d is implausibly low", prev)
	}
}

func TestExpectedJoinOutputMatchesOracleScale(t *testing.T) {
	g := MustNew(Config{Theta: 0.9, Universe: 10000, Seed: 10})
	r, s := g.Pair(10000)
	freqR := relation.KeyFrequencies(r)
	freqS := relation.KeyFrequencies(s)
	var actual float64
	for k, fr := range freqR {
		actual += float64(fr) * float64(freqS[k])
	}
	want := g.ExpectedJoinOutput(10000, 10000)
	if actual < want/3 || actual > want*3 {
		t.Errorf("actual output %.0f vs expectation %.0f: off by more than 3x", actual, want)
	}
}

func TestDrawAlwaysReturnsUniverseKey(t *testing.T) {
	g := MustNew(Config{Theta: 0.7, Universe: 64, Seed: 11})
	valid := make(map[relation.Key]bool, 64)
	for i := 0; i < 64; i++ {
		valid[g.KeyForRank(i)] = true
	}
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 10000; i++ {
		if k := g.Draw(rng); !valid[k] {
			t.Fatalf("draw %d produced key %d outside the universe", i, k)
		}
	}
}

func TestFKPairStructure(t *testing.T) {
	g := MustNew(Config{Theta: 0.9, Universe: 5000, Seed: 13})
	r, s := g.FKPair(20000)
	if r.Len() != 5000 {
		t.Fatalf("dimension table has %d tuples, want 5000", r.Len())
	}
	if s.Len() != 20000 {
		t.Fatalf("fact table has %d tuples, want 20000", s.Len())
	}
	// R keys are unique and cover the universe.
	seen := make(map[relation.Key]bool, r.Len())
	for _, tp := range r.Tuples {
		if seen[tp.Key] {
			t.Fatalf("duplicate dimension key %d", tp.Key)
		}
		seen[tp.Key] = true
	}
	// Every S foreign key resolves to a dimension row.
	for i, tp := range s.Tuples {
		if !seen[tp.Key] {
			t.Fatalf("fact tuple %d has dangling foreign key %d", i, tp.Key)
		}
	}
	// S is skewed, R is not.
	if st := relation.ComputeStats(s); st.MaxKeyFreq < 100 {
		t.Errorf("fact table top key frequency %d: not skewed", st.MaxKeyFreq)
	}
	if st := relation.ComputeStats(r); st.MaxKeyFreq != 1 {
		t.Errorf("dimension table top key frequency %d, want 1", st.MaxKeyFreq)
	}
}

func TestQuickDrawInUniverse(t *testing.T) {
	// Property: for any (theta, universe, seed), every draw is a universe
	// key and the generator never panics.
	f := func(thetaRaw uint8, universeRaw uint16, seed int64) bool {
		theta := float64(thetaRaw%15) / 10 // 0.0 .. 1.4
		universe := int(universeRaw%2000) + 1
		g, err := New(Config{Theta: theta, Universe: universe, Seed: seed})
		if err != nil {
			return false
		}
		valid := make(map[relation.Key]bool, universe)
		for i := 0; i < universe; i++ {
			valid[g.KeyForRank(i)] = true
		}
		rng := rand.New(rand.NewSource(seed + 1))
		for i := 0; i < 200; i++ {
			if !valid[g.Draw(rng)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
