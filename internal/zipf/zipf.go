// Package zipf implements the paper's skewed workload generator (§V-A).
//
// The paper generates join keys as follows: for a given zipf factor it
// builds an array of intervals, where the length of interval i is the
// probability of the i-th most popular element under the zipf distribution;
// it assigns a random unique key to every interval; then for every tuple it
// draws a random number, binary-searches the interval array, and emits the
// key of the interval the number falls into. To model highly skewed joins,
// both table R and table S are generated from the *same* interval array and
// unique-key array, so the popular keys coincide in both tables.
//
// This package reproduces that construction exactly. A Generator is built
// once per (zipf factor, key universe) pair and can then populate any number
// of relations; relations drawn from the same Generator share intervals and
// keys just like the paper's R and S.
package zipf

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"skewjoin/internal/relation"
)

// Generator draws zipf-distributed join keys from a fixed interval array.
// It is safe for concurrent use only through independent *rand.Rand streams
// passed to Fill; the Generator itself is immutable after New.
type Generator struct {
	theta     float64
	universe  int
	cum       []float64      // cum[i] = P(rank <= i), strictly increasing, cum[len-1] == 1
	keys      []relation.Key // keys[i] = unique key assigned to rank i (rank 0 most popular)
	seed      int64
	keyDomain uint32
}

// Config controls workload generation.
type Config struct {
	// Theta is the zipf exponent ("zipf factor" in the paper), 0 = uniform.
	Theta float64
	// Universe is the number of distinct candidate keys (intervals). The
	// paper sizes it to the table cardinality: with 32M tuples per table and
	// zipf 1.0 it reports the top key appearing ~1.79M times, which matches
	// p(1) = 1/H(32M) ≈ 0.056 of 32M.
	Universe int
	// Seed makes the interval/key construction and all draws reproducible.
	Seed int64
	// KeyDomain bounds the random unique keys (exclusive). Zero means
	// 2^31, leaving headroom so tests can probe absent keys.
	KeyDomain uint32
}

// New builds the interval array and the unique-key array for the given
// configuration. Construction is O(Universe).
func New(cfg Config) (*Generator, error) {
	if cfg.Universe <= 0 {
		return nil, fmt.Errorf("zipf: universe must be positive, got %d", cfg.Universe)
	}
	if cfg.Theta < 0 {
		return nil, fmt.Errorf("zipf: theta must be non-negative, got %g", cfg.Theta)
	}
	dom := cfg.KeyDomain
	if dom == 0 {
		dom = 1 << 31
	}
	if uint64(dom) < uint64(cfg.Universe) {
		return nil, fmt.Errorf("zipf: key domain %d smaller than universe %d", dom, cfg.Universe)
	}
	g := &Generator{
		theta:     cfg.Theta,
		universe:  cfg.Universe,
		seed:      cfg.Seed,
		keyDomain: dom,
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Interval lengths: p(i) ∝ 1 / i^theta, i = 1..Universe.
	g.cum = make([]float64, cfg.Universe)
	var norm float64
	for i := 1; i <= cfg.Universe; i++ {
		norm += 1.0 / math.Pow(float64(i), cfg.Theta)
	}
	acc := 0.0
	for i := 1; i <= cfg.Universe; i++ {
		acc += (1.0 / math.Pow(float64(i), cfg.Theta)) / norm
		g.cum[i-1] = acc
	}
	g.cum[cfg.Universe-1] = 1.0 // guard against float rounding

	// Random unique key per interval: sample Universe distinct keys from the
	// domain, then shuffle so rank order is decoupled from key order.
	g.keys = sampleDistinctKeys(rng, cfg.Universe, dom)
	return g, nil
}

// MustNew is New but panics on error; for tests and examples with
// compile-time-correct configs.
func MustNew(cfg Config) *Generator {
	g, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return g
}

// sampleDistinctKeys draws n distinct uint32 keys < dom. For dense cases
// (n close to dom) it uses a partial Fisher-Yates over the domain; for
// sparse cases rejection sampling is faster and allocation-light.
func sampleDistinctKeys(rng *rand.Rand, n int, dom uint32) []relation.Key {
	keys := make([]relation.Key, n)
	if uint64(n)*4 >= uint64(dom) {
		// Dense: partial Fisher-Yates using a sparse swap map.
		swaps := make(map[uint32]uint32, n)
		for i := 0; i < n; i++ {
			j := uint32(i) + uint32(rng.Int63n(int64(dom)-int64(i)))
			vi, ok := swaps[uint32(i)]
			if !ok {
				vi = uint32(i)
			}
			vj, ok := swaps[j]
			if !ok {
				vj = j
			}
			keys[i] = relation.Key(vj)
			swaps[j] = vi
		}
		return keys
	}
	seen := make(map[uint32]struct{}, n)
	for i := 0; i < n; {
		k := uint32(rng.Int63n(int64(dom)))
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		keys[i] = relation.Key(k)
		i++
	}
	return keys
}

// Theta returns the zipf factor the generator was built with.
func (g *Generator) Theta() float64 { return g.theta }

// Universe returns the number of intervals (distinct candidate keys).
func (g *Generator) Universe() int { return g.universe }

// KeyForRank returns the unique key assigned to the given popularity rank
// (0 = most popular interval).
func (g *Generator) KeyForRank(rank int) relation.Key { return g.keys[rank] }

// Prob returns the probability of the key at the given rank.
func (g *Generator) Prob(rank int) float64 {
	if rank == 0 {
		return g.cum[0]
	}
	return g.cum[rank] - g.cum[rank-1]
}

// Draw returns one zipf-distributed key using rng, by the paper's
// generate-random-number-then-binary-search procedure.
func (g *Generator) Draw(rng *rand.Rand) relation.Key {
	u := rng.Float64()
	// sort.SearchFloat64s finds the first interval whose cumulative
	// probability reaches u: exactly "search it in the interval array".
	rank := sort.SearchFloat64s(g.cum, u)
	if rank >= g.universe {
		rank = g.universe - 1
	}
	return g.keys[rank]
}

// Fill overwrites the key column of r with zipf-distributed draws and the
// payload column with the tuple index (a row id, as in the paper's 4B
// payload). The stream is derived from the generator seed and the given
// stream id, so R and S use the same intervals but independent draws.
func (g *Generator) Fill(r relation.Relation, stream int64) {
	rng := rand.New(rand.NewSource(g.seed*1000003 + stream))
	for i := range r.Tuples {
		r.Tuples[i] = relation.Tuple{Key: g.Draw(rng), Payload: relation.Payload(i)}
	}
}

// NewRelation allocates a relation of n tuples and fills it from the given
// stream.
func (g *Generator) NewRelation(n int, stream int64) relation.Relation {
	r := relation.New(n)
	g.Fill(r, stream)
	return r
}

// ExpectedTopFrequency returns the expected number of tuples holding the
// most popular key in a table of n tuples: n * p(rank 0). The paper quotes
// this quantity for zipf 1.0 / 32M tuples (~1.79M).
func (g *Generator) ExpectedTopFrequency(n int) float64 {
	return float64(n) * g.cum[0]
}

// ExpectedJoinOutput returns the expected join output cardinality of two
// independent tables of sizes nR and nS drawn from this generator:
// nR * nS * Σ p(i)^2. This drives the O(output) blow-up the paper's join
// phases suffer under skew.
func (g *Generator) ExpectedJoinOutput(nR, nS int) float64 {
	var sumSq float64
	prev := 0.0
	for _, c := range g.cum {
		p := c - prev
		sumSq += p * p
		prev = c
	}
	return float64(nR) * float64(nS) * sumSq
}

// Pair generates the paper's experimental workload: two equal-sized tables
// R and S of n tuples each, drawn from the same interval and key arrays
// (maximally coinciding skew) but independent random streams.
func (g *Generator) Pair(n int) (r, s relation.Relation) {
	return g.NewRelation(n, 1), g.NewRelation(n, 2)
}

// FKPair generates a foreign-key workload with one-sided skew: R is a
// "dimension" table holding every universe key exactly once (unique
// primary keys, no skew whatsoever), and S is a "fact" table of nS tuples
// whose foreign keys follow this generator's zipf distribution.
//
// This isolates S-side skew: each S tuple matches exactly one R tuple, so
// the join output is exactly nS, yet the probe traffic concentrates on a
// few R keys. It is the case the paper singles out as unhandled by Gbase's
// sub-list technique ("this technique does not handle the data skew in
// table S", §II-B): sub-lists decompose R partitions, but here no R
// partition is ever oversized — only S partitions are.
func (g *Generator) FKPair(nS int) (r, s relation.Relation) {
	r = relation.New(g.universe)
	for rank := 0; rank < g.universe; rank++ {
		r.Tuples[rank] = relation.Tuple{Key: g.keys[rank], Payload: relation.Payload(rank)}
	}
	s = g.NewRelation(nS, 3)
	return r, s
}
