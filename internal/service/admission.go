package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// ErrOverloaded is returned by Admission.Acquire when the wait queue is
// full: the server sheds the request instead of letting the backlog grow
// without bound (mapped to HTTP 429 by the handler).
var ErrOverloaded = errors.New("service: overloaded, admission queue full")

// Admission is a weighted-semaphore admission controller: each request
// acquires `weight` worker threads from a fixed budget before its join may
// run, so N concurrent joins share the pool without oversubscription.
// Requests that cannot run immediately wait in a bounded FIFO queue;
// arrivals beyond the queue bound are rejected with ErrOverloaded, and a
// request whose context expires while queued is removed and rejected with
// the context's error. FIFO grant order (no skipping smaller requests past
// a blocked larger one) keeps heavyweight requests from starving.
type Admission struct {
	budget   int
	maxQueue int

	mu       sync.Mutex
	idle     *sync.Cond // broadcast whenever inFlight or the queue shrinks
	inUse    int        //skewlint:guarded-by mu
	inFlight int        //skewlint:guarded-by mu
	waiters  []*waiter  //skewlint:guarded-by mu

	submitted       uint64 //skewlint:guarded-by mu
	admitted        uint64 //skewlint:guarded-by mu
	rejectedFull    uint64 //skewlint:guarded-by mu
	rejectedTimeout uint64 //skewlint:guarded-by mu
	completed       uint64 //skewlint:guarded-by mu
}

type waiter struct {
	weight int
	ready  chan struct{}
}

// NewAdmission returns a controller over `budget` worker threads with at
// most `maxQueue` queued requests. budget < 1 is raised to 1; maxQueue < 0
// means no queue (shed anything that cannot run immediately).
func NewAdmission(budget, maxQueue int) *Admission {
	if budget < 1 {
		budget = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	a := &Admission{budget: budget, maxQueue: maxQueue}
	a.idle = sync.NewCond(&a.mu)
	return a
}

// Budget returns the total worker-thread budget.
func (a *Admission) Budget() int { return a.budget }

// ClampWeight folds a requested thread count into the valid weight range
// [1, budget].
func (a *Admission) ClampWeight(threads int) int {
	if threads < 1 {
		return a.budget // default: the whole pool, i.e. serial joins
	}
	if threads > a.budget {
		return a.budget
	}
	return threads
}

// Acquire blocks until `weight` threads are granted, the wait queue
// overflows (ErrOverloaded), or ctx is done (ctx.Err()). On success the
// caller owns the weight and must call the returned release exactly once
// when the request finishes; release is idempotent.
func (a *Admission) Acquire(ctx context.Context, weight int) (release func(), err error) {
	if weight < 1 || weight > a.budget {
		return nil, fmt.Errorf("service: weight %d outside budget [1, %d]", weight, a.budget)
	}
	a.mu.Lock()
	a.submitted++
	// Fast path: idle capacity and nobody queued ahead of us.
	if len(a.waiters) == 0 && a.inUse+weight <= a.budget {
		a.grantDirectLocked(weight)
		a.mu.Unlock()
		return a.releaseFunc(weight), nil
	}
	if err := ctx.Err(); err != nil {
		a.rejectedTimeout++
		a.mu.Unlock()
		return nil, err
	}
	if len(a.waiters) >= a.maxQueue {
		a.rejectedFull++
		a.mu.Unlock()
		return nil, ErrOverloaded
	}
	w := &waiter{weight: weight, ready: make(chan struct{})}
	a.waiters = append(a.waiters, w)
	a.mu.Unlock()

	select {
	case <-w.ready:
		return a.releaseFunc(weight), nil
	case <-ctx.Done():
		a.mu.Lock()
		select {
		case <-w.ready:
			// The grant raced the cancellation: undo it so the counters
			// read "rejected", not "admitted and instantly released".
			a.inUse -= weight
			a.inFlight--
			a.admitted--
			a.rejectedTimeout++
			a.grantWaitersLocked()
		default:
			for i, q := range a.waiters {
				if q == w {
					a.waiters = append(a.waiters[:i], a.waiters[i+1:]...)
					break
				}
			}
			a.rejectedTimeout++
		}
		a.idle.Broadcast()
		a.mu.Unlock()
		return nil, ctx.Err()
	}
}

// grantDirectLocked admits the caller without queueing.
func (a *Admission) grantDirectLocked(weight int) {
	a.inUse += weight
	a.inFlight++
	a.admitted++
}

// grantWaitersLocked admits queued requests in FIFO order while they fit.
func (a *Admission) grantWaitersLocked() {
	for len(a.waiters) > 0 {
		w := a.waiters[0]
		if a.inUse+w.weight > a.budget {
			return
		}
		a.waiters = a.waiters[1:]
		a.grantDirectLocked(w.weight)
		close(w.ready)
	}
}

func (a *Admission) releaseFunc(weight int) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			a.mu.Lock()
			a.inUse -= weight
			a.inFlight--
			a.completed++
			a.grantWaitersLocked()
			a.idle.Broadcast()
			a.mu.Unlock()
		})
	}
}

// WaitIdle blocks until no request is in flight or queued, or ctx is done
// (returning its error). It is the drain primitive behind graceful
// shutdown: the daemon stops admitting new joins, then waits here —
// bounded by the drain deadline — for the in-flight ones to finish.
func (a *Admission) WaitIdle(ctx context.Context) error {
	stop := make(chan struct{})
	defer close(stop)
	// Cond has no ctx support; a watcher goroutine wakes the waiter when
	// the deadline fires so an over-long join cannot block shutdown.
	go func() {
		select {
		case <-ctx.Done():
			a.mu.Lock()
			a.idle.Broadcast()
			a.mu.Unlock()
		case <-stop:
		}
	}()
	a.mu.Lock()
	defer a.mu.Unlock()
	for a.inFlight > 0 || len(a.waiters) > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		a.idle.Wait()
	}
	return nil
}

// Snapshot returns a consistent view of the controller's gauges and
// counters. The invariant Submitted == Admitted + Rejected holds in every
// snapshot taken while no Acquire is concurrently mid-flight between its
// counter updates; handlers relying on it should quiesce first (the /stats
// endpoint simply reports the instantaneous values).
func (a *Admission) Snapshot() AdmissionStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return AdmissionStats{
		ThreadBudget:    a.budget,
		MaxQueue:        a.maxQueue,
		ThreadsInUse:    a.inUse,
		InFlight:        a.inFlight,
		Queued:          len(a.waiters),
		Submitted:       a.submitted,
		Admitted:        a.admitted,
		Rejected:        a.rejectedFull + a.rejectedTimeout,
		RejectedFull:    a.rejectedFull,
		RejectedTimeout: a.rejectedTimeout,
		Completed:       a.completed,
	}
}
