package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// joinJSON posts a /join request (urlSuffix appends query parameters) and
// decodes the response on 200.
func joinJSON(t *testing.T, base, urlSuffix string, req JoinRequest) (int, JoinResponse, []byte) {
	t.Helper()
	status, raw := doJSON(t, "POST", base+"/join"+urlSuffix, req)
	var resp JoinResponse
	if status == http.StatusOK {
		if err := json.Unmarshal(raw, &resp); err != nil {
			t.Fatalf("decode join response: %v: %s", err, raw)
		}
	}
	return status, resp, raw
}

// TestServiceStreamingLimit covers the /join limit surface end to end:
// body and ?limit=N spellings, auto-selection of the streaming operator,
// stream milestones in the response, and the first-result histogram plus
// limit-hit counters in /stats.
func TestServiceStreamingLimit(t *testing.T) {
	srv := New(Config{ThreadBudget: 4})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	register(t, ts.URL, "r", GenerateSpec{N: 30000, Zipf: 1.0, Seed: 42, Stream: 0})
	register(t, ts.URL, "s", GenerateSpec{N: 30000, Zipf: 1.0, Seed: 42, Stream: 1})

	// Pinned streaming operator with a body limit.
	status, resp, raw := joinJSON(t, ts.URL, "", JoinRequest{R: "r", S: "s", Algorithm: "ssj", Limit: 100})
	if status != http.StatusOK {
		t.Fatalf("ssj+limit: status %d: %s", status, raw)
	}
	st := resp.Stream
	if st == nil || !st.LimitHit || st.Staged < 100 || resp.Matches != st.Staged {
		t.Fatalf("ssj+limit: stream info %+v (matches %d)", st, resp.Matches)
	}
	if st.FirstResultMS <= 0 || st.LimitMS < st.FirstResultMS || st.Chunks == 0 {
		t.Fatalf("ssj+limit: malformed milestones %+v", st)
	}

	// The same limit through the query parameter, on a blocking operator:
	// the limiter path reports milestones too (no chunk count).
	status, resp, raw = joinJSON(t, ts.URL, "?limit=100", JoinRequest{R: "r", S: "s", Algorithm: "cbase"})
	if status != http.StatusOK {
		t.Fatalf("cbase?limit: status %d: %s", status, raw)
	}
	if resp.Stream == nil || !resp.Stream.LimitHit || resp.Stream.Staged < 100 {
		t.Fatalf("cbase?limit: stream info %+v", resp.Stream)
	}

	// Auto with a small limit plans onto the streaming operator.
	status, resp, raw = joinJSON(t, ts.URL, "?limit=50", JoinRequest{R: "r", S: "s"})
	if status != http.StatusOK {
		t.Fatalf("auto?limit: status %d: %s", status, raw)
	}
	if resp.Algorithm != "ssj" || resp.Planner == nil || !resp.Planner.Streaming {
		t.Fatalf("auto?limit: algorithm %q, planner %+v — wanted streaming selection", resp.Algorithm, resp.Planner)
	}

	// An auto full scan stays on a blocking operator and carries no
	// stream block.
	status, resp, raw = joinJSON(t, ts.URL, "", JoinRequest{R: "r", S: "s"})
	if status != http.StatusOK {
		t.Fatalf("auto full: status %d: %s", status, raw)
	}
	if resp.Algorithm == "ssj" || resp.Stream != nil {
		t.Fatalf("auto full scan streamed: algorithm %q, stream %+v", resp.Algorithm, resp.Stream)
	}

	// /stats separates first-result latency from whole-join latency and
	// counts the limit hits.
	stats := getStats(t, ts.URL)
	ssjStats, ok := stats.Algorithms["ssj"]
	if !ok {
		t.Fatalf("no ssj algorithm stats: %+v", stats.Algorithms)
	}
	if ssjStats.FirstResult == nil || ssjStats.FirstResult.Count != 2 {
		t.Fatalf("ssj first-result histogram: %+v", ssjStats.FirstResult)
	}
	if ssjStats.LimitHits != 2 {
		t.Fatalf("ssj limit hits = %d, want 2", ssjStats.LimitHits)
	}
	var total uint64
	for _, b := range ssjStats.FirstResult.Buckets {
		total += b.Count
	}
	if total != ssjStats.FirstResult.Count {
		t.Fatalf("first-result buckets sum %d != count %d", total, ssjStats.FirstResult.Count)
	}
	cb, ok := stats.Algorithms["cbase"]
	if !ok || cb.FirstResult == nil || cb.FirstResult.Count != 1 || cb.LimitHits != 1 {
		t.Fatalf("cbase stats: %+v", cb)
	}
}

// TestServiceLimitValidation pins the 400s: modelled backends cannot
// early-terminate and malformed limits are refused before execution.
func TestServiceLimitValidation(t *testing.T) {
	srv := New(Config{ThreadBudget: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	register(t, ts.URL, "r", GenerateSpec{N: 2000, Zipf: 0.5, Seed: 1, Stream: 0})
	register(t, ts.URL, "s", GenerateSpec{N: 2000, Zipf: 0.5, Seed: 1, Stream: 1})

	cases := []struct {
		name   string
		suffix string
		req    JoinRequest
	}{
		{"pinned gpu", "", JoinRequest{R: "r", S: "s", Algorithm: "gbase", Limit: 10}},
		{"pinned gsmj", "", JoinRequest{R: "r", S: "s", Algorithm: "gsmj", Limit: 10}},
		{"split backend", "", JoinRequest{R: "r", S: "s", Backend: "split", Limit: 10}},
		{"gpu backend via query", "?limit=10", JoinRequest{R: "r", S: "s", Backend: "gpu"}},
		{"negative body limit", "", JoinRequest{R: "r", S: "s", Limit: -3}},
		{"malformed query limit", "?limit=banana", JoinRequest{R: "r", S: "s"}},
		{"negative query limit", "?limit=-1", JoinRequest{R: "r", S: "s"}},
	}
	for _, tc := range cases {
		status, _, raw := joinJSON(t, ts.URL, tc.suffix, tc.req)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", tc.name, status, raw)
		}
	}

	// A limit above the join output is not an error: the join completes
	// with the full digest and no limit hit.
	status, resp, raw := joinJSON(t, ts.URL, "?limit=999999999", JoinRequest{R: "r", S: "s", Algorithm: "ssj"})
	if status != http.StatusOK {
		t.Fatalf("huge limit: status %d: %s", status, raw)
	}
	if resp.Stream == nil || resp.Stream.LimitHit {
		t.Fatalf("huge limit: stream %+v", resp.Stream)
	}
}
