package service

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"skewjoin"
)

func TestCatalogRegisterGetDrop(t *testing.T) {
	c := NewCatalog()
	rel, err := skewjoin.GenerateZipf(1<<10, 0.9, 42, 0)
	if err != nil {
		t.Fatal(err)
	}
	e, err := c.Register("orders", rel, "test")
	if err != nil {
		t.Fatal(err)
	}
	if e.Stats.Tuples != 1<<10 || e.Stats.MaxKeyFreq == 0 {
		t.Errorf("cached stats look wrong: %+v", e.Stats)
	}
	got, ok := c.Get("orders")
	if !ok || got != e {
		t.Fatal("Get did not return the registered entry")
	}
	if _, err := c.Register("orders", rel, "test"); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate register = %v, want ErrDuplicate", err)
	}
	if !c.Drop("orders") {
		t.Error("Drop returned false for a registered name")
	}
	if c.Drop("orders") {
		t.Error("Drop returned true for an absent name")
	}
	if _, ok := c.Get("orders"); ok {
		t.Error("entry survived Drop")
	}
}

func TestCatalogNameValidation(t *testing.T) {
	c := NewCatalog()
	var rel skewjoin.Relation
	for _, bad := range []string{"", "a/b", "a b", "x\ty", strings.Repeat("n", maxNameLen+1)} {
		if _, err := c.Register(bad, rel, "test"); err == nil {
			t.Errorf("name %q accepted", bad)
		}
	}
}

func TestCatalogRegisterFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.skjr")
	rel, err := skewjoin.GenerateZipf(512, 0.5, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := skewjoin.SaveRelation(rel, path); err != nil {
		t.Fatal(err)
	}
	c := NewCatalog()
	e, err := c.RegisterFile("fromfile", path)
	if err != nil {
		t.Fatal(err)
	}
	if e.Stats.Tuples != 512 {
		t.Errorf("loaded %d tuples", e.Stats.Tuples)
	}
	if !strings.HasPrefix(e.Source, "file:") {
		t.Errorf("source = %q", e.Source)
	}
	if _, err := c.RegisterFile("missing", filepath.Join(dir, "nope.skjr")); err == nil {
		t.Error("missing file registered")
	}
}

func TestCatalogRegisterZipfValidation(t *testing.T) {
	c := NewCatalog()
	if _, err := c.RegisterZipf("bad", GenerateSpec{N: 0}); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := c.RegisterZipf("bad", GenerateSpec{N: 100, Zipf: -2}); err == nil {
		t.Error("negative zipf accepted")
	}
	e, err := c.RegisterZipf("ok", GenerateSpec{N: 100, Zipf: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if e.Stats.Tuples != 100 {
		t.Errorf("generated %d tuples", e.Stats.Tuples)
	}
}

func TestCatalogList(t *testing.T) {
	c := NewCatalog()
	var rel skewjoin.Relation
	for _, name := range []string{"zeta", "alpha", "mid"} {
		if _, err := c.Register(name, rel, "test"); err != nil {
			t.Fatal(err)
		}
	}
	list := c.List()
	if len(list) != 3 || c.Len() != 3 {
		t.Fatalf("listed %d entries", len(list))
	}
	for i, want := range []string{"alpha", "mid", "zeta"} {
		if list[i].Name != want {
			t.Errorf("list[%d] = %q, want %q", i, list[i].Name, want)
		}
	}
}
