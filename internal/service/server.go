package service

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"skewjoin"
	"skewjoin/internal/outbuf"
	"skewjoin/internal/relation"
	"skewjoin/internal/volcano"
)

// Config tunes the server. The zero value serves with the host's full
// parallelism as the thread budget, a 16-deep admission queue, and a 30s
// default request timeout.
type Config struct {
	// ThreadBudget is the total worker-thread budget shared by all
	// concurrent joins (default: skewjoin.DefaultThreads()).
	ThreadBudget int
	// MaxQueue bounds the admission wait queue; arrivals beyond it are
	// shed with HTTP 429 (default 16; negative = no queue).
	MaxQueue int
	// DefaultTimeout bounds queue wait plus execution for requests that
	// set no timeout_ms (default 30s).
	DefaultTimeout time.Duration
	// Planner configures `auto` dispatch (zero value = CSH's detection
	// parameters).
	Planner skewjoin.PlannerConfig
	// AllowPathLoading permits POST /relations with a filesystem path.
	// The daemon enables it; embedders exposing the server to untrusted
	// clients should leave it off (a path request reads server-local
	// files).
	AllowPathLoading bool
	// Calibration pins the CPU cost-model constants for backend:"split"
	// planning instead of micro-running a fit on the first split request.
	// Embedders with pre-measured host constants (and tests that need a
	// deterministic plan) set it; nil keeps the self-calibration.
	Calibration *skewjoin.Calibration
}

func (c Config) defaults() Config {
	if c.ThreadBudget <= 0 {
		c.ThreadBudget = skewjoin.DefaultThreads()
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 16
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	return c
}

// Server is the join service: an http.Handler exposing the relation
// catalog, the admission-controlled join endpoint, and introspection.
//
// Endpoints:
//
//	POST   /relations                register a relation (path, zipf spec, or inline data)
//	GET    /relations                list catalog entries with cached stats
//	GET    /relations/{name}         one catalog entry
//	DELETE /relations/{name}         drop a relation
//	POST   /relations/{name}/extract pull the tuples of a key set (cluster hot-key shipping)
//	POST   /join                     run a join (auto-planned or pinned)
//	GET    /stats                    counters, catalog, latency histograms
//	GET    /healthz                  liveness/readiness probe (503 while draining)
type Server struct {
	cfg     Config
	catalog *Catalog
	adm     *Admission
	rec     *algRecorder
	mux     *http.ServeMux
	started time.Time

	// calOnce fits the CPU cost-model constants on the first
	// backend:"split" request. The constants are host properties, not
	// workload properties, so one calibration serves the server's
	// lifetime.
	calOnce sync.Once
	cal     skewjoin.Calibration

	// draining flips on BeginDrain: new joins and registrations are
	// refused with 503 while in-flight joins run to completion, and
	// healthz reports not-ready so a router stops sending work here.
	draining atomic.Bool
}

// New returns a ready-to-serve join server.
func New(cfg Config) *Server {
	cfg = cfg.defaults()
	s := &Server{
		cfg:     cfg,
		catalog: NewCatalog(),
		adm:     NewAdmission(cfg.ThreadBudget, cfg.MaxQueue),
		rec:     newAlgRecorder(),
		mux:     http.NewServeMux(),
		started: time.Now(),
	}
	s.mux.HandleFunc("POST /relations", s.handleRegister)
	s.mux.HandleFunc("GET /relations", s.handleListRelations)
	s.mux.HandleFunc("GET /relations/{name}", s.handleGetRelation)
	s.mux.HandleFunc("DELETE /relations/{name}", s.handleDropRelation)
	s.mux.HandleFunc("POST /relations/{name}/extract", s.handleExtract)
	s.mux.HandleFunc("POST /join", s.handleJoin)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return s
}

// Catalog exposes the relation catalog (the daemon preloads through it).
func (s *Server) Catalog() *Catalog { return s.catalog }

// BeginDrain puts the server into draining mode: healthz turns not-ready
// and new joins/registrations are refused with 503 + Retry-After, while
// requests already admitted keep running. Call it on SIGTERM, then bound
// the wait with DrainJoins before closing the listener, so a router doing
// a rolling restart sees a clean refusal instead of a dropped connection.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// DrainJoins blocks until every in-flight join has finished or ctx is
// done (returning its error). Callers almost always want a deadline on
// ctx: a wedged join must not hold the process open forever.
func (s *Server) DrainJoins(ctx context.Context) error {
	return s.adm.WaitIdle(ctx)
}

// refuseDraining writes the 503 a draining server answers mutating
// requests with; the Retry-After covers a typical rolling-restart.
func refuseDraining(w http.ResponseWriter) {
	w.Header().Set("Retry-After", "2")
	writeError(w, http.StatusServiceUnavailable, "server is draining for shutdown")
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// maxBodyBytes bounds request bodies. Most bodies are small JSON
// documents, but inline data registration (the cluster router shipping
// shard fragments) carries a base64 relation, so the bound is sized for
// fragment payloads rather than plain control messages.
const maxBodyBytes = 16 << 20

// maxExcludeKeys bounds the per-request exclude_keys list: the router
// excludes at most its hot-key cap (a handful of keys), so anything large
// is a malformed client, not a workload.
const maxExcludeKeys = 1024

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //skewlint:ignore err-drop -- write failure means the client went away; there is no channel left to report on
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		refuseDraining(w)
		return
	}
	var req RegisterRequest
	if !decodeBody(w, r, &req) {
		return
	}
	modes := 0
	for _, set := range []bool{req.Path != "", req.Generate != nil, req.Data != ""} {
		if set {
			modes++
		}
	}
	if modes != 1 {
		writeError(w, http.StatusBadRequest, "set exactly one of path, generate and data")
		return
	}
	var (
		entry *Entry
		err   error
	)
	switch {
	case req.Path != "":
		if !s.cfg.AllowPathLoading {
			writeError(w, http.StatusForbidden, "path loading is disabled on this server")
			return
		}
		entry, err = s.catalog.RegisterFile(req.Name, req.Path)
	case req.Generate != nil:
		entry, err = s.catalog.RegisterZipf(req.Name, *req.Generate)
	default:
		raw, decErr := base64.StdEncoding.DecodeString(req.Data)
		if decErr != nil {
			writeError(w, http.StatusBadRequest, "register: data is not valid base64: %v", decErr)
			return
		}
		entry, err = s.catalog.RegisterData(req.Name, raw)
	}
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrDuplicate) {
			status = http.StatusConflict
		}
		writeError(w, status, "register: %v", err)
		return
	}
	writeJSON(w, http.StatusCreated, entry.Info())
}

func (s *Server) handleListRelations(w http.ResponseWriter, r *http.Request) {
	entries := s.catalog.List()
	infos := make([]RelationInfo, 0, len(entries))
	for _, e := range entries {
		infos = append(infos, e.Info())
	}
	writeJSON(w, http.StatusOK, infos)
}

func (s *Server) handleGetRelation(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	e, ok := s.catalog.Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, "relation %q not registered", name)
		return
	}
	writeJSON(w, http.StatusOK, e.Info())
}

func (s *Server) handleDropRelation(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.catalog.Drop(name) {
		writeError(w, http.StatusNotFound, "relation %q not registered", name)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleExtract returns the named relation's tuples whose key is in the
// request's key set, in relation order, as an inline binary relation. Each
// hot key's tuples live wholly on the key's hash-owner shard, so the
// cluster router assembles a hot key's replica fragment with one extract
// call against that owner.
func (s *Server) handleExtract(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	e, ok := s.catalog.Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, "relation %q not registered", name)
		return
	}
	var req ExtractRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Keys) > maxExcludeKeys {
		writeError(w, http.StatusBadRequest, "extract: %d keys exceeds the %d-key bound", len(req.Keys), maxExcludeKeys)
		return
	}
	want := make(map[relation.Key]struct{}, len(req.Keys))
	for _, k := range req.Keys {
		want[relation.Key(k)] = struct{}{}
	}
	var out relation.Relation
	for _, t := range e.Rel.Tuples {
		if _, hot := want[t.Key]; hot {
			out.Tuples = append(out.Tuples, t)
		}
	}
	var buf bytes.Buffer
	if _, err := out.WriteTo(&buf); err != nil {
		writeError(w, http.StatusInternalServerError, "extract: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, ExtractResponse{
		Name:   name,
		Tuples: out.Len(),
		Data:   base64.StdEncoding.EncodeToString(buf.Bytes()),
	})
}

// resolveAlgorithm turns a request's algorithm/backend fields into a
// concrete algorithm, consulting the planner on the catalog's cached
// statistics for `auto`.
func (s *Server) resolveAlgorithm(req JoinRequest, rStats skewjoin.RelationStats) (skewjoin.Algorithm, *PlannerInfo, error) {
	name := req.Algorithm
	if name == "" {
		name = "auto"
	}
	if name != "auto" {
		alg := skewjoin.Algorithm(name)
		for _, known := range skewjoin.ExtendedAlgorithms() {
			if alg == known {
				return alg, nil, nil
			}
		}
		return "", nil, fmt.Errorf("unknown algorithm %q", name)
	}
	pcfg := s.cfg.Planner
	pcfg.Limit = req.Limit
	rec := skewjoin.RecommendFromStats(rStats, pcfg)
	info := &PlannerInfo{
		SkewDetected:   rec.SkewDetected,
		TopKeyEstimate: rec.TopKeyEstimate,
		SampleSize:     rec.SampleSize,
		Streaming:      rec.Streaming,
	}
	switch req.Backend {
	case "", "cpu":
		// A limited interactive request the planner predicts will
		// terminate early runs on the streaming symmetric join; full
		// scans keep the blocking recommendation.
		if rec.Streaming {
			return skewjoin.SSJ, info, nil
		}
		return rec.CPU, info, nil
	case "gpu":
		return rec.GPU, info, nil
	case "split":
		// The split executor makes its own per-partition placement from
		// the cost model; the sampling evidence still rides along.
		return skewjoin.Split, info, nil
	default:
		return "", nil, fmt.Errorf("unknown backend %q (want cpu, gpu or split)", req.Backend)
	}
}

// resolveDevice maps the request's device profile name to a simulator
// configuration.
func resolveDevice(name string) (skewjoin.DeviceConfig, error) {
	switch name {
	case "", "a100":
		return skewjoin.DeviceConfig{}, nil
	case "coupled":
		return skewjoin.CoupledDevice(), nil
	default:
		return skewjoin.DeviceConfig{}, fmt.Errorf("unknown device %q (want a100 or coupled)", name)
	}
}

// calibration returns the host's CPU cost-model constants, fitting them
// once with a micro-run over the first split request's inputs.
func (s *Server) calibration(r, sr skewjoin.Relation, threads int) *skewjoin.Calibration {
	s.calOnce.Do(func() {
		if s.cfg.Calibration != nil {
			s.cal = *s.cfg.Calibration
			return
		}
		s.cal = skewjoin.Calibrate(r, sr, threads)
	})
	return &s.cal
}

// consumerSink wires the requested volcano consumer into join options.
type consumerSink struct {
	factory func(worker int) skewjoin.ResultConsumer
	collect func()
	finish  func(resp *JoinResponse)
}

func buildConsumer(req JoinRequest) (*consumerSink, error) {
	switch req.Consumer {
	case "", "summary":
		return nil, nil
	case "count":
		root := volcano.NewCount()
		factory, collect := volcano.Sink(root, func() volcano.Consumer { return volcano.NewCount() })
		return &consumerSink{
			factory: factory,
			collect: collect,
			finish: func(resp *JoinResponse) {
				rows := root.Rows
				resp.Rows = &rows
			},
		}, nil
	case "topk":
		k := req.K
		if k <= 0 {
			k = 5
		}
		root := volcano.NewTopKeys(k)
		factory, collect := volcano.Sink(root, func() volcano.Consumer { return volcano.NewTopKeys(k) })
		return &consumerSink{
			factory: factory,
			collect: collect,
			finish: func(resp *JoinResponse) {
				for _, kw := range root.Heaviest() {
					resp.TopKeys = append(resp.TopKeys, KeyWeight{Key: uint32(kw.Key), Weight: kw.Weight})
				}
			},
		}, nil
	case "groups":
		one := func(outbuf.Result) uint64 { return 1 }
		root := volcano.NewGroupSum(one)
		factory, collect := volcano.Sink(root, func() volcano.Consumer { return volcano.NewGroupSum(one) })
		return &consumerSink{
			factory: factory,
			collect: collect,
			finish: func(resp *JoinResponse) {
				keys := make([]relation.Key, 0, len(root.Groups))
				for k := range root.Groups {
					keys = append(keys, k)
				}
				sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
				for _, k := range keys {
					resp.Groups = append(resp.Groups, KeyWeight{Key: uint32(k), Weight: root.Groups[k]})
				}
			},
		}, nil
	default:
		return nil, fmt.Errorf("unknown consumer %q (want summary, count, topk, or groups)", req.Consumer)
	}
}

// excludeTuples returns rel without the tuples whose key is in drop,
// preserving order. The copy is deliberate: catalog relations are shared
// with concurrent joins and must stay immutable.
func excludeTuples(rel skewjoin.Relation, drop map[relation.Key]struct{}) skewjoin.Relation {
	kept := make([]relation.Tuple, 0, len(rel.Tuples))
	for _, t := range rel.Tuples {
		if _, cut := drop[t.Key]; !cut {
			kept = append(kept, t)
		}
	}
	return skewjoin.Relation{Tuples: kept}
}

func (s *Server) handleJoin(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		refuseDraining(w)
		return
	}
	var req JoinRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Routing != "" {
		writeError(w, http.StatusBadRequest,
			"routing %q is a cluster-router field; this is a single-node server", req.Routing)
		return
	}
	// ?limit=N is the query-parameter spelling of the body's limit field
	// (the body wins when both are set), so interactive clients can bound
	// a join without editing the request document.
	if req.Limit == 0 {
		if q := r.URL.Query().Get("limit"); q != "" {
			n, convErr := strconv.Atoi(q)
			if convErr != nil || n < 0 {
				writeError(w, http.StatusBadRequest, "bad limit %q: want a non-negative integer", q)
				return
			}
			req.Limit = n
		}
	}
	if req.Limit < 0 {
		writeError(w, http.StatusBadRequest, "limit must be non-negative, got %d", req.Limit)
		return
	}
	rEntry, ok := s.catalog.Get(req.R)
	if !ok {
		writeError(w, http.StatusNotFound, "relation %q not registered", req.R)
		return
	}
	sEntry, ok := s.catalog.Get(req.S)
	if !ok {
		writeError(w, http.StatusNotFound, "relation %q not registered", req.S)
		return
	}
	alg, plannerInfo, err := s.resolveAlgorithm(req, rEntry.Stats)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Limit > 0 && (alg.IsGPU() || alg == skewjoin.Split) {
		writeError(w, http.StatusBadRequest,
			"limit requires a CPU operator; algorithm %q cannot early-terminate (its totals are modelled, not streamed)", alg)
		return
	}
	device, err := resolveDevice(req.Device)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sink, err := buildConsumer(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if sink != nil && alg == skewjoin.GSMJ {
		writeError(w, http.StatusBadRequest, "consumer %q is not supported for gsmj", req.Consumer)
		return
	}
	rRel, sRel := rEntry.Rel, sEntry.Rel
	if len(req.ExcludeKeys) > 0 {
		if len(req.ExcludeKeys) > maxExcludeKeys {
			writeError(w, http.StatusBadRequest, "%d exclude_keys exceeds the %d-key bound", len(req.ExcludeKeys), maxExcludeKeys)
			return
		}
		drop := make(map[relation.Key]struct{}, len(req.ExcludeKeys))
		for _, k := range req.ExcludeKeys {
			drop[relation.Key(k)] = struct{}{}
		}
		rRel = excludeTuples(rRel, drop)
		sRel = excludeTuples(sRel, drop)
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	// The deadline covers queue wait plus execution, and the context also
	// dies with the client connection, so an abandoned request frees its
	// workers either way.
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	weight := s.adm.ClampWeight(req.Threads)
	queuedAt := time.Now()
	release, err := s.adm.Acquire(ctx, weight)
	if err != nil {
		if errors.Is(err, ErrOverloaded) {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "%v", err)
			return
		}
		writeError(w, http.StatusGatewayTimeout, "timed out after %v waiting for admission", timeout)
		return
	}
	defer release()
	wait := time.Since(queuedAt)

	opts := &skewjoin.Options{Threads: weight, Context: ctx, Device: device, Limit: req.Limit}
	// GPU simulation parallelism spends host workers too, so clamp it to
	// the weight this request was admitted with.
	if hp := req.HostParallelism; hp != 0 {
		if hp > weight {
			hp = weight
		}
		opts.HostParallelism = hp
	}
	if alg == skewjoin.Split {
		opts.Calibration = s.calibration(rRel, sRel, weight)
		opts.Fragments = req.Fragments
	}
	if sink != nil {
		opts.Consumer = sink.factory
	}
	joinStart := time.Now()
	res, err := skewjoin.Join(alg, rRel, sRel, opts)
	joinDur := time.Since(joinStart)
	if err != nil {
		s.rec.observeError(string(alg))
		if ctx.Err() != nil {
			writeError(w, http.StatusGatewayTimeout, "join cancelled after %v: %v", joinDur.Round(time.Millisecond), err)
			return
		}
		writeError(w, http.StatusInternalServerError, "join failed: %v", err)
		return
	}
	s.rec.observe(string(alg), joinDur, res.JoinPhase, res.Stream)

	resp := JoinResponse{
		Algorithm: string(alg),
		Auto:      plannerInfo != nil,
		Planner:   plannerInfo,
		Matches:   res.Matches,
		Checksum:  res.Checksum,
		Modelled:  res.Modelled,
		WaitMS:    float64(wait) / float64(time.Millisecond),
		JoinMS:    float64(joinDur) / float64(time.Millisecond),
	}
	for _, p := range res.Phases {
		resp.Phases = append(resp.Phases, PhaseInfo{Name: p.Name, MS: float64(p.Duration) / float64(time.Millisecond)})
	}
	if jp := res.JoinPhase; jp != nil {
		resp.JoinPhase = &JoinPhaseInfo{
			Tasks:       jp.Tasks,
			SplitTasks:  jp.SplitTasks,
			MaxChain:    jp.MaxChain,
			ProbeVisits: jp.ProbeVisits,
			BuildMS:     float64(jp.BuildNs) / 1e6,
			ProbeMS:     float64(jp.ProbeNs) / 1e6,
		}
	}
	if st := res.Stream; st != nil {
		resp.Stream = &StreamInfo{
			FirstResultMS: float64(st.FirstResultNs) / 1e6,
			LimitMS:       float64(st.LimitNs) / 1e6,
			LimitHit:      st.LimitHit,
			Staged:        st.Staged,
			Chunks:        st.Chunks,
		}
	}
	if st := res.Split; st != nil {
		s.rec.observeSplit(st)
		info := &SplitInfo{
			CPUJoinMS:     float64(st.CPUJoinNs) / 1e6,
			GPUJoinMS:     float64(st.GPUJoinNs) / 1e6,
			GPUTransferMS: float64(st.GPUTransferNs) / 1e6,
			MakespanMS:    float64(st.MakespanNs) / 1e6,
			Imbalance:     st.Imbalance,
		}
		if plan := st.Plan; plan != nil {
			info.Split = plan.Split
			if !plan.Split {
				info.Degenerate = string(plan.Degenerate)
				info.DegenerateReason = plan.DegenerateReason
			}
			info.CPUParts = len(plan.CPUParts)
			info.GPUParts = len(plan.GPUParts)
			if plan.Fragmented() {
				info.Fragmented = true
				info.FragmentedPart = plan.FragmentedPart
				info.CPUFragments = st.CPUFragments
				info.GPUFragments = st.GPUFragments
			}
			info.PredictedMakespanMS = float64(plan.PredictedMakespanNs) / 1e6
		}
		resp.Split = info
	}
	if sink != nil {
		sink.collect()
		sink.finish(&resp)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	entries := s.catalog.List()
	infos := make([]RelationInfo, 0, len(entries))
	for _, e := range entries {
		infos = append(infos, e.Info())
	}
	writeJSON(w, http.StatusOK, StatsResponse{
		Relations:  infos,
		Admission:  s.adm.Snapshot(),
		Algorithms: s.rec.snapshot(),
		Split:      s.rec.splitSnapshot(),
		UptimeMS:   float64(time.Since(s.started)) / float64(time.Millisecond),
	})
}
