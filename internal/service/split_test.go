package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"skewjoin"
)

// TestServiceSplitBackend drives backend:"split" end to end: the response
// must carry the co-processing breakdown, match a direct library call,
// and show up in the /stats split totals.
func TestServiceSplitBackend(t *testing.T) {
	srv := httptest.NewServer(New(Config{ThreadBudget: 2}))
	defer srv.Close()

	spec := GenerateSpec{N: 20000, Zipf: 1.0, Seed: 42}
	register(t, srv.URL, "r", spec)
	spec.Stream = 1
	register(t, srv.URL, "s", spec)

	r, err := skewjoin.GenerateZipf(spec.N, spec.Zipf, spec.Seed, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := skewjoin.GenerateZipf(spec.N, spec.Zipf, spec.Seed, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := skewjoin.Expected(r, s)

	status, raw := doJSON(t, "POST", srv.URL+"/join", JoinRequest{
		R: "r", S: "s", Backend: "split", Device: "coupled",
	})
	if status != http.StatusOK {
		t.Fatalf("split join: status %d: %s", status, raw)
	}
	var resp JoinResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Algorithm != string(skewjoin.Split) || !resp.Auto {
		t.Errorf("algorithm %q auto=%v, want split auto", resp.Algorithm, resp.Auto)
	}
	if resp.Matches != want.Matches || resp.Checksum != want.Checksum {
		t.Errorf("split join: %d/%d, want %d/%d",
			resp.Matches, resp.Checksum, want.Matches, want.Checksum)
	}
	if resp.Split == nil {
		t.Fatal("response missing split info")
	}
	if got := resp.Split.CPUParts + resp.Split.GPUParts; got == 0 {
		t.Error("split info reports no placed partitions")
	}
	if resp.Split.Split && resp.Split.Degenerate != "" {
		t.Errorf("split info both split and degenerate: %+v", resp.Split)
	}
	if !resp.Split.Split && resp.Split.Degenerate == "" {
		t.Errorf("degenerate plan must name its backend: %+v", resp.Split)
	}
	if !resp.Split.Split && resp.Split.DegenerateReason == "" {
		t.Errorf("degenerate plan must carry a reason: %+v", resp.Split)
	}
	if resp.Split.Fragmented && (resp.Split.CPUFragments == 0 || resp.Split.GPUFragments == 0) {
		t.Errorf("fragmented plan must span both backends: %+v", resp.Split)
	}
	if resp.Split.MakespanMS <= 0 || resp.Split.PredictedMakespanMS <= 0 {
		t.Errorf("split timings missing: %+v", resp.Split)
	}

	st := getStats(t, srv.URL)
	if st.Split == nil {
		t.Fatal("/stats missing split totals")
	}
	if st.Split.Requests != 1 {
		t.Errorf("split requests = %d, want 1", st.Split.Requests)
	}
	if got := st.Split.SplitRuns + st.Split.DegenerateCPU + st.Split.DegenerateGPU; got != 1 {
		t.Errorf("split outcome counters sum to %d, want 1", got)
	}
	if st.Split.MakespanMS <= 0 || st.Split.PredictedMakespanMS <= 0 {
		t.Errorf("split totals timings missing: %+v", st.Split)
	}
	if _, ok := st.Algorithms["split"]; !ok {
		t.Error("/stats algorithms missing the split entry")
	}
}

// TestServiceSplitFragmented drives the intra-partition
// fragment-and-replicate path through the HTTP surface: at deep skew on
// the coupled device with one worker thread, the hottest partition's
// cost alone dominates the balanced bound, so the plan must fragment it
// across both backends, the /join breakdown must expose the fragment
// counts, and the /stats totals must record the fragmented run. A second
// request with fragmentation disabled must not fragment, and if it
// degenerates it must say why.
func TestServiceSplitFragmented(t *testing.T) {
	// Pin the calibration so the plan is a pure function of the inputs
	// rather than of this host's micro-run timings.
	cal := skewjoin.Calibration{BuildNsPerTuple: 10, ProbeNsPerUnit: 2.5}
	srv := httptest.NewServer(New(Config{ThreadBudget: 1, Calibration: &cal}))
	defer srv.Close()

	spec := GenerateSpec{N: 20000, Zipf: 1.4, Seed: 42}
	register(t, srv.URL, "r", spec)
	spec.Stream = 1
	register(t, srv.URL, "s", spec)

	status, raw := doJSON(t, "POST", srv.URL+"/join", JoinRequest{
		R: "r", S: "s", Backend: "split", Device: "coupled",
	})
	if status != http.StatusOK {
		t.Fatalf("split join: status %d: %s", status, raw)
	}
	var resp JoinResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Split == nil {
		t.Fatal("response missing split info")
	}
	if !resp.Split.Fragmented {
		t.Fatalf("deep-skew split should fragment the hot partition: %+v", resp.Split)
	}
	if resp.Split.CPUFragments == 0 || resp.Split.GPUFragments == 0 {
		t.Errorf("fragments on one backend only: %+v", resp.Split)
	}
	if resp.Split.FragmentedPart < 0 {
		t.Errorf("fragmented response missing the partition index: %+v", resp.Split)
	}

	status, raw = doJSON(t, "POST", srv.URL+"/join", JoinRequest{
		R: "r", S: "s", Backend: "split", Device: "coupled", Fragments: -1,
	})
	if status != http.StatusOK {
		t.Fatalf("split join (fragments off): status %d: %s", status, raw)
	}
	var resp2 JoinResponse
	if err := json.Unmarshal(raw, &resp2); err != nil {
		t.Fatal(err)
	}
	if resp2.Split == nil {
		t.Fatal("response missing split info")
	}
	if resp2.Split.Fragmented {
		t.Errorf("fragments=-1 still fragmented: %+v", resp2.Split)
	}
	if !resp2.Split.Split && resp2.Split.DegenerateReason == "" {
		t.Errorf("degenerate plan must say why: %+v", resp2.Split)
	}

	st := getStats(t, srv.URL)
	if st.Split == nil {
		t.Fatal("/stats missing split totals")
	}
	if st.Split.FragmentedRuns != 1 {
		t.Errorf("fragmented runs = %d, want 1", st.Split.FragmentedRuns)
	}
	if st.Split.CPUFragments == 0 || st.Split.GPUFragments == 0 {
		t.Errorf("fragment totals missing a backend: %+v", st.Split)
	}
}

// TestServiceSplitBadDevice: an unknown device profile is a client error.
func TestServiceSplitBadDevice(t *testing.T) {
	srv := httptest.NewServer(New(Config{ThreadBudget: 2}))
	defer srv.Close()
	register(t, srv.URL, "r", GenerateSpec{N: 1000, Zipf: 0, Seed: 1})
	register(t, srv.URL, "s", GenerateSpec{N: 1000, Zipf: 0, Seed: 1, Stream: 1})
	status, _ := doJSON(t, "POST", srv.URL+"/join", JoinRequest{
		R: "r", S: "s", Backend: "split", Device: "h100",
	})
	if status != http.StatusBadRequest {
		t.Fatalf("unknown device: status %d, want 400", status)
	}
}
