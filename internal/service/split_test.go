package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"skewjoin"
)

// TestServiceSplitBackend drives backend:"split" end to end: the response
// must carry the co-processing breakdown, match a direct library call,
// and show up in the /stats split totals.
func TestServiceSplitBackend(t *testing.T) {
	srv := httptest.NewServer(New(Config{ThreadBudget: 2}))
	defer srv.Close()

	spec := GenerateSpec{N: 20000, Zipf: 1.0, Seed: 42}
	register(t, srv.URL, "r", spec)
	spec.Stream = 1
	register(t, srv.URL, "s", spec)

	r, err := skewjoin.GenerateZipf(spec.N, spec.Zipf, spec.Seed, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := skewjoin.GenerateZipf(spec.N, spec.Zipf, spec.Seed, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := skewjoin.Expected(r, s)

	status, raw := doJSON(t, "POST", srv.URL+"/join", JoinRequest{
		R: "r", S: "s", Backend: "split", Device: "coupled",
	})
	if status != http.StatusOK {
		t.Fatalf("split join: status %d: %s", status, raw)
	}
	var resp JoinResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Algorithm != string(skewjoin.Split) || !resp.Auto {
		t.Errorf("algorithm %q auto=%v, want split auto", resp.Algorithm, resp.Auto)
	}
	if resp.Matches != want.Matches || resp.Checksum != want.Checksum {
		t.Errorf("split join: %d/%d, want %d/%d",
			resp.Matches, resp.Checksum, want.Matches, want.Checksum)
	}
	if resp.Split == nil {
		t.Fatal("response missing split info")
	}
	if got := resp.Split.CPUParts + resp.Split.GPUParts; got == 0 {
		t.Error("split info reports no placed partitions")
	}
	if resp.Split.Split && resp.Split.Degenerate != "" {
		t.Errorf("split info both split and degenerate: %+v", resp.Split)
	}
	if !resp.Split.Split && resp.Split.Degenerate == "" {
		t.Errorf("degenerate plan must name its backend: %+v", resp.Split)
	}
	if resp.Split.MakespanMS <= 0 || resp.Split.PredictedMakespanMS <= 0 {
		t.Errorf("split timings missing: %+v", resp.Split)
	}

	st := getStats(t, srv.URL)
	if st.Split == nil {
		t.Fatal("/stats missing split totals")
	}
	if st.Split.Requests != 1 {
		t.Errorf("split requests = %d, want 1", st.Split.Requests)
	}
	if got := st.Split.SplitRuns + st.Split.DegenerateCPU + st.Split.DegenerateGPU; got != 1 {
		t.Errorf("split outcome counters sum to %d, want 1", got)
	}
	if st.Split.MakespanMS <= 0 || st.Split.PredictedMakespanMS <= 0 {
		t.Errorf("split totals timings missing: %+v", st.Split)
	}
	if _, ok := st.Algorithms["split"]; !ok {
		t.Error("/stats algorithms missing the split entry")
	}
}

// TestServiceSplitBadDevice: an unknown device profile is a client error.
func TestServiceSplitBadDevice(t *testing.T) {
	srv := httptest.NewServer(New(Config{ThreadBudget: 2}))
	defer srv.Close()
	register(t, srv.URL, "r", GenerateSpec{N: 1000, Zipf: 0, Seed: 1})
	register(t, srv.URL, "s", GenerateSpec{N: 1000, Zipf: 0, Seed: 1, Stream: 1})
	status, _ := doJSON(t, "POST", srv.URL+"/join", JoinRequest{
		R: "r", S: "s", Backend: "split", Device: "h100",
	})
	if status != http.StatusBadRequest {
		t.Fatalf("unknown device: status %d, want 400", status)
	}
}
