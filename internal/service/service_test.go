package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"skewjoin"
)

func doJSON(t *testing.T, method, url string, body any) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

func register(t *testing.T, base, name string, spec GenerateSpec) {
	t.Helper()
	status, raw := doJSON(t, "POST", base+"/relations", RegisterRequest{Name: name, Generate: &spec})
	if status != http.StatusCreated {
		t.Fatalf("register %q: status %d: %s", name, status, raw)
	}
}

func getStats(t *testing.T, base string) StatsResponse {
	t.Helper()
	status, raw := doJSON(t, "GET", base+"/stats", nil)
	if status != http.StatusOK {
		t.Fatalf("GET /stats: status %d: %s", status, raw)
	}
	var st StatsResponse
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("decode /stats: %v", err)
	}
	return st
}

// TestServiceEndToEnd is the acceptance scenario from the issue: two
// registered relations, concurrent auto joins saturating the admission
// budget, clean 429s for the overflow, summaries that match a direct
// library call, and /stats counters that reconcile.
func TestServiceEndToEnd(t *testing.T) {
	// MaxQueue -1 disables queueing entirely, which makes rejection
	// deterministic: while the budget is held, every new arrival is shed.
	srv := New(Config{ThreadBudget: 4, MaxQueue: -1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const (
		smallN     = 1 << 16
		smallTheta = 0.9
		bigTheta   = 1.0
	)
	// At theta 1.0 the top key appears ~n/H(n) times on each side, so the
	// join output is quadratic in it: 1<<19 tuples yield ~1.5e9 matches —
	// long enough (seconds) that the shed requests below reliably arrive
	// while the budget is held, without the tens of seconds a larger table
	// would cost the suite. Under -short (how CI runs the race detector,
	// which slows the join ~15x) a quarter of that keeps the same shape.
	bigN := 1 << 19
	if testing.Short() {
		bigN = 1 << 17
	}
	register(t, ts.URL, "r", GenerateSpec{N: smallN, Zipf: smallTheta, Seed: 42, Stream: 0})
	register(t, ts.URL, "s", GenerateSpec{N: smallN, Zipf: smallTheta, Seed: 42, Stream: 1})
	register(t, ts.URL, "bigr", GenerateSpec{N: bigN, Zipf: bigTheta, Seed: 7, Stream: 0})
	register(t, ts.URL, "bigs", GenerateSpec{N: bigN, Zipf: bigTheta, Seed: 7, Stream: 1})

	// One auto join; its summary must match running the reported algorithm
	// directly against identically generated relations.
	status, raw := doJSON(t, "POST", ts.URL+"/join", JoinRequest{R: "r", S: "s"})
	if status != http.StatusOK {
		t.Fatalf("join: status %d: %s", status, raw)
	}
	var first JoinResponse
	if err := json.Unmarshal(raw, &first); err != nil {
		t.Fatal(err)
	}
	if !first.Auto || first.Planner == nil {
		t.Errorf("auto join did not report planner evidence: %+v", first)
	}
	if len(first.Phases) == 0 {
		t.Error("join response has no phase timings")
	}
	rl, err := skewjoin.GenerateZipf(smallN, smallTheta, 42, 0)
	if err != nil {
		t.Fatal(err)
	}
	sl, err := skewjoin.GenerateZipf(smallN, smallTheta, 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := skewjoin.Join(skewjoin.Algorithm(first.Algorithm), rl, sl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if first.Matches != direct.Matches || first.Checksum != direct.Checksum {
		t.Errorf("served join (%d, %#x) != direct %s join (%d, %#x)",
			first.Matches, first.Checksum, first.Algorithm, direct.Matches, direct.Checksum)
	}

	// Saturate the budget with a long full-weight join, then verify that
	// concurrent auto joins are shed with clean 429 responses.
	longDone := make(chan error, 1)
	go func() {
		// Explicit generous deadline: under the race detector this join
		// runs an order of magnitude slower than wall-clock normal.
		status, raw := doJSON(t, "POST", ts.URL+"/join", JoinRequest{R: "bigr", S: "bigs", TimeoutMS: 300_000})
		if status != http.StatusOK {
			longDone <- fmt.Errorf("long join: status %d: %s", status, raw)
			return
		}
		longDone <- nil
	}()
	deadline := time.Now().Add(10 * time.Second)
	for getStats(t, ts.URL).Admission.InFlight != 1 {
		if time.Now().After(deadline) {
			t.Fatal("long join never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}
	const shed = 3
	var wg sync.WaitGroup
	rejected := make([]error, shed)
	for i := 0; i < shed; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req, err := http.NewRequest("POST", ts.URL+"/join",
				bytes.NewReader([]byte(`{"r":"r","s":"s"}`)))
			if err != nil {
				rejected[i] = err
				return
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				rejected[i] = err
				return
			}
			defer resp.Body.Close()
			raw, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusTooManyRequests {
				rejected[i] = fmt.Errorf("status %d: %s", resp.StatusCode, raw)
				return
			}
			if resp.Header.Get("Retry-After") == "" {
				rejected[i] = fmt.Errorf("429 without Retry-After")
				return
			}
			var e ErrorResponse
			if err := json.Unmarshal(raw, &e); err != nil || e.Error == "" {
				rejected[i] = fmt.Errorf("429 body not a clean error: %q", raw)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range rejected {
		if err != nil {
			t.Errorf("over-budget request %d: %v", i, err)
		}
	}
	if err := <-longDone; err != nil {
		t.Fatal(err)
	}

	// The server must recover once the budget frees up.
	status, raw = doJSON(t, "POST", ts.URL+"/join", JoinRequest{R: "s", S: "r"})
	if status != http.StatusOK {
		t.Fatalf("post-saturation join: status %d: %s", status, raw)
	}

	// Counter reconciliation: every submitted join was either admitted or
	// rejected, nothing is still running, and no thread leaked.
	st := getStats(t, ts.URL)
	adm := st.Admission
	if adm.Submitted != 6 {
		t.Errorf("submitted = %d, want 6", adm.Submitted)
	}
	if adm.Admitted+adm.Rejected != adm.Submitted {
		t.Errorf("reconciliation: admitted %d + rejected %d != submitted %d",
			adm.Admitted, adm.Rejected, adm.Submitted)
	}
	if adm.RejectedFull != shed {
		t.Errorf("rejected_full = %d, want %d", adm.RejectedFull, shed)
	}
	if adm.Completed != adm.Admitted {
		t.Errorf("completed %d != admitted %d", adm.Completed, adm.Admitted)
	}
	if adm.InFlight != 0 || adm.Queued != 0 || adm.ThreadsInUse != 0 {
		t.Errorf("leaked admission state: %+v", adm)
	}
	if len(st.Relations) != 4 {
		t.Errorf("/stats lists %d relations, want 4", len(st.Relations))
	}
	var histCount uint64
	for _, as := range st.Algorithms {
		histCount += as.Count
	}
	if histCount != adm.Completed {
		t.Errorf("histogram count %d != completed joins %d", histCount, adm.Completed)
	}
}

func TestServiceConsumers(t *testing.T) {
	srv := New(Config{ThreadBudget: 4})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	register(t, ts.URL, "r", GenerateSpec{N: 1 << 14, Zipf: 0.9, Seed: 3, Stream: 0})
	register(t, ts.URL, "s", GenerateSpec{N: 1 << 14, Zipf: 0.9, Seed: 3, Stream: 1})

	status, raw := doJSON(t, "POST", ts.URL+"/join", JoinRequest{R: "r", S: "s", Consumer: "count"})
	if status != http.StatusOK {
		t.Fatalf("count join: status %d: %s", status, raw)
	}
	var resp JoinResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Rows == nil {
		t.Fatal("count consumer returned no rows field")
	}
	if *resp.Rows != resp.Matches {
		t.Errorf("streamed row count %d != match summary %d", *resp.Rows, resp.Matches)
	}

	status, raw = doJSON(t, "POST", ts.URL+"/join", JoinRequest{R: "r", S: "s", Consumer: "topk", K: 3})
	if status != http.StatusOK {
		t.Fatalf("topk join: status %d: %s", status, raw)
	}
	resp = JoinResponse{}
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.TopKeys) == 0 || len(resp.TopKeys) > 3 {
		t.Fatalf("topk returned %d keys, want 1..3", len(resp.TopKeys))
	}
	for i := 1; i < len(resp.TopKeys); i++ {
		if resp.TopKeys[i].Weight > resp.TopKeys[i-1].Weight {
			t.Errorf("top keys not sorted by weight: %+v", resp.TopKeys)
		}
	}
}

func TestServiceRequestTimeout(t *testing.T) {
	srv := New(Config{ThreadBudget: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	register(t, ts.URL, "r", GenerateSpec{N: 1 << 18, Zipf: 1.0, Seed: 5, Stream: 0})
	register(t, ts.URL, "s", GenerateSpec{N: 1 << 18, Zipf: 1.0, Seed: 5, Stream: 1})

	status, raw := doJSON(t, "POST", ts.URL+"/join", JoinRequest{R: "r", S: "s", TimeoutMS: 1})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("1ms join: status %d, want 504: %s", status, raw)
	}
	st := getStats(t, ts.URL)
	if st.Admission.ThreadsInUse != 0 || st.Admission.InFlight != 0 {
		t.Errorf("timed-out join leaked admission state: %+v", st.Admission)
	}
}

func TestServiceErrors(t *testing.T) {
	srv := New(Config{ThreadBudget: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	register(t, ts.URL, "r", GenerateSpec{N: 1 << 10, Zipf: 0.5, Seed: 1, Stream: 0})

	cases := []struct {
		name   string
		method string
		path   string
		body   any
		want   int
	}{
		{"bad body", "POST", "/join", "not json", http.StatusBadRequest},
		{"unknown field", "POST", "/join", map[string]any{"r": "r", "s": "r", "bogus": 1}, http.StatusBadRequest},
		{"duplicate register", "POST", "/relations", RegisterRequest{Name: "r", Generate: &GenerateSpec{N: 10}}, http.StatusConflict},
		{"path and generate", "POST", "/relations", map[string]any{"name": "x", "path": "/tmp/x", "generate": map[string]any{"n": 10}}, http.StatusBadRequest},
		{"path loading disabled", "POST", "/relations", RegisterRequest{Name: "x", Path: "/tmp/x"}, http.StatusForbidden},
		{"neither source", "POST", "/relations", RegisterRequest{Name: "x"}, http.StatusBadRequest},
		{"join unknown relation", "POST", "/join", JoinRequest{R: "nope", S: "r"}, http.StatusNotFound},
		{"join unknown s", "POST", "/join", JoinRequest{R: "r", S: "nope"}, http.StatusNotFound},
		{"unknown algorithm", "POST", "/join", JoinRequest{R: "r", S: "r", Algorithm: "bogus"}, http.StatusBadRequest},
		{"unknown backend", "POST", "/join", JoinRequest{R: "r", S: "r", Backend: "tpu"}, http.StatusBadRequest},
		{"unknown consumer", "POST", "/join", JoinRequest{R: "r", S: "r", Consumer: "sum"}, http.StatusBadRequest},
		{"get missing relation", "GET", "/relations/none", nil, http.StatusNotFound},
		{"drop missing relation", "DELETE", "/relations/none", nil, http.StatusNotFound},
	}
	for _, tc := range cases {
		status, raw := doJSON(t, tc.method, ts.URL+tc.path, tc.body)
		if status != tc.want {
			t.Errorf("%s: status %d, want %d: %s", tc.name, status, tc.want, raw)
			continue
		}
		var e ErrorResponse
		if err := json.Unmarshal(raw, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body not clean JSON: %q", tc.name, raw)
		}
	}

	// Lifecycle: list, get, drop.
	status, raw := doJSON(t, "GET", ts.URL+"/relations", nil)
	if status != http.StatusOK {
		t.Fatalf("list: status %d", status)
	}
	var infos []RelationInfo
	if err := json.Unmarshal(raw, &infos); err != nil || len(infos) != 1 || infos[0].Name != "r" {
		t.Errorf("list = %s (err %v)", raw, err)
	}
	if status, _ := doJSON(t, "GET", ts.URL+"/relations/r", nil); status != http.StatusOK {
		t.Errorf("get relation: status %d", status)
	}
	if status, _ := doJSON(t, "DELETE", ts.URL+"/relations/r", nil); status != http.StatusNoContent {
		t.Errorf("drop relation: status %d", status)
	}
	if status, _ := doJSON(t, "GET", ts.URL+"/relations/r", nil); status != http.StatusNotFound {
		t.Errorf("dropped relation still present: status %d", status)
	}
	if status, _ := doJSON(t, "GET", ts.URL+"/healthz", nil); status != http.StatusOK {
		t.Errorf("healthz: status %d", status)
	}
}
