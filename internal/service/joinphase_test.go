package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestJoinPhaseStatsExposed pins the join-phase introspection contract: CPU
// hash joins report per-request join_phase internals in the /join response,
// and /stats accumulates them per algorithm across requests.
func TestJoinPhaseStatsExposed(t *testing.T) {
	srv := New(Config{ThreadBudget: 4})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const n = 1 << 14
	register(t, ts.URL, "r", GenerateSpec{N: n, Zipf: 0.8, Seed: 11, Stream: 0})
	register(t, ts.URL, "s", GenerateSpec{N: n, Zipf: 0.8, Seed: 11, Stream: 1})

	join := func(alg string) JoinResponse {
		t.Helper()
		status, raw := doJSON(t, "POST", ts.URL+"/join", JoinRequest{R: "r", S: "s", Algorithm: alg})
		if status != http.StatusOK {
			t.Fatalf("join %s: status %d: %s", alg, status, raw)
		}
		var resp JoinResponse
		if err := json.Unmarshal(raw, &resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}

	const reps = 3
	var wantTasks, wantVisits uint64
	for i := 0; i < reps; i++ {
		resp := join("cbase")
		jp := resp.JoinPhase
		if jp == nil {
			t.Fatal("cbase join response missing join_phase")
		}
		if jp.Tasks <= 0 || jp.ProbeVisits == 0 {
			t.Fatalf("join_phase has empty counters: %+v", jp)
		}
		if jp.BuildMS <= 0 || jp.ProbeMS <= 0 {
			t.Fatalf("join_phase timing split not positive: %+v", jp)
		}
		wantTasks += uint64(jp.Tasks)
		wantVisits += jp.ProbeVisits
	}

	// GPU joins run on the simulator and have no CPU join-phase internals.
	if resp := join("gbase"); resp.JoinPhase != nil {
		t.Errorf("gbase join response unexpectedly has join_phase: %+v", resp.JoinPhase)
	}

	st := getStats(t, ts.URL)
	cb, ok := st.Algorithms["cbase"]
	if !ok {
		t.Fatal("/stats has no cbase entry")
	}
	tot := cb.JoinPhase
	if tot == nil {
		t.Fatal("/stats cbase entry missing join_phase totals")
	}
	if tot.Tasks != wantTasks || tot.ProbeVisits != wantVisits {
		t.Errorf("join_phase totals = tasks %d visits %d, want tasks %d visits %d",
			tot.Tasks, tot.ProbeVisits, wantTasks, wantVisits)
	}
	if tot.BuildMS <= 0 || tot.ProbeMS <= 0 || tot.MaxChain <= 0 {
		t.Errorf("join_phase totals not accumulated: %+v", tot)
	}
	if gb, ok := st.Algorithms["gbase"]; ok && gb.JoinPhase != nil {
		t.Errorf("gbase stats unexpectedly have join_phase totals: %+v", gb.JoinPhase)
	}
}
