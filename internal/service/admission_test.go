package service

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestAdmissionFastPath(t *testing.T) {
	a := NewAdmission(8, 4)
	rel1, err := a.Acquire(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := a.Acquire(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	st := a.Snapshot()
	if st.ThreadsInUse != 8 || st.InFlight != 2 || st.Admitted != 2 {
		t.Errorf("snapshot after two grants: %+v", st)
	}
	rel1()
	rel2()
	rel2() // idempotent
	st = a.Snapshot()
	if st.ThreadsInUse != 0 || st.InFlight != 0 || st.Completed != 2 {
		t.Errorf("snapshot after release: %+v", st)
	}
}

func TestAdmissionRejectsWhenQueueFull(t *testing.T) {
	a := NewAdmission(2, 1)
	release, err := a.Acquire(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// One waiter fits in the queue...
	waiterDone := make(chan error, 1)
	go func() {
		rel, err := a.Acquire(context.Background(), 1)
		if err == nil {
			rel()
		}
		waiterDone <- err
	}()
	// Wait until it is actually queued.
	for a.Snapshot().Queued != 1 {
		time.Sleep(100 * time.Microsecond)
	}
	// ...the next arrival must be shed immediately.
	if _, err := a.Acquire(context.Background(), 1); !errors.Is(err, ErrOverloaded) {
		t.Errorf("Acquire with full queue = %v, want ErrOverloaded", err)
	}
	release()
	if err := <-waiterDone; err != nil {
		t.Errorf("queued waiter = %v", err)
	}
	st := a.Snapshot()
	if st.Submitted != 3 || st.Admitted != 2 || st.RejectedFull != 1 {
		t.Errorf("counters: %+v", st)
	}
	if st.Admitted+st.Rejected != st.Submitted {
		t.Errorf("reconciliation: admitted %d + rejected %d != submitted %d", st.Admitted, st.Rejected, st.Submitted)
	}
}

func TestAdmissionTimeoutWhileQueued(t *testing.T) {
	a := NewAdmission(2, 4)
	release, err := a.Acquire(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := a.Acquire(ctx, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("queued Acquire past deadline = %v", err)
	}
	st := a.Snapshot()
	if st.RejectedTimeout != 1 || st.Queued != 0 {
		t.Errorf("counters after queue timeout: %+v", st)
	}
	release()
	if st := a.Snapshot(); st.ThreadsInUse != 0 {
		t.Errorf("threads leaked: %+v", st)
	}
}

func TestAdmissionFIFONoStarvation(t *testing.T) {
	// A heavyweight waiter at the head of the queue must not be starved by
	// lighter requests behind it: grants are strictly FIFO.
	a := NewAdmission(4, 8)
	release, err := a.Acquire(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	order := make(chan int, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		rel, err := a.Acquire(context.Background(), 4) // heavy, queued first
		if err != nil {
			t.Error(err)
			return
		}
		order <- 4
		rel()
	}()
	for a.Snapshot().Queued != 1 {
		time.Sleep(100 * time.Microsecond)
	}
	go func() {
		defer wg.Done()
		rel, err := a.Acquire(context.Background(), 1) // light, queued second
		if err != nil {
			t.Error(err)
			return
		}
		order <- 1
		rel()
	}()
	for a.Snapshot().Queued != 2 {
		time.Sleep(100 * time.Microsecond)
	}
	release()
	wg.Wait()
	if first := <-order; first != 4 {
		t.Errorf("light request overtook the heavy head-of-line waiter")
	}
}

func TestAdmissionWeightOutsideBudget(t *testing.T) {
	a := NewAdmission(4, 4)
	if _, err := a.Acquire(context.Background(), 0); err == nil {
		t.Error("weight 0 accepted")
	}
	if _, err := a.Acquire(context.Background(), 5); err == nil {
		t.Error("weight beyond budget accepted")
	}
	if got := a.ClampWeight(0); got != 4 {
		t.Errorf("ClampWeight(0) = %d, want full budget", got)
	}
	if got := a.ClampWeight(99); got != 4 {
		t.Errorf("ClampWeight(99) = %d", got)
	}
	if got := a.ClampWeight(3); got != 3 {
		t.Errorf("ClampWeight(3) = %d", got)
	}
}

func TestAdmissionStressReconciles(t *testing.T) {
	// Random weights, random hold times, random timeouts: after the dust
	// settles every counter must reconcile and no thread may be leaked.
	a := NewAdmission(8, 8)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 50; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), time.Duration(rng.Intn(3))*time.Millisecond)
				release, err := a.Acquire(ctx, 1+rng.Intn(8))
				if err == nil {
					time.Sleep(time.Duration(rng.Intn(200)) * time.Microsecond)
					release()
				}
				cancel()
			}
		}(g)
	}
	wg.Wait()
	st := a.Snapshot()
	if st.Submitted != 16*50 {
		t.Errorf("submitted %d, want %d", st.Submitted, 16*50)
	}
	if st.Admitted+st.Rejected != st.Submitted {
		t.Errorf("reconciliation: admitted %d + rejected %d != submitted %d", st.Admitted, st.Rejected, st.Submitted)
	}
	if st.Completed != st.Admitted {
		t.Errorf("completed %d != admitted %d", st.Completed, st.Admitted)
	}
	if st.ThreadsInUse != 0 || st.InFlight != 0 || st.Queued != 0 {
		t.Errorf("leaked state: %+v", st)
	}
}
