// Package service is the join server: a long-running process that owns a
// catalog of named relations, admits concurrent join requests against a
// shared worker-thread budget, plans `auto` requests with the adaptive
// planner, and serves results plus introspection over plain HTTP+JSON
// (stdlib net/http only, so the whole server is testable with httptest).
//
// The layer exists because the join kernels alone are solo benchmarks: the
// moment several queries share a machine, which backend runs a query and
// how many queries run at once dominate end-to-end behaviour. The server
// makes those decisions explicit — a weighted-semaphore admission
// controller sheds load instead of oversubscribing the pool, and the
// planner picks the skew-conscious or baseline join per request from the
// catalog's cached statistics.
package service

// RegisterRequest is the body of POST /relations. Exactly one of Path,
// Generate and Data must be set: Path loads a binary relation file written
// by cmd/datagen from the server's filesystem; Generate builds a zipf
// relation in place; Data carries the relation inline (base64 of the same
// binary format) — the cluster router ships shard fragments this way.
type RegisterRequest struct {
	Name     string        `json:"name"`
	Path     string        `json:"path,omitempty"`
	Generate *GenerateSpec `json:"generate,omitempty"`
	Data     string        `json:"data,omitempty"`
}

// GenerateSpec describes an in-place zipf relation (the paper's workload
// generator). Relations generated with the same Seed share a key universe,
// so two specs differing only in Stream produce joinable tables.
type GenerateSpec struct {
	N      int     `json:"n"`
	Zipf   float64 `json:"zipf"`
	Seed   int64   `json:"seed"`
	Stream int64   `json:"stream"`
}

// RelationInfo is the wire form of a catalog entry: identity plus the
// cached statistics the planner dispatches on.
type RelationInfo struct {
	Name         string `json:"name"`
	Source       string `json:"source"`
	Tuples       int    `json:"tuples"`
	Bytes        int    `json:"bytes"`
	DistinctKeys int    `json:"distinct_keys"`
	MaxKey       uint32 `json:"max_key"`
	MaxKeyFreq   int    `json:"max_key_freq"`
	// TopKeys are the relation's cached heavy hitters (up to 16), by
	// descending frequency. The cluster router's fragment-and-replicate
	// rule reads them straight from the catalog.
	TopKeys      []KeyFreqInfo `json:"top_keys,omitempty"`
	RegisteredAt string        `json:"registered_at"` // RFC 3339
}

// KeyFreqInfo is one heavy-hitter entry of RelationInfo.TopKeys.
type KeyFreqInfo struct {
	Key  uint32 `json:"key"`
	Freq int    `json:"freq"`
}

// ExtractRequest is the body of POST /relations/{name}/extract: it asks
// for every tuple of the named relation whose key is in Keys, in relation
// order. The cluster router uses it to pull a hot key's tuples off the
// key's hash-owner shard before broadcasting them (fragment-and-replicate).
type ExtractRequest struct {
	Keys []uint32 `json:"keys"`
}

// ExtractResponse carries the extracted tuples in the binary relation
// format, base64-encoded.
type ExtractResponse struct {
	Name   string `json:"name"`
	Tuples int    `json:"tuples"`
	Data   string `json:"data"`
}

// JoinRequest is the body of POST /join.
type JoinRequest struct {
	// R and S name catalog relations (build and probe side).
	R string `json:"r"`
	S string `json:"s"`
	// Algorithm pins a join implementation ("cbase", "csh", "gbase",
	// "gsh", ...) or asks the planner to choose ("auto", the default).
	Algorithm string `json:"algorithm,omitempty"`
	// Backend selects the architecture an `auto` request is planned for:
	// "cpu" (default, Cbase or CSH), "gpu" (Gbase or GSH on the
	// simulator), or "split" (cost-model-driven co-processing: the join is
	// divided across CPU workers and the simulated GPU, degenerating to a
	// single backend when the model predicts no win). Ignored when
	// Algorithm is pinned.
	Backend string `json:"backend,omitempty"`
	// Device selects the simulated GPU profile: "a100" (default, the
	// discrete flagship) or "coupled" (an integrated GPU only a small
	// multiple faster than the host cores — the regime where splitting
	// pays off).
	Device string `json:"device,omitempty"`
	// Threads is this request's worker-thread weight against the server's
	// admission budget (default: the whole budget; clamped to it).
	Threads int `json:"threads,omitempty"`
	// HostParallelism sets the host worker-pool size for simulated-GPU
	// block execution (gbase/gsh/gsmj): N>0 runs kernel launches on N
	// host workers (clamped to the request's admitted thread weight),
	// negative forces serial simulation, 0 keeps the server default.
	// Output and modelled times are bit-identical either way.
	HostParallelism int `json:"host_parallelism,omitempty"`
	// TimeoutMS bounds queue wait plus execution (default: the server's
	// configured timeout). Expiry cancels the join and frees its workers.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Fragments bounds how many pieces a backend:"split" plan may cut the
	// hottest partition into when its cost alone dominates the makespan
	// (intra-partition fragment-and-replicate): 0 keeps the server default
	// (8), 1 asks for the minimum split (2), negative disables
	// fragmentation so such plans degenerate to a single backend instead.
	// Ignored by non-split requests.
	Fragments int `json:"fragments,omitempty"`
	// Consumer selects the volcano upper operator consuming the output:
	// "summary" (default; match count + checksum only), "count" (streamed
	// row count through a volcano.Count sink), "topk" (heavy-hitter keys
	// of the join output, Misra-Gries lower bounds), or "groups" (exact
	// per-key output counts through a volcano.GroupSum sink; memory and
	// response size are O(distinct output keys) — the cluster router
	// merges these into exact fleet-wide top-k results).
	Consumer string `json:"consumer,omitempty"`
	// K is the heavy-hitter count for Consumer "topk" (default 5).
	K int `json:"k,omitempty"`
	// Limit stops the join once at least this many results have been
	// staged (0 = full join). Also settable as the ?limit=N query
	// parameter on POST /join (the body field wins when both are given).
	// An `auto` request with a limit is planned onto the streaming
	// symmetric join when the planner predicts the stream satisfies it
	// early; pinned GPU algorithms and backend:"split" reject a limit
	// (their totals are modelled, not streamed). A limit-terminated join
	// responds with stream.limit_hit and a partial result of at least
	// Limit matches.
	Limit int `json:"limit,omitempty"`
	// ExcludeKeys drops every tuple carrying one of these keys from both
	// inputs before the join runs. The cluster router carves the hot keys
	// out of a shard's hash fragments this way while their tuples run
	// through the replicated/split fragments instead; since a result
	// requires equal keys on both sides, excluded-vs-kept cross terms are
	// empty and partial results merge without double counting.
	ExcludeKeys []uint32 `json:"exclude_keys,omitempty"`
	// Routing is a cluster-router field ("hash", "frag" or "auto"); a
	// single-node server rejects requests that set it so a client pointed
	// at the wrong tier fails loudly instead of silently ignoring the
	// routing policy it asked for.
	Routing string `json:"routing,omitempty"`
}

// PhaseInfo is one timed phase of the executed join.
type PhaseInfo struct {
	Name string  `json:"name"`
	MS   float64 `json:"ms"`
}

// PlannerInfo reports the planner evidence behind an `auto` decision.
type PlannerInfo struct {
	SkewDetected   bool `json:"skew_detected"`
	TopKeyEstimate int  `json:"top_key_estimate"`
	SampleSize     int  `json:"sample_size"`
	// Streaming reports that the planner chose the streaming symmetric
	// join for this limited request.
	Streaming bool `json:"streaming,omitempty"`
}

// StreamInfo reports a join's incremental-delivery milestones: present
// for the streaming symmetric join (always) and for blocking CPU joins
// that ran with a limit.
type StreamInfo struct {
	// FirstResultMS is the time from join start to the first staged
	// result (0 when the join output is empty).
	FirstResultMS float64 `json:"first_result_ms"`
	// LimitMS is the time from join start until the request's limit was
	// reached (0 when no limit was set or it was never reached).
	LimitMS float64 `json:"limit_ms,omitempty"`
	// LimitHit reports the join stopped early at the requested limit;
	// matches/checksum then digest a partial prefix of the join.
	LimitHit bool `json:"limit_hit,omitempty"`
	// Staged is the number of results staged when the run ended.
	Staged uint64 `json:"staged"`
	// Chunks is the number of streamed input chunks processed (streaming
	// operator only).
	Chunks int `json:"chunks,omitempty"`
}

// KeyWeight is one heavy-hitter entry of a "topk" consumer.
type KeyWeight struct {
	Key    uint32 `json:"key"`
	Weight uint64 `json:"weight"`
}

// JoinPhaseInfo reports the CPU join phase's internals for one request:
// task counts, skew symptoms, and the build/probe CPU-time split (summed
// across workers, so it can exceed the phase wall-clock). Present for the
// CPU hash joins only.
type JoinPhaseInfo struct {
	Tasks       int     `json:"tasks"`
	SplitTasks  int     `json:"split_tasks"`
	MaxChain    int     `json:"max_chain"`
	ProbeVisits uint64  `json:"probe_visits"`
	BuildMS     float64 `json:"build_ms"`
	ProbeMS     float64 `json:"probe_ms"`
}

// SplitInfo reports how a backend:"split" request distributed its work
// across the two backends, with the cost model's prediction next to what
// actually happened. CPU times are host times, GPU times modelled device
// times (see the engine's SplitStats).
type SplitInfo struct {
	// Split is true when both backends ran; otherwise Degenerate names
	// the single backend the plan fell back to and DegenerateReason says
	// why the model declined to split ("hot-partition-dominates": one
	// partition's cost alone exceeded the balanced-makespan bound and
	// fragmentation was off or didn't pay; "min-win-threshold": the
	// predicted win fell under the win floor; "policy-pinned": the request
	// forced a single backend).
	Split            bool   `json:"split"`
	Degenerate       string `json:"degenerate,omitempty"`
	DegenerateReason string `json:"degenerate_reason,omitempty"`
	// CPUParts / GPUParts count the radix partitions placed on each side.
	CPUParts int `json:"cpu_parts"`
	GPUParts int `json:"gpu_parts"`
	// Fragmented reports the plan split the hottest partition itself:
	// its build side was replicated to both backends and its probe side
	// cut into CPUFragments + GPUFragments cost-proportional sub-ranges
	// (FragmentedPart is the partition's index).
	Fragmented     bool `json:"fragmented,omitempty"`
	FragmentedPart int  `json:"fragmented_part,omitempty"`
	CPUFragments   int  `json:"cpu_fragments,omitempty"`
	GPUFragments   int  `json:"gpu_fragments,omitempty"`
	// CPUJoinMS is the CPU side's per-worker busy time; GPUJoinMS /
	// GPUTransferMS the GPU side's modelled join and staging times.
	CPUJoinMS     float64 `json:"cpu_join_ms"`
	GPUJoinMS     float64 `json:"gpu_join_ms"`
	GPUTransferMS float64 `json:"gpu_transfer_ms"`
	// MakespanMS is partition + plan + max(cpu side, gpu side);
	// PredictedMakespanMS is the cost model's forecast of the join-phase
	// part of it.
	MakespanMS          float64 `json:"makespan_ms"`
	PredictedMakespanMS float64 `json:"predicted_makespan_ms"`
	// Imbalance is max(side)/min(side) when both backends ran, 0
	// otherwise.
	Imbalance float64 `json:"imbalance"`
}

// JoinResponse is the body of a successful POST /join.
type JoinResponse struct {
	Algorithm string       `json:"algorithm"`
	Auto      bool         `json:"auto"`
	Planner   *PlannerInfo `json:"planner,omitempty"`
	Matches   uint64       `json:"matches"`
	Checksum  uint64       `json:"checksum"`
	// Modelled is true when Phases are simulated GPU device time rather
	// than wall-clock.
	Modelled bool        `json:"modelled"`
	Phases   []PhaseInfo `json:"phases"`
	// WaitMS is time spent queued in admission; JoinMS is wall-clock
	// execution time (also what the /stats histograms record).
	WaitMS float64 `json:"wait_ms"`
	JoinMS float64 `json:"join_ms"`
	// Rows is set by the "count" consumer; TopKeys by "topk"; Groups by
	// "groups" (exact per-key output counts, ascending key order).
	Rows    *uint64     `json:"rows,omitempty"`
	TopKeys []KeyWeight `json:"top_keys,omitempty"`
	Groups  []KeyWeight `json:"groups,omitempty"`
	// JoinPhase holds join-phase internals for the CPU hash joins (for
	// backend:"split", its CPU side).
	JoinPhase *JoinPhaseInfo `json:"join_phase,omitempty"`
	// Split holds the co-processing breakdown for backend:"split".
	Split *SplitInfo `json:"split,omitempty"`
	// Stream holds the incremental-delivery milestones (streaming
	// operator or limited blocking run).
	Stream *StreamInfo `json:"stream,omitempty"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// AdmissionStats is the admission controller's counter snapshot. The
// counters reconcile: Submitted == Admitted + Rejected, and Rejected ==
// RejectedFull + RejectedTimeout.
type AdmissionStats struct {
	ThreadBudget int `json:"thread_budget"`
	MaxQueue     int `json:"max_queue"`
	// Gauges.
	ThreadsInUse int `json:"threads_in_use"`
	InFlight     int `json:"in_flight"`
	Queued       int `json:"queued"`
	// Monotonic counters.
	Submitted       uint64 `json:"submitted"`
	Admitted        uint64 `json:"admitted"`
	Rejected        uint64 `json:"rejected"`
	RejectedFull    uint64 `json:"rejected_full"`
	RejectedTimeout uint64 `json:"rejected_timeout"`
	Completed       uint64 `json:"completed"`
}

// HistBucket is one latency histogram bucket; LEMS is the bucket's upper
// bound in milliseconds, -1 for the overflow bucket.
type HistBucket struct {
	LEMS  float64 `json:"le_ms"`
	Count uint64  `json:"count"`
}

// JoinPhaseTotals aggregates join-phase internals across an algorithm's
// successful requests: cumulative task/visit counters and build/probe CPU
// time, plus the largest hash chain any request built. Only present for
// algorithms that report join-phase stats (the CPU hash joins).
type JoinPhaseTotals struct {
	Tasks       uint64  `json:"tasks"`
	SplitTasks  uint64  `json:"split_tasks"`
	MaxChain    int     `json:"max_chain"`
	ProbeVisits uint64  `json:"probe_visits"`
	BuildMS     float64 `json:"build_ms"`
	ProbeMS     float64 `json:"probe_ms"`
}

// FirstResultStats is the time-to-first-result histogram for the
// requests of one algorithm that reported the milestone (streaming runs
// and limited blocking runs). It is a separate histogram from the
// whole-join latency one: a streaming join's first result arrives orders
// of magnitude before its completion, and folding both into one
// distribution would hide exactly the metric the streaming operator
// exists to improve.
type FirstResultStats struct {
	Count   uint64       `json:"count"`
	TotalMS float64      `json:"total_ms"`
	MaxMS   float64      `json:"max_ms"`
	Buckets []HistBucket `json:"buckets"`
}

// AlgorithmStats is the cumulative per-algorithm service record: request
// counts, a wall-clock latency histogram over successful joins, and
// aggregated join-phase internals where the algorithm reports them.
type AlgorithmStats struct {
	Count     uint64           `json:"count"`
	Errors    uint64           `json:"errors"`
	TotalMS   float64          `json:"total_ms"`
	MaxMS     float64          `json:"max_ms"`
	Buckets   []HistBucket     `json:"buckets"`
	JoinPhase *JoinPhaseTotals `json:"join_phase,omitempty"`
	// FirstResult is the time-to-first-result histogram; omitted until a
	// request of this algorithm reports the milestone.
	FirstResult *FirstResultStats `json:"first_result,omitempty"`
	// LimitHits counts requests that terminated early at their limit.
	LimitHits uint64 `json:"limit_hits,omitempty"`
}

// SplitTotals aggregates co-processing behaviour across every successful
// backend:"split" request: how often the plan genuinely split versus
// degenerated, the cumulative per-backend join-side times, and how well
// balanced and well predicted the splits were.
type SplitTotals struct {
	Requests      uint64 `json:"requests"`
	SplitRuns     uint64 `json:"split_runs"`
	DegenerateCPU uint64 `json:"degenerate_cpu"`
	DegenerateGPU uint64 `json:"degenerate_gpu"`
	// FragmentedRuns counts split runs whose plan fragmented the hottest
	// partition across both backends; CPUFragments / GPUFragments are the
	// cumulative per-backend probe sub-range counts those runs executed.
	FragmentedRuns uint64 `json:"fragmented_runs,omitempty"`
	CPUFragments   uint64 `json:"cpu_fragments,omitempty"`
	GPUFragments   uint64 `json:"gpu_fragments,omitempty"`
	// Cumulative per-backend join-side times (CPU busy / GPU modelled).
	CPUJoinMS     float64 `json:"cpu_join_ms"`
	GPUJoinMS     float64 `json:"gpu_join_ms"`
	GPUTransferMS float64 `json:"gpu_transfer_ms"`
	// Cumulative actual and predicted join-side makespans (excluding
	// partition and plan time, unlike the per-request MakespanMS, so
	// the ratio is apples-to-apples with the model's forecast), for
	// fleet-level model accuracy: PredictedMakespanMS/MakespanMS near
	// 1.0 means the cost model is honest.
	MakespanMS          float64 `json:"makespan_ms"`
	PredictedMakespanMS float64 `json:"predicted_makespan_ms"`
	// MaxImbalance is the worst max(side)/min(side) any split run saw.
	MaxImbalance float64 `json:"max_imbalance"`
}

// StatsResponse is the body of GET /stats.
type StatsResponse struct {
	Relations  []RelationInfo            `json:"relations"`
	Admission  AdmissionStats            `json:"admission"`
	Algorithms map[string]AlgorithmStats `json:"algorithms"`
	// Split aggregates backend:"split" requests; omitted until one runs.
	Split    *SplitTotals `json:"split,omitempty"`
	UptimeMS float64      `json:"uptime_ms"`
}
