package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestDrainRefusesNewWork pins the drain contract: once BeginDrain is
// called, healthz turns not-ready and join/register are refused with 503 +
// Retry-After, while DrainJoins waits for in-flight work (simulated here by
// holding the admission slot directly) and honours its deadline.
func TestDrainRefusesNewWork(t *testing.T) {
	srv := New(Config{ThreadBudget: 1, MaxQueue: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	register(t, ts.URL, "r", GenerateSpec{N: 1 << 10, Zipf: 0.5, Seed: 1, Stream: 0})
	register(t, ts.URL, "s", GenerateSpec{N: 1 << 10, Zipf: 0.5, Seed: 1, Stream: 1})

	// Hold the single admission slot: an in-flight join in miniature.
	release, err := srv.adm.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	srv.BeginDrain()
	if !srv.Draining() {
		t.Fatal("Draining() = false after BeginDrain")
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz status = %d, want 503", resp.StatusCode)
	}

	status, raw := doJSON(t, "POST", ts.URL+"/join", JoinRequest{R: "r", S: "s"})
	if status != http.StatusServiceUnavailable {
		t.Errorf("draining join status = %d, want 503: %s", status, raw)
	}
	status, raw = doJSON(t, "POST", ts.URL+"/relations",
		RegisterRequest{Name: "late", Generate: &GenerateSpec{N: 64, Zipf: 0, Seed: 9}})
	if status != http.StatusServiceUnavailable {
		t.Errorf("draining register status = %d, want 503: %s", status, raw)
	}
	req, err := http.NewRequest("POST", ts.URL+"/join", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("draining join response carries no Retry-After")
	}

	// With the slot still held, a deadlined drain must report the deadline.
	short, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := srv.DrainJoins(short); err == nil {
		t.Error("DrainJoins returned nil while a join was in flight")
	}

	// Once the in-flight work releases, the drain completes promptly.
	go func() {
		time.Sleep(20 * time.Millisecond)
		release()
	}()
	long, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := srv.DrainJoins(long); err != nil {
		t.Errorf("DrainJoins after release: %v", err)
	}
}

// TestDrainLetsInFlightJoinFinish drives the real path: a join admitted
// before BeginDrain runs to completion and returns 200 even though the
// server refuses everything that arrives after the drain began.
func TestDrainLetsInFlightJoinFinish(t *testing.T) {
	srv := New(Config{ThreadBudget: 1, MaxQueue: 0})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	register(t, ts.URL, "r", GenerateSpec{N: 1 << 15, Zipf: 1.0, Seed: 3, Stream: 0})
	register(t, ts.URL, "s", GenerateSpec{N: 1 << 15, Zipf: 1.0, Seed: 3, Stream: 1})

	type result struct {
		status int
		raw    []byte
	}
	done := make(chan result, 1)
	go func() {
		status, raw := doJSON(t, "POST", ts.URL+"/join", JoinRequest{R: "r", S: "s"})
		done <- result{status, raw}
	}()

	// Wait until the join is admitted (or already finished — the
	// assertions below hold either way, so this cannot flake).
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st := srv.adm.Snapshot()
		if st.InFlight > 0 || st.Completed > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	srv.BeginDrain()
	if status, _ := doJSON(t, "POST", ts.URL+"/join", JoinRequest{R: "r", S: "s"}); status != http.StatusServiceUnavailable {
		t.Errorf("post-drain join status = %d, want 503", status)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.DrainJoins(ctx); err != nil {
		t.Fatalf("DrainJoins: %v", err)
	}
	res := <-done
	if res.status != http.StatusOK {
		t.Fatalf("in-flight join status = %d, want 200: %s", res.status, res.raw)
	}
}
