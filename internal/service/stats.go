package service

import (
	"sync"
	"time"

	"skewjoin"
)

// latencyBounds are the histogram bucket upper bounds. Log-ish spacing
// covers sub-millisecond cache-resident joins through multi-second
// large-table runs; everything beyond the last bound lands in the overflow
// bucket.
var latencyBounds = []time.Duration{
	1 * time.Millisecond,
	2 * time.Millisecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	1 * time.Second,
	2500 * time.Millisecond,
	5 * time.Second,
	10 * time.Second,
}

// durHist is a plain duration histogram over latencyBounds: count, sum,
// max, and per-bucket tallies. latencyHist layers the per-algorithm error
// and join-phase bookkeeping on top of one; the time-to-first-result
// record is a second, independent durHist.
type durHist struct {
	count   uint64
	sum     time.Duration
	max     time.Duration
	buckets []uint64 // len(latencyBounds)+1; last is the overflow bucket
}

func newDurHist() *durHist {
	return &durHist{buckets: make([]uint64, len(latencyBounds)+1)}
}

func (h *durHist) observe(d time.Duration) {
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
	for i, b := range latencyBounds {
		if d <= b {
			h.buckets[i]++
			return
		}
	}
	h.buckets[len(latencyBounds)]++
}

// histBuckets renders the bucket tallies with their upper bounds in
// milliseconds (-1 marks the overflow bucket).
func (h *durHist) histBuckets() []HistBucket {
	out := make([]HistBucket, 0, len(h.buckets))
	for i, c := range h.buckets {
		le := -1.0
		if i < len(latencyBounds) {
			le = float64(latencyBounds[i]) / float64(time.Millisecond)
		}
		out = append(out, HistBucket{LEMS: le, Count: c})
	}
	return out
}

// latencyHist is one algorithm's cumulative service record: how many
// requests ran it, how many failed, and the wall-clock latency
// distribution of the successes. The whole-join distribution and the
// time-to-first-result distribution are kept as separate histograms — a
// streaming join's first result lands orders of magnitude before its
// completion, and folding both into one set of buckets would bury the
// metric the streaming operator is measured by.
type latencyHist struct {
	durHist
	errs uint64
	// jp aggregates join-phase internals of the successful requests that
	// reported them (nil until the first one does).
	jp *JoinPhaseTotals
	// first is the time-to-first-result histogram (nil until a streaming
	// or limited run reports the milestone).
	first *durHist
	// limitHits counts requests that terminated early at their limit.
	limitHits uint64
}

func newLatencyHist() *latencyHist {
	return &latencyHist{durHist: *newDurHist()}
}

func (h *latencyHist) observe(d time.Duration, jp *skewjoin.JoinPhaseStats, stream *skewjoin.StreamStats) {
	h.durHist.observe(d)
	if jp != nil {
		if h.jp == nil {
			h.jp = &JoinPhaseTotals{}
		}
		h.jp.Tasks += uint64(jp.Tasks)
		h.jp.SplitTasks += uint64(jp.SplitTasks)
		if jp.MaxChain > h.jp.MaxChain {
			h.jp.MaxChain = jp.MaxChain
		}
		h.jp.ProbeVisits += jp.ProbeVisits
		h.jp.BuildMS += float64(jp.BuildNs) / 1e6
		h.jp.ProbeMS += float64(jp.ProbeNs) / 1e6
	}
	if stream != nil {
		if stream.FirstResultNs > 0 {
			if h.first == nil {
				h.first = newDurHist()
			}
			h.first.observe(time.Duration(stream.FirstResultNs))
		}
		if stream.LimitHit {
			h.limitHits++
		}
	}
}

func (h *latencyHist) snapshot() AlgorithmStats {
	st := AlgorithmStats{
		Count:     h.count,
		Errors:    h.errs,
		TotalMS:   float64(h.sum) / float64(time.Millisecond),
		MaxMS:     float64(h.max) / float64(time.Millisecond),
		Buckets:   h.histBuckets(),
		LimitHits: h.limitHits,
	}
	if h.jp != nil {
		jp := *h.jp
		st.JoinPhase = &jp
	}
	if h.first != nil {
		st.FirstResult = &FirstResultStats{
			Count:   h.first.count,
			TotalMS: float64(h.first.sum) / float64(time.Millisecond),
			MaxMS:   float64(h.first.max) / float64(time.Millisecond),
			Buckets: h.first.histBuckets(),
		}
	}
	return st
}

// algRecorder aggregates per-algorithm latency histograms under one lock;
// join latencies are tens of microseconds at minimum, so the lock is not a
// throughput concern.
type algRecorder struct {
	mu    sync.Mutex
	hists map[string]*latencyHist //skewlint:guarded-by mu
	split *SplitTotals            //skewlint:guarded-by mu
}

func newAlgRecorder() *algRecorder {
	return &algRecorder{hists: make(map[string]*latencyHist)}
}

func (r *algRecorder) histLocked(alg string) *latencyHist {
	h, ok := r.hists[alg]
	if !ok {
		h = newLatencyHist()
		r.hists[alg] = h
	}
	return h
}

func (r *algRecorder) observe(alg string, d time.Duration, jp *skewjoin.JoinPhaseStats, stream *skewjoin.StreamStats) {
	r.mu.Lock()
	r.histLocked(alg).observe(d, jp, stream)
	r.mu.Unlock()
}

func (r *algRecorder) observeError(alg string) {
	r.mu.Lock()
	r.histLocked(alg).errs++
	r.mu.Unlock()
}

// observeSplit folds one successful backend:"split" run into the
// co-processing totals.
func (r *algRecorder) observeSplit(st *skewjoin.SplitStats) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.split == nil {
		r.split = &SplitTotals{}
	}
	t := r.split
	t.Requests++
	if st.Plan != nil {
		if st.Plan.Split {
			t.SplitRuns++
		} else if st.Plan.Degenerate == skewjoin.BackendGPU {
			t.DegenerateGPU++
		} else {
			t.DegenerateCPU++
		}
		t.PredictedMakespanMS += float64(st.Plan.PredictedMakespanNs) / 1e6
	}
	if st.Fragmented() {
		t.FragmentedRuns++
		t.CPUFragments += uint64(st.CPUFragments)
		t.GPUFragments += uint64(st.GPUFragments)
	}
	t.CPUJoinMS += float64(st.CPUJoinNs) / 1e6
	t.GPUJoinMS += float64(st.GPUJoinNs) / 1e6
	t.GPUTransferMS += float64(st.GPUTransferNs) / 1e6
	t.MakespanMS += float64(st.JoinSideNs()) / 1e6
	if st.Imbalance > t.MaxImbalance {
		t.MaxImbalance = st.Imbalance
	}
}

func (r *algRecorder) snapshot() map[string]AlgorithmStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]AlgorithmStats, len(r.hists))
	for alg, h := range r.hists {
		out[alg] = h.snapshot()
	}
	return out
}

// splitSnapshot returns a copy of the co-processing totals, nil if no
// split request has run.
func (r *algRecorder) splitSnapshot() *SplitTotals {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.split == nil {
		return nil
	}
	t := *r.split
	return &t
}
