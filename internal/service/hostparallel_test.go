package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"skewjoin"
)

// TestJoinHostParallelism exercises the host_parallelism request knob: a
// GPU join run with host-parallel simulation must return exactly the
// summary and modelled timings of a serial run — the knob only changes
// how fast the host produces them — and a direct library call with the
// same setting must agree.
func TestJoinHostParallelism(t *testing.T) {
	srv := New(Config{ThreadBudget: 4})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	spec := GenerateSpec{N: 1 << 14, Zipf: 0.9, Seed: 42}
	register(t, ts.URL, "r", GenerateSpec{N: spec.N, Zipf: spec.Zipf, Seed: spec.Seed, Stream: 0})
	register(t, ts.URL, "s", GenerateSpec{N: spec.N, Zipf: spec.Zipf, Seed: spec.Seed, Stream: 1})

	runJoin := func(hostPar int) JoinResponse {
		t.Helper()
		status, raw := doJSON(t, "POST", ts.URL+"/join", JoinRequest{
			R: "r", S: "s", Algorithm: "gsh", HostParallelism: hostPar,
		})
		if status != http.StatusOK {
			t.Fatalf("join host_parallelism=%d: status %d: %s", hostPar, status, raw)
		}
		var jr JoinResponse
		if err := json.Unmarshal(raw, &jr); err != nil {
			t.Fatal(err)
		}
		return jr
	}

	serial := runJoin(-1)                // negative: force the serial seed path
	for _, hp := range []int{1, 4, 99} { // 99 exceeds the budget: clamped
		par := runJoin(hp)
		if par.Matches != serial.Matches || par.Checksum != serial.Checksum {
			t.Errorf("host_parallelism=%d: summary (%d, %d) differs from serial (%d, %d)",
				hp, par.Matches, par.Checksum, serial.Matches, serial.Checksum)
		}
		if len(par.Phases) != len(serial.Phases) {
			t.Fatalf("host_parallelism=%d: %d phases vs serial %d", hp, len(par.Phases), len(serial.Phases))
		}
		for i := range par.Phases {
			if par.Phases[i] != serial.Phases[i] {
				t.Errorf("host_parallelism=%d: phase %d = %+v, serial %+v",
					hp, i, par.Phases[i], serial.Phases[i])
			}
		}
	}

	// The served summary must also match a direct library call using the
	// public Options knob.
	r, err := skewjoin.GenerateZipf(spec.N, spec.Zipf, spec.Seed, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := skewjoin.GenerateZipf(spec.N, spec.Zipf, spec.Seed, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := skewjoin.Join(skewjoin.GSH, r, s, &skewjoin.Options{HostParallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != serial.Matches || res.Checksum != serial.Checksum {
		t.Errorf("library call: summary (%d, %d), served serial (%d, %d)",
			res.Matches, res.Checksum, serial.Matches, serial.Checksum)
	}
}
