package service

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"skewjoin"
)

// ErrDuplicate reports a Register against a name that is already taken.
var ErrDuplicate = errors.New("already registered")

// Entry is one named relation in the catalog, with the statistics the
// planner dispatches on cached at registration time (one scan, amortised
// over every `auto` join that touches the relation).
type Entry struct {
	Name         string
	Rel          skewjoin.Relation
	Stats        skewjoin.RelationStats
	Source       string
	RegisteredAt time.Time
}

// Info returns the entry's wire form.
func (e *Entry) Info() RelationInfo {
	info := RelationInfo{
		Name:         e.Name,
		Source:       e.Source,
		Tuples:       e.Stats.Tuples,
		Bytes:        e.Rel.Bytes(),
		DistinctKeys: e.Stats.DistinctKeys,
		MaxKey:       uint32(e.Stats.MaxKey),
		MaxKeyFreq:   e.Stats.MaxKeyFreq,
		RegisteredAt: e.RegisteredAt.UTC().Format(time.RFC3339),
	}
	for _, kf := range e.Stats.TopKeys {
		info.TopKeys = append(info.TopKeys, KeyFreqInfo{Key: uint32(kf.Key), Freq: kf.Freq})
	}
	return info
}

// Catalog is the server's relation store: named, immutable-once-registered
// relations plus cached RelationStats. All methods are safe for concurrent
// use; joins read entries without copying tuples, which is sound because
// every join algorithm treats its inputs as read-only.
type Catalog struct {
	mu      sync.RWMutex
	entries map[string]*Entry //skewlint:guarded-by mu
	now     func() time.Time  // injectable for tests
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{entries: make(map[string]*Entry), now: time.Now}
}

// maxNameLen bounds relation names so they stay usable as URL path
// elements and log tokens.
const maxNameLen = 128

func validName(name string) error {
	if name == "" {
		return fmt.Errorf("relation name must not be empty")
	}
	if len(name) > maxNameLen {
		return fmt.Errorf("relation name longer than %d bytes", maxNameLen)
	}
	if strings.ContainsAny(name, "/\\ \t\n") {
		return fmt.Errorf("relation name %q contains a slash or whitespace", name)
	}
	return nil
}

// Register adds rel under name, computing and caching its statistics.
// Registering an existing name fails; Drop it first.
func (c *Catalog) Register(name string, rel skewjoin.Relation, source string) (*Entry, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	// Stats are computed outside the lock: the scan is O(n) and must not
	// block concurrent joins against other relations.
	e := &Entry{Name: name, Rel: rel, Stats: skewjoin.Stats(rel), Source: source}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.entries[name]; dup {
		return nil, fmt.Errorf("relation %q %w", name, ErrDuplicate)
	}
	e.RegisteredAt = c.now()
	c.entries[name] = e
	return e, nil
}

// RegisterFile loads a binary relation file (cmd/datagen format) from the
// server's filesystem and registers it under name.
func (c *Catalog) RegisterFile(name, path string) (*Entry, error) {
	rel, err := skewjoin.LoadRelation(path)
	if err != nil {
		return nil, err
	}
	return c.Register(name, rel, "file:"+path)
}

// RegisterData parses a relation shipped inline in the binary format
// (cmd/datagen's) and registers it under name. The cluster router ships
// shard fragments — hash partitions and hot-key replica/split fragments —
// through this path, so unlike the other registration modes an empty
// relation is legal (a small relation's fragment can be empty on some
// shards).
func (c *Catalog) RegisterData(name string, data []byte) (*Entry, error) {
	var rel skewjoin.Relation
	if _, err := rel.ReadFrom(bytes.NewReader(data)); err != nil {
		return nil, fmt.Errorf("data: %w", err)
	}
	return c.Register(name, rel, "data")
}

// RegisterZipf generates a zipf relation in place and registers it.
func (c *Catalog) RegisterZipf(name string, spec GenerateSpec) (*Entry, error) {
	if spec.N <= 0 {
		return nil, fmt.Errorf("generate: n must be positive, got %d", spec.N)
	}
	rel, err := skewjoin.GenerateZipf(spec.N, spec.Zipf, spec.Seed, spec.Stream)
	if err != nil {
		return nil, fmt.Errorf("generate: %w", err)
	}
	source := fmt.Sprintf("zipf(n=%d,theta=%g,seed=%d,stream=%d)", spec.N, spec.Zipf, spec.Seed, spec.Stream)
	return c.Register(name, rel, source)
}

// Get returns the entry registered under name.
func (c *Catalog) Get(name string) (*Entry, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.entries[name]
	return e, ok
}

// Drop removes name from the catalog, reporting whether it was present.
// In-flight joins holding the entry keep their relation (slices stay
// valid); the name is immediately free for re-registration.
func (c *Catalog) Drop(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[name]
	delete(c.entries, name)
	return ok
}

// List returns every entry sorted by name.
func (c *Catalog) List() []*Entry {
	c.mu.RLock()
	out := make([]*Entry, 0, len(c.entries))
	for _, e := range c.entries {
		out = append(out, e)
	}
	c.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of registered relations.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}
