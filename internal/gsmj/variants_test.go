package gsmj

import (
	"fmt"
	"reflect"
	"testing"

	"skewjoin/internal/gpusim"
	"skewjoin/internal/oracle"
)

// TestHostParallelismOutputInvariant is the golden variant sweep for the
// host-parallel simulator knob, mirroring internal/cbase/variants_test.go.
// GSMJ's merge kernel emits equal-key runs through an append-only arena
// whose slices a staging tape retains, so the sweep covers both skew
// extremes (uniform: many range merges; full skew: tiled giant runs) and
// demands a bit-identical match with serial execution — summary, phases,
// launch trace and stats.
func TestHostParallelismOutputInvariant(t *testing.T) {
	for _, theta := range []float64{0, 1.0} {
		r, s := workload(t, 20000, theta, 37)
		want := oracle.Expected(r, s)
		var base Result
		for _, hp := range []int{0, 1, 4} {
			cfg := Config{Device: gpusim.Config{
				NumSMs: 16, SharedMemBytes: 4 << 10, HostParallelism: hp,
			}}
			res := Join(r, s, cfg)
			name := fmt.Sprintf("theta=%g/hostpar=%d", theta, hp)
			if res.Summary != want {
				t.Fatalf("%s: summary %+v, oracle %+v", name, res.Summary, want)
			}
			if hp == 0 {
				base = res
				continue
			}
			if !reflect.DeepEqual(res.Phases, base.Phases) {
				t.Errorf("%s: phases differ from serial\ngot:  %+v\nwant: %+v", name, res.Phases, base.Phases)
			}
			if !reflect.DeepEqual(res.Trace, base.Trace) {
				t.Errorf("%s: launch trace differs from serial", name)
			}
			if res.Stats != base.Stats {
				t.Errorf("%s: stats differ from serial\ngot:  %+v\nwant: %+v", name, res.Stats, base.Stats)
			}
		}
	}
}
