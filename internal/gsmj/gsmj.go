// Package gsmj implements a GPU sort-merge join on the gpusim device
// model — an extension beyond the paper's evaluated set that completes the
// sort-vs-hash comparison (internal/smj) on the GPU side.
//
// Sort phase: a four-pass LSD radix sort. Each pass is chunk-parallel —
// blocks histogram their chunk into 256 shared-memory counters, reserve
// output windows with one atomic per bucket, and scatter. Like every LSD
// pass the work depends only on the input size, so the sort phase is
// perfectly skew-independent.
//
// Merge phase: the sorted key space is cut into ranges (whole equal-key
// runs, never split) and one thread block merges each range, streaming
// both sorted inputs with coalesced reads and emitting equal-key cross
// products with coalesced writes. A heavy key makes one run's cross
// product enormous; like GSH's skew-join, oversized runs are tiled into
// (R-tuple, S-tile) blocks so the skewed output parallelises across SMs
// instead of serialising in one block.
package gsmj

import (
	"sort"
	"time"

	"skewjoin/internal/exec"
	"skewjoin/internal/gpusim"
	"skewjoin/internal/outbuf"
	"skewjoin/internal/relation"
	"skewjoin/internal/smj"
)

// Config tunes the GPU sort-merge join.
type Config struct {
	// Device configures the simulated GPU (zero fields = A100).
	Device gpusim.Config
	// RunTileTuples tiles the S side of an equal-key run in the merge
	// phase when the run's cross product exceeds one block's worth of
	// work. 0 = the shared-memory partition capacity; negative disables
	// tiling (one block per range regardless of run size).
	RunTileTuples int
}

// Defaults fills zero fields.
func (c Config) Defaults() Config {
	c.Device = c.Device.Defaults()
	return c
}

// Stats reports the internals of a run.
type Stats struct {
	Runs       int // equal-key runs merged
	TiledRuns  int // runs split into (R tuple, S tile) blocks
	MergeTasks int // merge-phase thread blocks
	Sim        gpusim.Stats
}

// Result is the outcome of one GPU sort-merge join run. All durations are
// modelled GPU time.
type Result struct {
	Summary outbuf.Summary
	Phases  []exec.Phase // "sort", "merge"
	Stats   Stats
	Trace   []gpusim.LaunchRecord
}

// Total returns the end-to-end modelled time of the run.
func (r Result) Total() time.Duration {
	var d time.Duration
	for _, p := range r.Phases {
		d += p.Duration
	}
	return d
}

// Join runs the GPU sort-merge join over r and s on a fresh device.
func Join(r, s relation.Relation, cfg Config) Result {
	cfg = cfg.Defaults()
	dev := gpusim.NewDevice(cfg.Device)
	var res Result

	// Sort phase: modelled cost of 4 LSD passes per table; functional
	// result from the host-side sorter (identical output ordering).
	sortDur := sortCost(dev, r.Len()) + sortCost(dev, s.Len())
	sr := smj.SortByKey(r.Tuples, 1)
	ss := smj.SortByKey(s.Tuples, 1)

	// Merge phase.
	mergeDur := mergePhase(dev, cfg, sr, ss, &res.Stats)

	res.Summary = dev.OutputSummary()
	res.Stats.Sim = dev.Stats()
	res.Trace = dev.Records()
	res.Phases = []exec.Phase{
		{Name: "sort", Duration: sortDur},
		{Name: "merge", Duration: mergeDur},
	}
	return res
}

// sortCost charges four chunk-parallel LSD passes over n tuples.
func sortCost(dev *gpusim.Device, n int) time.Duration {
	if n == 0 {
		return 0
	}
	dcfg := dev.Config()
	blocks := 4 * dcfg.NumSMs
	chunk := (n + blocks - 1) / blocks
	if chunk == 0 {
		chunk = 1
		blocks = n
	}
	var total time.Duration
	for pass := 0; pass < 4; pass++ {
		total += dev.Launch("sort", "gsmj-sort-pass", blocks, func(b *gpusim.Block) {
			lo := b.Idx * chunk
			if lo >= n {
				return
			}
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			c := hi - lo
			// Histogram scan: coalesced read, shared-memory counters.
			b.GlobalCoalesced(c * relation.TupleSize)
			b.Shared(c)
			b.UniformWork(c, 2)
			// Window reservation: one atomic per radix bucket.
			b.Atomic(256)
			// Scatter: read again; writes land in 256 per-block windows —
			// coalesced within a window, so charge bandwidth plus one
			// transaction-start per window.
			b.GlobalCoalesced(2 * c * relation.TupleSize)
			b.GlobalRandom(256)
			b.UniformWork(c, 2)
		})
	}
	return total
}

// mergeTask is one merge-phase thread block's assignment.
type mergeTask struct {
	srLo, srHi int // R index range (whole runs)
	ssLo, ssHi int // S index range
	// For a tiled run: one R tuple against one S tile.
	tiled bool
	key   relation.Key
	rp    relation.Payload
	sps   []relation.Payload
}

// mergePhase cuts the sorted key space into ranges and launches one block
// per range, tiling oversized equal-key runs.
func mergePhase(dev *gpusim.Device, cfg Config, sr, ss []relation.Tuple, st *Stats) time.Duration {
	if len(sr) == 0 || len(ss) == 0 {
		return 0
	}
	dcfg := dev.Config()
	capacity := dev.PartitionCapacityTuples()
	tile := cfg.RunTileTuples
	if tile == 0 {
		tile = capacity
	}

	// Cut into ~4*SMs ranges on R run boundaries.
	ranges := 4 * dcfg.NumSMs
	if ranges > len(sr) {
		ranges = len(sr)
	}
	bounds := runBounds(sr, ranges)

	var tasks []mergeTask
	runStats := &runCollector{tile: tile, capacity: capacity}
	for i := 0; i+1 < len(bounds); i++ {
		loKey, hiKey := bounds[i], bounds[i+1]
		if loKey >= hiKey {
			continue
		}
		collectTasks(sr, ss, loKey, hiKey, runStats, &tasks)
	}
	st.Runs = runStats.runs
	st.TiledRuns = runStats.tiled
	st.MergeTasks = len(tasks)
	if len(tasks) == 0 {
		return 0
	}

	return dev.Launch("merge", "gsmj-merge", len(tasks), func(b *gpusim.Block) {
		t := tasks[b.Idx]
		if t.tiled {
			// One R tuple against one S tile: coalesced stream.
			b.GlobalRandom(1)
			b.GlobalCoalesced(len(t.sps) * 4)
			b.UniformWork(len(t.sps), 2)
			b.GlobalCoalesced(len(t.sps) * 12)
			b.Out.PushRunS(t.key, t.rp, t.sps)
			return
		}
		// Range merge: stream both sorted ranges, emit per-run products.
		rRange := sr[t.srLo:t.srHi]
		sRange := ss[t.ssLo:t.ssHi]
		b.GlobalCoalesced((len(rRange) + len(sRange)) * relation.TupleSize)
		b.UniformWork(len(rRange)+len(sRange), 2)
		matches := emitRuns(rRange, sRange, tile, b.Out)
		b.UniformWork(int(matches), 2)
		b.GlobalCoalesced(int(matches) * 12)
	})
}

// runCollector tracks run statistics during task collection.
type runCollector struct {
	tile     int
	capacity int
	runs     int
	tiled    int
}

// collectTasks walks the key range [loKey, hiKey) and appends either one
// range-merge task or, for runs whose cross product exceeds the capacity,
// per-(R tuple, S tile) tasks.
func collectTasks(sr, ss []relation.Tuple, loKey, hiKey uint64, rc *runCollector, tasks *[]mergeTask) {
	ri := sort.Search(len(sr), func(i int) bool { return uint64(sr[i].Key) >= loKey })
	si := sort.Search(len(ss), func(i int) bool { return uint64(ss[i].Key) >= loKey })
	rEndRange := sort.Search(len(sr), func(i int) bool { return uint64(sr[i].Key) >= hiKey })
	sEndRange := sort.Search(len(ss), func(i int) bool { return uint64(ss[i].Key) >= hiKey })

	// Scan for oversized runs; emit tiled tasks for them and group the
	// rest into one range task per contiguous stretch.
	normLoR, normLoS := ri, si
	flushNormal := func(rHi, sHi int) {
		if rHi > normLoR && sHi > normLoS {
			*tasks = append(*tasks, mergeTask{srLo: normLoR, srHi: rHi, ssLo: normLoS, ssHi: sHi})
		}
	}
	for ri < rEndRange {
		key := sr[ri].Key
		rEnd := ri
		for rEnd < rEndRange && sr[rEnd].Key == key {
			rEnd++
		}
		sLo := sort.Search(len(ss), func(i int) bool { return uint64(ss[i].Key) >= uint64(key) })
		sEnd := sLo
		for sEnd < len(ss) && ss[sEnd].Key == key {
			sEnd++
		}
		nR, nS := rEnd-ri, sEnd-sLo
		if nS > 0 {
			rc.runs++
		}
		if rc.tile > 0 && nS > 0 && nR*nS > rc.capacity*4 {
			// Oversized: flush the normal stretch before it, then tile.
			flushNormal(ri, sLo)
			rc.tiled++
			sps := make([]relation.Payload, 0, nS)
			for _, t := range ss[sLo:sEnd] {
				sps = append(sps, t.Payload)
			}
			for _, rt := range sr[ri:rEnd] {
				for lo := 0; lo < len(sps); lo += rc.tile {
					hi := lo + rc.tile
					if hi > len(sps) {
						hi = len(sps)
					}
					*tasks = append(*tasks, mergeTask{
						tiled: true, key: key, rp: rt.Payload, sps: sps[lo:hi],
					})
				}
			}
			normLoR, normLoS = rEnd, sEnd
		}
		ri = rEnd
	}
	flushNormal(rEndRange, sEndRange)
}

// emitRuns merges two sorted ranges, emitting every equal-key cross
// product except the tiled ones (which were already peeled into their own
// tasks — they cannot appear here because tiling removed them from the
// range task's bounds). Returns the number of results emitted.
//
// Run payloads are staged in an append-only arena rather than a reused
// scratch slice: a Writer may retain the run slice past the call (the
// host-parallel Tape does), so earlier runs must never be overwritten.
func emitRuns(rRange, sRange []relation.Tuple, tile int, out outbuf.Writer) uint64 {
	before := out.Count()
	ri, si := 0, 0
	var arena []relation.Payload
	for ri < len(rRange) && si < len(sRange) {
		rk, sk := rRange[ri].Key, sRange[si].Key
		switch {
		case rk < sk:
			ri++
		case sk < rk:
			si++
		default:
			key := rk
			rEnd := ri
			for rEnd < len(rRange) && rRange[rEnd].Key == key {
				rEnd++
			}
			sEnd := si
			for sEnd < len(sRange) && sRange[sEnd].Key == key {
				sEnd++
			}
			start := len(arena)
			for _, t := range rRange[ri:rEnd] {
				arena = append(arena, t.Payload)
			}
			rps := arena[start:len(arena):len(arena)]
			for _, t := range sRange[si:sEnd] {
				out.PushRun(key, rps, t.Payload)
			}
			ri, si = rEnd, sEnd
		}
	}
	return out.Count() - before
}

// runBounds returns `ranges`+1 key bounds cutting sr into contiguous
// stretches on run boundaries (bounds[0] = 0, last = 2^32).
func runBounds(sr []relation.Tuple, ranges int) []uint64 {
	bounds := make([]uint64, ranges+1)
	bounds[ranges] = 1 << 32
	for i := 1; i < ranges; i++ {
		idx := len(sr) * i / ranges
		bounds[i] = uint64(sr[idx].Key)
	}
	for i := 1; i <= ranges; i++ {
		if bounds[i] < bounds[i-1] {
			bounds[i] = bounds[i-1]
		}
	}
	return bounds
}
