package gsmj

import (
	"testing"

	"skewjoin/internal/gbase"
	"skewjoin/internal/gpusim"
	"skewjoin/internal/oracle"
	"skewjoin/internal/relation"
	"skewjoin/internal/zipf"
)

func workload(t *testing.T, n int, theta float64, seed int64) (relation.Relation, relation.Relation) {
	t.Helper()
	g, err := zipf.New(zipf.Config{Theta: theta, Universe: n, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	r, s := g.Pair(n)
	return r, s
}

func TestJoinMatchesOracleAcrossSkew(t *testing.T) {
	for _, theta := range []float64{0, 0.5, 1.0} {
		r, s := workload(t, 20000, theta, 42)
		want := oracle.Expected(r, s)
		got := Join(r, s, Config{})
		if got.Summary != want {
			t.Errorf("theta=%.2f: got %+v, want %+v", theta, got.Summary, want)
		}
	}
}

func TestJoinEmptyInputs(t *testing.T) {
	var empty relation.Relation
	r, s := workload(t, 1000, 0.8, 7)
	if res := Join(empty, s, Config{}); res.Summary.Count != 0 {
		t.Errorf("empty R: %d results", res.Summary.Count)
	}
	if res := Join(r, empty, Config{}); res.Summary.Count != 0 {
		t.Errorf("empty S: %d results", res.Summary.Count)
	}
}

func TestTilingInvariance(t *testing.T) {
	r, s := workload(t, 30000, 1.0, 9)
	want := oracle.Expected(r, s)
	for _, tile := range []int{-1, 0, 64, 1 << 20} {
		res := Join(r, s, Config{RunTileTuples: tile})
		if res.Summary != want {
			t.Errorf("tile=%d: got %+v, want %+v", tile, res.Summary, want)
		}
	}
}

func TestTilingEngagesUnderSkewOnly(t *testing.T) {
	r, s := workload(t, 50000, 0, 3)
	res := Join(r, s, Config{})
	if res.Stats.TiledRuns != 0 {
		t.Errorf("uniform data tiled %d runs", res.Stats.TiledRuns)
	}

	r, s = workload(t, 50000, 1.0, 3)
	res = Join(r, s, Config{})
	if res.Stats.TiledRuns == 0 {
		t.Error("zipf 1.0 tiled no runs")
	}
	untiled := Join(r, s, Config{RunTileTuples: -1})
	if untiled.Summary != res.Summary {
		t.Fatal("tiling changed the result")
	}
	if res.Total() >= untiled.Total() {
		t.Errorf("tiling should reduce modelled time under skew: %v vs %v",
			res.Total(), untiled.Total())
	}
}

func TestSortPhaseSkewIndependent(t *testing.T) {
	r0, s0 := workload(t, 60000, 0, 5)
	r1, s1 := workload(t, 60000, 1.0, 5)
	p0 := Join(r0, s0, Config{}).Phases[0].Duration
	p1 := Join(r1, s1, Config{}).Phases[0].Duration
	if p0 != p1 {
		t.Errorf("sort phase should be exactly skew-independent (modelled): %v vs %v", p0, p1)
	}
}

func TestCompetitiveWithHashJoinsAtHighSkew(t *testing.T) {
	// The GPU sort-vs-hash shape: GSMJ should, like GSH, avoid Gbase's
	// chain-and-bitmap explosion at high skew.
	r, s := workload(t, 60000, 1.0, 11)
	gb := gbase.Join(r, s, gbase.Config{})
	gm := Join(r, s, Config{})
	if gm.Summary != gb.Summary {
		t.Fatal("results diverge")
	}
	if gm.Total() >= gb.Total() {
		t.Errorf("at zipf 1.0 GSMJ (%v) should beat Gbase (%v)", gm.Total(), gb.Total())
	}
}

func TestStatsAndTrace(t *testing.T) {
	r, s := workload(t, 20000, 0.9, 13)
	res := Join(r, s, Config{Device: gpusim.Config{SharedMemBytes: 8 << 10}})
	if res.Stats.Runs == 0 || res.Stats.MergeTasks == 0 {
		t.Errorf("stats empty: %+v", res.Stats)
	}
	if len(res.Trace) == 0 {
		t.Error("no trace records")
	}
	if len(res.Phases) != 2 || res.Phases[0].Name != "sort" || res.Phases[1].Name != "merge" {
		t.Errorf("phases = %+v", res.Phases)
	}
}
