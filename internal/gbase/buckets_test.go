package gbase

import (
	"sort"
	"testing"
	"testing/quick"

	"skewjoin/internal/hashfn"
	"skewjoin/internal/relation"
	"skewjoin/internal/zipf"
)

func TestBucketListAppendAndChaining(t *testing.T) {
	var bl bucketList
	for i := 0; i < 10; i++ {
		bl.append(relation.Tuple{Key: relation.Key(i)}, 4)
	}
	if bl.total != 10 {
		t.Fatalf("total = %d", bl.total)
	}
	if len(bl.buckets) != 3 {
		t.Fatalf("buckets = %d, want 3 (4+4+2)", len(bl.buckets))
	}
	for i, b := range bl.buckets {
		if len(b) > 4 {
			t.Errorf("bucket %d overfull: %d", i, len(b))
		}
		if i < len(bl.buckets)-1 && len(b) != 4 {
			t.Errorf("non-tail bucket %d not full: %d", i, len(b))
		}
	}
}

func TestGatherRanges(t *testing.T) {
	var bl bucketList
	for i := 0; i < 10; i++ {
		bl.append(relation.Tuple{Key: relation.Key(i)}, 3)
	}
	all := bl.gather(nil, 0, len(bl.buckets))
	if len(all) != 10 {
		t.Fatalf("gather all: %d tuples", len(all))
	}
	// Disjoint ranges cover exactly the list.
	head := bl.gather(nil, 0, 2)
	tail := bl.gather(nil, 2, len(bl.buckets))
	if len(head)+len(tail) != 10 {
		t.Errorf("split gather: %d + %d", len(head), len(tail))
	}
	for i, tp := range append(head, tail...) {
		if tp.Key != relation.Key(i) {
			t.Fatalf("gather order broken at %d: key %d", i, tp.Key)
		}
	}
	// gather reuses the destination slice.
	buf := make([]relation.Tuple, 0, 16)
	out := bl.gather(buf, 0, 1)
	if cap(out) != cap(buf) {
		t.Error("gather did not reuse the destination")
	}
}

func TestPartitionBucketsPreservesMultiset(t *testing.T) {
	g := zipf.MustNew(zipf.Config{Theta: 0.9, Universe: 2000, Seed: 1})
	tuples := g.NewRelation(20000, 1).Tuples
	lists := partitionBuckets(tuples, 3, 2, 64)
	if len(lists) != 32 {
		t.Fatalf("got %d lists", len(lists))
	}
	var got []relation.Tuple
	total := 0
	for p, bl := range lists {
		total += bl.total
		for _, bucket := range bl.buckets {
			for _, tp := range bucket {
				// Placement: tuple must belong to partition p.
				want := int(hashfn.Radix(tp.Key, 0, 3))<<2 | int(hashfn.Radix(tp.Key, 3, 2))
				if want != p {
					t.Fatalf("key %d in partition %d, want %d", tp.Key, p, want)
				}
				got = append(got, tp)
			}
		}
	}
	if total != len(tuples) || len(got) != len(tuples) {
		t.Fatalf("lists hold %d tuples, want %d", total, len(tuples))
	}
	sortTuples(got)
	want := make([]relation.Tuple, len(tuples))
	copy(want, tuples)
	sortTuples(want)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("multiset differs at %d", i)
		}
	}
}

func sortTuples(ts []relation.Tuple) {
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].Key != ts[j].Key {
			return ts[i].Key < ts[j].Key
		}
		return ts[i].Payload < ts[j].Payload
	})
}

func TestQuickPartitionBuckets(t *testing.T) {
	f := func(keys []uint16, bucketRaw uint8) bool {
		tuples := make([]relation.Tuple, len(keys))
		for i, k := range keys {
			tuples[i] = relation.Tuple{Key: relation.Key(k), Payload: relation.Payload(i)}
		}
		bucketTuples := int(bucketRaw%32) + 1
		lists := partitionBuckets(tuples, 2, 2, bucketTuples)
		total := 0
		for _, bl := range lists {
			total += bl.total
			for i, b := range bl.buckets {
				if len(b) > bucketTuples {
					return false
				}
				if i < len(bl.buckets)-1 && len(b) != bucketTuples {
					return false
				}
			}
		}
		return total == len(tuples)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMaxListTotal(t *testing.T) {
	a, b := &bucketList{total: 3}, &bucketList{total: 7}
	if got := maxListTotal([]*bucketList{a, b}); got != 7 {
		t.Errorf("maxListTotal = %d", got)
	}
	if got := maxListTotal(nil); got != 0 {
		t.Errorf("empty maxListTotal = %d", got)
	}
}
