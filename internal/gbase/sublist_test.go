package gbase

import (
	"testing"

	"skewjoin/internal/oracle"
)

func TestSubListSizeInvariance(t *testing.T) {
	// Correctness must not depend on the sub-list granularity.
	r, s := workload(t, 40000, 1.0, 21)
	want := oracle.Expected(r, s)
	for _, sub := range []int{64, 500, 4096, 1 << 20 /* clamped */} {
		res := Join(r, s, Config{SubListTuples: sub})
		if res.Summary != want {
			t.Errorf("sublist=%d: got %+v, want %+v", sub, res.Summary, want)
		}
	}
}

func TestSmallerSubListsMeanMoreReprobes(t *testing.T) {
	r, s := workload(t, 60000, 1.0, 22)
	big := Join(r, s, Config{SubListTuples: 4096})
	small := Join(r, s, Config{SubListTuples: 256})
	if small.Stats.SReprobes <= big.Stats.SReprobes {
		t.Errorf("reprobes should grow as sub-lists shrink: %d (256) vs %d (4096)",
			small.Stats.SReprobes, big.Stats.SReprobes)
	}
	if small.Stats.JoinBlocks <= big.Stats.JoinBlocks {
		t.Errorf("blocks should grow as sub-lists shrink: %d vs %d",
			small.Stats.JoinBlocks, big.Stats.JoinBlocks)
	}
}
