package gbase

import (
	"skewjoin/internal/hashfn"
	"skewjoin/internal/relation"
)

// Gbase stores each partition as a linked list of fixed-size buckets: "If
// a bucket is full, Gbase allocates a new bucket and links the buckets of
// a partition in a linked list" (§II-B). This file implements that
// structure functionally. The skew technique then falls out naturally: a
// long bucket list is decomposed into disjoint *sub-lists* — runs of
// consecutive buckets — each joined against the full S list by its own
// thread block.

// bucketList is one partition's chain of buckets.
type bucketList struct {
	buckets [][]relation.Tuple // each of capacity bucketTuples
	total   int
}

// append adds one tuple, allocating a new bucket when the tail is full.
func (bl *bucketList) append(t relation.Tuple, bucketTuples int) {
	if n := len(bl.buckets); n == 0 || len(bl.buckets[n-1]) == bucketTuples {
		bl.buckets = append(bl.buckets, make([]relation.Tuple, 0, bucketTuples))
	}
	tail := len(bl.buckets) - 1
	bl.buckets[tail] = append(bl.buckets[tail], t)
	bl.total++
}

// gather copies the tuples of buckets [lo, hi) into dst (resliced and
// returned) — the block reading a sub-list into shared memory.
func (bl *bucketList) gather(dst []relation.Tuple, lo, hi int) []relation.Tuple {
	dst = dst[:0]
	for _, b := range bl.buckets[lo:hi] {
		dst = append(dst, b...)
	}
	return dst
}

// partitionBuckets runs Gbase's two partition passes over the table,
// producing one bucket list per final partition. Pass 1 scatters on the
// low bits1 bits into fan1 lists; pass 2 refines each of those into fan2
// sub-partitions. The final ordering of partition ids matches
// radix.PartOf (p1<<bits2 | p2), so R and S lists pair up by index.
func partitionBuckets(tuples []relation.Tuple, bits1, bits2 uint32, bucketTuples int) []*bucketList {
	fan1 := 1 << bits1
	fan2 := 1 << bits2

	pass1 := make([]*bucketList, fan1)
	for i := range pass1 {
		pass1[i] = &bucketList{}
	}
	for _, t := range tuples {
		pass1[hashfn.Radix(t.Key, 0, bits1)].append(t, bucketTuples)
	}

	final := make([]*bucketList, fan1*fan2)
	for i := range final {
		final[i] = &bucketList{}
	}
	for p1 := 0; p1 < fan1; p1++ {
		for _, bucket := range pass1[p1].buckets {
			for _, t := range bucket {
				p2 := hashfn.Radix(t.Key, bits1, bits2)
				final[p1*fan2+int(p2)].append(t, bucketTuples)
			}
		}
	}
	return final
}

// maxListTotal returns the largest partition's tuple count.
func maxListTotal(lists []*bucketList) int {
	max := 0
	for _, bl := range lists {
		if bl.total > max {
			max = bl.total
		}
	}
	return max
}
