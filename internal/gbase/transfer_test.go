package gbase

import (
	"testing"

	"skewjoin/internal/oracle"
)

func TestIncludeTransferAddsPhase(t *testing.T) {
	r, s := workload(t, 50000, 0.2, 31)
	plain := Join(r, s, Config{})
	withT := Join(r, s, Config{IncludeTransfer: true})
	if withT.Summary != plain.Summary || withT.Summary != oracle.Expected(r, s) {
		t.Fatal("transfer modelling changed the join result")
	}
	if plain.Phases[0].Name == "transfer" {
		t.Error("transfer phase present without IncludeTransfer")
	}
	if withT.Phases[0].Name != "transfer" || withT.Phases[0].Duration <= 0 {
		t.Fatalf("transfer phase missing: %+v", withT.Phases)
	}
	if withT.Total() <= plain.Total() {
		t.Errorf("transfer should add time: %v vs %v", withT.Total(), plain.Total())
	}
}

func TestTransferDominatesLowSkewJoin(t *testing.T) {
	// The §II-B argument for GPU-resident data: at low skew the PCIe copy
	// of the inputs rivals or exceeds the join work itself.
	r, s := workload(t, 100000, 0, 32)
	res := Join(r, s, Config{IncludeTransfer: true})
	var transfer, rest int64
	for _, p := range res.Phases {
		if p.Name == "transfer" {
			transfer = int64(p.Duration)
		} else {
			rest += int64(p.Duration)
		}
	}
	if transfer < rest/2 {
		t.Errorf("at zipf 0 the transfer (%d) should be comparable to the join (%d)", transfer, rest)
	}
}
