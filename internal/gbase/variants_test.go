package gbase

import (
	"fmt"
	"reflect"
	"testing"

	"skewjoin/internal/gpusim"
	"skewjoin/internal/oracle"
)

// TestHostParallelismOutputInvariant is the golden variant sweep for the
// host-parallel simulator knob, mirroring internal/cbase/variants_test.go:
// every HostParallelism setting must reproduce not just the oracle summary
// but the serial run bit for bit — summary, per-phase modelled times,
// launch trace (float cycles included) and simulator stats.
func TestHostParallelismOutputInvariant(t *testing.T) {
	for _, theta := range []float64{0, 0.8} {
		r, s := workload(t, 20000, theta, 31)
		want := oracle.Expected(r, s)
		var base Result
		for _, hp := range []int{0, 1, 4} {
			cfg := Config{Device: gpusim.Config{
				NumSMs: 16, SharedMemBytes: 4 << 10, HostParallelism: hp,
			}}
			res := Join(r, s, cfg)
			name := fmt.Sprintf("theta=%g/hostpar=%d", theta, hp)
			if res.Summary != want {
				t.Fatalf("%s: summary %+v, oracle %+v", name, res.Summary, want)
			}
			if hp == 0 {
				base = res
				continue
			}
			if !reflect.DeepEqual(res.Phases, base.Phases) {
				t.Errorf("%s: phases differ from serial\ngot:  %+v\nwant: %+v", name, res.Phases, base.Phases)
			}
			if !reflect.DeepEqual(res.Trace, base.Trace) {
				t.Errorf("%s: launch trace differs from serial", name)
			}
			if res.Stats != base.Stats {
				t.Errorf("%s: stats differ from serial\ngot:  %+v\nwant: %+v", name, res.Stats, base.Stats)
			}
		}
	}
}
