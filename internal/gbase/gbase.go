// Package gbase implements the baseline GPU hash join of the paper: the
// hardware-conscious GPU radix join of Sioulas et al. (ICDE 2019), which
// the paper denotes Gbase (§II-B), running on the gpusim device model.
//
// Partition phase: the input tables are divided into shared-memory-sized
// partitions over two passes. Threads scan and copy tuples into the buckets
// of target partitions; full buckets are chained into linked lists. To keep
// global-memory writes coalesced, tuples are read in register batches and
// reordered through shared memory before being written out. Work is
// chunk-parallel over the input, so partitioning cost is skew-independent.
//
// Join phase: each (R partition, S partition) pair is handled by one thread
// block, which builds a chained hash table over the R partition in shared
// memory and probes it with the S partition. Output is coordinated with a
// write bitmap: for every step down a hash chain, each thread atomically
// sets its intention bit, the block synchronises, and threads compute their
// output offsets — so the synchronisation cost scales with chain length
// (§III).
//
// Skew handling: a long R partition (one that exceeds the shared-memory
// budget) is decomposed into disjoint sub-lists, and one thread block joins
// each sub-list against the *full* S partition. This re-probes every S
// tuple once per sub-list and does nothing about S-side skew — the two
// weaknesses the paper demonstrates.
package gbase

import (
	"time"

	"skewjoin/internal/exec"
	"skewjoin/internal/gpupart"
	"skewjoin/internal/gpusim"
	"skewjoin/internal/outbuf"
	"skewjoin/internal/relation"
)

// Config tunes Gbase.
type Config struct {
	// Device configures the simulated GPU (zero fields = A100).
	Device gpusim.Config
	// BucketTuples is the linked-bucket granularity of the partition phase
	// (default 512): one bucket-allocation atomic per BucketTuples tuples.
	BucketTuples int
	// BatchTuples is the register-batch size for the shared-memory reorder
	// (paper example: 4).
	BatchTuples int
	// SubListTuples is the sub-list granularity used to decompose a
	// skewed R partition (Gbase's native skew knob). 0 means the
	// shared-memory capacity; values above it are clamped, since a
	// sub-list's hash table must fit in shared memory.
	SubListTuples int
	// IncludeTransfer adds a "transfer" phase modelling the PCIe copy of
	// both input tables to the device. The paper studies GPU-resident data
	// (§II-B) because this transfer can rival the join itself; enabling it
	// here quantifies that argument.
	IncludeTransfer bool
	// Flush optionally installs a per-SM batch consumer on the device's
	// output buffers (the volcano model's upper operator).
	Flush func(sm int) outbuf.FlushFunc
}

// Defaults fills zero fields.
func (c Config) Defaults() Config {
	c.Device = c.Device.Defaults()
	if c.BucketTuples <= 0 {
		c.BucketTuples = 512
	}
	if c.BatchTuples <= 0 {
		c.BatchTuples = 4
	}
	return c
}

// Stats reports the internals of a Gbase run.
type Stats struct {
	Bits1, Bits2  uint32
	Fanout        int
	MaxPartitionR int
	MaxPartitionS int
	JoinBlocks    int    // thread blocks in the join phase (incl. sub-lists)
	SubListBlocks int    // blocks beyond one-per-pair, i.e. skew decomposition
	SReprobes     uint64 // extra S-tuple probes caused by sub-lists
	Sim           gpusim.Stats
}

// Result is the outcome of one Gbase run. All durations are modelled GPU
// time from the simulator.
type Result struct {
	Summary outbuf.Summary
	Phases  []exec.Phase // "partition", "join"
	Stats   Stats
	// Trace lists every kernel launch with its block count, makespan and
	// imbalance — the simulator's per-launch records.
	Trace []gpusim.LaunchRecord
}

// Total returns the end-to-end modelled time of the run.
func (r Result) Total() time.Duration {
	var d time.Duration
	for _, p := range r.Phases {
		d += p.Duration
	}
	return d
}

// Join runs Gbase over r and s on a fresh simulated device.
func Join(r, s relation.Relation, cfg Config) Result {
	cfg = cfg.Defaults()
	dev := gpusim.NewDevice(cfg.Device)
	if cfg.Flush != nil {
		dev.SetFlush(cfg.Flush)
	}
	capacity := dev.PartitionCapacityTuples()
	n := r.Len()
	if s.Len() > n {
		n = s.Len()
	}
	bits1, bits2 := gpupart.Fanout(n, capacity)

	var res Result
	res.Stats.Bits1, res.Stats.Bits2 = bits1, bits2
	res.Stats.Fanout = 1 << (bits1 + bits2)

	var transferDur time.Duration
	if cfg.IncludeTransfer {
		transferDur = dev.Transfer("transfer", "gbase-h2d", r.Bytes()+s.Bytes())
	}

	// Partition phase (modelled cost + the bucket-list structure).
	dur := partitionTable(dev, cfg, r.Tuples, 1<<bits1)
	rLists := partitionBuckets(r.Tuples, bits1, bits2, cfg.BucketTuples)
	durS := partitionTable(dev, cfg, s.Tuples, 1<<bits1)
	sLists := partitionBuckets(s.Tuples, bits1, bits2, cfg.BucketTuples)
	res.Stats.MaxPartitionR = maxListTotal(rLists)
	res.Stats.MaxPartitionS = maxListTotal(sLists)

	// Join phase.
	joinDur := joinPhase(dev, cfg, rLists, sLists, capacity, &res.Stats)

	dev.FlushOutputs()
	res.Summary = dev.OutputSummary()
	res.Stats.Sim = dev.Stats()
	res.Trace = dev.Records()
	if cfg.IncludeTransfer {
		res.Phases = append(res.Phases, exec.Phase{Name: "transfer", Duration: transferDur})
	}
	res.Phases = append(res.Phases,
		exec.Phase{Name: "partition", Duration: dur + durS},
		exec.Phase{Name: "join", Duration: joinDur},
	)
	return res
}

// partitionTable charges the modelled cost of Gbase's two partition passes
// over one table. Pass 1 and pass 2 are both chunk-parallel: the paper's
// Gbase lets all threads scan and copy to linked bucket lists, so the work
// per block depends only on the chunk size, never on skew.
func partitionTable(dev *gpusim.Device, cfg Config, tuples []relation.Tuple, fanout1 int) time.Duration {
	var total time.Duration
	for pass := 0; pass < 2; pass++ {
		total += partitionPass(dev, cfg, len(tuples), fanout1)
	}
	return total
}

// partitionPass models one scan-and-scatter pass over n tuples.
func partitionPass(dev *gpusim.Device, cfg Config, n, fanout int) time.Duration {
	dcfg := dev.Config()
	blocks := 4 * dcfg.NumSMs
	chunk := (n + blocks - 1) / blocks
	if chunk == 0 {
		chunk = 1
		blocks = n
	}
	if blocks == 0 {
		blocks = 1
	}
	return dev.Launch("partition", "gbase-partition-pass", blocks, func(b *gpusim.Block) {
		lo := b.Idx * chunk
		if lo >= n {
			return
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		c := hi - lo
		// Read the chunk coalesced (in register batches of BatchTuples).
		b.GlobalCoalesced(c * relation.TupleSize)
		// Every tuple is staged through shared memory for the reorder: one
		// write and one read, plus the batch bookkeeping.
		b.Shared(2*c + c/cfg.BatchTuples)
		// Hash + target computation.
		b.UniformWork(c, 2)
		// Bucket allocations: one atomic per filled bucket per partition
		// touched, plus the per-tuple position atomics within buckets.
		b.Atomic(c/cfg.BucketTuples + fanout)
		// Write the reordered tuples coalesced.
		b.GlobalCoalesced(c * relation.TupleSize)
	})
}

type joinTask struct {
	rl     *bucketList
	lo, hi int // bucket range of the R sub-list
	sl     *bucketList
	sub    bool // true when this block is a sub-list of a decomposed partition
}

// joinPhase runs one thread block per (R sub-list, S partition) pair. An R
// partition whose bucket list holds more tuples than fit in shared memory
// is decomposed into disjoint runs of consecutive buckets — the paper's
// sub-list technique — each joined against the full S list.
func joinPhase(dev *gpusim.Device, cfg Config, rLists, sLists []*bucketList, capacity int, st *Stats) time.Duration {
	subSize := cfg.SubListTuples
	if subSize <= 0 || subSize > capacity {
		subSize = capacity
	}
	bucketsPerSub := subSize / cfg.BucketTuples
	if bucketsPerSub < 1 {
		bucketsPerSub = 1
	}
	var tasks []joinTask
	for p := range rLists {
		rl, sl := rLists[p], sLists[p]
		if rl.total == 0 || sl.total == 0 {
			continue
		}
		if rl.total <= capacity {
			tasks = append(tasks, joinTask{rl: rl, lo: 0, hi: len(rl.buckets), sl: sl})
			continue
		}
		for lo := 0; lo < len(rl.buckets); lo += bucketsPerSub {
			hi := lo + bucketsPerSub
			if hi > len(rl.buckets) {
				hi = len(rl.buckets)
			}
			tasks = append(tasks, joinTask{rl: rl, lo: lo, hi: hi, sl: sl, sub: true})
		}
	}
	st.JoinBlocks = len(tasks)
	for _, t := range tasks {
		if t.sub {
			st.SubListBlocks++
			st.SReprobes += uint64(t.sl.total)
		}
	}
	if len(tasks) == 0 {
		return 0
	}

	return dev.Launch("join", "gbase-join", len(tasks), func(b *gpusim.Block) {
		t := tasks[b.Idx]
		// The block walks its R sub-list's buckets into shared memory and
		// probes with every tuple of the full S bucket list.
		rSub := t.rl.gather(nil, t.lo, t.hi)
		sPart := t.sl.gather(nil, 0, len(t.sl.buckets))
		gpupart.ProbeJoinBlock(b, rSub, sPart)
	})
}
