package gbase

import (
	"testing"

	"skewjoin/internal/oracle"
	"skewjoin/internal/relation"
	"skewjoin/internal/zipf"
)

func workload(t *testing.T, n int, theta float64, seed int64) (relation.Relation, relation.Relation) {
	t.Helper()
	g, err := zipf.New(zipf.Config{Theta: theta, Universe: n, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	r, s := g.Pair(n)
	return r, s
}

func TestJoinMatchesOracleAcrossSkew(t *testing.T) {
	for _, theta := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		r, s := workload(t, 20000, theta, 42)
		want := oracle.Expected(r, s)
		got := Join(r, s, Config{})
		if got.Summary != want {
			t.Errorf("theta=%.2f: got %+v, want %+v", theta, got.Summary, want)
		}
	}
}

func TestJoinEmptyInputs(t *testing.T) {
	var empty relation.Relation
	r, s := workload(t, 1000, 0.8, 7)
	if res := Join(empty, s, Config{}); res.Summary.Count != 0 {
		t.Errorf("empty R: got %d results", res.Summary.Count)
	}
	if res := Join(r, empty, Config{}); res.Summary.Count != 0 {
		t.Errorf("empty S: got %d results", res.Summary.Count)
	}
}

func TestSubListsEngageUnderSkew(t *testing.T) {
	r, s := workload(t, 100000, 1.0, 3)
	res := Join(r, s, Config{})
	if res.Stats.SubListBlocks == 0 {
		t.Error("zipf 1.0 should decompose a skewed R partition into sub-lists")
	}
	if res.Stats.SReprobes == 0 {
		t.Error("sub-lists should re-probe S tuples")
	}

	r, s = workload(t, 100000, 0, 3)
	res = Join(r, s, Config{})
	if res.Stats.SubListBlocks != 0 {
		t.Errorf("uniform data used %d sub-list blocks", res.Stats.SubListBlocks)
	}
}

func TestPartitionTimeSkewIndependent(t *testing.T) {
	// Figure 1: "the partition time stays relatively stable" across skew.
	r0, s0 := workload(t, 100000, 0, 9)
	r1, s1 := workload(t, 100000, 1.0, 9)
	p0 := phase(t, Join(r0, s0, Config{}), "partition")
	p1 := phase(t, Join(r1, s1, Config{}), "partition")
	ratio := float64(p1) / float64(p0)
	if ratio > 1.5 || ratio < 0.67 {
		t.Errorf("Gbase partition time should be skew-independent; zipf1/zipf0 ratio = %.2f", ratio)
	}
}

func TestJoinTimeExplodesWithSkew(t *testing.T) {
	// Figure 1: "the execution time of the join phase rockets as the zipf
	// factor increases".
	r0, s0 := workload(t, 100000, 0, 9)
	r1, s1 := workload(t, 100000, 1.0, 9)
	j0 := phase(t, Join(r0, s0, Config{}), "join")
	j1 := phase(t, Join(r1, s1, Config{}), "join")
	if j1 < 10*j0 {
		t.Errorf("Gbase join time should explode with skew: zipf0=%v zipf1=%v", j0, j1)
	}
}

func phase(t *testing.T, res Result, name string) int64 {
	t.Helper()
	for _, p := range res.Phases {
		if p.Name == name {
			return int64(p.Duration)
		}
	}
	t.Fatalf("phase %q not found", name)
	return 0
}
