package gbase

import (
	"fmt"
	"testing"

	"skewjoin/internal/relation"
	"skewjoin/internal/zipf"
)

// BenchmarkAblationSubListSize sweeps Gbase's native skew knob: the
// sub-list granularity used to decompose skewed R partitions. Smaller
// sub-lists spread the build work over more blocks but multiply the
// S-side re-probing (every S tuple is probed once per sub-list), which is
// exactly why the paper finds the technique saturating under heavy skew.
func BenchmarkAblationSubListSize(b *testing.B) {
	const n = 1 << 16
	g, err := zipf.New(zipf.Config{Theta: 1.0, Universe: n, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	var r, s relation.Relation = g.NewRelation(n, 1), g.NewRelation(n, 2)
	for _, sub := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("sublist=%d", sub), func(b *testing.B) {
			var res Result
			for i := 0; i < b.N; i++ {
				res = Join(r, s, Config{SubListTuples: sub})
			}
			b.ReportMetric(float64(res.Total().Microseconds()), "modelled-us")
			b.ReportMetric(float64(res.Stats.SReprobes), "s-reprobes")
		})
	}
}
