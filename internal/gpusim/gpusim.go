// Package gpusim is the GPU execution-and-cost simulator that substitutes
// for the NVIDIA A100 in the paper's testbed (see DESIGN.md §1).
//
// Kernels are ordinary Go functions invoked once per thread block. They do
// two things at once: compute the real join output (functional execution),
// and charge modelled cycles to their Block through the cost-accounting
// methods below. A kernel launch then schedules the blocks onto the
// simulated SM array (greedy earliest-free assignment, matching how a GPU
// dispatches blocks as SMs free up) and the launch's modelled time is the
// makespan over SMs. GPU-side "time" in every experiment is modelled
// cycles divided by the clock — deterministic and hardware-independent.
//
// The model captures exactly the effects the paper's GPU analysis relies
// on (§II-A, §III):
//
//   - load imbalance across SMs: a block with a giant skewed partition
//     occupies one SM while the rest idle — visible in the makespan;
//   - SIMT divergence: WarpLoop charges every warp the trip count of its
//     slowest lane, so variance in chain lengths inside a warp wastes
//     lanes;
//   - memory coalescing: sequential traffic is charged at bandwidth,
//     scattered and chain-dependent traffic per transaction;
//   - synchronisation: atomics and block-wide barriers carry explicit
//     charges (the write-bitmap cost of Gbase's probe loop).
//
// Simplifications (documented, deliberate): one resident block per SM at a
// time (block-level concurrency within an SM folds into the per-SM core
// count), and bandwidth is divided evenly among SMs.
package gpusim

import (
	"fmt"
	"sync/atomic"
	"time"

	"skewjoin/internal/outbuf"
	"skewjoin/internal/sanitize"
)

// Config describes the simulated device. The defaults model the paper's
// A100-PCIE-40GB.
type Config struct {
	NumSMs          int     // streaming multiprocessors (A100: 108)
	CoresPerSM      int     // CUDA cores per SM (A100: 64)
	WarpSize        int     // threads per warp (32)
	ThreadsPerBlock int     // default block size kernels assume
	SharedMemBytes  int     // usable shared memory per block
	ClockHz         float64 // SM clock
	GlobalBandwidth float64 // aggregate global-memory bandwidth, bytes/s

	// Cost constants, in cycles.
	RandomAccessCost    float64 // independent scattered global access (latency mostly hidden)
	DependentAccessCost float64 // pointer-chasing global access (latency exposed)
	SharedAccessCost    float64 // shared-memory access per warp op
	ComputeCost         float64 // generic ALU warp instruction
	AtomicCost          float64 // atomic operation (uncontended)
	BarrierCost         float64 // block-wide __syncthreads
	KernelLaunchCycles  float64 // fixed launch overhead

	// PCIeBandwidth is the host-to-device transfer bandwidth, bytes/s
	// (A100-PCIE: ~25 GB/s effective). Only used when a join is asked to
	// include the input transfer (the paper studies GPU-resident data,
	// §II-B, precisely because this link is so much slower than the
	// 1555 GB/s global memory).
	PCIeBandwidth float64

	// HostParallelism is the number of host worker goroutines that
	// execute a launch's thread blocks (functional execution plus cost
	// accounting). 0 or negative — the default — runs blocks serially on
	// the calling goroutine, the seed behaviour. N > 0 runs blocks on a
	// pool of min(N, blocks) workers claiming block chunks from a
	// lock-free fetch-add queue (internal/exec); every block charges a
	// private cost accumulator and stages its output on a private tape,
	// and the results are merged in block-index order, so modelled
	// cycles, Stats and output are bit-identical to serial execution.
	// The knob changes only host wall-clock time, never modelled time.
	HostParallelism int
}

// A100 returns the configuration modelling the paper's GPU.
func A100() Config {
	return Config{
		NumSMs:              108,
		CoresPerSM:          64,
		WarpSize:            32,
		ThreadsPerBlock:     256,
		SharedMemBytes:      64 << 10,
		ClockHz:             1.41e9,
		GlobalBandwidth:     1555e9,
		RandomAccessCost:    40,
		DependentAccessCost: 220,
		SharedAccessCost:    2,
		ComputeCost:         1,
		AtomicCost:          8,
		BarrierCost:         24,
		KernelLaunchCycles:  2000,
		PCIeBandwidth:       25e9,
	}
}

// Coupled returns a configuration modelling an integrated (coupled
// CPU-GPU architecture) device: a handful of SMs clocked low, sharing
// memory bandwidth with the host and reached over a cheap on-die link
// rather than PCIe. It is the device class "Revisiting Co-Processing for
// Hash Joins on the Coupled CPU-GPU Architecture" studies, where the GPU
// is only a small multiple faster than the CPU cores — the regime in
// which splitting one join across both processors pays off. A discrete
// A100 outruns a single host core by orders of magnitude, so against
// A100() the split planner correctly degenerates to GPU-only.
//
// Zero-valued cost constants inherit the A100 per-operation costs via
// Defaults(); only the machine shape (SMs, cores, clock, bandwidth,
// link) differs.
func Coupled() Config {
	return Config{
		NumSMs:          2,
		CoresPerSM:      32,
		WarpSize:        32,
		ThreadsPerBlock: 128,
		SharedMemBytes:  64 << 10,
		ClockHz:         0.5e9,
		GlobalBandwidth: 16e9,
		PCIeBandwidth:   10e9, // shared-memory staging, not a PCIe bus
	}
}

// Defaults fills zero fields from A100().
func (c Config) Defaults() Config {
	a := A100()
	if c.NumSMs <= 0 {
		c.NumSMs = a.NumSMs
	}
	if c.CoresPerSM <= 0 {
		c.CoresPerSM = a.CoresPerSM
	}
	if c.WarpSize <= 0 {
		c.WarpSize = a.WarpSize
	}
	if c.ThreadsPerBlock <= 0 {
		c.ThreadsPerBlock = a.ThreadsPerBlock
	}
	if c.SharedMemBytes <= 0 {
		c.SharedMemBytes = a.SharedMemBytes
	}
	if c.ClockHz <= 0 {
		c.ClockHz = a.ClockHz
	}
	if c.GlobalBandwidth <= 0 {
		c.GlobalBandwidth = a.GlobalBandwidth
	}
	if c.RandomAccessCost <= 0 {
		c.RandomAccessCost = a.RandomAccessCost
	}
	if c.DependentAccessCost <= 0 {
		c.DependentAccessCost = a.DependentAccessCost
	}
	if c.SharedAccessCost <= 0 {
		c.SharedAccessCost = a.SharedAccessCost
	}
	if c.ComputeCost <= 0 {
		c.ComputeCost = a.ComputeCost
	}
	if c.AtomicCost <= 0 {
		c.AtomicCost = a.AtomicCost
	}
	if c.BarrierCost <= 0 {
		c.BarrierCost = a.BarrierCost
	}
	if c.KernelLaunchCycles <= 0 {
		c.KernelLaunchCycles = a.KernelLaunchCycles
	}
	if c.PCIeBandwidth <= 0 {
		c.PCIeBandwidth = a.PCIeBandwidth
	}
	return c
}

// bytesPerCyclePerSM is the fair-share global bandwidth of one SM.
func (c Config) bytesPerCyclePerSM() float64 {
	return c.GlobalBandwidth / c.ClockHz / float64(c.NumSMs)
}

// concurrentWarps is how many warps an SM executes simultaneously.
func (c Config) concurrentWarps() float64 {
	w := float64(c.CoresPerSM) / float64(c.WarpSize)
	if w < 1 {
		return 1
	}
	return w
}

// Stats aggregates modelled activity across all launches of a device.
type Stats struct {
	Launches         int
	Blocks           int
	GlobalBytes      uint64 // coalesced traffic
	RandomAccesses   uint64
	DependentSteps   uint64
	Atomics          uint64
	Barriers         uint64
	WarpIterations   uint64 // executed warp-loop iterations (after divergence)
	LaneIterations   uint64 // useful per-lane iterations
	DivergenceWasted uint64 // lane-slots lost to divergence
}

// add folds another accumulator into s. Every field is an integer sum, so
// folding per-block deltas in any order gives identical totals; the
// simulator nevertheless merges in block-index order.
func (s *Stats) add(o Stats) {
	s.Launches += o.Launches
	s.Blocks += o.Blocks
	s.GlobalBytes += o.GlobalBytes
	s.RandomAccesses += o.RandomAccesses
	s.DependentSteps += o.DependentSteps
	s.Atomics += o.Atomics
	s.Barriers += o.Barriers
	s.WarpIterations += o.WarpIterations
	s.LaneIterations += o.LaneIterations
	s.DivergenceWasted += o.DivergenceWasted
}

// LaunchRecord describes one kernel launch for breakdowns and tests.
type LaunchRecord struct {
	Name       string
	Blocks     int
	Cycles     float64 // makespan over SMs, incl. launch overhead
	MaxBlock   float64 // heaviest single block, cycles
	SumBlocks  float64 // total block cycles (work)
	Duration   time.Duration
	Imbalance  float64 // makespan / ideal (work / SMs): 1.0 = perfectly balanced
	PhaseLabel string  // phase this launch is accounted under
}

// Device is one simulated GPU. A Device accumulates modelled time, output
// summaries and stats across kernel launches; use one Device per join run.
// Not safe for concurrent launches: overlapping Launch, Serialize or
// Transfer calls corrupt the accumulated state, and under the `sanitize`
// build tag they are detected and abort with a diagnostic panic. (With
// Config.HostParallelism > 0 a single Launch fans its blocks out over
// host workers internally; that is the supported way to parallelise.)
type Device struct {
	cfg     Config
	records []LaunchRecord
	stats   Stats
	bufs    []*outbuf.Buffer // one per SM, shared by blocks scheduled there
	cycles  float64

	smScratch []float64    // schedule()'s per-SM min-heap, reused across launches
	busy      atomic.Int32 // sanitize-only overlapping-call detector
}

// enter flags the device busy for one accounting call. Under the sanitize
// build tag an overlapping call — two goroutines sharing one Device —
// aborts loudly instead of silently corrupting records, stats and output
// rings. Without the tag the check compiles away.
func (d *Device) enter(api string) {
	if sanitize.Enabled {
		if !d.busy.CompareAndSwap(0, 1) {
			sanitize.Failf("gpusim: concurrent %s on one Device (a Device is single-owner; use Config.HostParallelism to parallelise a launch)", api)
		}
	}
}

// leave clears the busy flag set by enter.
func (d *Device) leave() {
	if sanitize.Enabled {
		d.busy.Store(0)
	}
}

// NewDevice returns a device with the given configuration (zero fields are
// filled with A100 values).
func NewDevice(cfg Config) *Device {
	cfg = cfg.Defaults()
	d := &Device{cfg: cfg}
	d.bufs = make([]*outbuf.Buffer, cfg.NumSMs)
	for i := range d.bufs {
		d.bufs[i] = outbuf.New(0)
	}
	d.smScratch = make([]float64, cfg.NumSMs)
	return d
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// PartitionCapacityTuples is the number of 8-byte tuples of one partition
// that fit in shared memory together with its chained hash table (heads +
// next links, 8 bytes per tuple with load factor 1).
func (d *Device) PartitionCapacityTuples() int {
	return d.cfg.SharedMemBytes / 16
}

// Block is the kernel-side handle: identity plus cost accounting plus the
// output destination — the SM's shared buffer in serial execution, a
// private staging tape in host-parallel execution. A Block is only valid
// for the duration of the kernel call; kernels must not retain it.
type Block struct {
	Idx    int
	Out    outbuf.Writer
	dev    *Device
	cycles float64
	stats  Stats
}

// Launch runs kernel once per block, schedules the blocks greedily over
// the SM array, accounts the launch under phase, and returns the modelled
// launch duration. Modelled cycles are whatever the blocks charged.
//
// With Config.HostParallelism <= 0 blocks execute functionally in index
// order on the calling goroutine. With N > 0 they execute on a pool of N
// host workers; each block's cost, stats and output are staged privately
// and merged in block-index order (see hostparallel.go), so the launch's
// records, stats and output are bit-identical either way. Kernels must
// confine functional side effects to the Block (cost methods, Out) and
// per-block state — e.g. write to slot Idx of a results slice — never to
// memory shared across blocks.
func (d *Device) Launch(phase, name string, blocks int, kernel func(b *Block)) time.Duration {
	d.enter("Launch")
	defer d.leave()
	cfg := d.cfg
	cycles := make([]float64, blocks)
	var sum, maxb float64
	if workers := hostWorkers(cfg.HostParallelism, blocks); workers > 0 {
		sum, maxb = d.runBlocksParallel(workers, blocks, kernel, cycles)
	} else {
		sum, maxb = d.runBlocksSerial(blocks, kernel, cycles)
	}

	makespan := scheduleInto(d.smScratch, cycles) + cfg.KernelLaunchCycles
	ideal := sum/float64(cfg.NumSMs) + cfg.KernelLaunchCycles
	imb := 1.0
	if ideal > 0 {
		imb = makespan / ideal
	}
	dur := time.Duration(makespan / cfg.ClockHz * float64(time.Second))
	d.cycles += makespan
	d.stats.Launches++
	d.stats.Blocks += blocks
	d.records = append(d.records, LaunchRecord{
		Name: name, Blocks: blocks, Cycles: makespan, MaxBlock: maxb,
		SumBlocks: sum, Duration: dur, Imbalance: imb, PhaseLabel: phase,
	})
	return dur
}

// runBlocksSerial executes the launch's blocks in index order on the
// calling goroutine — the seed path. Blocks write straight into their
// SM's shared output ring; per-block stats fold into the device after
// each block. One Block handle is reused across iterations so the loop's
// steady-state allocation count stays pinned (see the AllocsPerRun test).
//
//skewlint:hotpath
func (d *Device) runBlocksSerial(blocks int, kernel func(b *Block), cycles []float64) (sum, maxb float64) {
	b := &Block{dev: d}
	for i := 0; i < blocks; i++ {
		b.Idx = i
		b.Out = d.bufs[i%d.cfg.NumSMs]
		b.cycles = 0
		b.stats = Stats{}
		kernel(b)
		cycles[i] = b.cycles
		sum += b.cycles
		if b.cycles > maxb {
			maxb = b.cycles
		}
		d.stats.add(b.stats)
	}
	return sum, maxb
}

// schedule assigns block cycle costs to SMs in launch order, each to the
// earliest-free SM, and returns the makespan.
func schedule(cycles []float64, sms int) float64 {
	return scheduleInto(make([]float64, sms), cycles)
}

// scheduleInto is schedule with a caller-provided per-SM scratch heap
// (one slot per SM, overwritten), so the per-launch hot path allocates
// nothing. The scratch is kept as a binary min-heap on finish time: each
// block lands on the root (the earliest-free SM) and one sift-down
// restores the heap — no container/heap interface boxing, no Fix
// indirection. Ties between equally loaded SMs may resolve differently
// than another heap implementation would, but the resulting multiset of
// SM finish times (and hence the makespan) is identical: adding a block
// to either of two bitwise-equal loads produces the same multiset.
func scheduleInto(sm []float64, cycles []float64) float64 {
	if len(cycles) == 0 {
		return 0
	}
	for i := range sm {
		sm[i] = 0
	}
	for _, c := range cycles {
		sm[0] += c
		siftDown(sm)
	}
	var makespan float64
	for _, t := range sm {
		if t > makespan {
			makespan = t
		}
	}
	return makespan
}

// siftDown restores the min-heap property of sm after the root grew.
func siftDown(sm []float64) {
	i := 0
	for {
		l := 2*i + 1
		small := i
		if l < len(sm) && sm[l] < sm[small] {
			small = l
		}
		if r := l + 1; r < len(sm) && sm[r] < sm[small] {
			small = r
		}
		if small == i {
			return
		}
		sm[i], sm[small] = sm[small], sm[i]
		i = small
	}
}

// Serialize accounts a device-wide serialisation: work that cannot overlap
// across SMs, such as atomics contending on a single address (every block
// appending to the same array cursor). The cycles are added to the
// makespan directly and recorded like a launch.
func (d *Device) Serialize(phase, name string, cycles float64) time.Duration {
	d.enter("Serialize")
	defer d.leave()
	return d.serialize(phase, name, cycles)
}

// serialize is Serialize without the overlap guard, for internal reuse by
// guarded entry points (Transfer wraps it so the guard is not re-entered).
func (d *Device) serialize(phase, name string, cycles float64) time.Duration {
	if cycles <= 0 {
		return 0
	}
	dur := time.Duration(cycles / d.cfg.ClockHz * float64(time.Second))
	d.cycles += cycles
	d.records = append(d.records, LaunchRecord{
		Name: name, Cycles: cycles, MaxBlock: cycles, SumBlocks: cycles,
		Duration: dur, Imbalance: float64(d.cfg.NumSMs), PhaseLabel: phase,
	})
	return dur
}

// Transfer accounts a host-to-device (or device-to-host) copy of the given
// size over the PCIe link, recorded under the given phase. Transfers do
// not overlap with kernels in this model.
func (d *Device) Transfer(phase, name string, bytes int) time.Duration {
	d.enter("Transfer")
	defer d.leave()
	if bytes <= 0 {
		return 0
	}
	cycles := float64(bytes) / d.cfg.PCIeBandwidth * d.cfg.ClockHz
	return d.serialize(phase, name, cycles)
}

// Elapsed returns the total modelled time across all launches so far.
func (d *Device) Elapsed() time.Duration {
	return time.Duration(d.cycles / d.cfg.ClockHz * float64(time.Second))
}

// PhaseTime sums the modelled durations of all launches accounted under
// the given phase label.
func (d *Device) PhaseTime(phase string) time.Duration {
	var sum time.Duration
	for _, r := range d.records {
		if r.PhaseLabel == phase {
			sum += r.Duration
		}
	}
	return sum
}

// Phases returns the distinct phase labels in first-use order with their
// summed durations.
func (d *Device) Phases() []LaunchRecord {
	var order []string
	sums := map[string]time.Duration{}
	for _, r := range d.records {
		if _, ok := sums[r.PhaseLabel]; !ok {
			order = append(order, r.PhaseLabel)
		}
		sums[r.PhaseLabel] += r.Duration
	}
	out := make([]LaunchRecord, 0, len(order))
	for _, p := range order {
		out = append(out, LaunchRecord{Name: p, PhaseLabel: p, Duration: sums[p]})
	}
	return out
}

// Records returns every launch record in order.
func (d *Device) Records() []LaunchRecord { return d.records }

// Stats returns the accumulated device statistics.
func (d *Device) Stats() Stats { return d.stats }

// OutputSummary merges the per-SM output buffers into one run summary.
func (d *Device) OutputSummary() outbuf.Summary { return outbuf.Summarize(d.bufs) }

// hasFlush reports whether any SM output buffer has a flush consumer
// installed — the condition under which host-parallel staging must
// retain full record tapes rather than summary-only scalars.
func (d *Device) hasFlush() bool {
	for i := range d.bufs {
		if d.bufs[i].HasFlush() {
			return true
		}
	}
	return false
}

// SetFlush installs a per-SM batch consumer on every output buffer (the
// volcano-style upper operator). Call before any kernel launch.
func (d *Device) SetFlush(fn func(sm int) outbuf.FlushFunc) {
	for i := range d.bufs {
		d.bufs[i].SetFlush(fn(i))
	}
}

// FlushOutputs hands the final partial batches to the installed consumers.
// Call once after the last kernel launch.
func (d *Device) FlushOutputs() {
	for _, b := range d.bufs {
		b.Flush()
	}
}

// ---- Block cost-accounting methods ----

// GlobalCoalesced charges a fully coalesced global-memory transfer of n
// bytes at the SM's bandwidth share.
func (b *Block) GlobalCoalesced(bytes int) {
	if bytes <= 0 {
		return
	}
	b.cycles += float64(bytes) / b.dev.cfg.bytesPerCyclePerSM()
	b.stats.GlobalBytes += uint64(bytes)
}

// GlobalRandom charges n independent scattered global accesses (latency
// mostly hidden by warp interleaving, but one transaction each).
func (b *Block) GlobalRandom(n int) {
	if n <= 0 {
		return
	}
	b.cycles += float64(n) * b.dev.cfg.RandomAccessCost / b.dev.cfg.concurrentWarps()
	b.stats.RandomAccesses += uint64(n)
}

// GlobalDependent charges n pointer-chasing global accesses where each
// access depends on the previous one, so latency cannot be hidden. This is
// the cost of walking a chained hash table that lives in global memory.
func (b *Block) GlobalDependent(n int) {
	if n <= 0 {
		return
	}
	b.cycles += float64(n) * b.dev.cfg.DependentAccessCost
	b.stats.DependentSteps += uint64(n)
}

// Shared charges n shared-memory warp operations.
func (b *Block) Shared(n int) {
	if n <= 0 {
		return
	}
	b.cycles += float64(n) * b.dev.cfg.SharedAccessCost / b.dev.cfg.concurrentWarps()
}

// Compute charges n generic ALU warp instructions.
func (b *Block) Compute(n int) {
	if n <= 0 {
		return
	}
	b.cycles += float64(n) * b.dev.cfg.ComputeCost / b.dev.cfg.concurrentWarps()
}

// Atomic charges n atomic operations.
func (b *Block) Atomic(n int) {
	if n <= 0 {
		return
	}
	b.cycles += float64(n) * b.dev.cfg.AtomicCost
	b.stats.Atomics += uint64(n)
}

// Barrier charges n block-wide __syncthreads barriers.
func (b *Block) Barrier(n int) {
	if n <= 0 {
		return
	}
	b.cycles += float64(n) * b.dev.cfg.BarrierCost
	b.stats.Barriers += uint64(n)
}

// UniformWork charges processing of n items where every item costs perItem
// cycles and items are spread evenly over the block's threads: no
// divergence, warps fully occupied.
func (b *Block) UniformWork(n int, perItem float64) {
	if n <= 0 {
		return
	}
	warps := (n + b.dev.cfg.WarpSize - 1) / b.dev.cfg.WarpSize
	b.cycles += float64(warps) * perItem / b.dev.cfg.concurrentWarps()
	b.stats.WarpIterations += uint64(warps)
	b.stats.LaneIterations += uint64(n)
}

// WarpLoop charges a SIMT loop with per-lane trip counts: lane i of the
// launch-order thread assignment executes trips[i] iterations. Lanes are
// grouped into warps of WarpSize; each warp is charged the trip count of
// its slowest lane times perIter cycles — the divergence cost model. The
// method returns the number of warp iterations actually executed.
func (b *Block) WarpLoop(trips []int, perIter float64) int {
	cfg := b.dev.cfg
	ws := cfg.WarpSize
	var warpIters, laneIters int
	for lo := 0; lo < len(trips); lo += ws {
		hi := lo + ws
		if hi > len(trips) {
			hi = len(trips)
		}
		max := 0
		for _, t := range trips[lo:hi] {
			laneIters += t
			if t > max {
				max = t
			}
		}
		warpIters += max
	}
	b.cycles += float64(warpIters) * perIter / cfg.concurrentWarps()
	b.stats.WarpIterations += uint64(warpIters)
	b.stats.LaneIterations += uint64(laneIters)
	// Wasted lane-slots: full-warp groups only (a ragged tail is occupancy,
	// not divergence).
	for lo := 0; lo+ws <= len(trips); lo += ws {
		max := 0
		sum := 0
		for _, t := range trips[lo : lo+ws] {
			sum += t
			if t > max {
				max = t
			}
		}
		b.stats.DivergenceWasted += uint64(max*ws - sum)
	}
	return warpIters
}

// Cycles returns the cycles charged to this block so far.
func (b *Block) Cycles() float64 { return b.cycles }

// Device returns the device the block runs on.
func (b *Block) Device() *Device { return b.dev }

// String implements fmt.Stringer for debugging.
func (b *Block) String() string {
	return fmt.Sprintf("block %d (%.0f cycles)", b.Idx, b.cycles)
}
