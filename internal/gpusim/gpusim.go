// Package gpusim is the GPU execution-and-cost simulator that substitutes
// for the NVIDIA A100 in the paper's testbed (see DESIGN.md §1).
//
// Kernels are ordinary Go functions invoked once per thread block. They do
// two things at once: compute the real join output (functional execution),
// and charge modelled cycles to their Block through the cost-accounting
// methods below. A kernel launch then schedules the blocks onto the
// simulated SM array (greedy earliest-free assignment, matching how a GPU
// dispatches blocks as SMs free up) and the launch's modelled time is the
// makespan over SMs. GPU-side "time" in every experiment is modelled
// cycles divided by the clock — deterministic and hardware-independent.
//
// The model captures exactly the effects the paper's GPU analysis relies
// on (§II-A, §III):
//
//   - load imbalance across SMs: a block with a giant skewed partition
//     occupies one SM while the rest idle — visible in the makespan;
//   - SIMT divergence: WarpLoop charges every warp the trip count of its
//     slowest lane, so variance in chain lengths inside a warp wastes
//     lanes;
//   - memory coalescing: sequential traffic is charged at bandwidth,
//     scattered and chain-dependent traffic per transaction;
//   - synchronisation: atomics and block-wide barriers carry explicit
//     charges (the write-bitmap cost of Gbase's probe loop).
//
// Simplifications (documented, deliberate): one resident block per SM at a
// time (block-level concurrency within an SM folds into the per-SM core
// count), and bandwidth is divided evenly among SMs.
package gpusim

import (
	"container/heap"
	"fmt"
	"time"

	"skewjoin/internal/outbuf"
)

// Config describes the simulated device. The defaults model the paper's
// A100-PCIE-40GB.
type Config struct {
	NumSMs          int     // streaming multiprocessors (A100: 108)
	CoresPerSM      int     // CUDA cores per SM (A100: 64)
	WarpSize        int     // threads per warp (32)
	ThreadsPerBlock int     // default block size kernels assume
	SharedMemBytes  int     // usable shared memory per block
	ClockHz         float64 // SM clock
	GlobalBandwidth float64 // aggregate global-memory bandwidth, bytes/s

	// Cost constants, in cycles.
	RandomAccessCost    float64 // independent scattered global access (latency mostly hidden)
	DependentAccessCost float64 // pointer-chasing global access (latency exposed)
	SharedAccessCost    float64 // shared-memory access per warp op
	ComputeCost         float64 // generic ALU warp instruction
	AtomicCost          float64 // atomic operation (uncontended)
	BarrierCost         float64 // block-wide __syncthreads
	KernelLaunchCycles  float64 // fixed launch overhead

	// PCIeBandwidth is the host-to-device transfer bandwidth, bytes/s
	// (A100-PCIE: ~25 GB/s effective). Only used when a join is asked to
	// include the input transfer (the paper studies GPU-resident data,
	// §II-B, precisely because this link is so much slower than the
	// 1555 GB/s global memory).
	PCIeBandwidth float64
}

// A100 returns the configuration modelling the paper's GPU.
func A100() Config {
	return Config{
		NumSMs:              108,
		CoresPerSM:          64,
		WarpSize:            32,
		ThreadsPerBlock:     256,
		SharedMemBytes:      64 << 10,
		ClockHz:             1.41e9,
		GlobalBandwidth:     1555e9,
		RandomAccessCost:    40,
		DependentAccessCost: 220,
		SharedAccessCost:    2,
		ComputeCost:         1,
		AtomicCost:          8,
		BarrierCost:         24,
		KernelLaunchCycles:  2000,
		PCIeBandwidth:       25e9,
	}
}

// Defaults fills zero fields from A100().
func (c Config) Defaults() Config {
	a := A100()
	if c.NumSMs <= 0 {
		c.NumSMs = a.NumSMs
	}
	if c.CoresPerSM <= 0 {
		c.CoresPerSM = a.CoresPerSM
	}
	if c.WarpSize <= 0 {
		c.WarpSize = a.WarpSize
	}
	if c.ThreadsPerBlock <= 0 {
		c.ThreadsPerBlock = a.ThreadsPerBlock
	}
	if c.SharedMemBytes <= 0 {
		c.SharedMemBytes = a.SharedMemBytes
	}
	if c.ClockHz <= 0 {
		c.ClockHz = a.ClockHz
	}
	if c.GlobalBandwidth <= 0 {
		c.GlobalBandwidth = a.GlobalBandwidth
	}
	if c.RandomAccessCost <= 0 {
		c.RandomAccessCost = a.RandomAccessCost
	}
	if c.DependentAccessCost <= 0 {
		c.DependentAccessCost = a.DependentAccessCost
	}
	if c.SharedAccessCost <= 0 {
		c.SharedAccessCost = a.SharedAccessCost
	}
	if c.ComputeCost <= 0 {
		c.ComputeCost = a.ComputeCost
	}
	if c.AtomicCost <= 0 {
		c.AtomicCost = a.AtomicCost
	}
	if c.BarrierCost <= 0 {
		c.BarrierCost = a.BarrierCost
	}
	if c.KernelLaunchCycles <= 0 {
		c.KernelLaunchCycles = a.KernelLaunchCycles
	}
	if c.PCIeBandwidth <= 0 {
		c.PCIeBandwidth = a.PCIeBandwidth
	}
	return c
}

// bytesPerCyclePerSM is the fair-share global bandwidth of one SM.
func (c Config) bytesPerCyclePerSM() float64 {
	return c.GlobalBandwidth / c.ClockHz / float64(c.NumSMs)
}

// concurrentWarps is how many warps an SM executes simultaneously.
func (c Config) concurrentWarps() float64 {
	w := float64(c.CoresPerSM) / float64(c.WarpSize)
	if w < 1 {
		return 1
	}
	return w
}

// Stats aggregates modelled activity across all launches of a device.
type Stats struct {
	Launches         int
	Blocks           int
	GlobalBytes      uint64 // coalesced traffic
	RandomAccesses   uint64
	DependentSteps   uint64
	Atomics          uint64
	Barriers         uint64
	WarpIterations   uint64 // executed warp-loop iterations (after divergence)
	LaneIterations   uint64 // useful per-lane iterations
	DivergenceWasted uint64 // lane-slots lost to divergence
}

// LaunchRecord describes one kernel launch for breakdowns and tests.
type LaunchRecord struct {
	Name       string
	Blocks     int
	Cycles     float64 // makespan over SMs, incl. launch overhead
	MaxBlock   float64 // heaviest single block, cycles
	SumBlocks  float64 // total block cycles (work)
	Duration   time.Duration
	Imbalance  float64 // makespan / ideal (work / SMs): 1.0 = perfectly balanced
	PhaseLabel string  // phase this launch is accounted under
}

// Device is one simulated GPU. A Device accumulates modelled time, output
// summaries and stats across kernel launches; use one Device per join run.
// Not safe for concurrent launches.
type Device struct {
	cfg     Config
	records []LaunchRecord
	stats   Stats
	bufs    []*outbuf.Buffer // one per SM, shared by blocks scheduled there
	cycles  float64
}

// NewDevice returns a device with the given configuration (zero fields are
// filled with A100 values).
func NewDevice(cfg Config) *Device {
	cfg = cfg.Defaults()
	d := &Device{cfg: cfg}
	d.bufs = make([]*outbuf.Buffer, cfg.NumSMs)
	for i := range d.bufs {
		d.bufs[i] = outbuf.New(0)
	}
	return d
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// PartitionCapacityTuples is the number of 8-byte tuples of one partition
// that fit in shared memory together with its chained hash table (heads +
// next links, 8 bytes per tuple with load factor 1).
func (d *Device) PartitionCapacityTuples() int {
	return d.cfg.SharedMemBytes / 16
}

// Block is the kernel-side handle: identity plus cost accounting plus the
// output buffer of the SM the block runs on.
type Block struct {
	Idx    int
	Out    *outbuf.Buffer
	dev    *Device
	cycles float64
}

// Launch runs kernel once per block, schedules the blocks greedily over
// the SM array, accounts the launch under phase, and returns the modelled
// launch duration. Blocks execute functionally in index order; modelled
// cycles are whatever they charged.
func (d *Device) Launch(phase, name string, blocks int, kernel func(b *Block)) time.Duration {
	cfg := d.cfg
	cycles := make([]float64, blocks)
	var sum, maxb float64
	for i := 0; i < blocks; i++ {
		b := &Block{Idx: i, Out: d.bufs[i%cfg.NumSMs], dev: d}
		kernel(b)
		cycles[i] = b.cycles
		sum += b.cycles
		if b.cycles > maxb {
			maxb = b.cycles
		}
	}

	makespan := schedule(cycles, cfg.NumSMs) + cfg.KernelLaunchCycles
	ideal := sum/float64(cfg.NumSMs) + cfg.KernelLaunchCycles
	imb := 1.0
	if ideal > 0 {
		imb = makespan / ideal
	}
	dur := time.Duration(makespan / cfg.ClockHz * float64(time.Second))
	d.cycles += makespan
	d.stats.Launches++
	d.stats.Blocks += blocks
	d.records = append(d.records, LaunchRecord{
		Name: name, Blocks: blocks, Cycles: makespan, MaxBlock: maxb,
		SumBlocks: sum, Duration: dur, Imbalance: imb, PhaseLabel: phase,
	})
	return dur
}

// schedule assigns block cycle costs to SMs in launch order, each to the
// earliest-free SM, and returns the makespan.
func schedule(cycles []float64, sms int) float64 {
	if len(cycles) == 0 {
		return 0
	}
	h := make(smHeap, sms)
	heap.Init(&h)
	for _, c := range cycles {
		h[0] += c
		heap.Fix(&h, 0)
	}
	var makespan float64
	for _, t := range h {
		if t > makespan {
			makespan = t
		}
	}
	return makespan
}

type smHeap []float64

func (h smHeap) Len() int            { return len(h) }
func (h smHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h smHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *smHeap) Push(x interface{}) { *h = append(*h, x.(float64)) }
func (h *smHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Serialize accounts a device-wide serialisation: work that cannot overlap
// across SMs, such as atomics contending on a single address (every block
// appending to the same array cursor). The cycles are added to the
// makespan directly and recorded like a launch.
func (d *Device) Serialize(phase, name string, cycles float64) time.Duration {
	if cycles <= 0 {
		return 0
	}
	dur := time.Duration(cycles / d.cfg.ClockHz * float64(time.Second))
	d.cycles += cycles
	d.records = append(d.records, LaunchRecord{
		Name: name, Cycles: cycles, MaxBlock: cycles, SumBlocks: cycles,
		Duration: dur, Imbalance: float64(d.cfg.NumSMs), PhaseLabel: phase,
	})
	return dur
}

// Transfer accounts a host-to-device (or device-to-host) copy of the given
// size over the PCIe link, recorded under the given phase. Transfers do
// not overlap with kernels in this model.
func (d *Device) Transfer(phase, name string, bytes int) time.Duration {
	if bytes <= 0 {
		return 0
	}
	cycles := float64(bytes) / d.cfg.PCIeBandwidth * d.cfg.ClockHz
	return d.Serialize(phase, name, cycles)
}

// Elapsed returns the total modelled time across all launches so far.
func (d *Device) Elapsed() time.Duration {
	return time.Duration(d.cycles / d.cfg.ClockHz * float64(time.Second))
}

// PhaseTime sums the modelled durations of all launches accounted under
// the given phase label.
func (d *Device) PhaseTime(phase string) time.Duration {
	var sum time.Duration
	for _, r := range d.records {
		if r.PhaseLabel == phase {
			sum += r.Duration
		}
	}
	return sum
}

// Phases returns the distinct phase labels in first-use order with their
// summed durations.
func (d *Device) Phases() []LaunchRecord {
	var order []string
	sums := map[string]time.Duration{}
	for _, r := range d.records {
		if _, ok := sums[r.PhaseLabel]; !ok {
			order = append(order, r.PhaseLabel)
		}
		sums[r.PhaseLabel] += r.Duration
	}
	out := make([]LaunchRecord, 0, len(order))
	for _, p := range order {
		out = append(out, LaunchRecord{Name: p, PhaseLabel: p, Duration: sums[p]})
	}
	return out
}

// Records returns every launch record in order.
func (d *Device) Records() []LaunchRecord { return d.records }

// Stats returns the accumulated device statistics.
func (d *Device) Stats() Stats { return d.stats }

// OutputSummary merges the per-SM output buffers into one run summary.
func (d *Device) OutputSummary() outbuf.Summary { return outbuf.Summarize(d.bufs) }

// SetFlush installs a per-SM batch consumer on every output buffer (the
// volcano-style upper operator). Call before any kernel launch.
func (d *Device) SetFlush(fn func(sm int) outbuf.FlushFunc) {
	for i := range d.bufs {
		d.bufs[i].SetFlush(fn(i))
	}
}

// FlushOutputs hands the final partial batches to the installed consumers.
// Call once after the last kernel launch.
func (d *Device) FlushOutputs() {
	for _, b := range d.bufs {
		b.Flush()
	}
}

// ---- Block cost-accounting methods ----

// GlobalCoalesced charges a fully coalesced global-memory transfer of n
// bytes at the SM's bandwidth share.
func (b *Block) GlobalCoalesced(bytes int) {
	if bytes <= 0 {
		return
	}
	b.cycles += float64(bytes) / b.dev.cfg.bytesPerCyclePerSM()
	b.dev.stats.GlobalBytes += uint64(bytes)
}

// GlobalRandom charges n independent scattered global accesses (latency
// mostly hidden by warp interleaving, but one transaction each).
func (b *Block) GlobalRandom(n int) {
	if n <= 0 {
		return
	}
	b.cycles += float64(n) * b.dev.cfg.RandomAccessCost / b.dev.cfg.concurrentWarps()
	b.dev.stats.RandomAccesses += uint64(n)
}

// GlobalDependent charges n pointer-chasing global accesses where each
// access depends on the previous one, so latency cannot be hidden. This is
// the cost of walking a chained hash table that lives in global memory.
func (b *Block) GlobalDependent(n int) {
	if n <= 0 {
		return
	}
	b.cycles += float64(n) * b.dev.cfg.DependentAccessCost
	b.dev.stats.DependentSteps += uint64(n)
}

// Shared charges n shared-memory warp operations.
func (b *Block) Shared(n int) {
	if n <= 0 {
		return
	}
	b.cycles += float64(n) * b.dev.cfg.SharedAccessCost / b.dev.cfg.concurrentWarps()
}

// Compute charges n generic ALU warp instructions.
func (b *Block) Compute(n int) {
	if n <= 0 {
		return
	}
	b.cycles += float64(n) * b.dev.cfg.ComputeCost / b.dev.cfg.concurrentWarps()
}

// Atomic charges n atomic operations.
func (b *Block) Atomic(n int) {
	if n <= 0 {
		return
	}
	b.cycles += float64(n) * b.dev.cfg.AtomicCost
	b.dev.stats.Atomics += uint64(n)
}

// Barrier charges n block-wide __syncthreads barriers.
func (b *Block) Barrier(n int) {
	if n <= 0 {
		return
	}
	b.cycles += float64(n) * b.dev.cfg.BarrierCost
	b.dev.stats.Barriers += uint64(n)
}

// UniformWork charges processing of n items where every item costs perItem
// cycles and items are spread evenly over the block's threads: no
// divergence, warps fully occupied.
func (b *Block) UniformWork(n int, perItem float64) {
	if n <= 0 {
		return
	}
	warps := (n + b.dev.cfg.WarpSize - 1) / b.dev.cfg.WarpSize
	b.cycles += float64(warps) * perItem / b.dev.cfg.concurrentWarps()
	b.dev.stats.WarpIterations += uint64(warps)
	b.dev.stats.LaneIterations += uint64(n)
}

// WarpLoop charges a SIMT loop with per-lane trip counts: lane i of the
// launch-order thread assignment executes trips[i] iterations. Lanes are
// grouped into warps of WarpSize; each warp is charged the trip count of
// its slowest lane times perIter cycles — the divergence cost model. The
// method returns the number of warp iterations actually executed.
func (b *Block) WarpLoop(trips []int, perIter float64) int {
	cfg := b.dev.cfg
	ws := cfg.WarpSize
	var warpIters, laneIters int
	for lo := 0; lo < len(trips); lo += ws {
		hi := lo + ws
		if hi > len(trips) {
			hi = len(trips)
		}
		max := 0
		for _, t := range trips[lo:hi] {
			laneIters += t
			if t > max {
				max = t
			}
		}
		warpIters += max
	}
	b.cycles += float64(warpIters) * perIter / cfg.concurrentWarps()
	b.dev.stats.WarpIterations += uint64(warpIters)
	b.dev.stats.LaneIterations += uint64(laneIters)
	// Wasted lane-slots: full-warp groups only (a ragged tail is occupancy,
	// not divergence).
	for lo := 0; lo+ws <= len(trips); lo += ws {
		max := 0
		sum := 0
		for _, t := range trips[lo : lo+ws] {
			sum += t
			if t > max {
				max = t
			}
		}
		b.dev.stats.DivergenceWasted += uint64(max*ws - sum)
	}
	return warpIters
}

// Cycles returns the cycles charged to this block so far.
func (b *Block) Cycles() float64 { return b.cycles }

// Device returns the device the block runs on.
func (b *Block) Device() *Device { return b.dev }

// String implements fmt.Stringer for debugging.
func (b *Block) String() string {
	return fmt.Sprintf("block %d (%.0f cycles)", b.Idx, b.cycles)
}
