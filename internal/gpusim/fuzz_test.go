package gpusim

import (
	"testing"

	"skewjoin/internal/outbuf"
	"skewjoin/internal/relation"
)

// FuzzHostParallelLaunch is the differential fuzzer behind the
// host-parallel overhaul: arbitrary launch shapes (block counts, cost
// mixes, output patterns, pool sizes) must leave a parallel device in
// exactly the serial device's state — same LaunchRecord cycles, same
// Stats, same output summary, and the same flushed output bytes in the
// same batch order. The corpus seeds cover the structural edges (0/1
// blocks, more workers than blocks, giant-block skew).
func FuzzHostParallelLaunch(f *testing.F) {
	f.Add(uint8(0), uint8(0), int64(1))
	f.Add(uint8(1), uint8(1), int64(2))
	f.Add(uint8(7), uint8(3), int64(3))
	f.Add(uint8(200), uint8(16), int64(4))
	f.Add(uint8(255), uint8(2), int64(5))

	f.Fuzz(func(t *testing.T, nblocks, par uint8, seed int64) {
		blocks := int(nblocks)
		run := func(hostPar int) (*Device, [][]byte) {
			dev := NewDevice(Config{
				NumSMs:          4,
				SharedMemBytes:  1 << 10,
				HostParallelism: hostPar,
			})
			flushed := make([][]byte, 0, 8)
			dev.SetFlush(func(sm int) outbuf.FlushFunc {
				return func(batch []outbuf.Result) {
					bs := make([]byte, 0, len(batch)*12)
					for _, r := range batch {
						bs = append(bs,
							byte(sm),
							byte(r.Key), byte(r.Key>>8), byte(r.Key>>16), byte(r.Key>>24),
							byte(r.PayloadR), byte(r.PayloadR>>8),
							byte(r.PayloadS), byte(r.PayloadS>>8))
					}
					flushed = append(flushed, bs)
				}
			})
			dev.Launch("fuzz", "fuzz-kernel", blocks, func(b *Block) {
				// Derive the block's cost/output mix from seed and index
				// only, so serial and parallel runs compute identical work.
				h := uint64(seed)*0x9e3779b97f4a7c15 + uint64(b.Idx)*0xc2b2ae3d27d4eb4f
				work := int(h%97) + 1
				if h%11 == 0 {
					work *= 40
				}
				b.GlobalCoalesced(work * 8)
				b.GlobalRandom(work % 9)
				b.Atomic(work % 5)
				b.Barrier(work % 3)
				b.UniformWork(work, 1.5)
				for i := 0; i < work; i++ {
					b.Out.Push(relation.Key(h>>32)+relation.Key(i), relation.Payload(h), relation.Payload(i))
				}
				if work%2 == 0 {
					b.Out.PushRun(relation.Key(b.Idx), []relation.Payload{1, 2, 3}, relation.Payload(work))
				}
			})
			dev.FlushOutputs()
			return dev, flushed
		}

		serial, serialFlushed := run(0)
		parallel, parFlushed := run(int(par%32) + 1)

		sr, pr := serial.Records(), parallel.Records()
		if len(sr) != len(pr) {
			t.Fatalf("record counts differ: %d vs %d", len(sr), len(pr))
		}
		for i := range sr {
			if sr[i] != pr[i] {
				t.Fatalf("record %d differs:\nserial:   %+v\nparallel: %+v", i, sr[i], pr[i])
			}
		}
		if serial.Stats() != parallel.Stats() {
			t.Fatalf("stats differ:\nserial:   %+v\nparallel: %+v", serial.Stats(), parallel.Stats())
		}
		if serial.OutputSummary() != parallel.OutputSummary() {
			t.Fatalf("summaries differ: %+v vs %+v", serial.OutputSummary(), parallel.OutputSummary())
		}
		if len(serialFlushed) != len(parFlushed) {
			t.Fatalf("flush batch counts differ: %d vs %d", len(serialFlushed), len(parFlushed))
		}
		for i := range serialFlushed {
			if string(serialFlushed[i]) != string(parFlushed[i]) {
				t.Fatalf("flushed batch %d bytes differ", i)
			}
		}
	})
}
