//go:build !race

package gpusim

import "testing"

// TestLaunchAllocsPinned pins the steady-state allocation count of the
// serial block-execution hot path. The slice min-heap behind schedule()
// must not allocate (the old container/heap boxed every float into an
// interface{}), the reused Block handle must not escape per iteration,
// and cost charging must be allocation-free — so a whole launch is down
// to the per-launch cycles slice plus the amortised records append.
//
// Excluded from race-instrumented runs: the race runtime adds its own
// allocations and would turn the pin into noise.
func TestLaunchAllocsPinned(t *testing.T) {
	dev := NewDevice(Config{NumSMs: 8, SharedMemBytes: 4 << 10})
	visits := []int{3, 1, 4, 1, 5}
	kernel := func(b *Block) {
		b.GlobalCoalesced(1024)
		b.GlobalRandom(16)
		b.Shared(64)
		b.Compute(32)
		b.Atomic(8)
		b.Barrier(2)
		b.UniformWork(100, 2)
		b.WarpLoop(visits, 4)
	}
	// Warm up the records slice capacity so appends amortise.
	for i := 0; i < 64; i++ {
		dev.Launch("warm", "alloc-warm", 64, kernel)
	}
	allocs := testing.AllocsPerRun(100, func() {
		dev.Launch("steady", "alloc-steady", 64, kernel)
	})
	// One alloc for the per-launch cycles slice; leave headroom for the
	// amortised records growth. The boxed heap alone cost ~64 here.
	if allocs > 4 {
		t.Errorf("Launch allocated %.1f times per run, want <= 4", allocs)
	}
}
