package gpusim

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"skewjoin/internal/outbuf"
	"skewjoin/internal/relation"
)

// stressKernel exercises every cost-accounting method plus every output
// path, with per-block work that varies hard with the block index (a
// synthetic skew profile): the worst case for any execution-order
// dependence to hide in.
func stressKernel(seed int64) func(b *Block) {
	return func(b *Block) {
		rng := rand.New(rand.NewSource(seed + int64(b.Idx)))
		work := 1 + b.Idx%17
		if b.Idx%13 == 0 {
			work *= 50 // a few giant blocks
		}
		b.GlobalCoalesced(work * 64)
		b.GlobalRandom(work)
		b.GlobalDependent(work / 2)
		b.Shared(3 * work)
		b.Compute(work)
		b.Atomic(work / 3)
		b.Barrier(1 + work/8)
		b.UniformWork(work, 2)
		visits := []int{work % 5, work % 3, work % 7}
		b.WarpLoop(visits, 4)

		for i := 0; i < work; i++ {
			b.Out.Push(relation.Key(rng.Uint32()), relation.Payload(rng.Uint32()), relation.Payload(rng.Uint32()))
		}
		run := make([]relation.Payload, 1+work%4)
		for i := range run {
			run[i] = relation.Payload(rng.Uint32())
		}
		b.Out.PushRun(relation.Key(b.Idx), run, 7)
		b.Out.PushRunS(relation.Key(b.Idx), 9, run)
		b.Out.PushBatch([]outbuf.Result{
			{Key: relation.Key(work), PayloadR: 1, PayloadS: 2},
			{Key: relation.Key(work + 1), PayloadR: 3, PayloadS: 4},
		})
	}
}

// launchSweep runs a few launches of different shapes on one device,
// recording every flush batch per SM, and returns the flush streams.
func launchSweep(cfg Config, seed int64) (*Device, [][][]outbuf.Result) {
	dev := NewDevice(cfg)
	streams := make([][][]outbuf.Result, cfg.NumSMs)
	dev.SetFlush(func(sm int) outbuf.FlushFunc {
		return func(batch []outbuf.Result) {
			cp := make([]outbuf.Result, len(batch))
			copy(cp, batch)
			streams[sm] = append(streams[sm], cp)
		}
	})
	for i, blocks := range []int{1, 3, 64, 257} {
		dev.Launch("phase", fmt.Sprintf("stress-%d", blocks), blocks, stressKernel(seed+int64(i)))
	}
	dev.Serialize("tail", "stress-serialize", 12345)
	dev.FlushOutputs()
	return dev, streams
}

// TestHostParallelismBitIdentical is the tentpole invariant: for every
// worker-pool size, a device run under HostParallelism must reproduce the
// serial device bit for bit — launch records (incl. float makespans),
// stats, total elapsed time, output summary, and the exact flush batch
// streams of every SM ring.
func TestHostParallelismBitIdentical(t *testing.T) {
	base := Config{NumSMs: 8, SharedMemBytes: 4 << 10}
	serialDev, serialStreams := launchSweep(base, 99)

	for _, par := range []int{1, 2, 4, 16} {
		cfg := base
		cfg.HostParallelism = par
		parDev, parStreams := launchSweep(cfg, 99)

		if !reflect.DeepEqual(parDev.Records(), serialDev.Records()) {
			t.Fatalf("par=%d: launch records differ\npar:    %+v\nserial: %+v",
				par, parDev.Records(), serialDev.Records())
		}
		if parDev.Stats() != serialDev.Stats() {
			t.Fatalf("par=%d: stats differ\npar:    %+v\nserial: %+v",
				par, parDev.Stats(), serialDev.Stats())
		}
		if parDev.Elapsed() != serialDev.Elapsed() {
			t.Fatalf("par=%d: elapsed %v != serial %v", par, parDev.Elapsed(), serialDev.Elapsed())
		}
		if parDev.OutputSummary() != serialDev.OutputSummary() {
			t.Fatalf("par=%d: output summary %+v != serial %+v",
				par, parDev.OutputSummary(), serialDev.OutputSummary())
		}
		if !reflect.DeepEqual(parStreams, serialStreams) {
			t.Fatalf("par=%d: flush batch streams differ from serial", par)
		}
	}
}

// TestHostWorkers pins the pool-size resolution: non-positive settings
// mean serial, and the pool never exceeds the block count.
func TestHostWorkers(t *testing.T) {
	cases := []struct{ par, blocks, want int }{
		{0, 100, 0},
		{-3, 100, 0},
		{1, 100, 1},
		{4, 100, 4},
		{8, 3, 3},
		{4, 0, 0},
	}
	for _, c := range cases {
		if got := hostWorkers(c.par, c.blocks); got != c.want {
			t.Errorf("hostWorkers(%d, %d) = %d, want %d", c.par, c.blocks, got, c.want)
		}
	}
}

// TestLaunchChunk pins the queue-claim granularity bounds.
func TestLaunchChunk(t *testing.T) {
	if got := launchChunk(10, 4); got != 1 {
		t.Errorf("small launch chunk = %d, want 1", got)
	}
	if got := launchChunk(1<<20, 4); got != 256 {
		t.Errorf("huge launch chunk = %d, want cap 256", got)
	}
	if got := launchChunk(4096, 4); got != 32 {
		t.Errorf("mid launch chunk = %d, want 32", got)
	}
}

// TestHostParallelEmptyLaunch: a zero-block launch must not spin up the
// pool and must behave exactly like serial.
func TestHostParallelEmptyLaunch(t *testing.T) {
	cfg := Config{NumSMs: 4, HostParallelism: 4}
	dev := NewDevice(cfg)
	dur := dev.Launch("p", "empty", 0, func(b *Block) { t.Error("kernel ran for 0 blocks") })
	if dur <= 0 {
		t.Errorf("empty launch duration %v, want launch overhead > 0", dur)
	}
}
