// Host-parallel block execution: the worker-pool path behind
// Config.HostParallelism.
//
// The simulated makespan of a launch is already order-independent — it is
// a function of the per-block cycle vector, which schedule() folds over a
// deterministic earliest-free-SM heap. What is NOT order-independent in
// the serial seed path is the functional side: blocks write interleaved
// into per-SM output rings, and stats fold into the device as they go. So
// the parallel path stages everything per block — a private cycle count, a
// private Stats accumulator and a private output tape — and merges the
// staged results in block-index order once all blocks have run. Merge
// order, not execution order, defines the result; any worker interleaving
// therefore produces bit-identical records, stats and output.
//
// Workers claim chunks of consecutive block indices from the lock-free
// fetch-add queue of internal/exec (the same dynamic-task-queue substrate
// the CPU joins drain), so a launch whose block costs are wildly skewed —
// the very workloads this repository studies — still balances across host
// cores without any per-block locking.
package gpusim

import (
	"skewjoin/internal/exec"
	"skewjoin/internal/outbuf"
)

// hostWorkers resolves the worker-pool size for a launch: 0 means the
// serial seed path. A positive HostParallelism is clamped to the block
// count (extra workers would only spin on an empty queue).
func hostWorkers(hostParallelism, blocks int) int {
	if hostParallelism <= 0 || blocks == 0 {
		return 0
	}
	if hostParallelism > blocks {
		return blocks
	}
	return hostParallelism
}

// blockStage is one block's privately staged execution result.
type blockStage struct {
	cycles float64
	stats  Stats
	tape   outbuf.Tape
}

// launchChunk is how many consecutive blocks one queue claim hands a
// worker: large enough that the fetch-add cursor is not contended for
// million-block skew-join launches, small enough that a handful of giant
// blocks (a skewed partition's sub-lists) still spread over the pool.
func launchChunk(blocks, workers int) int {
	chunk := blocks / (workers * 32)
	if chunk < 1 {
		return 1
	}
	if chunk > 256 {
		return 256
	}
	return chunk
}

// runBlocksParallel executes the launch's blocks on a pool of `workers`
// goroutines and merges the staged per-block results in block-index
// order, reproducing runBlocksSerial bit for bit: cycles[] is filled
// identically, stats deltas fold in the same order, and each tape replays
// into the block's per-SM ring exactly the pushes the block would have
// issued directly — including flush-batch boundaries.
func (d *Device) runBlocksParallel(workers, blocks int, kernel func(b *Block), cycles []float64) (sum, maxb float64) {
	stages := make([]blockStage, blocks)
	// Without flush consumers the record stream is unobservable, so the
	// tapes stage only the count and checksum — a skewed launch's output
	// no longer materialises in host memory (gigabytes at high zipf).
	if !d.hasFlush() {
		for i := range stages {
			stages[i].tape.SummaryOnly()
		}
	}
	chunk := launchChunk(blocks, workers)
	starts := make([]int, 0, (blocks+chunk-1)/chunk)
	for lo := 0; lo < blocks; lo += chunk {
		starts = append(starts, lo)
	}
	exec.NewQueue(starts).Drain(workers, func(_, lo int) {
		hi := lo + chunk
		if hi > blocks {
			hi = blocks
		}
		b := &Block{dev: d}
		for i := lo; i < hi; i++ {
			st := &stages[i]
			b.Idx = i
			b.Out = &st.tape
			b.cycles = 0
			b.stats = Stats{}
			kernel(b)
			st.cycles = b.cycles
			st.stats = b.stats
		}
	})

	// Deterministic merge: block-index order, same as serial execution.
	for i := range stages {
		st := &stages[i]
		cycles[i] = st.cycles
		sum += st.cycles
		if st.cycles > maxb {
			maxb = st.cycles
		}
		d.stats.add(st.stats)
		st.tape.Replay(d.bufs[i%d.cfg.NumSMs])
	}
	return sum, maxb
}
