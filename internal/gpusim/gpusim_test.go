package gpusim

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"skewjoin/internal/outbuf"
)

func TestDefaultsFillA100(t *testing.T) {
	cfg := Config{}.Defaults()
	a := A100()
	if cfg != a {
		t.Errorf("empty config defaults %+v != A100 %+v", cfg, a)
	}
	// Partial overrides are preserved.
	cfg = Config{NumSMs: 4, SharedMemBytes: 1 << 10}.Defaults()
	if cfg.NumSMs != 4 || cfg.SharedMemBytes != 1<<10 {
		t.Errorf("overrides lost: %+v", cfg)
	}
	if cfg.WarpSize != a.WarpSize {
		t.Errorf("unset field not defaulted: %+v", cfg)
	}
}

func TestPartitionCapacity(t *testing.T) {
	d := NewDevice(Config{SharedMemBytes: 64 << 10})
	if got := d.PartitionCapacityTuples(); got != 4096 {
		t.Errorf("capacity = %d, want 4096", got)
	}
}

func TestScheduleBalanced(t *testing.T) {
	// 100 equal blocks over 10 SMs: makespan = 10 blocks' worth.
	cycles := make([]float64, 100)
	for i := range cycles {
		cycles[i] = 7
	}
	if got := schedule(cycles, 10); got != 70 {
		t.Errorf("makespan = %g, want 70", got)
	}
}

func TestScheduleDominatedByGiantBlock(t *testing.T) {
	// One giant block dominates regardless of SM count — the skew effect.
	cycles := []float64{1000, 1, 1, 1, 1, 1}
	if got := schedule(cycles, 4); got < 1000 {
		t.Errorf("makespan = %g, want >= 1000", got)
	}
}

func TestScheduleEmpty(t *testing.T) {
	if got := schedule(nil, 8); got != 0 {
		t.Errorf("empty launch makespan = %g", got)
	}
}

func TestQuickScheduleBounds(t *testing.T) {
	// Makespan is between max(block) and sum(blocks); with the greedy
	// heuristic it is also at most sum/sms + max.
	f := func(raw []uint16, smsRaw uint8) bool {
		sms := int(smsRaw%16) + 1
		cycles := make([]float64, len(raw))
		var sum, max float64
		for i, r := range raw {
			cycles[i] = float64(r)
			sum += cycles[i]
			if cycles[i] > max {
				max = cycles[i]
			}
		}
		got := schedule(cycles, sms)
		if got < max-1e-9 || got > sum+1e-9 {
			return false
		}
		return got <= sum/float64(sms)+max+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLaunchAccountsMakespanNotSum(t *testing.T) {
	d := NewDevice(Config{NumSMs: 8})
	d.Launch("p", "k", 8, func(b *Block) { b.Compute(1000) })
	rec := d.Records()[0]
	// 8 equal blocks on 8 SMs: makespan ≈ one block + launch overhead.
	perBlock := rec.SumBlocks / 8
	if rec.Cycles > perBlock+d.Config().KernelLaunchCycles+1 {
		t.Errorf("makespan %g should be ~one block (%g) + overhead", rec.Cycles, perBlock)
	}
	if math.Abs(rec.Imbalance-1) > 0.01 {
		t.Errorf("balanced launch imbalance = %g", rec.Imbalance)
	}
}

func TestLaunchImbalanceVisible(t *testing.T) {
	d := NewDevice(Config{NumSMs: 8})
	d.Launch("p", "k", 8, func(b *Block) {
		if b.Idx == 0 {
			b.Compute(100000)
		} else {
			b.Compute(10)
		}
	})
	if imb := d.Records()[0].Imbalance; imb < 3 {
		t.Errorf("skewed launch imbalance = %g, want >> 1", imb)
	}
}

func TestPhaseAccounting(t *testing.T) {
	d := NewDevice(Config{})
	d.Launch("alpha", "k1", 1, func(b *Block) { b.Compute(1e6) })
	d.Launch("beta", "k2", 1, func(b *Block) { b.Compute(2e6) })
	d.Launch("alpha", "k3", 1, func(b *Block) { b.Compute(3e6) })
	if d.PhaseTime("alpha") <= d.PhaseTime("beta") {
		t.Errorf("alpha %v should exceed beta %v", d.PhaseTime("alpha"), d.PhaseTime("beta"))
	}
	phases := d.Phases()
	if len(phases) != 2 || phases[0].PhaseLabel != "alpha" || phases[1].PhaseLabel != "beta" {
		t.Errorf("phases = %+v", phases)
	}
	var sum time.Duration
	for _, p := range phases {
		sum += p.Duration
	}
	if d.Elapsed() < sum-3*time.Nanosecond || d.Elapsed() > sum+3*time.Nanosecond {
		t.Errorf("Elapsed %v != phase sum %v", d.Elapsed(), sum)
	}
}

func TestGlobalCoalescedBandwidth(t *testing.T) {
	cfg := Config{NumSMs: 1, GlobalBandwidth: 1000e9, ClockHz: 1e9}.Defaults()
	d := NewDevice(cfg)
	d.Launch("p", "k", 1, func(b *Block) {
		b.GlobalCoalesced(1000) // 1000 bytes at 1000 B/cycle for 1 SM
	})
	rec := d.Records()[0]
	want := 1.0 + cfg.KernelLaunchCycles
	if math.Abs(rec.Cycles-want) > 0.01 {
		t.Errorf("cycles = %g, want %g", rec.Cycles, want)
	}
}

func TestCostMethodsAccumulateStats(t *testing.T) {
	d := NewDevice(Config{})
	d.Launch("p", "k", 1, func(b *Block) {
		b.GlobalCoalesced(128)
		b.GlobalRandom(5)
		b.GlobalDependent(7)
		b.Atomic(3)
		b.Barrier(2)
		b.Shared(4)
		b.Compute(6)
		b.UniformWork(64, 1)
	})
	st := d.Stats()
	if st.GlobalBytes != 128 || st.RandomAccesses != 5 || st.DependentSteps != 7 ||
		st.Atomics != 3 || st.Barriers != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.LaneIterations != 64 {
		t.Errorf("lane iterations = %d", st.LaneIterations)
	}
}

func TestZeroCostCallsAreFree(t *testing.T) {
	d := NewDevice(Config{})
	d.Launch("p", "k", 1, func(b *Block) {
		b.GlobalCoalesced(0)
		b.GlobalRandom(0)
		b.GlobalDependent(-1)
		b.Atomic(0)
		b.Barrier(0)
		b.Shared(0)
		b.Compute(0)
		b.UniformWork(0, 5)
		if b.Cycles() != 0 {
			t.Errorf("zero-cost calls charged %g cycles", b.Cycles())
		}
	})
}

func TestWarpLoopDivergence(t *testing.T) {
	d := NewDevice(Config{WarpSize: 4, CoresPerSM: 4})
	d.Launch("p", "k", 1, func(b *Block) {
		// Two warps of 4 lanes: maxes 10 and 8.
		iters := b.WarpLoop([]int{10, 1, 1, 1, 8, 8, 8, 8}, 1)
		if iters != 18 {
			t.Errorf("warp iterations = %d, want 18", iters)
		}
	})
	st := d.Stats()
	if st.LaneIterations != 10+3+4*8 {
		t.Errorf("lane iterations = %d", st.LaneIterations)
	}
	// Waste: warp 1 wastes 10*4-13 = 27, warp 2 wastes 0.
	if st.DivergenceWasted != 27 {
		t.Errorf("divergence waste = %d, want 27", st.DivergenceWasted)
	}
}

func TestWarpLoopRaggedTailNotWaste(t *testing.T) {
	d := NewDevice(Config{WarpSize: 32})
	d.Launch("p", "k", 1, func(b *Block) {
		b.WarpLoop([]int{5, 3}, 1) // partial warp
	})
	if w := d.Stats().DivergenceWasted; w != 0 {
		t.Errorf("partial warp counted as divergence waste: %d", w)
	}
}

func TestOutputBuffersSharedPerSM(t *testing.T) {
	d := NewDevice(Config{NumSMs: 2})
	d.Launch("p", "k", 4, func(b *Block) {
		b.Out.Push(1, 2, 3)
	})
	sum := d.OutputSummary()
	if sum.Count != 4 {
		t.Errorf("output count = %d, want 4", sum.Count)
	}
}

func TestSerializeAddsMakespanDirectly(t *testing.T) {
	d := NewDevice(Config{ClockHz: 1e9})
	before := d.Elapsed()
	dur := d.Serialize("p", "contended-atomics", 1e6)
	if got := d.Elapsed() - before; got != dur {
		t.Errorf("Elapsed grew by %v, Serialize returned %v", got, dur)
	}
	if dur != time.Millisecond {
		t.Errorf("1e6 cycles at 1GHz = %v, want 1ms", dur)
	}
	if d.PhaseTime("p") != dur {
		t.Errorf("phase time %v, want %v", d.PhaseTime("p"), dur)
	}
	if d.Serialize("p", "nothing", 0) != 0 {
		t.Error("zero-cycle Serialize charged time")
	}
}

func TestTransferChargesPCIeTime(t *testing.T) {
	d := NewDevice(Config{PCIeBandwidth: 1e9, ClockHz: 1e9})
	dur := d.Transfer("transfer", "h2d", 1000) // 1000 B at 1 GB/s = 1µs
	if dur != time.Microsecond {
		t.Errorf("transfer = %v, want 1µs", dur)
	}
	if d.PhaseTime("transfer") != dur {
		t.Errorf("phase time %v", d.PhaseTime("transfer"))
	}
	if d.Transfer("transfer", "none", 0) != 0 {
		t.Error("zero-byte transfer charged time")
	}
}

func TestSetFlushAndFlushOutputs(t *testing.T) {
	d := NewDevice(Config{NumSMs: 2})
	got := make([]int, 2)
	d.SetFlush(func(sm int) outbuf.FlushFunc {
		return func(batch []outbuf.Result) { got[sm] += len(batch) }
	})
	d.Launch("p", "k", 2, func(b *Block) {
		b.Out.Push(1, 2, 3)
	})
	d.FlushOutputs()
	if got[0]+got[1] != 2 {
		t.Errorf("consumers saw %d results, want 2", got[0]+got[1])
	}
}

func TestElapsedMonotone(t *testing.T) {
	d := NewDevice(Config{})
	prev := d.Elapsed()
	for i := 0; i < 3; i++ {
		d.Launch("p", "k", 2, func(b *Block) { b.Compute(1000) })
		if now := d.Elapsed(); now <= prev {
			t.Fatalf("Elapsed not monotone: %v then %v", prev, now)
		} else {
			prev = now
		}
	}
}
