//go:build sanitize

package gpusim

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// mustPanicConcurrent runs fn and asserts the sanitizer aborted it with
// the concurrent-Device diagnostic.
func mustPanicConcurrent(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected the sanitize overlap detector to panic; it did not fire")
		}
		msg := fmt.Sprint(r)
		if !strings.Contains(msg, "sanitize:") || !strings.Contains(msg, "concurrent") {
			t.Fatalf("panic is not the overlap diagnostic: %q", msg)
		}
	}()
	fn()
}

// TestSanitizeDetectsOverlappingCalls corrupts a Device the way the doc
// comment warns against — overlapping accounting calls on one Device —
// and checks every API pairing is detected. Re-entrant Launch (a kernel
// launching on its own device) is the deterministic way to overlap two
// calls on one goroutine; without the guard it would silently interleave
// two launches' records and cycle accounting.
func TestSanitizeDetectsOverlappingCalls(t *testing.T) {
	newDev := func() *Device { return NewDevice(Config{NumSMs: 2, SharedMemBytes: 1 << 10}) }
	noop := func(b *Block) {}

	mustPanicConcurrent(t, func() {
		dev := newDev()
		dev.Launch("p", "outer", 1, func(b *Block) {
			dev.Launch("p", "inner", 1, noop)
		})
	})
	mustPanicConcurrent(t, func() {
		dev := newDev()
		dev.Launch("p", "outer", 1, func(b *Block) {
			dev.Serialize("p", "inner", 100)
		})
	})
	mustPanicConcurrent(t, func() {
		dev := newDev()
		dev.Launch("p", "outer", 1, func(b *Block) {
			dev.Transfer("p", "inner", 1<<20)
		})
	})
}

// TestSanitizeDetectsConcurrentGoroutines overlaps two goroutines on one
// Device with kernels that rendezvous mid-launch, so the overlap is
// guaranteed, and checks exactly one of them is aborted with the
// diagnostic (the first through the gate proceeds normally).
func TestSanitizeDetectsConcurrentGoroutines(t *testing.T) {
	dev := NewDevice(Config{NumSMs: 2, SharedMemBytes: 1 << 10})
	inside := make(chan struct{})
	release := make(chan struct{})

	var once sync.Once
	panics := make(chan any, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	launch := func(first bool) {
		defer wg.Done()
		defer func() { panics <- recover() }()
		if first {
			dev.Launch("p", "holder", 1, func(b *Block) {
				once.Do(func() { close(inside) })
				<-release
			})
		} else {
			<-inside
			defer close(release)
			dev.Launch("p", "intruder", 1, func(b *Block) {})
		}
	}
	go launch(true)
	go launch(false)
	wg.Wait()
	close(panics)

	var got []string
	for r := range panics {
		if r != nil {
			got = append(got, fmt.Sprint(r))
		}
	}
	if len(got) != 1 {
		t.Fatalf("want exactly one panic from the overlapping launch, got %d: %v", len(got), got)
	}
	if !strings.Contains(got[0], "concurrent Launch") {
		t.Fatalf("panic is not the overlap diagnostic: %q", got[0])
	}
}

// TestSanitizeAllowsSequentialCalls: the guard must not fire on the
// supported pattern — sequential launches, including host-parallel ones.
func TestSanitizeAllowsSequentialCalls(t *testing.T) {
	dev := NewDevice(Config{NumSMs: 2, SharedMemBytes: 1 << 10, HostParallelism: 4})
	for i := 0; i < 3; i++ {
		dev.Launch("p", "seq", 8, func(b *Block) { b.Compute(1) })
		dev.Serialize("p", "seq-ser", 10)
		dev.Transfer("p", "seq-xfer", 1<<16)
	}
}
