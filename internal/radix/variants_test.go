package radix

import (
	"testing"

	"skewjoin/internal/relation"
	"skewjoin/internal/zipf"
)

// TestScatterVariantsBitIdentical pins the optimisation contract: the
// write-combining scatter must produce exactly the same Data and Offsets
// as the direct scatter — not merely an equivalent multiset — across
// thread counts, bit splits, and skew levels.
func TestScatterVariantsBitIdentical(t *testing.T) {
	skewed := zipf.MustNew(zipf.Config{Theta: 1.0, Universe: 4000, Seed: 11}).NewRelation(30000, 1).Tuples
	for _, src := range [][]relation.Tuple{randomTuples(30000, 10), skewed} {
		for _, base := range []Config{
			{Threads: 1, Bits1: 4, Bits2: 0},
			{Threads: 1, Bits1: 6, Bits2: 5},
			{Threads: 4, Bits1: 6, Bits2: 5},
			{Threads: 3, Bits1: 9, Bits2: 0},
			{Threads: 8, Bits1: 5, Bits2: 7},
		} {
			direct, wc := base, base
			direct.Scatter = ScatterDirect
			wc.Scatter = ScatterWC
			pd := Partition(src, direct, nil)
			pw := Partition(src, wc, nil)
			if len(pd.Data) != len(pw.Data) {
				t.Fatalf("cfg %+v: %d vs %d tuples", base, len(pd.Data), len(pw.Data))
			}
			for i := range pd.Data {
				if pd.Data[i] != pw.Data[i] {
					t.Fatalf("cfg %+v: Data differs at %d: %v vs %v", base, i, pd.Data[i], pw.Data[i])
				}
			}
			for i := range pd.Offsets {
				if pd.Offsets[i] != pw.Offsets[i] {
					t.Fatalf("cfg %+v: Offsets differ at %d", base, i)
				}
			}
			if bad := VerifyPlacement(pw, wc); bad >= 0 {
				t.Fatalf("cfg %+v: wc placement violation at %d", base, bad)
			}
		}
	}
}

// TestSchedVariantsEquivalent checks that the mutex queue baseline and the
// lock-free queue drive pass 2 to identical results.
func TestSchedVariantsEquivalent(t *testing.T) {
	src := randomTuples(20000, 12)
	for _, scatter := range []ScatterMode{ScatterDirect, ScatterWC} {
		atomicCfg := Config{Threads: 4, Bits1: 5, Bits2: 4, Scatter: scatter, Sched: SchedAtomic}
		mutexCfg := atomicCfg
		mutexCfg.Sched = SchedMutex
		pa := Partition(src, atomicCfg, nil)
		pm := Partition(src, mutexCfg, nil)
		for i := range pa.Data {
			if pa.Data[i] != pm.Data[i] {
				t.Fatalf("scatter %v: Data differs at %d", scatter, i)
			}
		}
		for i := range pa.Offsets {
			if pa.Offsets[i] != pm.Offsets[i] {
				t.Fatalf("scatter %v: Offsets differ at %d", scatter, i)
			}
		}
	}
}

// TestWCScatterWithDiverter checks that diversion behaves identically under
// the write-combining scatter: diverted tuples are handled, not staged.
func TestWCScatterWithDiverter(t *testing.T) {
	src := randomTuples(12000, 13)
	divert := func() *Diverter {
		var handled []relation.Tuple
		return &Diverter{
			IDs:    markWhere(src, func(tp relation.Tuple) bool { return tp.Key%5 == 0 }),
			Handle: func(w int, tp relation.Tuple, id int32) { handled = append(handled, tp) },
		}
	}
	cfg := Config{Threads: 1, Bits1: 6, Bits2: 4}
	cfgD, cfgW := cfg, cfg
	cfgD.Scatter = ScatterDirect
	cfgW.Scatter = ScatterWC
	pd := Partition(src, cfgD, divert())
	pw := Partition(src, cfgW, divert())
	if pd.Total() != pw.Total() {
		t.Fatalf("totals differ: %d vs %d", pd.Total(), pw.Total())
	}
	for i := range pd.Data {
		if pd.Data[i] != pw.Data[i] {
			t.Fatalf("Data differs at %d", i)
		}
	}
}

// TestScatterModeAuto pins the auto heuristic's envelope: write-combining
// only inside [wcAutoMinFanout, wcMaxFanout].
func TestScatterModeAuto(t *testing.T) {
	if ScatterAuto.useWC(wcAutoMinFanout - 1) {
		t.Error("auto chose wc below the minimum fanout")
	}
	if !ScatterAuto.useWC(wcAutoMinFanout) {
		t.Error("auto chose direct at the minimum fanout")
	}
	if !ScatterAuto.useWC(wcMaxFanout) {
		t.Error("auto chose direct at the maximum fanout")
	}
	if ScatterAuto.useWC(wcMaxFanout * 2) {
		t.Error("auto chose wc above the maximum fanout")
	}
	if ScatterDirect.useWC(1 << 12) {
		t.Error("direct mode chose wc")
	}
	if !ScatterWC.useWC(2) {
		t.Error("wc mode chose direct")
	}
}

// countDiverted returns how many IDs mark their tuple as diverted.
func countDiverted(ids []int32) int {
	n := 0
	for _, id := range ids {
		if id >= 0 {
			n++
		}
	}
	return n
}

// TestMultiPassWithDiverter drives MultiPass through a diverter: diverted
// tuples must be handed to Handle exactly once and never partitioned, the
// rest must satisfy VerifyPlacement, and nothing may be dropped.
func TestMultiPassWithDiverter(t *testing.T) {
	src := randomTuples(15000, 14)
	for _, tc := range []struct {
		name string
		bits []uint32
	}{
		{"single-pass", []uint32{6}},
		{"two-pass", []uint32{4, 3}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			handled := make(map[relation.Payload]int)
			div := &Diverter{
				IDs:    markWhere(src, func(tp relation.Tuple) bool { return tp.Key%7 == 0 }),
				Handle: func(w int, tp relation.Tuple, id int32) { handled[tp.Payload]++ },
			}
			diverted := countDiverted(div.IDs)
			p := MultiPass(src, 1, tc.bits, div)

			if p.Total() != len(src)-diverted {
				t.Fatalf("partitioned %d tuples, want %d", p.Total(), len(src)-diverted)
			}
			if len(handled) != diverted {
				t.Fatalf("handled %d distinct tuples, want %d", len(handled), diverted)
			}
			for pay, n := range handled {
				if n != 1 {
					t.Fatalf("payload %d handled %d times", pay, n)
				}
			}
			// Placement: MultiPass with bits [b] or [b1, b2] matches the
			// two-pass Config partition index layout exactly.
			cfg := Config{Bits1: tc.bits[0]}
			if len(tc.bits) > 1 {
				cfg.Bits2 = tc.bits[1]
			}
			if bad := VerifyPlacement(p, cfg); bad >= 0 {
				t.Fatalf("placement violation at %d", bad)
			}
			// Nothing dropped and nothing duplicated: partitioned tuples plus
			// handled tuples reassemble the source multiset.
			seen := make(map[relation.Payload]int, len(src))
			for _, tp := range p.Data {
				seen[tp.Payload]++
			}
			for pay := range handled {
				seen[pay]++
			}
			for _, tp := range src {
				seen[tp.Payload]--
			}
			for pay, n := range seen {
				if n != 0 {
					t.Fatalf("payload %d count off by %d", pay, n)
				}
			}
			// Diverted keys must not appear in any partition.
			for _, tp := range p.Data {
				if tp.Key%7 == 0 {
					t.Fatalf("diverted key %d leaked into partitions", tp.Key)
				}
			}
		})
	}
}

// TestMultiPassDiverterDivertsEverything is the degenerate edge: every
// tuple diverted leaves empty partitions but loses nothing.
func TestMultiPassDiverterDivertsEverything(t *testing.T) {
	src := randomTuples(3000, 15)
	var handled int
	div := &Diverter{
		IDs:    markWhere(src, func(relation.Tuple) bool { return true }),
		Handle: func(w int, tp relation.Tuple, id int32) { handled++ },
	}
	p := MultiPass(src, 1, []uint32{4, 3}, div)
	if p.Total() != 0 {
		t.Errorf("partitioned %d tuples, want 0", p.Total())
	}
	if handled != len(src) {
		t.Errorf("handled %d tuples, want %d", handled, len(src))
	}
	if p.Fanout() != 1<<7 {
		t.Errorf("fanout %d, want %d", p.Fanout(), 1<<7)
	}
	if bad := VerifyPlacement(p, Config{Bits1: 4, Bits2: 3}); bad >= 0 {
		t.Errorf("placement violation at %d on empty partitions", bad)
	}
}
