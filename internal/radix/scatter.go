// Scatter strategies for the partition passes.
//
// The seed implementation scattered tuple-at-a-time: each tuple is written
// straight to its partition's output cursor. At high fanout that touches
// one distinct cache line (and TLB entry) per partition per write burst,
// which is exactly the thrashing the radix join's multi-pass design tries
// to avoid — and what software write-combining (SWWC) fixes. Balkesen et
// al.'s radix join and He et al.'s coupled-architecture study (PAPERS.md)
// both stage tuples in small per-thread, per-partition buffers and flush
// them a cache line at a time, keeping the store stream sequential per
// partition run.
//
// Both strategies write each thread's segment in scan order into each
// partition, so partition contents are bit-for-bit identical between them
// (radix_test.go's TestScatterVariantsBitIdentical pins this down).
package radix

import (
	"skewjoin/internal/hashfn"
	"skewjoin/internal/relation"
	"skewjoin/internal/sanitize"
)

// ScatterMode selects the partition scatter strategy.
type ScatterMode uint8

const (
	// ScatterAuto picks per pass: write-combining when the pass fanout is
	// high enough that direct scatter thrashes caches, direct otherwise.
	ScatterAuto ScatterMode = iota
	// ScatterDirect writes each tuple straight to its partition cursor
	// (the seed behaviour).
	ScatterDirect
	// ScatterWC stages tuples in per-thread, per-partition cache-line runs
	// flushed in bulk (software write-combining).
	ScatterWC
)

// String names the mode for benchmark labels and reports.
func (m ScatterMode) String() string {
	switch m {
	case ScatterDirect:
		return "direct"
	case ScatterWC:
		return "wc"
	default:
		return "auto"
	}
}

// SchedMode selects the dynamic task queue implementation that drains the
// later partition passes.
type SchedMode uint8

const (
	// SchedAtomic dequeues with exec.Queue's lock-free fetch-add fast path
	// (the default).
	SchedAtomic SchedMode = iota
	// SchedMutex dequeues through exec.MutexQueue, the seed's fully
	// mutex-guarded queue, kept as the benchmark baseline.
	SchedMutex
)

// String names the mode for benchmark labels and reports.
func (m SchedMode) String() string {
	if m == SchedMutex {
		return "mutex"
	}
	return "atomic"
}

// wcTuples is the staging-run length: 8 tuples x 8 bytes = one 64-byte
// cache line per partition.
const wcTuples = 8

// Auto-mode thresholds. Below wcAutoMinFanout the scatter's working set
// (one cache line per partition) fits comfortably in cache and the staging
// copy is pure overhead; above wcMaxFanout the per-thread staging buffers
// (fanout x 64 B) would rival the data itself. The lower bound is set from
// measurement, not theory: on the benchmark host direct scatter stayed
// ahead of write-combining at every fanout up to 2^11 (BENCH_partition.json
// and DESIGN.md "Partitioner performance"), so auto engages WC only beyond
// the measured range, where direct scatter's open write streams outrun any
// plausible L1-TLB. Re-tune on hosts where the wc variant wins earlier.
const (
	wcAutoMinFanout = 1 << 12
	wcMaxFanout     = 1 << 16
)

// useWC resolves the mode for a pass with the given fanout.
func (m ScatterMode) useWC(fanout int) bool {
	switch m {
	case ScatterDirect:
		return false
	case ScatterWC:
		return true
	default:
		return fanout >= wcAutoMinFanout && fanout <= wcMaxFanout
	}
}

// wcBuf is one worker's write-combining staging area: a cache-line-sized
// run per partition plus per-partition fill counts. A worker reuses its
// buffer across partition tasks (scatter leaves fill zeroed).
type wcBuf struct {
	runs []relation.Tuple // fanout x wcTuples, partition-major
	fill []uint8          // tuples currently staged per partition
}

func newWCBuf(fanout int) *wcBuf {
	return &wcBuf{
		runs: make([]relation.Tuple, fanout*wcTuples),
		fill: make([]uint8, fanout),
	}
}

// scatterDirect copies src[lo:hi] to out tuple-at-a-time, advancing the
// per-partition cursors cur (absolute indexes into out). div, if non-nil,
// is consulted with the absolute source index; diverted tuples are handed
// to div.Handle (worker id w) instead of being scattered.
//
//skewlint:hotpath
func scatterDirect(out, src []relation.Tuple, lo, hi int, cur []int, shift, bits uint32, div *Diverter, w int) {
	for i := lo; i < hi; i++ {
		t := src[i]
		if div != nil {
			if id := div.IDs[i]; id >= 0 {
				if div.Handle != nil {
					div.Handle(w, t, id)
				}
				continue
			}
		}
		p := hashfn.Radix(t.Key, shift, bits)
		if sanitize.Enabled {
			checkScatter(int(p), len(cur), cur, len(out))
		}
		out[cur[p]] = t
		cur[p]++
	}
}

// checkScatter validates one scatter write: the partition index must be
// inside the pass fanout and the partition's cursor inside the output
// array. Either violation means a histogram/prefix-sum mismatch is about
// to corrupt a neighbouring partition's region.
func checkScatter(p, fanout int, cur []int, outLen int) {
	if p < 0 || p >= fanout {
		sanitize.Failf("radix: scatter partition %d outside pass fanout %d", p, fanout)
	}
	if cur[p] < 0 || cur[p] >= outLen {
		sanitize.Failf("radix: scatter cursor %d for partition %d outside output of %d tuples (region overrun)",
			cur[p], p, outLen)
	}
}

// scatterWC is scatterDirect with software write-combining: tuples are
// staged in buf and flushed one cache-line run at a time, so the store
// stream per partition is sequential bursts instead of isolated writes.
// Within each partition tuples still land in src scan order, making the
// output bit-for-bit identical to scatterDirect's. buf.fill is left zeroed
// for reuse.
//
//skewlint:hotpath
func scatterWC(out, src []relation.Tuple, lo, hi int, cur []int, shift, bits uint32, div *Diverter, w int, buf *wcBuf) {
	runs, fill := buf.runs, buf.fill
	for i := lo; i < hi; i++ {
		t := src[i]
		if div != nil {
			if id := div.IDs[i]; id >= 0 {
				if div.Handle != nil {
					div.Handle(w, t, id)
				}
				continue
			}
		}
		p := int(hashfn.Radix(t.Key, shift, bits))
		if sanitize.Enabled {
			checkScatter(p, len(cur), cur, len(out))
		}
		n := int(fill[p])
		runs[p*wcTuples+n] = t
		n++
		if n == wcTuples {
			copy(out[cur[p]:cur[p]+wcTuples], runs[p*wcTuples:p*wcTuples+wcTuples])
			cur[p] += wcTuples
			fill[p] = 0
		} else {
			fill[p] = uint8(n)
		}
	}
	// Flush partial runs and reset the buffer for the next task.
	for p := range fill {
		if n := int(fill[p]); n > 0 {
			copy(out[cur[p]:cur[p]+n], runs[p*wcTuples:p*wcTuples+n])
			cur[p] += n
			fill[p] = 0
		}
	}
}
