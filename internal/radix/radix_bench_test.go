package radix

import (
	"fmt"
	"testing"

	"skewjoin/internal/zipf"
)

// BenchmarkPasses is the pass-count ablation (DESIGN.md §4): the same
// total fanout reached in one, two or three passes. More passes mean more
// copies of the data but lower per-pass fanout — the radix join's
// TLB-pressure trade-off (on hardware with few TLB entries, high single-
// pass fanouts thrash; the benchmark exposes the copy-count side of the
// trade on any host).
func BenchmarkPasses(b *testing.B) {
	const n = 1 << 18
	g := zipf.MustNew(zipf.Config{Theta: 0.5, Universe: n, Seed: 42})
	src := g.NewRelation(n, 1).Tuples
	for _, tc := range []struct {
		name string
		bits []uint32
	}{
		{"1pass/2^12", []uint32{12}},
		{"2pass/2^12", []uint32{6, 6}},
		{"3pass/2^12", []uint32{4, 4, 4}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.SetBytes(int64(n * 8))
			for i := 0; i < b.N; i++ {
				MultiPass(src, 2, tc.bits, nil)
			}
		})
	}
}

// BenchmarkPartitionThroughput measures the two-pass partitioner's
// tuples/sec at the defaults the joins use.
func BenchmarkPartitionThroughput(b *testing.B) {
	for _, n := range []int{1 << 16, 1 << 18} {
		g := zipf.MustNew(zipf.Config{Theta: 0.8, Universe: n, Seed: 42})
		src := g.NewRelation(n, 1).Tuples
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.SetBytes(int64(n * 8))
			for i := 0; i < b.N; i++ {
				Partition(src, Config{Threads: 2, Bits1: 6, Bits2: 5}, nil)
			}
		})
	}
}
