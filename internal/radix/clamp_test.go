package radix

import "testing"

func TestClampBits(t *testing.T) {
	cases := []struct{ b1, b2, w1, w2 uint32 }{
		{6, 5, 6, 5},
		{20, 0, 20, 0},
		{25, 0, 20, 0},
		{30, 30, 20, 0},
		{12, 12, 12, 8},
		{0, 25, 0, 20},
	}
	for _, c := range cases {
		g1, g2 := ClampBits(c.b1, c.b2)
		if g1 != c.w1 || g2 != c.w2 {
			t.Errorf("ClampBits(%d, %d) = (%d, %d), want (%d, %d)", c.b1, c.b2, g1, g2, c.w1, c.w2)
		}
	}
}
