package radix

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"skewjoin/internal/relation"
	"skewjoin/internal/zipf"
)

func randomTuples(n int, seed int64) []relation.Tuple {
	rng := rand.New(rand.NewSource(seed))
	ts := make([]relation.Tuple, n)
	for i := range ts {
		ts[i] = relation.Tuple{Key: relation.Key(rng.Uint32() >> 8), Payload: relation.Payload(i)}
	}
	return ts
}

// sortedCopy canonicalises a tuple multiset for comparison.
func sortedCopy(ts []relation.Tuple) []relation.Tuple {
	c := make([]relation.Tuple, len(ts))
	copy(c, ts)
	sort.Slice(c, func(i, j int) bool {
		if c[i].Key != c[j].Key {
			return c[i].Key < c[j].Key
		}
		return c[i].Payload < c[j].Payload
	})
	return c
}

func TestPartitionIsPermutation(t *testing.T) {
	src := randomTuples(10000, 1)
	for _, cfg := range []Config{
		{Threads: 1, Bits1: 4, Bits2: 0},
		{Threads: 3, Bits1: 4, Bits2: 3},
		{Threads: 8, Bits1: 6, Bits2: 5},
	} {
		p := Partition(src, cfg, nil)
		if p.Total() != len(src) {
			t.Fatalf("cfg %+v: %d tuples out, %d in", cfg, p.Total(), len(src))
		}
		got := sortedCopy(p.Data)
		want := sortedCopy(src)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("cfg %+v: partitioning is not a permutation (first diff at %d)", cfg, i)
			}
		}
	}
}

func TestPlacementInvariant(t *testing.T) {
	src := randomTuples(20000, 2)
	for _, cfg := range []Config{
		{Threads: 2, Bits1: 5, Bits2: 0},
		{Threads: 4, Bits1: 5, Bits2: 4},
		{Threads: 1, Bits1: 1, Bits2: 1},
	} {
		p := Partition(src, cfg, nil)
		if bad := VerifyPlacement(p, cfg); bad >= 0 {
			t.Errorf("cfg %+v: tuple %d in wrong partition", cfg, bad)
		}
	}
}

func TestOffsetsAreMonotone(t *testing.T) {
	src := randomTuples(5000, 3)
	cfg := Config{Threads: 3, Bits1: 4, Bits2: 4}
	p := Partition(src, cfg, nil)
	if len(p.Offsets) != cfg.Fanout()+1 {
		t.Fatalf("offsets length %d, want %d", len(p.Offsets), cfg.Fanout()+1)
	}
	for i := 1; i < len(p.Offsets); i++ {
		if p.Offsets[i] < p.Offsets[i-1] {
			t.Fatalf("offsets not monotone at %d", i)
		}
	}
	if p.Offsets[0] != 0 || p.Offsets[len(p.Offsets)-1] != len(src) {
		t.Fatalf("offsets endpoints wrong: %d .. %d", p.Offsets[0], p.Offsets[len(p.Offsets)-1])
	}
}

func TestThreadCountDoesNotChangePartitionContents(t *testing.T) {
	src := randomTuples(8000, 4)
	cfg1 := Config{Threads: 1, Bits1: 5, Bits2: 3}
	cfg8 := Config{Threads: 8, Bits1: 5, Bits2: 3}
	p1 := Partition(src, cfg1, nil)
	p8 := Partition(src, cfg8, nil)
	for part := 0; part < cfg1.Fanout(); part++ {
		a := sortedCopy(p1.Part(part))
		b := sortedCopy(p8.Part(part))
		if len(a) != len(b) {
			t.Fatalf("partition %d: size %d vs %d", part, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("partition %d: content differs at %d", part, i)
			}
		}
	}
}

func TestSameKeySamePartition(t *testing.T) {
	// All tuples of one key must land in one partition — the very property
	// that makes skew unsplittable (§III).
	g := zipf.MustNew(zipf.Config{Theta: 1.0, Universe: 2000, Seed: 5})
	src := g.NewRelation(20000, 1).Tuples
	cfg := Config{Threads: 4, Bits1: 4, Bits2: 2}
	p := Partition(src, cfg, nil)
	where := make(map[relation.Key]int)
	for part := 0; part < cfg.Fanout(); part++ {
		for _, tp := range p.Part(part) {
			if prev, ok := where[tp.Key]; ok && prev != part {
				t.Fatalf("key %d appears in partitions %d and %d", tp.Key, prev, part)
			}
			where[tp.Key] = part
		}
	}
}

func markWhere(src []relation.Tuple, pred func(relation.Tuple) bool) []int32 {
	ids := make([]int32, len(src))
	for i, tp := range src {
		if pred(tp) {
			ids[i] = 7
		} else {
			ids[i] = -1
		}
	}
	return ids
}

func TestDiverterExcludesAndHandles(t *testing.T) {
	src := randomTuples(10000, 6)
	victim := src[1234].Key
	var handled []relation.Tuple
	div := &Diverter{
		IDs: markWhere(src, func(t relation.Tuple) bool { return t.Key == victim }),
		Handle: func(w int, tp relation.Tuple, id int32) {
			if id != 7 {
				t.Errorf("handle got id %d, want 7", id)
			}
			handled = append(handled, tp)
		},
	}
	cfg := Config{Threads: 1, Bits1: 4, Bits2: 2}
	p := Partition(src, cfg, div)
	want := 0
	for _, tp := range src {
		if tp.Key == victim {
			want++
		}
	}
	if len(handled) != want {
		t.Errorf("handled %d diverted tuples, want %d", len(handled), want)
	}
	if p.Total() != len(src)-want {
		t.Errorf("partitioned %d tuples, want %d", p.Total(), len(src)-want)
	}
	for part := 0; part < cfg.Fanout(); part++ {
		for _, tp := range p.Part(part) {
			if tp.Key == victim {
				t.Fatalf("diverted key leaked into partition %d", part)
			}
		}
	}
}

func TestDiverterHandleSeesEachTupleOnce(t *testing.T) {
	src := randomTuples(5000, 7)
	count := make(map[relation.Payload]int)
	div := &Diverter{
		IDs:    markWhere(src, func(t relation.Tuple) bool { return t.Key%3 == 0 }),
		Handle: func(w int, tp relation.Tuple, id int32) { count[tp.Payload]++ },
	}
	Partition(src, Config{Threads: 1, Bits1: 3, Bits2: 3}, div)
	for p, c := range count {
		if c != 1 {
			t.Fatalf("payload %d handled %d times", p, c)
		}
	}
}

func TestEmptyInput(t *testing.T) {
	p := Partition(nil, Config{Threads: 4, Bits1: 4, Bits2: 4}, nil)
	if p.Total() != 0 {
		t.Errorf("empty input produced %d tuples", p.Total())
	}
	if bad := VerifyPlacement(p, Config{Threads: 4, Bits1: 4, Bits2: 4}); bad >= 0 {
		t.Errorf("placement violation %d on empty input", bad)
	}
}

func TestSingleTuple(t *testing.T) {
	src := []relation.Tuple{{Key: 77, Payload: 1}}
	cfg := Config{Threads: 8, Bits1: 6, Bits2: 5}
	p := Partition(src, cfg, nil)
	if p.Total() != 1 {
		t.Fatalf("got %d tuples", p.Total())
	}
	if bad := VerifyPlacement(p, cfg); bad >= 0 {
		t.Fatalf("placement violation")
	}
}

func TestMoreThreadsThanTuples(t *testing.T) {
	src := randomTuples(5, 8)
	p := Partition(src, Config{Threads: 16, Bits1: 3, Bits2: 2}, nil)
	if p.Total() != 5 {
		t.Errorf("got %d tuples, want 5", p.Total())
	}
}

func TestMultiPassMatchesTwoPass(t *testing.T) {
	src := randomTuples(12000, 21)
	two := Partition(src, Config{Threads: 3, Bits1: 4, Bits2: 3}, nil)
	multi := MultiPass(src, 3, []uint32{4, 3}, nil)
	if multi.Fanout() != two.Fanout() {
		t.Fatalf("fanout %d vs %d", multi.Fanout(), two.Fanout())
	}
	for p := 0; p < two.Fanout(); p++ {
		a := sortedCopy(two.Part(p))
		b := sortedCopy(multi.Part(p))
		if len(a) != len(b) {
			t.Fatalf("partition %d: %d vs %d tuples", p, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("partition %d differs at %d", p, i)
			}
		}
	}
}

func TestMultiPassThreePasses(t *testing.T) {
	src := randomTuples(15000, 22)
	p := MultiPass(src, 4, []uint32{3, 3, 2}, nil)
	if p.Fanout() != 1<<8 {
		t.Fatalf("fanout = %d", p.Fanout())
	}
	if p.Total() != len(src) {
		t.Fatalf("total = %d", p.Total())
	}
	// Same key ⇒ same partition, and the multiset is preserved.
	where := make(map[relation.Key]int)
	for part := 0; part < p.Fanout(); part++ {
		for _, tp := range p.Part(part) {
			if prev, ok := where[tp.Key]; ok && prev != part {
				t.Fatalf("key %d split across partitions %d and %d", tp.Key, prev, part)
			}
			where[tp.Key] = part
		}
	}
	got := sortedCopy(p.Data)
	want := sortedCopy(src)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("multiset differs at %d", i)
		}
	}
}

func TestMultiPassSinglePass(t *testing.T) {
	src := randomTuples(5000, 23)
	one := MultiPass(src, 2, []uint32{5}, nil)
	ref := Partition(src, Config{Threads: 2, Bits1: 5, Bits2: 0}, nil)
	if one.Fanout() != ref.Fanout() || one.Total() != ref.Total() {
		t.Fatalf("single-pass mismatch: %d/%d vs %d/%d",
			one.Fanout(), one.Total(), ref.Fanout(), ref.Total())
	}
}

func TestMultiPassNoPassesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for zero passes")
		}
	}()
	MultiPass(nil, 1, nil, nil)
}

func TestQuickPartitionPreservesMultiset(t *testing.T) {
	f := func(keys []uint32, threadsRaw, b1Raw, b2Raw uint8) bool {
		src := make([]relation.Tuple, len(keys))
		for i, k := range keys {
			src[i] = relation.Tuple{Key: relation.Key(k), Payload: relation.Payload(i)}
		}
		cfg := Config{
			Threads: int(threadsRaw%8) + 1,
			Bits1:   uint32(b1Raw%6) + 1,
			Bits2:   uint32(b2Raw % 5),
		}
		p := Partition(src, cfg, nil)
		if p.Total() != len(src) {
			return false
		}
		if VerifyPlacement(p, cfg) >= 0 {
			return false
		}
		got := sortedCopy(p.Data)
		want := sortedCopy(src)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
