// Package radix implements the parallel multi-pass radix partitioner that
// Cbase (Balkesen et al.'s parallel radix join) and CSH share.
//
// Pass 1 follows the paper's description of Cbase exactly (§II-B): the
// input relation is divided into equal-sized segments, one per thread; each
// thread scans its segment twice — the first scan counts tuples per target
// partition, then, after a prefix sum computes per-thread output offsets in
// one contiguous array, the second scan copies tuples to their partitions
// without any thread contention.
//
// Pass 2 treats every pass-1 partition as a partitioning task in a dynamic
// task queue; threads repeatedly dequeue and sub-partition tasks until the
// queue drains. Two passes keep the per-pass fanout low, which is the radix
// join's TLB-miss optimisation.
//
// Both passes can scatter through software write-combining buffers
// (Config.Scatter, see scatter.go) and pass 2's task queue is lock-free by
// default (Config.Sched); both knobs keep the output bit-for-bit identical
// and exist so the variants can be benchmarked against each other.
//
// CSH reuses this machinery with a Diverter: tuples whose key is in the
// skew checkup table bypass radix partitioning entirely and are handed to a
// callback instead (appended to a skewed partition for R; joined on the fly
// for S).
package radix

import (
	"context"

	"skewjoin/internal/exec"
	"skewjoin/internal/hashfn"
	"skewjoin/internal/relation"
	"skewjoin/internal/sanitize"
)

// Config controls the partitioner.
type Config struct {
	// Threads is the number of worker threads.
	Threads int
	// Bits1 and Bits2 are the radix bits consumed by pass 1 and pass 2.
	// Total fanout is 2^(Bits1+Bits2). Bits2 == 0 selects single-pass
	// partitioning.
	Bits1, Bits2 uint32
	// Scatter selects the scatter strategy (default ScatterAuto). Both
	// strategies produce bit-for-bit identical partitions; the knob exists
	// so benchmarks can A/B software write-combining against the seed's
	// direct scatter.
	Scatter ScatterMode
	// Sched selects the task-queue implementation draining pass 2 (default
	// SchedAtomic, the lock-free fetch-add queue). SchedMutex restores the
	// seed's mutex-guarded queue for A/B benchmarks.
	Sched SchedMode
	// Ctx optionally cancels partitioning between passes and, during pass
	// 2, between partition tasks (nil = run to completion). A cancelled
	// run returns an empty Partitioned with the configured fanout so the
	// result stays shape-valid; callers observing a done context discard
	// it.
	Ctx context.Context
}

// Fanout returns the total number of final partitions.
func (c Config) Fanout() int { return 1 << (c.Bits1 + c.Bits2) }

// ClampBits bounds the total radix fanout at 2^20 partitions: beyond that
// the per-thread histograms dwarf the data, and a misconfiguration would
// exhaust memory rather than degrade gracefully.
func ClampBits(b1, b2 uint32) (uint32, uint32) {
	const maxTotal = 20
	if b1 > maxTotal {
		b1 = maxTotal
	}
	if b1+b2 > maxTotal {
		b2 = maxTotal - b1
	}
	return b1, b2
}

// Diverter pulls tuples out of the partitioning stream. IDs must have one
// entry per source tuple: IDs[i] >= 0 marks tuple i as diverted (with that
// id, e.g. a skewed-partition id) and the tuple is not partitioned; during
// the copy scan Handle is invoked once for every diverted tuple. The caller
// computes IDs with a single pass over the input (CSH probes its skew
// checkup table once per tuple), keeping the partition scans branch-cheap.
// Handle may be nil when diverted tuples need no action during this pass.
type Diverter struct {
	IDs    []int32
	Handle func(worker int, t relation.Tuple, id int32)
}

// Partitioned is the result of partitioning one relation: tuples grouped by
// partition in one contiguous backing array.
type Partitioned struct {
	Data    []relation.Tuple
	Offsets []int // len Fanout+1; partition p is Data[Offsets[p]:Offsets[p+1]]
	fanout  int
}

// Part returns the tuples of partition p.
func (p *Partitioned) Part(i int) []relation.Tuple {
	return p.Data[p.Offsets[i]:p.Offsets[i+1]]
}

// Fanout returns the number of partitions.
func (p *Partitioned) Fanout() int { return p.fanout }

// Size returns the number of tuples in partition p.
func (p *Partitioned) Size(i int) int { return p.Offsets[i+1] - p.Offsets[i] }

// Total returns the total number of partitioned tuples.
func (p *Partitioned) Total() int { return len(p.Data) }

// MaxPartition returns the index and size of the largest partition.
func (p *Partitioned) MaxPartition() (idx, size int) {
	for i := 0; i < p.fanout; i++ {
		if s := p.Size(i); s > size {
			idx, size = i, s
		}
	}
	return idx, size
}

// partID computes the final partition of a key under cfg: pass-1 bits are
// the low Bits1 bits of the hashed key, pass-2 bits the next Bits2.
//
//skewlint:hotpath
func partID(k relation.Key, cfg Config) uint32 {
	p1 := hashfn.Radix(k, 0, cfg.Bits1)
	p2 := hashfn.Radix(k, cfg.Bits1, cfg.Bits2)
	return p1<<cfg.Bits2 | p2
}

// Partition partitions src into cfg.Fanout() partitions using one or two
// passes, honouring the optional diverter. src is not modified.
func Partition(src []relation.Tuple, cfg Config, div *Diverter) *Partitioned {
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	if canceled(cfg.Ctx) {
		return emptyPartitioned(cfg.Fanout())
	}
	pass1 := passOne(src, cfg, div)
	if cfg.Bits2 == 0 {
		pass1.fanout = 1 << cfg.Bits1
		checkPlacement(pass1, cfg)
		return pass1
	}
	if canceled(cfg.Ctx) {
		return emptyPartitioned(cfg.Fanout())
	}
	out := passTwo(pass1, cfg)
	checkPlacement(out, cfg)
	return out
}

// checkPlacement runs VerifyPlacement on sanitize builds: every tuple
// must sit inside the partition its key hashes to, or the scatter wrote
// across a region boundary. No cost on normal builds (Enabled is a false
// constant). A cancelled run's empty result passes trivially.
func checkPlacement(p *Partitioned, cfg Config) {
	if !sanitize.Enabled {
		return
	}
	if i := VerifyPlacement(p, cfg); i >= 0 {
		sanitize.Failf("radix: tuple %d (key %d) landed outside partition %d",
			i, p.Data[i].Key, partID(p.Data[i].Key, cfg))
	}
}

// canceled reports whether an optional context is already done.
func canceled(ctx context.Context) bool { return ctx != nil && ctx.Err() != nil }

// emptyPartitioned is the shape-valid zero result a cancelled run
// returns: no tuples, but Offsets sized for the fanout so Part/Size
// never index out of range on the discarded value.
func emptyPartitioned(fanout int) *Partitioned {
	return &Partitioned{Offsets: make([]int, fanout+1), fanout: fanout}
}

// passOne performs the segment-parallel count-then-copy pass over src,
// partitioning on the low Bits1 bits.
//
//skewlint:hotpath
func passOne(src []relation.Tuple, cfg Config, div *Diverter) *Partitioned {
	fanout := 1 << cfg.Bits1
	threads := cfg.Threads

	// First scan: per-thread histograms, skipping diverted tuples.
	hist := make([][]int, threads)
	exec.Parallel(threads, func(w int) {
		h := make([]int, fanout)
		lo, hi := exec.Segment(len(src), threads, w)
		for i := lo; i < hi; i++ {
			if div != nil && div.IDs[i] >= 0 {
				continue
			}
			h[hashfn.Radix(src[i].Key, 0, cfg.Bits1)]++
		}
		hist[w] = h
	})

	// Prefix sums: partition-major, thread-minor, so each thread owns a
	// contention-free window inside every partition.
	offsets, cursor := prefixSums(hist, fanout, threads)
	pos := offsets[fanout]

	// Second scan: contention-free scatter; diverted tuples are handled.
	out := make([]relation.Tuple, pos)
	useWC := cfg.Scatter.useWC(fanout)
	exec.Parallel(threads, func(w int) {
		lo, hi := exec.Segment(len(src), threads, w)
		if useWC {
			scatterWC(out, src, lo, hi, cursor[w], 0, cfg.Bits1, div, w, newWCBuf(fanout))
		} else {
			scatterDirect(out, src, lo, hi, cursor[w], 0, cfg.Bits1, div, w)
		}
	})
	return &Partitioned{Data: out, Offsets: offsets, fanout: fanout}
}

// prefixCells is the (partition x thread) grid size above which the prefix
// sums run partition-parallel; below it the serial scan wins because the
// whole grid fits in cache and forking workers costs more than scanning.
const prefixCells = 1 << 14

// prefixSums turns the per-thread histograms into the partition offset
// array and per-(thread, partition) scatter cursors. Layout is
// partition-major, thread-minor: inside partition p, thread w's window
// starts at cursor[w][p]. Large grids are computed in three phases —
// block-local scans in parallel, a serial prefix over the block totals,
// then a parallel fix-up — so the pass-1 barrier between the count and
// copy scans no longer serialises on fanout x threads additions.
//
//skewlint:hotpath
func prefixSums(hist [][]int, fanout, threads int) (offsets []int, cursor [][]int) {
	offsets = make([]int, fanout+1)
	cursor = make([][]int, threads)
	for w := range cursor {
		cursor[w] = make([]int, fanout)
	}
	if threads == 1 || fanout*threads < prefixCells {
		pos := 0
		for p := 0; p < fanout; p++ {
			offsets[p] = pos
			for w := 0; w < threads; w++ {
				cursor[w][p] = pos
				pos += hist[w][p]
			}
		}
		offsets[fanout] = pos
		return offsets, cursor
	}

	// Phase A: each worker owns a block of partitions and computes
	// block-relative positions plus its block total.
	totals := make([]int, threads)
	exec.Parallel(threads, func(b int) {
		lo, hi := exec.Segment(fanout, threads, b)
		pos := 0
		for p := lo; p < hi; p++ {
			offsets[p] = pos
			for w := 0; w < threads; w++ {
				cursor[w][p] = pos
				pos += hist[w][p]
			}
		}
		totals[b] = pos
	})
	// Phase B: serial prefix over the (few) block totals.
	base := make([]int, threads+1)
	for b := 0; b < threads; b++ {
		base[b+1] = base[b] + totals[b]
	}
	// Phase C: shift every block by its base.
	exec.Parallel(threads, func(b int) {
		add := base[b]
		if add == 0 {
			return
		}
		lo, hi := exec.Segment(fanout, threads, b)
		for p := lo; p < hi; p++ {
			offsets[p] += add
			for w := 0; w < threads; w++ {
				cursor[w][p] += add
			}
		}
	})
	offsets[fanout] = base[threads]
	return offsets, cursor
}

// passTwo sub-partitions each pass-1 partition on the next Bits2 bits.
func passTwo(p1 *Partitioned, cfg Config) *Partitioned {
	return passNext(p1, cfg.Ctx, cfg.Bits1, cfg.Bits2, cfg.Threads, cfg.Scatter, cfg.Sched)
}

// passNext refines every partition of p on the radix bits
// [shift, shift+bits), multiplying the fanout by 2^bits. Every existing
// partition is a partitioning task in a dynamic queue (the paper: "Cbase
// views each partition as a partition task and adds it into a task queue
// in the second pass"); its output stays inside its contiguous region.
// The queue never grows while draining, so with SchedAtomic every dequeue
// takes the lock-free fetch-add fast path. A non-nil ctx cancels between
// tasks; a cut-short drain leaves holes in subOffsets, so the pass then
// returns the empty shape instead of reading them.
//
//skewlint:hotpath
func passNext(p1 *Partitioned, ctx context.Context, shift, bits uint32, threads int, scatter ScatterMode, sched SchedMode) *Partitioned {
	fanPrev := p1.fanout
	fanSub := 1 << bits
	fanout := fanPrev * fanSub
	out := make([]relation.Tuple, len(p1.Data))
	offsets := make([]int, fanout+1)

	type task struct{ p int }
	tasks := make([]task, fanPrev)
	for p := range tasks {
		tasks[p] = task{p: p}
	}
	subOffsets := make([][]int, fanPrev)

	useWC := scatter.useWC(fanSub)
	// Write-combining buffers are per worker, reused across tasks, and
	// allocated lazily so idle workers cost nothing.
	var wcBufs []*wcBuf
	if useWC {
		wcBufs = make([]*wcBuf, threads)
	}
	work := func(w int, t task) {
		part := p1.Data[p1.Offsets[t.p]:p1.Offsets[t.p+1]]
		base := p1.Offsets[t.p]
		h := make([]int, fanSub+1)
		for _, tp := range part {
			h[hashfn.Radix(tp.Key, shift, bits)+1]++
		}
		for i := 1; i <= fanSub; i++ {
			h[i] += h[i-1]
		}
		offs := make([]int, fanSub+1)
		copy(offs, h)
		cur := make([]int, fanSub)
		for s := range cur {
			cur[s] = base + h[s]
		}
		if useWC {
			buf := wcBufs[w]
			if buf == nil {
				buf = newWCBuf(fanSub)
				wcBufs[w] = buf
			}
			scatterWC(out, part, 0, len(part), cur, shift, bits, nil, w, buf)
		} else {
			scatterDirect(out, part, 0, len(part), cur, shift, bits, nil, w)
		}
		subOffsets[t.p] = offs
	}
	var cut error
	switch {
	case sched == SchedMutex && ctx != nil:
		cut = exec.NewMutexQueue(tasks).DrainCtx(ctx, threads, work)
	case sched == SchedMutex:
		exec.NewMutexQueue(tasks).Drain(threads, work)
	case ctx != nil:
		cut = exec.NewQueue(tasks).DrainCtx(ctx, threads, work)
	default:
		exec.NewQueue(tasks).Drain(threads, work)
	}
	if cut != nil {
		return emptyPartitioned(fanout)
	}

	for p := 0; p < fanPrev; p++ {
		base := p1.Offsets[p]
		for s := 0; s < fanSub; s++ {
			offsets[p*fanSub+s] = base + subOffsets[p][s]
		}
	}
	offsets[fanout] = len(out)
	return &Partitioned{Data: out, Offsets: offsets, fanout: fanout}
}

// MultiPass partitions src over any number of passes: pass i consumes
// bits[i] radix bits, with pass 0 segment-parallel over the input and
// every later pass task-parallel over the partitions of the pass before —
// the "two or more passes" generalisation of the radix join (Boncz et
// al.). Final partition indexes order pass-0 bits most-significant, so two
// relations partitioned with the same bits pair up by index. At least one
// pass is required; a diverter, if given, applies during pass 0.
func MultiPass(src []relation.Tuple, threads int, bits []uint32, div *Diverter) *Partitioned {
	if len(bits) == 0 {
		panic("radix: MultiPass needs at least one pass")
	}
	if threads <= 0 {
		threads = 1
	}
	p := passOne(src, Config{Threads: threads, Bits1: bits[0]}, div)
	p.fanout = 1 << bits[0]
	shift := bits[0]
	for _, b := range bits[1:] {
		if b == 0 {
			continue
		}
		p = passNext(p, nil, shift, b, threads, ScatterAuto, SchedAtomic)
		shift += b
	}
	return p
}

// VerifyPlacement checks that every tuple sits in the partition its key
// maps to and returns the first violating index, or -1. Tests use it as a
// structural invariant.
func VerifyPlacement(p *Partitioned, cfg Config) int {
	for part := 0; part < p.fanout; part++ {
		for i := p.Offsets[part]; i < p.Offsets[part+1]; i++ {
			if int(partID(p.Data[i].Key, cfg)) != part {
				return i
			}
		}
	}
	return -1
}

// PartOf exposes the final partition id of a key under cfg, so join phases
// pair R and S partitions consistently.
func PartOf(k relation.Key, cfg Config) int { return int(partID(k, cfg)) }
