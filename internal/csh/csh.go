// Package csh implements CSH, the paper's CPU Skew-conscious Hash join
// (§IV-A). CSH is a parallel partitioned hash join with a skew-detection
// phase in front and a hybrid partition phase, so that skewed tuples are
// handled explicitly and never reach the join phase:
//
//  1. Detect skewed keys through sampling: a small sample (default 1%) of
//     R's keys is counted in a hash table; keys whose sampled frequency
//     reaches a threshold (default 2) are marked skewed and each gets a
//     dedicated skewed partition.
//  2. Partition R: each R tuple is checked in the skew checkup table;
//     skewed tuples are appended to their key's skewed partition, normal
//     tuples go through ordinary radix partitioning.
//  3. Partition S: normal S tuples are radix-partitioned; a skewed S tuple
//     is not copied at all — CSH immediately joins it against the skewed R
//     partition of its key, emitting results with sequential reads and no
//     per-result key comparison (the hybrid-hash-join idea).
//  4. NM-join: the remaining normal partitions are joined exactly like
//     Cbase's join phase.
package csh

import (
	"context"
	"sync"
	"time"

	"skewjoin/internal/chainedtable"
	"skewjoin/internal/exec"
	"skewjoin/internal/freqtable"
	"skewjoin/internal/joinphase"
	"skewjoin/internal/outbuf"
	"skewjoin/internal/radix"
	"skewjoin/internal/relation"
)

// Config tunes CSH.
type Config struct {
	// Threads is the number of worker threads (paper: 20).
	Threads int
	// Bits1/Bits2 are the radix bits of the two partition passes for
	// normal tuples, as in Cbase.
	Bits1, Bits2 uint32
	// SampleRate is the fraction of R tuples sampled for skew detection
	// (paper example: 1%).
	SampleRate float64
	// SkewThreshold is the sampled frequency at or above which a key is
	// marked skewed (paper example: 2).
	SkewThreshold uint32
	// SkewFactor is Cbase's task-splitting factor, kept for the NM-join
	// phase.
	SkewFactor float64
	// OutBufCap is the per-thread output ring capacity (0 = default).
	OutBufCap int
	// Flush optionally installs a per-worker batch consumer on the output
	// buffers (the volcano model's upper operator); the final partial
	// batch is delivered before Join returns.
	Flush func(worker int) outbuf.FlushFunc
	// Scatter selects the partitioner's scatter strategy (default
	// radix.ScatterAuto); both strategies are output-equivalent.
	Scatter radix.ScatterMode
	// Sched selects the dynamic task queue used by partition pass 2 and
	// the NM-join phase (default radix.SchedAtomic).
	Sched radix.SchedMode
	// Probe selects the NM-join phase's probe strategy (default
	// chainedtable.ProbeScalar; ProbeGrouped advances GroupSize chain walks
	// in lock-step). Output-equivalent.
	Probe chainedtable.ProbeMode
	// Layout selects the NM-join phase's build-table layout (default
	// chainedtable.LayoutChained; LayoutCompact stores buckets
	// contiguously). Output-equivalent.
	Layout chainedtable.Layout
	// Ctx optionally cancels the run (nil = never). Cancellation is
	// checked at phase boundaries and between NM-join tasks; a cancelled
	// run reports Result.Canceled and its summary must be discarded.
	Ctx context.Context
}

// Defaults fills zero fields with the paper's example parameters.
func (c Config) Defaults() Config {
	if c.Threads <= 0 {
		c.Threads = exec.DefaultThreads()
	}
	if c.Bits1 == 0 && c.Bits2 == 0 {
		c.Bits1, c.Bits2 = 6, 5
	}
	c.Bits1, c.Bits2 = radix.ClampBits(c.Bits1, c.Bits2)
	if c.SampleRate <= 0 {
		c.SampleRate = 0.01
	}
	if c.SkewThreshold == 0 {
		c.SkewThreshold = 2
	}
	if c.SkewFactor == 0 {
		c.SkewFactor = 4
	}
	return c
}

// Stats reports the internals of a CSH run.
type Stats struct {
	SampleSize    int
	SkewedKeys    int    // keys marked skewed by detection
	SkewedTuplesR int    // R tuples diverted into skewed partitions
	SkewedTuplesS int    // S tuples joined on the fly
	SkewOutput    uint64 // results emitted during the partition phase
	Fanout        int
	NM            joinphase.Stats
}

// Result is the outcome of one CSH run.
type Result struct {
	Summary outbuf.Summary
	Phases  []exec.Phase // "sample", "partition", "nmjoin"
	Stats   Stats
	// Canceled reports that Config.Ctx fired before the run completed; the
	// summary covers only the work done up to that point.
	Canceled bool
}

// Total returns the end-to-end time of the run.
func (r Result) Total() time.Duration {
	var d time.Duration
	for _, p := range r.Phases {
		d += p.Duration
	}
	return d
}

// SamplePlusPartition returns the combined duration of the sample and
// partition phases — the "CSH sample+part" row of the paper's Table I,
// which includes all skewed-tuple result generation.
func (r Result) SamplePlusPartition() time.Duration {
	var d time.Duration
	for _, p := range r.Phases {
		if p.Name == "sample" || p.Name == "partition" {
			d += p.Duration
		}
	}
	return d
}

// markSkewed probes the checkup table for every tuple of rel, in parallel,
// returning the per-tuple skewed-partition ids (-1 = normal).
func markSkewed(rel relation.Relation, checkup *checkupTable, threads int) []int32 {
	ids := make([]int32, rel.Len())
	exec.Parallel(threads, func(w int) {
		lo, hi := exec.Segment(rel.Len(), threads, w)
		for i := lo; i < hi; i++ {
			ids[i] = checkup.lookup(rel.Tuples[i].Key)
		}
	})
	return ids
}

// Join runs CSH over r and s.
func Join(r, s relation.Relation, cfg Config) Result {
	cfg = cfg.Defaults()
	var res Result
	var timer exec.PhaseTimer
	rcfg := radix.Config{
		Threads: cfg.Threads, Bits1: cfg.Bits1, Bits2: cfg.Bits2,
		Scatter: cfg.Scatter, Sched: cfg.Sched, Ctx: cfg.Ctx,
	}
	res.Stats.Fanout = rcfg.Fanout()

	// Phase 1: detect skewed keys through sampling (before partitioning).
	var checkup *checkupTable
	var skewedKeys []relation.Key
	timer.Time("sample", func() {
		stride := int(1 / cfg.SampleRate)
		if stride < 1 {
			stride = 1
		}
		counter := freqtable.New(r.Len()/stride + 1)
		sampled := 0
		for i := 0; i < r.Len(); i += stride {
			counter.Add(r.Tuples[i].Key)
			sampled++
		}
		res.Stats.SampleSize = sampled
		for _, kc := range counter.AtLeast(cfg.SkewThreshold) {
			skewedKeys = append(skewedKeys, kc.Key)
		}
		checkup = newCheckupTable(skewedKeys)
	})
	res.Stats.SkewedKeys = len(skewedKeys)
	if cfg.Ctx != nil && cfg.Ctx.Err() != nil {
		res.Canceled = true
		res.Phases = timer.Phases()
		return res
	}

	bufs := make([]*outbuf.Buffer, cfg.Threads)
	for w := range bufs {
		bufs[w] = outbuf.New(cfg.OutBufCap)
		if cfg.Flush != nil {
			bufs[w].SetFlush(cfg.Flush(w))
		}
	}

	// Phase 2+3: hybrid partitioning. R's skewed tuples are collected into
	// per-key skewed partitions; S's skewed tuples are joined on the fly.
	var pr, ps *radix.Partitioned
	var skewedR [][]relation.Payload
	var skewedS []uint64
	timer.Time("partition", func() {
		if len(skewedKeys) > 0 {
			// Probe the skew checkup table once per tuple, in parallel, to
			// mark diverted tuples; the partition scans then test one
			// array slot per tuple. S's marking pass is independent of R's
			// partitioning, so the two overlap with the worker pool split
			// between them; S's partitioning itself must wait for the
			// merged skewed R partitions its Handle reads.
			rIDs := markSkewed(r, checkup, cfg.Threads)
			var sIDs []int32
			var wgS sync.WaitGroup
			rc := rcfg
			if cfg.Threads > 1 {
				tR, tS := exec.SplitThreads(cfg.Threads, r.Len(), s.Len())
				rc.Threads = tR
				wgS.Add(1)
				go func() {
					defer wgS.Done()
					sIDs = markSkewed(s, checkup, tS)
				}()
			} else {
				sIDs = markSkewed(s, checkup, 1)
			}

			// Per-worker local collection avoids contention on the skewed
			// partitions; they are merged after the R pass.
			local := make([][][]relation.Payload, cfg.Threads)
			for w := range local {
				local[w] = make([][]relation.Payload, len(skewedKeys))
			}
			pr = radix.Partition(r.Tuples, rc, &radix.Diverter{
				IDs: rIDs,
				Handle: func(w int, t relation.Tuple, id int32) {
					local[w][id] = append(local[w][id], t.Payload)
				},
			})
			skewedR = make([][]relation.Payload, len(skewedKeys))
			for id := range skewedR {
				for w := 0; w < cfg.Threads; w++ {
					skewedR[id] = append(skewedR[id], local[w][id]...)
				}
				res.Stats.SkewedTuplesR += len(skewedR[id])
			}
			wgS.Wait()

			skewedS = make([]uint64, cfg.Threads)
			ps = radix.Partition(s.Tuples, rcfg, &radix.Diverter{
				IDs: sIDs,
				Handle: func(w int, t relation.Tuple, id int32) {
					// Hybrid-hash-join step: produce the join results for a
					// skewed S tuple immediately, scanning the associated
					// skewed R partition sequentially.
					bufs[w].PushRun(t.Key, skewedR[id], t.Payload)
					skewedS[w]++
				},
			})
		} else if cfg.Threads > 1 {
			// No skewed keys detected: the R and S passes are fully
			// independent, exactly as in Cbase — overlap them.
			rc, sc := rcfg, rcfg
			rc.Threads, sc.Threads = exec.SplitThreads(cfg.Threads, r.Len(), s.Len())
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				pr = radix.Partition(r.Tuples, rc, nil)
			}()
			ps = radix.Partition(s.Tuples, sc, nil)
			wg.Wait()
		} else {
			pr = radix.Partition(r.Tuples, rcfg, nil)
			ps = radix.Partition(s.Tuples, rcfg, nil)
		}
	})
	for _, n := range skewedS {
		res.Stats.SkewedTuplesS += int(n)
	}
	res.Stats.SkewOutput = outbuf.Summarize(bufs).Count
	if cfg.Ctx != nil && cfg.Ctx.Err() != nil {
		res.Canceled = true
		res.Phases = timer.Phases()
		return res
	}

	// Phase 4: NM-join over the normal partitions only.
	timer.Time("nmjoin", func() {
		res.Stats.NM = joinphase.Run(pr, ps, joinphase.Config{
			Threads:    cfg.Threads,
			SkewFactor: cfg.SkewFactor,
			Sched:      cfg.Sched,
			Probe:      cfg.Probe,
			Layout:     cfg.Layout,
			Ctx:        cfg.Ctx,
		}, bufs)
	})
	res.Canceled = res.Stats.NM.Canceled

	for _, b := range bufs {
		b.Flush()
	}
	res.Summary = outbuf.Summarize(bufs)
	res.Phases = timer.Phases()
	return res
}
