package csh

import (
	"fmt"
	"testing"

	"skewjoin/internal/relation"
	"skewjoin/internal/zipf"
)

// Ablation benchmarks for CSH's two detection knobs (DESIGN.md §4).
//
// The sample rate trades detection cost against recall: too low and
// moderately skewed keys slip through to the NM-join; too high and the
// sample phase itself becomes a scan. The threshold trades precision
// against the skewed-partition bookkeeping: at threshold 2 (the paper's
// example) a key needs an expected full-table frequency of ~2/rate to be
// caught.

func ablationWorkload(b *testing.B, theta float64) (r, s relation.Relation) {
	b.Helper()
	const n = 1 << 16
	g, err := zipf.New(zipf.Config{Theta: theta, Universe: n, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	return g.Pair(n)
}

func BenchmarkAblationSampleRate(b *testing.B) {
	r, s := ablationWorkload(b, 0.9)
	for _, rate := range []float64{0.001, 0.005, 0.01, 0.05, 0.1} {
		b.Run(fmt.Sprintf("rate=%g", rate), func(b *testing.B) {
			var skewed int
			for i := 0; i < b.N; i++ {
				res := Join(r, s, Config{Threads: 2, SampleRate: rate})
				skewed = res.Stats.SkewedKeys
			}
			b.ReportMetric(float64(skewed), "skewed-keys")
		})
	}
}

func BenchmarkAblationSkewThreshold(b *testing.B) {
	r, s := ablationWorkload(b, 0.9)
	for _, thr := range []uint32{2, 3, 4, 6, 8} {
		b.Run(fmt.Sprintf("threshold=%d", thr), func(b *testing.B) {
			var diverted int
			for i := 0; i < b.N; i++ {
				res := Join(r, s, Config{Threads: 2, SkewThreshold: thr})
				diverted = res.Stats.SkewedTuplesR
			}
			b.ReportMetric(float64(diverted), "skewed-R-tuples")
		})
	}
}

func BenchmarkAblationRadixBits(b *testing.B) {
	r, s := ablationWorkload(b, 0.8)
	for _, bits := range [][2]uint32{{4, 0}, {6, 0}, {8, 0}, {6, 4}, {6, 5}, {8, 6}} {
		b.Run(fmt.Sprintf("bits=%d+%d", bits[0], bits[1]), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Join(r, s, Config{Threads: 2, Bits1: bits[0], Bits2: bits[1]})
			}
		})
	}
}
