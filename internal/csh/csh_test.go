package csh

import (
	"math/rand"
	"testing"

	"skewjoin/internal/oracle"
	"skewjoin/internal/relation"
	"skewjoin/internal/zipf"
)

func workload(t *testing.T, n int, theta float64, seed int64) (relation.Relation, relation.Relation) {
	t.Helper()
	g, err := zipf.New(zipf.Config{Theta: theta, Universe: n, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	r, s := g.Pair(n)
	return r, s
}

func TestJoinMatchesOracleAcrossSkew(t *testing.T) {
	for _, theta := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		r, s := workload(t, 20000, theta, 42)
		want := oracle.Expected(r, s)
		got := Join(r, s, Config{Threads: 4})
		if got.Summary != want {
			t.Errorf("theta=%.2f: got %+v, want %+v", theta, got.Summary, want)
		}
	}
}

func TestJoinEmptyInputs(t *testing.T) {
	var empty relation.Relation
	r, s := workload(t, 1000, 0.8, 7)
	if res := Join(empty, s, Config{Threads: 2}); res.Summary.Count != 0 {
		t.Errorf("empty R: got %d results", res.Summary.Count)
	}
	if res := Join(r, empty, Config{Threads: 2}); res.Summary.Count != 0 {
		t.Errorf("empty S: got %d results", res.Summary.Count)
	}
	if res := Join(empty, empty, Config{Threads: 2}); res.Summary.Count != 0 {
		t.Errorf("both empty: got %d results", res.Summary.Count)
	}
}

func TestSkewDetectionFindsTopKey(t *testing.T) {
	r, s := workload(t, 50000, 1.0, 3)
	res := Join(r, s, Config{Threads: 2})
	if res.Stats.SkewedKeys == 0 {
		t.Fatal("expected skewed keys at zipf 1.0")
	}
	st := relation.ComputeStats(r)
	// The most popular key must be among the detected skewed tuples: the
	// top key alone should account for most of the diverted R tuples.
	if res.Stats.SkewedTuplesR < st.MaxKeyFreq {
		t.Errorf("skewed R tuples %d < top key frequency %d: top key not detected",
			res.Stats.SkewedTuplesR, st.MaxKeyFreq)
	}
	if res.Stats.SkewOutput == 0 {
		t.Error("expected skew output during partition phase at zipf 1.0")
	}
}

func TestUniformDataDetectsNoSkew(t *testing.T) {
	// With theta=0 and universe == n, sampled frequencies are ~1; the
	// threshold-2 rule should mark (almost) nothing and everything flows
	// through the NM-join.
	r, s := workload(t, 50000, 0, 11)
	res := Join(r, s, Config{Threads: 2})
	if res.Stats.SkewedTuplesR > r.Len()/100 {
		t.Errorf("uniform data diverted %d R tuples (>1%%)", res.Stats.SkewedTuplesR)
	}
	want := oracle.Expected(r, s)
	if res.Summary != want {
		t.Errorf("got %+v, want %+v", res.Summary, want)
	}
}

func TestJoinIsPermutationInvariant(t *testing.T) {
	r, s := workload(t, 10000, 0.9, 5)
	base := Join(r, s, Config{Threads: 3}).Summary
	rng := rand.New(rand.NewSource(1))
	r2, s2 := r.Clone(), s.Clone()
	r2.Shuffle(rng)
	s2.Shuffle(rng)
	if got := Join(r2, s2, Config{Threads: 3}).Summary; got != base {
		t.Errorf("shuffled inputs changed result: got %+v, want %+v", got, base)
	}
}

func TestThreadCountInvariance(t *testing.T) {
	r, s := workload(t, 15000, 0.95, 9)
	want := oracle.Expected(r, s)
	for _, threads := range []int{1, 2, 5, 16} {
		got := Join(r, s, Config{Threads: threads}).Summary
		if got != want {
			t.Errorf("threads=%d: got %+v, want %+v", threads, got, want)
		}
	}
}

func TestConfigKnobs(t *testing.T) {
	r, s := workload(t, 20000, 0.9, 13)
	want := oracle.Expected(r, s)
	cases := []Config{
		{Threads: 2, SampleRate: 0.001},
		{Threads: 2, SampleRate: 0.1},
		{Threads: 2, SkewThreshold: 5},
		{Threads: 2, Bits1: 3, Bits2: 2},
		{Threads: 2, Bits1: 8, Bits2: 0},
		{Threads: 2, SkewFactor: -1}, // disables NM-join task splitting
		{Threads: 2, OutBufCap: 16},
	}
	for i, cfg := range cases {
		if got := Join(r, s, cfg).Summary; got != want {
			t.Errorf("case %d (%+v): got %+v, want %+v", i, cfg, got, want)
		}
	}
}

func TestCheckupTable(t *testing.T) {
	keys := []relation.Key{5, 99, 12345, 0, 7}
	ct := newCheckupTable(keys)
	if ct.size() != len(keys) {
		t.Fatalf("size = %d, want %d", ct.size(), len(keys))
	}
	for i, k := range keys {
		if id := ct.lookup(k); id != int32(i) {
			t.Errorf("lookup(%d) = %d, want %d", k, id, i)
		}
	}
	for _, absent := range []relation.Key{1, 2, 100, 1 << 30} {
		if ct.contains(absent) {
			t.Errorf("contains(%d) = true for absent key", absent)
		}
	}
}

func TestCheckupTableDuplicateKeysKeepFirstID(t *testing.T) {
	ct := newCheckupTable([]relation.Key{8, 8, 9})
	if id := ct.lookup(8); id != 0 {
		t.Errorf("lookup(8) = %d, want 0", id)
	}
	if id := ct.lookup(9); id != 2 {
		t.Errorf("lookup(9) = %d, want 2", id)
	}
}

func TestCheckupTableEmpty(t *testing.T) {
	ct := newCheckupTable(nil)
	if ct.contains(1) {
		t.Error("empty table contains key")
	}
	if ct.size() != 0 {
		t.Errorf("size = %d, want 0", ct.size())
	}
}
