package csh

import (
	"skewjoin/internal/hashfn"
	"skewjoin/internal/relation"
)

// checkupTable is the paper's "skew checkup table" (§IV-A, Figure 2): an
// open-addressing map from skewed key to the id of its skewed partition,
// probed once per input tuple during the partition phase. Lookups on the
// hot path are a hash, a masked index and (almost always) one comparison.
type checkupTable struct {
	mask uint32
	keys []relation.Key
	ids  []int32 // -1 = empty slot
}

// newCheckupTable builds the table from the detected skewed keys, in order:
// the id of keys[i] is i.
func newCheckupTable(keys []relation.Key) *checkupTable {
	cap := hashfn.NextPow2(len(keys) * 2)
	if cap < 8 {
		cap = 8
	}
	t := &checkupTable{
		mask: uint32(cap - 1),
		keys: make([]relation.Key, cap),
		ids:  make([]int32, cap),
	}
	for i := range t.ids {
		t.ids[i] = -1
	}
	for i, k := range keys {
		j := hashfn.Mix32(uint32(k)) & t.mask
		for t.ids[j] >= 0 {
			if t.keys[j] == k {
				break // duplicate key: keep the first id
			}
			j = (j + 1) & t.mask
		}
		if t.ids[j] < 0 {
			t.keys[j] = k
			t.ids[j] = int32(i)
		}
	}
	return t
}

// lookup returns the skewed-partition id of k, or -1 if k is not skewed.
func (t *checkupTable) lookup(k relation.Key) int32 {
	j := hashfn.Mix32(uint32(k)) & t.mask
	for t.ids[j] >= 0 {
		if t.keys[j] == k {
			return t.ids[j]
		}
		j = (j + 1) & t.mask
	}
	return -1
}

// contains reports whether k is a skewed key.
func (t *checkupTable) contains(k relation.Key) bool { return t.lookup(k) >= 0 }

// size returns the number of skewed keys in the table.
func (t *checkupTable) size() int {
	n := 0
	for _, id := range t.ids {
		if id >= 0 {
			n++
		}
	}
	return n
}
