package csh

import (
	"fmt"
	"testing"

	"skewjoin/internal/chainedtable"
	"skewjoin/internal/oracle"
)

// TestProbeLayoutKnobsOutputInvariant sweeps the NM-join A/B knobs through
// the full CSH pipeline — skew detection, hybrid partitioning and the
// on-the-fly skewed-S joins are all upstream of the knobs, so the summary
// must be identical for every combination.
func TestProbeLayoutKnobsOutputInvariant(t *testing.T) {
	for _, theta := range []float64{0, 1.0} {
		r, s := workload(t, 15000, theta, 31)
		want := oracle.Expected(r, s)
		for _, probe := range []chainedtable.ProbeMode{chainedtable.ProbeScalar, chainedtable.ProbeGrouped} {
			for _, layout := range []chainedtable.Layout{chainedtable.LayoutChained, chainedtable.LayoutCompact} {
				cfg := Config{Threads: 4, Probe: probe, Layout: layout}
				res := Join(r, s, cfg)
				name := fmt.Sprintf("theta=%g/%s/%s", theta, probe, layout)
				if res.Summary != want {
					t.Errorf("%s: got %+v, want %+v", name, res.Summary, want)
				}
			}
		}
	}
}

// TestNMTimingSplit checks BuildNs/ProbeNs through CSH's NM-join: positive
// whenever normal partitions exist, and bounded by threads × nmjoin wall.
func TestNMTimingSplit(t *testing.T) {
	const threads = 3
	r, s := workload(t, 30000, 0.5, 33)
	res := Join(r, s, Config{Threads: threads})
	st := res.Stats.NM
	if st.BuildNs <= 0 || st.ProbeNs <= 0 {
		t.Fatalf("BuildNs=%d ProbeNs=%d, want both positive", st.BuildNs, st.ProbeNs)
	}
	var nmWall int64
	for _, p := range res.Phases {
		if p.Name == "nmjoin" {
			nmWall = p.Duration.Nanoseconds()
		}
	}
	if nmWall == 0 {
		t.Fatal("no nmjoin phase recorded")
	}
	if budget := threads*nmWall + int64(1e6); st.BuildNs+st.ProbeNs > budget {
		t.Errorf("BuildNs+ProbeNs = %d exceeds %d (threads × nmjoin wall + grain)",
			st.BuildNs+st.ProbeNs, budget)
	}
}
