package oracle

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"skewjoin/internal/outbuf"
	"skewjoin/internal/relation"
	"skewjoin/internal/zipf"
)

func TestExpectedMatchesReferenceJoin(t *testing.T) {
	for _, theta := range []float64{0, 0.5, 1.0} {
		g := zipf.MustNew(zipf.Config{Theta: theta, Universe: 500, Seed: 1})
		r, s := g.Pair(2000)
		want := SummaryOf(ReferenceJoin(r, s))
		got := Expected(r, s)
		if got != want {
			t.Errorf("theta=%g: Expected %+v, reference %+v", theta, got, want)
		}
	}
}

func TestExpectedDisjointKeys(t *testing.T) {
	r := relation.FromPairs([]relation.Key{1, 2, 3}, []relation.Payload{0, 0, 0})
	s := relation.FromPairs([]relation.Key{4, 5, 6}, []relation.Payload{0, 0, 0})
	if got := Expected(r, s); got.Count != 0 || got.Checksum != 0 {
		t.Errorf("disjoint join: %+v", got)
	}
}

func TestExpectedCrossProductSingleKey(t *testing.T) {
	keys := []relation.Key{9, 9, 9}
	r := relation.FromPairs(keys, []relation.Payload{1, 2, 3})
	s := relation.FromPairs(keys[:2], []relation.Payload{10, 20})
	got := Expected(r, s)
	if got.Count != 6 {
		t.Errorf("count = %d, want 6", got.Count)
	}
	// Cross-check against brute force.
	var want outbuf.Summary
	want.Count = 6
	for _, pr := range []relation.Payload{1, 2, 3} {
		for _, ps := range []relation.Payload{10, 20} {
			want.Checksum += outbuf.ChecksumTerm(9, pr, ps)
		}
	}
	if got != want {
		t.Errorf("got %+v, want %+v", got, want)
	}
}

func TestExpectedEmpty(t *testing.T) {
	var empty relation.Relation
	r := relation.FromPairs([]relation.Key{1}, []relation.Payload{1})
	if got := Expected(empty, r); got.Count != 0 {
		t.Errorf("empty R: %+v", got)
	}
	if got := Expected(r, empty); got.Count != 0 {
		t.Errorf("empty S: %+v", got)
	}
}

func TestReferenceJoinSorted(t *testing.T) {
	g := zipf.MustNew(zipf.Config{Theta: 0.8, Universe: 50, Seed: 2})
	r, s := g.Pair(300)
	out := ReferenceJoin(r, s)
	for i := 1; i < len(out); i++ {
		a, b := out[i-1], out[i]
		if a.Key > b.Key ||
			(a.Key == b.Key && a.PayloadR > b.PayloadR) ||
			(a.Key == b.Key && a.PayloadR == b.PayloadR && a.PayloadS > b.PayloadS) {
			t.Fatalf("results not sorted at %d", i)
		}
	}
}

func TestReferenceJoinSymmetricCardinality(t *testing.T) {
	// |R ⋈ S| == |S ⋈ R| with swapped payload columns.
	g := zipf.MustNew(zipf.Config{Theta: 0.6, Universe: 100, Seed: 3})
	r, s := g.Pair(500)
	a := ReferenceJoin(r, s)
	b := ReferenceJoin(s, r)
	if len(a) != len(b) {
		t.Errorf("|R⋈S| = %d, |S⋈R| = %d", len(a), len(b))
	}
}

func TestExpectedParallelMatchesSerial(t *testing.T) {
	for _, theta := range []float64{0, 0.7, 1.0} {
		g := zipf.MustNew(zipf.Config{Theta: theta, Universe: 2000, Seed: 6})
		r, s := g.Pair(15000)
		want := Expected(r, s)
		for _, threads := range []int{1, 2, 5, 8} {
			if got := ExpectedParallel(r, s, threads); got != want {
				t.Errorf("theta=%g threads=%d: got %+v, want %+v", theta, threads, got, want)
			}
		}
	}
}

func TestExpectedParallelEmpty(t *testing.T) {
	var empty relation.Relation
	if got := ExpectedParallel(empty, empty, 4); got.Count != 0 {
		t.Errorf("empty: %+v", got)
	}
}

func TestQuickExpectedEqualsBruteForce(t *testing.T) {
	f := func(rKeys, sKeys []uint8) bool {
		r := relation.New(len(rKeys))
		for i, k := range rKeys {
			r.Tuples[i] = relation.Tuple{Key: relation.Key(k % 16), Payload: relation.Payload(i)}
		}
		s := relation.New(len(sKeys))
		for i, k := range sKeys {
			s.Tuples[i] = relation.Tuple{Key: relation.Key(k % 16), Payload: relation.Payload(i + 100)}
		}
		var brute outbuf.Summary
		for _, tr := range r.Tuples {
			for _, ts := range s.Tuples {
				if tr.Key == ts.Key {
					brute.Count++
					brute.Checksum += outbuf.ChecksumTerm(tr.Key, tr.Payload, ts.Payload)
				}
			}
		}
		return Expected(r, s) == brute
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSortResultsIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	rs := make([]outbuf.Result, 100)
	for i := range rs {
		rs[i] = outbuf.Result{
			Key:      relation.Key(rng.Intn(10)),
			PayloadR: relation.Payload(rng.Intn(10)),
			PayloadS: relation.Payload(rng.Intn(10)),
		}
	}
	SortResults(rs)
	once := make([]outbuf.Result, len(rs))
	copy(once, rs)
	SortResults(rs)
	if !reflect.DeepEqual(once, rs) {
		t.Error("SortResults is not idempotent")
	}
}
