// Package oracle computes the ground-truth join result summary against
// which every algorithm in this repository is verified.
//
// Materialising the full join output is impossible under high skew (the
// output is Θ(N²·Σp²) tuples), so the oracle exploits the linearity of the
// outbuf checksum: grouping by key k with cntR(k)/cntS(k) occurrences and
// payload sums ΣpR(k)/ΣpS(k),
//
//	count    = Σ_k cntR(k)·cntS(k)
//	checksum = Σ_k [ A·k·cntR(k)·cntS(k)
//	               + B·ΣpR(k)·cntS(k)
//	               + C·ΣpS(k)·cntR(k) ]
//
// both computable in O(|R| + |S|). For small inputs ReferenceJoin also
// materialises the output with a nested loop for exact, order-normalised
// comparison in tests.
package oracle

import (
	"sort"

	"skewjoin/internal/exec"
	"skewjoin/internal/hashfn"
	"skewjoin/internal/outbuf"
	"skewjoin/internal/relation"
)

type keyAgg struct {
	cnt  uint64
	psum uint64
}

// Expected returns the exact output count and checksum of the equi-join of
// r and s under the outbuf checksum definition.
func Expected(r, s relation.Relation) outbuf.Summary {
	ra := aggregate(r)
	sa := aggregate(s)
	a, bcoef, c := outbuf.ChecksumCoefficients()
	var sum outbuf.Summary
	for k, rv := range ra {
		sv, ok := sa[k]
		if !ok {
			continue
		}
		pairs := rv.cnt * sv.cnt
		sum.Count += pairs
		sum.Checksum += a*uint64(k)*pairs + bcoef*rv.psum*sv.cnt + c*sv.psum*rv.cnt
	}
	return sum
}

func aggregate(r relation.Relation) map[relation.Key]keyAgg {
	m := make(map[relation.Key]keyAgg, r.Len())
	for _, t := range r.Tuples {
		agg := m[t.Key]
		agg.cnt++
		agg.psum += uint64(t.Payload)
		m[t.Key] = agg
	}
	return m
}

// ExpectedParallel is Expected with the per-key aggregation sharded over
// `threads` workers by key hash: every worker scans both relations but
// aggregates (and joins) only its own shard of the key space, so the
// expensive map operations parallelise without any merging. Threads <= 1
// falls back to Expected.
//
//skewlint:ignore ctx-propagation -- verification-only path; oracle runs must never be cut short or they would report a wrong expected summary
func ExpectedParallel(r, s relation.Relation, threads int) outbuf.Summary {
	if threads <= 1 {
		return Expected(r, s)
	}
	a, bcoef, c := outbuf.ChecksumCoefficients()
	partial := make([]outbuf.Summary, threads)
	exec.Parallel(threads, func(w int) {
		shard := func(k relation.Key) bool {
			return int(hashfn.Mix32(uint32(k))>>16)%threads == w
		}
		ra := make(map[relation.Key]keyAgg, r.Len()/threads+1)
		for _, t := range r.Tuples {
			if !shard(t.Key) {
				continue
			}
			agg := ra[t.Key]
			agg.cnt++
			agg.psum += uint64(t.Payload)
			ra[t.Key] = agg
		}
		sa := make(map[relation.Key]keyAgg, s.Len()/threads+1)
		for _, t := range s.Tuples {
			if !shard(t.Key) {
				continue
			}
			agg := sa[t.Key]
			agg.cnt++
			agg.psum += uint64(t.Payload)
			sa[t.Key] = agg
		}
		var sum outbuf.Summary
		for k, rv := range ra {
			sv, ok := sa[k]
			if !ok {
				continue
			}
			pairs := rv.cnt * sv.cnt
			sum.Count += pairs
			sum.Checksum += a*uint64(k)*pairs + bcoef*rv.psum*sv.cnt + c*sv.psum*rv.cnt
		}
		partial[w] = sum
	})
	var total outbuf.Summary
	for _, p := range partial {
		total.Count += p.Count
		total.Checksum += p.Checksum
	}
	return total
}

// ReferenceJoin materialises the full join output with a hash-partitioned
// nested evaluation. Only for small test inputs: the result is O(output).
// Results are returned in a canonical sorted order so two materialised
// outputs can be compared with reflect.DeepEqual regardless of the order an
// algorithm emitted them in.
func ReferenceJoin(r, s relation.Relation) []outbuf.Result {
	byKey := make(map[relation.Key][]relation.Payload, r.Len())
	for _, t := range r.Tuples {
		byKey[t.Key] = append(byKey[t.Key], t.Payload)
	}
	var out []outbuf.Result
	for _, ts := range s.Tuples {
		for _, pr := range byKey[ts.Key] {
			out = append(out, outbuf.Result{Key: ts.Key, PayloadR: pr, PayloadS: ts.Payload})
		}
	}
	SortResults(out)
	return out
}

// SortResults orders results canonically by (key, payloadR, payloadS).
func SortResults(rs []outbuf.Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Key != rs[j].Key {
			return rs[i].Key < rs[j].Key
		}
		if rs[i].PayloadR != rs[j].PayloadR {
			return rs[i].PayloadR < rs[j].PayloadR
		}
		return rs[i].PayloadS < rs[j].PayloadS
	})
}

// SummaryOf computes the outbuf summary of a materialised result set, for
// cross-checking ReferenceJoin against Expected in the oracle's own tests.
func SummaryOf(rs []outbuf.Result) outbuf.Summary {
	var s outbuf.Summary
	s.Count = uint64(len(rs))
	for _, t := range rs {
		s.Checksum += outbuf.ChecksumTerm(t.Key, t.PayloadR, t.PayloadS)
	}
	return s
}
