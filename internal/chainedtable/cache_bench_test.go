package chainedtable

import (
	"fmt"
	"testing"

	"skewjoin/internal/relation"
)

// BenchmarkChainWalkVsSequentialScan contrasts the two per-output code
// paths the paper compares: Cbase emits each result after a hash-chain
// step plus key comparison, while CSH's skew path emits results from a
// sequential scan of the skewed R array with no comparison.
//
// The gap between the two is the per-output speedup ceiling of CSH over
// Cbase, and it widens with the working-set size: small chains are
// cache-resident and chain-walking is only ~2-3x dearer than scanning, but
// once the chain's next[]/tuple arrays spill out of cache each step is a
// dependent memory miss. The paper's 8x (32M tuples, 1.79M-tuple chains)
// lives in that out-of-cache regime; this benchmark shows where the
// current host sits at each size (DESIGN.md §1, EXPERIMENTS.md
// §Deviations).
func BenchmarkChainWalkVsSequentialScan(b *testing.B) {
	for _, size := range []int{1 << 10, 1 << 14, 1 << 18, 1 << 21} {
		tuples := make([]relation.Tuple, size)
		for i := range tuples {
			tuples[i] = relation.Tuple{Key: 42, Payload: relation.Payload(i)}
		}
		payloads := make([]relation.Payload, size)
		for i := range payloads {
			payloads[i] = relation.Payload(i)
		}

		b.Run(fmt.Sprintf("chainwalk/size=%d", size), func(b *testing.B) {
			table := Build(tuples)
			b.SetBytes(int64(size) * relation.TupleSize)
			var sink relation.Payload
			for i := 0; i < b.N; i++ {
				table.Probe(42, func(p relation.Payload) { sink += p })
			}
			_ = sink
		})
		b.Run(fmt.Sprintf("seqscan/size=%d", size), func(b *testing.B) {
			b.SetBytes(int64(size) * 4)
			var sink relation.Payload
			for i := 0; i < b.N; i++ {
				for _, p := range payloads {
					sink += p
				}
			}
			_ = sink
		})
	}
}

// BenchmarkBuild measures table construction across partition sizes — the
// per-task cost the join phase pays before probing.
func BenchmarkBuild(b *testing.B) {
	for _, size := range []int{1 << 10, 1 << 14, 1 << 18} {
		tuples := make([]relation.Tuple, size)
		for i := range tuples {
			tuples[i] = relation.Tuple{Key: relation.Key(i * 2654435761), Payload: relation.Payload(i)}
		}
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			b.SetBytes(int64(size) * relation.TupleSize)
			for i := 0; i < b.N; i++ {
				Build(tuples)
			}
		})
	}
}
