package chainedtable

import (
	"fmt"
	"testing"

	"skewjoin/internal/relation"
)

// BenchmarkChainWalkVsSequentialScan contrasts the two per-output code
// paths the paper compares: Cbase emits each result after a hash-chain
// step plus key comparison, while CSH's skew path emits results from a
// sequential scan of the skewed R array with no comparison.
//
// The gap between the two is the per-output speedup ceiling of CSH over
// Cbase, and it widens with the working-set size: small chains are
// cache-resident and chain-walking is only ~2-3x dearer than scanning, but
// once the chain's next[]/tuple arrays spill out of cache each step is a
// dependent memory miss. The paper's 8x (32M tuples, 1.79M-tuple chains)
// lives in that out-of-cache regime; this benchmark shows where the
// current host sits at each size (DESIGN.md §1, EXPERIMENTS.md
// §Deviations).
func BenchmarkChainWalkVsSequentialScan(b *testing.B) {
	for _, size := range []int{1 << 10, 1 << 14, 1 << 18, 1 << 21} {
		tuples := make([]relation.Tuple, size)
		for i := range tuples {
			tuples[i] = relation.Tuple{Key: 42, Payload: relation.Payload(i)}
		}
		payloads := make([]relation.Payload, size)
		for i := range payloads {
			payloads[i] = relation.Payload(i)
		}

		b.Run(fmt.Sprintf("chainwalk/size=%d", size), func(b *testing.B) {
			table := Build(tuples)
			b.SetBytes(int64(size) * relation.TupleSize)
			var sink relation.Payload
			for i := 0; i < b.N; i++ {
				table.Probe(42, func(p relation.Payload) { sink += p })
			}
			_ = sink
		})
		b.Run(fmt.Sprintf("seqscan/size=%d", size), func(b *testing.B) {
			b.SetBytes(int64(size) * 4)
			var sink relation.Payload
			for i := 0; i < b.N; i++ {
				for _, p := range payloads {
					sink += p
				}
			}
			_ = sink
		})
	}
}

// BenchmarkBuild measures table construction across partition sizes — the
// per-task cost the join phase pays before probing.
func BenchmarkBuild(b *testing.B) {
	for _, size := range []int{1 << 10, 1 << 14, 1 << 18} {
		tuples := make([]relation.Tuple, size)
		for i := range tuples {
			tuples[i] = relation.Tuple{Key: relation.Key(i * 2654435761), Payload: relation.Payload(i)}
		}
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			b.SetBytes(int64(size) * relation.TupleSize)
			for i := 0; i < b.N; i++ {
				Build(tuples)
			}
		})
	}
}

// BenchmarkProbe guards the probe loop itself against regressions: a
// mixed-key workload (every tuple distinct key, ~1 node per visit) and a
// fully skewed one (every probe walks the whole chain). The joins spend
// most of their join phase inside Table.Probe, so any extra work per chain
// node shows up here immediately.
func BenchmarkProbe(b *testing.B) {
	const size = 1 << 14
	b.Run("distinct-keys", func(b *testing.B) {
		tuples := make([]relation.Tuple, size)
		for i := range tuples {
			tuples[i] = relation.Tuple{Key: relation.Key(i * 2654435761), Payload: relation.Payload(i)}
		}
		table := Build(tuples)
		b.SetBytes(int64(size) * relation.TupleSize)
		var sink relation.Payload
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, tp := range tuples {
				table.Probe(tp.Key, func(p relation.Payload) { sink += p })
			}
		}
		_ = sink
	})
	b.Run("one-hot-key", func(b *testing.B) {
		tuples := make([]relation.Tuple, size)
		for i := range tuples {
			tuples[i] = relation.Tuple{Key: 42, Payload: relation.Payload(i)}
		}
		table := Build(tuples)
		b.SetBytes(int64(size) * relation.TupleSize)
		var sink relation.Payload
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			table.Probe(42, func(p relation.Payload) { sink += p })
		}
		_ = sink
	})
}

// BenchmarkMaxChain pins the max-chain scan, which runs once per join task
// right after Build: it must stay a pure walk with no allocation.
func BenchmarkMaxChain(b *testing.B) {
	for _, skewed := range []bool{false, true} {
		name := "distinct-keys"
		if skewed {
			name = "one-hot-key"
		}
		b.Run(name, func(b *testing.B) {
			const size = 1 << 14
			tuples := make([]relation.Tuple, size)
			for i := range tuples {
				k := relation.Key(i * 2654435761)
				if skewed {
					k = 42
				}
				tuples[i] = relation.Tuple{Key: k, Payload: relation.Payload(i)}
			}
			table := Build(tuples)
			b.ReportAllocs()
			b.ResetTimer()
			sink := 0
			for i := 0; i < b.N; i++ {
				sink += table.MaxChain()
			}
			_ = sink
		})
	}
}
