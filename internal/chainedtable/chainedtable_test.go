package chainedtable

import (
	"math/rand"
	"testing"
	"testing/quick"

	"skewjoin/internal/exec"
	"skewjoin/internal/relation"
)

func randomTuples(n, keyRange int, seed int64) []relation.Tuple {
	rng := rand.New(rand.NewSource(seed))
	ts := make([]relation.Tuple, n)
	for i := range ts {
		ts[i] = relation.Tuple{Key: relation.Key(rng.Intn(keyRange)), Payload: relation.Payload(i)}
	}
	return ts
}

// probeAll collects every matching payload for k.
func probeAll(probe func(relation.Key, func(relation.Payload)) int, k relation.Key) []relation.Payload {
	var out []relation.Payload
	probe(k, func(p relation.Payload) { out = append(out, p) })
	return out
}

func TestProbeFindsAllMatches(t *testing.T) {
	tuples := randomTuples(5000, 200, 1)
	table := Build(tuples)
	want := make(map[relation.Key]map[relation.Payload]bool)
	for _, tp := range tuples {
		if want[tp.Key] == nil {
			want[tp.Key] = make(map[relation.Payload]bool)
		}
		want[tp.Key][tp.Payload] = true
	}
	for k, ps := range want {
		got := probeAll(table.Probe, k)
		if len(got) != len(ps) {
			t.Fatalf("key %d: %d matches, want %d", k, len(got), len(ps))
		}
		for _, p := range got {
			if !ps[p] {
				t.Fatalf("key %d: unexpected payload %d", k, p)
			}
		}
	}
}

func TestProbeAbsentKey(t *testing.T) {
	table := Build(randomTuples(100, 50, 2))
	if got := probeAll(table.Probe, relation.Key(1<<30)); len(got) != 0 {
		t.Errorf("absent key matched %d tuples", len(got))
	}
}

func TestProbeEmptyTable(t *testing.T) {
	table := Build(nil)
	if v := table.Probe(1, func(relation.Payload) { t.Error("match in empty table") }); v != 0 {
		t.Errorf("visited %d nodes in empty table", v)
	}
}

func TestVisitsAtLeastMatches(t *testing.T) {
	tuples := randomTuples(2000, 20, 3)
	table := Build(tuples)
	for k := relation.Key(0); k < 20; k++ {
		matches := 0
		visits := table.Probe(k, func(relation.Payload) { matches++ })
		if visits < matches {
			t.Fatalf("key %d: %d visits < %d matches", k, visits, matches)
		}
		if cl := table.ChainLength(k); cl != visits {
			t.Fatalf("key %d: ChainLength %d != probe visits %d", k, cl, visits)
		}
	}
}

func TestSkewProducesLongChain(t *testing.T) {
	// All tuples share one key: the chain must span the whole table — the
	// pathology of §III.
	tuples := make([]relation.Tuple, 1000)
	for i := range tuples {
		tuples[i] = relation.Tuple{Key: 77, Payload: relation.Payload(i)}
	}
	table := Build(tuples)
	if mc := table.MaxChain(); mc != 1000 {
		t.Errorf("MaxChain = %d, want 1000", mc)
	}
	if got := probeAll(table.Probe, 77); len(got) != 1000 {
		t.Errorf("probe found %d of 1000", len(got))
	}
}

func TestUniformKeysShortChains(t *testing.T) {
	// Distinct keys with one bucket per tuple: chains stay short.
	tuples := make([]relation.Tuple, 4096)
	for i := range tuples {
		tuples[i] = relation.Tuple{Key: relation.Key(i), Payload: relation.Payload(i)}
	}
	table := Build(tuples)
	if mc := table.MaxChain(); mc > 12 {
		t.Errorf("MaxChain = %d for distinct keys", mc)
	}
}

func TestBucketsPowerOfTwo(t *testing.T) {
	// The bucket count is the next power of two >= n, clamped below at 1:
	// tiny partitions (the bulk of high-fanout task counts) must not pay
	// for buckets they cannot fill.
	wantBuckets := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 100: 128, 4096: 4096}
	for _, n := range []int{0, 1, 2, 3, 100, 4096} {
		table := Build(randomTuples(n, 10, 4))
		b := table.Buckets()
		if b&(b-1) != 0 || b < 1 {
			t.Errorf("n=%d: buckets = %d", n, b)
		}
		if b != wantBuckets[n] {
			t.Errorf("n=%d: buckets = %d, want %d", n, b, wantBuckets[n])
		}
		if table.Len() != n {
			t.Errorf("n=%d: Len = %d", n, table.Len())
		}
		if cb := BuildCompact(randomTuples(n, 10, 4)); cb.Buckets() != b {
			t.Errorf("n=%d: compact buckets = %d, chained %d", n, cb.Buckets(), b)
		}
	}
}

func TestSingleBucketTableProbes(t *testing.T) {
	// A 1-tuple partition gets a single bucket (shift 32 → every key maps
	// to bucket 0); probing must still find the tuple and reject others.
	for _, build := range []func([]relation.Tuple) HashTable{
		func(ts []relation.Tuple) HashTable { return Build(ts) },
		func(ts []relation.Tuple) HashTable { return BuildCompact(ts) },
	} {
		table := build([]relation.Tuple{{Key: 42, Payload: 7}})
		if table.Buckets() != 1 {
			t.Fatalf("buckets = %d, want 1", table.Buckets())
		}
		if got := probeAll(table.Probe, 42); len(got) != 1 || got[0] != 7 {
			t.Errorf("probe(42) = %v", got)
		}
		if got := probeAll(table.Probe, 43); len(got) != 0 {
			t.Errorf("probe(43) matched %d tuples", len(got))
		}
	}
}

func TestConcurrentMatchesSequential(t *testing.T) {
	tuples := randomTuples(8000, 300, 5)
	seq := Build(tuples)
	con := NewConcurrent(tuples)
	exec.Parallel(8, func(w int) {
		lo, hi := exec.Segment(len(tuples), 8, w)
		for i := lo; i < hi; i++ {
			con.Insert(i)
		}
	})
	for k := relation.Key(0); k < 300; k++ {
		a := probeAll(seq.Probe, k)
		b := probeAll(con.Probe, k)
		if len(a) != len(b) {
			t.Fatalf("key %d: sequential %d matches, concurrent %d", k, len(a), len(b))
		}
		seen := make(map[relation.Payload]bool, len(a))
		for _, p := range a {
			seen[p] = true
		}
		for _, p := range b {
			if !seen[p] {
				t.Fatalf("key %d: concurrent-only payload %d", k, p)
			}
		}
	}
}

func TestConcurrentSingleThread(t *testing.T) {
	tuples := randomTuples(100, 10, 6)
	con := NewConcurrent(tuples)
	for i := range tuples {
		con.Insert(i)
	}
	total := 0
	for k := relation.Key(0); k < 10; k++ {
		total += len(probeAll(con.Probe, k))
	}
	if total != len(tuples) {
		t.Errorf("found %d tuples, want %d", total, len(tuples))
	}
}

func TestQuickTableEqualsMapSemantics(t *testing.T) {
	f := func(keys []uint8, probeKeys []uint8) bool {
		tuples := make([]relation.Tuple, len(keys))
		want := make(map[relation.Key]int)
		for i, k := range keys {
			tuples[i] = relation.Tuple{Key: relation.Key(k), Payload: relation.Payload(i)}
			want[relation.Key(k)]++
		}
		table := Build(tuples)
		for _, pk := range probeKeys {
			k := relation.Key(pk)
			n := 0
			table.Probe(k, func(relation.Payload) { n++ })
			if n != want[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
