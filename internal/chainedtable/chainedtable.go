// Package chainedtable implements the bucket-chained hash tables used by
// the baseline joins.
//
// Both Cbase and Gbase use chained hashing (§III). All tuples with the same
// key hash into the same bucket, so a popular key produces one long chain;
// probing it costs one dependent memory access per chain node plus a key
// comparison per node. That behaviour — the paper's central criticism of
// the baselines under skew — is reproduced faithfully here: chains are
// index-linked, probes walk them node by node, and every node visit does a
// key comparison.
//
// Two variants are provided:
//
//   - Table: single-owner table built over one partition (Cbase join tasks,
//     GSH/Gbase NM-join blocks build one per task), and
//   - Concurrent: a latch-free shared table built by many threads with CAS
//     head insertion (cbase-npj builds one over the whole of R).
//
// Beyond the faithful baseline, the package carries the join-phase hot-path
// machinery the CPU joins A/B-test against it:
//
//   - grouped probing (ProbeGroup): S tuples are probed in fixed-size
//     groups whose chain walks advance in lock-step, so the dependent loads
//     of different probes overlap instead of serialising (the AMAC /
//     software-pipelining idea);
//   - a compact bucket-array layout (CompactTable, see compact.go) that
//     stores each bucket contiguously for sequential probe scans; and
//   - an Arena (see arena.go) that recycles build scratch across the
//     thousands of per-task builds of a join phase.
package chainedtable

import (
	"sync/atomic"

	"skewjoin/internal/hashfn"
	"skewjoin/internal/relation"
	"skewjoin/internal/sanitize"
)

// Table is a bucket-chained hash table over a tuple slice. Chains are
// index-linked: heads[b] is the index of the first tuple in bucket b and
// next[i] links tuple i to the next tuple in its bucket (-1 terminates).
type Table struct {
	// shift selects the HIGH bits of the hashed key as the bucket index.
	// Radix partitioning consumes the low hash bits, so every tuple within
	// one partition shares them; bucketing on the high bits keeps chains
	// short for distinct keys inside a partition.
	shift  uint32
	heads  []int32
	next   []int32
	tuples []relation.Tuple
}

// Build constructs a table over tuples with roughly one bucket per tuple
// (rounded up to a power of two). The tuple slice is retained, not copied.
//
//skewlint:hotpath
func Build(tuples []relation.Tuple) *Table {
	t := &Table{}
	t.rebuild(tuples, nil, nil)
	return t
}

// bucketCount returns the bucket count for n tuples: the next power of two,
// clamped below at one. The seed forced a 2-bucket minimum, which made the
// head-clear loop and bucket hashing pure overhead on the 1-tuple
// partitions that dominate high-fanout task counts; a single bucket (shift
// 32, so every key maps to bucket 0) serves those exactly as well.
func bucketCount(n int) int {
	nb := hashfn.NextPow2(n)
	if nb < 1 {
		nb = 1
	}
	return nb
}

// rebuild (re)initialises t over tuples, reusing the supplied heads/next
// scratch when it has capacity and allocating otherwise. Build passes nil
// scratch; Arena passes the previous build's slices so the steady-state
// join phase allocates nothing.
//
//skewlint:hotpath
func (t *Table) rebuild(tuples []relation.Tuple, heads, next []int32) {
	nb := bucketCount(len(tuples))
	if cap(heads) >= nb {
		heads = heads[:nb]
	} else {
		heads = make([]int32, nb)
	}
	if cap(next) >= len(tuples) {
		next = next[:len(tuples)]
	} else {
		next = make([]int32, len(tuples))
	}
	t.shift = 32 - hashfn.Log2(nb)
	t.heads = heads
	t.next = next
	t.tuples = tuples
	for b := range heads {
		heads[b] = -1
	}
	for i, tp := range tuples {
		b := hashfn.Mix32(uint32(tp.Key)) >> t.shift
		next[i] = heads[b]
		heads[b] = int32(i)
	}
}

// Probe walks the chain of k's bucket, invoking fn for every tuple whose
// key equals k, and returns the number of chain nodes visited (the probe
// cost, used by the GPU divergence model).
//
//skewlint:hotpath
func (t *Table) Probe(k relation.Key, fn func(pr relation.Payload)) int {
	visited := 0
	for i := t.heads[hashfn.Mix32(uint32(k))>>t.shift]; i >= 0; i = t.next[i] {
		visited++
		if sanitize.Enabled && visited > len(t.tuples) {
			sanitize.Failf("chainedtable: cycle in bucket chain for key %d (visited %d nodes, table holds %d tuples)",
				k, visited, len(t.tuples))
		}
		if t.tuples[i].Key == k {
			fn(t.tuples[i].Payload)
		}
	}
	return visited
}

// ProbeGroup probes every S tuple in ts, invoking fn(i, payload) for each
// match of ts[i], and returns the total chain nodes visited. Tuples are
// processed in groups of GroupSize: each group's bucket heads are loaded
// up front, then all in-flight chain walks advance one node per round in
// lock-step, with finished lanes compacted out. The dependent loads of up
// to GroupSize chains are therefore in flight together instead of one
// probe serialising behind the previous one — the gain grows with chain
// length, exactly the regime skew produces.
//
// Matches are emitted in round order (interleaved across the group), not
// in S order; the match multiset per S tuple is identical to scalar
// probing, which is what the order-independent output summaries consume.
//
//skewlint:hotpath
func (t *Table) ProbeGroup(ts []relation.Tuple, fn func(i int, pr relation.Payload)) int {
	visited := 0
	for lo := 0; lo < len(ts); lo += GroupSize {
		hi := lo + GroupSize
		if hi > len(ts) {
			hi = len(ts)
		}
		visited += t.probeGroup(ts[lo:hi], lo, fn)
	}
	return visited
}

// probeGroup advances one group (len(ts) <= GroupSize) in lock-step; base
// is the group's offset within the caller's S slice, added to the lane
// index fn receives.
//
//skewlint:hotpath
func (t *Table) probeGroup(ts []relation.Tuple, base int, fn func(i int, pr relation.Payload)) int {
	var cur, slot [GroupSize]int32
	m := 0
	for j := range ts {
		if h := t.heads[hashfn.Mix32(uint32(ts[j].Key))>>t.shift]; h >= 0 {
			cur[m], slot[m] = h, int32(j)
			m++
		}
	}
	visited := 0
	rounds := 0
	for m > 0 {
		rounds++
		if sanitize.Enabled && rounds > len(t.tuples) {
			sanitize.Failf("chainedtable: cycle in bucket chain during grouped probe (round %d, table holds %d tuples)",
				rounds, len(t.tuples))
		}
		k := 0
		for l := 0; l < m; l++ {
			i, j := cur[l], slot[l]
			visited++
			if t.tuples[i].Key == ts[j].Key {
				fn(base+int(j), t.tuples[i].Payload)
			}
			if nx := t.next[i]; nx >= 0 {
				cur[k], slot[k] = nx, j
				k++
			}
		}
		m = k
	}
	return visited
}

// ChainLength returns the length of the chain that key k hashes into
// (matching and colliding tuples alike). The GPU simulator uses it to
// compute warp divergence without re-walking chains.
//
//skewlint:hotpath
func (t *Table) ChainLength(k relation.Key) int {
	n := 0
	for i := t.heads[hashfn.Mix32(uint32(k))>>t.shift]; i >= 0; i = t.next[i] {
		n++
		if sanitize.Enabled && n > len(t.tuples) {
			sanitize.Failf("chainedtable: cycle in bucket chain for key %d (visited %d nodes, table holds %d tuples)",
				k, n, len(t.tuples))
		}
	}
	return n
}

// MaxChain returns the longest chain in the table, a direct measure of how
// badly skew degrades chained hashing. Chains are walked with a running
// maximum — no per-bucket allocation; the join phase calls this once per
// build, so it sits on the task hot path.
//
//skewlint:hotpath
func (t *Table) MaxChain() int {
	max := 0
	for b := range t.heads {
		n := 0
		for i := t.heads[b]; i >= 0; i = t.next[i] {
			n++
			if sanitize.Enabled && n > len(t.tuples) {
				sanitize.Failf("chainedtable: cycle in bucket %d's chain (visited %d nodes, table holds %d tuples)",
					b, n, len(t.tuples))
			}
		}
		if n > max {
			max = n
		}
	}
	return max
}

// Len returns the number of tuples in the table.
func (t *Table) Len() int { return len(t.tuples) }

// Buckets returns the number of buckets.
func (t *Table) Buckets() int { return len(t.heads) }

// Concurrent is a shared chained hash table built by multiple threads.
// Insertion pushes onto the bucket head with a CAS loop, the standard
// latch-free technique no-partition joins use.
type Concurrent struct {
	shift  uint32
	heads  []atomic.Int32
	next   []int32
	tuples []relation.Tuple
}

// NewConcurrent allocates a concurrent table sized for the given tuple
// slice. Tuples are inserted afterwards via Insert, typically from many
// threads over disjoint index ranges.
func NewConcurrent(tuples []relation.Tuple) *Concurrent {
	nb := bucketCount(len(tuples))
	c := &Concurrent{
		shift:  32 - hashfn.Log2(nb),
		heads:  make([]atomic.Int32, nb),
		next:   make([]int32, len(tuples)),
		tuples: tuples,
	}
	for b := range c.heads {
		c.heads[b].Store(-1)
	}
	return c
}

// Insert links tuple index i into its bucket. Each index must be inserted
// exactly once; different threads must insert disjoint indexes.
//
//skewlint:hotpath
func (c *Concurrent) Insert(i int) {
	b := hashfn.Mix32(uint32(c.tuples[i].Key)) >> c.shift
	for {
		old := c.heads[b].Load()
		c.next[i] = old
		if c.heads[b].CompareAndSwap(old, int32(i)) {
			return
		}
	}
}

// Probe walks the chain of k's bucket, invoking fn for matches, and returns
// the number of nodes visited. Probe must not run concurrently with Insert.
//
//skewlint:hotpath
func (c *Concurrent) Probe(k relation.Key, fn func(pr relation.Payload)) int {
	visited := 0
	for i := c.heads[hashfn.Mix32(uint32(k))>>c.shift].Load(); i >= 0; i = c.next[i] {
		visited++
		if sanitize.Enabled && visited > len(c.tuples) {
			sanitize.Failf("chainedtable: cycle in bucket chain for key %d (visited %d nodes, table holds %d tuples)",
				k, visited, len(c.tuples))
		}
		if c.tuples[i].Key == k {
			fn(c.tuples[i].Payload)
		}
	}
	return visited
}

// ProbeGroup is Table.ProbeGroup for the shared table: S tuples are probed
// in lock-stepped groups of GroupSize. It must not run concurrently with
// Insert; the head loads still go through the atomics so the race detector
// sees the build/probe ordering.
//
//skewlint:hotpath
func (c *Concurrent) ProbeGroup(ts []relation.Tuple, fn func(i int, pr relation.Payload)) int {
	visited := 0
	for lo := 0; lo < len(ts); lo += GroupSize {
		hi := lo + GroupSize
		if hi > len(ts) {
			hi = len(ts)
		}
		visited += c.probeGroup(ts[lo:hi], lo, fn)
	}
	return visited
}

//skewlint:hotpath
func (c *Concurrent) probeGroup(ts []relation.Tuple, base int, fn func(i int, pr relation.Payload)) int {
	var cur, slot [GroupSize]int32
	m := 0
	for j := range ts {
		if h := c.heads[hashfn.Mix32(uint32(ts[j].Key))>>c.shift].Load(); h >= 0 {
			cur[m], slot[m] = h, int32(j)
			m++
		}
	}
	visited := 0
	rounds := 0
	for m > 0 {
		rounds++
		if sanitize.Enabled && rounds > len(c.tuples) {
			sanitize.Failf("chainedtable: cycle in bucket chain during grouped probe (round %d, table holds %d tuples)",
				rounds, len(c.tuples))
		}
		k := 0
		for l := 0; l < m; l++ {
			i, j := cur[l], slot[l]
			visited++
			if c.tuples[i].Key == ts[j].Key {
				fn(base+int(j), c.tuples[i].Payload)
			}
			if nx := c.next[i]; nx >= 0 {
				cur[k], slot[k] = nx, j
				k++
			}
		}
		m = k
	}
	return visited
}
