package chainedtable

import (
	"math/rand"
	"testing"

	"skewjoin/internal/relation"
)

// FuzzGroupProbe cross-checks grouped probing against the scalar walk on
// arbitrary key distributions. The fuzzer chooses the build size, probe
// size, key range (small ranges force long chains, the regime grouped
// probing exists for), and a seed; both layouts are built over the same R
// and probed with the same S. Properties on every input:
//
//   - grouped and scalar probing yield the identical match multiset
//     (same (S index, R payload) pairs);
//   - visit counts agree across modes AND layouts — a compact probe
//     inspects exactly the bucket entries a chained walk would visit;
//   - no panic and no lane mix-up at group boundaries (sizes straddling
//     multiples of GroupSize are seeded explicitly).
func FuzzGroupProbe(f *testing.F) {
	f.Add(uint16(0), uint16(0), uint16(1), int64(1))
	f.Add(uint16(1), uint16(1), uint16(1), int64(2))
	f.Add(uint16(100), uint16(100), uint16(5), int64(3))     // long chains
	f.Add(uint16(1000), uint16(500), uint16(1000), int64(4)) // mostly distinct
	f.Add(uint16(GroupSize), uint16(GroupSize), uint16(8), int64(5))
	f.Add(uint16(GroupSize+1), uint16(GroupSize*2+1), uint16(8), int64(6))
	f.Add(uint16(1024), uint16(1024), uint16(1), int64(7)) // one-hot

	f.Fuzz(func(t *testing.T, rn, sn, keyRange uint16, seed int64) {
		// Cap the cross product: a one-hot 1024x1024 input already yields
		// ~1M matches per mode x layout check, and the fuzz engine kills
		// workers that dwell seconds on one input.
		if rn > 1024 {
			rn %= 1025
		}
		if sn > 1024 {
			sn %= 1025
		}
		kr := int(keyRange)
		if kr < 1 {
			kr = 1
		}
		rng := rand.New(rand.NewSource(seed))
		mk := func(n int) []relation.Tuple {
			ts := make([]relation.Tuple, n)
			for i := range ts {
				ts[i] = relation.Tuple{Key: relation.Key(rng.Intn(kr)), Payload: relation.Payload(i)}
			}
			return ts
		}
		r, s := mk(int(rn)), mk(int(sn))

		chained := Build(r)
		want, wantVisits := scalarMatches(chained, s)
		sortMatches(want)

		check := func(name string, got []match, visits int) {
			t.Helper()
			if visits != wantVisits {
				t.Fatalf("%s: visited %d, scalar/chained visited %d", name, visits, wantVisits)
			}
			if len(got) != len(want) {
				t.Fatalf("%s: %d matches, want %d", name, len(got), len(want))
			}
			sortMatches(got)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s: match %d = %+v, want %+v", name, i, got[i], want[i])
				}
			}
		}

		gm, gv := groupMatches(chained, s)
		check("chained/grouped", gm, gv)
		compact := BuildCompact(r)
		cm, cv := scalarMatches(compact, s)
		check("compact/scalar", cm, cv)
		cgm, cgv := groupMatches(compact, s)
		check("compact/grouped", cgm, cgv)
	})
}
