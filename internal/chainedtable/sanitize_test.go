//go:build sanitize

package chainedtable

import (
	"fmt"
	"strings"
	"testing"

	"skewjoin/internal/relation"
)

// mustPanicWithCycle runs fn and asserts the sanitizer aborted it with a
// chain-cycle diagnostic.
func mustPanicWithCycle(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected the sanitize cycle detector to panic; it did not fire")
		}
		msg := fmt.Sprint(r)
		if !strings.Contains(msg, "sanitize:") || !strings.Contains(msg, "cycle") {
			t.Fatalf("panic is not the cycle diagnostic: %q", msg)
		}
	}()
	fn()
}

// corruptTable builds a small table and rewires one chain's head node to
// point at itself — the classic next-link corruption that would hang an
// unsanitized probe forever.
func corruptTable(t *testing.T) (*Table, relation.Key) {
	t.Helper()
	tuples := make([]relation.Tuple, 8)
	for i := range tuples {
		tuples[i] = relation.Tuple{Key: relation.Key(i), Payload: relation.Payload(i)}
	}
	tb := Build(tuples)
	for b := range tb.heads {
		if h := tb.heads[b]; h >= 0 {
			tb.next[h] = h
			return tb, tuples[h].Key
		}
	}
	t.Fatal("no non-empty bucket in an 8-tuple table")
	return nil, 0
}

func TestSanitizeProbeDetectsCycle(t *testing.T) {
	tb, key := corruptTable(t)
	mustPanicWithCycle(t, func() {
		tb.Probe(key, func(relation.Payload) {})
	})
}

func TestSanitizeChainLengthDetectsCycle(t *testing.T) {
	tb, key := corruptTable(t)
	mustPanicWithCycle(t, func() {
		tb.ChainLength(key)
	})
}

func TestSanitizeMaxChainDetectsCycle(t *testing.T) {
	tb, _ := corruptTable(t)
	mustPanicWithCycle(t, func() {
		tb.MaxChain()
	})
}

func TestSanitizeConcurrentProbeDetectsCycle(t *testing.T) {
	tuples := make([]relation.Tuple, 8)
	for i := range tuples {
		tuples[i] = relation.Tuple{Key: relation.Key(i), Payload: relation.Payload(i)}
	}
	c := NewConcurrent(tuples)
	for i := range tuples {
		c.Insert(i)
	}
	var key relation.Key
	found := false
	for b := range c.heads {
		if h := c.heads[b].Load(); h >= 0 {
			c.next[h] = h
			key = tuples[h].Key
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no non-empty bucket after inserting 8 tuples")
	}
	mustPanicWithCycle(t, func() {
		c.Probe(key, func(relation.Payload) {})
	})
}

// TestSanitizeCleanTableUnaffected pins down that the checks are
// observability-only: an intact table behaves identically under the
// sanitizer.
func TestSanitizeCleanTableUnaffected(t *testing.T) {
	tuples := []relation.Tuple{{Key: 1, Payload: 10}, {Key: 1, Payload: 11}, {Key: 2, Payload: 20}}
	tb := Build(tuples)
	matches := 0
	visited := tb.Probe(1, func(relation.Payload) { matches++ })
	if matches != 2 || visited < 2 {
		t.Fatalf("probe under sanitize returned matches=%d visited=%d", matches, visited)
	}
	if got := tb.MaxChain(); got < 1 {
		t.Fatalf("MaxChain under sanitize = %d", got)
	}
}
