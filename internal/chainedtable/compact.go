package chainedtable

import (
	"skewjoin/internal/hashfn"
	"skewjoin/internal/relation"
	"skewjoin/internal/sanitize"
)

// CompactTable is the bucket-array alternative to the index-linked Table:
// every bucket's entries are stored contiguously in one tuple array, with
// starts[b] marking where bucket b begins (starts has len buckets+1, so
// bucket b occupies entries[starts[b]:starts[b+1]]). Building costs one
// extra counting pass over the tuples; probing replaces the chained walk's
// dependent load per node with a sequential scan of one cache-resident run —
// the chained-vs-array tension of the paper made selectable (LayoutCompact).
type CompactTable struct {
	shift   uint32
	starts  []int32
	entries []relation.Tuple
}

// BuildCompact constructs a compact table over tuples with the same bucket
// count Build would use. The tuple slice is only read, not retained.
//
//skewlint:hotpath
func BuildCompact(tuples []relation.Tuple) *CompactTable {
	t := &CompactTable{}
	t.rebuild(tuples, nil, nil)
	return t
}

// rebuild (re)initialises t over tuples, reusing the supplied starts/entries
// scratch when it has capacity. Counting pass → exclusive prefix sum →
// scatter → shift-down to restore starts.
//
//skewlint:hotpath
func (t *CompactTable) rebuild(tuples []relation.Tuple, starts []int32, entries []relation.Tuple) {
	nb := bucketCount(len(tuples))
	if cap(starts) >= nb+1 {
		starts = starts[:nb+1]
	} else {
		starts = make([]int32, nb+1)
	}
	if cap(entries) >= len(tuples) {
		entries = entries[:len(tuples)]
	} else {
		entries = make([]relation.Tuple, len(tuples))
	}
	t.shift = 32 - hashfn.Log2(nb)
	t.starts = starts
	t.entries = entries
	for b := range starts {
		starts[b] = 0
	}
	for _, tp := range tuples {
		starts[hashfn.Mix32(uint32(tp.Key))>>t.shift]++
	}
	// Exclusive prefix sum: starts[b] becomes bucket b's first slot.
	sum := int32(0)
	for b := 0; b < nb; b++ {
		c := starts[b]
		starts[b] = sum
		sum += c
	}
	starts[nb] = sum
	// Scatter, advancing each bucket's cursor past its filled slots...
	for _, tp := range tuples {
		b := hashfn.Mix32(uint32(tp.Key)) >> t.shift
		entries[starts[b]] = tp
		starts[b]++
	}
	// ...which leaves starts[b] == end of bucket b == start of bucket b+1;
	// shift down one slot to restore the begin offsets.
	for b := nb; b >= 1; b-- {
		starts[b] = starts[b-1]
	}
	starts[0] = 0
	if sanitize.Enabled && int(starts[nb]) != len(tuples) {
		sanitize.Failf("chainedtable: compact build lost tuples (starts[%d]=%d, want %d)",
			nb, starts[nb], len(tuples))
	}
}

// Probe scans k's bucket sequentially, invoking fn for every matching
// tuple, and returns the number of entries inspected. A probe inspects the
// whole bucket — exactly the entries a chained walk of the same bucket
// would visit — so visit counts are layout-independent.
//
//skewlint:hotpath
func (t *CompactTable) Probe(k relation.Key, fn func(pr relation.Payload)) int {
	b := hashfn.Mix32(uint32(k)) >> t.shift
	lo, hi := t.starts[b], t.starts[b+1]
	for i := lo; i < hi; i++ {
		if t.entries[i].Key == k {
			fn(t.entries[i].Payload)
		}
	}
	return int(hi - lo)
}

// ProbeGroup is Table.ProbeGroup for the compact layout: S tuples are
// probed in lock-stepped groups of GroupSize, each lane advancing one entry
// of its bucket run per round. For short buckets the sequential scan already
// prefetches well, but under skew the lock-step keeps many hot-bucket scans
// in flight and preserves the mode's emit order across layouts.
//
//skewlint:hotpath
func (t *CompactTable) ProbeGroup(ts []relation.Tuple, fn func(i int, pr relation.Payload)) int {
	visited := 0
	for lo := 0; lo < len(ts); lo += GroupSize {
		hi := lo + GroupSize
		if hi > len(ts) {
			hi = len(ts)
		}
		visited += t.probeGroup(ts[lo:hi], lo, fn)
	}
	return visited
}

//skewlint:hotpath
func (t *CompactTable) probeGroup(ts []relation.Tuple, base int, fn func(i int, pr relation.Payload)) int {
	var cur, end, slot [GroupSize]int32
	m := 0
	visited := 0
	for j := range ts {
		b := hashfn.Mix32(uint32(ts[j].Key)) >> t.shift
		lo, hi := t.starts[b], t.starts[b+1]
		visited += int(hi - lo)
		if lo < hi {
			cur[m], end[m], slot[m] = lo, hi, int32(j)
			m++
		}
	}
	for m > 0 {
		k := 0
		for l := 0; l < m; l++ {
			i, j := cur[l], slot[l]
			if t.entries[i].Key == ts[j].Key {
				fn(base+int(j), t.entries[i].Payload)
			}
			if i+1 < end[l] {
				cur[k], end[k], slot[k] = i+1, end[l], j
				k++
			}
		}
		m = k
	}
	return visited
}

// MaxChain returns the largest bucket's entry count (the compact analogue
// of the longest chain).
//
//skewlint:hotpath
func (t *CompactTable) MaxChain() int {
	max := int32(0)
	for b := 0; b+1 < len(t.starts); b++ {
		if n := t.starts[b+1] - t.starts[b]; n > max {
			max = n
		}
	}
	return int(max)
}

// Len returns the number of tuples in the table.
func (t *CompactTable) Len() int { return len(t.entries) }

// Buckets returns the number of buckets.
func (t *CompactTable) Buckets() int { return len(t.starts) - 1 }
