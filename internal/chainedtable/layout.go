package chainedtable

import "skewjoin/internal/relation"

// GroupSize is the number of S tuples a grouped probe keeps in flight at
// once. 64 lanes × two live arrays (chain cursor + lane slot) stay in
// registers/L1 while being comfortably past the handful of dependent
// loads an out-of-order core can overlap on its own.
const GroupSize = 64

// ProbeMode selects how the join phase walks the build table with S
// tuples. Both modes produce the identical match multiset per S tuple;
// the knob exists so the A/B harness can measure the lock-step pipeline
// against the seed's one-probe-at-a-time walk.
type ProbeMode uint8

const (
	// ProbeScalar probes one S tuple at a time, walking its whole chain
	// before the next probe starts (the seed path).
	ProbeScalar ProbeMode = iota
	// ProbeGrouped probes S tuples in GroupSize-wide groups whose chain
	// walks advance in lock-step, overlapping the dependent loads.
	ProbeGrouped
)

// String returns the benchmark-facing name of the mode.
func (m ProbeMode) String() string {
	if m == ProbeGrouped {
		return "grouped"
	}
	return "scalar"
}

// Layout selects the build-table representation the join phase constructs
// per task. Both layouts are probe-equivalent: the same matches, and the
// same visit count (a probe inspects every entry of its key's bucket
// either way).
type Layout uint8

const (
	// LayoutChained is the paper's index-linked bucket-chained table (the
	// seed path): build is one scatter pass, probing follows next[] links
	// with one dependent load per node.
	LayoutChained Layout = iota
	// LayoutCompact stores each bucket's entries contiguously, built with
	// an extra counting pre-pass; probing scans the bucket sequentially —
	// the chained-vs-array tension of the paper made measurable.
	LayoutCompact
)

// String returns the benchmark-facing name of the layout.
func (l Layout) String() string {
	if l == LayoutCompact {
		return "compact"
	}
	return "chained"
}

// HashTable is the probe-side view of a single-owner build table, satisfied
// by *Table (chained) and *CompactTable. The join phase builds through an
// Arena and probes through this interface so every (ProbeMode, Layout)
// combination shares one task loop.
type HashTable interface {
	// Probe invokes fn for every tuple matching k and returns the number
	// of bucket entries inspected.
	Probe(k relation.Key, fn func(pr relation.Payload)) int
	// ProbeGroup probes all of ts in lock-stepped groups, invoking
	// fn(i, payload) for each match of ts[i], and returns total entries
	// inspected.
	ProbeGroup(ts []relation.Tuple, fn func(i int, pr relation.Payload)) int
	// MaxChain returns the largest bucket's entry count.
	MaxChain() int
	// Len returns the number of tuples in the table.
	Len() int
	// Buckets returns the number of buckets.
	Buckets() int
}

var (
	_ HashTable = (*Table)(nil)
	_ HashTable = (*CompactTable)(nil)
)
