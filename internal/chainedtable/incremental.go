package chainedtable

import (
	"skewjoin/internal/hashfn"
	"skewjoin/internal/relation"
	"skewjoin/internal/sanitize"
)

// Incremental is a bucket-chained hash table that grows as tuples arrive,
// the build structure of the streaming symmetric hash join: neither input
// is complete when probing starts, so the one-shot Build/rebuild path
// (which sizes its bucket array from a finished partition) cannot be used.
// Tuples are appended one at a time; when the load factor reaches one the
// bucket array doubles and every chain is relinked in place — amortised
// O(1) per insert, same masked-high-bits bucketing as Table, so a popular
// key still produces the one long chain the paper's skew analysis is
// about.
//
// An Incremental is owned by one lane of the symmetric join and is only
// touched under that lane's lock; it is not safe for concurrent use.
type Incremental struct {
	shift  uint32
	heads  []int32
	next   []int32
	tuples []relation.Tuple
}

// incrementalMinBuckets is the initial bucket count. Lanes start tiny —
// most of the fanout sees a few tuples per chunk — so the first table is
// small and doubles only when the stream actually fills it.
const incrementalMinBuckets = 8

// NewIncremental returns an empty growable table. capHint (tuples) sizes
// the initial bucket array when the caller can predict the lane's final
// cardinality; 0 starts at the minimum.
func NewIncremental(capHint int) *Incremental {
	nb := incrementalMinBuckets
	if capHint > nb {
		nb = hashfn.NextPow2(capHint)
	}
	return &Incremental{
		shift: 32 - hashfn.Log2(nb),
		heads: newHeads(nb),
		next:  make([]int32, 0, nb),
	}
}

// newHeads allocates an empty-chain bucket array (-1 terminators).
func newHeads(nb int) []int32 {
	heads := make([]int32, nb)
	for b := range heads {
		heads[b] = -1
	}
	return heads
}

// Insert appends tp and links it into its bucket chain, growing the bucket
// array first when the table is at load factor one. Unlike the one-shot
// build paths it allocates by design (amortised growth), so it carries no
// hotpath annotation.
func (t *Incremental) Insert(tp relation.Tuple) {
	if len(t.tuples) >= len(t.heads) {
		t.grow()
	}
	i := int32(len(t.tuples))
	t.tuples = append(t.tuples, tp)
	b := hashfn.Mix32(uint32(tp.Key)) >> t.shift
	t.next = append(t.next, t.heads[b])
	t.heads[b] = i
}

// grow doubles the bucket array and relinks every tuple. The tuple and
// next slices keep their storage; only the heads array is reallocated.
func (t *Incremental) grow() {
	nb := len(t.heads) * 2
	t.shift = 32 - hashfn.Log2(nb)
	t.heads = newHeads(nb)
	for i, tp := range t.tuples {
		b := hashfn.Mix32(uint32(tp.Key)) >> t.shift
		t.next[i] = t.heads[b]
		t.heads[b] = int32(i)
	}
}

// Probe walks the chain of k's bucket, invoking fn for every tuple whose
// key equals k, and returns the number of chain nodes visited.
//
//skewlint:hotpath
func (t *Incremental) Probe(k relation.Key, fn func(pr relation.Payload)) int {
	visited := 0
	for i := t.heads[hashfn.Mix32(uint32(k))>>t.shift]; i >= 0; i = t.next[i] {
		visited++
		if sanitize.Enabled && visited > len(t.tuples) {
			sanitize.Failf("chainedtable: cycle in incremental bucket chain for key %d (visited %d nodes, table holds %d tuples)",
				k, visited, len(t.tuples))
		}
		if t.tuples[i].Key == k {
			fn(t.tuples[i].Payload)
		}
	}
	return visited
}

// Len returns the number of tuples inserted so far.
func (t *Incremental) Len() int { return len(t.tuples) }

// Buckets returns the current bucket count.
func (t *Incremental) Buckets() int { return len(t.heads) }

// MaxChain returns the longest chain currently in the table (the symmetric
// join's skew symptom, mirroring Table.MaxChain).
func (t *Incremental) MaxChain() int {
	max := 0
	for b := range t.heads {
		n := 0
		for i := t.heads[b]; i >= 0; i = t.next[i] {
			n++
			if sanitize.Enabled && n > len(t.tuples) {
				sanitize.Failf("chainedtable: cycle in incremental bucket %d's chain (visited %d nodes, table holds %d tuples)",
					b, n, len(t.tuples))
			}
		}
		if n > max {
			max = n
		}
	}
	return max
}
