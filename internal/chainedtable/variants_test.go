package chainedtable

import (
	"fmt"
	"sort"
	"testing"

	"skewjoin/internal/relation"
)

// match is one (S index, R payload) probe result, the unit the equivalence
// tests compare across probe modes and layouts.
type match struct {
	i  int
	pr relation.Payload
}

func sortMatches(ms []match) {
	sort.Slice(ms, func(a, b int) bool {
		if ms[a].i != ms[b].i {
			return ms[a].i < ms[b].i
		}
		return ms[a].pr < ms[b].pr
	})
}

// scalarMatches probes ts one at a time through any HashTable.
func scalarMatches(t HashTable, ts []relation.Tuple) ([]match, int) {
	var ms []match
	visited := 0
	for i := range ts {
		visited += t.Probe(ts[i].Key, func(pr relation.Payload) {
			ms = append(ms, match{i, pr})
		})
	}
	return ms, visited
}

// groupMatches probes ts through ProbeGroup.
func groupMatches(t HashTable, ts []relation.Tuple) ([]match, int) {
	var ms []match
	visited := t.ProbeGroup(ts, func(i int, pr relation.Payload) {
		ms = append(ms, match{i, pr})
	})
	return ms, visited
}

type variantWorkload struct {
	name string
	r, s []relation.Tuple
}

// variantWorkloads returns the inputs the equivalence tests sweep: uniform,
// moderately skewed (small key range), one-hot, empty sides, and
// group-boundary sizes.
func variantWorkloads() []variantWorkload {
	mk := func(n, keyRange int, seed int64) []relation.Tuple { return randomTuples(n, keyRange, seed) }
	hot := func(n int) []relation.Tuple {
		ts := make([]relation.Tuple, n)
		for i := range ts {
			ts[i] = relation.Tuple{Key: 7, Payload: relation.Payload(i)}
		}
		return ts
	}
	return []variantWorkload{
		{"uniform", mk(4000, 1<<20, 10), mk(4000, 1<<20, 11)},
		{"skewed", mk(3000, 40, 12), mk(3000, 40, 13)},
		{"one-hot", hot(500), hot(700)},
		{"empty-s", mk(100, 50, 14), nil},
		{"empty-r", nil, mk(100, 50, 15)},
		{"group-boundary", mk(GroupSize*3, 30, 16), mk(GroupSize*3+1, 30, 17)},
		{"sub-group", mk(5, 5, 18), mk(GroupSize-1, 5, 19)},
	}
}

// TestProbeVariantsEquivalent is the package-level analogue of the radix
// variants test: every (layout × probe mode) combination over every
// workload must produce the identical match multiset and the identical
// visit count as the seed scalar/chained path.
func TestProbeVariantsEquivalent(t *testing.T) {
	for _, w := range variantWorkloads() {
		t.Run(w.name, func(t *testing.T) {
			chained := Build(w.r)
			wantMatches, wantVisits := scalarMatches(chained, w.s)
			sortMatches(wantMatches)

			tables := map[string]HashTable{
				"chained": chained,
				"compact": BuildCompact(w.r),
			}
			for lname, table := range tables {
				for _, mode := range []ProbeMode{ProbeScalar, ProbeGrouped} {
					var got []match
					var visits int
					if mode == ProbeGrouped {
						got, visits = groupMatches(table, w.s)
					} else {
						got, visits = scalarMatches(table, w.s)
					}
					sortMatches(got)
					name := fmt.Sprintf("%s/%s", lname, mode)
					if visits != wantVisits {
						t.Errorf("%s: visited %d, want %d", name, visits, wantVisits)
					}
					if len(got) != len(wantMatches) {
						t.Fatalf("%s: %d matches, want %d", name, len(got), len(wantMatches))
					}
					for i := range got {
						if got[i] != wantMatches[i] {
							t.Fatalf("%s: match %d = %+v, want %+v", name, i, got[i], wantMatches[i])
						}
					}
				}
			}
		})
	}
}

// TestConcurrentProbeGroupEquivalent checks the shared-table grouped probe
// against its own scalar walk (the no-partition join's pairing).
func TestConcurrentProbeGroupEquivalent(t *testing.T) {
	r := randomTuples(6000, 80, 20)
	s := randomTuples(6000, 80, 21)
	con := NewConcurrent(r)
	for i := range r {
		con.Insert(i)
	}
	var want, got []match
	wantVisits := 0
	for i := range s {
		wantVisits += con.Probe(s[i].Key, func(pr relation.Payload) { want = append(want, match{i, pr}) })
	}
	gotVisits := con.ProbeGroup(s, func(i int, pr relation.Payload) { got = append(got, match{i, pr}) })
	sortMatches(want)
	sortMatches(got)
	if gotVisits != wantVisits {
		t.Errorf("grouped visited %d, scalar %d", gotVisits, wantVisits)
	}
	if len(got) != len(want) {
		t.Fatalf("grouped %d matches, scalar %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("match %d: grouped %+v, scalar %+v", i, got[i], want[i])
		}
	}
}

// TestArenaReuse drives a sequence of builds through one arena and checks
// (a) every build probes correctly, (b) scratch is actually recycled once
// capacities stabilise, and (c) Detach hands out tables that survive
// subsequent builds.
func TestArenaReuse(t *testing.T) {
	for _, layout := range []Layout{LayoutChained, LayoutCompact} {
		t.Run(layout.String(), func(t *testing.T) {
			arena := &Arena{}
			// Grow to the high-water mark, then rebuild smaller partitions;
			// each table must reflect only its own tuples.
			sizes := []int{1 << 12, 100, 1, 37, 1 << 10, 0, 255}
			for round, n := range sizes {
				tuples := randomTuples(n, 64, int64(30+round))
				table := arena.Build(tuples, layout)
				if table.Len() != n {
					t.Fatalf("round %d: Len = %d, want %d", round, table.Len(), n)
				}
				want := make(map[relation.Key]int)
				for _, tp := range tuples {
					want[tp.Key]++
				}
				total := 0
				for k := relation.Key(0); k < 64; k++ {
					got := 0
					table.Probe(k, func(relation.Payload) { got++ })
					if got != want[k] {
						t.Fatalf("round %d key %d: %d matches, want %d", round, k, got, want[k])
					}
					total += got
				}
				if total != n {
					t.Fatalf("round %d: probed %d tuples, want %d", round, total, n)
				}
			}
		})
	}
}

// TestArenaDetach verifies the split-task contract: a detached table keeps
// answering probes correctly even after the arena builds over new input.
func TestArenaDetach(t *testing.T) {
	for _, layout := range []Layout{LayoutChained, LayoutCompact} {
		t.Run(layout.String(), func(t *testing.T) {
			arena := &Arena{}
			kept := randomTuples(2000, 50, 40)
			keptTable := arena.Build(kept, layout)
			arena.Detach()
			// Build several more tables; without Detach these would have
			// clobbered keptTable's scratch in place.
			for round := 0; round < 4; round++ {
				arena.Build(randomTuples(3000, 50, int64(41+round)), layout)
			}
			want := make(map[relation.Key]int)
			for _, tp := range kept {
				want[tp.Key]++
			}
			for k := relation.Key(0); k < 50; k++ {
				got := 0
				keptTable.Probe(k, func(relation.Payload) { got++ })
				if got != want[k] {
					t.Fatalf("key %d after detach: %d matches, want %d", k, got, want[k])
				}
			}
		})
	}
}

// TestArenaSteadyStateAllocFree is the arena's reason to exist: after the
// first build grows the scratch, same-size rebuilds must allocate nothing.
func TestArenaSteadyStateAllocFree(t *testing.T) {
	for _, layout := range []Layout{LayoutChained, LayoutCompact} {
		t.Run(layout.String(), func(t *testing.T) {
			arena := &Arena{}
			tuples := randomTuples(1<<12, 200, 50)
			arena.Build(tuples, layout) // warm-up: grows scratch
			allocs := testing.AllocsPerRun(20, func() {
				arena.Build(tuples, layout)
			})
			if allocs != 0 {
				t.Errorf("steady-state arena build allocates %.1f per call, want 0", allocs)
			}
		})
	}
}

// TestNilArenaBuilds pins the nil-receiver contract callers without reuse
// rely on.
func TestNilArenaBuilds(t *testing.T) {
	var arena *Arena
	tuples := randomTuples(500, 30, 60)
	for _, layout := range []Layout{LayoutChained, LayoutCompact} {
		table := arena.Build(tuples, layout)
		if table.Len() != len(tuples) {
			t.Errorf("%s: Len = %d, want %d", layout, table.Len(), len(tuples))
		}
	}
	arena.Detach() // must not panic
}

// TestModeAndLayoutStrings pins the benchmark-facing knob names.
func TestModeAndLayoutStrings(t *testing.T) {
	if ProbeScalar.String() != "scalar" || ProbeGrouped.String() != "grouped" {
		t.Errorf("ProbeMode strings: %q, %q", ProbeScalar, ProbeGrouped)
	}
	if LayoutChained.String() != "chained" || LayoutCompact.String() != "compact" {
		t.Errorf("Layout strings: %q, %q", LayoutChained, LayoutCompact)
	}
	if ProbeScalar != 0 || LayoutChained != 0 {
		t.Error("seed-identical variants must be the zero values")
	}
}

// BenchmarkBuildTiny measures build cost on 1-8 tuple partitions — the
// satellite fix: with the old 2-bucket minimum a 1-tuple build paid for
// bucket hashing and head clearing it could never use.
func BenchmarkBuildTiny(b *testing.B) {
	for _, size := range []int{1, 2, 4, 8} {
		tuples := make([]relation.Tuple, size)
		for i := range tuples {
			tuples[i] = relation.Tuple{Key: relation.Key(i * 2654435761), Payload: relation.Payload(i)}
		}
		b.Run(fmt.Sprintf("alloc/size=%d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Build(tuples)
			}
		})
		b.Run(fmt.Sprintf("arena/size=%d", size), func(b *testing.B) {
			arena := &Arena{}
			arena.Build(tuples, LayoutChained)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				arena.Build(tuples, LayoutChained)
			}
		})
	}
}

// BenchmarkProbeModes contrasts scalar and grouped probing on both layouts
// across chain-length regimes. Grouped probing exists for the long-chain
// (skewed) rows: scalar serialises one dependent load per node, grouped
// keeps up to GroupSize walks in flight.
func BenchmarkProbeModes(b *testing.B) {
	const size = 1 << 14
	for _, skew := range []struct {
		name     string
		keyRange int
	}{
		{"distinct", 1 << 30},
		{"moderate", 64},
		{"one-hot", 1},
	} {
		r := make([]relation.Tuple, size)
		s := make([]relation.Tuple, size)
		for i := range r {
			r[i] = relation.Tuple{Key: relation.Key((i * 2654435761) % skew.keyRange), Payload: relation.Payload(i)}
			s[i] = relation.Tuple{Key: relation.Key((i * 40503) % skew.keyRange), Payload: relation.Payload(i)}
		}
		tables := []struct {
			name  string
			table HashTable
		}{
			{"chained", Build(r)},
			{"compact", BuildCompact(r)},
		}
		for _, tb := range tables {
			b.Run(fmt.Sprintf("%s/scalar/%s", tb.name, skew.name), func(b *testing.B) {
				b.SetBytes(int64(size) * relation.TupleSize)
				// The emit closure is created once, mirroring the join
				// phase's per-worker closures: the steady-state probe loop
				// must report 0 allocs/op.
				var sink relation.Payload
				emit := func(p relation.Payload) { sink += p }
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for j := range s {
						tb.table.Probe(s[j].Key, emit)
					}
				}
				_ = sink
			})
			b.Run(fmt.Sprintf("%s/grouped/%s", tb.name, skew.name), func(b *testing.B) {
				b.SetBytes(int64(size) * relation.TupleSize)
				var sink relation.Payload
				emit := func(_ int, p relation.Payload) { sink += p }
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					tb.table.ProbeGroup(s, emit)
				}
				_ = sink
			})
		}
	}
}
