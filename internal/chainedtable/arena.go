package chainedtable

import "skewjoin/internal/relation"

// Arena recycles build-table scratch across the per-task Build calls of a
// join phase. A join phase runs one build per partition pair — thousands of
// tasks at realistic fanouts — and the seed allocated fresh heads/next
// slices for every one. An Arena is owned by exactly one worker: each Build
// reuses the previous table's scratch in place, so after the first few
// tasks grow the buffers to the high-water mark, the steady state allocates
// nothing.
//
// The returned table is only valid until the worker's next Build through
// the same arena. When a table must outlive that — joinphase hands split
// sub-tasks sharing one built table to other workers — call Detach first:
// the arena forgets the table and the next Build allocates fresh scratch.
//
// A nil *Arena is valid and simply allocates per build (the seed
// behaviour), so callers without reuse needs pass nil.
type Arena struct {
	chained *Table
	compact *CompactTable
}

// Build constructs a table over tuples in the requested layout, reusing the
// arena's scratch from the previous same-layout build when possible.
//
//skewlint:hotpath
func (a *Arena) Build(tuples []relation.Tuple, layout Layout) HashTable {
	if layout == LayoutCompact {
		if a == nil {
			return BuildCompact(tuples)
		}
		if a.compact == nil {
			a.compact = &CompactTable{}
		}
		t := a.compact
		t.rebuild(tuples, t.starts, t.entries)
		return t
	}
	if a == nil {
		return Build(tuples)
	}
	if a.chained == nil {
		a.chained = &Table{}
	}
	t := a.chained
	t.rebuild(tuples, t.heads, t.next)
	return t
}

// Detach releases the arena's claim on the tables it handed out, so they
// stay valid indefinitely. The next Build allocates fresh scratch.
func (a *Arena) Detach() {
	if a != nil {
		a.chained = nil
		a.compact = nil
	}
}
