package chainedtable

import (
	"testing"

	"skewjoin/internal/relation"
)

// TestIncrementalMatchesTable inserts the same tuples into an Incremental
// and a one-shot Table and checks every key probes identically.
func TestIncrementalMatchesTable(t *testing.T) {
	tuples := make([]relation.Tuple, 0, 3000)
	for i := 0; i < 3000; i++ {
		// Heavy duplication: key space of 100 so chains are long.
		tuples = append(tuples, relation.Tuple{Key: relation.Key(i % 100), Payload: relation.Payload(i)})
	}

	inc := NewIncremental(0)
	for _, tp := range tuples {
		inc.Insert(tp)
	}
	tab := Build(tuples)

	if inc.Len() != len(tuples) {
		t.Fatalf("Len = %d, want %d", inc.Len(), len(tuples))
	}
	for k := relation.Key(0); k < 110; k++ {
		var gotInc, gotTab []relation.Payload
		inc.Probe(k, func(p relation.Payload) { gotInc = append(gotInc, p) })
		tab.Probe(k, func(p relation.Payload) { gotTab = append(gotTab, p) })
		if len(gotInc) != len(gotTab) {
			t.Fatalf("key %d: incremental found %d matches, table found %d", k, len(gotInc), len(gotTab))
		}
		// Same multiset: both tables sum the same payloads for the key.
		var sumInc, sumTab uint64
		for _, p := range gotInc {
			sumInc += uint64(p)
		}
		for _, p := range gotTab {
			sumTab += uint64(p)
		}
		if sumInc != sumTab {
			t.Fatalf("key %d: payload sum mismatch %d vs %d", k, sumInc, sumTab)
		}
	}
}

// TestIncrementalGrowth checks the table doubles past its initial bucket
// count and stays at load factor <= 1.
func TestIncrementalGrowth(t *testing.T) {
	inc := NewIncremental(0)
	if inc.Buckets() != incrementalMinBuckets {
		t.Fatalf("initial buckets = %d, want %d", inc.Buckets(), incrementalMinBuckets)
	}
	for i := 0; i < 10000; i++ {
		inc.Insert(relation.Tuple{Key: relation.Key(i), Payload: relation.Payload(i)})
		if inc.Len() > inc.Buckets() {
			t.Fatalf("after %d inserts: %d tuples in %d buckets (load factor > 1)", i+1, inc.Len(), inc.Buckets())
		}
	}
	if inc.Buckets() < 10000 {
		t.Fatalf("buckets = %d after 10000 inserts, expected >= 10000", inc.Buckets())
	}
	// Every inserted key still probes to exactly one match after growth.
	for i := 0; i < 10000; i++ {
		n := 0
		inc.Probe(relation.Key(i), func(p relation.Payload) {
			n++
			if p != relation.Payload(i) {
				t.Fatalf("key %d probed payload %d", i, p)
			}
		})
		if n != 1 {
			t.Fatalf("key %d: %d matches, want 1", i, n)
		}
	}
}

// TestIncrementalCapHint checks a capacity hint pre-sizes the bucket
// array so no rehash happens during a hinted build.
func TestIncrementalCapHint(t *testing.T) {
	inc := NewIncremental(5000)
	before := inc.Buckets()
	if before < 5000 {
		t.Fatalf("hinted buckets = %d, want >= 5000", before)
	}
	for i := 0; i < 5000; i++ {
		inc.Insert(relation.Tuple{Key: relation.Key(i), Payload: 1})
	}
	if inc.Buckets() != before {
		t.Fatalf("buckets grew from %d to %d despite sufficient hint", before, inc.Buckets())
	}
}

// TestIncrementalMaxChain pins the skew symptom: one hot key's chain
// length equals its multiplicity.
func TestIncrementalMaxChain(t *testing.T) {
	inc := NewIncremental(0)
	for i := 0; i < 500; i++ {
		inc.Insert(relation.Tuple{Key: 7, Payload: relation.Payload(i)})
	}
	for i := 0; i < 100; i++ {
		inc.Insert(relation.Tuple{Key: relation.Key(1000 + i), Payload: 0})
	}
	if mc := inc.MaxChain(); mc < 500 {
		t.Fatalf("MaxChain = %d, want >= 500 (hot key multiplicity)", mc)
	}
}
