package gsh

import (
	"testing"

	"skewjoin/internal/gbase"
	"skewjoin/internal/gpusim"
	"skewjoin/internal/oracle"
	"skewjoin/internal/relation"
	"skewjoin/internal/zipf"
)

func workload(t *testing.T, n int, theta float64, seed int64) (relation.Relation, relation.Relation) {
	t.Helper()
	g, err := zipf.New(zipf.Config{Theta: theta, Universe: n, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	r, s := g.Pair(n)
	return r, s
}

func TestJoinMatchesOracleAcrossSkew(t *testing.T) {
	for _, theta := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		r, s := workload(t, 20000, theta, 42)
		want := oracle.Expected(r, s)
		got := Join(r, s, Config{})
		if got.Summary != want {
			t.Errorf("theta=%.2f: got %+v, want %+v", theta, got.Summary, want)
		}
	}
}

func TestJoinEmptyInputs(t *testing.T) {
	var empty relation.Relation
	r, s := workload(t, 1000, 0.8, 7)
	if res := Join(empty, s, Config{}); res.Summary.Count != 0 {
		t.Errorf("empty R: got %d results", res.Summary.Count)
	}
	if res := Join(r, empty, Config{}); res.Summary.Count != 0 {
		t.Errorf("empty S: got %d results", res.Summary.Count)
	}
}

func TestSkewPathEngagesOnlyUnderSkew(t *testing.T) {
	// Paper §V-B: "When the zipf factor is 0–0.4, none of the partitions is
	// larger than the shared memory, and therefore our skew handling steps
	// are not used."
	r, s := workload(t, 50000, 0, 3)
	res := Join(r, s, Config{})
	if res.Stats.LargePartitions != 0 {
		t.Errorf("uniform data produced %d large partitions", res.Stats.LargePartitions)
	}
	if res.Stats.SkewBlocks != 0 {
		t.Errorf("uniform data launched %d skew-join blocks", res.Stats.SkewBlocks)
	}

	r, s = workload(t, 100000, 1.0, 3)
	res = Join(r, s, Config{})
	if res.Stats.LargePartitions == 0 {
		t.Error("zipf 1.0 produced no large partitions")
	}
	if res.Stats.SkewedKeys == 0 {
		t.Error("zipf 1.0 detected no skewed keys")
	}
	if res.Stats.SkewBlocks == 0 {
		t.Error("zipf 1.0 launched no skew-join blocks")
	}
}

func TestModelledTimeBeatsGbaseAtHighSkew(t *testing.T) {
	// The headline claim, in shape: GSH outperforms Gbase under heavy skew
	// and is comparable at low skew.
	r, s := workload(t, 100000, 1.0, 11)
	gb := gbase.Join(r, s, gbase.Config{})
	gs := Join(r, s, Config{})
	if gs.Summary != gb.Summary {
		t.Fatalf("summaries differ: gsh %+v vs gbase %+v", gs.Summary, gb.Summary)
	}
	if gs.Total() >= gb.Total() {
		t.Errorf("at zipf 1.0 GSH (%v) should beat Gbase (%v)", gs.Total(), gb.Total())
	}

	r, s = workload(t, 100000, 0.2, 11)
	gb = gbase.Join(r, s, gbase.Config{})
	gs = Join(r, s, Config{})
	ratio := float64(gs.Total()) / float64(gb.Total())
	if ratio > 2.0 || ratio < 0.3 {
		t.Errorf("at zipf 0.2 GSH and Gbase should be comparable, ratio %.2f", ratio)
	}
}

func TestTraceRecordsLaunches(t *testing.T) {
	r, s := workload(t, 30000, 1.0, 5)
	res := Join(r, s, Config{})
	if len(res.Trace) == 0 {
		t.Fatal("no launch records")
	}
	names := map[string]bool{}
	var total int64
	for _, rec := range res.Trace {
		names[rec.PhaseLabel] = true
		total += int64(rec.Duration)
		if rec.Imbalance < 1 {
			t.Errorf("launch %s imbalance %.2f < 1", rec.Name, rec.Imbalance)
		}
	}
	for _, want := range []string{"partition", "nmjoin", "skewjoin"} {
		if !names[want] {
			t.Errorf("trace missing phase %q", want)
		}
	}
	if total != int64(res.Total()) {
		t.Errorf("trace durations sum %d != total %d", total, res.Total())
	}
}

func TestPhasesCoverTotal(t *testing.T) {
	r, s := workload(t, 30000, 0.9, 5)
	res := Join(r, s, Config{})
	var sum int64
	for _, p := range res.Phases {
		if p.Duration < 0 {
			t.Errorf("phase %s has negative duration", p.Name)
		}
		sum += int64(p.Duration)
	}
	if sum != int64(res.Total()) {
		t.Errorf("phases sum %d != total %d", sum, res.Total())
	}
	if res.AllOther() >= res.Total() {
		t.Errorf("AllOther %v should exclude the partition phase (total %v)", res.AllOther(), res.Total())
	}
}

func TestFKWorkloadCorrectAndTilingHelps(t *testing.T) {
	g, err := zipf.New(zipf.Config{Theta: 1.0, Universe: 20000, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	r, s := g.FKPair(120000)
	want := oracle.Expected(r, s)
	if want.Count != uint64(s.Len()) {
		t.Fatalf("FK join output %d != |S| %d", want.Count, s.Len())
	}
	small := gpusim.Config{SharedMemBytes: 8 << 10}
	literal := Join(r, s, Config{Device: small, STileTuples: -1})
	tiled := Join(r, s, Config{Device: small})
	if literal.Summary != want || tiled.Summary != want {
		t.Fatalf("FK join wrong: literal %+v, tiled %+v, want %+v",
			literal.Summary, tiled.Summary, want)
	}
	if literal.Stats.SkewedKeys > 0 && tiled.Stats.SkewBlocks <= literal.Stats.SkewBlocks {
		t.Errorf("tiling should add skew-join blocks: %d vs %d",
			tiled.Stats.SkewBlocks, literal.Stats.SkewBlocks)
	}
	if literal.Stats.SkewedKeys > 0 && tiled.Phase("skewjoin") > literal.Phase("skewjoin") {
		t.Errorf("tiled skew-join (%v) should not exceed paper-literal (%v)",
			tiled.Phase("skewjoin"), literal.Phase("skewjoin"))
	}
}

func TestNMJoinSubListFallback(t *testing.T) {
	// With a tiny shared memory and k=1, removing one key per large
	// partition is not enough: the divided normal partitions still exceed
	// capacity and NM-join must fall back to Gbase-style sub-lists while
	// staying correct.
	r, s := workload(t, 60000, 1.0, 23)
	want := oracle.Expected(r, s)
	res := Join(r, s, Config{
		Device: gpusim.Config{SharedMemBytes: 4 << 10},
		TopK:   1,
	})
	if res.Summary != want {
		t.Fatalf("got %+v, want %+v", res.Summary, want)
	}
	if res.Stats.LargePartitions == 0 {
		t.Fatal("expected large partitions with 4KiB shared memory at zipf 1.0")
	}
}

func TestConfigKnobs(t *testing.T) {
	r, s := workload(t, 30000, 0.95, 13)
	want := oracle.Expected(r, s)
	cases := []Config{
		{SampleRate: 0.001},
		{SampleRate: 0.2},
		{TopK: 1},
		{TopK: 8},
		{STileTuples: -1},
		{STileTuples: 64},
		{IncludeTransfer: true},
	}
	for i, cfg := range cases {
		if got := Join(r, s, cfg).Summary; got != want {
			t.Errorf("case %d (%+v): got %+v, want %+v", i, cfg, got, want)
		}
	}
}
