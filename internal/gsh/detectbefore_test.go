package gsh

import (
	"testing"

	"skewjoin/internal/oracle"
)

func TestDetectBeforeMatchesOracle(t *testing.T) {
	for _, theta := range []float64{0, 0.6, 1.0} {
		r, s := workload(t, 30000, theta, 42)
		want := oracle.Expected(r, s)
		got := Join(r, s, Config{DetectBefore: true})
		if got.Summary != want {
			t.Errorf("theta=%.1f: got %+v, want %+v", theta, got.Summary, want)
		}
	}
}

func TestDetectBeforeAgreesWithDetectAfter(t *testing.T) {
	r, s := workload(t, 40000, 0.95, 9)
	after := Join(r, s, Config{})
	before := Join(r, s, Config{DetectBefore: true})
	if after.Summary != before.Summary {
		t.Errorf("summaries differ: after %+v vs before %+v", after.Summary, before.Summary)
	}
}

func TestDetectBeforePartitionIsSlowerUnderSkew(t *testing.T) {
	// The §IV-B argument: in-kernel skew checking makes the partition
	// phase pay divergence and serialised appends, which detect-after
	// avoids.
	r, s := workload(t, 60000, 1.0, 5)
	after := Join(r, s, Config{})
	before := Join(r, s, Config{DetectBefore: true})
	if before.Stats.SkewedKeys == 0 {
		t.Fatal("pre-detection found no skewed keys at zipf 1.0")
	}
	pAfter := after.Phases[0].Duration
	pBefore := before.Phases[0].Duration
	if pBefore <= pAfter {
		t.Errorf("detect-before partition %v should exceed detect-after %v", pBefore, pAfter)
	}
}
