package gsh

import (
	"fmt"
	"testing"

	"skewjoin/internal/relation"
	"skewjoin/internal/zipf"
)

// Ablation benchmarks for GSH's design decisions (DESIGN.md §4).

func ablationWorkload(b *testing.B, theta float64) (r, s relation.Relation) {
	b.Helper()
	const n = 1 << 16
	g, err := zipf.New(zipf.Config{Theta: theta, Universe: n, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	return g.Pair(n)
}

// BenchmarkAblationTopK sweeps the per-large-partition skewed key count.
// The paper found k=3 sufficient to shrink the remaining normal partition
// under the shared-memory budget; smaller k leaves skewed keys in the
// NM-join, larger k pays extra division work for no benefit.
func BenchmarkAblationTopK(b *testing.B) {
	r, s := ablationWorkload(b, 1.0)
	for _, k := range []int{1, 2, 3, 5, 8} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			var res Result
			for i := 0; i < b.N; i++ {
				res = Join(r, s, Config{TopK: k})
			}
			b.ReportMetric(float64(res.Total().Microseconds()), "modelled-us")
			b.ReportMetric(float64(res.Stats.SkewedKeys), "skewed-keys")
		})
	}
}

// BenchmarkAblationDetectBefore compares GSH's detect-after-partition
// design against the CSH-style detect-before alternative under the GPU
// cost model — the §IV-B argument quantified.
func BenchmarkAblationDetectBefore(b *testing.B) {
	for _, theta := range []float64{0.5, 1.0} {
		r, s := ablationWorkload(b, theta)
		for _, before := range []bool{false, true} {
			name := fmt.Sprintf("zipf=%.1f/detect=after", theta)
			if before {
				name = fmt.Sprintf("zipf=%.1f/detect=before", theta)
			}
			b.Run(name, func(b *testing.B) {
				var res Result
				for i := 0; i < b.N; i++ {
					res = Join(r, s, Config{DetectBefore: before})
				}
				b.ReportMetric(float64(res.Total().Microseconds()), "modelled-us")
				b.ReportMetric(float64(res.Phases[0].Duration.Microseconds()), "partition-us")
			})
		}
	}
}

// BenchmarkAblationSampleRate sweeps GSH's per-partition sample rate.
func BenchmarkAblationSampleRate(b *testing.B) {
	r, s := ablationWorkload(b, 1.0)
	for _, rate := range []float64{0.001, 0.01, 0.1} {
		b.Run(fmt.Sprintf("rate=%g", rate), func(b *testing.B) {
			var res Result
			for i := 0; i < b.N; i++ {
				res = Join(r, s, Config{SampleRate: rate})
			}
			b.ReportMetric(float64(res.Total().Microseconds()), "modelled-us")
		})
	}
}
