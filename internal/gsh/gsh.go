// Package gsh implements GSH, the paper's GPU Skew-conscious Hash join
// (§IV-B), running on the gpusim device model.
//
// Unlike CSH, GSH detects skewed keys *after* the partition phase: checking
// a skew table inside the partition kernel would put normal and skewed
// tuples on different code paths and cause severe SIMT divergence, while
// the high global-memory bandwidth makes the extra copy of large partitions
// cheap. GSH's phases:
//
//  1. Partition R and S into shared-memory-sized partitions with a simple
//     count-then-partition procedure (two scans per pass, two passes),
//     avoiding Gbase's dynamic bucket allocation.
//  2. Detect skewed keys in large partitions: partitions larger than the
//     shared-memory budget are sampled (default 1%) into a linear-probing
//     frequency table, and the top-k (default 3) keys of each large
//     partition are marked skewed.
//  3. Divide each large partition: skewed tuples are appended to per-key
//     arrays, the remainder forms a normal partition. The corresponding
//     S partition is divided with the same key set.
//  4. NM-join: one thread block joins each pair of normal partitions,
//     exactly like Gbase's join procedure.
//  5. Skew-join: join results for a skewed key are produced by many thread
//     blocks — each block takes one R tuple from the skewed R array and
//     streams the skewed S array with coalesced reads and coalesced result
//     writes, fully exploiting the GPU's parallelism.
package gsh

import (
	"time"

	"skewjoin/internal/exec"
	"skewjoin/internal/freqtable"
	"skewjoin/internal/gpupart"
	"skewjoin/internal/gpusim"
	"skewjoin/internal/hashfn"
	"skewjoin/internal/outbuf"
	"skewjoin/internal/radix"
	"skewjoin/internal/relation"
)

// Config tunes GSH.
type Config struct {
	// Device configures the simulated GPU (zero fields = A100).
	Device gpusim.Config
	// SampleRate is the fraction of a large partition sampled for skew
	// detection (paper example: 1%).
	SampleRate float64
	// TopK is the number of most-frequent sampled keys per large partition
	// marked as skewed (paper: k=3 was sufficient).
	TopK int
	// STileTuples tiles the skewed S array in the skew-join phase: a block
	// handles one R tuple and one S tile instead of the whole S array.
	// The paper's scheme is one block per skewed *R tuple* (§IV-B step 5),
	// which parallelises perfectly when both sides of a skewed key are
	// large — but degenerates to a single block when a skewed key has few
	// R tuples (e.g. a foreign-key join whose skew is all on the S side).
	// Tiling is this repository's extension that fixes the degenerate
	// case; set it negative to disable and get the paper-literal scheme.
	// 0 means the default tile (the shared-memory partition capacity).
	STileTuples int
	// IncludeTransfer adds a "transfer" phase modelling the PCIe copy of
	// both input tables to the device, quantifying the GPU-resident-data
	// argument of §II-B.
	IncludeTransfer bool
	// Flush optionally installs a per-SM batch consumer on the device's
	// output buffers (the volcano model's upper operator).
	Flush func(sm int) outbuf.FlushFunc
	// DetectBefore is an ablation of the paper's §IV-B design argument: it
	// moves skew detection *before* the partition phase, CSH-style. The
	// partition kernels then check every tuple against the skew table,
	// which puts skewed and normal tuples on different code paths — warps
	// holding both kinds execute both paths (SIMT divergence), and the
	// appends to per-key skewed arrays serialise on their cursors. The
	// paper rejects this design for GPUs; the ablation benchmark shows the
	// modelled cost of ignoring that advice.
	DetectBefore bool
}

// Defaults fills zero fields with the paper's example parameters.
func (c Config) Defaults() Config {
	c.Device = c.Device.Defaults()
	if c.SampleRate <= 0 {
		c.SampleRate = 0.01
	}
	if c.TopK <= 0 {
		c.TopK = 3
	}
	return c
}

// Stats reports the internals of a GSH run.
type Stats struct {
	Bits1, Bits2    uint32
	Fanout          int
	LargePartitions int
	SkewedKeys      int
	SkewedTuplesR   int
	SkewedTuplesS   int
	NMBlocks        int
	SkewBlocks      int
	Sim             gpusim.Stats
}

// Result is the outcome of one GSH run. All durations are modelled GPU
// time from the simulator.
type Result struct {
	Summary outbuf.Summary
	Phases  []exec.Phase // "partition", "detect", "divide", "nmjoin", "skewjoin"
	Stats   Stats
	// Trace lists every kernel launch with its block count, makespan and
	// imbalance — the simulator's per-launch records.
	Trace []gpusim.LaunchRecord
}

// Total returns the end-to-end modelled time of the run.
func (r Result) Total() time.Duration {
	var d time.Duration
	for _, p := range r.Phases {
		d += p.Duration
	}
	return d
}

// Phase returns the duration recorded under name (0 if absent).
func (r Result) Phase(name string) time.Duration {
	var d time.Duration
	for _, p := range r.Phases {
		if p.Name == name {
			d += p.Duration
		}
	}
	return d
}

// AllOther returns the run time excluding the partition phase — the
// "GSH all other" row of the paper's Table I (detection, division, NM-join
// and skew-join all process skewed tuples toward join results).
func (r Result) AllOther() time.Duration {
	var d time.Duration
	for _, p := range r.Phases {
		if p.Name != "partition" && p.Name != "transfer" {
			d += p.Duration
		}
	}
	return d
}

// skewedKey is one detected skewed key with its diverted tuples.
type skewedKey struct {
	key relation.Key
	rps []relation.Payload // payloads of skewed R tuples
	sps []relation.Payload // payloads of skewed S tuples
}

// pair is one partition pair after division: normal tuples only.
type pair struct {
	r, s []relation.Tuple
}

// Join runs GSH over r and s on a fresh simulated device.
func Join(r, s relation.Relation, cfg Config) Result {
	cfg = cfg.Defaults()
	dev := gpusim.NewDevice(cfg.Device)
	if cfg.Flush != nil {
		dev.SetFlush(cfg.Flush)
	}
	capacity := dev.PartitionCapacityTuples()
	n := r.Len()
	if s.Len() > n {
		n = s.Len()
	}
	b1, b2 := gpupart.Fanout(n, capacity)
	// GSH puts almost all radix bits into pass 1 so that pass 2 — whose
	// unit of work is a pass-1 partition — launches more blocks than SMs
	// on uniform data (see partitionTable).
	bits1, bits2 := b1+b2-1, uint32(1)

	var res Result
	res.Stats.Bits1, res.Stats.Bits2 = bits1, bits2
	res.Stats.Fanout = 1 << (bits1 + bits2)

	var transferDur time.Duration
	if cfg.IncludeTransfer {
		transferDur = dev.Transfer("transfer", "gsh-h2d", r.Bytes()+s.Bytes())
	}

	if cfg.DetectBefore {
		res = joinDetectBefore(dev, r, s, cfg, bits1, bits2, capacity, res)
		if cfg.IncludeTransfer {
			res.Phases = append([]exec.Phase{{Name: "transfer", Duration: transferDur}}, res.Phases...)
		}
		return res
	}

	// Phase 1: count-then-partition, two passes.
	partDur := partitionTable(dev, r.Tuples, bits1, bits2)
	pr := gpupart.Functional(r.Tuples, bits1, bits2)
	partDur += partitionTable(dev, s.Tuples, bits1, bits2)
	ps := gpupart.Functional(s.Tuples, bits1, bits2)

	// Phases 2+3: detect and divide large partitions.
	pairs, skewed, detectDur, divideDur := detectAndDivide(dev, cfg, pr, ps, capacity, &res.Stats)

	// Phase 4: NM-join over normal partitions.
	nmDur := nmJoin(dev, pairs, capacity, &res.Stats)

	// Phase 5: skew-join with multiple blocks per skewed key.
	skewDur := skewJoin(dev, skewed, sTile(cfg, capacity), &res.Stats)

	dev.FlushOutputs()
	res.Summary = dev.OutputSummary()
	res.Stats.Sim = dev.Stats()
	res.Trace = dev.Records()
	if cfg.IncludeTransfer {
		res.Phases = append(res.Phases, exec.Phase{Name: "transfer", Duration: transferDur})
	}
	res.Phases = append(res.Phases,
		exec.Phase{Name: "partition", Duration: partDur},
		exec.Phase{Name: "detect", Duration: detectDur},
		exec.Phase{Name: "divide", Duration: divideDur},
		exec.Phase{Name: "nmjoin", Duration: nmDur},
		exec.Phase{Name: "skewjoin", Duration: skewDur},
	)
	return res
}

// partitionTable charges the modelled cost of GSH's two count-then-
// partition passes over one table.
//
// Pass 1 is chunk-parallel (count scan, then copy with reserved offsets) on
// the low bits1 bits; GSH avoids Gbase's bucket-management atomics here, so
// at low skew its partition phase is slightly cheaper (Table I: 5.9ms vs
// 6.78ms at zipf 0.5). Pass 2 refines each pass-1 partition in place: the
// partition-local count and prefix-sum make the partition the unit of
// work, so one thread block handles one pass-1 partition. GSH therefore
// uses a large pass-1 fanout (so blocks outnumber SMs on uniform data) —
// but under heavy skew the pass-1 partition holding the most popular key
// grows far beyond average and its block dominates the pass-2 makespan.
// That is the mechanism behind Table I's GSH partition row growing from
// 5.9ms to 24.5ms while Gbase's chunk-balanced bucket scheme stays flat.
func partitionTable(dev *gpusim.Device, tuples []relation.Tuple, bits1, bits2 uint32) time.Duration {
	// Pass 1: chunk-parallel scatter on the low bits1 bits.
	dur := partitionPass(dev, tuples, 0, bits1)

	// Pass 2: one block per pass-1 partition (count scan + prefix sum +
	// copy scan over the partition's contiguous region).
	p1 := gpupart.Functional(tuples, bits1, 0)
	fan2 := 1 << bits2
	dur += dev.Launch("partition", "gsh-partition-pass2", p1.Fanout(), func(b *gpusim.Block) {
		c := p1.Size(b.Idx)
		b.GlobalCoalesced(c * relation.TupleSize) // count scan
		b.UniformWork(c, 2)
		b.Compute(fan2)                               // partition-local prefix sum
		b.GlobalCoalesced(2 * c * relation.TupleSize) // copy scan: read + write
		b.UniformWork(c, 2)
	})
	return dur
}

// partitionPass models one count-then-partition pass over the table,
// scattering on the radix bits [shift, shift+bits).
func partitionPass(dev *gpusim.Device, tuples []relation.Tuple, shift, bits uint32) time.Duration {
	n := len(tuples)
	dcfg := dev.Config()
	blocks := 4 * dcfg.NumSMs
	chunk := (n + blocks - 1) / blocks
	if chunk == 0 {
		chunk = 1
		blocks = n
	}
	if blocks == 0 {
		blocks = 1
	}
	fan := 1 << bits
	return dev.Launch("partition", "gsh-partition-pass", blocks, func(b *gpusim.Block) {
		lo := b.Idx * chunk
		if lo >= n {
			return
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		c := hi - lo
		// Count scan: read + hash.
		b.GlobalCoalesced(c * relation.TupleSize)
		b.UniformWork(c, 2)
		// Offset reservation: one atomic per target partition per block.
		b.Atomic(fan)
		// Copy scan: read again, write into reserved windows.
		b.GlobalCoalesced(c * relation.TupleSize)
		b.GlobalCoalesced(c * relation.TupleSize)
		b.UniformWork(c, 2)
		// Scatter serialisation: per warp, lanes targeting the same
		// partition contend on its staging slot; the warp pays for its
		// most popular target.
		ws := dcfg.WarpSize
		conflicts := 0
		counts := make([]int, fan)
		for wlo := lo; wlo < hi; wlo += ws {
			whi := wlo + ws
			if whi > hi {
				whi = hi
			}
			max := 0
			for _, tp := range tuples[wlo:whi] {
				p := hashfn.Radix(tp.Key, shift, bits)
				counts[p]++
				if counts[p] > max {
					max = counts[p]
				}
			}
			for _, tp := range tuples[wlo:whi] {
				counts[hashfn.Radix(tp.Key, shift, bits)] = 0
			}
			conflicts += max
		}
		b.Shared(2 * conflicts)
	})
}

// detectAndDivide implements phases 2 and 3. Detection samples each large
// partition (on whichever sides are large — sampling the S side as well is
// what lets GSH handle S-side skew, which Gbase's sub-lists cannot).
// Division rewrites each large pair into per-key skewed arrays plus normal
// partitions, using one key set for both sides so matches are preserved.
func detectAndDivide(dev *gpusim.Device, cfg Config, pr, ps *radix.Partitioned, capacity int, st *Stats) (pairs []pair, skewed []*skewedKey, detectDur, divideDur time.Duration) {
	type largePair struct {
		part int
		keys []relation.Key // detected skewed keys of this pair
	}
	var large []*largePair
	for p := 0; p < pr.Fanout(); p++ {
		if pr.Size(p) > capacity || ps.Size(p) > capacity {
			large = append(large, &largePair{part: p})
		} else {
			pairs = append(pairs, pair{r: pr.Part(p), s: ps.Part(p)})
		}
	}
	st.LargePartitions = len(large)
	if len(large) == 0 {
		return pairs, nil, 0, 0
	}

	// Phase 2: one detection block per large partition side. Each block
	// writes its top-k into a private per-task slot; the union into the
	// pair's key set happens host-side in task order, so the kernel has no
	// cross-block side effects and the key order is execution-independent.
	type detTask struct {
		lp   *largePair
		part []relation.Tuple
	}
	var tasks []detTask
	for _, lp := range large {
		if pr.Size(lp.part) > capacity {
			tasks = append(tasks, detTask{lp: lp, part: pr.Part(lp.part)})
		}
		if ps.Size(lp.part) > capacity {
			tasks = append(tasks, detTask{lp: lp, part: ps.Part(lp.part)})
		}
	}
	topk := make([][]freqtable.KeyCount, len(tasks))
	detectDur = dev.Launch("detect", "gsh-detect", len(tasks), func(b *gpusim.Block) {
		t := tasks[b.Idx]
		stride := int(1 / cfg.SampleRate)
		if stride < 1 {
			stride = 1
		}
		counter := freqtable.New(len(t.part)/stride + 1)
		sampled := 0
		for i := 0; i < len(t.part); i += stride {
			counter.Add(t.part[i].Key)
			sampled++
		}
		// Sampled strided reads are scattered; counting is a few shared
		// ops per sample; the final top-k scan touches the whole table.
		b.GlobalRandom(sampled)
		b.Shared(3 * sampled)
		b.Compute(2 * counter.Distinct())
		topk[b.Idx] = counter.TopK(cfg.TopK)
	})
	for i := range tasks {
		lp := tasks[i].lp
		for _, kc := range topk[i] {
			dup := false
			for _, k := range lp.keys {
				if k == kc.Key {
					dup = true
					break
				}
			}
			if !dup {
				lp.keys = append(lp.keys, kc.Key)
			}
		}
	}

	// Phase 3: divide each large pair. Chunk-parallel over the partition:
	// the extra read+write of large partitions is the "additional copy
	// operation" whose cost the high bandwidth keeps modest. Each chunk's
	// block classifies into private per-task slots; the appends to the
	// shared per-key arrays and normal partitions happen host-side in task
	// order, so the tuple order is identical however the blocks ran.
	type divTask struct {
		lp    *largePair
		part  []relation.Tuple
		lo    int
		isR   bool
		local []*skewedKey // per-pair skewed key objects, indexed like lp.keys
	}
	type divOut struct {
		perKey [][]relation.Payload // diverted payloads, indexed like lp.keys
		normal []relation.Tuple
	}
	perPair := make(map[*largePair][]*skewedKey, len(large))
	for _, lp := range large {
		sk := make([]*skewedKey, len(lp.keys))
		for i, k := range lp.keys {
			sk[i] = &skewedKey{key: k}
		}
		perPair[lp] = sk
		skewed = append(skewed, sk...)
	}
	st.SkewedKeys = len(skewed)

	const divChunk = 1 << 14
	var dtasks []divTask
	normalR := make(map[*largePair][]relation.Tuple, len(large))
	normalS := make(map[*largePair][]relation.Tuple, len(large))
	for _, lp := range large {
		for lo := 0; lo < pr.Size(lp.part); lo += divChunk {
			dtasks = append(dtasks, divTask{lp: lp, part: pr.Part(lp.part), lo: lo, isR: true, local: perPair[lp]})
		}
		for lo := 0; lo < ps.Size(lp.part); lo += divChunk {
			dtasks = append(dtasks, divTask{lp: lp, part: ps.Part(lp.part), lo: lo, isR: false, local: perPair[lp]})
		}
	}
	douts := make([]divOut, len(dtasks))
	divideDur = dev.Launch("divide", "gsh-divide", len(dtasks), func(b *gpusim.Block) {
		t := dtasks[b.Idx]
		o := &douts[b.Idx]
		hi := t.lo + divChunk
		if hi > len(t.part) {
			hi = len(t.part)
		}
		c := hi - t.lo
		b.GlobalCoalesced(c * relation.TupleSize) // read
		// Compare against the (tiny) skewed key set, kept in registers.
		b.UniformWork(c, float64(1+len(t.lp.keys)))
		b.GlobalCoalesced(c * relation.TupleSize) // write (array or normal partition)
		b.Atomic(1 + len(t.lp.keys))              // per-chunk cursor reservations
		o.perKey = make([][]relation.Payload, len(t.lp.keys))
		for _, tp := range t.part[t.lo:hi] {
			diverted := false
			for i, k := range t.lp.keys {
				if tp.Key == k {
					o.perKey[i] = append(o.perKey[i], tp.Payload)
					diverted = true
					break
				}
			}
			if !diverted {
				o.normal = append(o.normal, tp)
			}
		}
	})
	for ti := range dtasks {
		t := &dtasks[ti]
		o := &douts[ti]
		for i := range t.lp.keys {
			if t.isR {
				t.local[i].rps = append(t.local[i].rps, o.perKey[i]...)
			} else {
				t.local[i].sps = append(t.local[i].sps, o.perKey[i]...)
			}
		}
		if t.isR {
			normalR[t.lp] = append(normalR[t.lp], o.normal...)
		} else {
			normalS[t.lp] = append(normalS[t.lp], o.normal...)
		}
	}
	for _, lp := range large {
		pairs = append(pairs, pair{r: normalR[lp], s: normalS[lp]})
	}
	for _, sk := range skewed {
		st.SkewedTuplesR += len(sk.rps)
		st.SkewedTuplesS += len(sk.sps)
	}
	return pairs, skewed, detectDur, divideDur
}

// nmJoin joins the normal partition pairs, one block per pair, with the
// Gbase-style sub-list fallback if a divided partition still exceeds the
// shared-memory budget.
func nmJoin(dev *gpusim.Device, pairs []pair, capacity int, st *Stats) time.Duration {
	type task struct{ r, s []relation.Tuple }
	var tasks []task
	for _, p := range pairs {
		if len(p.r) == 0 || len(p.s) == 0 {
			continue
		}
		if len(p.r) <= capacity {
			tasks = append(tasks, task{r: p.r, s: p.s})
			continue
		}
		for lo := 0; lo < len(p.r); lo += capacity {
			hi := lo + capacity
			if hi > len(p.r) {
				hi = len(p.r)
			}
			tasks = append(tasks, task{r: p.r[lo:hi], s: p.s})
		}
	}
	st.NMBlocks = len(tasks)
	if len(tasks) == 0 {
		return 0
	}
	return dev.Launch("nmjoin", "gsh-nmjoin", len(tasks), func(b *gpusim.Block) {
		t := tasks[b.Idx]
		gpupart.ProbeJoinBlock(b, t.r, t.s)
	})
}

// sTile resolves the skew-join S-tile size from the configuration.
func sTile(cfg Config, capacity int) int {
	switch {
	case cfg.STileTuples < 0:
		return 0 // disabled: paper-literal one block per R tuple
	case cfg.STileTuples == 0:
		return capacity
	default:
		return cfg.STileTuples
	}
}

// skewJoin produces the join results for the skewed keys: for every skewed
// key, one thread block per (R tuple, S tile) streams its slice of the
// skewed S array with coalesced reads and writes (§IV-B step 5, plus the
// S-tiling extension; tile <= 0 disables tiling).
func skewJoin(dev *gpusim.Device, skewed []*skewedKey, tile int, st *Stats) time.Duration {
	type task struct {
		key relation.Key
		rp  relation.Payload
		sps []relation.Payload
	}
	var tasks []task
	for _, sk := range skewed {
		if len(sk.rps) == 0 || len(sk.sps) == 0 {
			continue
		}
		step := len(sk.sps)
		if tile > 0 && tile < step {
			step = tile
		}
		for _, rp := range sk.rps {
			for lo := 0; lo < len(sk.sps); lo += step {
				hi := lo + step
				if hi > len(sk.sps) {
					hi = len(sk.sps)
				}
				tasks = append(tasks, task{key: sk.key, rp: rp, sps: sk.sps[lo:hi]})
			}
		}
	}
	st.SkewBlocks = len(tasks)
	if len(tasks) == 0 {
		return 0
	}
	return dev.Launch("skewjoin", "gsh-skewjoin", len(tasks), func(b *gpusim.Block) {
		t := tasks[b.Idx]
		// One scattered read for the block's own R tuple, then a coalesced
		// stream over the skewed S array producing one result per S tuple.
		b.GlobalRandom(1)
		b.GlobalCoalesced(len(t.sps) * 4)  // S payloads (key is implicit)
		b.UniformWork(len(t.sps), 2)       // pair assembly
		b.GlobalCoalesced(len(t.sps) * 12) // coalesced result write
		b.Out.PushRunS(t.key, t.rp, t.sps)
	})
}
