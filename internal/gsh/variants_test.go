package gsh

import (
	"fmt"
	"reflect"
	"testing"

	"skewjoin/internal/gpusim"
	"skewjoin/internal/oracle"
	"skewjoin/internal/outbuf"
)

// TestHostParallelismOutputInvariant is the golden variant sweep for the
// host-parallel simulator knob, mirroring internal/cbase/variants_test.go.
// GSH has the most execution-order hazards of the GPU joins — detect
// merges top-k key sets across blocks, divide appends to shared per-key
// arrays, skew-join replays retained payload runs — so every
// HostParallelism setting must reproduce the serial run bit for bit:
// summary, per-phase modelled times, launch trace and stats. Both the
// regular post-partition design and the DetectBefore ablation are swept.
func TestHostParallelismOutputInvariant(t *testing.T) {
	for _, theta := range []float64{0, 0.8} {
		for _, detectBefore := range []bool{false, true} {
			r, s := workload(t, 20000, theta, 33)
			want := oracle.Expected(r, s)
			var base Result
			for _, hp := range []int{0, 1, 4} {
				cfg := Config{
					Device: gpusim.Config{
						NumSMs: 16, SharedMemBytes: 4 << 10, HostParallelism: hp,
					},
					DetectBefore: detectBefore,
				}
				res := Join(r, s, cfg)
				name := fmt.Sprintf("theta=%g/detectbefore=%v/hostpar=%d", theta, detectBefore, hp)
				if res.Summary != want {
					t.Fatalf("%s: summary %+v, oracle %+v", name, res.Summary, want)
				}
				if hp == 0 {
					base = res
					continue
				}
				if !reflect.DeepEqual(res.Phases, base.Phases) {
					t.Errorf("%s: phases differ from serial\ngot:  %+v\nwant: %+v", name, res.Phases, base.Phases)
				}
				if !reflect.DeepEqual(res.Trace, base.Trace) {
					t.Errorf("%s: launch trace differs from serial", name)
				}
				if res.Stats != base.Stats {
					t.Errorf("%s: stats differ from serial\ngot:  %+v\nwant: %+v", name, res.Stats, base.Stats)
				}
			}
		}
	}
}

// TestHostParallelismWithFlushConsumer drives the host-parallel path with
// a per-SM flush consumer installed and a shared-memory budget small
// enough that several partitions run large: the consumer must observe an
// identical batch stream to serial execution (the tape-replay guarantee),
// not merely an identical final summary.
func TestHostParallelismWithFlushConsumer(t *testing.T) {
	r, s := workload(t, 20000, 1.0, 35)
	run := func(hp int) [][]int {
		var streams [][]int
		cfg := Config{
			Device: gpusim.Config{
				NumSMs: 8, SharedMemBytes: 2 << 10, HostParallelism: hp,
			},
			Flush: func(sm int) outbuf.FlushFunc {
				return func(batch []outbuf.Result) {
					row := make([]int, 0, len(batch)+1)
					row = append(row, sm)
					for _, res := range batch {
						row = append(row, int(res.Key))
					}
					streams = append(streams, row)
				}
			},
		}
		Join(r, s, cfg)
		return streams
	}
	serial := run(0)
	if len(serial) == 0 {
		t.Fatal("no flush batches observed; shrink the ring or grow the workload")
	}
	for _, hp := range []int{1, 4} {
		if got := run(hp); !reflect.DeepEqual(got, serial) {
			t.Errorf("hostpar=%d: flush batch stream differs from serial", hp)
		}
	}
}
