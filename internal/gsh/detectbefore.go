package gsh

import (
	"time"

	"skewjoin/internal/exec"
	"skewjoin/internal/freqtable"
	"skewjoin/internal/gpupart"
	"skewjoin/internal/gpusim"
	"skewjoin/internal/relation"
)

// joinDetectBefore is the DetectBefore ablation: CSH's detect-then-
// partition structure executed under the GPU cost model. It produces
// exactly the same join output as GSH, but its partition kernels pay for
// the per-tuple skew check, for warp divergence between the skewed and
// normal code paths, and for serialised appends to the skewed arrays —
// the costs §IV-B says motivated detecting *after* the partition phase.
func joinDetectBefore(dev *gpusim.Device, r, s relation.Relation, cfg Config, bits1, bits2 uint32, capacity int, res Result) Result {
	// Detection: sample table R (whole-table, CSH-style), take the keys
	// whose sampled frequency suggests their tuple count exceeds the
	// shared-memory budget.
	stride := int(1 / cfg.SampleRate)
	if stride < 1 {
		stride = 1
	}
	var skewKeys map[relation.Key]int
	detectDur := dev.Launch("detect", "gsh-pre-detect", 1, func(b *gpusim.Block) {
		counter := freqtable.New(r.Len()/stride + 1)
		sampled := 0
		for i := 0; i < r.Len(); i += stride {
			counter.Add(r.Tuples[i].Key)
			sampled++
		}
		b.GlobalRandom(sampled)
		b.Shared(3 * sampled)
		b.Compute(2 * counter.Distinct())
		// A key is skewed when its estimated full-table frequency alone
		// would overflow a shared-memory partition.
		threshold := uint32(capacity/stride) + 1
		skewKeys = make(map[relation.Key]int)
		for _, kc := range counter.AtLeast(threshold) {
			skewKeys[kc.Key] = len(skewKeys)
		}
	})
	res.Stats.SkewedKeys = len(skewKeys)

	// Partition with in-kernel skew checking. Functionally: split both
	// tables into skewed per-key arrays plus radix partitions of the rest.
	skewed := make([]*skewedKey, 0, len(skewKeys))
	for k := range skewKeys {
		skewed = append(skewed, &skewedKey{key: k})
	}
	// Deterministic order for reproducible launches.
	sortSkewed(skewed)
	idOf := make(map[relation.Key]int, len(skewed))
	for i, sk := range skewed {
		idOf[sk.key] = i
	}

	partDur := partitionWithCheck(dev, r.Tuples, idOf, skewed, true)
	partDur += partitionWithCheck(dev, s.Tuples, idOf, skewed, false)
	normalR := filterTuples(r.Tuples, idOf)
	normalS := filterTuples(s.Tuples, idOf)
	pr := gpupart.Functional(normalR, bits1, bits2)
	ps := gpupart.Functional(normalS, bits1, bits2)
	for _, sk := range skewed {
		res.Stats.SkewedTuplesR += len(sk.rps)
		res.Stats.SkewedTuplesS += len(sk.sps)
	}

	pairs := make([]pair, 0, pr.Fanout())
	for p := 0; p < pr.Fanout(); p++ {
		pairs = append(pairs, pair{r: pr.Part(p), s: ps.Part(p)})
	}
	nmDur := nmJoin(dev, pairs, capacity, &res.Stats)
	skewDur := skewJoin(dev, skewed, sTile(cfg, capacity), &res.Stats)

	dev.FlushOutputs()
	res.Summary = dev.OutputSummary()
	res.Stats.Sim = dev.Stats()
	res.Trace = dev.Records()
	res.Phases = []exec.Phase{
		{Name: "partition", Duration: partDur},
		{Name: "detect", Duration: detectDur},
		{Name: "divide", Duration: 0},
		{Name: "nmjoin", Duration: nmDur},
		{Name: "skewjoin", Duration: skewDur},
	}
	return res
}

func sortSkewed(sk []*skewedKey) {
	for i := 1; i < len(sk); i++ {
		for j := i; j > 0 && sk[j].key < sk[j-1].key; j-- {
			sk[j], sk[j-1] = sk[j-1], sk[j]
		}
	}
}

// filterTuples returns the tuples whose keys are not skewed.
func filterTuples(tuples []relation.Tuple, idOf map[relation.Key]int) []relation.Tuple {
	out := make([]relation.Tuple, 0, len(tuples))
	for _, tp := range tuples {
		if _, skewedKey := idOf[tp.Key]; !skewedKey {
			out = append(out, tp)
		}
	}
	return out
}

// partitionWithCheck models a partition pass whose kernel checks every
// tuple against the skew table, charging the mixed-warp divergence and the
// serialised skewed-array appends; functionally it collects the skewed
// tuples into their per-key arrays.
func partitionWithCheck(dev *gpusim.Device, tuples []relation.Tuple, idOf map[relation.Key]int, skewed []*skewedKey, isR bool) time.Duration {
	n := len(tuples)
	dcfg := dev.Config()
	blocks := 4 * dcfg.NumSMs
	chunk := (n + blocks - 1) / blocks
	if chunk == 0 {
		chunk = 1
		blocks = n
	}
	if blocks == 0 {
		blocks = 1
	}
	var total time.Duration
	totalSkewed := 0
	// Per-block staging for the functional side effects (pass 0 only):
	// each block records its chunk's skewed payloads in a private slot and
	// the host merges the slots in block-index order after the launch, so
	// the per-key array order matches serial execution exactly.
	type chunkOut struct {
		skewed int
		perKey [][]relation.Payload // indexed like `skewed`
	}
	for pass := 0; pass < 2; pass++ {
		charge := pass == 0 // collect the skewed tuples only once
		outs := make([]chunkOut, blocks)
		total += dev.Launch("partition", "gsh-partition-checked", blocks, func(b *gpusim.Block) {
			lo := b.Idx * chunk
			if lo >= n {
				return
			}
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			c := hi - lo
			// Baseline pass costs (count scan + copy scan), as in the
			// regular GSH pass-1 kernel.
			b.GlobalCoalesced(3 * c * relation.TupleSize)
			b.UniformWork(c, 4)
			// Per-tuple skew-table probe.
			b.UniformWork(c, 2)
			// Divergence: a warp containing both skewed and normal tuples
			// executes both code paths — charge a second pass over the
			// warp's work whenever it is mixed. Serialised appends: every
			// skewed tuple pays an atomic on its key's array cursor.
			ws := dcfg.WarpSize
			skewedInChunk := 0
			mixedWarpWork := 0
			for wlo := lo; wlo < hi; wlo += ws {
				whi := wlo + ws
				if whi > hi {
					whi = hi
				}
				cnt := 0
				for _, tp := range tuples[wlo:whi] {
					if _, ok := idOf[tp.Key]; ok {
						cnt++
					}
				}
				skewedInChunk += cnt
				if cnt > 0 && cnt < whi-wlo {
					mixedWarpWork += whi - wlo
				}
			}
			b.UniformWork(mixedWarpWork, 4)
			if charge {
				o := &outs[b.Idx]
				o.skewed = skewedInChunk
				o.perKey = make([][]relation.Payload, len(skewed))
				for _, tp := range tuples[lo:hi] {
					if id, ok := idOf[tp.Key]; ok {
						o.perKey[id] = append(o.perKey[id], tp.Payload)
					}
				}
			}
		})
		if charge {
			for bi := range outs {
				o := &outs[bi]
				totalSkewed += o.skewed
				for id, ps := range o.perKey {
					if isR {
						skewed[id].rps = append(skewed[id].rps, ps...)
					} else {
						skewed[id].sps = append(skewed[id].sps, ps...)
					}
				}
			}
		}
	}
	// The skewed appends all bump a handful of per-key cursors, so the
	// atomics contend on the same addresses and serialise device-wide —
	// the decisive cost of in-kernel skew handling on a GPU.
	total += dev.Serialize("partition", "gsh-skewed-append-contention",
		float64(totalSkewed)*dev.Config().AtomicCost)
	return total
}
