package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixtureConfigs supplies per-fixture analyzer configuration; fixtures not
// listed run with the zero Config. The retry fixture needs its scope and
// classifier vocabulary pointed at the fixture module.
var fixtureConfigs = map[string]Config{
	"retry-discipline": {
		RetryScope:       []string{"fixture"},
		RetryClassifiers: []string{"fixture.E.Retryable"},
	},
}

// TestFixtures runs every analyzer against its on-disk positive fixture
// under testdata/fixtures/<name> and asserts the exact expected findings
// recorded in expect.txt — the same check CI's lint-fixtures job performs.
// Regenerate expectations with UPDATE_LINT_FIXTURES=1 after reviewing the
// new output.
func TestFixtures(t *testing.T) {
	root := filepath.Join("testdata", "fixtures")
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	update := os.Getenv("UPDATE_LINT_FIXTURES") != ""
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join(root, name)
			l, err := NewLoader(dir)
			if err != nil {
				t.Fatalf("NewLoader: %v", err)
			}
			pkgs, err := l.Load("./...")
			if err != nil {
				t.Fatalf("Load: %v", err)
			}
			var got []string
			for _, f := range Run(l, pkgs, fixtureConfigs[name]) {
				got = append(got, f.String())
			}
			if len(got) == 0 {
				t.Fatalf("fixture %s is a positive fixture and must produce findings", name)
			}
			expectPath := filepath.Join(dir, "expect.txt")
			if update {
				if err := os.WriteFile(expectPath, []byte(strings.Join(got, "\n")+"\n"), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			data, err := os.ReadFile(expectPath)
			if err != nil {
				t.Fatalf("missing expectations (run with UPDATE_LINT_FIXTURES=1): %v", err)
			}
			want := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
			if len(got) != len(want) {
				t.Fatalf("finding count mismatch: want %d, got %d:\n%s", len(want), len(got), strings.Join(got, "\n"))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("finding %d:\nwant %s\ngot  %s", i, want[i], got[i])
				}
			}
		})
	}
}
