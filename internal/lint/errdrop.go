package lint

import (
	"go/ast"
	"go/types"
)

// analyzeErrDrop reports error values that are discarded instead of
// handled, in three escalating tiers:
//
//  1. Bare calls: an expression statement whose callee returns an error
//     throws the value away entirely. Deferred calls are exempt (the
//     `defer f.Close()` cleanup idiom has nowhere to put the error), and
//     so are the configured allowlist functions (Config.ErrDropAllowlist,
//     e.g. fmt.Fprintf into an in-memory buffer).
//  2. Blank discards: `_ = f()` or `v, _ := g()` where the blanked
//     position is error-typed.
//  3. Flow-aware pending errors: an error-typed local assigned from a
//     call and then never read on some path — either overwritten by the
//     next call's error before anyone looked (the fan-out/merge bug where
//     a shard's failure is silently replaced) or still unread at function
//     exit. Reads of any kind (conditions, returns, arguments) discharge
//     the obligation; locals that are captured by a closure or have their
//     address taken are not tracked, since writes through the alias are
//     out of flow-analysis reach.
func analyzeErrDrop(l *Loader, pkgs []*Package, cfg Config) []Finding {
	allow := make(map[string]bool, len(cfg.ErrDropAllowlist))
	for _, a := range cfg.ErrDropAllowlist {
		allow[a] = true
	}
	var findings []Finding
	for _, pkg := range pkgs {
		eachFuncBody(pkg, true, func(decl *ast.FuncDecl, ftype *ast.FuncType, body *ast.BlockStmt) {
			findings = append(findings, errDropSyntactic(l, pkg, body, allow)...)
			findings = append(findings, errDropPending(l, pkg, ftype, body)...)
		})
	}
	return findings
}

// errDropSyntactic covers tiers 1 and 2: bare calls and blank discards.
func errDropSyntactic(l *Loader, pkg *Package, body *ast.BlockStmt, allow map[string]bool) []Finding {
	var findings []Finding
	shallowWalk(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			call, ok := ast.Unparen(n.X).(*ast.CallExpr)
			if !ok || !callReturnsError(pkg, call) {
				return true
			}
			fn := calleeFunc(pkg.Info, call)
			if fn != nil && allow[qualifiedName(fn)] {
				return true
			}
			name := "call"
			if fn != nil {
				name = fn.Name()
			}
			findings = append(findings, l.finding(n.Pos(), RuleErrDrop,
				"%s returns an error that is silently discarded; handle it, or allowlist the callee", name))
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name != "_" {
					continue
				}
				if t := assignedType(pkg, n, i); t != nil && isErrorType(t) {
					findings = append(findings, l.finding(id.Pos(), RuleErrDrop,
						"error result discarded via _; handle it or name and check it"))
				}
			}
		}
		return true
	})
	return findings
}

// assignedType resolves the type flowing into the i-th LHS of an
// assignment: elementwise for n:n assignments, the i-th tuple component
// for the `a, b := f()` form.
func assignedType(pkg *Package, n *ast.AssignStmt, i int) types.Type {
	if len(n.Rhs) == len(n.Lhs) {
		if tv, ok := pkg.Info.Types[n.Rhs[i]]; ok {
			return tv.Type
		}
		return nil
	}
	if len(n.Rhs) != 1 {
		return nil
	}
	tv, ok := pkg.Info.Types[n.Rhs[0]]
	if !ok {
		return nil
	}
	if tuple, ok := tv.Type.(*types.Tuple); ok && i < tuple.Len() {
		return tuple.At(i).Type()
	}
	return nil
}

// isErrorType reports whether t is error itself (the common declared
// result type). Concrete error implementations discarded into _ are
// deliberate type-level choices and stay out of scope.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// callReturnsError reports whether any result of the call is error-typed.
func callReturnsError(pkg *Package, call *ast.CallExpr) bool {
	tv, ok := pkg.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

// errDropPending is tier 3: the may-pending dataflow over error locals.
func errDropPending(l *Loader, pkg *Package, ftype *ast.FuncType, body *ast.BlockStmt) []Finding {
	tracked := trackedErrVars(pkg, body)
	if len(tracked) == 0 {
		return nil
	}
	c := buildCFG(pkg, body)
	prob := &pendingProblem{pkg: pkg, tracked: tracked, named: namedResults(pkg, ftype)}
	in := runForward(c, prob, factSet{})

	var findings []Finding
	lastGen := make(map[*types.Var]ast.Node)
	visitFixpoint(c, prob, in, func(n ast.Node, before factSet) {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			v := identVar(pkg, id)
			if v == nil || !tracked[v] {
				continue
			}
			gens := assignGensError(pkg, as, i)
			if gens && before.has(v) {
				findings = append(findings, l.finding(as.Pos(), RuleErrDrop,
					"error in %s overwritten before it was checked; the earlier failure is lost", v.Name()))
			}
			if gens {
				lastGen[v] = as
			}
		}
	})
	// Pending at exit: assigned on some path, never read before returning.
	for f := range in[c.exit] {
		v, ok := f.(*types.Var)
		if !ok {
			continue
		}
		at := lastGen[v]
		if at == nil {
			continue
		}
		findings = append(findings, l.finding(at.Pos(), RuleErrDrop,
			"error assigned to %s is never checked on some path to exit", v.Name()))
	}
	return findings
}

// trackedErrVars collects the error-typed locals declared directly in
// body (not inside a nested function literal) that are neither captured
// by a closure nor address-taken.
func trackedErrVars(pkg *Package, body *ast.BlockStmt) map[*types.Var]bool {
	tracked := make(map[*types.Var]bool)
	shallowWalk(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := pkg.Info.Defs[id].(*types.Var); ok && !v.IsField() && v.Name() != "_" && isErrorType(v.Type()) {
			tracked[v] = true
		}
		return true
	})
	if len(tracked) == 0 {
		return tracked
	}
	// Disqualify aliased vars: &v anywhere, or any use inside a FuncLit.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if v := identVar(pkg, ast.Unparen(n.X)); v != nil {
					delete(tracked, v)
				}
			}
		case *ast.FuncLit:
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if v, ok := pkg.Info.Uses[id].(*types.Var); ok {
						delete(tracked, v)
					}
				}
				return true
			})
			return false
		}
		return true
	})
	return tracked
}

// identVar resolves an expression to the local variable it names.
func identVar(pkg *Package, e ast.Expr) *types.Var {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if v, ok := pkg.Info.Uses[id].(*types.Var); ok {
		return v
	}
	if v, ok := pkg.Info.Defs[id].(*types.Var); ok {
		return v
	}
	return nil
}

// assignGensError reports whether the i-th LHS of as receives an
// error-typed value produced by a call — the only kind of assignment that
// creates a handling obligation (err = nil clears one).
func assignGensError(pkg *Package, as *ast.AssignStmt, i int) bool {
	t := assignedType(pkg, as, i)
	if t == nil || !isErrorType(t) {
		return false
	}
	var rhs ast.Expr
	if len(as.Rhs) == len(as.Lhs) {
		rhs = as.Rhs[i]
	} else {
		rhs = as.Rhs[0]
	}
	hasCall := false
	ast.Inspect(rhs, func(n ast.Node) bool {
		if _, ok := n.(*ast.CallExpr); ok {
			hasCall = true
		}
		return true
	})
	return hasCall
}

// namedResults collects the named result variables of a signature; a bare
// `return` reads exactly these.
func namedResults(pkg *Package, ftype *ast.FuncType) map[*types.Var]bool {
	named := make(map[*types.Var]bool)
	if ftype == nil || ftype.Results == nil {
		return named
	}
	for _, field := range ftype.Results.List {
		for _, name := range field.Names {
			if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
				named[v] = true
			}
		}
	}
	return named
}

// pendingProblem: facts are tracked error vars holding an unread call
// result. MAY lattice — pending on any path is a path that loses an
// error.
type pendingProblem struct {
	pkg     *Package
	tracked map[*types.Var]bool
	named   map[*types.Var]bool
}

func (p *pendingProblem) must() bool { return false }

func (p *pendingProblem) refine(cond ast.Expr, when bool, f factSet) factSet { return f }

func (p *pendingProblem) transfer(n ast.Node, in factSet) factSet {
	out := in
	mutate := func() factSet {
		if sameSet(out, in) {
			out = in.clone()
		}
		return out
	}
	as, isAssign := n.(*ast.AssignStmt)
	// Writes this node performs; reads of these idents do not discharge.
	writing := make(map[*ast.Ident]bool)
	if isAssign {
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				writing[id] = true
			}
		}
	}
	// A bare `return` reads exactly the named results.
	if ret, ok := n.(*ast.ReturnStmt); ok && len(ret.Results) == 0 {
		for v := range p.named {
			if in.has(v) {
				delete(mutate(), v)
			}
		}
		return out
	}
	// Reads discharge pending obligations.
	shallowWalk(n, func(m ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if !ok || writing[id] {
			return true
		}
		if v, ok := p.pkg.Info.Uses[id].(*types.Var); ok && p.tracked[v] && in.has(v) {
			delete(mutate(), v)
		}
		return true
	})
	// Assignments generate (call results) or clear (anything else).
	if isAssign {
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			v := identVar(p.pkg, id)
			if v == nil || !p.tracked[v] {
				continue
			}
			if assignGensError(p.pkg, as, i) {
				mutate()[v] = struct{}{}
			} else {
				delete(mutate(), v)
			}
		}
	}
	return out
}
