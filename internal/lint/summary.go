package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The call-summary layer gives the flow-sensitive analyzers one bounded
// level of interprocedural reasoning: every function in the loaded
// packages gets a summary computed purely from its own body (never from
// other summaries, so the propagation depth is exactly one call), and the
// analyzers consult callee summaries at call sites.
//
//   - lock-order uses acquires/heldAtExit: calling a function that takes
//     locks while holding one orders the caller's locks before the
//     callee's, and a callee that returns still holding a lock (the
//     admitAll pattern) extends the caller's held set.
//   - goroutine-leak uses the field-join indexes: a goroutine that Done()s
//     a struct-field WaitGroup is joined if *some* function in the module
//     Waits on that field (the exec.Group shape, where Go and Wait are
//     different methods).
type summary struct {
	// acquires are the lock classes this function's own body may acquire
	// (mutex Lock/RLock plus configured acquirer methods).
	acquires map[types.Object]token.Pos
	// heldAtExit are the lock classes acquired in the body with no
	// non-deferred release anywhere in it — a flow-insensitive
	// approximation of "still held when the function returns".
	heldAtExit map[types.Object]bool
}

// summaries carries the per-module summary tables.
type summaries struct {
	funcs map[*types.Func]*summary

	// waitedFields / receivedFields / closedFields index join operations
	// on struct fields anywhere in the module: fields on which some
	// function calls Wait, receives (<-f or range f), or close(f)/sends.
	waitedFields   map[types.Object]bool
	receivedFields map[types.Object]bool
	closedFields   map[types.Object]bool
}

// acquireSites describes the configured non-mutex lock acquirers
// (qualified method name -> true), e.g. service.Admission.Acquire.
type lockModel struct {
	acquirers map[string]bool
}

func newLockModel(cfg Config) *lockModel {
	m := &lockModel{acquirers: make(map[string]bool, len(cfg.LockAcquirers))}
	for _, a := range cfg.LockAcquirers {
		m.acquirers[a] = true
	}
	return m
}

// acquisition classifies one call node: the lock class it acquires or
// releases, if any.
type acquisition struct {
	class   types.Object
	release bool // Unlock/RUnlock
	rlock   bool // RLock/RUnlock (read side)
	sel     *ast.SelectorExpr
}

// classifyLockCall resolves call to a lock acquisition/release on a
// trackable class, or returns false. Receiver chains rooted in fields,
// package vars, or locals all classify; calls through interfaces or
// untracked expressions do not.
func (m *lockModel) classifyLockCall(pkg *Package, call *ast.CallExpr) (acquisition, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return acquisition{}, false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return acquisition{}, false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return acquisition{}, false
	}
	if isMutexMethodType(recv.Type()) {
		switch sel.Sel.Name {
		case "Lock", "RLock", "Unlock", "RUnlock":
			class := rootObject(pkg.Info, sel.X)
			if class == nil {
				return acquisition{}, false
			}
			return acquisition{
				class:   class,
				release: sel.Sel.Name == "Unlock" || sel.Sel.Name == "RUnlock",
				rlock:   sel.Sel.Name == "RLock" || sel.Sel.Name == "RUnlock",
				sel:     sel,
			}, true
		}
		return acquisition{}, false
	}
	if m.acquirers[qualifiedName(fn)] {
		class := rootObject(pkg.Info, sel.X)
		if class == nil {
			return acquisition{}, false
		}
		return acquisition{class: class, sel: sel}, true
	}
	return acquisition{}, false
}

func isMutexMethodType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	return isMutexType(t)
}

// buildSummaries computes every function's summary and the module-wide
// field-join indexes in one pass over the loaded packages.
func buildSummaries(pkgs []*Package, m *lockModel) *summaries {
	s := &summaries{
		funcs:          make(map[*types.Func]*summary),
		waitedFields:   make(map[types.Object]bool),
		receivedFields: make(map[types.Object]bool),
		closedFields:   make(map[types.Object]bool),
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				sum := summarizeBody(pkg, m, fd.Body)
				if fn != nil {
					s.funcs[fn] = sum
				}
				s.indexJoins(pkg, fd.Body)
			}
		}
	}
	return s
}

// summarizeBody computes one function's lock summary from its body alone.
// Closures in the body count toward the function: a lock taken inside a
// closure the function runs is still a lock this call may take.
func summarizeBody(pkg *Package, m *lockModel, body *ast.BlockStmt) *summary {
	sum := &summary{
		acquires:   make(map[types.Object]token.Pos),
		heldAtExit: make(map[types.Object]bool),
	}
	released := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		acq, ok := m.classifyLockCall(pkg, call)
		if !ok {
			return true
		}
		if acq.release {
			released[acq.class] = true
			return true
		}
		if _, seen := sum.acquires[acq.class]; !seen {
			sum.acquires[acq.class] = acq.sel.Pos()
		}
		return true
	})
	for class := range sum.acquires {
		if !released[class] {
			sum.heldAtExit[class] = true
		}
	}
	return sum
}

// indexJoins records joins performed on struct fields: Wait() on a
// field WaitGroup or configured group type, receives from field channels,
// and close/sends on field channels.
func (s *summaries) indexJoins(pkg *Package, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			switch fun := ast.Unparen(n.Fun).(type) {
			case *ast.SelectorExpr:
				if fun.Sel.Name == "Wait" {
					if f := fieldRoot(pkg.Info, fun.X); f != nil {
						s.waitedFields[f] = true
					}
				}
			case *ast.Ident:
				if fun.Name == "close" && isBuiltin(pkg.Info, n, "close") && len(n.Args) == 1 {
					if f := fieldRoot(pkg.Info, n.Args[0]); f != nil {
						s.closedFields[f] = true
					}
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if f := fieldRoot(pkg.Info, n.X); f != nil {
					s.receivedFields[f] = true
				}
			}
		case *ast.SendStmt:
			if f := fieldRoot(pkg.Info, n.Chan); f != nil {
				s.closedFields[f] = true
			}
		case *ast.RangeStmt:
			if isChanExpr(pkg.Info, n.X) {
				if f := fieldRoot(pkg.Info, n.X); f != nil {
					s.receivedFields[f] = true
				}
			}
		}
		return true
	})
}

// fieldRoot returns the root object of e only when it is a struct field
// (the cross-function join index keys on declared fields, not locals).
func fieldRoot(info *types.Info, e ast.Expr) types.Object {
	obj := rootObject(info, e)
	if v, ok := obj.(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

func isChanExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, ok = tv.Type.Underlying().(*types.Chan)
	return ok
}
