package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// analyzeGoroLeak enforces that spawned work is joined: every `go`
// statement, and every call to a configured spawner (Config.LeakSpawners,
// e.g. exec.Group.Go), must reach a matching join on all paths from the
// spawn to the function's exit, or carry a //skewlint:fire-and-forget
// annotation on or above the spawn line.
//
// The join obligation is inferred from the goroutine body's handles:
//
//   - wg.Done() obligates wg.Wait()
//   - a send on / close of channel ch obligates a receive from ch
//   - a receive from ch obligates a close of / send on ch
//
// Satisfying any one handle joins the goroutine. A handle is considered
// joined when (in order): its class is declared outside the spawning
// scope (the caller owns it — parameters and captured outer variables),
// it is a struct field some function in the module joins (the
// Group.Go/Group.Wait split, via the call-summary index), it escapes
// through a return statement (the caller receives the handle), or — the
// flow-sensitive core — a join node is on every CFG path from the spawn
// to exit. Deferred joins run at every exit and satisfy all paths; paths
// through terminating calls (os.Exit, log.Fatal) never reach exit and
// need no join; a join inside a loop is credited at the loop head, since
// a zero-trip drain loop is statically indistinguishable from a matching
// one.
func analyzeGoroLeak(l *Loader, pkgs []*Package, cfg Config, sums *summaries) []Finding {
	var findings []Finding
	for _, pkg := range pkgs {
		annotated := directiveLines(l, pkg, "//skewlint:fire-and-forget")
		eachFuncBody(pkg, true, func(decl *ast.FuncDecl, _ *ast.FuncType, body *ast.BlockStmt) {
			c := buildCFG(pkg, body)
			for _, blk := range c.blocks {
				for ni, n := range blk.nodes {
					spawnPos, obs, what := spawnAt(pkg, cfg, n)
					if what == "" {
						continue
					}
					p := l.fset.Position(spawnPos)
					if annotated[lineKey{p.Filename, p.Line}] || annotated[lineKey{p.Filename, p.Line - 1}] {
						continue
					}
					if len(obs) == 0 {
						findings = append(findings, l.finding(spawnPos, RuleGoroLeak,
							"%s has no join handle (WaitGroup, channel); give it one or annotate //skewlint:fire-and-forget -- rationale", what))
						continue
					}
					joined := false
					var wanted []string
					for _, ob := range obs {
						if obligationMet(pkg, body, sums, c, blk, ni, ob) {
							joined = true
							break
						}
						wanted = append(wanted, ob.describe())
					}
					if !joined {
						findings = append(findings, l.finding(spawnPos, RuleGoroLeak,
							"%s is not joined on every path to exit (wanted %s); join it or annotate //skewlint:fire-and-forget -- rationale",
							what, strings.Join(wanted, " or ")))
					}
				}
			}
		})
	}
	return findings
}

type obligKind int

const (
	obWait  obligKind = iota // goroutine Done()s: spawner must Wait
	obRecv                   // goroutine sends/closes: spawner must receive
	obClose                  // goroutine receives: spawner must close/send
)

// oblig is one join handle the spawning scope can use.
type oblig struct {
	kind  obligKind
	class types.Object
	join  string // join method name for obWait ("Wait" unless configured)
}

func (o oblig) describe() string {
	switch o.kind {
	case obWait:
		return classLabel(o.class) + "." + o.join
	case obRecv:
		return "receive from " + classLabel(o.class)
	default:
		return "close of or send on " + classLabel(o.class)
	}
}

// spawnAt classifies a CFG node as a spawn site: a `go` statement or a
// call to a configured spawner. Returns the spawn position, the join
// obligations, and a description ("" when not a spawn).
func spawnAt(pkg *Package, cfg Config, n ast.Node) (token.Pos, []oblig, string) {
	if gs, ok := n.(*ast.GoStmt); ok {
		return gs.Pos(), goObligations(pkg, gs), "goroutine"
	}
	var pos token.Pos
	var obs []oblig
	what := ""
	shallowWalk(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok || what != "" {
			return true
		}
		fn := calleeFunc(pkg.Info, call)
		if fn == nil {
			return true
		}
		join, ok := cfg.LeakSpawners[qualifiedName(fn)]
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		class := rootObject(pkg.Info, sel.X)
		if class == nil {
			return true
		}
		pos = call.Pos()
		obs = []oblig{{kind: obWait, class: class, join: join}}
		what = "work spawned by " + fn.Name()
		return true
	})
	return pos, obs, what
}

// goObligations extracts the join handles from a `go func(){...}()`
// body. Handles declared inside the goroutine itself are dropped — the
// spawner cannot reach them. A `go named(...)` statement yields no
// handles: the body is out of scope, so the spawn needs an annotation or
// a configured spawner entry.
func goObligations(pkg *Package, gs *ast.GoStmt) []oblig {
	fl, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
	if !ok {
		return nil
	}
	seen := make(map[oblig]bool)
	var obs []oblig
	add := func(o oblig) {
		if o.class == nil || seen[o] {
			return
		}
		// A handle created inside the goroutine body is invisible to the
		// spawner.
		if fl.Body.Pos() <= o.class.Pos() && o.class.Pos() <= fl.Body.End() {
			return
		}
		seen[o] = true
		obs = append(obs, o)
	}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				add(oblig{kind: obWait, class: rootObject(pkg.Info, sel.X), join: "Wait"})
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" &&
				isBuiltin(pkg.Info, n, "close") && len(n.Args) == 1 {
				add(oblig{kind: obRecv, class: rootObject(pkg.Info, n.Args[0])})
			}
		case *ast.SendStmt:
			add(oblig{kind: obRecv, class: rootObject(pkg.Info, n.Chan)})
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				add(oblig{kind: obClose, class: rootObject(pkg.Info, n.X)})
			}
		case *ast.RangeStmt:
			if isChanExpr(pkg.Info, n.X) {
				add(oblig{kind: obClose, class: rootObject(pkg.Info, n.X)})
			}
		}
		return true
	})
	return obs
}

// obligationMet decides whether one handle joins the spawn.
func obligationMet(pkg *Package, body *ast.BlockStmt, sums *summaries, c *funcCFG, spawnBlk *cfgBlock, spawnIdx int, ob oblig) bool {
	// Declared outside this scope: a parameter or captured variable — the
	// owner joins it. Fields are handled by the module-wide index instead.
	field, isField := fieldRootObj(ob.class)
	if !isField && (ob.class.Pos() < body.Pos() || ob.class.Pos() > body.End()) {
		return true
	}
	if isField {
		switch ob.kind {
		case obWait:
			if sums.waitedFields[field] {
				return true
			}
		case obRecv:
			if sums.receivedFields[field] {
				return true
			}
		case obClose:
			if sums.closedFields[field] {
				return true
			}
		}
		return false
	}
	// Escapes through a return: the caller receives the handle.
	escapes := false
	shallowWalk(body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || escapes {
			return true
		}
		ast.Inspect(ret, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok && pkg.Info.Uses[id] == ob.class {
				escapes = true
			}
			return true
		})
		return true
	})
	if escapes {
		return true
	}
	return joinsAllPaths(pkg, c, spawnBlk, spawnIdx, ob)
}

func fieldRootObj(o types.Object) (types.Object, bool) {
	if v, ok := o.(*types.Var); ok && v.IsField() {
		return v, true
	}
	return nil, false
}

// joinMatcher matches a single AST node performing ob's join.
func joinMatcher(pkg *Package, ob oblig) func(m ast.Node) bool {
	return func(m ast.Node) bool {
		switch n := m.(type) {
		case *ast.CallExpr:
			switch ob.kind {
			case obWait:
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok &&
					sel.Sel.Name == ob.join && rootObject(pkg.Info, sel.X) == ob.class {
					return true
				}
			case obClose:
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" &&
					isBuiltin(pkg.Info, n, "close") && len(n.Args) == 1 &&
					rootObject(pkg.Info, n.Args[0]) == ob.class {
					return true
				}
			}
		case *ast.UnaryExpr:
			if ob.kind == obRecv && n.Op == token.ARROW && rootObject(pkg.Info, n.X) == ob.class {
				return true
			}
		case *ast.SendStmt:
			if ob.kind == obClose && rootObject(pkg.Info, n.Chan) == ob.class {
				return true
			}
		}
		return false
	}
}

// joinsAllPaths is the flow check: does every CFG path from the spawn to
// exit pass a join node for ob?
func joinsAllPaths(pkg *Package, c *funcCFG, spawnBlk *cfgBlock, spawnIdx int, ob oblig) bool {
	match := joinMatcher(pkg, ob)

	// A deferred join runs at every exit. Deferred closures run
	// synchronously at exit, so the deep inspection is sound here.
	for _, d := range c.defers {
		found := false
		ast.Inspect(d, func(m ast.Node) bool {
			if match(m) {
				found = true
			}
			return true
		})
		if found {
			return true
		}
	}

	// Bare range-over-channel heads surface as expression nodes.
	matchNode := func(n ast.Node) bool {
		switch n.(type) {
		case *ast.DeferStmt, *ast.GoStmt:
			return false
		}
		if e, ok := n.(ast.Expr); ok && ob.kind == obRecv &&
			isChanExpr(pkg.Info, e) && rootObject(pkg.Info, e) == ob.class {
			return true
		}
		found := false
		shallowWalk(n, func(m ast.Node) bool {
			if match(m) {
				found = true
			}
			return true
		})
		return found
	}

	// First join node per block; -1 means the block joins before any of
	// its nodes (loop-head credit).
	joinAt := make(map[*cfgBlock]int)
	for _, blk := range c.blocks {
		for i, n := range blk.nodes {
			if matchNode(n) {
				joinAt[blk] = i
				break
			}
		}
	}
	// Credit a join inside a loop to the loop's head: the drain loop's
	// trip count is out of static reach, so entering the loop counts as
	// joining (`for i := 0; i < n; i++ { <-done }`).
	for head, stmt := range c.loopHead {
		if _, ok := joinAt[head]; ok {
			continue
		}
		for blk, i := range joinAt {
			if i < 0 {
				continue
			}
			pos := blk.nodes[i].Pos()
			if stmt.Pos() <= pos && pos <= stmt.End() {
				joinAt[head] = -1
				break
			}
		}
	}

	// The spawn's own block joins if a join node follows the spawn.
	if i, ok := joinAt[spawnBlk]; ok && i > spawnIdx {
		return true
	}
	// DFS from the spawn's successors; a join block absorbs the path, a
	// successor-less block terminated (os.Exit), reaching exit leaks.
	leak := false
	visited := make(map[*cfgBlock]bool)
	var dfs func(b *cfgBlock)
	dfs = func(b *cfgBlock) {
		if leak || visited[b] {
			return
		}
		visited[b] = true
		if _, ok := joinAt[b]; ok {
			return
		}
		if b == c.exit {
			leak = true
			return
		}
		for _, e := range b.succs {
			dfs(e.to)
		}
	}
	for _, e := range spawnBlk.succs {
		dfs(e.to)
	}
	return !leak
}

// lineKey identifies one source line for directive lookups.
type lineKey struct {
	file string
	line int
}

// directiveLines indexes the lines in pkg carrying the given comment
// directive (matched as a prefix, so rationale text may follow).
func directiveLines(l *Loader, pkg *Package, prefix string) map[lineKey]bool {
	lines := make(map[lineKey]bool)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(c.Text, prefix) {
					p := l.fset.Position(c.Pos())
					lines[lineKey{p.Filename, p.Line}] = true
				}
			}
		}
	}
	return lines
}
