package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the dataflow half of the flow-sensitive engine: a worklist
// solver over the CFGs built in cfg.go. Facts are finite sets of
// comparable keys; a problem chooses the lattice direction (may = union
// at merges, must = intersection), supplies the per-node transfer
// function, and may refine facts along condition-labeled edges (how
// retry-discipline learns that an error variable is nil on the
// `err == nil` branch).

// factSet is a finite set of analysis facts. nil is the empty set; the
// solver never mutates a set it handed out, so transfers must copy before
// writing (factSet.clone).
type factSet map[any]struct{}

func (f factSet) has(k any) bool {
	_, ok := f[k]
	return ok
}

func (f factSet) clone() factSet {
	out := make(factSet, len(f))
	for k := range f {
		out[k] = struct{}{}
	}
	return out
}

func (f factSet) equal(g factSet) bool {
	if len(f) != len(g) {
		return false
	}
	for k := range f {
		if !g.has(k) {
			return false
		}
	}
	return true
}

func (f factSet) union(g factSet) factSet {
	if len(g) == 0 {
		return f
	}
	if len(f) == 0 {
		return g
	}
	out := f.clone()
	for k := range g {
		out[k] = struct{}{}
	}
	return out
}

func (f factSet) intersect(g factSet) factSet {
	out := make(factSet)
	for k := range f {
		if g.has(k) {
			out[k] = struct{}{}
		}
	}
	return out
}

// flowProblem is one forward dataflow analysis.
type flowProblem interface {
	// transfer folds one CFG node into the incoming fact set and returns
	// the outgoing set (may alias the input when nothing changed).
	transfer(n ast.Node, in factSet) factSet
	// refine adjusts facts along a condition-labeled edge; called with
	// the edge's condition and polarity. Implementations that do not use
	// branch conditions simply return f.
	refine(cond ast.Expr, when bool, f factSet) factSet
	// must selects the merge: true = intersection (must-facts), false =
	// union (may-facts).
	must() bool
}

// blockFacts is the solver's fixpoint: the fact set at entry to each
// block. Blocks never reached keep no entry.
type blockFacts map[*cfgBlock]factSet

// runForward solves the problem to fixpoint over the CFG, starting from
// `init` at entry, and returns the per-block entry facts.
func runForward(c *funcCFG, p flowProblem, init factSet) blockFacts {
	in := make(blockFacts, len(c.blocks))
	in[c.entry] = init
	work := []*cfgBlock{c.entry}
	queued := map[*cfgBlock]bool{c.entry: true}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk] = false

		facts := in[blk]
		for _, n := range blk.nodes {
			facts = p.transfer(n, facts)
		}
		for _, e := range blk.succs {
			out := facts
			if e.cond != nil {
				out = p.refine(e.cond, e.when, out)
			}
			prev, seen := in[e.to]
			var merged factSet
			if !seen {
				merged = out
			} else if p.must() {
				merged = prev.intersect(out)
			} else {
				merged = prev.union(out)
			}
			if !seen || !merged.equal(prev) {
				in[e.to] = merged
				if !queued[e.to] {
					queued[e.to] = true
					work = append(work, e.to)
				}
			}
		}
	}
	return in
}

// visitFixpoint replays the transfer over every reached block at the
// solved fixpoint, invoking visit with each node and the facts holding
// immediately before it. This is where analyzers emit findings.
func visitFixpoint(c *funcCFG, p flowProblem, in blockFacts, visit func(n ast.Node, before factSet)) {
	for _, blk := range c.blocks {
		facts, reached := in[blk]
		if !reached {
			continue
		}
		for _, n := range blk.nodes {
			visit(n, facts)
			facts = p.transfer(n, facts)
		}
	}
}

// condFact is an atomic truth a condition-labeled edge implies: obj
// compared against nil, and whether the edge proves it nil.
type condFact struct {
	obj   any // types.Object of the compared identifier chain root
	isNil bool
}

// nilCondFacts decomposes a branch condition into the nil-comparison
// facts its polarity implies. Taking the true edge of `a && b` implies
// everything a and b imply; the false edge of `a || b` implies the
// negation of both disjuncts; `!x` flips polarity. Only comparisons of a
// trackable identifier chain against nil produce facts.
func nilCondFacts(pkg *Package, cond ast.Expr, when bool, ident func(ast.Expr) any) []condFact {
	cond = ast.Unparen(cond)
	switch c := cond.(type) {
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			return nilCondFacts(pkg, c.X, !when, ident)
		}
	case *ast.BinaryExpr:
		switch {
		case c.Op == token.LAND && when:
			return append(nilCondFacts(pkg, c.X, true, ident), nilCondFacts(pkg, c.Y, true, ident)...)
		case c.Op == token.LOR && !when:
			return append(nilCondFacts(pkg, c.X, false, ident), nilCondFacts(pkg, c.Y, false, ident)...)
		case c.Op == token.EQL || c.Op == token.NEQ:
			x, y := ast.Unparen(c.X), ast.Unparen(c.Y)
			var target ast.Expr
			if isNilIdent(pkg, x) {
				target = y
			} else if isNilIdent(pkg, y) {
				target = x
			} else {
				return nil
			}
			obj := ident(target)
			if obj == nil {
				return nil
			}
			// `x == nil` on the true edge (or != nil on the false edge)
			// proves nil.
			isNil := (c.Op == token.EQL) == when
			return []condFact{{obj: obj, isNil: isNil}}
		}
	}
	return nil
}

func isNilIdent(pkg *Package, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := pkg.Info.Uses[id].(*types.Nil)
	return isNil
}
