package lint

import (
	"go/ast"
	"go/types"
)

// analyzeRetry enforces retry discipline in the configured scope
// (Config.RetryScope, the cluster layer): a loop that re-issues work
// after a failure must (a) classify the failure as transient through a
// configured classifier (Config.RetryClassifiers, e.g.
// ShardError.Retryable) before looping, and (b) consume a context
// deadline (ctx.Err() or <-ctx.Done()) so the retries cannot outlive the
// fleet's budget.
//
// A retry loop is detected by dataflow, not pattern-matching: a non-range
// `for` whose back edge can be taken while an error-typed local may still
// be non-nil. The may-non-nil fact is generated when a call's error is
// assigned, killed on branch edges that prove the value nil
// (nil-condition refinement), and killed by non-call reassignment. Loops
// that bail out on every failure (`if err != nil { return err }`) never
// carry the fact around the back edge and are exempt — only loops that
// actually go around again holding a failure answer for the protocol.
func analyzeRetry(l *Loader, pkgs []*Package, cfg Config) []Finding {
	if len(cfg.RetryScope) == 0 {
		return nil
	}
	classifiers := make(map[string]bool, len(cfg.RetryClassifiers))
	for _, c := range cfg.RetryClassifiers {
		classifiers[c] = true
	}
	var findings []Finding
	for _, pkg := range pkgs {
		if !inScope(pkg, cfg.RetryScope) {
			continue
		}
		eachFuncBody(pkg, true, func(decl *ast.FuncDecl, _ *ast.FuncType, body *ast.BlockStmt) {
			tracked := trackedErrVars(pkg, body)
			if len(tracked) == 0 {
				return
			}
			c := buildCFG(pkg, body)
			prob := &nonNilProblem{pkg: pkg, tracked: tracked}
			in := runForward(c, prob, factSet{})
			for head, stmt := range c.loopHead {
				fs, ok := stmt.(*ast.ForStmt)
				if !ok {
					continue // range loops iterate a fixed collection, not a retry budget
				}
				if !backEdgeCarriesError(pkg, prob, c, in, head, fs) {
					continue
				}
				if !loopCalls(pkg, fs, func(fn *types.Func) bool { return classifiers[qualifiedName(fn)] }) {
					findings = append(findings, l.finding(fs.Pos(), RuleRetry,
						"retry loop re-issues without classifying the failure as transient; gate the retry on a configured classifier (e.g. ShardError.Retryable)"))
				}
				if !loopConsumesCtx(pkg, fs) {
					findings = append(findings, l.finding(fs.Pos(), RuleRetry,
						"retry loop does not consume a context deadline; check ctx.Err() or select on ctx.Done() between attempts"))
				}
			}
		})
	}
	return findings
}

// backEdgeCarriesError reports whether some edge back to the loop head
// can carry a may-non-nil error fact: the loop re-issues after a failure.
// Back edges are the head's predecessors whose blocks hold nodes inside
// the loop statement (the pre-header sits outside it).
func backEdgeCarriesError(pkg *Package, prob *nonNilProblem, c *funcCFG, in blockFacts, head *cfgBlock, loop *ast.ForStmt) bool {
	for _, blk := range c.blocks {
		facts, reached := in[blk]
		if !reached {
			continue
		}
		edgesToHead := false
		for _, e := range blk.succs {
			if e.to == head {
				edgesToHead = true
			}
		}
		if !edgesToHead || !blockInside(blk, loop) {
			continue
		}
		for _, n := range blk.nodes {
			facts = prob.transfer(n, facts)
		}
		for _, e := range blk.succs {
			if e.to != head {
				continue
			}
			out := facts
			if e.cond != nil {
				out = prob.refine(e.cond, e.when, out)
			}
			if len(out) > 0 {
				return true
			}
		}
	}
	return false
}

// blockInside reports whether the block holds at least one node
// positioned inside the loop statement's source range.
func blockInside(blk *cfgBlock, loop *ast.ForStmt) bool {
	for _, n := range blk.nodes {
		if loop.Pos() <= n.Pos() && n.Pos() <= loop.End() {
			return true
		}
	}
	return false
}

// loopCalls reports whether any call inside the loop satisfies pred.
func loopCalls(pkg *Package, loop *ast.ForStmt, pred func(fn *types.Func) bool) bool {
	found := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFunc(pkg.Info, call); fn != nil && pred(fn) {
			found = true
		}
		return true
	})
	return found
}

// loopConsumesCtx reports whether the loop observes a context deadline:
// a ctx.Err() call or a receive from ctx.Done() anywhere inside it.
func loopConsumesCtx(pkg *Package, loop *ast.ForStmt) bool {
	found := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Err" && sel.Sel.Name != "Done") {
			return true
		}
		if tv, ok := pkg.Info.Types[sel.X]; ok && tv.Type != nil && isContextType(tv.Type) {
			found = true
		}
		return true
	})
	return found
}

// nonNilProblem: facts are tracked error locals that may hold a non-nil
// call result. MAY lattice; nil-proving branch edges kill.
type nonNilProblem struct {
	pkg     *Package
	tracked map[*types.Var]bool
}

func (p *nonNilProblem) must() bool { return false }

func (p *nonNilProblem) refine(cond ast.Expr, when bool, f factSet) factSet {
	facts := nilCondFacts(p.pkg, cond, when, func(e ast.Expr) any {
		if v := identVar(p.pkg, e); v != nil && p.tracked[v] {
			return v
		}
		return nil
	})
	out := f
	for _, cf := range facts {
		if cf.isNil && out.has(cf.obj) {
			if sameSet(out, f) {
				out = f.clone()
			}
			delete(out, cf.obj)
		}
	}
	return out
}

func (p *nonNilProblem) transfer(n ast.Node, in factSet) factSet {
	as, ok := n.(*ast.AssignStmt)
	if !ok {
		return in
	}
	out := in
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			continue
		}
		v := identVar(p.pkg, id)
		if v == nil || !p.tracked[v] {
			continue
		}
		if sameSet(out, in) {
			out = in.clone()
		}
		if assignGensError(p.pkg, as, i) {
			out[v] = struct{}{}
		} else {
			delete(out, v)
		}
	}
	return out
}
