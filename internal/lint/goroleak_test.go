package lint

import (
	"strings"
	"testing"
)

func TestGoroLeakWaitOnAllPathsClean(t *testing.T) {
	fs := runFixture(t, Config{}, map[string]string{
		"f.go": `package fixture

import "sync"

func F(n int) {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() { defer wg.Done() }()
	}
	wg.Wait()
}
`,
	})
	wantCount(t, fs, RuleGoroLeak, 0)
}

func TestGoroLeakWaitMissingOnEarlyReturn(t *testing.T) {
	fs := runFixture(t, Config{}, map[string]string{
		"f.go": `package fixture

import "sync"

func F(n int, bail bool) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done() }()
	if bail {
		return
	}
	wg.Wait()
}
`,
	})
	got := wantCount(t, fs, RuleGoroLeak, 1)
	if !strings.Contains(got[0].Message, "every path") {
		t.Errorf("want a not-joined-on-every-path finding: %s", got[0].Message)
	}
}

func TestGoroLeakChannelJoinClean(t *testing.T) {
	fs := runFixture(t, Config{}, map[string]string{
		"f.go": `package fixture

func F() int {
	done := make(chan int)
	go func() { done <- 1 }()
	return <-done
}
`,
	})
	wantCount(t, fs, RuleGoroLeak, 0)
}

func TestGoroLeakChannelNeverReceived(t *testing.T) {
	fs := runFixture(t, Config{}, map[string]string{
		"f.go": `package fixture

func F() {
	done := make(chan int)
	go func() { done <- 1 }()
}
`,
	})
	got := wantCount(t, fs, RuleGoroLeak, 1)
	if !strings.Contains(got[0].Message, "goroutine") {
		t.Errorf("leaked sender must be flagged: %s", got[0].Message)
	}
}

func TestGoroLeakNoJoinHandleAtAll(t *testing.T) {
	fs := runFixture(t, Config{}, map[string]string{
		"f.go": `package fixture

func F() {
	go func() { println("orphan") }()
}
`,
	})
	got := wantCount(t, fs, RuleGoroLeak, 1)
	if !strings.Contains(got[0].Message, "no join handle") {
		t.Errorf("handle-less goroutine must be flagged as such: %s", got[0].Message)
	}
}

func TestGoroLeakFireAndForgetAnnotation(t *testing.T) {
	fs := runFixture(t, Config{}, map[string]string{
		"f.go": `package fixture

func F() {
	//skewlint:fire-and-forget -- metrics flush; process exit reaps it
	go func() { println("orphan") }()
}
`,
	})
	wantCount(t, fs, RuleGoroLeak, 0)
}

func TestGoroLeakDrainLoopCredited(t *testing.T) {
	// The drain loop might run zero times for n == 0, but the analyzer
	// conservatively credits a join that lives inside a loop on the path.
	fs := runFixture(t, Config{}, map[string]string{
		"f.go": `package fixture

func F(n int) {
	done := make(chan int, n)
	for i := 0; i < n; i++ {
		go func() { done <- 1 }()
	}
	for i := 0; i < n; i++ {
		<-done
	}
}
`,
	})
	wantCount(t, fs, RuleGoroLeak, 0)
}

func TestGoroLeakDeferredWaitJoinsEveryPath(t *testing.T) {
	fs := runFixture(t, Config{}, map[string]string{
		"f.go": `package fixture

import "sync"

func F(bail bool) {
	var wg sync.WaitGroup
	wg.Add(1)
	defer wg.Wait()
	go func() { defer wg.Done() }()
	if bail {
		return
	}
}
`,
	})
	wantCount(t, fs, RuleGoroLeak, 0)
}

func TestGoroLeakFieldWaitGroupJoinedElsewhere(t *testing.T) {
	// Spawn marks s.wg done; Close waits. The module-wide join index must
	// connect them across method boundaries.
	fs := runFixture(t, Config{}, map[string]string{
		"f.go": `package fixture

import "sync"

type S struct{ wg sync.WaitGroup }

func (s *S) Spawn() {
	s.wg.Add(1)
	go func() { defer s.wg.Done() }()
}

func (s *S) Close() {
	s.wg.Wait()
}
`,
	})
	wantCount(t, fs, RuleGoroLeak, 0)
}

func TestGoroLeakReturnedHandleEscapes(t *testing.T) {
	// The channel escapes to the caller, which owns the join obligation.
	fs := runFixture(t, Config{}, map[string]string{
		"f.go": `package fixture

func F() chan int {
	done := make(chan int)
	go func() { done <- 1 }()
	return done
}
`,
	})
	wantCount(t, fs, RuleGoroLeak, 0)
}

func TestGoroLeakConfiguredSpawner(t *testing.T) {
	cfg := Config{LeakSpawners: map[string]string{"fixture.Group.Go": "Wait"}}
	files := func(tail string) map[string]string {
		return map[string]string{
			"f.go": `package fixture

type Group struct{}

func (g *Group) Go(fn func()) {}
func (g *Group) Wait()        {}

func Use() {
	var g Group
	g.Go(func() {})
` + tail + `}
`,
		}
	}
	fs := runFixture(t, cfg, files("\tg.Wait()\n"))
	wantCount(t, fs, RuleGoroLeak, 0)

	fs = runFixture(t, cfg, files(""))
	got := wantCount(t, fs, RuleGoroLeak, 1)
	if !strings.Contains(got[0].Message, "Go") {
		t.Errorf("unjoined spawner call must name the spawner: %s", got[0].Message)
	}
}
