package lint

import (
	"strings"
	"testing"
)

func TestLockOrderCycleFlagged(t *testing.T) {
	fs := runFixture(t, Config{}, map[string]string{
		"p.go": `package fixture

import "sync"

type P struct{ a, b sync.Mutex }

func F(p *P) {
	p.a.Lock()
	p.b.Lock()
	p.b.Unlock()
	p.a.Unlock()
}

func G(p *P) {
	p.b.Lock()
	p.a.Lock()
	p.a.Unlock()
	p.b.Unlock()
}
`,
	})
	got := wantCount(t, fs, RuleLockOrder, 1)
	if !strings.Contains(got[0].Message, "cycle") {
		t.Errorf("want an acquisition-cycle finding, got: %s", got[0].Message)
	}
	if !strings.Contains(got[0].Message, "P.a") || !strings.Contains(got[0].Message, "P.b") {
		t.Errorf("cycle finding should name both lock classes: %s", got[0].Message)
	}
}

func TestLockOrderConsistentOrderClean(t *testing.T) {
	fs := runFixture(t, Config{}, map[string]string{
		"p.go": `package fixture

import "sync"

type P struct{ a, b sync.Mutex }

func F(p *P) {
	p.a.Lock()
	p.b.Lock()
	p.b.Unlock()
	p.a.Unlock()
}

func G(p *P) {
	p.a.Lock()
	p.b.Lock()
	p.b.Unlock()
	p.a.Unlock()
}
`,
	})
	wantCount(t, fs, RuleLockOrder, 0)
}

func TestLockOrderCycleThroughCallSummary(t *testing.T) {
	fs := runFixture(t, Config{}, map[string]string{
		"p.go": `package fixture

import "sync"

type P struct{ a, b sync.Mutex }

func F(p *P) {
	p.a.Lock()
	lockB(p)
	p.a.Unlock()
}

func lockB(p *P) {
	p.b.Lock()
	p.b.Unlock()
}

func G(p *P) {
	p.b.Lock()
	lockA(p)
	p.b.Unlock()
}

func lockA(p *P) {
	p.a.Lock()
	p.a.Unlock()
}
`,
	})
	got := wantCount(t, fs, RuleLockOrder, 1)
	if !strings.Contains(got[0].Message, "cycle") {
		t.Errorf("want a cycle found through one-level call summaries: %s", got[0].Message)
	}
}

func TestLockOrderReleaseBreaksEdge(t *testing.T) {
	// F releases a before taking b, G the reverse: no lock is ever held
	// while the other is acquired, so there is no ordering edge at all.
	fs := runFixture(t, Config{}, map[string]string{
		"p.go": `package fixture

import "sync"

type P struct{ a, b sync.Mutex }

func F(p *P) {
	p.a.Lock()
	p.a.Unlock()
	p.b.Lock()
	p.b.Unlock()
}

func G(p *P) {
	p.b.Lock()
	p.b.Unlock()
	p.a.Lock()
	p.a.Unlock()
}
`,
	})
	wantCount(t, fs, RuleLockOrder, 0)
}

// ringFixture is the cluster router's gate-admission pattern distilled: a
// family of gates acquired member-by-member. The acquire-order directive
// declares a total order; the analyzer must verify it.
func ringFixture(admitAll string) map[string]string {
	return map[string]string{
		"r.go": `package fixture

import "context"

type Gate struct{}

func (g *Gate) Acquire(ctx context.Context, n int) error { return nil }
func (g *Gate) Release(n int)                            {}

type Ring struct{ gates []*Gate }

` + admitAll,
	}
}

func ringConfig() Config {
	return Config{LockAcquirers: []string{"fixture.Gate.Acquire"}}
}

func TestLockOrderRingRangeLoopWithDirectiveClean(t *testing.T) {
	fs := runFixture(t, ringConfig(), ringFixture(`
//skewlint:acquire-order ring -- gates are ranged in ring order
func (r *Ring) AdmitAll(ctx context.Context) error {
	for _, g := range r.gates {
		if err := g.Acquire(ctx, 1); err != nil {
			return err
		}
	}
	return nil
}
`))
	wantCount(t, fs, RuleLockOrder, 0)
}

func TestLockOrderRingWithoutDirectiveFlagged(t *testing.T) {
	fs := runFixture(t, ringConfig(), ringFixture(`
func (r *Ring) AdmitAll(ctx context.Context) error {
	for _, g := range r.gates {
		if err := g.Acquire(ctx, 1); err != nil {
			return err
		}
	}
	return nil
}
`))
	got := wantCount(t, fs, RuleLockOrder, 1)
	if !strings.Contains(got[0].Message, "acquire-order") {
		t.Errorf("undeclared family acquisition should point at the directive: %s", got[0].Message)
	}
}

// TestLockOrderRingReorderedIndicesFlagged is the acceptance fixture from
// the issue: reordering two gate acquisitions under a declared total order
// must fail, and the ascending version must stay clean.
func TestLockOrderRingReorderedIndicesFlagged(t *testing.T) {
	fs := runFixture(t, ringConfig(), ringFixture(`
//skewlint:acquire-order ring -- hand-unrolled ring order
func (r *Ring) AdmitPair(ctx context.Context) error {
	if err := r.gates[1].Acquire(ctx, 1); err != nil {
		return err
	}
	if err := r.gates[0].Acquire(ctx, 1); err != nil {
		return err
	}
	return nil
}
`))
	got := wantCount(t, fs, RuleLockOrder, 1)
	if !strings.Contains(got[0].Message, "order") {
		t.Errorf("reordered gate acquisition must be flagged: %s", got[0].Message)
	}
}

func TestLockOrderRingAscendingIndicesClean(t *testing.T) {
	fs := runFixture(t, ringConfig(), ringFixture(`
//skewlint:acquire-order ring -- hand-unrolled ring order
func (r *Ring) AdmitPair(ctx context.Context) error {
	if err := r.gates[0].Acquire(ctx, 1); err != nil {
		return err
	}
	if err := r.gates[1].Acquire(ctx, 1); err != nil {
		return err
	}
	return nil
}
`))
	wantCount(t, fs, RuleLockOrder, 0)
}

func TestLockOrderDeferredUnlockStillOrders(t *testing.T) {
	// defer mu.Unlock() releases at exit, not at the defer statement: the
	// a→b edge from F and b→a from G must still form a cycle.
	fs := runFixture(t, Config{}, map[string]string{
		"p.go": `package fixture

import "sync"

type P struct{ a, b sync.Mutex }

func F(p *P) {
	p.a.Lock()
	defer p.a.Unlock()
	p.b.Lock()
	defer p.b.Unlock()
}

func G(p *P) {
	p.b.Lock()
	defer p.b.Unlock()
	p.a.Lock()
	defer p.a.Unlock()
}
`,
	})
	wantCount(t, fs, RuleLockOrder, 1)
}
