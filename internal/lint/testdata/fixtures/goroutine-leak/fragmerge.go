package fixture

import "sync"

// fragMerge models the split executor's fragment-and-replicate merge: two
// backend legs fill per-leg summaries that are merged after the join.
// The CPU leg is correctly joined through the WaitGroup; the GPU leg is
// fired with no join handle, so the merge can read its summary before the
// leg wrote it — the leak the analyzer must flag.
func fragMerge() (int, int) {
	var cpuSum, gpuSum int
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		cpuSum = 1
	}()
	go func() {
		gpuSum = 2
	}()
	wg.Wait()
	return cpuSum, gpuSum
}
