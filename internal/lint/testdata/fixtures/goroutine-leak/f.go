package fixture

func orphan() {
	go func() { println("orphan") }()
}
