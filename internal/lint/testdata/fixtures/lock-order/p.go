package fixture

import "sync"

type P struct{ a, b sync.Mutex }

func first(p *P) {
	p.a.Lock()
	p.b.Lock()
	p.b.Unlock()
	p.a.Unlock()
}

func second(p *P) {
	p.b.Lock()
	p.a.Lock()
	p.a.Unlock()
	p.b.Unlock()
}
