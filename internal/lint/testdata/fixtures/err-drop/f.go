package fixture

import "os"

func purge(name string) {
	os.Remove(name)
}
