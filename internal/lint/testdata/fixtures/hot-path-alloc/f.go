package fixture

//skewlint:hotpath
func hot(xs []int) map[int]int {
	m := make(map[int]int)
	for _, x := range xs {
		m[x]++
	}
	return m
}
