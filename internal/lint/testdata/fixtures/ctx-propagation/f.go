package fixture

func Launch(n int) {
	done := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		go func() { done <- struct{}{} }()
	}
	for i := 0; i < n; i++ {
		<-done
	}
}
