package fixture

import "sync"

type Counter struct {
	mu sync.Mutex
	n  int //skewlint:guarded-by mu
}

func (c *Counter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *Counter) Peek() int { return c.n }
