package fixture

import "sync/atomic"

type S struct{ n int64 }

func Inc(s *S) { atomic.AddInt64(&s.n, 1) }

func Read(s *S) int64 { return s.n }
