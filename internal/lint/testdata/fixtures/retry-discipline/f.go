package fixture

import "context"

type E struct{}

func (e *E) Error() string   { return "e" }
func (e *E) Retryable() bool { return true }

func attempt(ctx context.Context) error { return nil }

func do(ctx context.Context) error {
	var err error
	for i := 0; i < 3; i++ {
		err = attempt(ctx)
		if err == nil {
			return nil
		}
	}
	return err
}
