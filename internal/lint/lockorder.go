package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// analyzeLockOrder builds a global lock-acquisition graph and reports
// orderings that can deadlock.
//
// Lock classes are declared variables or struct fields (rootObject): every
// sync.Mutex/RWMutex plus the configured acquirer receivers (the admission
// gates). Within each function a MAY-held forward dataflow tracks which
// classes can be held at each node; acquiring class B while A may be held
// adds the edge A→B. One level of interprocedural reasoning comes from
// call summaries: calling a function whose body acquires B counts as
// acquiring B here, and a callee that returns still holding a class (the
// admitAll shape) extends the caller's held set. //skewlint:guarded-by
// annotations label guard mutexes in cycle reports, tying the graph back
// to the data each lock protects.
//
// A cycle in the finished graph is a finding. So is acquiring a class
// while another instance of the same class may already be held — the
// per-shard gate family — unless the function declares
// //skewlint:acquire-order AND its acquisition sites are provably
// ordered: a single range loop over the family (ring order), or literal
// indices that strictly ascend in source order. A declared order with
// sites that do not ascend is itself a finding; this is how the cluster
// router's ring invariant is machine-checked rather than trusted.
func analyzeLockOrder(l *Loader, pkgs []*Package, model *lockModel, sums *summaries) []Finding {
	var findings []Finding

	edges := make(map[lockEdge]token.Pos)
	addEdge := func(from, to types.Object, pos token.Pos) {
		if from == to {
			return
		}
		e := lockEdge{from, to}
		if prev, ok := edges[e]; !ok || pos < prev {
			edges[e] = pos
		}
	}

	// Guard labels from //skewlint:guarded-by, for cycle messages.
	guardOf := make(map[types.Object][]string)
	for _, pkg := range pkgs {
		var scratch []Finding // annotation errors are analyzeLocks's findings
		for f, mu := range collectGuards(l, pkg, &scratch) {
			guardOf[mu] = append(guardOf[mu], f.Name())
		}
	}

	for _, pkg := range pkgs {
		eachFuncBody(pkg, true, func(decl *ast.FuncDecl, _ *ast.FuncType, body *ast.BlockStmt) {
			declared := hasDirective(decl.Doc, "skewlint:acquire-order")
			sites := acquisitionSites(pkg, model, body)
			cfg := buildCFG(pkg, body)
			prob := &heldProblem{pkg: pkg, model: model, sums: sums}
			in := runForward(cfg, prob, factSet{})

			type selfAcq struct {
				class types.Object
				pos   token.Pos
			}
			var selfs []selfAcq
			visitFixpoint(cfg, prob, in, func(n ast.Node, before factSet) {
				switch n.(type) {
				case *ast.DeferStmt, *ast.GoStmt:
					return // runs at exit / in another goroutine
				}
				held := before.clone()
				shallowWalk(n, func(m ast.Node) bool {
					call, ok := m.(*ast.CallExpr)
					if !ok {
						return true
					}
					if acq, ok := model.classifyLockCall(pkg, call); ok {
						if acq.release {
							delete(held, acq.class)
							return true
						}
						if held.has(acq.class) {
							selfs = append(selfs, selfAcq{acq.class, acq.sel.Pos()})
						}
						for h := range held {
							addEdge(h.(types.Object), acq.class, acq.sel.Pos())
						}
						held[acq.class] = struct{}{}
						return true
					}
					if fn := calleeFunc(pkg.Info, call); fn != nil {
						if sum, ok := sums.funcs[fn]; ok {
							for a := range sum.acquires {
								if held.has(a) {
									findings = append(findings, l.finding(call.Pos(), RuleLockOrder,
										"call to %s acquires lock class %s while an instance may already be held",
										fn.Name(), classLabel(a)))
								}
								for h := range held {
									addEdge(h.(types.Object), a, call.Pos())
								}
							}
							for a := range sum.heldAtExit {
								held[a] = struct{}{}
							}
						}
					}
					return true
				})
			})

			reported := make(map[types.Object]bool)
			for _, s := range selfs {
				if reported[s.class] {
					continue
				}
				reported[s.class] = true
				ordered, why := orderedSites(sites[s.class])
				switch {
				case declared && ordered:
					// The declared order holds; the family acquisition is safe.
				case declared:
					findings = append(findings, l.finding(s.pos, RuleLockOrder,
						"%s declares skewlint:acquire-order but its acquisitions of %s are not provably ordered: %s",
						scopeName(decl), classLabel(s.class), why))
				default:
					findings = append(findings, l.finding(s.pos, RuleLockOrder,
						"lock class %s acquired while an instance may already be held; order the family and declare //skewlint:acquire-order",
						classLabel(s.class)))
				}
			}
		})
	}

	// Cycle detection over the finished graph.
	findings = append(findings, lockCycles(l, edges, guardOf)...)
	return findings
}

// lockEdge is one observed ordering: from held while to acquired.
type lockEdge struct{ from, to types.Object }

// heldProblem is the MAY-held lattice: the set of lock classes that can be
// held entering each node. Union at merges keeps loop-carried holds alive,
// which is what exposes the per-shard gate family's self-acquisition.
type heldProblem struct {
	pkg   *Package
	model *lockModel
	sums  *summaries
}

func (p *heldProblem) must() bool { return false }

func (p *heldProblem) refine(cond ast.Expr, when bool, f factSet) factSet { return f }

func (p *heldProblem) transfer(n ast.Node, in factSet) factSet {
	switch n.(type) {
	case *ast.DeferStmt, *ast.GoStmt:
		// Deferred releases run at exit, not here; spawned goroutines hold
		// their locks on their own stack.
		return in
	}
	out := in
	mutate := func() factSet {
		if sameSet(out, in) {
			out = in.clone()
		}
		return out
	}
	shallowWalk(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if acq, ok := p.model.classifyLockCall(p.pkg, call); ok {
			if acq.release {
				delete(mutate(), acq.class)
			} else {
				mutate()[acq.class] = struct{}{}
			}
			return true
		}
		if fn := calleeFunc(p.pkg.Info, call); fn != nil {
			if sum, ok := p.sums.funcs[fn]; ok {
				for a := range sum.heldAtExit {
					mutate()[a] = struct{}{}
				}
			}
		}
		return true
	})
	return out
}

// sameSet reports whether a and b are the same underlying map (cheap
// copy-on-write identity test, not equality).
func sameSet(a, b factSet) bool {
	if len(a) != len(b) {
		return false
	}
	return len(a) == 0 || a.equal(b)
}

// acqSite is one direct acquisition of a class in a function body.
type acqSite struct {
	pos     token.Pos
	index   int  // literal index in the receiver chain (gates[0])
	hasLit  bool // index is an integer literal
	inRange bool // site sits inside a range-loop body of this scope
}

// acquisitionSites collects each class's direct acquisitions in body, in
// source order, with the evidence orderedSites needs.
func acquisitionSites(pkg *Package, model *lockModel, body *ast.BlockStmt) map[types.Object][]acqSite {
	var ranges []*ast.RangeStmt
	shallowWalk(body, func(n ast.Node) bool {
		if rs, ok := n.(*ast.RangeStmt); ok {
			ranges = append(ranges, rs)
		}
		return true
	})
	inRange := func(pos token.Pos) bool {
		for _, rs := range ranges {
			if rs.Body.Pos() <= pos && pos <= rs.Body.End() {
				return true
			}
		}
		return false
	}
	sites := make(map[types.Object][]acqSite)
	shallowWalk(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		acq, ok := model.classifyLockCall(pkg, call)
		if !ok || acq.release {
			return true
		}
		s := acqSite{pos: acq.sel.Pos(), inRange: inRange(acq.sel.Pos())}
		s.index, s.hasLit = literalIndex(acq.sel.X)
		sites[acq.class] = append(sites[acq.class], s)
		return true
	})
	for _, ss := range sites {
		sort.Slice(ss, func(i, j int) bool { return ss[i].pos < ss[j].pos })
	}
	return sites
}

// literalIndex finds an integer-literal index in the receiver chain
// (gates[2].mu → 2).
func literalIndex(e ast.Expr) (int, bool) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			if lit, ok := ast.Unparen(x.Index).(*ast.BasicLit); ok && lit.Kind == token.INT {
				if v, err := strconv.Atoi(lit.Value); err == nil {
					return v, true
				}
			}
			e = x.X
		default:
			return 0, false
		}
	}
}

// orderedSites decides whether a class's acquisition sites are provably
// ordered: every site inside a range loop (the family is walked in index
// order), or every site indexed by strictly ascending integer literals.
func orderedSites(sites []acqSite) (bool, string) {
	if len(sites) == 0 {
		return false, "no direct acquisition sites in this function"
	}
	allRange, allLit := true, true
	for _, s := range sites {
		allRange = allRange && s.inRange
		allLit = allLit && s.hasLit
	}
	if allRange {
		return true, ""
	}
	if allLit {
		for i := 1; i < len(sites); i++ {
			if sites[i].index <= sites[i-1].index {
				return false, "literal indices do not strictly ascend in source order"
			}
		}
		return true, ""
	}
	return false, "sites are neither all inside a range loop nor all literal-indexed"
}

// lockCycles runs Tarjan's SCC over the acquisition graph and reports each
// strongly connected component of more than one class.
func lockCycles(l *Loader, edges map[lockEdge]token.Pos, guardOf map[types.Object][]string) []Finding {
	succs := make(map[types.Object][]types.Object)
	var nodes []types.Object
	seen := make(map[types.Object]bool)
	note := func(o types.Object) {
		if !seen[o] {
			seen[o] = true
			nodes = append(nodes, o)
		}
	}
	for e := range edges {
		note(e.from)
		note(e.to)
		succs[e.from] = append(succs[e.from], e.to)
	}
	sort.Slice(nodes, func(i, j int) bool { return classLabel(nodes[i]) < classLabel(nodes[j]) })
	for _, ss := range succs {
		sort.Slice(ss, func(i, j int) bool { return classLabel(ss[i]) < classLabel(ss[j]) })
	}

	index := make(map[types.Object]int)
	low := make(map[types.Object]int)
	onStack := make(map[types.Object]bool)
	var stack []types.Object
	var sccs [][]types.Object
	next := 0
	var strongconnect func(v types.Object)
	strongconnect = func(v types.Object) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range succs[v] {
			if _, ok := index[w]; !ok {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []types.Object
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			if len(scc) > 1 {
				sccs = append(sccs, scc)
			}
		}
	}
	for _, v := range nodes {
		if _, ok := index[v]; !ok {
			strongconnect(v)
		}
	}

	var findings []Finding
	for _, scc := range sccs {
		member := make(map[types.Object]bool, len(scc))
		labels := make([]string, 0, len(scc))
		for _, o := range scc {
			member[o] = true
			lbl := classLabel(o)
			if fields := guardOf[o]; len(fields) > 0 {
				sort.Strings(fields)
				lbl += " (guards " + strings.Join(fields, ", ") + ")"
			}
			labels = append(labels, lbl)
		}
		sort.Strings(labels)
		pos := token.Pos(0)
		for e, p := range edges {
			if member[e.from] && member[e.to] && (pos == 0 || p < pos) {
				pos = p
			}
		}
		findings = append(findings, l.finding(pos, RuleLockOrder,
			"lock classes form an acquisition cycle: %s; pick one global order",
			strings.Join(labels, " ⇄ ")))
	}
	return findings
}

// classLabel names a lock class for messages: Struct.field for fields,
// plain name otherwise.
func classLabel(o types.Object) string {
	if v, ok := o.(*types.Var); ok && v.IsField() {
		return fieldLabel(v)
	}
	return o.Name()
}

// scopeName names the analysis scope for messages.
func scopeName(decl *ast.FuncDecl) string {
	if decl == nil {
		return "function literal"
	}
	return decl.Name.Name
}
