package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeFixture materialises a throwaway single-module fixture on disk and
// returns its root directory.
func writeFixture(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module fixture\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for name, src := range files {
		p := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// loadFixture materialises a fixture and loads every package in it.
func loadFixture(t *testing.T, files map[string]string) (*Loader, []*Package) {
	t.Helper()
	dir := writeFixture(t, files)
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return l, pkgs
}

// runFixture loads a fixture and runs the analyzers with cfg.
func runFixture(t *testing.T, cfg Config, files map[string]string) []Finding {
	t.Helper()
	l, pkgs := loadFixture(t, files)
	return Run(l, pkgs, cfg)
}

// byRule filters findings down to one analyzer.
func byRule(fs []Finding, rule string) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Analyzer == rule {
			out = append(out, f)
		}
	}
	return out
}

func wantCount(t *testing.T, fs []Finding, rule string, n int) []Finding {
	t.Helper()
	got := byRule(fs, rule)
	if len(got) != n {
		t.Fatalf("want %d %s finding(s), got %d: %v", n, rule, len(got), got)
	}
	return got
}

func TestAtomicMixedAccessFlagged(t *testing.T) {
	fs := runFixture(t, Config{}, map[string]string{
		"s.go": `package fixture

import "sync/atomic"

type S struct{ n int64 }

func Inc(s *S) { atomic.AddInt64(&s.n, 1) }

func Read(s *S) int64 { return s.n }
`,
	})
	got := wantCount(t, fs, RuleAtomic, 1)
	if !strings.Contains(got[0].Message, "S.n") {
		t.Errorf("finding should name the field S.n: %s", got[0].Message)
	}
	if got[0].Line != 9 {
		t.Errorf("finding should point at the plain read (line 9), got line %d", got[0].Line)
	}
}

func TestAtomicConsistentAccessClean(t *testing.T) {
	fs := runFixture(t, Config{}, map[string]string{
		"s.go": `package fixture

import "sync/atomic"

type S struct{ n int64 }

func Inc(s *S) { atomic.AddInt64(&s.n, 1) }

func Read(s *S) int64 { return atomic.LoadInt64(&s.n) }
`,
	})
	wantCount(t, fs, RuleAtomic, 0)
}

func TestAtomicWrapperMisuseFlagged(t *testing.T) {
	fs := runFixture(t, Config{}, map[string]string{
		"s.go": `package fixture

import "sync/atomic"

type S struct{ c atomic.Int64 }

func Get(s *S) int64 { return s.c.Load() }

func Snapshot(s *S) atomic.Int64 { return s.c }
`,
	})
	got := wantCount(t, fs, RuleAtomic, 1)
	if got[0].Line != 9 {
		t.Errorf("only the wrapper copy (line 9) should be flagged, got line %d", got[0].Line)
	}
}

func TestCtxMissingOnGoroutineSpawn(t *testing.T) {
	fs := runFixture(t, Config{}, map[string]string{
		"f.go": `package fixture

func Launch(n int) {
	done := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		go func() { done <- struct{}{} }()
	}
	for i := 0; i < n; i++ {
		<-done
	}
}

func launch() { go func() {}() }
`,
	})
	got := wantCount(t, fs, RuleCtx, 1)
	if !strings.Contains(got[0].Message, "Launch") {
		t.Errorf("unexported launch must not be flagged, only Launch: %s", got[0].Message)
	}
}

func TestCtxAcceptedButNeverForwarded(t *testing.T) {
	fs := runFixture(t, Config{}, map[string]string{
		"f.go": `package fixture

import "context"

func Launch(ctx context.Context) {
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}
`,
	})
	got := wantCount(t, fs, RuleCtx, 1)
	if !strings.Contains(got[0].Message, "never forwards") {
		t.Errorf("want a never-forwards finding, got: %s", got[0].Message)
	}
}

func TestCtxForwardedClean(t *testing.T) {
	fs := runFixture(t, Config{}, map[string]string{
		"f.go": `package fixture

import "context"

func Launch(ctx context.Context) error {
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
	return ctx.Err()
}
`,
	})
	wantCount(t, fs, RuleCtx, 0)
}

func TestCtxConfigFieldConvention(t *testing.T) {
	fs := runFixture(t, Config{}, map[string]string{
		"f.go": `package fixture

import "context"

type Config struct {
	Threads int
	Ctx     context.Context
}

func Run(cfg Config) {
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
	if cfg.Ctx != nil {
		_ = cfg.Ctx.Err()
	}
}

func RunIgnoring(cfg Config) {
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}
`,
	})
	got := wantCount(t, fs, RuleCtx, 1)
	if !strings.Contains(got[0].Message, "RunIgnoring") {
		t.Errorf("Run forwards cfg.Ctx and must be clean; want RunIgnoring flagged: %s", got[0].Message)
	}
	if !strings.Contains(got[0].Message, "cfg.Ctx") {
		t.Errorf("finding should name the ignored config field cfg.Ctx: %s", got[0].Message)
	}
}

func TestCtxSpawnerCallAndAllowlist(t *testing.T) {
	cfg := Config{
		CtxSpawners:  []string{"fixture.Fan"},
		CtxAllowlist: []string{"fixture.Fan"},
	}
	fs := runFixture(t, cfg, map[string]string{
		"f.go": `package fixture

import "sync"

func Fan(n int, fn func(int)) {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) { defer wg.Done(); fn(i) }(i)
	}
	wg.Wait()
}

func Uses(n int) {
	Fan(n, func(int) {})
}
`,
	})
	got := wantCount(t, fs, RuleCtx, 1)
	if !strings.Contains(got[0].Message, "Uses") || !strings.Contains(got[0].Message, "Fan") {
		t.Errorf("allowlisted Fan must be clean; Uses must be flagged for calling it: %s", got[0].Message)
	}
}

func TestHotPathAllocations(t *testing.T) {
	body := `(xs []int) string {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, x)
	}
	var bad []int
	bad = append(bad, 1)
	m := map[int]int{}
	mm := make(map[int]int)
	_, _ = m, mm
	_ = time.Now()
	return fmt.Sprint(out, bad)
}
`
	fs := runFixture(t, Config{}, map[string]string{
		"f.go": `package fixture

import (
	"fmt"
	"time"
)

//skewlint:hotpath
func Hot` + body + `
func Cold` + body,
	})
	got := wantCount(t, fs, RuleHotPath, 5)
	for _, f := range got {
		if !strings.Contains(f.Message, "Hot") {
			t.Errorf("unmarked Cold must not be flagged: %s", f.Message)
		}
	}
	// The preallocated append (out) must not be among the findings.
	for _, f := range got {
		if f.Line == 10 {
			t.Errorf("append to preallocated slice must be clean: %v", f)
		}
	}
}

func TestLockDiscipline(t *testing.T) {
	fs := runFixture(t, Config{}, map[string]string{
		"c.go": `package fixture

import "sync"

type Counter struct {
	mu sync.Mutex
	n  int //skewlint:guarded-by mu
}

func (c *Counter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *Counter) Peek() int { return c.n }

func (c *Counter) bumpLocked() { c.n++ }
`,
	})
	got := wantCount(t, fs, RuleLock, 1)
	if !strings.Contains(got[0].Message, "Peek") {
		t.Errorf("only Peek should be flagged (Inc locks, bumpLocked is conventioned): %s", got[0].Message)
	}
}

func TestLockDirectiveErrors(t *testing.T) {
	fs := runFixture(t, Config{}, map[string]string{
		"c.go": `package fixture

type MissingGuard struct {
	n int //skewlint:guarded-by mu
}

type NotAMutex struct {
	g int
	n int //skewlint:guarded-by g
}
`,
	})
	got := wantCount(t, fs, RuleLock, 2)
	if !strings.Contains(got[0].Message, "not a sibling field") {
		t.Errorf("unknown guard should be reported: %s", got[0].Message)
	}
	if !strings.Contains(got[1].Message, "not a sync.Mutex") {
		t.Errorf("non-mutex guard should be reported: %s", got[1].Message)
	}
}

func TestSuppression(t *testing.T) {
	fs := runFixture(t, Config{}, map[string]string{
		"f.go": `package fixture

func SameLine(n int) { //skewlint:ignore ctx-propagation -- deliberate fire-and-forget
	go func() {}()
}

//skewlint:ignore
func LineAbove(n int) { go func() {}() }

func WrongRule(n int) { //skewlint:ignore hot-path-alloc
	go func() {}()
}
`,
	})
	got := wantCount(t, fs, RuleCtx, 1)
	if !strings.Contains(got[0].Message, "WrongRule") {
		t.Errorf("only WrongRule should survive (its ignore names another rule): %s", got[0].Message)
	}
}

// TestRepositoryIsClean runs the full configured analysis over this module
// — the same check `make lint` gates on — so a violation introduced
// anywhere in the repo fails the ordinary test suite too.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("expected to load the whole module, got %d packages", len(pkgs))
	}
	cfg := DefaultConfig()
	cfg.ReportUnusedIgnores = true // stale suppressions fail the gate too
	for _, f := range Run(l, pkgs, cfg) {
		t.Errorf("unexpected finding: %s", f)
	}
}
