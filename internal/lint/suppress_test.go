package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// ignoredFixture has one real finding (ctx-propagation) suppressed by an
// ignore directive, in a package below the module root.
var ignoredFixture = map[string]string{
	"sub/f.go": `package sub

func Launch(n int) { //skewlint:ignore ctx-propagation -- test fixture
	go func() {}()
}
`,
}

// TestSuppressionFromSubdirectory is the regression test for the
// absolute-vs-relative key mismatch: a loader rooted via a subdirectory of
// the module must still match ignore directives against findings.
func TestSuppressionFromSubdirectory(t *testing.T) {
	dir := writeFixture(t, ignoredFixture)
	// Start the loader from the subdirectory, the way a developer running
	// `skewlint ./...` from inside internal/... would.
	l, err := NewLoader(filepath.Join(dir, "sub"))
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if l.ModuleRoot != dir {
		t.Fatalf("loader must root at the module, got %s", l.ModuleRoot)
	}
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	fs := Run(l, pkgs, Config{})
	wantCount(t, fs, RuleCtx, 0)
}

func TestUnusedIgnoreReported(t *testing.T) {
	cfg := Config{ReportUnusedIgnores: true}
	fs := runFixture(t, cfg, map[string]string{
		"f.go": `package fixture

//skewlint:ignore hot-path-alloc -- stale: nothing here allocates
func Quiet() {}

func Launch(n int) { //skewlint:ignore ctx-propagation -- live suppression
	go func() {}()
}
`,
	})
	got := wantCount(t, fs, RuleUnusedIgnore, 1)
	if !strings.Contains(got[0].Message, "hot-path-alloc") {
		t.Errorf("the stale directive should be named; the live one spared: %s", got[0].Message)
	}
	wantCount(t, fs, RuleCtx, 0)
}

func TestUnusedIgnoreOffByDefault(t *testing.T) {
	fs := runFixture(t, Config{}, map[string]string{
		"f.go": `package fixture

//skewlint:ignore hot-path-alloc -- stale
func Quiet() {}
`,
	})
	wantCount(t, fs, RuleUnusedIgnore, 0)
}

func TestUnusedIgnoreBlanketDirective(t *testing.T) {
	cfg := Config{ReportUnusedIgnores: true}
	fs := runFixture(t, cfg, map[string]string{
		"f.go": `package fixture

//skewlint:ignore
func Quiet() {}
`,
	})
	got := wantCount(t, fs, RuleUnusedIgnore, 1)
	if !strings.Contains(got[0].Message, "all rules") {
		t.Errorf("a blanket ignore should read as suppressing all rules: %s", got[0].Message)
	}
}
