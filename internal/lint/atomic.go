package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// analyzeAtomic enforces atomic-consistency: once a struct field is
// accessed through sync/atomic anywhere in the program, every access must
// be atomic. Mixed atomic/plain access is exactly the data race the race
// detector only catches when both sides happen to run in one test.
//
// Two field flavours are covered:
//
//   - fields of a sync/atomic wrapper type (atomic.Int64, atomic.Bool, …):
//     the field may only appear as the receiver of a method call or have
//     its address taken; assigning or copying the wrapper bypasses the
//     atomicity (and smuggles a stale value out).
//   - plain integer fields passed to sync/atomic functions
//     (atomic.AddUint64(&s.n, 1)): every other read or write of that
//     field must also go through sync/atomic.
//
// Atomic use sites are collected across all loaded packages first, so a
// field counts as atomic no matter which package performs the atomic
// access; the plain-access scan is then limited to cfg.AtomicScope.
func analyzeAtomic(l *Loader, pkgs []*Package, cfg Config) []Finding {
	// Pass 1: find fields used through sync/atomic functions, and the
	// selector nodes of those sanctioned uses.
	atomicUse := make(map[*types.Var]token.Pos) // field -> first atomic use
	sanctioned := make(map[*ast.SelectorExpr]bool)
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				fn := calleeFunc(pkg.Info, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" ||
					fn.Type().(*types.Signature).Recv() != nil || !isAtomicAccessFunc(fn.Name()) {
					return true
				}
				addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
				if !ok || addr.Op != token.AND {
					return true
				}
				sel, ok := ast.Unparen(addr.X).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if v := fieldVarOf(pkg.Info, sel); v != nil {
					if _, seen := atomicUse[v]; !seen {
						atomicUse[v] = sel.Pos()
					}
					sanctioned[sel] = true
				}
				return true
			})
		}
	}

	// Pass 2: flag plain accesses of atomically-used fields and misuse of
	// atomic wrapper fields.
	var findings []Finding
	for _, pkg := range pkgs {
		if !inScope(pkg, cfg.AtomicScope) {
			continue
		}
		for _, file := range pkg.Files {
			walkParents(file, func(n ast.Node, stack []ast.Node) {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return
				}
				v := fieldVarOf(pkg.Info, sel)
				if v == nil {
					return
				}
				if usePos, isAtomic := atomicUse[v]; isAtomic && !sanctioned[sel] {
					findings = append(findings, l.finding(sel.Pos(), RuleAtomic,
						"field %s is accessed with sync/atomic at %s; this plain access races with it",
						fieldLabel(v), l.relPosition(usePos)))
					return
				}
				if name, ok := atomicWrapperType(v.Type()); ok && !wrapperUseOK(pkg.Info, sel, stack) {
					findings = append(findings, l.finding(sel.Pos(), RuleAtomic,
						"field %s has type atomic.%s and must be used only through its methods (plain assignment or copy drops atomicity)",
						fieldLabel(v), name))
				}
			})
		}
	}
	return findings
}

// fieldLabel renders a field as Type.name for messages.
func fieldLabel(v *types.Var) string {
	name := v.Name()
	if v.Pkg() != nil {
		// Walk the package scope for the named type declaring this field,
		// purely to improve the message; fall back to the bare name.
		scope := v.Pkg().Scope()
		for _, tn := range scope.Names() {
			obj, ok := scope.Lookup(tn).(*types.TypeName)
			if !ok {
				continue
			}
			st, ok := obj.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				if st.Field(i) == v {
					return obj.Name() + "." + name
				}
			}
		}
	}
	return name
}

// atomicWrapperType reports whether t is one of sync/atomic's wrapper
// types (Int32, Uint64, Bool, Pointer[T], Value, …) and returns its name.
func atomicWrapperType(t types.Type) (string, bool) {
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return "", false
	}
	return obj.Name(), true
}

// wrapperUseOK reports whether a selector naming an atomic-wrapper field
// appears in a sanctioned position: as the receiver of a method call
// (f.Load(), f.Add(1)) or with its address taken (&f, passing the wrapper
// by pointer keeps a single shared instance).
func wrapperUseOK(info *types.Info, sel *ast.SelectorExpr, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	switch parent := stack[len(stack)-1].(type) {
	case *ast.SelectorExpr:
		// f is the X of parent: parent must select a method of the
		// wrapper (f.Load, f.CompareAndSwap, …).
		if parent.X == sel {
			if _, ok := info.Uses[parent.Sel].(*types.Func); ok {
				return true
			}
		}
	case *ast.UnaryExpr:
		if parent.Op == token.AND && parent.X == sel {
			return true
		}
	case *ast.ParenExpr:
		// Unwrap one level: (&(f)) etc. Re-check against the grandparent.
		return wrapperUseOK(info, sel, stack[:len(stack)-1])
	}
	return false
}

// atomicFuncPrefixes guards against future sync/atomic additions being
// missed: any top-level sync/atomic function starting with one of these
// performs an atomic memory access through its pointer argument.
var atomicFuncPrefixes = []string{"Add", "And", "Or", "Load", "Store", "Swap", "CompareAndSwap"}

func isAtomicAccessFunc(name string) bool {
	for _, p := range atomicFuncPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}
