package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// analyzeHotPath enforces allocation discipline inside functions marked
// with a //skewlint:hotpath directive — the partition scatter loops, the
// probe/emit loops, and the output ring writers, where a single stray
// allocation per tuple turns a memory-bound loop into a GC benchmark.
// Inside a marked function (closures included) it flags:
//
//   - any call into the fmt package (formatting allocates),
//   - time.Now (a vDSO call per tuple is still a call per tuple; hot
//     paths are timed by their callers at phase granularity),
//   - map allocation (make(map...) or a map literal), and
//   - append to a slice that was not preallocated with make in the same
//     function (growth reallocations inside the loop).
//
// The directive goes on the function declaration's doc comment:
//
//	//skewlint:hotpath
//	func scatterDirect(...) { ... }
func analyzeHotPath(l *Loader, pkgs []*Package) []Finding {
	var findings []Finding
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !hasDirective(fd.Doc, "skewlint:hotpath") {
					continue
				}
				findings = append(findings, checkHotPathFunc(l, pkg, fd)...)
			}
		}
	}
	return findings
}

// hasDirective reports whether the comment group contains the given
// //-directive (exact word, optionally followed by arguments).
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text, ok := strings.CutPrefix(c.Text, "//"+directive)
		if ok && (text == "" || text[0] == ' ' || text[0] == '\t') {
			return true
		}
	}
	return false
}

func checkHotPathFunc(l *Loader, pkg *Package, fd *ast.FuncDecl) []Finding {
	// First pass: locals preallocated via make (any form; make with an
	// explicit length or capacity is what the rule is after, and make is
	// only legal with one for slices).
	prealloc := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, rhs := range assign.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isBuiltin(pkg.Info, call, "make") {
				continue
			}
			if id, ok := assign.Lhs[i].(*ast.Ident); ok {
				if obj := identObject(pkg.Info, id); obj != nil {
					prealloc[obj] = true
				}
			}
		}
		return true
	})

	var findings []Finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := calleeFunc(pkg.Info, n); fn != nil && fn.Pkg() != nil {
				switch {
				case fn.Pkg().Path() == "fmt":
					findings = append(findings, l.finding(n.Pos(), RuleHotPath,
						"fmt.%s call in hot-path function %s (formatting allocates per call)", fn.Name(), fd.Name.Name))
				case fn.Pkg().Path() == "time" && fn.Name() == "Now":
					findings = append(findings, l.finding(n.Pos(), RuleHotPath,
						"time.Now in hot-path function %s; time at phase granularity in the caller instead", fd.Name.Name))
				}
				return true
			}
			switch {
			case isBuiltin(pkg.Info, n, "make") && len(n.Args) > 0 && isMapType(pkg.Info, n.Args[0]):
				findings = append(findings, l.finding(n.Pos(), RuleHotPath,
					"map allocation in hot-path function %s", fd.Name.Name))
			case isBuiltin(pkg.Info, n, "append"):
				if len(n.Args) > 0 && !appendTargetPreallocated(pkg.Info, n.Args[0], prealloc) {
					findings = append(findings, l.finding(n.Pos(), RuleHotPath,
						"append without preallocated capacity in hot-path function %s (make the slice with a capacity first)", fd.Name.Name))
				}
			}
		case *ast.CompositeLit:
			if isMapType(pkg.Info, n) {
				findings = append(findings, l.finding(n.Pos(), RuleHotPath,
					"map literal allocation in hot-path function %s", fd.Name.Name))
			}
		}
		return true
	})
	return findings
}

// isBuiltin reports whether call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// isMapType reports whether the expression's type is a map.
func isMapType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, ok = tv.Type.Underlying().(*types.Map)
	return ok
}

// identObject resolves an identifier to its object, whether this mention
// defines it (:=) or uses it (=).
func identObject(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// appendTargetPreallocated reports whether append's destination is a
// local slice preallocated with make in the same function.
func appendTargetPreallocated(info *types.Info, dst ast.Expr, prealloc map[types.Object]bool) bool {
	id, ok := ast.Unparen(dst).(*ast.Ident)
	if !ok {
		return false
	}
	obj := identObject(info, id)
	return obj != nil && prealloc[obj]
}
