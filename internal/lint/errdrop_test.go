package lint

import (
	"strings"
	"testing"
)

func TestErrDropBareCallFlagged(t *testing.T) {
	fs := runFixture(t, Config{}, map[string]string{
		"f.go": `package fixture

import "os"

func F(name string) {
	os.Remove(name)
}
`,
	})
	got := wantCount(t, fs, RuleErrDrop, 1)
	if !strings.Contains(got[0].Message, "Remove") {
		t.Errorf("bare-call finding should name the callee: %s", got[0].Message)
	}
}

func TestErrDropAllowlistAndDefer(t *testing.T) {
	fs := runFixture(t, Config{ErrDropAllowlist: []string{"os.Remove"}}, map[string]string{
		"f.go": `package fixture

import "os"

func F(name string) {
	os.Remove(name) // allowlisted
	f, err := os.Open(name)
	if err != nil {
		return
	}
	defer f.Close() // deferred cleanup is exempt
	_ = f
}
`,
	})
	wantCount(t, fs, RuleErrDrop, 0)
}

func TestErrDropBlankDiscardFlagged(t *testing.T) {
	fs := runFixture(t, Config{}, map[string]string{
		"f.go": `package fixture

import "os"

func F(name string) *os.File {
	_ = os.Remove(name)
	f, _ := os.Open(name)
	return f
}
`,
	})
	got := wantCount(t, fs, RuleErrDrop, 2)
	for _, f := range got {
		if !strings.Contains(f.Message, "_") {
			t.Errorf("blank-discard finding expected: %s", f.Message)
		}
	}
}

func TestErrDropOverwrittenBeforeChecked(t *testing.T) {
	fs := runFixture(t, Config{}, map[string]string{
		"f.go": `package fixture

import "os"

func F(a, b string) error {
	err := os.Remove(a)
	err = os.Remove(b)
	return err
}
`,
	})
	got := wantCount(t, fs, RuleErrDrop, 1)
	if !strings.Contains(got[0].Message, "overwritten") {
		t.Errorf("want an overwritten-before-checked finding: %s", got[0].Message)
	}
	if got[0].Line != 7 {
		t.Errorf("finding should point at the overwriting assignment (line 7), got %d", got[0].Line)
	}
}

func TestErrDropUnreadAtExit(t *testing.T) {
	fs := runFixture(t, Config{}, map[string]string{
		"f.go": `package fixture

import "os"

func F(name string) {
	err := os.Remove(name)
	_ = 0
	if false {
		println(err)
	}
}
`,
	})
	// The err is read only under `if false`: on the other path it reaches
	// exit unread.
	got := wantCount(t, fs, RuleErrDrop, 1)
	if !strings.Contains(got[0].Message, "never checked on some path") {
		t.Errorf("want an unread-at-exit finding: %s", got[0].Message)
	}
}

func TestErrDropCheckedEverywhereClean(t *testing.T) {
	fs := runFixture(t, Config{}, map[string]string{
		"f.go": `package fixture

import "os"

func F(a, b string) error {
	if err := os.Remove(a); err != nil {
		return err
	}
	err := os.Remove(b)
	return err
}
`,
	})
	wantCount(t, fs, RuleErrDrop, 0)
}

func TestErrDropNamedResultBareReturnClean(t *testing.T) {
	// A bare return reads the named result err; nothing is dropped.
	fs := runFixture(t, Config{}, map[string]string{
		"f.go": `package fixture

import "os"

func F(name string) (err error) {
	err = os.Remove(name)
	return
}
`,
	})
	wantCount(t, fs, RuleErrDrop, 0)
}

func TestErrDropVoidFuncBareReturnStillFlagged(t *testing.T) {
	// In a void function, `return` reads nothing: the pending err is lost.
	fs := runFixture(t, Config{}, map[string]string{
		"f.go": `package fixture

import "os"

func F(name string, bail bool) {
	err := os.Remove(name)
	if bail {
		return
	}
	println(err)
}
`,
	})
	got := wantCount(t, fs, RuleErrDrop, 1)
	if !strings.Contains(got[0].Message, "never checked on some path") {
		t.Errorf("bare return in a void func must not discharge err: %s", got[0].Message)
	}
}

func TestErrDropCapturedVarNotTracked(t *testing.T) {
	// err is captured by a closure: writes through the alias are out of
	// reach, so the flow tier must stay silent.
	fs := runFixture(t, Config{}, map[string]string{
		"f.go": `package fixture

import "os"

func F(name string) func() {
	err := os.Remove(name)
	return func() { println(err) }
}
`,
	})
	wantCount(t, fs, RuleErrDrop, 0)
}
