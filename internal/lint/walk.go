package lint

import "go/ast"

// walkParents traverses root in depth-first order, invoking fn with every
// node and the stack of its ancestors (stack[len-1] is the direct
// parent). The stack is reused between calls; callers must not retain it.
func walkParents(root ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}
