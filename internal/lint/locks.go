package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// analyzeLocks enforces lock-discipline: a struct field annotated with
//
//	mu    sync.Mutex
//	count int //skewlint:guarded-by mu
//
// may only be touched inside a function that locks that mutex (any
// mu.Lock() or mu.RLock() call in the function body — the check is
// flow-insensitive) or whose name ends in "Locked", the project's
// calling convention for helpers that require the lock to be held by the
// caller. Struct composite literals are exempt: a value under
// construction is not yet shared.
//
// The directive may sit in the field's doc comment or its trailing
// same-line comment; the named guard must be a sibling field of type
// sync.Mutex or sync.RWMutex.
func analyzeLocks(l *Loader, pkgs []*Package) []Finding {
	var findings []Finding
	for _, pkg := range pkgs {
		guards := collectGuards(l, pkg, &findings)
		if len(guards) == 0 {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				findings = append(findings, checkLockFunc(l, pkg, fd, guards)...)
			}
		}
	}
	return findings
}

// collectGuards maps each annotated field to its guarding mutex field.
// Annotation errors (unknown guard, guard that is not a mutex) are
// reported as findings so a typo cannot silently disable the rule.
func collectGuards(l *Loader, pkg *Package, findings *[]Finding) map[*types.Var]*types.Var {
	guards := make(map[*types.Var]*types.Var)
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				guardName, ok := guardDirective(field)
				if !ok {
					continue
				}
				mu := findSibling(pkg, st, guardName)
				if mu == nil {
					*findings = append(*findings, l.finding(field.Pos(), RuleLock,
						"guarded-by names %q, which is not a sibling field of this struct", guardName))
					continue
				}
				if !isMutexType(mu.Type()) {
					*findings = append(*findings, l.finding(field.Pos(), RuleLock,
						"guarded-by names %q, which is not a sync.Mutex or sync.RWMutex", guardName))
					continue
				}
				for _, name := range field.Names {
					if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
						guards[v] = mu
					}
				}
			}
			return true
		})
	}
	return guards
}

// guardDirective extracts the //skewlint:guarded-by argument from a
// field's doc or trailing comment.
func guardDirective(field *ast.Field) (string, bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if rest, ok := strings.CutPrefix(c.Text, "//skewlint:guarded-by"); ok {
				name := strings.TrimSpace(rest)
				if name == "" {
					return "", false
				}
				return strings.Fields(name)[0], true
			}
		}
	}
	return "", false
}

// findSibling resolves a field name inside the same struct literal type.
func findSibling(pkg *Package, st *ast.StructType, name string) *types.Var {
	for _, field := range st.Fields.List {
		for _, id := range field.Names {
			if id.Name == name {
				if v, ok := pkg.Info.Defs[id].(*types.Var); ok {
					return v
				}
			}
		}
	}
	return nil
}

func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// checkLockFunc flags accesses to guarded fields inside fd when fd
// neither locks the guarding mutex anywhere in its body nor declares the
// held-lock convention with a name ending in "Locked".
func checkLockFunc(l *Loader, pkg *Package, fd *ast.FuncDecl, guards map[*types.Var]*types.Var) []Finding {
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		return nil
	}
	// Which mutexes does this function lock (flow-insensitively)?
	locked := make(map[*types.Var]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		if muSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
			if v := fieldVarOf(pkg.Info, muSel); v != nil {
				locked[v] = true
			}
		}
		return true
	})

	var findings []Finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		// Note: struct-literal keys (T{field: v}) are plain identifiers,
		// not selector expressions, so constructing a fresh value is
		// naturally exempt — only accesses through a value (x.field) are
		// selections.
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		v := fieldVarOf(pkg.Info, sel)
		if v == nil {
			return true
		}
		mu, guarded := guards[v]
		if !guarded || locked[mu] {
			return true
		}
		findings = append(findings, l.finding(sel.Pos(), RuleLock,
			"field %s is guarded by %q but %s neither locks it nor is named *Locked",
			fieldLabel(v), mu.Name(), fd.Name.Name))
		return true
	})
	return findings
}
