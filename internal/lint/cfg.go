package lint

import (
	"go/ast"
	"go/types"
)

// This file is the control-flow half of skewlint's flow-sensitive engine:
// an intraprocedural CFG built straight from go/ast, consumed by the
// dataflow solver in dataflow.go. Compound statements are decomposed —
// a block's nodes are simple statements and condition expressions only —
// so analyzer transfer functions can scan each node shallowly without
// double-seeing nested bodies.
//
// Conventions the analyzers rely on:
//
//   - Edges out of a condition node carry the condition expression and the
//     branch polarity (cond/when), so a dataflow problem can refine facts
//     on nil-comparison branches (retry-discipline does).
//   - Deferred statements are collected into funcCFG.defers and treated as
//     running at the exit block; a deferred wg.Wait or close(ch) therefore
//     joins every path.
//   - Calls that never return (panic, os.Exit, log.Fatal*, runtime.Goexit,
//     testing's FailNow family) end their block with no successors, so
//     paths through them are not paths to exit.
//   - Loop head blocks are recorded in funcCFG.loopHead with their source
//     loop statement, letting a path check treat "the join lives inside
//     this loop" conservatively (goroutine-leak does: a zero-trip drain
//     loop is statically indistinguishable from a matching one).
type funcCFG struct {
	blocks   []*cfgBlock
	entry    *cfgBlock
	exit     *cfgBlock
	defers   []*ast.DeferStmt
	loopHead map[*cfgBlock]ast.Stmt
}

// cfgBlock is one basic block: straight-line nodes then condition edges.
type cfgBlock struct {
	index int
	nodes []ast.Node
	succs []cfgEdge
}

// cfgEdge is a successor edge. cond == nil is an unconditional edge;
// otherwise the edge is taken when cond evaluates to `when`.
type cfgEdge struct {
	to   *cfgBlock
	cond ast.Expr
	when bool
}

// cfgBuilder threads the construction state: the block under append, the
// break/continue targets of the enclosing loops and switches, and label
// resolution.
type cfgBuilder struct {
	pkg *Package
	cfg *funcCFG
	cur *cfgBlock

	// breakTargets / continueTargets are stacks; the innermost target is
	// last. Each entry carries the optional statement label.
	breakTargets    []branchTarget
	continueTargets []branchTarget

	// pendingLabel is the label of a LabeledStmt applied to the next
	// loop/switch statement (for labeled break/continue).
	pendingLabel string

	gotoBlocks map[string]*cfgBlock   // label -> block starting at the label
	gotoFixups map[string][]*cfgBlock // unresolved goto sources
}

type branchTarget struct {
	label string
	block *cfgBlock
}

// buildCFG constructs the CFG of one function body. pkg supplies type
// information for terminating-call detection.
func buildCFG(pkg *Package, body *ast.BlockStmt) *funcCFG {
	c := &funcCFG{loopHead: make(map[*cfgBlock]ast.Stmt)}
	b := &cfgBuilder{
		pkg:        pkg,
		cfg:        c,
		gotoBlocks: make(map[string]*cfgBlock),
		gotoFixups: make(map[string][]*cfgBlock),
	}
	c.entry = b.newBlock()
	c.exit = b.newBlock()
	b.cur = c.entry
	b.stmtList(body.List)
	b.jump(c.exit)
	// Unresolved gotos (labels we never placed, which valid Go should not
	// produce) fall through to exit so the CFG stays connected.
	for _, srcs := range b.gotoFixups {
		for _, src := range srcs {
			src.succs = append(src.succs, cfgEdge{to: c.exit})
		}
	}
	return c
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{index: len(b.cfg.blocks)}
	b.cfg.blocks = append(b.cfg.blocks, blk)
	return blk
}

// jump ends the current block with an unconditional edge to target and
// leaves the builder with no current block (dead code until a new one
// starts).
func (b *cfgBuilder) jump(target *cfgBlock) {
	if b.cur != nil {
		b.cur.succs = append(b.cur.succs, cfgEdge{to: target})
	}
	b.cur = nil
}

// branch ends the current block with a two-way conditional edge.
func (b *cfgBuilder) branch(cond ast.Expr, yes, no *cfgBlock) {
	if b.cur != nil {
		b.cur.succs = append(b.cur.succs,
			cfgEdge{to: yes, cond: cond, when: true},
			cfgEdge{to: no, cond: cond, when: false})
	}
	b.cur = nil
}

// startBlock makes blk current, creating a fresh block if the caller
// passed nil (used after dead ends so trailing statements still land in
// some block, just an unreachable one).
func (b *cfgBuilder) startBlock(blk *cfgBlock) {
	if blk == nil {
		blk = b.newBlock()
	}
	b.cur = blk
}

func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		b.startBlock(nil)
	}
	b.cur.nodes = append(b.cur.nodes, n)
}

func (b *cfgBuilder) stmtList(stmts []ast.Stmt) {
	for _, s := range stmts {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		// Start a fresh block so gotos have a landing site, then build the
		// labeled statement with the label pending for break/continue.
		blk := b.newBlock()
		b.jump(blk)
		b.startBlock(blk)
		b.gotoBlocks[s.Label.Name] = blk
		for _, src := range b.gotoFixups[s.Label.Name] {
			src.succs = append(src.succs, cfgEdge{to: blk})
		}
		delete(b.gotoFixups, s.Label.Name)
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		thenBlk := b.newBlock()
		afterBlk := b.newBlock()
		elseBlk := afterBlk
		if s.Else != nil {
			elseBlk = b.newBlock()
		}
		b.branch(s.Cond, thenBlk, elseBlk)
		b.startBlock(thenBlk)
		b.stmtList(s.Body.List)
		b.jump(afterBlk)
		if s.Else != nil {
			b.startBlock(elseBlk)
			b.stmt(s.Else)
			b.jump(afterBlk)
		}
		b.startBlock(afterBlk)

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		post := head
		if s.Post != nil {
			post = b.newBlock()
		}
		b.cfg.loopHead[head] = s
		b.jump(head)
		b.startBlock(head)
		if s.Cond != nil {
			b.add(s.Cond)
			b.branch(s.Cond, body, after)
		} else {
			b.jump(body)
		}
		b.pushLoop(label, after, post)
		b.startBlock(body)
		b.stmtList(s.Body.List)
		b.popLoop()
		b.jump(post)
		if s.Post != nil {
			b.startBlock(post)
			b.stmt(s.Post)
			b.jump(head)
		}
		b.startBlock(after)

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		b.cfg.loopHead[head] = s
		b.jump(head)
		b.startBlock(head)
		b.add(s.X)
		head.succs = append(head.succs, cfgEdge{to: body}, cfgEdge{to: after})
		b.cur = nil
		b.pushLoop(label, after, head)
		b.startBlock(body)
		b.stmtList(s.Body.List)
		b.popLoop()
		b.jump(head)
		b.startBlock(after)

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.caseClauses(label, s.Body.List, func(cc *ast.CaseClause) {
			for _, e := range cc.List {
				b.add(e)
			}
		})

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.caseClauses(label, s.Body.List, func(cc *ast.CaseClause) {})

	case *ast.SelectStmt:
		label := b.takeLabel()
		after := b.newBlock()
		src := b.cur
		if src == nil {
			src = b.newBlock()
			b.cur = src
		}
		b.breakTargets = append(b.breakTargets, branchTarget{label: label, block: after})
		for _, cl := range s.Body.List {
			comm := cl.(*ast.CommClause)
			blk := b.newBlock()
			src.succs = append(src.succs, cfgEdge{to: blk})
			b.startBlock(blk)
			if comm.Comm != nil {
				b.stmt(comm.Comm)
			}
			b.stmtList(comm.Body)
			b.jump(after)
		}
		b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
		// A clause-less select{} blocks forever: src keeps no successors
		// and after stays unreachable, which is exactly right.
		b.cur = nil
		b.startBlock(after)

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.cfg.exit)

	case *ast.BranchStmt:
		b.add(s)
		b.branchStmt(s)

	case *ast.DeferStmt:
		b.add(s)
		b.cfg.defers = append(b.cfg.defers, s)

	case *ast.GoStmt, *ast.SendStmt, *ast.IncDecStmt, *ast.AssignStmt,
		*ast.ExprStmt, *ast.DeclStmt, *ast.EmptyStmt:
		b.add(s)
		if terminates(b.pkg, s) {
			b.cur = nil // no successors: this path never returns
		}

	default:
		// Anything unhandled is treated as a straight-line node.
		b.add(s)
	}
}

// caseClauses builds switch / type-switch clause blocks, including
// fallthrough to the next clause body.
func (b *cfgBuilder) caseClauses(label string, clauses []ast.Stmt, emitGuards func(cc *ast.CaseClause)) {
	after := b.newBlock()
	src := b.cur
	if src == nil {
		src = b.newBlock()
		b.cur = src
	}
	b.breakTargets = append(b.breakTargets, branchTarget{label: label, block: after})
	bodies := make([]*cfgBlock, len(clauses))
	hasDefault := false
	for i := range clauses {
		bodies[i] = b.newBlock()
		if clauses[i].(*ast.CaseClause).List == nil {
			hasDefault = true
		}
	}
	for i, cl := range clauses {
		cc := cl.(*ast.CaseClause)
		b.cur = src
		emitGuards(cc)
		src = b.cur // guards may not move blocks, but keep in sync
		src.succs = append(src.succs, cfgEdge{to: bodies[i]})
		b.startBlock(bodies[i])
		last := len(cc.Body) - 1
		fallsThrough := false
		for j, st := range cc.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" && j == last {
				fallsThrough = true
				break
			}
			b.stmt(st)
		}
		if fallsThrough && i+1 < len(bodies) {
			b.jump(bodies[i+1])
		} else {
			b.jump(after)
		}
	}
	if !hasDefault {
		src.succs = append(src.succs, cfgEdge{to: after})
	}
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
	b.cur = nil
	b.startBlock(after)
}

func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) pushLoop(label string, brk, cont *cfgBlock) {
	b.breakTargets = append(b.breakTargets, branchTarget{label: label, block: brk})
	b.continueTargets = append(b.continueTargets, branchTarget{label: label, block: cont})
}

func (b *cfgBuilder) popLoop() {
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
	b.continueTargets = b.continueTargets[:len(b.continueTargets)-1]
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	find := func(stack []branchTarget) *cfgBlock {
		if len(stack) == 0 {
			return nil
		}
		if s.Label == nil {
			return stack[len(stack)-1].block
		}
		for i := len(stack) - 1; i >= 0; i-- {
			if stack[i].label == s.Label.Name {
				return stack[i].block
			}
		}
		return nil
	}
	switch s.Tok.String() {
	case "break":
		if t := find(b.breakTargets); t != nil {
			b.jump(t)
			return
		}
	case "continue":
		if t := find(b.continueTargets); t != nil {
			b.jump(t)
			return
		}
	case "goto":
		if s.Label != nil {
			if t, ok := b.gotoBlocks[s.Label.Name]; ok {
				b.jump(t)
				return
			}
			// Forward goto: record the source block for fixup when the
			// label is placed.
			if b.cur != nil {
				b.gotoFixups[s.Label.Name] = append(b.gotoFixups[s.Label.Name], b.cur)
			}
			b.cur = nil
			return
		}
	}
	// fallthrough is handled by caseClauses; anything else dead-ends.
	b.cur = nil
}

// terminates reports whether the statement is a call that never returns:
// panic, os.Exit, runtime.Goexit, or the log.Fatal* family. Paths through
// such calls never reach the function's exit.
func terminates(pkg *Package, s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := ast.Unparen(es.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	if isBuiltin(pkg.Info, call, "panic") {
		return true
	}
	fn := calleeFunc(pkg.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "os":
		return fn.Name() == "Exit"
	case "runtime":
		return fn.Name() == "Goexit"
	case "log":
		switch fn.Name() {
		case "Fatal", "Fatalf", "Fatalln", "Panic", "Panicf", "Panicln":
			return true
		}
	}
	return false
}

// shallowWalk traverses n without descending into function literals, so a
// transfer function scanning one CFG node never sees the body of a
// closure that block merely defines or spawns.
func shallowWalk(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		return fn(m)
	})
}

// eachFuncBody visits every function body in the package: declarations
// and, when lits is true, each function literal as its own scope. The
// enclosing declaration is passed for messages and directives; ftype is
// the signature of the scope itself (the literal's own type for lits).
func eachFuncBody(pkg *Package, lits bool, visit func(decl *ast.FuncDecl, ftype *ast.FuncType, body *ast.BlockStmt)) {
	for _, file := range pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			visit(fd, fd.Type, fd.Body)
			if !lits {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					visit(fd, fl.Type, fl.Body)
				}
				return true
			})
		}
	}
}

// rootObject resolves the base object of a (possibly nested) selector /
// index / star / paren chain: for `rt.shards[i].adm` it is the deepest
// struct field that is a field var (adm); for `gates[0]` the local or
// package var gates; for `mu` the var mu. It is the abstraction lock and
// channel classes key on: one class per declared field or variable.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			if v := fieldVarOf(info, x); v != nil {
				return v
			}
			// Qualified identifier (pkg.Var) or method expr: use the Sel.
			if obj := info.Uses[x.Sel]; obj != nil {
				return obj
			}
			e = x.X
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		default:
			return nil
		}
	}
}
