package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one rule violation at a source position.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// String renders the finding in the driver's file:line: [analyzer] format.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Analyzer names, used in output, suppression comments, and Config.
const (
	RuleAtomic    = "atomic-consistency"
	RuleCtx       = "ctx-propagation"
	RuleHotPath   = "hot-path-alloc"
	RuleLock      = "lock-discipline"
	RuleLockOrder = "lock-order"
	RuleGoroLeak  = "goroutine-leak"
	RuleErrDrop   = "err-drop"
	RuleRetry     = "retry-discipline"
	// RuleUnusedIgnore is the pseudo-analyzer reporting stale
	// //skewlint:ignore directives; enabled by Config.ReportUnusedIgnores.
	RuleUnusedIgnore = "unused-ignore"
)

// Config tunes the analyzers.
type Config struct {
	// CtxSpawners are qualified names ("pkgpath.Func" or
	// "pkgpath.Type.Method") whose call sites count as spawning parallel
	// work for ctx-propagation, in addition to `go` statements.
	CtxSpawners []string
	// CtxAllowlist are qualified names of exported functions exempt from
	// ctx-propagation — the deliberate non-ctx primitives (e.g.
	// exec.Parallel itself).
	CtxAllowlist []string
	// AtomicScope restricts atomic-consistency's plain-access scan to
	// packages with one of these import-path prefixes (empty = all
	// loaded packages). Atomic use sites are collected everywhere
	// regardless, so a field is recognised as atomic no matter where the
	// atomic access lives.
	AtomicScope []string
	// LockAcquirers are qualified method names that count as lock
	// acquisitions for lock-order, in addition to sync.Mutex/RWMutex
	// Lock/RLock (e.g. the admission gate's Acquire).
	LockAcquirers []string
	// LeakSpawners maps spawner qualified names to the method on the same
	// receiver class that joins the spawned work (e.g. exec.Group.Go ->
	// "Wait"). Calls to a spawner obligate some reachable call to the join
	// method, just like `go` statements obligate their WaitGroup/channel
	// joins.
	LeakSpawners map[string]string
	// ErrDropAllowlist are qualified function names whose error result may
	// be discarded as a bare statement (e.g. fmt.Fprintf to an in-memory
	// buffer in rendering paths).
	ErrDropAllowlist []string
	// RetryScope restricts retry-discipline to packages with one of these
	// import-path prefixes (empty disables the analyzer — retry loops are
	// only a protocol concern in the cluster layer).
	RetryScope []string
	// RetryClassifiers are qualified method names that classify an error
	// as transiently retryable (e.g. cluster.ShardError.Retryable). A
	// retry loop must consult one before re-issuing.
	RetryClassifiers []string
	// ReportUnusedIgnores emits an unused-ignore finding for every
	// //skewlint:ignore directive that suppressed nothing this run.
	ReportUnusedIgnores bool
}

// DefaultConfig is the project configuration skewlint runs with: the
// exec package's non-ctx scheduling primitives are the explicit
// allowlist, and its queue-draining entry points are the spawner set.
func DefaultConfig() Config {
	const exec = "skewjoin/internal/exec"
	const cluster = "skewjoin/internal/cluster"
	const service = "skewjoin/internal/service"
	const ssj = "skewjoin/internal/ssj"
	return Config{
		CtxSpawners: []string{
			exec + ".Parallel",
			exec + ".ParallelCtx",
			exec + ".Queue.Drain",
			exec + ".Queue.DrainCtx",
			exec + ".MutexQueue.Drain",
			exec + ".MutexQueue.DrainCtx",
			exec + ".Group.Go",
			// The cluster router's shard fan-out spawns one goroutine per
			// shard; every closure it runs must take and pass the ctx so
			// a fleet deadline reaches each shard call.
			cluster + ".fanOut",
			// The streaming symmetric join's chunk-drain fan-out: its
			// workers run until the queue drains, the limit hook fires, or
			// the caller cancels — so every exported caller must accept
			// and forward a context.
			ssj + ".drainChunks",
			// The join-phase worker pool behind the CPU hash joins and the
			// split executor's CPU leg (including the fragment path, which
			// fans an oversized probe range into sub-tasks on the same
			// fetch-add queue): it blocks until its workers finish, so
			// every exported caller must accept a ctx and forward it for
			// the pool's cancellation checks to mean anything.
			"skewjoin/internal/joinphase.Run",
		},
		CtxAllowlist: []string{
			// The paper's scheduling shapes are deliberately ctx-free:
			// cancellation is layered on top via the *Ctx variants, and
			// the non-Ctx forms stay for callers that must not be
			// cancellable (e.g. oracle verification).
			exec + ".Parallel",
			exec + ".Queue.Drain",
			exec + ".MutexQueue.Drain",
			exec + ".Group.Go",
			// The join-phase benchmark drives joinphase.Run directly to
			// time it without option-plumbing overhead; benchmarks are
			// batch CLI drivers that run to completion by design (^C is
			// the cancellation story), so no ctx threads through them.
			"skewjoin/internal/bench.JoinBench",
		},
		LockAcquirers: []string{
			// The per-shard admission gate: Acquire blocks like a weighted
			// Lock, so its orderings feed the lock-order graph (the ring
			// invariant lives here).
			service + ".Admission.Acquire",
		},
		LeakSpawners: map[string]string{
			// Group.Go spawns a goroutine joined by Group.Wait on the same
			// group value.
			exec + ".Group.Go": "Wait",
		},
		ErrDropAllowlist: []string{
			// Terminal writes in CLI tools: a failed stdout write has no
			// recovery and the process is about to exit anyway.
			"fmt.Printf",
			"fmt.Println",
			"fmt.Print",
			"fmt.Fprintf",
			"fmt.Fprintln",
			"fmt.Fprint",
			// strings.Builder's Write* methods are documented to always
			// return a nil error.
			"strings.Builder.WriteString",
		},
		RetryScope: []string{cluster},
		RetryClassifiers: []string{
			cluster + ".ShardError.Retryable",
		},
	}
}

// Run executes every analyzer over the loaded packages and returns the
// surviving findings (suppressions applied) sorted by position.
func Run(l *Loader, pkgs []*Package, cfg Config) []Finding {
	var all []Finding
	all = append(all, analyzeAtomic(l, pkgs, cfg)...)
	all = append(all, analyzeCtx(l, pkgs, cfg)...)
	all = append(all, analyzeHotPath(l, pkgs)...)
	all = append(all, analyzeLocks(l, pkgs)...)
	model := newLockModel(cfg)
	sums := buildSummaries(pkgs, model)
	all = append(all, analyzeLockOrder(l, pkgs, model, sums)...)
	all = append(all, analyzeGoroLeak(l, pkgs, cfg, sums)...)
	all = append(all, analyzeErrDrop(l, pkgs, cfg)...)
	all = append(all, analyzeRetry(l, pkgs, cfg)...)
	all = suppress(l, pkgs, cfg, all)
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return all
}

// relFile renders a source filename relative to the module root with
// forward slashes (stable output regardless of invocation directory).
// Files outside the module keep their original path.
func (l *Loader) relFile(file string) string {
	if rel, err := filepath.Rel(l.ModuleRoot, file); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return file
}

// relPosition renders a cross-referenced position module-relative, so
// messages stay stable across checkouts.
func (l *Loader) relPosition(pos token.Pos) string {
	p := l.fset.Position(pos)
	return fmt.Sprintf("%s:%d:%d", l.relFile(p.Filename), p.Line, p.Column)
}

// finding builds a Finding at pos with the file path relative to the
// module root.
func (l *Loader) finding(pos token.Pos, analyzer, format string, args ...any) Finding {
	p := l.fset.Position(pos)
	return Finding{
		File:     l.relFile(p.Filename),
		Line:     p.Line,
		Col:      p.Column,
		Analyzer: analyzer,
		Message:  fmt.Sprintf(format, args...),
	}
}

// suppress drops findings covered by a //skewlint:ignore directive on the
// same line or the line directly above. A bare ignore suppresses every
// rule on that line; `//skewlint:ignore rule1 rule2` only the named ones.
// Directives and findings are both keyed by module-relative path, so
// matching is independent of the directory skewlint was invoked from.
// When cfg.ReportUnusedIgnores is set, every directive that suppressed
// nothing becomes an unused-ignore finding.
func suppress(l *Loader, pkgs []*Package, cfg Config, findings []Finding) []Finding {
	type key struct {
		file string
		line int
	}
	type directive struct {
		rules []string // nil = ignore all rules
		pos   token.Pos
		used  bool
	}
	ignores := make(map[key]*directive)
	var order []key // deterministic unused-ignore output
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//skewlint:ignore")
					if !ok {
						continue
					}
					p := l.fset.Position(c.Pos())
					rules := strings.FieldsFunc(text, func(r rune) bool { return r == ' ' || r == ',' || r == '\t' })
					// Keep rationale comments out of the rule list:
					// everything after " -- " is prose.
					for i, r := range rules {
						if r == "--" {
							rules = rules[:i]
							break
						}
					}
					k := key{file: l.relFile(p.Filename), line: p.Line}
					d, seen := ignores[k]
					if !seen {
						d = &directive{pos: c.Pos()}
						ignores[k] = d
						order = append(order, k)
					}
					if len(rules) == 0 {
						d.rules = nil
					} else {
						d.rules = append(d.rules, rules...)
					}
				}
			}
		}
	}
	matches := func(f Finding, line int) bool {
		d, ok := ignores[key{file: f.File, line: line}]
		if !ok {
			return false
		}
		if len(d.rules) == 0 {
			d.used = true
			return true
		}
		for _, r := range d.rules {
			if r == f.Analyzer {
				d.used = true
				return true
			}
		}
		return false
	}
	out := findings[:0]
	for _, f := range findings {
		if matches(f, f.Line) || matches(f, f.Line-1) {
			continue
		}
		out = append(out, f)
	}
	if cfg.ReportUnusedIgnores {
		for _, k := range order {
			d := ignores[k]
			if d.used {
				continue
			}
			what := "all rules"
			if len(d.rules) > 0 {
				what = strings.Join(d.rules, ", ")
			}
			out = append(out, l.finding(d.pos, RuleUnusedIgnore,
				"ignore directive for %s suppresses no finding; delete it", what))
		}
	}
	return out
}

// inScope reports whether pkg matches one of the import-path prefixes
// (empty prefixes = everything).
func inScope(pkg *Package, prefixes []string) bool {
	if len(prefixes) == 0 {
		return true
	}
	for _, p := range prefixes {
		if pkg.PkgPath == p || strings.HasPrefix(pkg.PkgPath, p+"/") {
			return true
		}
	}
	return false
}

// qualifiedName renders a function object as pkgpath.Func or
// pkgpath.Type.Method for matching against Config lists.
func qualifiedName(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return fn.Pkg().Path() + "." + named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// funcDeclQualifiedName renders a declaration's qualified name, matching
// qualifiedName's format.
func funcDeclQualifiedName(pkg *Package, decl *ast.FuncDecl) string {
	if obj, ok := pkg.Info.Defs[decl.Name].(*types.Func); ok {
		return qualifiedName(obj)
	}
	return pkg.PkgPath + "." + decl.Name.Name
}

// calleeFunc resolves a call expression to the function object it
// invokes, unwrapping parens; nil for indirect calls through variables.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// fieldVarOf resolves a selector expression to the struct field it
// denotes, or nil when it denotes anything else (method, package member,
// local, …).
func fieldVarOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
			return v
		}
	}
	// Qualified identifiers (pkg.Var) land in Uses, not Selections, and
	// are not fields; selections cover every genuine field access.
	return nil
}
