package lint

import (
	"strings"
	"testing"
)

// retryFixture provides the transient-error vocabulary the analyzer is
// configured with, plus one function under test.
func retryFixture(fn string) map[string]string {
	return map[string]string{
		"e.go": `package fixture

import "context"

type E struct{}

func (e *E) Error() string   { return "e" }
func (e *E) Retryable() bool { return true }

func attempt(ctx context.Context) error { return nil }
`,
		"f.go": "package fixture\n\nimport \"context\"\n\n" + fn,
	}
}

func retryCfg() Config {
	return Config{
		RetryScope:       []string{"fixture"},
		RetryClassifiers: []string{"fixture.E.Retryable"},
	}
}

func TestRetryDisciplinedLoopClean(t *testing.T) {
	fs := runFixture(t, retryCfg(), retryFixture(`
func Do(ctx context.Context, e *E) error {
	var err error
	for i := 0; i < 3; i++ {
		err = attempt(ctx)
		if err == nil {
			return nil
		}
		if !e.Retryable() {
			return err
		}
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
	}
	return err
}
`))
	wantCount(t, fs, RuleRetry, 0)
}

func TestRetryWithoutClassifierFlagged(t *testing.T) {
	fs := runFixture(t, retryCfg(), retryFixture(`
func Do(ctx context.Context) error {
	var err error
	for i := 0; i < 3; i++ {
		err = attempt(ctx)
		if err == nil {
			return nil
		}
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
	}
	return err
}
`))
	got := wantCount(t, fs, RuleRetry, 1)
	if !strings.Contains(got[0].Message, "classif") {
		t.Errorf("want a missing-classifier finding: %s", got[0].Message)
	}
}

func TestRetryWithoutContextDeadlineFlagged(t *testing.T) {
	fs := runFixture(t, retryCfg(), retryFixture(`
func Do(ctx context.Context, e *E) error {
	var err error
	for i := 0; i < 3; i++ {
		err = attempt(ctx)
		if err == nil {
			return nil
		}
		if !e.Retryable() {
			return err
		}
	}
	return err
}
`))
	got := wantCount(t, fs, RuleRetry, 1)
	if !strings.Contains(got[0].Message, "context deadline") {
		t.Errorf("want a missing-deadline finding: %s", got[0].Message)
	}
}

func TestRetryNonRetryLoopClean(t *testing.T) {
	// The loop bails out on error: the back edge never carries a non-nil
	// error, so this is not a retry loop.
	fs := runFixture(t, retryCfg(), retryFixture(`
func Do(ctx context.Context) error {
	for i := 0; i < 3; i++ {
		if err := attempt(ctx); err != nil {
			return err
		}
	}
	return nil
}
`))
	wantCount(t, fs, RuleRetry, 0)
}

func TestRetryOutOfScopePackageIgnored(t *testing.T) {
	cfg := retryCfg()
	cfg.RetryScope = []string{"otherpkg"}
	fs := runFixture(t, cfg, retryFixture(`
func Do(ctx context.Context) error {
	var err error
	for i := 0; i < 3; i++ {
		err = attempt(ctx)
		if err == nil {
			return nil
		}
	}
	return err
}
`))
	wantCount(t, fs, RuleRetry, 0)
}

func TestRetryRangeLoopExempt(t *testing.T) {
	fs := runFixture(t, retryCfg(), retryFixture(`
func Do(ctx context.Context, xs []int) error {
	var err error
	for range xs {
		err = attempt(ctx)
		if err == nil {
			return nil
		}
	}
	return err
}
`))
	wantCount(t, fs, RuleRetry, 0)
}
