package lint

import (
	"strings"
	"testing"
)

func TestLoaderUnparseableFile(t *testing.T) {
	dir := writeFixture(t, map[string]string{
		"f.go": "package fixture\n\nfunc Broken( {\n",
	})
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if _, err := l.Load("./..."); err == nil {
		t.Fatal("loading a module with a syntax error must fail")
	}
}

func TestLoaderMissingPackage(t *testing.T) {
	dir := writeFixture(t, map[string]string{
		"f.go": "package fixture\n",
	})
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if _, err := l.Load("./does/not/exist"); err == nil {
		t.Fatal("loading a nonexistent package directory must fail")
	}
}

func TestLoaderTypeError(t *testing.T) {
	dir := writeFixture(t, map[string]string{
		"f.go": "package fixture\n\nvar x int = \"not an int\"\n",
	})
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	_, err = l.Load("./...")
	if err == nil {
		t.Fatal("loading a module with a type error must fail")
	}
	if !strings.Contains(err.Error(), "type-checking") {
		t.Errorf("error should identify the type-checking phase: %v", err)
	}
}

func TestLoaderTypeErrorInImportedPackage(t *testing.T) {
	// The broken package is only reached through an import, exercising the
	// ImportFrom path and the memoised error cache.
	dir := writeFixture(t, map[string]string{
		"main.go":     "package fixture\n\nimport \"fixture/bad\"\n\nvar _ = bad.X\n",
		"bad/bad.go":  "package bad\n\nvar X int = \"nope\"\n",
		"good/ok.go":  "package good\n",
		"good/ok2.go": "package good\n",
	})
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if _, err := l.Load("."); err == nil {
		t.Fatal("a type error in an imported package must surface")
	}
	// Loading the broken package again hits the cache, not a recheck.
	if _, err := l.Load("./bad"); err == nil {
		t.Fatal("cached load of the broken package must still fail")
	}
}

func TestLoaderNoModule(t *testing.T) {
	if _, err := NewLoader(t.TempDir()); err == nil {
		t.Fatal("NewLoader outside any module must fail")
	}
}
