package lint

import (
	"go/ast"
	"go/types"
)

// analyzeCtx enforces ctx-propagation: an exported function that spawns
// goroutines (a `go` statement) or fans work out through the exec
// substrate (calls matching cfg.CtxSpawners) must both accept a
// context.Context — directly as a parameter or as a field of a
// config-struct parameter — and actually forward or check it in its body.
// A service under load cancels requests constantly; any parallel phase
// that cannot observe cancellation strands worker goroutines behind
// abandoned requests. The deliberately non-cancellable primitives
// (exec.Parallel and the queue Drain methods themselves) are allowlisted
// via cfg.CtxAllowlist.
func analyzeCtx(l *Loader, pkgs []*Package, cfg Config) []Finding {
	spawners := make(map[string]bool, len(cfg.CtxSpawners))
	for _, s := range cfg.CtxSpawners {
		spawners[s] = true
	}
	allow := make(map[string]bool, len(cfg.CtxAllowlist))
	for _, s := range cfg.CtxAllowlist {
		allow[s] = true
	}

	var findings []Finding
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !exportedFunc(pkg, fd) {
					continue
				}
				if allow[funcDeclQualifiedName(pkg, fd)] {
					continue
				}
				spawnWhat := findSpawn(pkg, fd.Body, spawners)
				if spawnWhat == "" {
					continue
				}
				ctxParam, ctxField := contextAcceptor(pkg, fd)
				if ctxParam == nil {
					findings = append(findings, l.finding(fd.Name.Pos(), RuleCtx,
						"exported %s %s but accepts no context.Context (argument or config field); parallel work it starts cannot be cancelled",
						fd.Name.Name, spawnWhat))
					continue
				}
				if !forwardsContext(pkg, fd.Body, ctxParam, ctxField) {
					where := "parameter " + ctxParam.Name()
					if ctxField != nil {
						where = ctxParam.Name() + "." + ctxField.Name()
					}
					findings = append(findings, l.finding(fd.Name.Pos(), RuleCtx,
						"exported %s %s and accepts a context (%s) but never forwards or checks it",
						fd.Name.Name, spawnWhat, where))
				}
			}
		}
	}
	return findings
}

// exportedFunc reports whether fd is part of the package's exported
// surface: an exported function, or an exported method on an exported
// type.
func exportedFunc(pkg *Package, fd *ast.FuncDecl) bool {
	if !fd.Name.IsExported() {
		return false
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return true
	}
	fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return true
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return true
	}
	t := recv.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Exported()
	}
	return true
}

// findSpawn scans body for the first goroutine spawn or spawner call and
// describes it for the finding message ("" = none).
func findSpawn(pkg *Package, body *ast.BlockStmt, spawners map[string]bool) (what string) {
	ast.Inspect(body, func(n ast.Node) bool {
		if what != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			what = "spawns goroutines"
			return false
		case *ast.CallExpr:
			if fn := calleeFunc(pkg.Info, n); fn != nil && spawners[qualifiedName(fn)] {
				what = "calls " + fn.Name() + " (parallel fan-out)"
				return false
			}
		}
		return true
	})
	return what
}

// contextAcceptor finds how fd can receive a context: a parameter of type
// context.Context (field == nil), or a parameter whose (possibly
// pointer-to) struct type carries a context.Context field — the
// Config.Ctx convention the join algorithms use.
func contextAcceptor(pkg *Package, fd *ast.FuncDecl) (param *types.Var, field *types.Var) {
	fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil, nil
	}
	sig := fn.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if isContextType(p.Type()) {
			return p, nil
		}
	}
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		t := p.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		st, ok := t.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for j := 0; j < st.NumFields(); j++ {
			if f := st.Field(j); isContextType(f.Type()) {
				return p, f
			}
		}
	}
	return nil, nil
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// forwardsContext reports whether body uses the accepted context at all:
// the ctx parameter itself is referenced, the config parameter's ctx
// field is selected, or the whole config parameter is handed to another
// call (which is then responsible for the context it contains).
func forwardsContext(pkg *Package, body *ast.BlockStmt, param, field *types.Var) bool {
	found := false
	walkParents(body, func(n ast.Node, stack []ast.Node) {
		if found {
			return
		}
		switch n := n.(type) {
		case *ast.Ident:
			if pkg.Info.Uses[n] != param {
				return
			}
			if field == nil {
				found = true
				return
			}
			// Config param: forwarded when passed wholesale as a call
			// argument (the callee owns the embedded context then).
			if len(stack) > 0 {
				if call, ok := stack[len(stack)-1].(*ast.CallExpr); ok {
					for _, arg := range call.Args {
						if arg == ast.Expr(n) {
							found = true
							return
						}
					}
				}
			}
		case *ast.SelectorExpr:
			if field != nil && fieldVarOf(pkg.Info, n) == field {
				found = true
			}
		}
	})
	return found
}
