// Package lint is skewlint's analysis engine: a stdlib-only static
// analyzer for the project-specific invariants the Go compiler cannot
// check. The join algorithms are correct only under rules established in
// earlier PRs — contention-free scatter regions, atomic-only access to
// shared counters, context propagation through every goroutine-spawning
// path, allocation-free inner loops — and those rules rot silently as the
// code grows. Each analyzer pins one of them down:
//
//   - atomic-consistency: a struct field accessed through sync/atomic
//     anywhere must never be read or written plainly elsewhere.
//   - ctx-propagation: an exported function that spawns goroutines or
//     drains a task queue must accept and forward a context.Context
//     (deliberate non-ctx primitives are allowlisted).
//   - hot-path-alloc: functions marked //skewlint:hotpath must not call
//     fmt, take time.Now, allocate maps, or append to slices without
//     preallocated capacity.
//   - lock-discipline: a field marked //skewlint:guarded-by mu may only
//     be touched inside functions that lock mu (or whose name ends in
//     "Locked", the held-lock calling convention).
//
// Findings can be suppressed per line with //skewlint:ignore <rules>.
//
// The engine is built on go/parser and go/types only — no analysis
// framework, no module dependencies. Imports inside the module are
// resolved straight from the module tree; everything else (the standard
// library) is type-checked from source via go/importer.
package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package of the module.
type Package struct {
	// PkgPath is the import path (module path + directory).
	PkgPath string
	// Dir is the absolute directory the package was loaded from.
	Dir string
	// Files are the parsed non-test source files, with comments.
	Files []*ast.File
	// Types and Info carry the go/types results for the package.
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks the packages of a single module.
type Loader struct {
	// ModuleRoot is the absolute path of the directory holding go.mod.
	ModuleRoot string
	// ModulePath is the module path declared in go.mod.
	ModulePath string

	fset  *token.FileSet
	ctxt  build.Context
	std   types.ImporterFrom
	cache map[string]*loadResult
}

type loadResult struct {
	pkg *Package
	err error
}

// NewLoader returns a loader rooted at the module containing dir (dir or
// any of its parents must hold a go.mod).
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	ctxt := build.Default
	// Type-checking runs from source; disabling cgo selects the pure-Go
	// variants of standard-library packages so no C toolchain is needed.
	ctxt.CgoEnabled = false
	return &Loader{
		ModuleRoot: root,
		ModulePath: modPath,
		fset:       fset,
		ctxt:       ctxt,
		std:        importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		cache:      make(map[string]*loadResult),
	}, nil
}

// Fset exposes the loader's file set for position rendering.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// findModule walks up from dir to the nearest go.mod and returns the
// module root and module path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		d = parent
	}
}

// Load resolves the given package patterns (import paths relative to the
// module root; "./..." and "dir/..." wildcards are supported) and returns
// the loaded packages sorted by import path.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive, pat = true, rest
		}
		if pat == "." || pat == "" {
			pat = ""
		} else {
			pat = strings.TrimPrefix(pat, "./")
		}
		base := filepath.Join(l.ModuleRoot, filepath.FromSlash(pat))
		if !recursive {
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			add(p)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	var pkgs []*Package
	for _, dir := range dirs {
		names, err := l.sourceFiles(dir)
		if err != nil {
			return nil, err
		}
		if len(names) == 0 {
			continue // not a Go package directory
		}
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].PkgPath < pkgs[j].PkgPath })
	return pkgs, nil
}

// importPathFor maps a module directory to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.ModuleRoot)
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// sourceFiles lists the non-test Go files of dir that match the default
// build constraints (so tag-gated variants like sanitize stubs resolve
// exactly as a normal `go build` would).
func (l *Loader) sourceFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		ok, err := l.ctxt.MatchFile(dir, name)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %w", filepath.Join(dir, name), err)
		}
		if ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// loadDir parses and type-checks the package in dir, memoized by import
// path so every package is checked exactly once per loader.
func (l *Loader) loadDir(dir string) (*Package, error) {
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	return l.loadPath(path, dir)
}

func (l *Loader) loadPath(path, dir string) (*Package, error) {
	if res, ok := l.cache[path]; ok {
		return res.pkg, res.err
	}
	// Reserve the slot first: an import cycle would otherwise recurse
	// forever. Valid Go has no cycles, so hitting the reserved slot again
	// reports one instead of hanging.
	l.cache[path] = &loadResult{err: fmt.Errorf("lint: import cycle through %s", path)}
	pkg, err := l.typeCheck(path, dir)
	l.cache[path] = &loadResult{pkg: pkg, err: err}
	return pkg, err
}

func (l *Loader) typeCheck(path, dir string) (*Package, error) {
	names, err := l.sourceFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var firstErr error
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if firstErr == nil && err != nil {
		firstErr = err
	}
	if firstErr != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, firstErr)
	}
	return &Package{PkgPath: path, Dir: dir, Files: files, Types: tpkg, Info: info}, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModuleRoot, 0)
}

// ImportFrom implements types.ImporterFrom: module-local import paths are
// resolved against the module tree (and share the loader's cache), all
// others are delegated to the source importer.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(path, l.ModulePath)))
		pkg, err := l.loadPath(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, mode)
}
