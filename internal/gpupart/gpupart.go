// Package gpupart holds the pieces of GPU partitioning shared by Gbase and
// GSH: fanout selection targeting shared-memory-sized partitions, and the
// functional (result-producing) radix partitioning both algorithms use.
// The two algorithms charge different modelled costs for producing this
// result — Gbase's dynamic bucket lists vs GSH's count-then-partition —
// and those cost kernels live with the respective algorithm packages.
package gpupart

import (
	"skewjoin/internal/chainedtable"
	"skewjoin/internal/gpusim"
	"skewjoin/internal/hashfn"
	"skewjoin/internal/radix"
	"skewjoin/internal/relation"
)

// Fanout picks the radix bits for two-pass GPU partitioning so that, on
// uniform data, every final partition fits into `capacity` tuples (the
// shared-memory budget) with headroom. It returns the per-pass bit counts;
// both are at least 1 so the two-pass structure is always exercised.
func Fanout(n, capacity int) (bits1, bits2 uint32) {
	if capacity < 1 {
		capacity = 1
	}
	// Headroom factor 2: uniform partitions land at half capacity so mild
	// variance does not spill.
	parts := hashfn.NextPow2((2*n + capacity - 1) / capacity)
	if parts < 4 {
		parts = 4
	}
	total := hashfn.Log2(parts)
	bits1 = (total + 1) / 2
	bits2 = total - bits1
	if bits2 == 0 {
		bits2 = 1
		if bits1 > 1 {
			bits1--
		}
	}
	return bits1, bits2
}

// Functional computes the partitioned relation that the GPU kernels
// produce: the same key-to-partition mapping as the modelled two-pass
// kernels, evaluated sequentially on the host. Cost accounting for the
// actual kernels is charged separately by the caller.
func Functional(tuples []relation.Tuple, bits1, bits2 uint32) *radix.Partitioned {
	return radix.Partition(tuples, radix.Config{Threads: 1, Bits1: bits1, Bits2: bits2}, nil)
}

// ProbeJoinBlock is the per-block join kernel shared by Gbase's join phase
// and GSH's NM-join (the paper: "we implement a normal join procedure
// (NM-Join) similar to Gbase"). The block builds a chained hash table over
// rPart in shared memory, probes it with every tuple of sPart, and emits
// matches through the write-bitmap output procedure the paper describes:
// per chain step, each thread sets an intention bit atomically, the block
// synchronises, threads compute offsets from the bitmap and write results
// coalesced. Returns the number of matches the block produced.
func ProbeJoinBlock(b *gpusim.Block, rPart, sPart []relation.Tuple) int {
	dcfg := b.Device().Config()
	table := chainedtable.Build(rPart)

	// Build: read the R side coalesced; per tuple a hash, a shared-memory
	// write and a shared atomic on the bucket head.
	b.GlobalCoalesced(len(rPart) * relation.TupleSize)
	b.UniformWork(len(rPart), 4)
	b.Atomic(len(rPart))

	// Probe: read S coalesced, walk chains.
	b.GlobalCoalesced(len(sPart) * relation.TupleSize)
	visits := make([]int, len(sPart))
	matches := 0
	var curKey relation.Key
	var curPS relation.Payload
	emit := func(p relation.Payload) {
		b.Out.Push(curKey, p, curPS)
		matches++
	}
	for i, ts := range sPart {
		curKey, curPS = ts.Key, ts.Payload
		visits[i] = table.Probe(ts.Key, emit)
	}
	// Each chain step costs a shared access and a key compare, plus the
	// write-bitmap output procedure of §III: an atomic bit set, a popcount
	// over the bitmap and an offset computation — per tuple, per chain
	// step. Warps serialise on their longest lane.
	stepCost := dcfg.SharedAccessCost + dcfg.ComputeCost + dcfg.AtomicCost + 3*dcfg.ComputeCost
	b.WarpLoop(visits, stepCost)
	// The block synchronises after every chain step: the barrier count is
	// the longest chain within each batch of BlockDim S tuples.
	barriers := 0
	for lo := 0; lo < len(visits); lo += dcfg.ThreadsPerBlock {
		hi := lo + dcfg.ThreadsPerBlock
		if hi > len(visits) {
			hi = len(visits)
		}
		max := 0
		for _, v := range visits[lo:hi] {
			if v > max {
				max = v
			}
		}
		barriers += max
	}
	b.Barrier(barriers)
	// Post-bitmap offset computation and the coalesced result write.
	b.UniformWork(matches, 1)
	b.GlobalCoalesced(matches * 12)
	return matches
}
