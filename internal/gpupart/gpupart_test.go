package gpupart

import (
	"testing"
	"testing/quick"

	"skewjoin/internal/gpusim"
	"skewjoin/internal/relation"
	"skewjoin/internal/zipf"
)

func TestFanoutTargetsCapacity(t *testing.T) {
	for _, tc := range []struct{ n, capacity int }{
		{1 << 18, 4096},
		{1 << 16, 4096},
		{1 << 20, 512},
		{100, 4096},
		{1, 1},
	} {
		b1, b2 := Fanout(tc.n, tc.capacity)
		if b1 < 1 || b2 < 1 {
			t.Errorf("n=%d cap=%d: bits %d/%d — both passes must be exercised", tc.n, tc.capacity, b1, b2)
		}
		fan := 1 << (b1 + b2)
		if fan < 4 {
			t.Errorf("n=%d cap=%d: fanout %d too small", tc.n, tc.capacity, fan)
		}
		// Uniform data must land at or under capacity with the headroom.
		if avg := tc.n / fan; avg > tc.capacity {
			t.Errorf("n=%d cap=%d: avg partition %d exceeds capacity", tc.n, tc.capacity, avg)
		}
	}
}

func TestQuickFanoutInvariants(t *testing.T) {
	f := func(nRaw uint32, capRaw uint16) bool {
		n := int(nRaw%(1<<22)) + 1
		capacity := int(capRaw%8192) + 1
		b1, b2 := Fanout(n, capacity)
		if b1 < 1 || b2 < 1 || b1+b2 > 30 {
			return false
		}
		return n/(1<<(b1+b2)) <= capacity
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFunctionalMatchesRadixPlacement(t *testing.T) {
	g := zipf.MustNew(zipf.Config{Theta: 0.8, Universe: 5000, Seed: 1})
	r := g.NewRelation(20000, 1)
	p := Functional(r.Tuples, 4, 3)
	if p.Total() != r.Len() {
		t.Fatalf("partitioned %d of %d tuples", p.Total(), r.Len())
	}
	if p.Fanout() != 1<<7 {
		t.Fatalf("fanout = %d", p.Fanout())
	}
}

func TestProbeJoinBlockCorrectAndCharged(t *testing.T) {
	g := zipf.MustNew(zipf.Config{Theta: 0.9, Universe: 200, Seed: 2})
	r, s := g.Pair(1000)
	dev := gpusim.NewDevice(gpusim.Config{})
	var matches int
	dev.Launch("join", "test", 1, func(b *gpusim.Block) {
		matches = ProbeJoinBlock(b, r.Tuples, s.Tuples)
		if b.Cycles() <= 0 {
			t.Error("block charged no cycles")
		}
	})
	sum := dev.OutputSummary()
	if sum.Count != uint64(matches) {
		t.Errorf("emitted %d, returned %d", sum.Count, matches)
	}
	// Brute-force count.
	freqR := relation.KeyFrequencies(r)
	var want uint64
	for _, ts := range s.Tuples {
		want += uint64(freqR[ts.Key])
	}
	if sum.Count != want {
		t.Errorf("count = %d, want %d", sum.Count, want)
	}
	st := dev.Stats()
	if st.Atomics == 0 || st.Barriers == 0 {
		t.Errorf("write-bitmap costs not charged: %+v", st)
	}
}

func TestProbeJoinBlockEmptySides(t *testing.T) {
	dev := gpusim.NewDevice(gpusim.Config{})
	dev.Launch("join", "test", 1, func(b *gpusim.Block) {
		if m := ProbeJoinBlock(b, nil, nil); m != 0 {
			t.Errorf("empty join produced %d matches", m)
		}
	})
	if sum := dev.OutputSummary(); sum.Count != 0 {
		t.Errorf("output count = %d", sum.Count)
	}
}

func TestProbeJoinDivergenceGrowsWithSkew(t *testing.T) {
	mk := func(theta float64) gpusim.Stats {
		g := zipf.MustNew(zipf.Config{Theta: theta, Universe: 4000, Seed: 3})
		r, s := g.Pair(4000)
		dev := gpusim.NewDevice(gpusim.Config{})
		dev.Launch("join", "test", 1, func(b *gpusim.Block) {
			ProbeJoinBlock(b, r.Tuples, s.Tuples)
		})
		return dev.Stats()
	}
	uniform := mk(0)
	skewed := mk(1.0)
	if skewed.DivergenceWasted <= uniform.DivergenceWasted {
		t.Errorf("divergence should grow with skew: %d vs %d",
			skewed.DivergenceWasted, uniform.DivergenceWasted)
	}
}
