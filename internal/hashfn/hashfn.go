// Package hashfn provides the hash functions and radix utilities shared by
// all join algorithms: a multiplicative bucket hash for hash tables, a
// finalizer-style mixer for checksums, and radix extraction for the
// partitioning phases.
package hashfn

import "skewjoin/internal/relation"

// Mix32 is a Murmur3-style 32-bit finalizer. The chained hash tables use it
// so that nearly-sequential keys spread across buckets.
func Mix32(x uint32) uint32 {
	x ^= x >> 16
	x *= 0x85ebca6b
	x ^= x >> 13
	x *= 0xc2b2ae35
	x ^= x >> 16
	return x
}

// Mix64 is the SplitMix64 finalizer, used for order-independent output
// checksums and sampling hash tables.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Bucket maps a key into [0, nBuckets) where nBuckets is a power of two.
func Bucket(k relation.Key, mask uint32) uint32 {
	return Mix32(uint32(k)) & mask
}

// Radix extracts `bits` bits of the hashed key starting at bit `shift`.
// Radix partitioning hashes before extracting so that partition membership
// is independent of any structure in the raw key values, exactly as radix
// joins do (the paper's Cbase follows Balkesen et al.).
func Radix(k relation.Key, shift, bits uint32) uint32 {
	return (Mix32(uint32(k)) >> shift) & ((1 << bits) - 1)
}

// NextPow2 returns the smallest power of two >= n (minimum 1).
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Log2 returns floor(log2(n)) for n >= 1.
func Log2(n int) uint32 {
	var l uint32
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}
