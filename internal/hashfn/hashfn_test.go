package hashfn

import (
	"testing"
	"testing/quick"

	"skewjoin/internal/relation"
)

func TestMix32Bijective(t *testing.T) {
	// Murmur finalizers are bijective; spot-check injectivity over a dense
	// range (a collision would disprove bijectivity).
	seen := make(map[uint32]uint32, 1<<16)
	for i := uint32(0); i < 1<<16; i++ {
		h := Mix32(i)
		if prev, dup := seen[h]; dup {
			t.Fatalf("Mix32 collision: %d and %d both map to %d", prev, i, h)
		}
		seen[h] = i
	}
}

func TestMix32SpreadsSequentialKeys(t *testing.T) {
	// Sequential keys must not land in sequential buckets.
	const mask = 0xFF
	hits := make([]int, mask+1)
	for i := uint32(0); i < 4096; i++ {
		hits[Mix32(i)&mask]++
	}
	for b, h := range hits {
		if h == 0 {
			t.Errorf("bucket %d empty after 4096 sequential keys", b)
		}
		if h > 64 {
			t.Errorf("bucket %d got %d of 4096 keys", b, h)
		}
	}
}

func TestMix64NonTrivial(t *testing.T) {
	if Mix64(0) == 0 && Mix64(1) == 1 {
		t.Error("Mix64 looks like identity")
	}
	if Mix64(1) == Mix64(2) {
		t.Error("Mix64 collision on small inputs")
	}
}

func TestRadixRange(t *testing.T) {
	f := func(k uint32, shiftRaw, bitsRaw uint8) bool {
		shift := uint32(shiftRaw % 24)
		bits := uint32(bitsRaw%12) + 1
		r := Radix(relation.Key(k), shift, bits)
		return r < 1<<bits
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRadixConsistentWithBucket(t *testing.T) {
	// Radix with shift 0 and Bucket with the same mask must agree: both
	// look at the low bits of the hashed key.
	for k := uint32(0); k < 1000; k++ {
		if Radix(relation.Key(k), 0, 8) != Bucket(relation.Key(k), 0xFF) {
			t.Fatalf("Radix and Bucket disagree for key %d", k)
		}
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1000: 1024, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestLog2(t *testing.T) {
	cases := map[int]uint32{1: 0, 2: 1, 3: 1, 4: 2, 7: 2, 8: 3, 1024: 10}
	for in, want := range cases {
		if got := Log2(in); got != want {
			t.Errorf("Log2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestQuickNextPow2(t *testing.T) {
	f := func(raw uint16) bool {
		n := int(raw)
		p := NextPow2(n)
		if p < 1 || p < n {
			return false
		}
		return p&(p-1) == 0 && (p == 1 || p/2 < n || n <= 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
